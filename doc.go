// Package repro is the root of a from-scratch Go reproduction of
// "Combating Friend Spam Using Social Rejections" (Cao, Sirivianos, Yang,
// Munagala — ICDCS 2015).
//
// The supported public API lives in the rejecto subpackage; the runnable
// evaluation harness lives in cmd/experiments; bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
package repro
