// Command loadgen drives a live rejectod with deterministic synthetic
// traffic and measures the serving path under load: ingest latency, score
// latency (client- and server-observed), verdict mix, and epoch staleness.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -accounts 1048576
//	        [-seed 42] [-spam-fraction 0.01]
//	        [-prefill 200000] [-batch 2048] [-ingest-conc 2] [-ingest-rps 0]
//	        [-duration 10s] [-score-rps 10000] [-score-conc 4]
//	        [-detect-during 0] [-out report.json]
//
// The run has three phases:
//
//  1. Prefill: -prefill answered requests are ingested closed-loop (each
//     as a request/answer pair), so detection and scoring see a populated
//     journal.
//  2. Detect: one POST /v1/detect publishes a real epoch to score against.
//  3. Storm: for -duration, ingest workers stream batches closed-loop
//     (optionally paced to -ingest-rps events/sec, so scoring is measured
//     under sustained rather than saturating ingest)
//     while score workers issue single-ID GET /v1/score calls open-loop,
//     paced at -score-rps across -score-conc workers (0 rps = closed
//     loop). Score latency is measured from each request's *intended*
//     fire time, so queueing delay under overload is charged to the
//     server, not silently dropped (no coordinated omission). A sampler
//     polls /v1/stats for epoch staleness; -detect-during > 0 also
//     triggers a detection on that period mid-storm.
//
// Traffic is a pure function of -seed (internal/rng named streams): a
// -spam-fraction slice of the account space floods mostly-rejected
// requests while the rest sends mostly-accepted ones. The report (JSON on
// stdout or -out) carries client histograms plus the server's own
// /v1/stats score section; scripts/bench_serve.sh turns it into
// BENCH_serve.json and enforces the latency criterion.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() { os.Exit(run()) }

type config struct {
	addr         string
	accounts     int
	seed         uint64
	spamFraction float64
	prefill      int
	batch        int
	ingestConc   int
	ingestRPS    int
	duration     time.Duration
	scoreRPS     int
	scoreConc    int
	detectDuring time.Duration
	out          string
}

// histSummary is one latency histogram flattened for the report.
type histSummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

func summarize(h *obs.LatencyHist) histSummary {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return histSummary{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.50)),
		P90US:  us(h.Quantile(0.90)),
		P99US:  us(h.Quantile(0.99)),
	}
}

// serverScoreStats mirrors the score section of rejectod's /v1/stats.
type serverScoreStats struct {
	Requests        int64   `json:"requests"`
	Allows          int64   `json:"allows"`
	Throttles       int64   `json:"throttles"`
	Denies          int64   `json:"denies"`
	Publishes       int64   `json:"publishes"`
	Epoch           int64   `json:"epoch"`
	EpochSuspects   int     `json:"epoch_suspects"`
	StalenessEvents int64   `json:"staleness_events"`
	P50US           float64 `json:"p50_us"`
	P99US           float64 `json:"p99_us"`
}

type statsProbe struct {
	Epoch        int64             `json:"epoch"`
	DetectEpochs int64             `json:"detect_epochs"`
	Score        *serverScoreStats `json:"score"`
}

type report struct {
	Seed         uint64  `json:"seed"`
	Accounts     int     `json:"accounts"`
	SpamFraction float64 `json:"spam_fraction"`

	PrefillEvents    int               `json:"prefill_events"`
	PrefillSeconds   float64           `json:"prefill_seconds"`
	PrefillEventsPS  float64           `json:"prefill_events_per_sec"`
	DetectSeconds    float64           `json:"detect_seconds"`
	StormSeconds     float64           `json:"storm_seconds"`
	StormEvents      int64             `json:"storm_events"`
	StormEventsPS    float64           `json:"storm_events_per_sec"`
	IngestTargetRPS  int               `json:"ingest_target_rps"`
	Backpressure429s int64             `json:"backpressure_429s"`
	ScoreTargetRPS   int               `json:"score_target_rps"`
	ScoreAchievedRPS float64           `json:"score_achieved_rps"`
	ScoreMissedFires int64             `json:"score_missed_fires"`
	ScoreHTTPErrors  int64             `json:"score_http_errors"`
	VerdictAllows    int64             `json:"verdict_allows"`
	VerdictThrottles int64             `json:"verdict_throttles"`
	VerdictDenies    int64             `json:"verdict_denies"`
	MaxStalenessEv   int64             `json:"max_staleness_events"`
	FinalStalenessEv int64             `json:"final_staleness_events"`
	StalenessSamples int               `json:"staleness_samples"`
	EpochsPublished  int64             `json:"epochs_published"`
	IngestBatch      histSummary       `json:"ingest_batch_latency"`
	IngestPerEventUS float64           `json:"ingest_per_event_us"`
	ScoreClient      histSummary       `json:"score_client_latency"`
	ServerScore      *serverScoreStats `json:"server_score"`
}

func run() int {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "rejectod base URL")
	flag.IntVar(&cfg.accounts, "accounts", 0, "account ID space to draw from (required; must not exceed the server's graph)")
	flag.Uint64Var(&cfg.seed, "seed", 42, "root seed; traffic is a pure function of it")
	flag.Float64Var(&cfg.spamFraction, "spam-fraction", 0.01, "fraction of the account space sending mostly-rejected requests")
	flag.IntVar(&cfg.prefill, "prefill", 200_000, "answered requests to ingest before the storm")
	flag.IntVar(&cfg.batch, "batch", 2048, "events per POST /v1/events batch")
	flag.IntVar(&cfg.ingestConc, "ingest-conc", 2, "closed-loop ingest workers during the storm")
	flag.IntVar(&cfg.ingestRPS, "ingest-rps", 0, "pace storm ingest at this many events/sec across all workers (0 = unpaced closed loop)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "storm duration")
	flag.IntVar(&cfg.scoreRPS, "score-rps", 10_000, "open-loop score request rate (0 = closed loop)")
	flag.IntVar(&cfg.scoreConc, "score-conc", 4, "score workers")
	flag.DurationVar(&cfg.detectDuring, "detect-during", 0, "also trigger a detection on this period mid-storm (0 disables)")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here instead of stdout")
	flag.Parse()
	if cfg.accounts <= 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -accounts is required (>= 2)")
		return 2
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.ingestConc + cfg.scoreConc + 4,
		MaxIdleConnsPerHost: cfg.ingestConc + cfg.scoreConc + 4,
	}}
	// A million-node server spends a while folding its boot epoch before
	// the listener opens; give it a generous health window.
	if err := waitHealthy(client, cfg.addr, 120*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}

	src := rng.New(cfg.seed)
	rep := report{Seed: cfg.seed, Accounts: cfg.accounts, SpamFraction: cfg.spamFraction,
		ScoreTargetRPS: cfg.scoreRPS, IngestTargetRPS: cfg.ingestRPS}

	// Phase 1: prefill, closed loop on one stream.
	start := time.Now()
	if cfg.prefill > 0 {
		gen := newTrafficGen(src.Stream("prefill"), cfg.accounts, cfg.spamFraction)
		var sent int
		for sent < cfg.prefill {
			nb := min(cfg.batch, (cfg.prefill-sent)*2)
			batch := gen.nextBatch(nb)
			if _, err := postBatch(client, cfg.addr, batch, nil, nil); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: prefill: %v\n", err)
				return 1
			}
			sent += len(batch) / 2
		}
		rep.PrefillEvents = sent
		rep.PrefillSeconds = time.Since(start).Seconds()
		rep.PrefillEventsPS = float64(sent) / rep.PrefillSeconds
		fmt.Fprintf(os.Stderr, "prefill: %d answered requests in %.1fs (%.0f/s)\n",
			sent, rep.PrefillSeconds, rep.PrefillEventsPS)
	}

	// Phase 2: one detection so the storm scores against a real epoch.
	dstart := time.Now()
	if err := triggerDetect(client, cfg.addr); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: detect: %v\n", err)
		return 1
	}
	rep.DetectSeconds = time.Since(dstart).Seconds()
	fmt.Fprintf(os.Stderr, "detect: epoch published in %.1fs\n", rep.DetectSeconds)

	// Phase 3: the storm.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	var (
		wg           sync.WaitGroup
		ingestHist   obs.LatencyHist
		scoreHist    obs.LatencyHist
		stormEvents  atomic.Int64
		backpressure atomic.Int64
		missedFires  atomic.Int64
		scoreErrs    atomic.Int64
		allows       atomic.Int64
		throttles    atomic.Int64
		denies       atomic.Int64
	)

	for w := 0; w < cfg.ingestConc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := newTrafficGen(src.Stream(fmt.Sprintf("storm/ingest/%d", w)), cfg.accounts, cfg.spamFraction)
			// Per-worker pacing: each worker owes 1/ingestConc of the
			// target event rate and sleeps off any surplus after a batch.
			perWorker := float64(cfg.ingestRPS) / float64(cfg.ingestConc)
			begin := time.Now()
			sent := 0
			for ctx.Err() == nil {
				batch := gen.nextBatch(cfg.batch)
				n, err := postBatch(client, cfg.addr, batch, &ingestHist, &backpressure)
				if err != nil {
					if ctx.Err() == nil {
						fmt.Fprintf(os.Stderr, "loadgen: ingest: %v\n", err)
					}
					return
				}
				stormEvents.Add(int64(n))
				sent += n
				if perWorker > 0 {
					due := begin.Add(time.Duration(float64(sent) / perWorker * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-ctx.Done():
						case <-time.After(d):
						}
					}
				}
			}
		}(w)
	}

	// Open-loop pacer: intended fire times on a bounded channel. A full
	// channel means the workers are saturated; the fire is counted missed
	// rather than silently deferred.
	fires := make(chan time.Time, 4*cfg.scoreConc)
	if cfg.scoreRPS > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(fires)
			interval := time.Second / time.Duration(cfg.scoreRPS)
			begin := time.Now()
			for i := 0; ctx.Err() == nil; i++ {
				at := begin.Add(time.Duration(i) * interval)
				if d := time.Until(at); d > 0 {
					time.Sleep(d)
				}
				select {
				case fires <- at:
				default:
					missedFires.Add(1)
				}
			}
		}()
	} else {
		close(fires)
	}

	scoreOne := func(r *rand.Rand, intended time.Time) {
		id := graph.NodeID(r.IntN(cfg.accounts))
		verdict, err := getScore(client, cfg.addr, id)
		if err != nil {
			scoreErrs.Add(1)
			return
		}
		scoreHist.Observe(time.Since(intended))
		switch verdict {
		case "allow":
			allows.Add(1)
		case "throttle":
			throttles.Add(1)
		case "deny":
			denies.Add(1)
		}
	}
	for w := 0; w < cfg.scoreConc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := src.Stream(fmt.Sprintf("storm/score/%d", w))
			if cfg.scoreRPS > 0 {
				for at := range fires {
					scoreOne(r, at)
				}
				return
			}
			for ctx.Err() == nil {
				scoreOne(r, time.Now())
			}
		}(w)
	}

	// Staleness sampler.
	var maxStaleness, lastStaleness atomic.Int64
	var samples atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				var p statsProbe
				if err := getJSON(client, cfg.addr+"/v1/stats", &p); err != nil || p.Score == nil {
					continue
				}
				samples.Add(1)
				lastStaleness.Store(p.Score.StalenessEvents)
				if p.Score.StalenessEvents > maxStaleness.Load() {
					maxStaleness.Store(p.Score.StalenessEvents)
				}
			}
		}
	}()

	if cfg.detectDuring > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(cfg.detectDuring)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := triggerDetect(client, cfg.addr); err != nil && ctx.Err() == nil {
						fmt.Fprintf(os.Stderr, "loadgen: mid-storm detect: %v\n", err)
					}
				}
			}
		}()
	}

	stormStart := time.Now()
	wg.Wait()
	rep.StormSeconds = time.Since(stormStart).Seconds()
	rep.StormEvents = stormEvents.Load()
	rep.StormEventsPS = float64(rep.StormEvents) / rep.StormSeconds
	rep.Backpressure429s = backpressure.Load()
	rep.ScoreMissedFires = missedFires.Load()
	rep.ScoreHTTPErrors = scoreErrs.Load()
	rep.VerdictAllows = allows.Load()
	rep.VerdictThrottles = throttles.Load()
	rep.VerdictDenies = denies.Load()
	rep.ScoreAchievedRPS = float64(scoreHist.Count()) / rep.StormSeconds
	rep.MaxStalenessEv = maxStaleness.Load()
	rep.FinalStalenessEv = lastStaleness.Load()
	rep.StalenessSamples = int(samples.Load())
	rep.IngestBatch = summarize(&ingestHist)
	if n := ingestHist.Count(); n > 0 {
		rep.IngestPerEventUS = rep.IngestBatch.MeanUS * float64(n) / float64(rep.StormEvents)
	}
	rep.ScoreClient = summarize(&scoreHist)

	// Final server-side truth.
	var final statsProbe
	if err := getJSON(client, cfg.addr+"/v1/stats", &final); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: final stats: %v\n", err)
		return 1
	}
	rep.ServerScore = final.Score
	rep.EpochsPublished = final.DetectEpochs

	out := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"storm: %d events ingested (%.0f/s), %d scores (%.0f/s target %d), score p99 %.0fµs client / %.0fµs server, staleness max %d events\n",
		rep.StormEvents, rep.StormEventsPS, scoreHist.Count(), rep.ScoreAchievedRPS, cfg.scoreRPS,
		rep.ScoreClient.P99US, serverP99(rep.ServerScore), rep.MaxStalenessEv)
	return 0
}

func serverP99(s *serverScoreStats) float64 {
	if s == nil {
		return 0
	}
	return s.P99US
}

// trafficGen deterministically produces lifecycle event batches: each
// answered request as an adjacent request/answer pair, spam-slice senders
// mostly rejected, everyone else mostly accepted.
type trafficGen struct {
	r        *rand.Rand
	accounts int
	spammers int
}

func newTrafficGen(r *rand.Rand, accounts int, spamFraction float64) *trafficGen {
	spammers := int(float64(accounts) * spamFraction)
	if spammers < 1 {
		spammers = 1
	}
	return &trafficGen{r: r, accounts: accounts, spammers: spammers}
}

func (g *trafficGen) nextBatch(events int) []server.Event {
	batch := make([]server.Event, 0, events)
	for len(batch)+2 <= events {
		var from graph.NodeID
		spam := g.r.Float64() < 0.3
		if spam {
			from = graph.NodeID(g.r.IntN(g.spammers))
		} else {
			from = graph.NodeID(g.spammers + g.r.IntN(g.accounts-g.spammers))
		}
		to := graph.NodeID(g.r.IntN(g.accounts))
		for to == from {
			to = graph.NodeID(g.r.IntN(g.accounts))
		}
		accept := g.r.Float64() < 0.8
		if spam {
			accept = g.r.Float64() < 0.15
		}
		typ := server.EvReject
		if accept {
			typ = server.EvAccept
		} else if g.r.Float64() < 0.3 {
			typ = server.EvIgnore
		}
		batch = append(batch,
			server.Event{Type: server.EvRequest, From: from, To: to},
			server.Event{Type: typ, From: from, To: to},
		)
	}
	return batch
}

// postBatch ships one event batch, retrying the unaccepted tail on 429
// with a short backoff. It returns the number of events accepted.
func postBatch(client *http.Client, addr string, batch []server.Event, hist *obs.LatencyHist, backpressure *atomic.Int64) (int, error) {
	accepted := 0
	for len(batch) > 0 {
		body, err := json.Marshal(batch)
		if err != nil {
			return accepted, err
		}
		start := time.Now()
		resp, err := client.Post(addr+"/v1/events", "application/json", bytes.NewReader(body))
		if err != nil {
			return accepted, err
		}
		var reply struct {
			Accepted int    `json:"accepted"`
			Error    string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if hist != nil {
			hist.Observe(time.Since(start))
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			return accepted + reply.Accepted, nil
		case http.StatusTooManyRequests:
			if backpressure != nil {
				backpressure.Add(1)
			}
			accepted += reply.Accepted
			batch = batch[reply.Accepted:]
			time.Sleep(20 * time.Millisecond)
		default:
			if derr != nil {
				reply.Error = derr.Error()
			}
			return accepted, fmt.Errorf("POST /v1/events: %s (%s)", resp.Status, reply.Error)
		}
	}
	return accepted, nil
}

// getScore issues one single-ID score request and returns the verdict.
func getScore(client *http.Client, addr string, id graph.NodeID) (string, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/score?id=%d", addr, id))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("GET /v1/score: %s", resp.Status)
	}
	var reply struct {
		Verdict string `json:"verdict"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", err
	}
	return reply.Verdict, nil
}

func triggerDetect(client *http.Client, addr string) error {
	resp, err := client.Post(addr+"/v1/detect", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/detect: %s", resp.Status)
	}
	return nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy after %s", addr, timeout)
}
