// Command graphgen generates synthetic social graphs — the Table I
// stand-ins or parameterized model graphs — optionally injects a friend-
// spam attack, and writes the result in the graphio text format.
//
// Usage:
//
//	graphgen -dataset Facebook -out fb.txt
//	graphgen -model ba -n 10000 -m 4 -out ba.txt
//	graphgen -dataset Facebook -attack -fakes 10000 -out world.txt -truth truth.txt
//	graphgen -stats -in fb.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/rng"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table I dataset stand-in to generate")
		model   = flag.String("model", "", "model graph: ba | holme-kim | forest-fire | er | ws | collab")
		n       = flag.Int("n", 10000, "nodes (model graphs)")
		m       = flag.Float64("m", 4, "edges per node (ba, holme-kim) / edge count (er, collab)")
		pt      = flag.Float64("pt", 0.5, "triad probability (holme-kim) / burn probability (forest-fire) / rewire beta (ws)")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output graph file")
		in      = flag.String("in", "", "input graph file (for -stats)")
		stats   = flag.Bool("stats", false, "print graph statistics")
		binOut  = flag.Bool("binary", false, "write -out in the fast binary format")

		doAttack = flag.Bool("attack", false, "inject the baseline friend-spam attack")
		fakes    = flag.Int("fakes", 10000, "fake accounts to inject with -attack")
		truth    = flag.String("truth", "", "write ground-truth fake IDs to this file with -attack")
	)
	flag.Parse()

	src := rng.New(*seed)
	var g *graph.Graph
	switch {
	case *in != "":
		var err error
		if g, err = graphio.ReadAny(*in); err != nil {
			fatalf("%v", err)
		}
	case *dataset != "":
		d, err := gen.DatasetByName(*dataset)
		if err != nil {
			fatalf("%v (known: %v)", err, gen.DatasetNames())
		}
		g = d.Generate(src.Stream("dataset"))
	case *model != "":
		r := src.Stream("model")
		switch *model {
		case "ba":
			g = gen.BarabasiAlbert(r, *n, *m)
		case "holme-kim":
			g = gen.HolmeKim(r, *n, *m, *pt)
		case "forest-fire":
			g = gen.ForestFire(r, *n, *pt)
		case "er":
			g = gen.ErdosRenyiGNM(r, *n, int(*m))
		case "ws":
			g = gen.WattsStrogatz(r, *n, int(*m), *pt)
		case "collab":
			g = gen.Collaboration(r, *n, int(*m), 3, 0.3)
		default:
			fatalf("unknown model %q", *model)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *doAttack {
		sc := attack.Baseline()
		sc.NumFakes = *fakes
		sc.Seed = src.Stream("attack").Uint64()
		w, err := sc.Build(g)
		if err != nil {
			fatalf("attack: %v", err)
		}
		g = w.Graph
		if *truth != "" {
			f, err := os.Create(*truth)
			if err != nil {
				fatalf("%v", err)
			}
			for _, u := range w.Fakes() {
				fmt.Fprintln(f, u)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote ground truth (%d fakes) to %s\n", w.NumFakes(), *truth)
		}
	}

	if *stats {
		s := g.Stats(src.Stream("stats"))
		fmt.Printf("nodes:                  %d\n", s.Nodes)
		fmt.Printf("friendships:            %d\n", s.Friendships)
		fmt.Printf("rejections:             %d\n", s.Rejections)
		fmt.Printf("avg degree:             %.2f\n", s.AvgDegree)
		fmt.Printf("clustering coefficient: %.4f\n", s.ClusteringCoefficient)
		fmt.Printf("diameter (approx):      %d\n", s.Diameter)
		fmt.Printf("components:             %d (largest %d)\n", s.Components, s.LargestComponent)
	}
	if *out != "" {
		write := graphio.WriteFile
		if *binOut {
			write = graphio.WriteBinaryFile
		}
		if err := write(*out, g); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %d nodes, %d friendships, %d rejections to %s\n",
			g.NumNodes(), g.NumFriendships(), g.NumRejections(), *out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
