package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/server"
)

// buildBinary compiles rejectod once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rejectod")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rejectod: %v\n%s", err, out)
	}
	return bin
}

// writeBaseGraph persists a small friendship base for the daemon to load.
func writeBaseGraph(t *testing.T, dir string, n int) string {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+9)%n))
	}
	path := filepath.Join(dir, "base.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// daemon wraps a running rejectod process.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	output bytes.Buffer // guarded: the scanner goroutine appends while tests read
}

func (d *daemon) appendOutput(line string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.output.WriteString(line + "\n")
}

func (d *daemon) outputString() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.output.String()
}

// startDaemon launches rejectod and waits for its listen line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-listen", "127.0.0.1:0")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // single interleaved stream is fine for tests
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.appendOutput(line)
			if rest, ok := strings.CutPrefix(line, "rejectod listening on "); ok {
				select {
				case addrc <- rest:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("rejectod never announced its listen address; output:\n%s", d.outputString())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// terminate sends SIGTERM and returns the exit code.
func (d *daemon) terminate(t *testing.T) int {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("waiting for rejectod: %v", err)
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("rejectod did not exit after SIGTERM; output:\n%s", d.outputString())
	}
	return -1
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func postBody(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGracefulShutdownExitsZero is the happy-path e2e: ingest a workload over
// HTTP, run a detection, SIGTERM — the daemon drains, flushes its journal and
// trace, and exits 0; the journal then replays to the served suspect sets.
func TestGracefulShutdownExitsZero(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	base := writeBaseGraph(t, dir, 60)
	journal := filepath.Join(dir, "events.log")
	trace := filepath.Join(dir, "run.jsonl")

	d := startDaemon(t, bin, "-graph", base, "-threshold", "0.5", "-seed", "3",
		"-journal", journal, "-trace", trace)

	var events []server.Event
	for i := 0; i < 30; i++ {
		from := graph.NodeID(i % 10)
		to := graph.NodeID(10 + (i+3)%50)
		events = append(events, server.Event{Type: server.EvRequest, From: from, To: to, Interval: 0})
		typ := server.EvReject
		if i%5 == 0 {
			typ = server.EvAccept
		}
		events = append(events, server.Event{Type: typ, From: from, To: to, Interval: 0})
	}
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp := postBody(t, d.url("/v1/events"), body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/events = %d", resp.StatusCode)
	}

	resp = postBody(t, d.url("/v1/detect"), []byte("{}"))
	var ep struct {
		Epoch     int64 `json:"epoch"`
		Events    int   `json:"events"`
		Intervals []struct {
			Interval int            `json:"interval"`
			Suspects []graph.NodeID `json:"suspects"`
		} `json:"intervals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ep.Epoch < 1 || ep.Events != len(events)/2 {
		t.Fatalf("detect epoch %d over %d events, want >=1 over %d", ep.Epoch, ep.Events, len(events)/2)
	}

	if code := d.terminate(t); code != 0 {
		t.Fatalf("clean shutdown exited %d; output:\n%s", code, d.outputString())
	}
	if !strings.Contains(d.outputString(), "drained cleanly") {
		t.Fatalf("missing drain confirmation; output:\n%s", d.outputString())
	}

	// The flushed journal replays to the suspect sets the daemon served.
	logged, err := graphio.ReadRequestsFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if want := server.EventsToRequests(events); !reflect.DeepEqual(logged, want) {
		t.Fatalf("journal holds %d requests, want %d", len(logged), len(want))
	}
	g, err := graphio.ReadAny(base)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.DetectSharded(g, logged, core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: 3},
		AcceptanceThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ep.Intervals) {
		t.Fatalf("batch replay found %d intervals, daemon served %d", len(batch), len(ep.Intervals))
	}
	for i := range batch {
		if !reflect.DeepEqual(batch[i].Detection.Suspects, ep.Intervals[i].Suspects) {
			t.Fatalf("interval %d: batch replay suspects %v, daemon served %v",
				batch[i].Interval, batch[i].Detection.Suspects, ep.Intervals[i].Suspects)
		}
	}

	// The trace must be valid JSONL with at least one sweep event.
	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range bytes.Split(traceData, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if !json.Valid(line) {
			t.Fatalf("trace line is not valid JSON: %q", line)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("trace file is empty after a detection ran")
	}
}

// TestInterruptedDetectionExits130: a daemon terminated mid-detection must
// interrupt it between rounds, still drain, and exit 130 — the same
// convention as cmd/rejecto.
func TestInterruptedDetectionExits130(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	base := writeBaseGraph(t, dir, 80)

	// Pre-write a journal with enough rejection-bearing intervals that a
	// detection over it takes long enough to be caught in flight.
	journal := filepath.Join(dir, "events.log")
	var reqs []core.TimedRequest
	for iv := 0; iv < 2000; iv++ {
		for k := 0; k < 10; k++ {
			reqs = append(reqs, core.TimedRequest{
				From:     graph.NodeID(k),
				To:       graph.NodeID(20 + (iv+k*7)%60),
				Accepted: false,
				Interval: iv,
			})
		}
	}
	if err := graphio.WriteRequestsFile(journal, reqs); err != nil {
		t.Fatal(err)
	}

	// Periodic detection (rather than POST /v1/detect) so no HTTP request
	// hangs on the running detection during shutdown.
	d := startDaemon(t, bin, "-graph", base, "-threshold", "0.5", "-seed", "3",
		"-journal", journal, "-detect-every", "50ms")
	if !strings.Contains(d.outputString(), "recovered") {
		t.Fatalf("daemon did not recover the journal; output:\n%s", d.outputString())
	}

	// Wait until a detection is genuinely in flight.
	deadline := time.Now().Add(30 * time.Second)
	inflight := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/v1/stats"))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			DetectInflight bool `json:"detect_inflight"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.DetectInflight {
			inflight = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !inflight {
		t.Fatalf("no detection went in flight; output:\n%s", d.outputString())
	}

	if code := d.terminate(t); code != 130 {
		t.Fatalf("interrupted shutdown exited %d, want 130; output:\n%s", code, d.outputString())
	}
	if !strings.Contains(d.outputString(), "interrupted") {
		t.Fatalf("missing interruption notice; output:\n%s", d.outputString())
	}
}
