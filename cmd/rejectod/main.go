// Command rejectod runs Rejecto as a long-lived online detection service:
// it ingests friend-request lifecycle events over HTTP/JSON, journals every
// answered request to an append-only log, periodically (and on demand) runs
// the batch detection engine over a snapshot of that log, and serves the
// latest suspects.
//
// Usage:
//
//	rejectod -graph base.txt [-listen :8080]
//	         [-target 100 | -threshold 0.5] [-detect-every 30s]
//	         [-journal events.log | -store-dir data/]
//	         [-segment-bytes 4194304] [-snapshot-every 100000]
//	         [-queue 1024]
//	         [-cluster-shards 4] [-cluster-workers 2]
//	         [-incremental] [-incr-max-patch 0.25] [-no-warm-start]
//	         [-score-deny 0.8] [-score-throttle 0.5] [-score-window 1024]
//	         [-kmin 0.03125] [-kmax 32] [-seed 42]
//	         [-ml] [-ml-coarsest 128] [-ml-max-levels 0]
//	         [-trace run.jsonl] [-v] [-debug-addr :6060]
//
// -store-dir selects the segmented storage engine (internal/storage): the
// journal lives in fixed-size CRC32C-checksummed segments, -snapshot-every
// persists a snapshot (journal prefix + frozen read model + incremental
// memo) after detections once that many new records accumulated, and
// restart replays only the delta since the last snapshot. A torn tail left
// by a crash is truncated on boot; any other checksum failure refuses to
// start (see docs/OPERATIONS.md). -journal keeps the flat text journal
// instead; the two are mutually exclusive.
//
// -cluster-shards N runs the multi-node sharded rejectod (internal/cluster):
// ingest and journaling partition by the sender's user-ID range, detection
// by interval, each shard running its own incremental engine over its own
// segmented journal partition under -store-dir (which is required and
// becomes the cluster root, one shard-NNN directory per shard). A
// coordinator ships batches and epoch deltas to -cluster-workers dist
// workers (default: one per shard) over the in-process transport and merges
// the per-shard detections into epochs byte-identical to a single-node
// server over the same journal. Mutually exclusive with -journal,
// -incremental, and -snapshot-every; GET /v1/stats gains a "backend"
// section with per-shard records, engine progress, and step timings, and
// /debug/vars the rejecto.cluster_* counters.
//
// -incremental switches the detector to the incremental epoch engine
// (internal/incr): each detection patches the previous epoch's frozen
// snapshots with the journal delta instead of re-folding the whole log,
// reuses untouched intervals, and warm-starts each interval's sweep from
// the previous epoch's cut (quality-gated; -no-warm-start forces cold
// solves, making the published suspect sets byte-identical to batch mode).
// -incr-max-patch bounds the delta-to-graph edge ratio above which a
// snapshot is rebuilt cold. GET /v1/stats reports the mode plus the last
// epoch's patch/reuse/warm breakdown, and /debug/vars carries the
// rejecto.incr_* counters.
//
// The real-time verdict path (internal/score) serves GET/POST /v1/score:
// per-account online features (request rate, rejection velocity,
// acceptance trajectory) maintained inline by the ingest fold, fused with
// the last published epoch's suspect set into an allow/throttle/deny
// verdict. -score-deny and -score-throttle set the verdict thresholds,
// -score-window the sliding-window width (in answered requests) of the
// rate features. Serving latency histograms appear at /debug/vars as
// rejecto.server.score_latency and rejecto.server.ingest_latency.
//
// Endpoints:
//
//	POST /v1/events      {"type":"accept","from":1,"to":2,"interval":0}
//	                     (or an array); request|accept|reject|ignore.
//	                     202 on enqueue; 429 + Retry-After on a full queue
//	POST /v1/detect      run detection now, respond with the new epoch
//	GET  /v1/suspects    last epoch's per-interval suspect sets
//	GET  /v1/users/{id}  one user's stats and suspect status
//	GET  /v1/score       real-time verdict: ?id=7 (repeatable for a batch)
//	POST /v1/score       same, JSON body {"id": 7} or {"ids": [7, 9]}
//	GET  /v1/stats       queue depth, counters, epoch summary, score stats
//	GET  /healthz        liveness
//
// The server's state is a pure function of its journal: restarting with the
// same -journal file recovers exactly, and `rejecto -graph base.txt
// -requests events.log` reproduces the server's suspect sets byte for byte.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, any running
// detection is interrupted between rounds, the ingest queue drains, the
// journal and trace flush, and the process exits 0 — or 130 when a
// detection round was interrupted, mirroring cmd/rejecto.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() { os.Exit(run()) }

// run carries the whole command so deferred cleanups (trace flush, journal
// close via Shutdown) execute before the process exits.
func run() int {
	var (
		graphPath   = flag.String("graph", "", "path to the friendship base graph (required)")
		listen      = flag.String("listen", ":8080", "HTTP listen address")
		target      = flag.Int("target", 0, "per-interval estimated spammer count (termination condition)")
		threshold   = flag.Float64("threshold", 0, "acceptance-rate termination threshold, e.g. 0.5")
		detectEvery = flag.Duration("detect-every", 0, "run detection on this period (0 disables; POST /v1/detect always works)")
		journal     = flag.String("journal", "", "append answered requests to this flat text file; recovers state from it on start")
		storeDir    = flag.String("store-dir", "", "journal in segmented, checksummed storage under this directory (mutually exclusive with -journal)")
		segBytes    = flag.Int64("segment-bytes", 0, "with -store-dir, seal and roll segments at this size (0 = default 4 MiB)")
		snapEvery   = flag.Int("snapshot-every", 0, "with -store-dir, persist a snapshot after a detection once this many new records accumulated (0 disables)")
		queueSize   = flag.Int("queue", 1024, "ingest queue bound; a full queue answers 429")
		clShards    = flag.Int("cluster-shards", 0, "run the multi-node sharded backend with this many shards (requires -store-dir as the cluster root)")
		clWorkers   = flag.Int("cluster-workers", 0, "with -cluster-shards, the worker count shards are placed on (0 = one per shard)")
		incremental = flag.Bool("incremental", false, "use the incremental epoch engine: patch snapshots and warm-start sweeps instead of re-folding the journal")
		incrPatch   = flag.Float64("incr-max-patch", 0, "delta-to-graph edge ratio above which a snapshot rebuilds cold (0 = default 0.25)")
		noWarm      = flag.Bool("no-warm-start", false, "with -incremental, solve every round cold (byte-identical to batch mode)")
		scoreDeny   = flag.Float64("score-deny", 0, "/v1/score deny threshold (0 = default 0.8)")
		scoreThrot  = flag.Float64("score-throttle", 0, "/v1/score throttle threshold (0 = default 0.5)")
		scoreWindow = flag.Int("score-window", 0, "sliding-window width of the score rate features, in answered requests (0 = default 1024)")
		kmin        = flag.Float64("kmin", 0, "minimum friends-to-rejections ratio in the sweep")
		kmax        = flag.Float64("kmax", 0, "maximum friends-to-rejections ratio in the sweep")
		mlSweep     = flag.Bool("ml", false, "run sweeps through the multilevel coarsen/solve/refine ladder")
		mlCoarse    = flag.Int("ml-coarsest", 0, "multilevel: stop coarsening below this many nodes (0 = default)")
		mlLevels    = flag.Int("ml-max-levels", 0, "multilevel: maximum coarsening levels (0 = default)")
		seed        = flag.Uint64("seed", 42, "random seed")
		tracePath   = flag.String("trace", "", "write a JSONL event trace of every detection to this file")
		verbose     = flag.Bool("v", false, "print a per-round summary table after each detection epoch")
		debugAddr   = flag.String("debug-addr", "", "serve expvar and pprof on this address, e.g. :6060")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		return 2
	}
	if *target == 0 && *threshold == 0 {
		return fail("need -target or -threshold as a termination condition")
	}

	if *debugAddr != "" {
		// The default mux carries /debug/pprof/ (blank import above) and
		// /debug/vars (expvar via package obs); the rejecto.* and
		// rejecto.server.* counters appear there as the pipeline runs.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rejectod: debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug server: http://%s/debug/vars and http://%s/debug/pprof/\n", *debugAddr, *debugAddr)
	}

	g, err := graphio.ReadAny(*graphPath)
	if err != nil {
		return fail("reading graph: %v", err)
	}
	fmt.Printf("loaded %s: %d users, %d friendships, %d rejections\n",
		*graphPath, g.NumNodes(), g.NumFriendships(), g.NumRejections())

	// Tracer stack: JSONL sink, human summary, or both — same assembly as
	// cmd/rejecto, but long-lived across every detection epoch.
	var tracers []obs.Tracer
	var jsonl *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail("creating trace file: %v", err)
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		defer func() {
			if err := jsonl.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rejectod: flushing trace: %v\n", err)
			}
		}()
		tracers = append(tracers, jsonl)
	}
	var summary *obs.Summary
	if *verbose {
		summary = obs.NewSummary()
		tracers = append(tracers, summary)
	}

	detector := core.DetectorOptions{
		Cut: core.CutOptions{
			KMin: *kmin, KMax: *kmax, RandSeed: *seed,
			Multilevel: *mlSweep, MLCoarsestNodes: *mlCoarse, MLMaxLevels: *mlLevels,
		},
		TargetCount:         *target,
		AcceptanceThreshold: *threshold,
	}

	var backend server.Backend
	var store storage.Store
	if *clShards > 0 {
		// Cluster mode: the coordinator owns the store directory (one
		// segmented partition per shard) and the detection strategy; the
		// flat-journal, incremental, and snapshot paths don't compose.
		if *storeDir == "" {
			return fail("-cluster-shards requires -store-dir as the cluster journal root")
		}
		if *journal != "" || *incremental || *snapEvery > 0 {
			return fail("-cluster-shards is mutually exclusive with -journal, -incremental, and -snapshot-every")
		}
		coord, err := cluster.New(cluster.Config{
			Base:             g,
			Detector:         detector,
			Shards:           *clShards,
			Workers:          *clWorkers,
			Dir:              *storeDir,
			SegmentBytes:     *segBytes,
			PatchMaxFraction: *incrPatch,
			Tracer:           obs.Multi(tracers...),
		})
		if err != nil {
			return fail("building cluster: %v", err)
		}
		backend = coord
		workers := *clWorkers
		if workers <= 0 {
			workers = *clShards
		}
		fmt.Printf("cluster backend: %d shards on %d workers under %s\n",
			*clShards, workers, *storeDir)
	} else if *storeDir != "" {
		if *journal != "" {
			return fail("-journal and -store-dir are mutually exclusive")
		}
		store, err = storage.Open(storage.Options{
			Dir:          *storeDir,
			SegmentBytes: *segBytes,
			Tracer:       obs.Multi(tracers...),
		})
		if err != nil {
			return fail("opening store: %v", err)
		}
	} else if *snapEvery > 0 {
		return fail("-snapshot-every requires -store-dir")
	}

	srv, err := server.New(server.Config{
		Base:             g,
		Detector:         detector,
		DetectEvery:      *detectEvery,
		QueueSize:        *queueSize,
		JournalPath:      *journal,
		Store:            store,
		Backend:          backend,
		SnapshotEvery:    *snapEvery,
		Tracer:           obs.Multi(tracers...),
		Incremental:      *incremental,
		PatchMaxFraction: *incrPatch,
		DisableWarmStart: *noWarm,
		Score: score.Options{
			DenyThreshold:     *scoreDeny,
			ThrottleThreshold: *scoreThrot,
			WindowEvents:      *scoreWindow,
		},
	})
	if err != nil {
		return fail("%v", err)
	}
	if ep := srv.CurrentEpoch(); ep.Events > 0 {
		source := *journal
		if *storeDir != "" {
			source = *storeDir
		}
		fmt.Printf("recovered %d answered requests from %s\n", ep.Events, source)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail("listening: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("rejectod listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("rejectod: shutting down")
	case err := <-serveErr:
		return fail("serving: %v", err)
	}

	// Drain order matters: stop the listener first so no new events race
	// the queue drain, then let the server interrupt detection, drain the
	// queue, and flush the journal.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rejectod: http shutdown: %v\n", err)
	}
	interrupted, err := srv.Shutdown(shutdownCtx)
	if err != nil {
		return fail("shutdown: %v", err)
	}
	if summary != nil {
		summary.WriteTable(os.Stdout)
		fmt.Println()
		summary.WritePhases(os.Stdout)
	}
	if interrupted {
		fmt.Println("rejectod: a detection round was interrupted; its completed prefix was published")
		return 130
	}
	fmt.Println("rejectod: drained cleanly")
	return 0
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rejectod: "+format+"\n", args...)
	return 1
}
