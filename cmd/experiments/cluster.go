package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simulate"
)

// runCluster measures the multi-node sharded rejectod against the
// single-node engine on one journal: merged-epoch equality (the
// byte-identity invariant) and how ingest and epoch wall-clock scale with
// the shard count, with a per-shard breakdown of the widest layout.
func runCluster(cfg simulate.Config, _ *cliArgs) error {
	n := max(400, int(2000*cfg.Scale))
	journalLen := max(5000, int(40000*cfg.Scale))
	const intervals = 8

	opts := core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: cfg.Seed, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}
	w := newIncrWorld(cfg.Seed, n, journalLen, intervals, 0.01)

	singleStart := time.Now()
	single, err := core.DetectSharded(w.base, w.journal, opts)
	if err != nil {
		return err
	}
	singleWall := time.Since(singleStart)

	t := simulate.NewTable(
		fmt.Sprintf("Multi-node rejectod — %d users, %d-record journal, %d intervals (single-node epoch: %s)",
			n, journalLen, intervals, singleWall.Round(time.Millisecond)),
		"shards", "workers", "ingest+flush", "epoch", "boundary", "epoch==single")

	var widest *cluster.Coordinator
	for _, shards := range []int{1, 2, 4} {
		dir, err := os.MkdirTemp("", "exp-cluster-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		c, err := cluster.New(cluster.Config{
			Base:     w.base,
			Detector: opts,
			Shards:   shards,
			Dir:      dir,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		if _, err := c.Recover(nil); err != nil {
			return err
		}

		ingestStart := time.Now()
		for _, req := range w.journal {
			if err := c.Append(req); err != nil {
				return err
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
		ingestWall := time.Since(ingestStart)

		epochStart := time.Now()
		merged, err := c.Detect(len(w.journal), nil)
		if err != nil {
			return err
		}
		epochWall := time.Since(epochStart)

		same, err := sameDetections(merged, single)
		if err != nil {
			return err
		}
		st := c.Stats().(cluster.Stats)
		t.AddRow(shards, st.Workers,
			ingestWall.Round(time.Millisecond).String(),
			epochWall.Round(time.Millisecond).String(),
			st.Boundary, same)
		if shards == 4 {
			widest = c
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	st := widest.Stats().(cluster.Stats)
	pt := simulate.NewTable(
		fmt.Sprintf("Per-shard breakdown at %d shards (last epoch)", st.Shards),
		"shard", "worker", "journal", "owned", "stepped", "suspects", "patch ms", "solve ms")
	for _, s := range st.PerShard {
		pt.AddRow(s.Shard, s.Worker, s.Records, s.Owned, s.Stepped, s.Suspects,
			fmt.Sprintf("%.2f", s.PatchMS), fmt.Sprintf("%.2f", s.SolveMS))
	}
	return pt.Render(os.Stdout)
}
