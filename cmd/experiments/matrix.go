package main

import (
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/adversary"
	"repro/internal/ensemble"
	"repro/internal/simulate"
)

// Matrix constants are pinned: the committed results/MATRIX.json must be
// reproducible from a bare `experiments -run matrix`, so the seeds and scale
// are not wired to the generic -seed/-scale flags.
var (
	matrixTrainSeeds = []uint64{101, 102}
	matrixEvalSeeds  = []uint64{1, 2, 3}
)

const matrixPinnedPrecision = 0.80

// runMatrix fills the adversary/defense matrix: every adaptive attacker
// strategy against every fusion defense, averaged over the pinned eval
// seeds, reporting recall at the pinned precision floor. -matrix-out writes
// the machine-readable artifact the CI floor check compares against.
func runMatrix(_ simulate.Config, args *cliArgs) error {
	m, err := ensemble.RunMatrix(adversary.DefaultScale,
		matrixTrainSeeds, matrixEvalSeeds, matrixPinnedPrecision)
	if err != nil {
		return err
	}

	fmt.Printf("Adversary/defense matrix — recall @ precision ≥ %.2f (mean over %d seeds)\n",
		m.PinnedPrecision, len(m.EvalSeeds))
	fmt.Printf("world: %d organic + %d initial fakes, %d rounds; calibrated weights: %v\n\n",
		m.Scale.NumLegit, m.Scale.NumFakes, m.Scale.Rounds, m.CalibratedWeights)

	defenses := ensemble.Defenses()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "strategy")
	for _, d := range defenses {
		fmt.Fprintf(w, "\t%s", d.Name)
	}
	fmt.Fprintln(w)
	for _, f := range adversary.Strategies() {
		fmt.Fprintf(w, "%s", f.Name)
		for _, d := range defenses {
			c, ok := m.Cell(f.Name, d.Name)
			if !ok {
				fmt.Fprintf(w, "\t-")
				continue
			}
			fmt.Fprintf(w, "\t%.3f (p %.2f)", c.Recall, c.Precision)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nensemble beats rejecto-only on %d/%d strategies (strictly higher recall, no precision loss)\n",
		m.ImprovementCount("ensemble", "rejecto"), len(adversary.Strategies()))

	if args.matrixOut != "" {
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(args.matrixOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", args.matrixOut)
	}
	return nil
}
