package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulate"
)

// mlWorld builds the sweep-latency scenario: nL legitimate users on a
// ring plus random chords with scattered legit-to-legit rejections, and nF
// fakes spraying requests that are mostly rejected — the same planted
// shape BenchmarkMAARSweep times, regenerated here at -scale.
func mlWorld(seed uint64, nL, nF int) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, 99))
	g := graph.New(nL + nF)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		for c := 0; c < 5; c++ {
			if v := graph.NodeID(r.IntN(nL)); v != graph.NodeID(i) {
				g.AddFriendship(graph.NodeID(i), v)
			}
		}
	}
	for i := 0; i < nL/2; i++ {
		if u, v := r.IntN(nL), r.IntN(nL); u != v {
			g.AddRejection(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 6 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(nL+r.IntN(i)))
		}
		for req := 0; req < 12; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	return g
}

// runML compares the flat frozen sweep against the multilevel ladder
// across graph sizes and restart counts. The ladder's fixed cost (coarsen,
// coarse k-grid, refinement) is paid once per sweep while the flat engine
// pays the full k-grid per extra init, so the speedup column should grow
// down the restart ladder; the acceptance columns should agree (the gate
// never publishes a multilevel cut worse than the flat one).
func runML(cfg simulate.Config, _ *cliArgs) error {
	type point struct {
		nL, nF   int
		restarts int
	}
	points := []point{
		{6000, 1500, 12},
		{12000, 3000, 12},
		{24000, 6000, 1},
		{24000, 6000, 4},
		{24000, 6000, 12},
	}

	t := simulate.NewTable(
		fmt.Sprintf("Multilevel sweeps — flat vs coarsen/solve/refine ladder (scale %.2f, seed %d)",
			cfg.Scale, cfg.Seed),
		"users", "restarts", "flat sweep", "ml sweep", "speedup", "flat acc", "ml acc")

	worlds := map[int]*graph.Frozen{}
	for _, p := range points {
		nL, nF := int(float64(p.nL)*cfg.Scale), int(float64(p.nF)*cfg.Scale)
		if nL < 100 || nF < 25 {
			return fmt.Errorf("-scale %.2f leaves too few users for the ml experiment", cfg.Scale)
		}
		n := nL + nF
		f, ok := worlds[n]
		if !ok {
			f = mlWorld(cfg.Seed, nL, nF).Freeze()
			worlds[n] = f
		}
		opts := core.CutOptions{Parallelism: 1, Restarts: p.restarts, RandSeed: cfg.Seed}
		mlOpts := opts
		mlOpts.Multilevel = true

		start := time.Now()
		flat, okFlat := core.FindMAARCutFrozen(f, opts)
		flatDur := time.Since(start)
		start = time.Now()
		mlCut, okML := core.FindMAARCutFrozen(f, mlOpts)
		mlDur := time.Since(start)
		if !okFlat || !okML {
			return fmt.Errorf("n=%d r=%d: no cut found (flat %v, ml %v)", n, p.restarts, okFlat, okML)
		}
		if mlCut.Acceptance > flat.Acceptance+1e-12 {
			return fmt.Errorf("n=%d r=%d: multilevel acceptance %.6f worse than flat %.6f",
				n, p.restarts, mlCut.Acceptance, flat.Acceptance)
		}
		t.AddRow(n, p.restarts,
			flatDur.Round(time.Millisecond).String(),
			mlDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(flatDur)/float64(mlDur)),
			fmt.Sprintf("%.4f", flat.Acceptance),
			fmt.Sprintf("%.4f", mlCut.Acceptance))
	}
	return t.Render(os.Stdout)
}
