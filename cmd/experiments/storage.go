package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/incr"
	"repro/internal/simulate"
	"repro/internal/storage"
)

// storageSegBytes keeps segments small enough that the journal spans
// several of them, so compaction and the per-segment scan are exercised.
const storageSegBytes = 128 * 1024

// runStorage measures what a rejectod restart costs and recovers under the
// segmented store: where boot records come from at different snapshot
// coverages, what a torn tail costs, and whether the recovered state's next
// epoch stays byte-identical to a cold batch replay — including across a
// storm of seeded crash injections.
func runStorage(cfg simulate.Config, _ *cliArgs) error {
	n := max(400, int(2000*cfg.Scale))
	journalLen := max(5000, int(50000*cfg.Scale))
	const intervals = 8

	opts := core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: cfg.Seed, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}
	w := newIncrWorld(cfg.Seed, n, journalLen, intervals, 0.01)

	cold, err := core.DetectSharded(w.base, w.journal, opts)
	if err != nil {
		return err
	}

	t := simulate.NewTable(
		fmt.Sprintf("Durability & recovery — segmented store restart (%d users, %d-record journal, %dKiB segments)",
			n, journalLen, storageSegBytes/1024),
		"scenario", "records", "from snap", "from segs", "torn B", "recovery", "epoch==batch")

	for _, sc := range []struct {
		name     string
		coverage float64 // journal fraction covered by the snapshot; <0 = none
		memo     bool
		torn     int // garbage bytes appended to the live segment pre-boot
	}{
		{"segments only", -1, false, 0},
		{"snapshot 50%", 0.50, false, 0},
		{"snapshot 99% + memo", 0.99, true, 0},
		{"99% + torn tail", 0.99, true, 7},
	} {
		info, identical, err := storageScenario(w, opts, cold, sc.coverage, sc.memo, sc.torn)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		t.AddRow(sc.name, info.Records, info.SnapshotRecords, info.SegmentRecords,
			info.TornBytesTruncated, info.Duration.Round(100*time.Microsecond).String(),
			identical)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// The crash storm: seeded fault injection at every storage crash point,
	// reopening after each simulated crash, resuming the append stream from
	// whatever survived. The bar is the one the property tests enforce —
	// every recovery yields a journal prefix and the final epoch is
	// byte-identical to the cold batch replay.
	const seeds, maxFaults = 8, 4
	crashes, reopens := 0, 0
	for s := uint64(1); s <= seeds; s++ {
		c, r, err := storageCrashStorm(w, cold, opts, cfg.Seed+s, maxFaults)
		if err != nil {
			return fmt.Errorf("crash storm seed %d: %w", s, err)
		}
		crashes += c
		reopens += r
	}
	fmt.Printf("crash storm: %d seeds x <=%d faults -> %d injected crashes, %d recoveries, every final epoch byte-identical to cold replay\n",
		seeds, maxFaults, crashes, reopens)
	return nil
}

// storageScenario seeds a fresh store with w's journal (snapshotting at the
// given coverage), optionally tears the live segment, reboots, and reports
// the recovery shape plus whether the recovered state's epoch matches the
// cold batch detections.
func storageScenario(w *incrWorld, opts core.DetectorOptions, cold []core.IntervalDetection, coverage float64, memo bool, torn int) (storage.RecoveryInfo, bool, error) {
	var info storage.RecoveryInfo
	dir, err := os.MkdirTemp("", "exp-storage-*")
	if err != nil {
		return info, false, err
	}
	defer os.RemoveAll(dir)

	st, err := storage.Open(storage.Options{Dir: dir, SegmentBytes: storageSegBytes})
	if err != nil {
		return info, false, err
	}
	if _, err := st.Recover(nil); err != nil {
		return info, false, err
	}
	snapAt := -1
	if coverage >= 0 {
		snapAt = int(coverage * float64(len(w.journal)))
	}
	for i, req := range w.journal {
		if err := st.Append(req); err != nil {
			return info, false, err
		}
		if i+1 == snapAt {
			if err := st.Flush(); err != nil {
				return info, false, err
			}
			snap := storage.SnapshotState{
				Count:    snapAt,
				Requests: w.journal[:snapAt],
				Frozen:   foldJournal(w.base, w.journal[:snapAt]),
			}
			if memo {
				m, err := memoAt(w, opts, snapAt)
				if err != nil {
					return info, false, err
				}
				snap.Memo = m
			}
			if err := st.Snapshot(snap); err != nil {
				return info, false, err
			}
		}
	}
	if err := st.Close(); err != nil {
		return info, false, err
	}
	if torn > 0 {
		if err := tearLiveSegment(dir, torn); err != nil {
			return info, false, err
		}
	}

	st, err = storage.Open(storage.Options{Dir: dir, SegmentBytes: storageSegBytes})
	if err != nil {
		return info, false, err
	}
	defer st.Close()
	var log []core.TimedRequest
	rec, err := st.Recover(func(reqs []core.TimedRequest) error {
		log = append(log, reqs...)
		return nil
	})
	if err != nil {
		return info, false, err
	}
	info = rec.Info

	// The epoch the restarted server would serve: memo-primed engine steps
	// over the tail when the snapshot carried one, cold detection otherwise.
	// Warm starts stay off on both sides (as in the identity tests and
	// rejectod's -disable-warm-start) — warm sweeps are quality-gated but
	// not byte-identical, and byte-identity is what this column reports.
	var epoch []core.IntervalDetection
	if rec.Memo != nil {
		eng, err := incr.NewEngine(incr.Config{Base: w.base, Detector: opts, DisableWarm: true})
		if err != nil {
			return info, false, err
		}
		if err := eng.ImportMemo(rec.Memo); err != nil {
			return info, false, err
		}
		var tail incr.Delta
		tail.Requests = log[rec.SnapshotCount:]
		if epoch, _, err = eng.Step(tail); err != nil {
			return info, false, err
		}
	} else {
		if epoch, err = core.DetectSharded(w.base, log, opts); err != nil {
			return info, false, err
		}
	}
	same, err := sameDetections(epoch, cold)
	return info, same, err
}

// storageCrashStorm appends w's journal under a seeded fault injector,
// reopening after every simulated crash and resuming from the recovered
// prefix. Returns crash and reopen counts; errors if a recovery is not a
// journal prefix or the final epoch diverges from cold.
func storageCrashStorm(w *incrWorld, cold []core.IntervalDetection, opts core.DetectorOptions, seed uint64, maxFaults int) (crashes, reopens int, err error) {
	dir, err := os.MkdirTemp("", "exp-storage-chaos-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)

	faults := chaos.NewStoreFaults(chaos.StoreFaultOptions{Seed: seed, PCrash: 0.01, MaxFaults: maxFaults})
	open := func() (storage.Store, []core.TimedRequest, error) {
		st, err := storage.Open(storage.Options{Dir: dir, SegmentBytes: storageSegBytes, Hooks: faults})
		if err != nil {
			return nil, nil, err
		}
		var log []core.TimedRequest
		if _, err := st.Recover(func(reqs []core.TimedRequest) error {
			log = append(log, reqs...)
			return nil
		}); err != nil {
			st.Close()
			if errors.Is(err, storage.ErrCrashed) {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("recover: %w", err)
		}
		return st, log, nil
	}

	next := 0 // journal index to append next
	for attempt := 0; ; attempt++ {
		if attempt > 50 {
			return crashes, reopens, fmt.Errorf("no clean pass in %d attempts", attempt)
		}
		st, log, err := open()
		if err != nil {
			if errors.Is(err, storage.ErrCrashed) {
				crashes++
				continue
			}
			return crashes, reopens, err
		}
		reopens++
		if len(log) > next || !sameLog(log, w.journal[:len(log)]) {
			st.Close()
			return crashes, reopens, fmt.Errorf("recovered %d records, not a flushed prefix of %d appended", len(log), next)
		}
		next = len(log)
		crashed := false
		for ; next < len(w.journal); next++ {
			if err := st.Append(w.journal[next]); err != nil {
				if errors.Is(err, storage.ErrCrashed) {
					crashed = true
					break
				}
				st.Close()
				return crashes, reopens, err
			}
			if next%500 == 499 {
				if err := st.Flush(); err != nil {
					if errors.Is(err, storage.ErrCrashed) {
						crashed = true
						break
					}
					st.Close()
					return crashes, reopens, err
				}
			}
		}
		if crashed {
			crashes++
			st.Close()
			continue
		}
		if err := st.Close(); err != nil {
			if errors.Is(err, storage.ErrCrashed) {
				crashes++
				continue
			}
			return crashes, reopens, err
		}
		break
	}

	// Final clean boot: the journal must be complete and its epoch cold-equal.
	st, log, err := open()
	if err != nil {
		return crashes, reopens, err
	}
	defer st.Close()
	reopens++
	if !sameLog(log, w.journal) {
		return crashes, reopens, fmt.Errorf("final recovery lost records: %d of %d", len(log), len(w.journal))
	}
	epoch, err := core.DetectSharded(w.base, log, opts)
	if err != nil {
		return crashes, reopens, err
	}
	same, err := sameDetections(epoch, cold)
	if err != nil {
		return crashes, reopens, err
	}
	if !same {
		return crashes, reopens, fmt.Errorf("final epoch diverged from cold batch replay")
	}
	return crashes, reopens, nil
}

// foldJournal is the server's read-model fold: base + answered requests,
// canonically frozen.
func foldJournal(base *graph.Graph, reqs []core.TimedRequest) *graph.Frozen {
	g := base.Clone()
	for _, req := range reqs {
		if req.Accepted {
			g.AddFriendship(req.From, req.To)
		} else {
			g.AddRejection(req.To, req.From)
		}
	}
	return g.FreezeCanonical()
}

// memoAt exports the incremental engine's memo after stepping the first
// count journal records — what rejectod persists into a snapshot when
// running with -incremental.
func memoAt(w *incrWorld, opts core.DetectorOptions, count int) (*incr.MemoState, error) {
	eng, err := incr.NewEngine(incr.Config{Base: w.base, Detector: opts, DisableWarm: true})
	if err != nil {
		return nil, err
	}
	var prime incr.Delta
	prime.Requests = w.journal[:count]
	if _, _, err := eng.Step(prime); err != nil {
		return nil, err
	}
	return eng.ExportMemo()
}

// tearLiveSegment appends garbage to the lexicographically last segment
// file — the live one — standing in for a crash mid-write.
func tearLiveSegment(dir string, n int) error {
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("no segment files to tear: %v", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(bytes.Repeat([]byte{0xEE}, n))
	return err
}

func sameLog(a, b []core.TimedRequest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameDetections compares two detection results the way the property tests
// do: by their JSON encoding, the server's own reply format.
func sameDetections(a, b []core.IntervalDetection) (bool, error) {
	if len(a) == 0 && len(b) == 0 {
		return true, nil
	}
	ja, err := json.Marshal(a)
	if err != nil {
		return false, err
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ja, jb), nil
}
