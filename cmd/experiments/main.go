// Command experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a full run next to the published values.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9 [-dataset Facebook] [-scale 1] [-seed 42]
//	experiments -run all -scale 0.2
//	experiments -run table2 -table2-users 50000,100000,200000
//	experiments -run table2 -trace table2.jsonl   # + phase attribution
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simulate"
)

type experiment struct {
	id    string
	about string
	run   func(cfg simulate.Config, args *cliArgs) error
}

type cliArgs struct {
	table2Users   string
	table2Workers int
	table2Latency time.Duration
	tracePath     string
	matrixOut     string
}

func main() {
	var (
		runID   = flag.String("run", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		dataset = flag.String("dataset", "Facebook", "Table I dataset for single-graph figures")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
		seed    = flag.Uint64("seed", 42, "root random seed")
		trials  = flag.Int("trials", 1, "trials to average per point")
		args    cliArgs
	)
	flag.StringVar(&args.table2Users, "table2-users", "", "comma-separated user counts for table2")
	flag.IntVar(&args.table2Workers, "table2-workers", 5, "cluster size for table2")
	flag.DurationVar(&args.table2Latency, "table2-latency", 500*time.Microsecond, "simulated per-call latency for table2")
	flag.StringVar(&args.tracePath, "trace", "", "write a JSONL event trace of the table2 run and print phase attribution")
	flag.StringVar(&args.matrixOut, "matrix-out", "", "write the adversary/defense matrix JSON artifact to this path")
	flag.Parse()

	exps := experiments()
	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-8s %s\n", e.id, e.about)
		}
		if *runID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := simulate.Config{
		Dataset: *dataset,
		Scale:   *scale,
		Seed:    *seed,
		Trials:  *trials,
	}.WithDefaults()

	selected := make([]experiment, 0, len(exps))
	for _, e := range exps {
		if *runID == "all" || e.id == *runID {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
		os.Exit(2)
	}
	for _, e := range selected {
		start := time.Now()
		if err := e.run(cfg, &args); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func experiments() []experiment {
	exps := []experiment{
		{"table1", "the seven evaluation graphs: published vs generated stats", runTable1},
		{"fig1", "qualitative §II analog: friends vs pending requests on fake accounts", runFig1},
		{"fig9", "precision vs requests per fake (all fakes spam)", sweepRunner("Fig 9", "requests/fake", simulate.Config.Fig9Points)},
		{"fig10", "precision vs requests per fake (half the fakes spam)", sweepRunner("Fig 10", "requests/fake", simulate.Config.Fig10Points)},
		{"fig11", "precision vs rejection rate of spam requests", sweepRunner("Fig 11", "spam rejection rate", simulate.Config.Fig11Points)},
		{"fig12", "precision vs rejection rate of legitimate requests", sweepRunner("Fig 12", "legit rejection rate", simulate.Config.Fig12Points)},
		{"fig13", "collusion resilience: extra intra-fake edges per fake", sweepRunner("Fig 13", "extra edges/fake", simulate.Config.Fig13Points)},
		{"fig14", "self-rejection resilience: whitewash rejection rate", sweepRunner("Fig 14", "self-rejection rate", simulate.Config.Fig14Points)},
		{"fig15", "rejections cast by spammers on legitimate requests", sweepRunner("Fig 15", "rejections (K)", simulate.Config.Fig15Points)},
		{"fig16", "defense in depth: SybilRank AUC vs accounts removed", runFig16},
		{"fig17", "Fig 9-12 sweeps on the six other graphs", runFig17},
		{"fig18", "Fig 13-15 sweeps on the six other graphs", runFig18},
		{"table2", "distributed-engine scalability", runTable2},
		{"incr", "incremental epochs: latency vs delta size, cold vs patched+warm", runIncr},
		{"ml", "multilevel sweeps: flat vs coarsen/solve/refine latency across sizes and restarts", runML},
		{"storage", "durability & recovery: restart shape by snapshot coverage, torn tails, crash storm", runStorage},
		{"cluster", "multi-node sharded rejectod: single vs sharded epoch equality, shard scaling, per-shard timing", runCluster},
		{"score", "real-time verdicts vs batch-only: precision/recall on a post-epoch spam wave", runScore},
		{"matrix", "adversary/defense matrix: adaptive strategies × fusion defenses", runMatrix},
	}
	return exps
}

func sweepRunner(title, xLabel string, points func(simulate.Config) []simulate.SweepPoint) func(simulate.Config, *cliArgs) error {
	return func(cfg simulate.Config, _ *cliArgs) error {
		outcomes, err := cfg.Sweep(points(cfg))
		if err != nil {
			return err
		}
		t := simulate.OutcomeTable(
			fmt.Sprintf("%s — %s (scale %.2f, seed %d)", title, cfg.Dataset, cfg.Scale, cfg.Seed),
			xLabel, outcomes)
		return t.Render(os.Stdout)
	}
}

func runTable1(cfg simulate.Config, _ *cliArgs) error {
	rows, err := cfg.TableI()
	if err != nil {
		return err
	}
	t := simulate.NewTable("Table I — evaluation graphs (published vs generated stand-in)",
		"graph", "nodes", "edges(paper)", "edges", "cc(paper)", "cc", "diam(paper)", "diam")
	for _, r := range rows {
		t.AddRow(r.Name, r.Nodes, r.PaperEdges, r.Edges, r.PaperCC, r.CC, r.PaperDiameter, r.Diameter)
	}
	return t.Render(os.Stdout)
}

func runFig1(cfg simulate.Config, _ *cliArgs) error {
	// 43 accounts with ≥ 50 requested contacts, like the purchased set of
	// §II; targets accept 30%, explicitly reject 35%, ignore the rest.
	sum, err := cfg.Fig1(43, 80, 0.30, 0.35)
	if err != nil {
		return err
	}
	t := simulate.NewTable("Fig 1 (qualitative §II analog) — fake-account footprint",
		"account", "friends", "pending", "pending fraction")
	for _, r := range sum.Rows {
		frac := 0.0
		if r.Friends+r.Pending > 0 {
			frac = float64(r.Pending) / float64(r.Friends+r.Pending)
		}
		t.AddRow(int(r.Account), r.Friends, r.Pending, frac)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("pending fraction: min %.3f, median %.3f, max %.3f (paper: 0.167–0.679)\n",
		sum.MinFraction, sum.MedianFraction, sum.MaxFraction)
	return nil
}

func runFig16(cfg simulate.Config, _ *cliArgs) error {
	for _, ds := range []string{"Facebook", "ca-AstroPh"} {
		dcfg := cfg
		dcfg.Dataset = ds
		points, err := dcfg.Fig16(dcfg.Fig16Removals())
		if err != nil {
			return err
		}
		t := simulate.NewTable(
			fmt.Sprintf("Fig 16 — SybilRank AUC after Rejecto removals (%s, scale %.2f)", ds, cfg.Scale),
			"removed", "auc")
		for _, p := range points {
			t.AddRow(p.Removed, p.AUC)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runFig17(cfg simulate.Config, _ *cliArgs) error {
	cols := []simulate.Fig17Scenario{
		simulate.Fig17AllSpam, simulate.Fig17HalfSpam,
		simulate.Fig17SpamRejRate, simulate.Fig17LegitRate,
	}
	for _, ds := range simulate.AppendixGraphs() {
		for _, col := range cols {
			dcfg := cfg
			dcfg.Dataset = ds
			outcomes, err := dcfg.Sweep(dcfg.Fig17Points(col))
			if err != nil {
				return err
			}
			t := simulate.OutcomeTable(
				fmt.Sprintf("Fig 17 — %s / %s (scale %.2f)", ds, col, cfg.Scale),
				string(col), outcomes)
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func runFig18(cfg simulate.Config, _ *cliArgs) error {
	cols := []simulate.Fig18Scenario{
		simulate.Fig18Collusion, simulate.Fig18SelfRejection, simulate.Fig18RejectLegit,
	}
	for _, ds := range simulate.AppendixGraphs() {
		for _, col := range cols {
			dcfg := cfg
			dcfg.Dataset = ds
			outcomes, err := dcfg.Sweep(dcfg.Fig18Points(col))
			if err != nil {
				return err
			}
			t := simulate.OutcomeTable(
				fmt.Sprintf("Fig 18 — %s / %s (scale %.2f)", ds, col, cfg.Scale),
				string(col), outcomes)
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func runTable2(cfg simulate.Config, args *cliArgs) error {
	tcfg := simulate.TableIIConfig{
		Workers:        args.table2Workers,
		LatencyPerCall: args.table2Latency,
		Seed:           cfg.Seed,
	}
	if args.table2Users != "" {
		for _, field := range strings.Split(args.table2Users, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -table2-users entry %q", field)
			}
			tcfg.UserCounts = append(tcfg.UserCounts, n)
		}
	}
	// A -trace run captures every size point in one JSONL stream and one
	// summary; the phase attribution below therefore aggregates across the
	// whole sweep (the per-round table would conflate size points, so only
	// the freeze/sweep/prune totals are printed here).
	var summary *obs.Summary
	if args.tracePath != "" {
		f, err := os.Create(args.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONL(f)
		defer func() {
			if err := jsonl.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "flushing trace: %v\n", err)
			}
		}()
		summary = obs.NewSummary()
		tcfg.Tracer = obs.Multi(jsonl, summary)
	}
	rows, err := simulate.TableII(tcfg)
	if err != nil {
		return err
	}
	if summary != nil {
		defer func() {
			fmt.Printf("\nphase attribution across the sweep (trace: %s):\n", args.tracePath)
			summary.WritePhases(os.Stdout)
		}()
	}
	t := simulate.NewTable(
		fmt.Sprintf("Table II — distributed-engine scalability (%d workers, %s simulated RTT)",
			args.table2Workers, args.table2Latency),
		"users", "edges", "wall", "rpc calls", "MB sent", "MB recv", "net time")
	for _, r := range rows {
		t.AddRow(r.Users, r.Edges, r.WallTime.Round(time.Millisecond).String(),
			r.Calls,
			fmt.Sprintf("%.1f", float64(r.BytesSent)/1e6),
			fmt.Sprintf("%.1f", float64(r.BytesRecv)/1e6),
			r.VirtualNetworkTime.Round(time.Millisecond).String())
	}
	return t.Render(os.Stdout)
}
