package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/incr"
	"repro/internal/simulate"
)

// incrWorld builds the epoch-latency scenario: a ring-plus-chords
// friendship base, a journal of answered requests spread over intervals
// (high-ID senders mostly rejected, like a spam campaign riding benign
// traffic), and a delta generator producing the given fraction of the
// journal, landing in the last interval.
type incrWorld struct {
	base      *graph.Graph
	journal   []core.TimedRequest
	deltaSize int
	intervals int
	r         *rand.Rand
}

func newIncrWorld(seed uint64, n, journal, intervals int, deltaFrac float64) *incrWorld {
	r := rand.New(rand.NewPCG(seed, 1))
	base := graph.New(n)
	for i := 0; i < n; i++ {
		base.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
		base.AddFriendship(graph.NodeID(i), graph.NodeID((i+9)%n))
	}
	w := &incrWorld{
		base:      base,
		deltaSize: max(1, int(deltaFrac*float64(journal))),
		intervals: intervals,
		r:         r,
	}
	w.journal = w.requests(journal, -1)
	return w
}

// requests draws answered requests; interval -1 spreads them uniformly.
func (w *incrWorld) requests(count, interval int) []core.TimedRequest {
	n := w.base.NumNodes()
	out := make([]core.TimedRequest, 0, count)
	for len(out) < count {
		u, v := graph.NodeID(w.r.IntN(n)), graph.NodeID(w.r.IntN(n))
		if u == v {
			continue
		}
		rejectP := 0.25
		if int(u) >= n*9/10 { // top decile are the campaign senders
			rejectP = 0.8
		}
		iv := interval
		if iv < 0 {
			iv = len(out) % w.intervals
		}
		out = append(out, core.TimedRequest{
			From: u, To: v,
			Accepted: w.r.Float64() >= rejectP,
			Interval: iv,
		})
	}
	return out
}

func (w *incrWorld) delta() incr.Delta {
	var d incr.Delta
	for _, req := range w.requests(w.deltaSize, w.intervals-1) {
		d.AddRequest(req)
	}
	return d
}

// runIncr measures epoch latency at small delta sizes, the incremental
// engine against the cold batch baseline (re-running core.DetectSharded
// over the grown journal, the way rejectod's default mode does).
func runIncr(cfg simulate.Config, _ *cliArgs) error {
	n := max(200, int(400*cfg.Scale))
	journalLen := max(2000, int(8000*cfg.Scale))
	const intervals, epochs = 8, 3

	opts := core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: cfg.Seed, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}

	t := simulate.NewTable(
		fmt.Sprintf("Incremental epochs — latency vs delta size (%d users, %d-request journal, %d intervals, %d epochs/point)",
			n, journalLen, intervals, epochs),
		"delta", "reqs", "cold epoch", "incr epoch", "speedup", "patched", "reused", "warm", "fallbacks")

	for _, frac := range []float64{0.001, 0.01, 0.1} {
		// Cold baseline: each epoch re-detects journal + accumulated deltas.
		w := newIncrWorld(cfg.Seed, n, journalLen, intervals, frac)
		reqs := append([]core.TimedRequest{}, w.journal...)
		var coldTotal time.Duration
		for e := 0; e < epochs; e++ {
			reqs = append(reqs, w.delta().Requests...)
			start := time.Now()
			if _, err := core.DetectSharded(w.base, reqs, opts); err != nil {
				return err
			}
			coldTotal += time.Since(start)
		}

		// Incremental: prime the engine with the journal, then step deltas.
		w = newIncrWorld(cfg.Seed, n, journalLen, intervals, frac)
		eng, err := incr.NewEngine(incr.Config{Base: w.base, Detector: opts})
		if err != nil {
			return err
		}
		var prime incr.Delta
		prime.Requests = w.journal
		if _, _, err := eng.Step(prime); err != nil {
			return err
		}
		var incrTotal time.Duration
		patched, reused, warm, fallbacks := 0, 0, 0, 0
		for e := 0; e < epochs; e++ {
			d := w.delta()
			start := time.Now()
			_, stats, err := eng.Step(d)
			if err != nil {
				return err
			}
			incrTotal += time.Since(start)
			patched += stats.Patched
			reused += stats.Reused
			warm += stats.WarmRounds
			fallbacks += stats.Fallbacks
		}

		cold := coldTotal / epochs
		inc := incrTotal / epochs
		t.AddRow(
			fmt.Sprintf("%.1f%%", 100*frac),
			w.deltaSize,
			cold.Round(time.Millisecond).String(),
			inc.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(cold)/float64(inc)),
			patched, reused, warm, fallbacks)
	}
	return t.Render(os.Stdout)
}
