package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/score"
	"repro/internal/simulate"
)

// scoreWorld is the real-time-scoring scenario: a ring-plus-chords base, an
// established spam campaign that the batch epoch has already seen, and a
// fresh wave of spammers that activates only after the epoch was cut — the
// traffic the batch signal is structurally blind to until the next detection.
type scoreWorld struct {
	base    *graph.Graph
	n       int
	est     []graph.NodeID // spam before the epoch cut
	fresh   []graph.NodeID // spam only after it
	spam    []bool         // ground truth, indexed by account
	r       *rand.Rand
	journal []core.TimedRequest // phase A: what the epoch covers
	storm   []core.TimedRequest // phase B: post-epoch traffic
}

func newScoreWorld(seed uint64, n, est, fresh, burst int, rejRate float64) *scoreWorld {
	w := &scoreWorld{base: graph.New(n), n: n, spam: make([]bool, n),
		r: rand.New(rand.NewPCG(seed, 0x5c03e))}
	for i := 0; i < n; i++ {
		w.base.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
		w.base.AddFriendship(graph.NodeID(i), graph.NodeID((i+9)%n))
	}

	// Spam accounts are spread evenly across the ID space (alternating
	// established/fresh) so they are not ring neighbors of each other — a
	// contiguous block would let the graph cut sweep in the still-quiet
	// fresh accounts purely by adjacency and muddy the comparison.
	spacing := n / (est + fresh)
	for i := 0; i < est+fresh; i++ {
		u := graph.NodeID(i * spacing)
		w.spam[u] = true
		if i%2 == 0 {
			w.est = append(w.est, u)
		} else {
			w.fresh = append(w.fresh, u)
		}
	}

	// Phase A: benign background plus the established campaign, spread over
	// two intervals so DetectSharded has rejection-bearing shards to cut.
	w.journal = w.benign(2*n, 0)
	for _, u := range w.est {
		for k := 0; k < burst; k++ {
			w.journal = append(w.journal, w.spamReq(u, rejRate, 1))
		}
	}

	// Phase B: the fresh wave bursts against continuing benign traffic.
	// Interleaving is uniform so rate windows see a realistic mix.
	w.storm = w.benign(2*n, 2)
	for _, u := range w.fresh {
		for k := 0; k < burst; k++ {
			w.storm = append(w.storm, w.spamReq(u, rejRate, 2))
		}
	}
	w.r.Shuffle(len(w.storm), func(i, j int) { w.storm[i], w.storm[j] = w.storm[j], w.storm[i] })
	return w
}

// benign draws count answered requests from non-spam senders, accepted at
// the friendly 80% rate.
func (w *scoreWorld) benign(count, interval int) []core.TimedRequest {
	out := make([]core.TimedRequest, 0, count)
	for len(out) < count {
		u, v := graph.NodeID(w.r.IntN(w.n)), graph.NodeID(w.r.IntN(w.n))
		if u == v || w.spam[u] {
			continue
		}
		out = append(out, core.TimedRequest{From: u, To: v,
			Accepted: w.r.Float64() < 0.8, Interval: interval})
	}
	return out
}

func (w *scoreWorld) spamReq(u graph.NodeID, rejRate float64, interval int) core.TimedRequest {
	for {
		v := graph.NodeID(w.r.IntN(w.n))
		if v == u || w.spam[v] {
			continue
		}
		return core.TimedRequest{From: u, To: v, Accepted: w.r.Float64() >= rejRate, Interval: interval}
	}
}

func (w *scoreWorld) isSpam(id int) bool { return w.spam[id] }

// prf computes precision and recall of a predicate classifier against the
// world's spam ground truth.
func (w *scoreWorld) prf(flagged func(id int) bool) (precision, recall float64) {
	var tp, fp, fn int
	for id := 0; id < w.n; id++ {
		switch {
		case flagged(id) && w.isSpam(id):
			tp++
		case flagged(id):
			fp++
		case w.isSpam(id):
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// runScore measures what the real-time path buys over the batch epoch alone:
// it cuts an epoch over the pre-wave journal, replays the post-epoch storm
// into a Scorer fused with that epoch, and reports precision/recall of three
// classifiers — batch-only (epoch suspect set), real-time deny, and
// real-time deny∪throttle — across a grid of fresh-wave burst sizes and
// rejection rates. The batch column's recall ceiling is the established
// fraction of the ground truth; the real-time columns show the online
// features closing the gap on the wave the epoch never saw.
func runScore(cfg simulate.Config, _ *cliArgs) error {
	n := max(600, int(3000*cfg.Scale))
	est := max(8, n/50)
	fresh := est

	opts := core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: cfg.Seed, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}

	t := simulate.NewTable(
		fmt.Sprintf("Real-time scoring vs batch-only — %d users, %d established + %d fresh spammers (seed %d)",
			n, est, fresh, cfg.Seed),
		"burst", "rej rate", "batch P", "batch R", "deny P", "deny R", "deny∪thr P", "deny∪thr R")

	for _, burst := range []int{8, 24, 64} {
		for _, rejRate := range []float64{0.6, 0.85} {
			w := newScoreWorld(cfg.Seed, n, est, fresh, burst, rejRate)

			dets, err := core.DetectSharded(w.base, w.journal, opts)
			if err != nil {
				return err
			}
			epochSuspect := make(map[graph.NodeID]bool)
			var suspects []graph.NodeID
			for _, d := range dets {
				for _, u := range d.Detection.Suspects {
					if !epochSuspect[u] {
						epochSuspect[u] = true
						suspects = append(suspects, u)
					}
				}
			}

			sc, err := score.New(n, score.Options{})
			if err != nil {
				return err
			}
			for _, req := range w.journal {
				sc.Observe(req.From, req.Accepted)
			}
			sc.PublishEpoch(score.NewEpochView(0, int64(len(w.journal)), n, suspects))
			for _, req := range w.storm {
				sc.Observe(req.From, req.Accepted)
			}

			bp, br := w.prf(func(id int) bool { return epochSuspect[graph.NodeID(id)] })
			dp, dr := w.prf(func(id int) bool {
				return sc.Score(graph.NodeID(id)).Verdict == score.VerdictDeny
			})
			tp, tr := w.prf(func(id int) bool {
				return sc.Score(graph.NodeID(id)).Verdict != score.VerdictAllow
			})
			t.AddRow(burst, rejRate, bp, br, dp, dr, tp, tr)
		}
	}
	return t.Render(os.Stdout)
}
