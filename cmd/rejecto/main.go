// Command rejecto runs friend-spammer detection on a rejection-augmented
// social graph file (see internal/graphio for the format) and prints the
// detected groups.
//
// Usage:
//
//	rejecto -graph graph.txt [-target 100 | -threshold 0.5]
//	        [-legit-seeds 1,2,3] [-spammer-seeds 40,41]
//	        [-kmin 0.03125] [-kmax 32] [-seed 42] [-out suspects.txt]
//	        [-workers 4]  # >0 runs on the distributed engine
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the augmented social graph (required)")
		target    = flag.Int("target", 0, "estimated number of friend spammers (termination condition)")
		threshold = flag.Float64("threshold", 0, "acceptance-rate termination threshold, e.g. 0.5")
		legit     = flag.String("legit-seeds", "", "comma-separated known-legitimate node IDs")
		spammer   = flag.String("spammer-seeds", "", "comma-separated known-spammer node IDs")
		kmin      = flag.Float64("kmin", 0, "minimum friends-to-rejections ratio in the sweep")
		kmax      = flag.Float64("kmax", 0, "maximum friends-to-rejections ratio in the sweep")
		seed      = flag.Uint64("seed", 42, "random seed")
		out       = flag.String("out", "", "write suspect IDs to this file (default: stdout)")
		workers   = flag.Int("workers", 0, "run on the in-process distributed engine with this many workers")
		requests  = flag.String("requests", "", "request-log file for per-interval sharded detection (§VII); -graph supplies the friendship base")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *target == 0 && *threshold == 0 {
		fatalf("need -target or -threshold as a termination condition")
	}

	g, err := graphio.ReadAny(*graphPath)
	if err != nil {
		fatalf("reading graph: %v", err)
	}
	fmt.Printf("loaded %s: %d users, %d friendships, %d rejections\n",
		*graphPath, g.NumNodes(), g.NumFriendships(), g.NumRejections())

	seeds := core.Seeds{
		Legit:   parseIDs(*legit, g.NumNodes()),
		Spammer: parseIDs(*spammer, g.NumNodes()),
	}
	cutOpts := core.CutOptions{KMin: *kmin, KMax: *kmax, Seeds: seeds, RandSeed: *seed}
	opts := core.DetectorOptions{
		Cut:                 cutOpts,
		TargetCount:         *target,
		AcceptanceThreshold: *threshold,
	}

	if *requests != "" {
		runSharded(g, *requests, opts)
		return
	}

	start := time.Now()
	var det core.Detection
	if *workers > 0 {
		det, err = detectDistributed(g, opts, *workers)
	} else {
		det, err = core.Detect(g, opts)
	}
	if err != nil {
		fatalf("detection: %v", err)
	}
	fmt.Printf("detection finished in %s: %d rounds, %d groups, %d suspects\n",
		time.Since(start).Round(time.Millisecond), det.Rounds, len(det.Groups), len(det.Suspects))
	for _, grp := range det.Groups {
		fmt.Printf("  round %d: %d accounts, aggregate acceptance %.3f (k=%.3f)\n",
			grp.Round, len(grp.Members), grp.Acceptance, grp.K)
	}

	if *out == "" {
		for _, u := range det.Suspects {
			fmt.Println(u)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("creating %s: %v", *out, err)
	}
	defer f.Close()
	for _, u := range det.Suspects {
		fmt.Fprintln(f, u)
	}
	fmt.Printf("wrote %d suspect IDs to %s\n", len(det.Suspects), *out)
}

// runSharded executes the §VII deployment: requests sharded by time
// interval, one detection per interval over the friendship base.
func runSharded(base *graph.Graph, path string, opts core.DetectorOptions) {
	reqs, err := graphio.ReadRequestsFile(path)
	if err != nil {
		fatalf("reading requests: %v", err)
	}
	fmt.Printf("loaded %d timed requests from %s\n", len(reqs), path)
	dets, err := core.DetectSharded(base, reqs, opts)
	if err != nil {
		fatalf("sharded detection: %v", err)
	}
	for _, d := range dets {
		fmt.Printf("interval %d: %d suspects in %d round(s)\n",
			d.Interval, len(d.Detection.Suspects), d.Detection.Rounds)
		for _, u := range d.Detection.Suspects {
			fmt.Printf("  %d\n", u)
		}
	}
}

func detectDistributed(g *graph.Graph, opts core.DetectorOptions, workers int) (core.Detection, error) {
	c := dist.NewLocalCluster(workers, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		return core.Detection{}, err
	}
	cfg := dist.DetectorConfig{
		Cut:                 opts.Cut,
		TargetCount:         opts.TargetCount,
		AcceptanceThreshold: opts.AcceptanceThreshold,
	}
	det := dist.NewDetector(c, g.NumNodes(), cfg)
	res, err := det.Detect(cfg)
	if err != nil {
		return core.Detection{}, err
	}
	io := c.IO()
	fmt.Printf("distributed run: %d workers, %s\n", workers, io)
	return res, nil
}

func parseIDs(s string, n int) []graph.NodeID {
	if s == "" {
		return nil
	}
	var out []graph.NodeID
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || v < 0 || v >= n {
			fatalf("bad node ID %q", field)
		}
		out = append(out, graph.NodeID(v))
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rejecto: "+format+"\n", args...)
	os.Exit(1)
}
