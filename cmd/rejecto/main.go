// Command rejecto runs friend-spammer detection on a rejection-augmented
// social graph file (see internal/graphio for the format) and prints the
// detected groups.
//
// Usage:
//
//	rejecto -graph graph.txt [-target 100 | -threshold 0.5]
//	        [-legit-seeds 1,2,3] [-spammer-seeds 40,41]
//	        [-kmin 0.03125] [-kmax 32] [-seed 42] [-out suspects.txt]
//	        [-ml] [-ml-coarsest 128] [-ml-max-levels 0]
//	        [-workers 4]  # >0 runs on the distributed engine
//	        [-retry-attempts 4] [-retry-timeout 0] [-retry-backoff 5ms]
//	        [-chaos-seed 7]  # inject a seeded fault schedule (distributed only)
//	        [-trace run.jsonl] [-v] [-debug-addr :6060]
//
// Observability:
//
//	-trace file   write one JSON line per pipeline event (package obs)
//	-v            print a per-round summary table and phase attribution
//	-debug-addr   serve expvar counters (/debug/vars, rejecto.* keys) and
//	              net/http/pprof (/debug/pprof/) on this address
//
// SIGINT/SIGTERM interrupt detection cleanly between rounds: the rounds
// completed so far are reported, the suspect list is still written, the
// trace is flushed, and the process exits with status 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
)

func main() { os.Exit(run()) }

// run carries the whole command so deferred cleanups (trace flush, output
// files) execute before the process exits — fatalf-style os.Exit calls are
// confined to flag validation, before any resource is open.
func run() int {
	var (
		graphPath = flag.String("graph", "", "path to the augmented social graph (required)")
		target    = flag.Int("target", 0, "estimated number of friend spammers (termination condition)")
		threshold = flag.Float64("threshold", 0, "acceptance-rate termination threshold, e.g. 0.5")
		legit     = flag.String("legit-seeds", "", "comma-separated known-legitimate node IDs")
		spammer   = flag.String("spammer-seeds", "", "comma-separated known-spammer node IDs")
		kmin      = flag.Float64("kmin", 0, "minimum friends-to-rejections ratio in the sweep")
		kmax      = flag.Float64("kmax", 0, "maximum friends-to-rejections ratio in the sweep")
		mlSweep   = flag.Bool("ml", false, "run sweeps through the multilevel coarsen/solve/refine ladder")
		mlCoarse  = flag.Int("ml-coarsest", 0, "multilevel: stop coarsening below this many nodes (0 = default)")
		mlLevels  = flag.Int("ml-max-levels", 0, "multilevel: maximum coarsening levels (0 = default)")
		seed      = flag.Uint64("seed", 42, "random seed")
		out       = flag.String("out", "", "write suspect IDs to this file (default: stdout)")
		workers   = flag.Int("workers", 0, "run on the in-process distributed engine with this many workers")
		retryAtt  = flag.Int("retry-attempts", 0, "max attempts per cluster RPC (0 = engine default)")
		retryTO   = flag.Duration("retry-timeout", 0, "per-RPC timeout classified as transient (0 = none)")
		retryBack = flag.Duration("retry-backoff", 0, "base backoff between RPC retries (0 = engine default)")
		chaosSeed = flag.Uint64("chaos-seed", 0, "inject the seeded 'mixed' chaos fault schedule into the distributed run (0 = off)")
		requests  = flag.String("requests", "", "request-log file for per-interval sharded detection (§VII); -graph supplies the friendship base")
		tracePath = flag.String("trace", "", "write a JSONL event trace to this file")
		verbose   = flag.Bool("v", false, "print per-round summary table and phase attribution")
		debugAddr = flag.String("debug-addr", "", "serve expvar and pprof on this address, e.g. :6060")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		return 2
	}
	if *target == 0 && *threshold == 0 {
		return fail("need -target or -threshold as a termination condition")
	}

	if *debugAddr != "" {
		// The default mux already carries /debug/pprof/ (blank import
		// above) and /debug/vars (expvar, pulled in by package obs); the
		// rejecto.* counters appear there as soon as the pipeline runs.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rejecto: debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug server: http://%s/debug/vars and http://%s/debug/pprof/\n", *debugAddr, *debugAddr)
	}

	g, err := graphio.ReadAny(*graphPath)
	if err != nil {
		return fail("reading graph: %v", err)
	}
	fmt.Printf("loaded %s: %d users, %d friendships, %d rejections\n",
		*graphPath, g.NumNodes(), g.NumFriendships(), g.NumRejections())

	seeds := core.Seeds{
		Legit:   parseIDs(*legit, g.NumNodes()),
		Spammer: parseIDs(*spammer, g.NumNodes()),
	}
	if seeds.Legit == nil && *legit != "" || seeds.Spammer == nil && *spammer != "" {
		return 1 // parseIDs already reported
	}

	// Assemble the tracer stack: JSONL sink, human summary, or both.
	var tracers []obs.Tracer
	var jsonl *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail("creating trace file: %v", err)
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		defer func() {
			if err := jsonl.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rejecto: flushing trace: %v\n", err)
			}
		}()
		tracers = append(tracers, jsonl)
	}
	var summary *obs.Summary
	if *verbose {
		summary = obs.NewSummary()
		tracers = append(tracers, summary)
	}
	tracer := obs.Multi(tracers...)

	// SIGINT/SIGTERM close ctx.Done(); the detectors poll it between
	// rounds, so an interrupted run still returns its completed rounds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cutOpts := core.CutOptions{
		KMin: *kmin, KMax: *kmax, Seeds: seeds, RandSeed: *seed, Tracer: tracer,
		Multilevel: *mlSweep, MLCoarsestNodes: *mlCoarse, MLMaxLevels: *mlLevels,
	}
	opts := core.DetectorOptions{
		Cut:                 cutOpts,
		TargetCount:         *target,
		AcceptanceThreshold: *threshold,
		Cancel:              ctx.Done(),
	}

	if *requests != "" {
		return runSharded(g, *requests, opts)
	}
	if *chaosSeed != 0 && *workers <= 0 {
		return fail("-chaos-seed needs the distributed engine; pass -workers too")
	}

	retry := dist.RetryPolicy{
		MaxAttempts: *retryAtt,
		Timeout:     *retryTO,
		BaseBackoff: *retryBack,
		JitterSeed:  *seed,
	}

	start := time.Now()
	var det core.Detection
	if *workers > 0 {
		det, err = detectDistributed(g, opts, *workers, retry, *chaosSeed, tracer, ctx.Done())
	} else {
		det, err = core.Detect(g, opts)
	}
	interrupted := errors.Is(err, core.ErrInterrupted)
	if err != nil && !interrupted {
		return fail("detection: %v", err)
	}
	if interrupted {
		fmt.Printf("interrupted after %s: partial results below (%d completed rounds)\n",
			time.Since(start).Round(time.Millisecond), det.Rounds)
	} else {
		fmt.Printf("detection finished in %s: %d rounds, %d groups, %d suspects\n",
			time.Since(start).Round(time.Millisecond), det.Rounds, len(det.Groups), len(det.Suspects))
	}
	for _, grp := range det.Groups {
		fmt.Printf("  round %d: %d accounts, aggregate acceptance %.3f (k=%.3f)\n",
			grp.Round, len(grp.Members), grp.Acceptance, grp.K)
	}
	if summary != nil {
		fmt.Println()
		summary.WriteTable(os.Stdout)
		fmt.Println()
		summary.WritePhases(os.Stdout)
	}

	if code := writeSuspects(det, *out); code != 0 {
		return code
	}
	if interrupted {
		return 130
	}
	return 0
}

// writeSuspects emits the suspect list to stdout or -out.
func writeSuspects(det core.Detection, out string) int {
	if out == "" {
		for _, u := range det.Suspects {
			fmt.Println(u)
		}
		return 0
	}
	f, err := os.Create(out)
	if err != nil {
		return fail("creating %s: %v", out, err)
	}
	defer f.Close()
	for _, u := range det.Suspects {
		fmt.Fprintln(f, u)
	}
	fmt.Printf("wrote %d suspect IDs to %s\n", len(det.Suspects), out)
	return 0
}

// runSharded executes the §VII deployment: requests sharded by time
// interval, one detection per interval over the friendship base.
func runSharded(base *graph.Graph, path string, opts core.DetectorOptions) int {
	reqs, err := graphio.ReadRequestsFile(path)
	if err != nil {
		return fail("reading requests: %v", err)
	}
	fmt.Printf("loaded %d timed requests from %s\n", len(reqs), path)
	dets, err := core.DetectSharded(base, reqs, opts)
	if err != nil && !errors.Is(err, core.ErrInterrupted) {
		return fail("sharded detection: %v", err)
	}
	for _, d := range dets {
		fmt.Printf("interval %d: %d suspects in %d round(s)\n",
			d.Interval, len(d.Detection.Suspects), d.Detection.Rounds)
		for _, u := range d.Detection.Suspects {
			fmt.Printf("  %d\n", u)
		}
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Println("interrupted: intervals above are the completed prefix")
		return 130
	}
	return 0
}

func detectDistributed(g *graph.Graph, opts core.DetectorOptions, workers int, retry dist.RetryPolicy, chaosSeed uint64, tr obs.Tracer, cancel <-chan struct{}) (core.Detection, error) {
	var c *dist.Cluster
	var ct *chaos.Transport
	if chaosSeed != 0 {
		// Build the cluster by hand so the chaos layer sits between the
		// master and the local transport, and the retry path measures
		// timeouts/backoff on the chaos virtual clock.
		ws := make([]*dist.Worker, workers)
		for i := range ws {
			ws[i] = dist.NewWorker()
		}
		stats := &dist.IOStats{}
		mix, _ := chaos.Class("mixed")
		mix.Seed = chaosSeed
		mix.Tracer = tr
		ct = chaos.Wrap(dist.NewLocalTransport(ws, stats, 0), mix)
		c = dist.NewCluster(ct, stats)
		c.SetClock(ct.Clock())
	} else {
		c = dist.NewLocalCluster(workers, 0)
	}
	defer c.Close()
	c.SetTracer(tr)
	if err := c.LoadGraph(g, 2); err != nil {
		return core.Detection{}, err
	}
	if ct != nil {
		ct.Arm() // loading is fault-free; detection runs under fire
	}
	cfg := dist.DetectorConfig{
		Cut:                 opts.Cut,
		TargetCount:         opts.TargetCount,
		AcceptanceThreshold: opts.AcceptanceThreshold,
		Cancel:              cancel,
		Retry:               retry,
	}
	det := dist.NewDetector(c, g.NumNodes(), cfg)
	res, err := det.Detect(cfg)
	if err != nil {
		return res, err
	}
	io := c.IO()
	fmt.Printf("distributed run: %d workers, %s\n", workers, io)
	if ct != nil {
		ct.Disarm()
		fmt.Printf("chaos seed %d: %d faults over %d calls, %v virtual network time\n",
			chaosSeed, len(ct.Log()), ct.Calls(), ct.Clock().Elapsed())
		counts := ct.Counts()
		for kind := chaos.FaultLatency; kind <= chaos.FaultRestartDone; kind++ {
			if n := counts[kind]; n > 0 {
				fmt.Printf("  %s: %d\n", kind, n)
			}
		}
	}
	return res, nil
}

func parseIDs(s string, n int) []graph.NodeID {
	if s == "" {
		return nil
	}
	var out []graph.NodeID
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || v < 0 || v >= n {
			fmt.Fprintf(os.Stderr, "rejecto: bad node ID %q\n", field)
			return nil
		}
		out = append(out, graph.NodeID(v))
	}
	return out
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rejecto: "+format+"\n", args...)
	return 1
}
