#!/usr/bin/env sh
# Runs the restart/recovery benchmarks (internal/server BenchmarkRestart)
# and emits BENCH_storage.json at the repo root: time-to-serving after a
# process restart for the flat text journal vs the segmented, checksummed
# store with a 99%-coverage snapshot, at 10^5 and 10^6 journaled events.
#
# The acceptance criterion is checked here and the script fails if it does
# not hold: at 10^6 events the segmented backend must recover at least 5x
# faster than the flat journal re-fold.
#
# Usage: scripts/bench_storage.sh [benchtime]   (default 3x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/server/ -run NONE \
	-bench 'BenchmarkRestart/backend=(flat|segmented)/events=[0-9]+' \
	-benchtime "$BENCHTIME" -count 1 -timeout 30m | tee "$tmp"

python3 - "$tmp" "$BENCHTIME" <<'PY' > BENCH_storage.json
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'BenchmarkRestart/backend=(flat|segmented)/events=(\d+)\S*\s+\d+\s+([0-9.e+]+)\s+ns/op', line)
    if not m:
        continue
    backend, events, ns = m.group(1), int(m.group(2)), float(m.group(3))
    rows.setdefault(events, {})[backend] = ns

sizes = []
for events in sorted(rows):
    flat = rows[events].get('flat')
    seg = rows[events].get('segmented')
    entry = {
        'events': events,
        'flat_restart_ns': flat,
        'segmented_restart_ns': seg,
    }
    if flat and seg:
        entry['speedup'] = round(flat / seg, 2)
    sizes.append(entry)

achieved = max((e.get('speedup', 0) for e in sizes if e['events'] >= 1_000_000),
               default=0)
out = {
    'benchmark': 'internal/server BenchmarkRestart (flat journal vs segmented store + snapshot)',
    'benchtime': sys.argv[2],
    'snapshot_coverage': 0.99,
    'sizes': sizes,
    'criterion': {
        'required_speedup': 5.0,
        'at_events': 1_000_000,
        'achieved_speedup': achieved,
        'pass': achieved >= 5.0,
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if not out['criterion']['pass']:
    print(f"FAIL: restart speedup {achieved}x at 10^6 events, need >=5x", file=sys.stderr)
    sys.exit(1)
PY

echo "wrote BENCH_storage.json"
