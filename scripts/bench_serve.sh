#!/usr/bin/env sh
# Serving-path benchmark: builds rejectod + loadgen + graphgen, generates a
# Watts-Strogatz base graph (default 2^20 = 1,048,576 accounts), boots a
# live rejectod on it, and drives it with cmd/loadgen — closed-loop ingest
# plus an open-loop score storm — then emits BENCH_serve.json at the repo
# root with ingest/score p50/p99 latency and epoch staleness under load.
#
# The acceptance criterion is checked here and the script fails if the
# hard floor does not hold: the server-observed per-verdict score p99 must
# stay under 5ms, with an advisory target of 1ms (recorded in the JSON,
# like the storage bench's advisory tier). The storm must also have
# actually served scores and ingested events.
#
# Usage: scripts/bench_serve.sh [nodes] [duration] [score_rps]
#        (defaults: 1048576 10s 10000)
set -eu
cd "$(dirname "$0")/.."

NODES="${1:-1048576}"
DURATION="${2:-10s}"
RPS="${3:-10000}"
PREFILL="${PREFILL:-200000}"
INGEST_RPS="${INGEST_RPS:-50000}"
PORT="${PORT:-18080}"

workdir="$(mktemp -d)"
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	[ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/rejectod" ./cmd/rejectod
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "generating $NODES-node ws base graph..."
"$workdir/graphgen" -model ws -n "$NODES" -m 8 -pt 0.1 -seed 7 \
	-binary -out "$workdir/base.bin"

# Narrow k-sweep + multilevel keep the million-node detections affordable;
# the bench measures the serving path, not cut quality.
"$workdir/rejectod" -graph "$workdir/base.bin" -listen "127.0.0.1:$PORT" \
	-threshold 0.5 -queue 65536 -kmin 0.5 -kmax 4 -ml \
	>"$workdir/rejectod.log" 2>&1 &
SERVER_PID=$!

"$workdir/loadgen" -addr "http://127.0.0.1:$PORT" -accounts "$NODES" \
	-seed 42 -prefill "$PREFILL" -batch 4096 \
	-ingest-conc 2 -ingest-rps "$INGEST_RPS" \
	-duration "$DURATION" -score-rps "$RPS" -score-conc 4 \
	-out "$workdir/report.json" || { cat "$workdir/rejectod.log" >&2; exit 1; }

python3 - "$workdir/report.json" "$NODES" "$DURATION" <<'PY' > BENCH_serve.json
import json, sys

rep = json.load(open(sys.argv[1]))
server = rep.get('server_score') or {}
p99 = server.get('p99_us', 0.0)
p50 = server.get('p50_us', 0.0)

ADVISORY_US = 1000.0
FLOOR_US = 5000.0
served = rep.get('score_achieved_rps', 0) > 0 and rep.get('storm_events', 0) > 0

out = {
    'benchmark': 'cmd/loadgen vs live rejectod (ingest storm + open-loop score storm)',
    'nodes': int(sys.argv[2]),
    'duration': sys.argv[3],
    'seed': rep.get('seed'),
    'prefill_events': rep.get('prefill_events'),
    'prefill_events_per_sec': round(rep.get('prefill_events_per_sec', 0)),
    'detect_seconds': round(rep.get('detect_seconds', 0), 2),
    'storm': {
        'ingest_events': rep.get('storm_events'),
        'ingest_events_per_sec': round(rep.get('storm_events_per_sec', 0)),
        'ingest_batch_p50_us': round(rep['ingest_batch_latency']['p50_us'], 1),
        'ingest_batch_p99_us': round(rep['ingest_batch_latency']['p99_us'], 1),
        'score_target_rps': rep.get('score_target_rps'),
        'score_achieved_rps': round(rep.get('score_achieved_rps', 0)),
        'score_client_p50_us': round(rep['score_client_latency']['p50_us'], 1),
        'score_client_p99_us': round(rep['score_client_latency']['p99_us'], 1),
        'score_server_p50_us': round(p50, 1),
        'score_server_p99_us': round(p99, 1),
        'verdicts': {
            'allow': rep.get('verdict_allows'),
            'throttle': rep.get('verdict_throttles'),
            'deny': rep.get('verdict_denies'),
        },
        'backpressure_429s': rep.get('backpressure_429s'),
        'score_http_errors': rep.get('score_http_errors'),
    },
    'staleness': {
        'max_events': rep.get('max_staleness_events'),
        'final_events': rep.get('final_staleness_events'),
        'samples': rep.get('staleness_samples'),
    },
    'epochs_published': rep.get('epochs_published'),
    'criterion': {
        'metric': 'server-observed per-verdict score p99 (us)',
        'advisory_target_us': ADVISORY_US,
        'floor_us': FLOOR_US,
        'achieved_us': round(p99, 1),
        'advisory_pass': bool(served and p99 < ADVISORY_US),
        'pass': bool(served and p99 < FLOOR_US),
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if not out['criterion']['pass']:
    print(f"FAIL: score p99 {p99:.0f}us (floor {FLOOR_US:.0f}us) or storm served nothing", file=sys.stderr)
    sys.exit(1)
if not out['criterion']['advisory_pass']:
    print(f"note: score p99 {p99:.0f}us misses the 1ms advisory target (floor holds)", file=sys.stderr)
PY

echo "wrote BENCH_serve.json"
