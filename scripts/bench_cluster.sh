#!/usr/bin/env sh
# Runs the multi-node coordinator benchmarks (internal/cluster) and emits
# BENCH_cluster.json at the repo root: ingest timings and merged-epoch
# latency at 1, 2, and 4 shards.
#
# Ingest is reported two ways per layout:
#   - wall_ns:  single-process wall time (all shards share this machine's
#     CPUs and disk, so the fan-out is GOMAXPROCS- and fsync-bound);
#   - shard_busy_ns: the busiest shard's total ship busy time (encode,
#     worker append, fsync), measured with serial fan-out so each shard's
#     work is timed in isolation. In the deployment the subsystem targets —
#     one shard per node — the busiest shard is the tier's bottleneck, so
#     records / shard_busy_ns is the cluster's sustained ingest throughput.
#
# The acceptance criterion is checked here and the script fails if it does
# not hold: shard-tier ingest throughput at 4 shards must be at least 2x
# the 1-shard throughput (shard_busy_ns ratio on the same fixed journal).
#
# Usage: scripts/bench_cluster.sh [benchtime]   (default 3x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/cluster/ -run NONE -bench 'BenchmarkCluster(Ingest|Epoch)' \
	-benchtime "$BENCHTIME" -count 1 | tee "$tmp"

python3 - "$tmp" "$BENCHTIME" <<'PY' > BENCH_cluster.json
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'BenchmarkCluster(Ingest|Epoch)/shards=(\d+)\S*\s+\d+\s+(.*)', line)
    if not m:
        continue
    bench, shards, rest = m.group(1).lower(), int(m.group(2)), m.group(3)
    metrics = dict((unit, float(val)) for val, unit in
                   re.findall(r'([0-9.e+-]+)\s+(\S+/op)', rest))
    rows.setdefault(shards, {})[bench] = metrics

layouts = []
for shards in sorted(rows):
    ing = rows[shards].get('ingest', {})
    ep = rows[shards].get('epoch', {})
    recs = ing.get('recs/op')
    busy = ing.get('busyns/op')
    entry = {
        'shards': shards,
        'journal_records': int(recs) if recs else None,
        'ingest_wall_ns': ing.get('ns/op'),
        'ingest_shard_busy_ns': busy,
        'epoch_ns': ep.get('ns/op'),
    }
    if recs and busy:
        entry['shard_tier_recs_per_sec'] = round(recs / busy * 1e9)
    layouts.append(entry)

by_shards = {e['shards']: e for e in layouts}
one, four = by_shards.get(1, {}), by_shards.get(4, {})
achieved = 0.0
if one.get('ingest_shard_busy_ns') and four.get('ingest_shard_busy_ns'):
    achieved = round(one['ingest_shard_busy_ns'] / four['ingest_shard_busy_ns'], 2)
out = {
    'benchmark': 'internal/cluster BenchmarkClusterIngest + BenchmarkClusterEpoch',
    'benchtime': sys.argv[2],
    'layouts': layouts,
    'criterion': {
        'metric': 'shard-tier ingest throughput (records / busiest shard busy ns)',
        'required_ratio_4_vs_1': 2.0,
        'achieved_ratio': achieved,
        'pass': achieved >= 2.0,
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if not out['criterion']['pass']:
    print(f"FAIL: 4-shard ingest throughput {achieved}x the 1-shard throughput, need >=2x",
          file=sys.stderr)
    sys.exit(1)
PY

echo "wrote BENCH_cluster.json"
