#!/usr/bin/env sh
# Enforces the package-documentation convention: every internal/* package
# keeps its package comment in a dedicated doc.go — present, substantial
# (at least 3 comment lines), starting with the canonical "Package <name>"
# phrase — and no other file in the package carries a second package
# comment (go/doc would pick one arbitrarily).
#
# Usage: scripts/check_pkg_docs.sh
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in internal/*/; do
	pkg="$(basename "$dir")"
	doc="${dir}doc.go"
	if [ ! -f "$doc" ]; then
		echo "$pkg: missing $doc"
		fail=1
		continue
	fi
	if ! head -1 "$doc" | grep -q "^// Package $pkg "; then
		echo "$pkg: doc.go must start with '// Package $pkg ...'"
		fail=1
	fi
	lines="$(grep -c '^//' "$doc" || true)"
	if [ "$lines" -lt 3 ]; then
		echo "$pkg: doc.go has only $lines comment lines, want >= 3"
		fail=1
	fi
	# A package comment is a // line (or block) immediately preceding the
	# package clause; any non-test file other than doc.go with one is a
	# duplicate. Test files are exempt — external test packages (package
	# <name>_test) legitimately document themselves.
	for f in "$dir"*.go; do
		[ "$f" = "$doc" ] && continue
		case "$f" in *_test.go) continue ;; esac
		if awk 'prev ~ /^\/\// && /^package / { found=1 } { prev=$0 } END { exit !found }' "$f"; then
			echo "$pkg: $f carries a second package comment (move it into doc.go)"
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "package doc check FAILED"
	exit 1
fi
echo "package docs OK ($(ls -d internal/*/ | wc -l | tr -d ' ') packages)"
