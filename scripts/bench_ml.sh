#!/usr/bin/env sh
# Runs the multilevel-sweep benchmarks (internal/core BenchmarkMAARSweep)
# and emits BENCH_ml.json at the repo root: flat vs multilevel ns/sweep,
# acceptance for both engines, and the gate's fallback rate, per case
# (graph size x restart count x coarsening depth).
#
# The acceptance criteria are checked here and the script fails if they do
# not hold:
#   - on the largest benchmarked residual at the highest restart count, the
#     multilevel sweep must be at least 3x faster than the flat frozen
#     sweep;
#   - on every benchmarked case the multilevel acceptance must be no worse
#     than the flat sweep's on the same graph and restart budget. (The
#     benchmark itself also asserts this before timing; the JSON records
#     it so CI can enforce it from the artifact.)
#
# Usage: scripts/bench_ml.sh [benchtime]   (default 3x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/core/ -run NONE -bench 'BenchmarkMAARSweep' \
	-benchmem -benchtime "$BENCHTIME" -count 1 -timeout 60m | tee "$tmp"

python3 - "$tmp" "$BENCHTIME" <<'PY' > BENCH_ml.json
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    # The trailing -N GOMAXPROCS suffix is absent when GOMAXPROCS=1.
    m = re.match(r'BenchmarkMAARSweep/(flat|ml)/(\S+?)(?:-\d+)?\s+\d+\s+(.*)', line)
    if not m:
        continue
    mode, case, rest = m.group(1), m.group(2), m.group(3)
    # Custom metrics (acc, accflat) carry bare units, not unit/op.
    metrics = dict((unit, float(val)) for val, unit in
                   re.findall(r'([0-9.e+-]+)\s+([A-Za-z][A-Za-z/]*)', rest))
    rows.setdefault(case, {})[mode] = metrics

def case_key(case):
    n = int(re.search(r'n=(\d+)', case).group(1))
    r = int(re.search(r'-r(\d+)', case).group(1))
    return (n, r, case)

cases = []
for case in sorted(rows, key=case_key):
    ml = rows[case].get('ml', {})
    # Depth-variant cases share the flat baseline of the default-depth case
    # at the same size and restart count.
    base = re.sub(r'-coarsest\d+$', '', case)
    flat = rows.get(base, {}).get('flat', {})
    entry = {
        'case': case,
        'flat_ns_per_sweep': flat.get('ns/op'),
        'ml_ns_per_sweep': ml.get('ns/op'),
        'flat_acceptance': ml.get('accflat'),
        'ml_acceptance': ml.get('acc'),
        'ml_fallbacks_per_sweep': ml.get('fallbacks/op'),
        'ml_allocs_per_sweep': ml.get('allocs/op'),
    }
    if entry['flat_ns_per_sweep'] and entry['ml_ns_per_sweep']:
        entry['speedup'] = round(entry['flat_ns_per_sweep'] / entry['ml_ns_per_sweep'], 2)
    if entry['ml_acceptance'] is not None and entry['flat_acceptance'] is not None:
        entry['acceptance_no_worse'] = entry['ml_acceptance'] <= entry['flat_acceptance'] + 1e-9
    cases.append(entry)

# Largest residual = largest node count; criterion case is its default-depth
# run at the highest benchmarked restart count.
target = None
for e in cases:
    if 'coarsest' in e['case'] or 'speedup' not in e:
        continue
    if target is None or case_key(e['case']) > case_key(target['case']):
        target = e

acc_ok = all(e.get('acceptance_no_worse', True) for e in cases)
speedup = target['speedup'] if target else 0
out = {
    'benchmark': 'internal/core BenchmarkMAARSweep flat vs multilevel',
    'benchtime': sys.argv[2],
    'cases': cases,
    'criterion': {
        'required_speedup': 3.0,
        'on_case': target['case'] if target else None,
        'achieved_speedup': speedup,
        'acceptance_no_worse_everywhere': acc_ok,
        'pass': speedup >= 3.0 and acc_ok,
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if not out['criterion']['pass']:
    print(f"FAIL: speedup {speedup}x on {out['criterion']['on_case']} "
          f"(need >=3x) acceptance_ok={acc_ok}", file=sys.stderr)
    sys.exit(1)
PY

echo "wrote BENCH_ml.json"
