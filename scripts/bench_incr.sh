#!/usr/bin/env sh
# Runs the incremental-epoch benchmarks (internal/incr) and emits
# BENCH_incr.json at the repo root: cold vs incremental ns/epoch, bytes and
# allocations per epoch, and the warm-start fallback rate, per delta size.
#
# The acceptance criterion is checked here and the script fails if it does
# not hold: at a delta of at most 1% of the journal, the incremental engine
# must advance an epoch at least 5x faster than the cold batch baseline.
#
# Usage: scripts/bench_incr.sh [benchtime]   (default 3x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/incr/ -run NONE -bench 'BenchmarkEpoch(Cold|Incremental)' \
	-benchmem -benchtime "$BENCHTIME" -count 1 | tee "$tmp"

python3 - "$tmp" "$BENCHTIME" <<'PY' > BENCH_incr.json
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'BenchmarkEpoch(Cold|Incremental)/delta=([0-9.]+)\S*\s+\d+\s+(.*)', line)
    if not m:
        continue
    mode, delta, rest = m.group(1).lower(), float(m.group(2)), m.group(3)
    metrics = dict((unit, float(val)) for val, unit in
                   re.findall(r'([0-9.e+-]+)\s+(\S+/op)', rest))
    rows.setdefault(delta, {})[mode] = metrics

deltas = []
for delta in sorted(rows):
    cold = rows[delta].get('cold', {})
    inc = rows[delta].get('incremental', {})
    entry = {
        'delta_fraction': delta,
        'cold_ns_per_epoch': cold.get('ns/op'),
        'incr_ns_per_epoch': inc.get('ns/op'),
        'cold_allocs_per_epoch': cold.get('allocs/op'),
        'incr_allocs_per_epoch': inc.get('allocs/op'),
        'cold_bytes_per_epoch': cold.get('B/op'),
        'incr_bytes_per_epoch': inc.get('B/op'),
        'fallbacks_per_epoch': inc.get('fallbacks/op'),
        'warm_rounds_per_epoch': inc.get('warmrounds/op'),
    }
    if entry['cold_ns_per_epoch'] and entry['incr_ns_per_epoch']:
        entry['speedup'] = round(entry['cold_ns_per_epoch'] / entry['incr_ns_per_epoch'], 2)
    deltas.append(entry)

achieved = max((e.get('speedup', 0) for e in deltas if e['delta_fraction'] <= 0.01),
               default=0)
out = {
    'benchmark': 'internal/incr BenchmarkEpochCold vs BenchmarkEpochIncremental',
    'benchtime': sys.argv[2],
    'deltas': deltas,
    'criterion': {
        'required_speedup': 5.0,
        'at_delta_at_most': 0.01,
        'achieved_speedup': achieved,
        'pass': achieved >= 5.0,
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if not out['criterion']['pass']:
    print(f"FAIL: speedup {achieved}x at <=1% delta, need >=5x", file=sys.stderr)
    sys.exit(1)
PY

echo "wrote BENCH_incr.json"
