#!/usr/bin/env sh
# Regenerates the adversary/defense matrix (cmd/experiments -run matrix)
# and enforces its floor criteria against the committed baseline
# results/MATRIX.json:
#
#   - per-cell floor: no (strategy, defense) cell's recall at the pinned
#     precision may drop more than 0.02 below the committed baseline;
#   - ensemble improvement: the calibrated ensemble must strictly improve
#     recall over the rejecto-only defense, at equal-or-better precision,
#     on at least 2 adaptive strategies.
#
# The run is fully seeded, so cells only move when detection or game code
# changes. After an intentional change: UPDATE=1 scripts/bench_matrix.sh
# rewrites the baseline.
#
# Usage: scripts/bench_matrix.sh
set -eu
cd "$(dirname "$0")/.."

BASELINE="results/MATRIX.json"
FRESH="$(mktemp)"
trap 'rm -f "$FRESH"' EXIT

go run ./cmd/experiments -run matrix -matrix-out "$FRESH"

if [ "${UPDATE:-0}" = "1" ]; then
	mkdir -p results
	cp "$FRESH" "$BASELINE"
	echo "updated $BASELINE"
	exit 0
fi

python3 - "$BASELINE" "$FRESH" <<'PY'
import json, sys

MAX_DROP = 0.02
MIN_IMPROVED = 2

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

def cells(m):
    return {(c['strategy'], c['defense']): c for c in m['cells']}

bc, fc = cells(base), cells(fresh)
failures = []

missing = set(bc) - set(fc)
if missing:
    failures.append(f"cells missing from fresh run: {sorted(missing)}")

for key in sorted(set(bc) & set(fc)):
    drop = bc[key]['recall'] - fc[key]['recall']
    if drop > MAX_DROP + 1e-9:
        failures.append(
            f"cell {key}: recall {fc[key]['recall']:.3f} dropped "
            f"{drop:.3f} below baseline {bc[key]['recall']:.3f} (floor {MAX_DROP})")

improved = 0
strategies = sorted({s for s, _ in fc})
for s in strategies:
    ens, rej = fc.get((s, 'ensemble')), fc.get((s, 'rejecto'))
    if ens and rej and ens['recall'] > rej['recall'] and ens['precision'] >= rej['precision']:
        improved += 1
if improved < MIN_IMPROVED:
    failures.append(
        f"ensemble strictly improves recall over rejecto on only {improved} "
        f"strategies (need >= {MIN_IMPROVED})")

print(f"matrix check: {len(set(bc) & set(fc))} cells compared, "
      f"ensemble improves on {improved}/{len(strategies)} strategies")
if failures:
    for f_ in failures:
        print(f"FAIL: {f_}", file=sys.stderr)
    sys.exit(1)
print("PASS")
PY
