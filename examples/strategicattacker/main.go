// Strategic attacker: demonstrates the two evasion strategies from the
// paper's threat model (§III-A, §VI-C) and why Rejecto withstands both
// while a per-user acceptance-rate filter collapses.
//
//   - Collusion: fakes accept each other's requests, inflating every
//     individual account's acceptance rate toward legitimate levels.
//
//   - Self-rejection: fakes reject other fakes, fabricating a low-ratio
//     cut that whitewashes the rejecting half against naive cut searches.
//
//     go run ./examples/strategicattacker
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/rejecto"
)

func main() {
	src := rng.New(11)
	base := gen.HolmeKim(src.Stream("base"), 3000, 4, 0.6)

	fmt.Println("=== Collusion (Fig 13's attack) ===")
	for _, extra := range []int{0, 20, 40} {
		sc := attack.Baseline()
		sc.NumFakes = 3000
		sc.CollusionExtraPerFake = extra
		sc.Seed = src.Stream(fmt.Sprintf("collusion-%d", extra)).Uint64()
		world, err := sc.Build(base)
		if err != nil {
			log.Fatal(err)
		}
		naive := naiveFilterPrecision(world)
		prec := rejectoPrecision(world, src, extra)
		fmt.Printf("  %2d extra intra-fake edges/fake: naive filter %.3f, Rejecto %.3f\n",
			extra, naive, prec)
	}

	fmt.Println("=== Self-rejection (Fig 14's attack) ===")
	for _, rate := range []float64{0.2, 0.9} {
		sc := attack.Baseline()
		sc.NumFakes = 3000
		sc.SelfRejection = &attack.SelfRejection{Requests: 20, Rate: rate}
		sc.Seed = src.Stream(fmt.Sprintf("selfrej-%.2f", rate)).Uint64()
		world, err := sc.Build(base)
		if err != nil {
			log.Fatal(err)
		}
		prec := rejectoPrecision(world, src, int(rate*100))
		fmt.Printf("  self-rejection rate %.1f: Rejecto %.3f (whitewashed half exposed by iterative pruning)\n",
			rate, prec)
	}
}

// naiveFilterPrecision flags the NumFakes accounts with the lowest
// individual acceptance rates — the per-user signal the paper shows
// collusion defeats.
func naiveFilterPrecision(w *attack.World) float64 {
	type scored struct {
		u   rejecto.NodeID
		acc float64
	}
	all := make([]scored, w.Graph.NumNodes())
	for u := range all {
		all[u] = scored{rejecto.NodeID(u), w.Graph.Acceptance(rejecto.NodeID(u))}
	}
	// Selection by partial sort: take the lowest-acceptance NumFakes.
	target := w.NumFakes()
	for i := 0; i < target; i++ {
		minIdx := i
		for j := i + 1; j < len(all); j++ {
			if all[j].acc < all[minIdx].acc {
				minIdx = j
			}
		}
		all[i], all[minIdx] = all[minIdx], all[i]
	}
	hit := 0
	for _, s := range all[:target] {
		if w.IsFake[s.u] {
			hit++
		}
	}
	return float64(hit) / float64(target)
}

func rejectoPrecision(w *attack.World, src *rng.Source, salt int) float64 {
	seeds := w.SampleSeeds(src.Stream(fmt.Sprintf("seeds-%d", salt)), 30, 30)
	det, err := rejecto.Detect(w.Graph, rejecto.DetectorOptions{
		Cut:         rejecto.CutOptions{Seeds: seeds, RandSeed: uint64(salt)},
		TargetCount: w.NumFakes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	prec, err := rejecto.Precision(det.Suspects, w.IsFake)
	if err != nil {
		log.Fatal(err)
	}
	return prec
}
