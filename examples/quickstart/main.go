// Quickstart: build a small rejection-augmented social graph by hand, find
// the minimum aggregate acceptance rate cut, and run iterative detection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/rejecto"
)

func main() {
	// A toy OSN: ten legitimate users on a friendship ring with chords,
	// and three fake accounts that sent friend spam. Most spam was
	// rejected (directed rejection edges), a little was accepted.
	const legit, fakes = 10, 3
	g := rejecto.NewGraph(legit + fakes)
	for i := 0; i < legit; i++ {
		g.AddFriendship(rejecto.NodeID(i), rejecto.NodeID((i+1)%legit))
		g.AddFriendship(rejecto.NodeID(i), rejecto.NodeID((i+3)%legit))
	}
	for s := legit; s < legit+fakes; s++ {
		spammer := rejecto.NodeID(s)
		g.AddFriendship(spammer, rejecto.NodeID(s%legit)) // one careless acceptance
		for t := 1; t <= 6; t++ {                         // six rejections each
			g.AddRejection(rejecto.NodeID((s+t)%legit), spammer)
		}
	}
	fmt.Printf("graph: %d users, %d friendships, %d rejections\n",
		g.NumNodes(), g.NumFriendships(), g.NumRejections())

	// One MAAR cut: the region whose outgoing friend requests fared worst.
	cut, ok := rejecto.FindMAARCut(g, rejecto.CutOptions{})
	if !ok {
		log.Fatal("no cut found")
	}
	fmt.Printf("MAAR cut: %d suspects, aggregate acceptance %.3f (k=%.3f)\n",
		cut.Stats.SuspectSize, cut.Acceptance, cut.K)

	// Iterative detection with an acceptance-rate termination threshold:
	// keep cutting groups while their aggregate acceptance stays below 50%.
	det, err := rejecto.Detect(g, rejecto.DetectorOptions{AcceptanceThreshold: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d suspects in %d round(s):\n", len(det.Suspects), det.Rounds)
	for _, grp := range det.Groups {
		fmt.Printf("  round %d: accounts %v, acceptance %.3f\n", grp.Round, grp.Members, grp.Acceptance)
	}
}
