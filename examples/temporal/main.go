// Temporal sharding (§VII of the paper): detecting compromised accounts.
// A compromised account behaved legitimately for years, so its lifetime
// acceptance rate looks fine — but within the post-compromise time
// interval its requests follow the friend-spam model. Sharding requests by
// interval and running Rejecto per shard exposes it.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/rejecto"
)

func main() {
	r := rand.New(rand.NewPCG(3, 17))
	const users = 2000
	const compromised = 60

	// Years of legitimate history: a friendship ring with chords.
	base := rejecto.NewGraph(users)
	for i := 0; i < users; i++ {
		base.AddFriendship(rejecto.NodeID(i), rejecto.NodeID((i+1)%users))
		base.AddFriendship(rejecto.NodeID(i), rejecto.NodeID((i+11)%users))
	}

	var requests []rejecto.TimedRequest
	// Interval 0: normal traffic — mostly accepted requests.
	for i := 0; i < 3000; i++ {
		from, to := rejecto.NodeID(r.IntN(users)), rejecto.NodeID(r.IntN(users))
		if from == to {
			continue
		}
		requests = append(requests, rejecto.TimedRequest{
			From: from, To: to, Accepted: r.Float64() < 0.8, Interval: 0,
		})
	}
	// Interval 1: accounts 0..59 are taken over and start friend spam —
	// 15 requests each at a 70% rejection rate. Everyone else behaves.
	for i := 0; i < compromised; i++ {
		from := rejecto.NodeID(i)
		for k := 0; k < 15; k++ {
			to := rejecto.NodeID(compromised + r.IntN(users-compromised))
			requests = append(requests, rejecto.TimedRequest{
				From: from, To: to, Accepted: r.Float64() > 0.7, Interval: 1,
			})
		}
	}
	for i := 0; i < 2000; i++ {
		from, to := rejecto.NodeID(compromised+r.IntN(users-compromised)), rejecto.NodeID(r.IntN(users))
		if from == to {
			continue
		}
		requests = append(requests, rejecto.TimedRequest{
			From: from, To: to, Accepted: r.Float64() < 0.8, Interval: 1,
		})
	}

	detections, err := rejecto.DetectSharded(base, requests, rejecto.DetectorOptions{
		AcceptanceThreshold: 0.55,
		MaxRounds:           4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range detections {
		caught := 0
		for _, u := range d.Detection.Suspects {
			if int(u) < compromised {
				caught++
			}
		}
		fmt.Printf("interval %d: flagged %d accounts (%d of the %d compromised)\n",
			d.Interval, len(d.Detection.Suspects), caught, compromised)
	}
	fmt.Println("→ the takeover is invisible in interval 0 and exposed in interval 1")
}
