// Defense in depth (§II-C / §VI-D of the paper): Rejecto removes the
// friend spammers — and with them most attack edges — after which the
// classic social-graph-based SybilRank cleanly separates the remaining
// Sybils. Run alone, SybilRank is blinded by the very attack edges that
// friend spam created; run after Rejecto, its AUC approaches 1.
//
//	go run ./examples/defenseindepth
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/rejecto"
)

func main() {
	src := rng.New(7)

	// A Facebook-like legitimate region and a Sybil region where half the
	// fakes send friend spam (the Fig 16 workload, scaled down).
	base := gen.HolmeKim(src.Stream("base"), 4000, 4, 0.6)
	sc := attack.Baseline()
	sc.NumFakes = 4000
	sc.SpammerFraction = 0.5
	sc.Seed = src.Stream("attack").Uint64()
	world, err := sc.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	seeds := world.SampleSeeds(src.Stream("seeds"), 40, 40)
	fmt.Printf("world: %d legit + %d fake accounts (%d spamming), %d rejections\n",
		world.NumLegit, world.NumFakes(), len(world.SpamSenders), world.Graph.NumRejections())

	// SybilRank alone: the spam-earned attack edges leak trust into the
	// Sybil region.
	auc0 := rankAUC(world.Graph, seeds.Legit, world.IsFake)
	fmt.Printf("SybilRank alone:                AUC %.3f\n", auc0)

	// Rejecto pass: detect the friend spammers and prune them.
	det, err := rejecto.Detect(world.Graph, rejecto.DetectorOptions{
		Cut:         rejecto.CutOptions{Seeds: seeds, RandSeed: src.Stream("detect").Uint64()},
		TargetCount: len(world.SpamSenders),
	})
	if err != nil {
		log.Fatal(err)
	}
	caught := 0
	for _, u := range det.Suspects {
		if world.IsFake[u] {
			caught++
		}
	}
	fmt.Printf("Rejecto removes %d accounts (%d truly fake)\n", len(det.Suspects), caught)

	remove := make(map[graph.NodeID]bool, len(det.Suspects))
	for _, u := range det.Suspects {
		remove[u] = true
	}
	residual, origIDs := world.Graph.Without(remove)
	isFake := make([]bool, residual.NumNodes())
	var residualSeeds []rejecto.NodeID
	legitSeed := make(map[graph.NodeID]bool)
	for _, u := range seeds.Legit {
		legitSeed[u] = true
	}
	for u, orig := range origIDs {
		isFake[u] = world.IsFake[orig]
		if legitSeed[orig] {
			residualSeeds = append(residualSeeds, graph.NodeID(u))
		}
	}

	auc1 := rankAUC(residual, residualSeeds, isFake)
	fmt.Printf("SybilRank after Rejecto:        AUC %.3f\n", auc1)
	if auc1 > auc0 {
		fmt.Println("→ pruning friend spammers sharpened the social-graph defense")
	}
}

func rankAUC(g *rejecto.Graph, seeds []rejecto.NodeID, isFake []bool) float64 {
	scores, err := rejecto.SybilRank(g, seeds, rejecto.SybilRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return rejecto.AUC(scores, isFake)
}
