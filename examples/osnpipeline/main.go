// OSN pipeline: the paper's full deployment loop. Friend-request traffic
// flows through the OSN service (which records acceptances, rejections,
// reports, and ignored-request expiries), Rejecto periodically detects
// friend spammers on the materialized augmented graph, and the §VII
// enforcement path — challenge, rate limit, suspend — throttles them. The
// run prints the attacker's spam throughput per epoch collapsing as
// enforcement escalates.
//
//	go run ./examples/osnpipeline
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/osn"
	"repro/rejecto"
)

const (
	numLegit    = 1500
	numFakes    = 300
	epochs      = 4
	ticksPerDay = 100
)

func main() {
	r := rand.New(rand.NewPCG(2026, 7))
	s := osn.NewService(osn.Config{PendingTTL: 50})
	s.RegisterN(numLegit + numFakes)
	isFake := func(u osn.UserID) bool { return int(u) >= numLegit }

	// Bots never pass CAPTCHA challenges; humans always do.
	enforcer := osn.NewEnforcer(s, func(u osn.UserID) bool { return !isFake(u) })

	// Bootstrap a legitimate friendship fabric.
	for i := 0; i < numLegit; i++ {
		for _, d := range []int{1, 7} {
			u, v := osn.UserID(i), osn.UserID((i+d)%numLegit)
			if s.Friends(u, v) {
				continue
			}
			if err := s.SendRequest(u, v); err == nil {
				if err := s.Accept(v, u); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Println("epoch  spam sent  spam accepted  detected  challenged/limited/suspended")
	for epoch := 0; epoch < epochs; epoch++ {
		spamSent, spamAccepted := 0, 0

		// Legitimate churn: a few requests among acquaintances, mostly
		// accepted, occasionally rejected.
		for i := 0; i < numLegit/2; i++ {
			u := osn.UserID(r.IntN(numLegit))
			v := osn.UserID(r.IntN(numLegit))
			if u == v || s.Friends(u, v) {
				continue
			}
			if err := s.SendRequest(u, v); err != nil {
				continue
			}
			if r.Float64() < 0.8 {
				_ = s.Accept(v, u)
			} else {
				_ = s.Reject(v, u)
			}
		}

		// Attack: every fake floods requests at random legitimate users.
		for i := 0; i < numFakes; i++ {
			fake := osn.UserID(numLegit + i)
			for k := 0; k < 10; k++ {
				target := osn.UserID(r.IntN(numLegit))
				if s.Friends(fake, target) {
					continue
				}
				if err := s.SendRequest(fake, target); err != nil {
					continue // challenged, rate limited, or suspended
				}
				spamSent++
				switch roll := r.Float64(); {
				case roll < 0.30:
					_ = s.Accept(target, fake)
					spamAccepted++
				case roll < 0.80:
					_ = s.Reject(target, fake)
				case roll < 0.90:
					_ = s.Report(target, fake)
				default:
					// Left pending: expires into an ignored rejection.
				}
			}
		}
		s.Advance(ticksPerDay)
		s.ExpirePending()

		// Detection on the materialized augmented graph.
		g := s.AugmentedGraph()
		det, err := rejecto.Detect(g, rejecto.DetectorOptions{AcceptanceThreshold: 0.55, MaxRounds: 6})
		if err != nil {
			log.Fatal(err)
		}
		truePos := 0
		for _, u := range det.Suspects {
			if isFake(u) {
				truePos++
			}
		}
		challenged, limited, suspended, err := enforcer.Apply(det.Suspects)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %9d  %13d  %4d/%d  %d/%d/%d\n",
			epoch, spamSent, spamAccepted, truePos, len(det.Suspects),
			challenged, limited, suspended)
	}
	fmt.Println("→ spam throughput collapses as detected accounts are challenged, limited, and suspended")
}
