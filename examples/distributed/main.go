// Distributed detection (§V of the paper): shard the social graph across
// workers, keep only per-node algorithm state on the master, and run the
// same MAAR detection as the single-machine path — first on the in-process
// cluster, then over real TCP sockets with net/rpc. Both must agree with
// the local detector; the run prints the network traffic the prefetcher
// saved.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	src := rng.New(23)
	base := gen.HolmeKim(src.Stream("base"), 3000, 4, 0.6)
	sc := attack.Baseline()
	sc.NumFakes = 3000
	sc.Seed = src.Stream("attack").Uint64()
	world, err := sc.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	seeds := world.SampleSeeds(src.Stream("seeds"), 30, 30)
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 99}
	target := world.NumFakes()

	// Reference: single-machine detection.
	local, err := core.Detect(world.Graph, core.DetectorOptions{Cut: cutOpts, TargetCount: target})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single machine:      %d suspects\n", len(local.Suspects))

	// In-process cluster, 4 workers.
	cluster := dist.NewLocalCluster(4, 0)
	defer cluster.Close()
	if err := cluster.LoadGraph(world.Graph, 2); err != nil {
		log.Fatal(err)
	}
	cfg := dist.DetectorConfig{Cut: cutOpts, TargetCount: target}
	detector := dist.NewDetector(cluster, world.Graph.NumNodes(), cfg)
	res, err := detector.Detect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	served, fetched, misses := detector.Prefetcher().Stats()
	fmt.Printf("in-process cluster:  %d suspects, %s\n", len(res.Suspects), cluster.IO())
	fmt.Printf("                     prefetcher served %d adjacency lookups with %d fetches (%d misses)\n",
		served, fetched, misses)
	if !sameSet(local.Suspects, res.Suspects) {
		log.Fatal("in-process cluster disagreed with the single-machine detector")
	}

	// Real sockets: net/rpc workers on loopback.
	var servers []*dist.WorkerServer
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := dist.ServeWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	stats := &dist.IOStats{}
	transport, err := dist.NewRPCTransport(addrs, stats)
	if err != nil {
		log.Fatal(err)
	}
	rpcCluster := dist.NewCluster(transport, stats)
	defer rpcCluster.Close()
	if err := rpcCluster.LoadGraph(world.Graph, 2); err != nil {
		log.Fatal(err)
	}
	rpcDetector := dist.NewDetector(rpcCluster, world.Graph.NumNodes(), cfg)
	rpcRes, err := rpcDetector.Detect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("net/rpc cluster:     %d suspects over %d TCP workers, %s\n",
		len(rpcRes.Suspects), len(servers), rpcCluster.IO())
	if !sameSet(local.Suspects, rpcRes.Suspects) {
		log.Fatal("RPC cluster disagreed with the single-machine detector")
	}
	fmt.Println("→ all three execution paths agree")
}

func sameSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[graph.NodeID]bool, len(a))
	for _, u := range a {
		set[u] = true
	}
	for _, u := range b {
		if !set[u] {
			return false
		}
	}
	return true
}
