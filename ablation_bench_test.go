// Ablation benchmarks for the design choices DESIGN.md calls out: the
// geometric k-sweep granularity (Theorem 1's approximation knob), seed
// coverage (§IV-F's false-positive control), random restarts, and the
// distributed engine's prefetch batch (§V's network-I/O reduction).
// Each prints a small table and reports the headline metric.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simulate"
	"repro/internal/sybilfence"
)

// ablationWorld builds one baseline world at bench scale.
func ablationWorld(b *testing.B) (*attack.World, simulate.Config, *rng.Source) {
	b.Helper()
	cfg := benchConfig("Facebook")
	src := rng.New(cfg.Seed)
	base, err := cfg.BaseGraph(src)
	if err != nil {
		b.Fatal(err)
	}
	sc := cfg.Baseline()
	sc.Seed = src.Stream("scenario").Uint64()
	w, err := sc.Build(base)
	if err != nil {
		b.Fatal(err)
	}
	return w, cfg, src
}

func detectPrecision(b *testing.B, w *attack.World, cut core.CutOptions) float64 {
	b.Helper()
	det, err := core.Detect(w.Graph, core.DetectorOptions{Cut: cut, TargetCount: w.NumFakes()})
	if err != nil {
		b.Fatal(err)
	}
	prec, err := metrics.PrecisionAtK(det.Suspects, w.IsFake)
	if err != nil {
		b.Fatal(err)
	}
	return prec
}

// BenchmarkAblationKFactor sweeps the geometric step of the k-sweep: a
// coarser grid needs fewer KL solves but risks missing k* (Theorem 1).
func BenchmarkAblationKFactor(b *testing.B) {
	w, _, src := ablationWorld(b)
	seeds := w.SampleSeeds(src.Stream("seeds"), 100, 100)
	for _, factor := range []float64{1.25, 1.5, 2.0, 4.0} {
		b.Run(fmt.Sprintf("factor=%.2f", factor), func(b *testing.B) {
			var prec float64
			for i := 0; i < b.N; i++ {
				prec = detectPrecision(b, w, core.CutOptions{
					KFactor: factor, Seeds: seeds, RandSeed: 7,
				})
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// BenchmarkAblationSeedCoverage sweeps the seed fraction: §IV-F argues
// seeds rule out spurious low-ratio cuts inside the legitimate region, so
// group quality should degrade as coverage thins.
func BenchmarkAblationSeedCoverage(b *testing.B) {
	w, _, src := ablationWorld(b)
	for _, per := range []int{0, 10, 50, 200} {
		b.Run(fmt.Sprintf("seeds=%d", per), func(b *testing.B) {
			var seeds core.Seeds
			if per > 0 {
				seeds = w.SampleSeeds(src.Stream(fmt.Sprintf("seeds-%d", per)), per, per)
			}
			var prec float64
			for i := 0; i < b.N; i++ {
				prec = detectPrecision(b, w, core.CutOptions{Seeds: seeds, RandSeed: 7})
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// BenchmarkAblationRestarts sweeps random-restart count on top of the
// acceptance-heuristic initialization.
func BenchmarkAblationRestarts(b *testing.B) {
	w, _, src := ablationWorld(b)
	seeds := w.SampleSeeds(src.Stream("seeds"), 100, 100)
	for _, restarts := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("restarts=%d", restarts), func(b *testing.B) {
			var prec float64
			for i := 0; i < b.N; i++ {
				prec = detectPrecision(b, w, core.CutOptions{
					Seeds: seeds, Restarts: restarts, RandSeed: 7,
				})
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// BenchmarkAblationFeedbackPoisoning compares Rejecto with SybilFence (the
// §VIII per-user negative-feedback predecessor) as spammers poison the
// feedback of legitimate users by rejecting their requests — the Fig 15
// strategy. SybilFence's per-user discount erodes steadily; Rejecto's
// aggregate cut tolerates the poisoning until the global cut flips.
func BenchmarkAblationFeedbackPoisoning(b *testing.B) {
	cfg := benchConfig("Facebook")
	for _, poisonK := range []int{0, 48, 96} {
		b.Run(fmt.Sprintf("poison=%dK", poisonK), func(b *testing.B) {
			var rejPrec, fencePrec float64
			for i := 0; i < b.N; i++ {
				src := rng.New(cfg.Seed)
				base, err := cfg.BaseGraph(src)
				if err != nil {
					b.Fatal(err)
				}
				sc := cfg.Baseline()
				sc.RejectedLegitRequests = int(float64(poisonK*1000) * cfg.Scale)
				sc.Seed = src.Stream("scenario").Uint64()
				w, err := sc.Build(base)
				if err != nil {
					b.Fatal(err)
				}
				seeds := w.SampleSeeds(src.Stream("seeds"), 100, 100)
				rejPrec = detectPrecision(b, w, core.CutOptions{Seeds: seeds, RandSeed: 7})

				scores, err := sybilfence.Rank(w.Graph, seeds.Legit, sybilfence.Options{})
				if err != nil {
					b.Fatal(err)
				}
				fencePrec, err = metrics.PrecisionAtK(
					sybilfence.MostSuspicious(scores, w.NumFakes()), w.IsFake)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rejPrec, "rejecto-precision")
			b.ReportMetric(fencePrec, "sybilfence-precision")
		})
	}
}

// BenchmarkAblationPrefetchBatch sweeps the §V prefetch batch size on the
// distributed engine and reports the fetch miss rate alongside wall time.
func BenchmarkAblationPrefetchBatch(b *testing.B) {
	w, _, src := ablationWorld(b)
	seeds := w.SampleSeeds(src.Stream("seeds"), 100, 100)
	tab := simulate.NewTable("Prefetch ablation", "batch", "misses", "served", "rpc calls")
	for _, batch := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var misses, served, calls int64
			for i := 0; i < b.N; i++ {
				c := dist.NewLocalCluster(4, 0)
				if err := c.LoadGraph(w.Graph, 2); err != nil {
					b.Fatal(err)
				}
				cfg := dist.DetectorConfig{
					Cut:           core.CutOptions{Seeds: seeds, RandSeed: 7},
					TargetCount:   w.NumFakes(),
					PrefetchBatch: batch,
					BufferCap:     w.Graph.NumNodes() + 1,
				}
				det := dist.NewDetector(c, w.Graph.NumNodes(), cfg)
				if _, err := det.Detect(cfg); err != nil {
					b.Fatal(err)
				}
				var fetched int64
				served, fetched, misses = det.Prefetcher().Stats()
				_ = fetched
				calls = c.IO().Calls
				_ = c.Close()
			}
			b.ReportMetric(float64(misses), "misses")
			tab.AddRow(batch, misses, served, calls)
		})
	}
	_ = tab.Render(os.Stdout)
}
