// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§VI). Each benchmark runs the full experiment and prints the
// same rows/series the paper reports; the per-iteration wall time measures
// the cost of reproducing that artifact end to end (world generation +
// detection + baseline + metrics).
//
// The workloads default to REJECTO_BENCH_SCALE = 0.1 of the paper's sizes
// so `go test -bench=. -benchmem` completes on a laptop; cmd/experiments
// runs the same code at paper scale (see EXPERIMENTS.md for a recorded
// full-scale run).
package repro_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/simulate"
)

// benchScale reads REJECTO_BENCH_SCALE (default 0.1).
func benchScale() float64 {
	if s := os.Getenv("REJECTO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

func benchConfig(dataset string) simulate.Config {
	return simulate.Config{Dataset: dataset, Scale: benchScale(), Seed: 42}.WithDefaults()
}

// runSweep executes a figure sweep b.N times, prints the series once, and
// reports the mean Rejecto/VoteTrust precisions as benchmark metrics.
func runSweep(b *testing.B, title, xLabel string, cfg simulate.Config, points []simulate.SweepPoint) {
	b.Helper()
	var outcomes []simulate.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		outcomes, err = cfg.Sweep(points)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tab := simulate.OutcomeTable(
		fmt.Sprintf("%s — %s (scale %.2f)", title, cfg.Dataset, cfg.Scale), xLabel, outcomes)
	if err := tab.Render(os.Stdout); err != nil {
		b.Fatal(err)
	}
	var sumR, sumV float64
	for _, o := range outcomes {
		sumR += o.Rejecto
		sumV += o.VoteTrust
	}
	n := float64(len(outcomes))
	b.ReportMetric(sumR/n, "rejecto-precision")
	b.ReportMetric(sumV/n, "votetrust-precision")
}

func BenchmarkTableI_Graphs(b *testing.B) {
	cfg := simulate.Config{Seed: 42}.WithDefaults()
	var rows []simulate.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.TableI()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tab := simulate.NewTable("Table I — evaluation graphs (published vs generated)",
		"graph", "nodes", "edges(paper)", "edges", "cc(paper)", "cc", "diam(paper)", "diam")
	for _, r := range rows {
		tab.AddRow(r.Name, r.Nodes, r.PaperEdges, r.Edges, r.PaperCC, r.CC, r.PaperDiameter, r.Diameter)
	}
	if err := tab.Render(os.Stdout); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig01_PendingFootprint(b *testing.B) {
	cfg := benchConfig("Facebook")
	var sum simulate.Fig1Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = cfg.Fig1(43, 80, 0.30, 0.35)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("Fig 1 analog — pending fraction min %.3f median %.3f max %.3f (paper 0.167–0.679)\n",
		sum.MinFraction, sum.MedianFraction, sum.MaxFraction)
	b.ReportMetric(sum.MedianFraction, "median-pending-fraction")
}

func BenchmarkFig09_RequestVolume(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 9 — request volume, all fakes spam", "requests/fake", cfg, cfg.Fig9Points())
}

func BenchmarkFig10_HalfSpammers(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 10 — request volume, half the fakes spam", "requests/fake", cfg, cfg.Fig10Points())
}

func BenchmarkFig11_SpamRejectionRate(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 11 — spam rejection rate", "rate", cfg, cfg.Fig11Points())
}

func BenchmarkFig12_LegitRejectionRate(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 12 — legitimate rejection rate", "rate", cfg, cfg.Fig12Points())
}

func BenchmarkFig13_Collusion(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 13 — collusion (extra intra-fake edges)", "edges/fake", cfg, cfg.Fig13Points())
}

func BenchmarkFig14_SelfRejection(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 14 — self-rejection whitewashing", "rate", cfg, cfg.Fig14Points())
}

func BenchmarkFig15_RejectLegitRequests(b *testing.B) {
	cfg := benchConfig("Facebook")
	runSweep(b, "Fig 15 — spammers reject legit requests", "rejections (K, paper scale)", cfg, cfg.Fig15Points())
}

func BenchmarkFig16_DefenseInDepth(b *testing.B) {
	for _, dataset := range []string{"Facebook", "ca-AstroPh"} {
		b.Run(dataset, func(b *testing.B) {
			cfg := benchConfig(dataset)
			var points []simulate.DefensePoint
			for i := 0; i < b.N; i++ {
				var err error
				points, err = cfg.Fig16(cfg.Fig16Removals())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tab := simulate.NewTable(
				fmt.Sprintf("Fig 16 — SybilRank AUC vs Rejecto removals (%s, scale %.2f)", dataset, cfg.Scale),
				"removed", "auc")
			for _, p := range points {
				tab.AddRow(p.Removed, p.AUC)
			}
			if err := tab.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(points[len(points)-1].AUC, "final-auc")
		})
	}
}

func BenchmarkFig17_SensitivityAllGraphs(b *testing.B) {
	cols := []simulate.Fig17Scenario{
		simulate.Fig17AllSpam, simulate.Fig17HalfSpam,
		simulate.Fig17SpamRejRate, simulate.Fig17LegitRate,
	}
	for _, dataset := range simulate.AppendixGraphs() {
		for _, col := range cols {
			b.Run(dataset+"/"+string(col), func(b *testing.B) {
				cfg := benchConfig(dataset)
				runSweep(b, "Fig 17 — "+dataset, string(col), cfg, cfg.Fig17Points(col))
			})
		}
	}
}

func BenchmarkFig18_ResilienceAllGraphs(b *testing.B) {
	cols := []simulate.Fig18Scenario{
		simulate.Fig18Collusion, simulate.Fig18SelfRejection, simulate.Fig18RejectLegit,
	}
	for _, dataset := range simulate.AppendixGraphs() {
		for _, col := range cols {
			b.Run(dataset+"/"+string(col), func(b *testing.B) {
				cfg := benchConfig(dataset)
				runSweep(b, "Fig 18 — "+dataset, string(col), cfg, cfg.Fig18Points(col))
			})
		}
	}
}

func BenchmarkTableII_Scalability(b *testing.B) {
	// Host-scaled sizes preserving the paper's ×2 progression; override
	// the sweep with cmd/experiments -run table2 -table2-users for larger
	// runs.
	sizes := []int{25_000, 50_000, 100_000}
	var rows []simulate.TableIIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = simulate.TableII(simulate.TableIIConfig{
			UserCounts:     sizes,
			Workers:        5,
			LatencyPerCall: 500 * time.Microsecond,
			Seed:           42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tab := simulate.NewTable("Table II — distributed engine scalability (5 workers, 0.5ms simulated RTT)",
		"users", "edges", "wall", "rpc calls", "MB sent", "MB recv", "net time")
	for _, r := range rows {
		tab.AddRow(r.Users, r.Edges, r.WallTime.Round(time.Millisecond).String(), r.Calls,
			fmt.Sprintf("%.1f", float64(r.BytesSent)/1e6),
			fmt.Sprintf("%.1f", float64(r.BytesRecv)/1e6),
			r.VirtualNetworkTime.Round(time.Millisecond).String())
	}
	if err := tab.Render(os.Stdout); err != nil {
		b.Fatal(err)
	}
}
