package graphio

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestReadRequestsBounds(t *testing.T) {
	for name, input := range map[string]string{
		"from over int32":     "0 2147483648 1 1\n",
		"to over int32":       "0 1 99999999999 0\n",
		"negative from":       "0 -1 2 1\n",
		"negative to":         "0 1 -2 0\n",
		"interval over int32": "99999999999 1 2 1\n",
	} {
		if _, err := ReadRequests(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// The int32 boundary itself is valid.
	reqs, err := ReadRequests(strings.NewReader("0 2147483647 0 1\n"))
	if err != nil {
		t.Fatalf("max int32 node ID rejected: %v", err)
	}
	if reqs[0].From != 2147483647 {
		t.Fatalf("From = %d, want 2147483647", reqs[0].From)
	}
}

func TestJournalWriterMatchesWriteRequests(t *testing.T) {
	reqs := []core.TimedRequest{
		{Interval: 0, From: 1, To: 2, Accepted: true},
		{Interval: 0, From: 3, To: 2, Accepted: false},
		{Interval: 2, From: 0, To: 4, Accepted: false},
	}
	var batch strings.Builder
	if err := WriteRequests(&batch, reqs); err != nil {
		t.Fatal(err)
	}

	var inc strings.Builder
	jw := NewJournalWriter(&inc)
	if err := jw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if err := jw.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if inc.String() != batch.String() {
		t.Fatalf("incremental journal differs from batch WriteRequests:\n%q\nvs\n%q", inc.String(), batch.String())
	}
}

func TestJournalWriterAppendAfterRecovery(t *testing.T) {
	// A journal resumed after recovery (header already on disk) continues
	// the same parseable log.
	first := []core.TimedRequest{{Interval: 0, From: 1, To: 2, Accepted: false}}
	var log strings.Builder
	if err := WriteRequests(&log, first); err != nil {
		t.Fatal(err)
	}
	jw := NewJournalWriter(&log)
	if err := jw.Append(core.TimedRequest{Interval: 1, From: 2, To: 3, Accepted: true}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequests(strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != first[0] || got[1].To != 3 {
		t.Fatalf("resumed journal parsed as %+v", got)
	}
}
