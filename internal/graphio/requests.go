package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Request-log text format, consumed by the §VII sharded deployment
// (core.DetectSharded and `rejecto -requests`):
//
//	# comment
//	<interval> <from> <to> <accepted: 0|1>
//
// one line per answered friend request, whitespace-separated.

// WriteRequests serializes a request log.
func WriteRequests(w io.Writer, reqs []core.TimedRequest) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# interval from to accepted"); err != nil {
		return err
	}
	for _, req := range reqs {
		accepted := 0
		if req.Accepted {
			accepted = 1
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", req.Interval, req.From, req.To, accepted); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRequests parses a request log.
func ReadRequests(r io.Reader) ([]core.TimedRequest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []core.TimedRequest
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("graphio: requests line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		vals := make([]int64, 4)
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graphio: requests line %d: bad field %q", lineNo, f)
			}
			vals[i] = v
		}
		if vals[3] != 0 && vals[3] != 1 {
			return nil, fmt.Errorf("graphio: requests line %d: accepted flag %d not 0/1", lineNo, vals[3])
		}
		out = append(out, core.TimedRequest{
			Interval: int(vals[0]),
			From:     int32ID(vals[1]),
			To:       int32ID(vals[2]),
			Accepted: vals[3] == 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: requests: %w", err)
	}
	return out, nil
}

// ReadRequestsFile parses a request log from the named file.
func ReadRequestsFile(path string) ([]core.TimedRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reqs, err := ReadRequests(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reqs, nil
}

// WriteRequestsFile serializes a request log to the named file.
func WriteRequestsFile(path string, reqs []core.TimedRequest) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteRequests(f, reqs)
}

func int32ID(v int64) graph.NodeID {
	return graph.NodeID(v)
}
