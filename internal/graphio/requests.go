package graphio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Request-log text format, consumed by the §VII sharded deployment
// (core.DetectSharded and `rejecto -requests`) and written as the
// append-only event journal of the rejectod service (internal/server):
//
//	# comment
//	<interval> <from> <to> <accepted: 0|1>
//
// one line per answered friend request, whitespace-separated.

// A JournalWriter appends answered friend requests to a request log one at
// a time — the incremental counterpart of WriteRequests, used by the
// rejectod service to journal each ingested event. Writes are buffered;
// callers own flush policy via Flush. A JournalWriter is not safe for
// concurrent use.
type JournalWriter struct {
	bw *bufio.Writer
}

// NewJournalWriter returns a JournalWriter appending to w. No header is
// written: call WriteHeader when starting a fresh log (a log opened for
// append already has one).
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{bw: bufio.NewWriter(w)}
}

// WriteHeader writes the log's comment header.
func (jw *JournalWriter) WriteHeader() error {
	_, err := fmt.Fprintln(jw.bw, "# interval from to accepted")
	return err
}

// Append writes one answered request.
func (jw *JournalWriter) Append(req core.TimedRequest) error {
	accepted := 0
	if req.Accepted {
		accepted = 1
	}
	_, err := fmt.Fprintf(jw.bw, "%d %d %d %d\n", req.Interval, req.From, req.To, accepted)
	return err
}

// Flush writes buffered log lines to the underlying writer.
func (jw *JournalWriter) Flush() error { return jw.bw.Flush() }

// WriteRequests serializes a request log.
func WriteRequests(w io.Writer, reqs []core.TimedRequest) error {
	jw := NewJournalWriter(w)
	if err := jw.WriteHeader(); err != nil {
		return err
	}
	for _, req := range reqs {
		if err := jw.Append(req); err != nil {
			return err
		}
	}
	return jw.Flush()
}

// ScanRequests parses a request log as a stream, calling apply once per
// answered request in log order. Unlike ReadRequests it never materializes
// the whole log: the rejectod recovery path folds each record into server
// state as it is parsed, so restart memory tracks server state instead of
// server state plus a second full copy of the journal. A non-nil error from
// apply aborts the scan and is returned verbatim.
func ScanRequests(r io.Reader, apply func(core.TimedRequest) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return fmt.Errorf("graphio: requests line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var vals [4]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return fmt.Errorf("graphio: requests line %d: bad field %q", lineNo, f)
			}
			vals[i] = v
		}
		if vals[3] != 0 && vals[3] != 1 {
			return fmt.Errorf("graphio: requests line %d: accepted flag %d not 0/1", lineNo, vals[3])
		}
		// NodeID is int32; a raw int64 conversion would silently truncate
		// (possibly to a negative ID that panics adjacency code downstream),
		// so out-of-range IDs and intervals are parse errors.
		if vals[0] < math.MinInt32 || vals[0] > math.MaxInt32 {
			return fmt.Errorf("graphio: requests line %d: interval %d out of range", lineNo, vals[0])
		}
		if vals[1] < 0 || vals[1] > math.MaxInt32 {
			return fmt.Errorf("graphio: requests line %d: node ID %d out of range", lineNo, vals[1])
		}
		if vals[2] < 0 || vals[2] > math.MaxInt32 {
			return fmt.Errorf("graphio: requests line %d: node ID %d out of range", lineNo, vals[2])
		}
		if err := apply(core.TimedRequest{
			Interval: int(vals[0]),
			From:     graph.NodeID(vals[1]),
			To:       graph.NodeID(vals[2]),
			Accepted: vals[3] == 1,
		}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graphio: requests: %w", err)
	}
	return nil
}

// ReadRequests parses a request log.
func ReadRequests(r io.Reader) ([]core.TimedRequest, error) {
	var out []core.TimedRequest
	if err := ScanRequests(r, func(req core.TimedRequest) error {
		out = append(out, req)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadRequestsFile parses a request log from the named file.
func ReadRequestsFile(path string) ([]core.TimedRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reqs, err := ReadRequests(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reqs, nil
}

// WriteRequestsFile serializes a request log to the named file.
func WriteRequestsFile(path string, reqs []core.TimedRequest) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteRequests(f, reqs)
}
