package graphio

import (
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	g := graph.New(5)
	g.AddFriendship(0, 1)
	g.AddFriendship(2, 3)
	g.AddRejection(1, 4)
	g.AddRejection(4, 1)

	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualGraphs(t, g, got)
}

func TestRoundTripRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		g := graph.New(12)
		for i := 0; i < 40; i++ {
			u, v := graph.NodeID(r.IntN(12)), graph.NodeID(r.IntN(12))
			if u == v {
				continue
			}
			if r.IntN(2) == 0 {
				g.AddFriendship(u, v)
			} else {
				g.AddRejection(u, v)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSNAPBareEdges(t *testing.T) {
	const snap = `# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId	ToNodeId
100	200
200	100
100	300
300	300
`
	g, err := Read(strings.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (sparse IDs remapped)", g.NumNodes())
	}
	if g.NumFriendships() != 2 {
		t.Fatalf("friendships = %d, want 2 (symmetrized, self-loop dropped)", g.NumFriendships())
	}
}

func TestReadNodeCountDeclaration(t *testing.T) {
	g, err := Read(strings.NewReader("N 4\nF 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (isolated nodes declared)", g.NumNodes())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"self edge":       "F 1 1\n",
		"bad node id":     "F a b\n",
		"too many fields": "F 1 2 3\n",
		"bad N":           "N x\n",
		"garbage":         "hello world again\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Read accepted %q", name, input)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := graph.New(3)
	g.AddFriendship(0, 2)
	g.AddRejection(2, 1)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualGraphs(t, g, got)
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func assertEqualGraphs(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if !graphsEqual(want, got) {
		t.Fatal("graphs differ after round trip")
	}
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() ||
		a.NumFriendships() != b.NumFriendships() ||
		a.NumRejections() != b.NumRejections() {
		return false
	}
	ok := true
	a.ForEachFriendship(func(u, v graph.NodeID) {
		if !b.HasFriendship(u, v) {
			ok = false
		}
	})
	a.ForEachRejection(func(from, to graph.NodeID) {
		if !b.HasRejection(from, to) {
			ok = false
		}
	})
	return ok
}

func TestRequestLogRoundTrip(t *testing.T) {
	reqs := []core.TimedRequest{
		{Interval: 0, From: 1, To: 2, Accepted: true},
		{Interval: 3, From: 2, To: 1, Accepted: false},
	}
	var sb strings.Builder
	if err := WriteRequests(&sb, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequests(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestRequestLogErrors(t *testing.T) {
	for name, input := range map[string]string{
		"short line":   "1 2 3\n",
		"bad number":   "a 1 2 1\n",
		"bad accepted": "0 1 2 7\n",
	} {
		if _, err := ReadRequests(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestRequestLogFiles(t *testing.T) {
	reqs := []core.TimedRequest{{Interval: 1, From: 0, To: 3, Accepted: false}}
	path := filepath.Join(t.TempDir(), "reqs.txt")
	if err := WriteRequestsFile(path, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != reqs[0] {
		t.Fatalf("file round trip = %+v", got)
	}
	if _, err := ReadRequestsFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing request log accepted")
	}
}
