package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzRead checks that arbitrary text input never panics the text parser
// and that anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("N 4\nF 0 1\nR 2 3\n")
	f.Add("# comment\n100\t200\n200\t100\n")
	f.Add("F 1 1\n")
	f.Add("R -5 2\n")
	f.Add("")
	f.Add("N 999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if g2.NumFriendships() != g.NumFriendships() || g2.NumRejections() != g.NumRejections() {
			t.Fatalf("round trip changed edge counts: %d/%d → %d/%d",
				g.NumFriendships(), g.NumRejections(), g2.NumFriendships(), g2.NumRejections())
		}
	})
}

// FuzzReadBinary checks that arbitrary bytes never panic the binary parser.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	var buf bytes.Buffer
	g := mustTinyGraph()
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("REJECTO1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize.
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("accepted binary graph failed to serialize: %v", err)
		}
	})
}

// FuzzReadRequests checks that arbitrary request-log text never panics the
// parser and that every accepted request satisfies the NodeID bounds the
// rest of the pipeline assumes (graph adjacency code panics on negative
// IDs, so silent int64→int32 truncation here would be a remote crash).
func FuzzReadRequests(f *testing.F) {
	f.Add("# interval from to accepted\n0 1 2 1\n")
	f.Add("0 2147483648 1 1\n")
	f.Add("0 99999999999 1 0\n")
	f.Add("-1 0 1 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := ReadRequests(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, req := range reqs {
			if req.From < 0 || req.To < 0 {
				t.Fatalf("request %d carries negative node ID: %+v", i, req)
			}
		}
		// Whatever parses must survive a write/read round trip.
		var sb strings.Builder
		if err := WriteRequests(&sb, reqs); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		again, err := ReadRequests(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip of accepted log failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed request count: %d → %d", len(reqs), len(again))
		}
	})
}

func mustTinyGraph() *graph.Graph {
	g := graph.New(4)
	g.AddFriendship(0, 1)
	g.AddRejection(2, 3)
	return g
}
