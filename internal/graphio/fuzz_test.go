package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzRead checks that arbitrary text input never panics the text parser
// and that anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("N 4\nF 0 1\nR 2 3\n")
	f.Add("# comment\n100\t200\n200\t100\n")
	f.Add("F 1 1\n")
	f.Add("R -5 2\n")
	f.Add("")
	f.Add("N 999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if g2.NumFriendships() != g.NumFriendships() || g2.NumRejections() != g.NumRejections() {
			t.Fatalf("round trip changed edge counts: %d/%d → %d/%d",
				g.NumFriendships(), g.NumRejections(), g2.NumFriendships(), g2.NumRejections())
		}
	})
}

// FuzzReadBinary checks that arbitrary bytes never panic the binary parser.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	var buf bytes.Buffer
	g := mustTinyGraph()
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("REJECTO1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize.
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("accepted binary graph failed to serialize: %v", err)
		}
	})
}

func mustTinyGraph() *graph.Graph {
	g := graph.New(4)
	g.AddFriendship(0, 1)
	g.AddRejection(2, 3)
	return g
}
