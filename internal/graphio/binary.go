package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// The binary format serializes a graph as little-endian uint32/varint-free
// fixed records, loading an order of magnitude faster than the text format
// — which matters for the multi-million-node scalability graphs (§VI-E).
//
// Layout:
//
//	magic   [8]byte  "REJECTO1"
//	nodes   uint32
//	nFriend uint32   friendship count
//	nRej    uint32   rejection count
//	friends nFriend × (uint32 u, uint32 v), u < v
//	rejects nRej    × (uint32 from, uint32 to)

var binaryMagic = [8]byte{'R', 'E', 'J', 'E', 'C', 'T', 'O', '1'}

// WriteBinary serializes g in the binary format.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.NumNodes()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.NumFriendships()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(g.NumRejections()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	var writeErr error
	writePair := func(a, b graph.NodeID) {
		if writeErr != nil {
			return
		}
		binary.LittleEndian.PutUint32(rec[0:], uint32(a))
		binary.LittleEndian.PutUint32(rec[4:], uint32(b))
		_, writeErr = bw.Write(rec[:])
	}
	g.ForEachFriendship(writePair)
	g.ForEachRejection(writePair)
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	nodes := binary.LittleEndian.Uint32(hdr[0:])
	nFriend := binary.LittleEndian.Uint32(hdr[4:])
	nRej := binary.LittleEndian.Uint32(hdr[8:])

	g := graph.New(int(nodes))
	var rec [8]byte
	readPair := func() (graph.NodeID, graph.NodeID, error) {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return 0, 0, err
		}
		a := binary.LittleEndian.Uint32(rec[0:])
		b := binary.LittleEndian.Uint32(rec[4:])
		if a >= nodes || b >= nodes {
			return 0, 0, fmt.Errorf("graphio: edge endpoint %d outside %d nodes", max(a, b), nodes)
		}
		return graph.NodeID(a), graph.NodeID(b), nil
	}
	for i := uint32(0); i < nFriend; i++ {
		u, v, err := readPair()
		if err != nil {
			return nil, fmt.Errorf("graphio: friendship %d: %w", i, err)
		}
		if u == v {
			return nil, fmt.Errorf("graphio: self-friendship at %d", u)
		}
		g.AddFriendship(u, v)
	}
	for i := uint32(0); i < nRej; i++ {
		from, to, err := readPair()
		if err != nil {
			return nil, fmt.Errorf("graphio: rejection %d: %w", i, err)
		}
		if from == to {
			return nil, fmt.Errorf("graphio: self-rejection at %d", from)
		}
		g.AddRejection(from, to)
	}
	return g, nil
}

// WriteBinaryFile serializes g to the named file in the binary format.
func WriteBinaryFile(path string, g *graph.Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteBinary(f, g)
}

// ReadBinaryFile parses a binary-format graph from the named file.
func ReadBinaryFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ReadAny parses path as the binary format when its magic matches and
// falls back to the text format otherwise.
func ReadAny(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return nil, fmt.Errorf("%s: empty file", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic == binaryMagic {
		g, err := ReadBinary(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return g, nil
	}
	g, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
