package graphio

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestRequestRecordRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 59))
		want := core.TimedRequest{
			From:     graph.NodeID(r.IntN(1 << 31)),
			To:       graph.NodeID(r.IntN(1 << 31)),
			Accepted: r.IntN(2) == 1,
			Interval: int(int32(r.Uint32())),
		}
		var b [RequestRecordSize]byte
		PutRequest(b[:], want)
		got, err := GetRequest(b[:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRecordRejectsBadBytes(t *testing.T) {
	var b [RequestRecordSize]byte
	PutRequest(b[:], core.TimedRequest{From: 1, To: 2, Accepted: true, Interval: 0})
	b[12] = 7 // accepted byte must be 0 or 1
	if _, err := GetRequest(b[:]); err == nil {
		t.Fatal("accepted byte 7 decoded without error")
	}
	PutRequest(b[:], core.TimedRequest{From: 1, To: 2, Interval: 0})
	b[7] = 0x80 // From's high byte: negative as int32
	if _, err := GetRequest(b[:]); err == nil {
		t.Fatal("negative node ID decoded without error")
	}
	if _, err := GetRequest(b[:2]); err == nil {
		t.Fatal("short record decoded without error")
	}
}
