// Package graphio reads and writes rejection-augmented social graphs in a
// SNAP-compatible text format.
//
// The format is line-oriented:
//
//	# comment lines start with '#'
//	F <u> <v>    an undirected friendship between users u and v
//	R <u> <v>    a directed rejection: u rejected a request sent by v
//	N <count>    optional; declares the node count (isolated nodes)
//
// For compatibility with the raw SNAP datasets the paper evaluates on
// (ca-HepTh, ca-AstroPh, email-Enron, soc-Epinions, soc-Slashdot), a line
// consisting of two bare integers "u v" (or "u\tv") is accepted as a
// friendship edge; directed SNAP edges are symmetrized. Node IDs in input
// files may be sparse; they are remapped to dense IDs in first-seen order.
package graphio
