package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Write serializes g to w.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# rejection-augmented social graph\nN %d\n", g.NumNodes()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachFriendship(func(u, v graph.NodeID) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(bw, "F %d %d\n", u, v)
		}
	})
	g.ForEachRejection(func(from, to graph.NodeID) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(bw, "R %d %d\n", from, to)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// WriteFile serializes g to the named file.
func WriteFile(path string, g *graph.Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return Write(f, g)
}

// Read parses a graph from r. See the package comment for the accepted
// formats.
func Read(r io.Reader) (*graph.Graph, error) {
	g := &graph.Graph{}
	ids := make(map[int64]graph.NodeID)
	intern := func(raw int64) graph.NodeID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := g.AddNode()
		ids[raw] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "N":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: N takes one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad node count %q", lineNo, fields[1])
			}
			// Pre-declare dense IDs 0..n-1.
			for i := g.NumNodes(); i < n; i++ {
				intern(int64(i))
			}
		case "F", "R":
			u, v, err := parsePair(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
			}
			if u == v {
				return nil, fmt.Errorf("graphio: line %d: self-edge %d", lineNo, u)
			}
			if fields[0] == "F" {
				g.AddFriendship(intern(u), intern(v))
			} else {
				g.AddRejection(intern(u), intern(v))
			}
		default:
			// SNAP bare edge line: "u v" or "u\tv".
			u, v, err := parsePair(fields)
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: unrecognized line %q", lineNo, line)
			}
			if u == v {
				continue // SNAP datasets occasionally contain self-loops
			}
			g.AddFriendship(intern(u), intern(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: read: %w", err)
	}
	return g, nil
}

// ReadFile parses a graph from the named file.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func parsePair(fields []string) (u, v int64, err error) {
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("want two node IDs, got %d fields", len(fields))
	}
	u, err = strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node ID %q", fields[0])
	}
	v, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node ID %q", fields[1])
	}
	return u, v, nil
}
