package graphio

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomFrozen freezes a random augmented graph canonically, the shape the
// storage engine persists.
func randomFrozen(r *rand.Rand, n int) *graph.Frozen {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	for i := 0; i < 3*n; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u == v {
			continue
		}
		if r.IntN(3) == 0 {
			g.AddRejection(u, v)
		} else {
			g.AddFriendship(u, v)
		}
	}
	return g.FreezeCanonical()
}

func TestFrozenRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 41))
		want := randomFrozen(r, 3+r.IntN(40))
		var buf bytes.Buffer
		if err := WriteFrozen(&buf, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadFrozen(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenReadsExactBytes is the composition contract: ReadFrozen must
// consume exactly the encoded bytes, leaving trailing stream content (the
// next section of a storage snapshot file) untouched.
func TestFrozenReadsExactBytes(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 41))
	fz := randomFrozen(r, 17)
	var buf bytes.Buffer
	if err := WriteFrozen(&buf, fz); err != nil {
		t.Fatal(err)
	}
	trailer := []byte("next-section")
	buf.Write(trailer)
	got, err := ReadFrozen(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(fz) {
		t.Fatal("frozen snapshot mutated by round trip")
	}
	rest, _ := io.ReadAll(&buf)
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("ReadFrozen over-read: %d trailing bytes left, want %d", len(rest), len(trailer))
	}
}

// TestFrozenRejectsWeighted: contracted (weighted) snapshots are transient
// solver state, never persisted.
func TestFrozenRejectsWeighted(t *testing.T) {
	g := graph.New(4)
	g.AddFriendship(0, 1)
	g.AddFriendship(2, 3)
	g.AddRejection(0, 2)
	coarse := g.FreezeCanonical().Contract([]graph.NodeID{0, 0, 1, 1}, 2)
	if !coarse.Weighted() {
		t.Fatal("Contract did not produce a weighted snapshot")
	}
	if err := WriteFrozen(io.Discard, coarse); err == nil {
		t.Fatal("weighted snapshot serialized without error")
	}
}

// TestFrozenRejectsCorruption flips each byte of an encoding and demands
// either a decode error or an Equal result (a flip in padding that cannot
// change meaning does not exist in this dense format — but a flipped bit
// that survives decoding must at least never panic).
func TestFrozenRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 41))
	fz := randomFrozen(r, 9)
	var buf bytes.Buffer
	if err := WriteFrozen(&buf, fz); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		got, err := ReadFrozen(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A surviving decode must be structurally valid; Equal may or may
		// not hold (e.g. an adjacency value flip keeps the CSR legal).
		_ = got.NumNodes()
	}
	// Truncations must always error.
	for _, cut := range []int{1, 8, 12, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		if _, err := ReadFrozen(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}

func TestFrozenRejectsUnknownVersion(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 41))
	var buf bytes.Buffer
	if err := WriteFrozen(&buf, randomFrozen(r, 5)); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[8] = 99 // version field
	if _, err := ReadFrozen(bytes.NewReader(enc)); err == nil {
		t.Fatal("unknown version decoded without error")
	}
}
