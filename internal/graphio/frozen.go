package graphio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// Versioned binary codec for graph.Frozen CSR snapshots, used by the
// durable storage engine (internal/storage) to persist each epoch's read
// model and the incremental engine's per-interval snapshots. The format
// stores the six CSR arrays verbatim, so a decode is a header read plus six
// bulk reads — no canonicalization, no sorting, no re-freeze.
//
// Both directions consume exactly the encoded bytes and no more, so the
// codec composes inside larger streams (the storage snapshot file nests
// frozen blobs between other sections).
//
// Layout (all little-endian):
//
//	magic    [8]byte  "REJFRZN1"
//	version  uint32   currently 1
//	nodes    uint32
//	nFriend  uint32   |F| (distinct links)
//	nRej     uint32   |R⃗| (distinct directed edges)
//	friendOff, rejInOff, rejOutOff   (nodes+1) × int32 each
//	friendDst  2·nFriend × uint32
//	rejInSrc   nRej × uint32
//	rejOutDst  nRej × uint32
//
// Weighted (contracted) snapshots are transient solver state and are
// rejected by WriteFrozen.

var frozenMagic = [8]byte{'R', 'E', 'J', 'F', 'R', 'Z', 'N', '1'}

// frozenVersion is the current codec version. Decoders reject versions they
// do not know; bumping it is how a future layout change stays detectable.
const frozenVersion = 1

// WriteFrozen serializes f in the versioned binary snapshot format.
func WriteFrozen(w io.Writer, f *graph.Frozen) error {
	if f.Weighted() {
		return fmt.Errorf("graphio: refusing to serialize a weighted (contracted) snapshot")
	}
	p := f.Parts()
	hdr := make([]byte, 8+16)
	copy(hdr, frozenMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], frozenVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.NumNodes()))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(p.NumFriendships))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(p.NumRejections))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	// Each array is encoded into one contiguous buffer and written in a
	// single call: recovery speed is the whole point of this format.
	var buf []byte
	writeInt32s := func(vals []int32) error {
		if cap(buf) < 4*len(vals) {
			buf = make([]byte, 4*len(vals))
		}
		b := buf[:4*len(vals)]
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
		}
		_, err := w.Write(b)
		return err
	}
	writeIDs := func(ids []graph.NodeID) error {
		if cap(buf) < 4*len(ids) {
			buf = make([]byte, 4*len(ids))
		}
		b := buf[:4*len(ids)]
		for i, v := range ids {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
		}
		_, err := w.Write(b)
		return err
	}
	for _, off := range [][]int32{p.FriendOff, p.RejInOff, p.RejOutOff} {
		if err := writeInt32s(off); err != nil {
			return err
		}
	}
	for _, ids := range [][]graph.NodeID{p.FriendDst, p.RejInSrc, p.RejOutDst} {
		if err := writeIDs(ids); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrozen parses a binary snapshot, validating the CSR invariants
// (graph.FrozenFromParts) so a truncated or corrupted stream surfaces as an
// error instead of a panic downstream. It reads exactly the encoded bytes
// from r.
func ReadFrozen(r io.Reader) (*graph.Frozen, error) {
	hdr := make([]byte, 8+16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("graphio: frozen header: %w", err)
	}
	if string(hdr[:8]) != string(frozenMagic[:]) {
		return nil, fmt.Errorf("graphio: bad frozen magic %q", hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != frozenVersion {
		return nil, fmt.Errorf("graphio: frozen snapshot version %d, this build reads %d", version, frozenVersion)
	}
	nodes := binary.LittleEndian.Uint32(hdr[12:])
	nFriend := binary.LittleEndian.Uint32(hdr[16:])
	nRej := binary.LittleEndian.Uint32(hdr[20:])
	if nodes > math.MaxInt32 || nFriend > math.MaxInt32/2 || nRej > math.MaxInt32 {
		return nil, fmt.Errorf("graphio: frozen header counts %d/%d/%d overflow int32", nodes, nFriend, nRej)
	}

	readInt32s := func(n int) ([]int32, error) {
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return out, nil
	}
	readIDs := func(n int) ([]graph.NodeID, error) {
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return out, nil
	}

	var p graph.FrozenParts
	p.NumFriendships = int(nFriend)
	p.NumRejections = int(nRej)
	var err error
	if p.FriendOff, err = readInt32s(int(nodes) + 1); err != nil {
		return nil, fmt.Errorf("graphio: frozen friendship offsets: %w", err)
	}
	if p.RejInOff, err = readInt32s(int(nodes) + 1); err != nil {
		return nil, fmt.Errorf("graphio: frozen rejection-in offsets: %w", err)
	}
	if p.RejOutOff, err = readInt32s(int(nodes) + 1); err != nil {
		return nil, fmt.Errorf("graphio: frozen rejection-out offsets: %w", err)
	}
	if p.FriendDst, err = readIDs(2 * int(nFriend)); err != nil {
		return nil, fmt.Errorf("graphio: frozen friendship adjacency: %w", err)
	}
	if p.RejInSrc, err = readIDs(int(nRej)); err != nil {
		return nil, fmt.Errorf("graphio: frozen rejection-in adjacency: %w", err)
	}
	if p.RejOutDst, err = readIDs(int(nRej)); err != nil {
		return nil, fmt.Errorf("graphio: frozen rejection-out adjacency: %w", err)
	}
	f, err := graph.FrozenFromParts(p)
	if err != nil {
		return nil, fmt.Errorf("graphio: frozen snapshot invalid: %w", err)
	}
	return f, nil
}
