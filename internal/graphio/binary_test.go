package graphio

import (
	"bytes"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := graph.New(5)
	g.AddFriendship(0, 1)
	g.AddFriendship(3, 2)
	g.AddRejection(1, 4)
	g.AddRejection(4, 1)

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualGraphs(t, g, got)
}

func TestBinaryRoundTripRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 33))
		g := graph.New(20)
		for i := 0; i < 60; i++ {
			u, v := graph.NodeID(r.IntN(20)), graph.NodeID(r.IntN(20))
			if u == v {
				continue
			}
			if r.IntN(2) == 0 {
				g.AddFriendship(u, v)
			} else {
				g.AddRejection(u, v)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := graph.New(3)
	g.AddFriendship(0, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated edge section.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated file accepted")
	}
	// Edge endpoint out of range.
	bad = append([]byte{}, data...)
	bad[len(bad)-4] = 0xFF // corrupt the v endpoint of the only edge
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestBinaryFileAndReadAny(t *testing.T) {
	g := graph.New(4)
	g.AddFriendship(0, 3)
	g.AddRejection(2, 1)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.bin")
	if err := WriteBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualGraphs(t, g, got)

	// ReadAny dispatches on magic for both formats.
	txtPath := filepath.Join(dir, "g.txt")
	if err := WriteFile(txtPath, g); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{binPath, txtPath} {
		got, err := ReadAny(path)
		if err != nil {
			t.Fatalf("ReadAny(%s): %v", path, err)
		}
		assertEqualGraphs(t, g, got)
	}
}

func TestReadAnyMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadAny(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func BenchmarkBinaryVsTextRead(b *testing.B) {
	r := rand.New(rand.NewPCG(7, 7))
	g := graph.New(20000)
	for i := 0; i < 100000; i++ {
		u, v := graph.NodeID(r.IntN(20000)), graph.NodeID(r.IntN(20000))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	var binBuf, txtBuf bytes.Buffer
	if err := WriteBinary(&binBuf, g); err != nil {
		b.Fatal(err)
	}
	if err := Write(&txtBuf, g); err != nil {
		b.Fatal(err)
	}
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinary(bytes.NewReader(binBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Read(bytes.NewReader(txtBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
