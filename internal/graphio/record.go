package graphio

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Fixed-size binary codec for one answered friend request — the record
// payload of the segmented journal (internal/storage) and the bulk request
// block of its snapshot files. 13 bytes: interval int32, from uint32,
// to uint32 (little-endian), accepted byte. The segment layer frames each
// payload with a kind byte and a CRC32C; this codec is just the payload.

// RequestRecordSize is the encoded size of one answered request.
const RequestRecordSize = 13

// PutRequest encodes req into b, which must hold RequestRecordSize bytes.
func PutRequest(b []byte, req core.TimedRequest) {
	_ = b[RequestRecordSize-1]
	binary.LittleEndian.PutUint32(b[0:], uint32(int32(req.Interval)))
	binary.LittleEndian.PutUint32(b[4:], uint32(req.From))
	binary.LittleEndian.PutUint32(b[8:], uint32(req.To))
	b[12] = 0
	if req.Accepted {
		b[12] = 1
	}
}

// GetRequest decodes one answered request from b, applying the same bounds
// discipline as the text parser: node IDs must be non-negative int32s and
// the accepted flag must be 0 or 1, so a corrupted record that slipped past
// the frame checksum still cannot inject a panic-inducing ID downstream.
func GetRequest(b []byte) (core.TimedRequest, error) {
	if len(b) < RequestRecordSize {
		return core.TimedRequest{}, fmt.Errorf("graphio: request record is %d bytes, want %d", len(b), RequestRecordSize)
	}
	from := int32(binary.LittleEndian.Uint32(b[4:]))
	to := int32(binary.LittleEndian.Uint32(b[8:]))
	if from < 0 || to < 0 {
		return core.TimedRequest{}, fmt.Errorf("graphio: request record node ID out of range")
	}
	if b[12] > 1 {
		return core.TimedRequest{}, fmt.Errorf("graphio: request record accepted flag %d not 0/1", b[12])
	}
	return core.TimedRequest{
		Interval: int(int32(binary.LittleEndian.Uint32(b[0:]))),
		From:     graph.NodeID(from),
		To:       graph.NodeID(to),
		Accepted: b[12] == 1,
	}, nil
}
