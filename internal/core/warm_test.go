package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// eventSink collects trace events in memory.
type eventSink struct{ events []obs.Event }

func (s *eventSink) Emit(e obs.Event) { s.events = append(s.events, e) }

func (s *eventSink) count(name string) int {
	n := 0
	for _, e := range s.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

func sameDetection(t *testing.T, a, b Detection, what string) {
	t.Helper()
	if a.Rounds != b.Rounds || len(a.Suspects) != len(b.Suspects) || len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: %d/%d rounds, %d/%d suspects, %d/%d groups", what,
			a.Rounds, b.Rounds, len(a.Suspects), len(b.Suspects), len(a.Groups), len(b.Groups))
	}
	for i := range a.Suspects {
		if a.Suspects[i] != b.Suspects[i] {
			t.Fatalf("%s: suspect %d differs: %d vs %d", what, i, a.Suspects[i], b.Suspects[i])
		}
	}
	for i := range a.Groups {
		if a.Groups[i].Acceptance != b.Groups[i].Acceptance || a.Groups[i].K != b.Groups[i].K {
			t.Fatalf("%s: group %d (k, acceptance) differs", what, i)
		}
	}
}

// TestDetectFrozenMatchesDetect: handing DetectFrozen the canonical freeze
// of a canonicalized graph reproduces Detect on that graph exactly — the
// identity the incremental engine's patched snapshots rely on.
func TestDetectFrozenMatchesDetect(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 91))
	const nL, nF = 300, 100
	g, _ := plantedWorld(r, nL, nF, 0.7)
	g.Canonicalize()
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 15), RandSeed: 5},
		TargetCount: nF,
	}
	cold, err := Detect(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := DetectFrozen(g.FreezeCanonical(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameDetection(t, cold, frozen, "DetectFrozen diverged from Detect")
}

// TestDetectWarmNilEqualsDetectFrozen: no hints means every round solves
// cold; the detection is identical and the report counts only cold rounds.
func TestDetectWarmNilEqualsDetectFrozen(t *testing.T) {
	r := rand.New(rand.NewPCG(22, 92))
	const nL, nF = 300, 100
	g, _ := plantedWorld(r, nL, nF, 0.7)
	f := g.FreezeCanonical()
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 15), RandSeed: 5},
		TargetCount: nF,
	}
	cold, err := DetectFrozen(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, report, err := DetectWarm(f, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameDetection(t, cold, warm, "DetectWarm(nil) diverged from DetectFrozen")
	if report.WarmRounds != 0 || report.Fallbacks != 0 || report.ColdRounds != warm.Rounds {
		t.Fatalf("unexpected report %+v for %d rounds", report, warm.Rounds)
	}
}

// TestDetectWarmUnchangedGraphPassesGate: warming a detection with its own
// result on the same snapshot must pass the quality gate in every hinted
// round — KL started from a converged cut cannot do worse than it — and
// reproduce the same suspect sets.
func TestDetectWarmUnchangedGraphPassesGate(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 93))
	const nL, nF = 300, 100
	g, _ := plantedWorld(r, nL, nF, 0.7)
	f := g.FreezeCanonical()
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 15), RandSeed: 5},
		TargetCount: nF,
	}
	cold, err := DetectFrozen(f, opts)
	if err != nil {
		t.Fatal(err)
	}

	sink := &eventSink{}
	warmOpts := opts
	warmOpts.Tracer = sink
	warm, report, err := DetectWarm(f, warmOpts, WarmFromDetection(cold, f.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	if report.Fallbacks != 0 {
		t.Fatalf("%d fallbacks warming an unchanged snapshot", report.Fallbacks)
	}
	if report.WarmRounds == 0 {
		t.Fatal("no round used its warm hint")
	}
	sameDetection(t, cold, warm, "warm detection diverged on unchanged snapshot")
	if got := sink.count(obs.EvIncrWarm); got != report.WarmRounds {
		t.Fatalf("%d incr.warm events, report says %d warm rounds", got, report.WarmRounds)
	}
	if sink.count(obs.EvIncrFallback) != 0 {
		t.Fatal("incr.fallback emitted without a fallback")
	}
}

// TestDetectWarmQualityGateFallsBack: a hint whose acceptance bar is
// unreachable forces the gate to reject every warm solve; each round must
// re-solve cold, emit incr.fallback, and end with the cold detection.
func TestDetectWarmQualityGateFallsBack(t *testing.T) {
	r := rand.New(rand.NewPCG(24, 94))
	const nL, nF = 300, 100
	g, _ := plantedWorld(r, nL, nF, 0.7)
	f := g.FreezeCanonical()
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 15), RandSeed: 5},
		TargetCount: nF,
	}
	cold, err := DetectFrozen(f, opts)
	if err != nil {
		t.Fatal(err)
	}

	hints := WarmFromDetection(cold, f.NumNodes())
	for i := range hints.Rounds {
		hints.Rounds[i].Acceptance = -1 // bar no real cut can meet
	}
	sink := &eventSink{}
	warmOpts := opts
	warmOpts.Tracer = sink
	warm, report, err := DetectWarm(f, warmOpts, hints)
	if err != nil {
		t.Fatal(err)
	}
	if report.WarmRounds != 0 {
		t.Fatalf("%d rounds passed an impossible gate", report.WarmRounds)
	}
	if report.Fallbacks == 0 {
		t.Fatal("impossible gate produced no fallbacks")
	}
	sameDetection(t, cold, warm, "fallback rounds diverged from cold detection")
	if got := sink.count(obs.EvIncrFallback); got != report.Fallbacks {
		t.Fatalf("%d incr.fallback events, report says %d fallbacks", got, report.Fallbacks)
	}
	for _, e := range sink.events {
		if e.Name == obs.EvIncrFallback && e.Detail != "quality" {
			t.Fatalf("fallback detail %q, want \"quality\"", e.Detail)
		}
	}
}

// TestDetectWarmNewNodesPlacedByHeuristic: hints from a smaller previous
// epoch still apply; nodes that did not exist then are placed by the
// acceptance heuristic and detection completes without error.
func TestDetectWarmNewNodesPlacedByHeuristic(t *testing.T) {
	r := rand.New(rand.NewPCG(25, 95))
	const nL, nF = 300, 100
	g, _ := plantedWorld(r, nL, nF, 0.7)
	prevNodes := g.NumNodes()
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 15), RandSeed: 5},
		TargetCount: nF,
	}
	prev, err := DetectFrozen(g.FreezeCanonical(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the world: 20 new spammers join the fake region's behavior.
	first := int(g.AddNodes(20))
	for i := 0; i < 20; i++ {
		u := graph.NodeID(first + i)
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	grownOpts := opts
	grownOpts.TargetCount = nF + 20
	warm, report, err := DetectWarm(g.FreezeCanonical(), grownOpts, WarmFromDetection(prev, prevNodes))
	if err != nil {
		t.Fatal(err)
	}
	if report.WarmRounds+report.Fallbacks == 0 {
		t.Fatal("no round consulted the warm hints")
	}
	caught := 0
	for _, u := range warm.Suspects {
		if int(u) >= nL {
			caught++
		}
	}
	if prec := float64(caught) / float64(len(warm.Suspects)); prec < 0.85 {
		t.Fatalf("warm detection on grown graph imprecise: %.3f", prec)
	}
}

func TestWarmInitValidated(t *testing.T) {
	g := graph.New(5)
	bad := CutOptions{WarmInit: graph.NewPartition(3)}
	if err := bad.Validate(g); err == nil {
		t.Fatal("short WarmInit accepted")
	}
	good := CutOptions{WarmInit: graph.NewPartition(5)}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
}
