package core

import (
	"slices"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// WarmStart carries one epoch's detection outcome forward as per-round
// hints for the next epoch's sweep. Round i of the warm detection seeds its
// KL solves from the suspect set the previous epoch detected in its round
// i (mapped through residual IDs), instead of the acceptance heuristic and
// random restarts. The hint is advisory: each warm round is quality-gated
// against the acceptance rate the previous epoch achieved, and a round
// whose warm solve comes out worse is re-solved cold (see DetectWarm).
type WarmStart struct {
	// PrevNodes is the node count of the epoch that produced the hints.
	// Nodes with original IDs ≥ PrevNodes did not exist then; the warm
	// partition places them by the per-node acceptance heuristic.
	PrevNodes int
	// Rounds holds one hint per previous-epoch detection round, in round
	// order. Rounds beyond len(Rounds) solve cold.
	Rounds []WarmRound
}

// WarmRound is the hint for one detection round: the suspect group the
// previous epoch detected in that round (original-graph node IDs) and the
// aggregate acceptance rate its cut achieved — the quality bar a warm
// solve must meet.
type WarmRound struct {
	Suspects   []graph.NodeID
	Acceptance float64
}

// WarmReport tallies how the warm hints fared across one detection.
type WarmReport struct {
	// WarmRounds counts rounds whose warm-seeded solve passed the quality
	// gate; Fallbacks counts rounds where the gate rejected the warm cut
	// and the round was re-solved cold. ColdRounds counts rounds that had
	// no hint (beyond the hint list, or detection ran deeper than the
	// previous epoch).
	WarmRounds int
	Fallbacks  int
	ColdRounds int
}

// WarmFromDetection converts a finished detection into the WarmStart for
// the next epoch. numNodes is the node count of the graph det was computed
// on. Group membership is cloned, so the hint stays valid if the caller
// keeps mutating its own structures.
func WarmFromDetection(det Detection, numNodes int) *WarmStart {
	ws := &WarmStart{
		PrevNodes: numNodes,
		Rounds:    make([]WarmRound, len(det.Groups)),
	}
	for i, g := range det.Groups {
		ws.Rounds[i] = WarmRound{
			Suspects:   slices.Clone(g.Members),
			Acceptance: g.Acceptance,
		}
	}
	return ws
}

// DetectWarm is DetectFrozen seeded by the previous epoch's detection.
// Each round with a hint solves the standard k-grid from the hinted
// partition only (no heuristic init, no restarts), then applies the
// quality gate: the warm cut is accepted only if its aggregate acceptance
// rate is no worse than what the previous epoch achieved on that round
// (hint.Acceptance). A rejected warm cut — the delta moved the optimum —
// triggers an obs.EvIncrFallback event and a full cold solve of the round,
// so warm starting can change which cut a round picks among equally-good
// cuts, but never degrades cut quality below the cold path's bar.
//
// A nil warm (or one with no rounds) makes every round solve cold;
// DetectWarm is then equivalent to DetectFrozen.
func DetectWarm(f *graph.Frozen, opts DetectorOptions, warm *WarmStart) (Detection, WarmReport, error) {
	if warm == nil {
		warm = &WarmStart{}
	}
	return detectOn(f, nil, opts, warm)
}

// solveRound runs one detection round's MAAR search. With no applicable
// warm hint it is exactly FindMAARCutFrozen; with one, it warm-solves,
// gates, and falls back to the cold solve when the gate rejects.
// roundIdx is 0-based; report is updated only in warm mode (warm != nil).
func solveRound(residual *graph.Frozen, cutOpts CutOptions, origID []graph.NodeID, warm *WarmStart, roundIdx int, report *WarmReport, tr obs.Tracer) (Cut, bool) {
	if warm == nil {
		return FindMAARCutFrozen(residual, cutOpts)
	}
	if roundIdx >= len(warm.Rounds) {
		report.ColdRounds++
		return FindMAARCutFrozen(residual, cutOpts)
	}
	hint := warm.Rounds[roundIdx]

	warmOpts := cutOpts
	warmOpts.WarmInit = warmPartition(residual, origID, hint.Suspects, warm.PrevNodes)
	warmStart := time.Now()
	cut, ok := FindMAARCutFrozen(residual, warmOpts)
	warmDur := time.Since(warmStart)

	// Quality gate: the warm cut must be at least as good as what the
	// previous epoch achieved on this round. Float comparison is exact on
	// purpose — both sides are ratios of small integer edge counts, and
	// "equal" means the warm solve kept the old optimum's quality.
	if ok && cut.Acceptance <= hint.Acceptance {
		report.WarmRounds++
		obs.Incr.WarmRounds.Add(1)
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvIncrWarm, Wall: time.Now(), Dur: warmDur,
				Round: roundIdx + 1, K: cut.K, Acceptance: cut.Acceptance,
			})
		}
		return cut, true
	}

	report.Fallbacks++
	obs.Incr.Fallbacks.Add(1)
	if tr != nil {
		ev := obs.Event{
			Name: obs.EvIncrFallback, Wall: time.Now(), Dur: warmDur,
			Round: roundIdx + 1, Acceptance: -1, Detail: "no-cut",
		}
		if ok {
			ev.Acceptance = cut.Acceptance
			ev.Detail = "quality"
		}
		tr.Emit(ev)
	}
	return FindMAARCutFrozen(residual, cutOpts)
}

// warmPartition maps a previous epoch's suspect group into the current
// residual graph: nodes the hint flagged are Suspect, nodes it cleared are
// Legit, and nodes that did not exist in the previous epoch (original ID ≥
// prevNodes) are placed by the same per-node acceptance heuristic the cold
// initial partition uses — a new account's early rejections are the only
// signal available for it.
func warmPartition(residual *graph.Frozen, origID []graph.NodeID, suspects []graph.NodeID, prevNodes int) graph.Partition {
	isSuspect := make(map[graph.NodeID]bool, len(suspects))
	for _, u := range suspects {
		isSuspect[u] = true
	}
	totalF, totalR := residual.NumFriendships(), residual.NumRejections()
	threshold := float64(2*totalF) / float64(2*totalF+totalR)

	p := graph.NewPartition(residual.NumNodes())
	for u := range p {
		orig := origID[u]
		switch {
		case int(orig) >= prevNodes:
			if residual.Acceptance(graph.NodeID(u)) < threshold {
				p[u] = graph.Suspect
			}
		case isSuspect[orig]:
			p[u] = graph.Suspect
		}
	}
	return p
}
