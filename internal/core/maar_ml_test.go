package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// randomMLWorld builds a random rejection-augmented graph big enough for
// the ladder to coarsen a few levels.
func randomMLWorld(r *rand.Rand, n, friendships, rejections int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < friendships; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	for i := 0; i < rejections; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddRejection(u, v)
		}
	}
	return g
}

// TestMultilevelNeverWorseThanFlat is the quality-gate property test: over
// 220 random worlds, a multilevel sweep must never publish a cut with a
// strictly worse aggregate acceptance than the flat sweep on the same
// graph and options — the gate either proves the refined winner good or
// falls back to the flat sweep itself. Also pins that the published
// statistics are the true statistics of the published partition, and that
// multilevel never loses a cut the flat sweep finds.
func TestMultilevelNeverWorseThanFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("220 double sweeps")
	}
	for seed := uint64(0); seed < 220; seed++ {
		r := rand.New(rand.NewPCG(seed, 91))
		n := 120 + r.IntN(300)
		g := randomMLWorld(r, n, (3+r.IntN(4))*n, (1+r.IntN(3))*n)
		// Restarts up to 5 puts the init count past maxFrontierChecks, so
		// the seeds exercise the capped frontier descent, not just the
		// exhaustive small-init path.
		opts := CutOptions{
			RandSeed:        seed,
			Restarts:        r.IntN(6),
			MLCoarsestNodes: 24,
		}
		if r.IntN(3) == 0 {
			opts.Seeds = Seeds{
				Legit:   []graph.NodeID{graph.NodeID(r.IntN(n))},
				Spammer: []graph.NodeID{graph.NodeID(r.IntN(n))},
			}
		}
		flat, okFlat := FindMAARCut(g, opts)
		opts.Multilevel = true
		mlCut, okML := FindMAARCut(g, opts)

		if okFlat && !okML {
			t.Fatalf("seed %d: flat found a cut (acc %.4f) but multilevel found none", seed, flat.Acceptance)
		}
		if !okML {
			continue
		}
		if s := mlCut.Partition.Stats(g); s != mlCut.Stats {
			t.Fatalf("seed %d: published stats %+v != walk %+v", seed, mlCut.Stats, s)
		}
		if got := mlCut.Stats.AcceptanceOfSuspect(); got != mlCut.Acceptance {
			t.Fatalf("seed %d: published acceptance %.6f != stats %.6f", seed, mlCut.Acceptance, got)
		}
		if okFlat && mlCut.Acceptance > flat.Acceptance+1e-12 {
			t.Fatalf("seed %d: multilevel acceptance %.6f worse than flat %.6f",
				seed, mlCut.Acceptance, flat.Acceptance)
		}
		for _, u := range opts.Seeds.Spammer {
			if mlCut.Partition[u] != graph.Suspect {
				t.Fatalf("seed %d: spammer seed %d not in suspect region", seed, u)
			}
		}
		for _, u := range opts.Seeds.Legit {
			if mlCut.Partition[u] != graph.Legit {
				t.Fatalf("seed %d: legit seed %d not in legit region", seed, u)
			}
		}
	}
}

// TestMultilevelMatchesFlatBelowCoarsestBound: when the graph is already
// at or below the coarsest bound the ladder has depth 1 and the multilevel
// sweep must be the flat sweep, byte for byte.
func TestMultilevelMatchesFlatBelowCoarsestBound(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 92))
	g := randomMLWorld(r, 60, 200, 90)
	opts := CutOptions{RandSeed: 11, Restarts: 1}
	flat, okFlat := FindMAARCut(g, opts)
	opts.Multilevel = true
	mlCut, okML := FindMAARCut(g, opts)
	if okFlat != okML {
		t.Fatalf("ok mismatch: flat %v, multilevel %v", okFlat, okML)
	}
	if !okFlat {
		t.Skip("no cut in this world")
	}
	if mlCut.K != flat.K || mlCut.Acceptance != flat.Acceptance || mlCut.Stats != flat.Stats {
		t.Fatalf("depth-1 multilevel diverged: got k=%v acc=%v, want k=%v acc=%v",
			mlCut.K, mlCut.Acceptance, flat.K, flat.Acceptance)
	}
	for i := range flat.Partition {
		if mlCut.Partition[i] != flat.Partition[i] {
			t.Fatalf("partitions differ at node %d", i)
		}
	}
}

// TestMultilevelDeterministicAcrossParallelism: the multilevel reduction,
// like the flat one, must be independent of worker count and scheduling.
func TestMultilevelDeterministicAcrossParallelism(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 93))
	g := randomMLWorld(r, 500, 2500, 900)
	var ref Cut
	var refOK bool
	for i, par := range []int{1, 4, 7} {
		cut, ok := FindMAARCut(g, CutOptions{
			Multilevel: true, MLCoarsestNodes: 32, Parallelism: par, RandSeed: 2, Restarts: 2,
		})
		if i == 0 {
			ref, refOK = cut, ok
			continue
		}
		if ok != refOK {
			t.Fatalf("parallelism %d: ok %v != %v", par, ok, refOK)
		}
		if !ok {
			continue
		}
		if cut.K != ref.K || cut.Acceptance != ref.Acceptance || cut.Stats != ref.Stats {
			t.Fatalf("parallelism %d diverged: k=%v acc=%v, want k=%v acc=%v",
				par, cut.K, cut.Acceptance, ref.K, ref.Acceptance)
		}
		for u := range ref.Partition {
			if cut.Partition[u] != ref.Partition[u] {
				t.Fatalf("parallelism %d: partitions differ at node %d", par, u)
			}
		}
	}
}

// TestMultilevelWarmComposition: a warm hint threads through the ladder —
// the hint becomes the sole initial partition, is projected onto the
// coarse graph, and the gated result is still at least as good as a cold
// flat sweep would leave that hint.
func TestMultilevelWarmComposition(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 81))
	const nL, nF = 400, 150
	g, isFake := plantedWorld(r, nL, nF, 0.7)
	seeds := plantedSeeds(nL, nF, 20)
	cold, ok := FindMAARCut(g, CutOptions{Seeds: seeds, RandSeed: 3})
	if !ok {
		t.Fatal("no cold cut")
	}
	warm, ok := FindMAARCut(g, CutOptions{
		Seeds: seeds, RandSeed: 3, Multilevel: true, MLCoarsestNodes: 48,
		WarmInit: cold.Partition,
	})
	if !ok {
		t.Fatal("no warm multilevel cut")
	}
	if warm.Acceptance > cold.Acceptance+1e-12 {
		t.Fatalf("warm multilevel acceptance %.4f worse than cold %.4f", warm.Acceptance, cold.Acceptance)
	}
	// The warm sweep may publish a different minimum-acceptance cut than
	// the hint (on this world it finds a strictly lower one), so assert
	// recall of the planted group rather than exact label agreement: the
	// suspect region must still contain the spammers the hint had caught.
	caught := 0
	for u, reg := range warm.Partition {
		if reg == graph.Suspect && isFake[u] {
			caught++
		}
	}
	if float64(caught) < 0.9*nF {
		t.Fatalf("warm multilevel suspect region holds only %d of %d planted spammers", caught, nF)
	}
}
