package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// randomOracleGraph builds a small random graph with at least one rejection,
// so a valid MAAR cut always exists.
func randomOracleGraph(r *rand.Rand) *graph.Graph {
	n := 4 + r.IntN(9) // 4..12 nodes: 2^12 bipartitions stay enumerable
	g := graph.New(n)
	pF := 0.15 + 0.35*r.Float64()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < pF {
				g.AddFriendship(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	for i, m := 0, 1+r.IntN(2*n); i < m; i++ {
		u, v := r.IntN(n), r.IntN(n)
		if u != v {
			g.AddRejection(graph.NodeID(u), graph.NodeID(v))
		}
	}
	if g.NumRejections() == 0 {
		g.AddRejection(0, 1)
	}
	return g
}

// oracleMAAR finds the true minimum aggregate acceptance rate by exhaustive
// enumeration of every nontrivial bipartition, applying exactly the validity
// rule the sweep uses with no seeds: a candidate must direct at least one
// rejection into its suspect region. Feasible only for n ≤ ~20.
func oracleMAAR(g *graph.Graph) (best float64, found bool) {
	n := g.NumNodes()
	p := graph.NewPartition(n)
	for mask := 1; mask < (1<<n)-1; mask++ {
		for u := 0; u < n; u++ {
			if mask>>u&1 == 1 {
				p[u] = graph.Suspect
			} else {
				p[u] = graph.Legit
			}
		}
		s := p.Stats(g)
		if s.Trivial() || s.RejIntoSuspect == 0 {
			continue
		}
		if acc := s.AcceptanceOfSuspect(); !found || acc < best {
			best, found = acc, true
		}
	}
	return best, found
}

// TestFindMAARCutAgainstOracle drives the k-sweep heuristic against the
// exhaustive oracle on 250 random graphs. The sweep is a heuristic (KL from
// a few starts), so it may terminate above the true minimum — but it must
// NEVER report an acceptance below it (that would mean its arithmetic is
// wrong), its reported statistics must be honest (recomputable from the
// returned partition), and its optimality gap must stay small. The run is
// fully deterministic given the seeds, so the bounds asserted at the bottom
// are stable, not flaky.
func TestFindMAARCutAgainstOracle(t *testing.T) {
	const graphs = 250
	r := rand.New(rand.NewPCG(7, 31))

	exact, missed := 0, 0
	worstGap, sumGap := 0.0, 0.0
	for i := 0; i < graphs; i++ {
		g := randomOracleGraph(r)
		want, ok := oracleMAAR(g)
		if !ok {
			t.Fatalf("graph %d: oracle found no valid cut despite %d rejections", i, g.NumRejections())
		}
		opts := CutOptions{Restarts: 3, RandSeed: uint64(1000 + i)}
		cut, hok := FindMAARCut(g, opts)
		fcut, fok := FindMAARCutFrozen(g.Freeze(), opts)
		if hok != fok || (hok && cut.Acceptance != fcut.Acceptance) {
			t.Fatalf("graph %d: FindMAARCut (%v, %v) and FindMAARCutFrozen (%v, %v) disagree",
				i, cut.Acceptance, hok, fcut.Acceptance, fok)
		}
		if !hok {
			missed++
			continue
		}
		// The returned statistics must be recomputable from the partition,
		// and the cut must satisfy the same validity rule as the oracle.
		s := cut.Partition.Stats(g)
		if s != cut.Stats {
			t.Fatalf("graph %d: reported stats %+v but partition yields %+v", i, cut.Stats, s)
		}
		if s.Trivial() || s.RejIntoSuspect == 0 {
			t.Fatalf("graph %d: sweep returned an invalid cut: %+v", i, s)
		}
		if cut.Acceptance < want-1e-12 {
			t.Fatalf("graph %d: sweep reported acceptance %.9f below the true minimum %.9f",
				i, cut.Acceptance, want)
		}
		gap := cut.Acceptance - want
		if gap <= 1e-12 {
			exact++
		} else {
			sumGap += gap
			if gap > worstGap {
				worstGap = gap
			}
		}
	}

	t.Logf("oracle comparison over %d graphs: %d exact, %d missed, worst gap %.4f, mean gap over non-exact %.4f",
		graphs, exact, missed, worstGap, sumGap/float64(max(1, graphs-exact-missed)))
	if missed > 0 {
		t.Errorf("sweep found no cut on %d graphs where the oracle did", missed)
	}
	// Documented heuristic-vs-optimal behavior (deterministic given seeds):
	// the sweep hits the true minimum on the overwhelming majority of small
	// graphs, and when it misses, it is never far off.
	if exact < graphs*9/10 {
		t.Errorf("sweep matched the oracle on only %d/%d graphs, want >= 90%%", exact, graphs)
	}
	if worstGap > 0.25 {
		t.Errorf("worst heuristic-vs-optimal gap %.4f exceeds 0.25", worstGap)
	}
}
