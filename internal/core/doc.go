// Package core implements Rejecto's friend-spammer detection: the minimum
// aggregate acceptance rate (MAAR) cut search of §IV and the iterative
// group detection of §IV-E.
//
// The MAAR problem asks for the user subset U whose friend requests toward
// the rest of the graph fare worst:
//
//	U* = argmin_U |F(Ū,U)| / (|F(Ū,U)| + |R⃗⟨Ū,U⟩|)
//
// It is NP-hard (within a factor two of MIN-RATIO-CUT, §IV-B), so Rejecto
// linearizes it: by Theorem 1, the MAAR cut with friends-to-rejections
// ratio k* is the optimum of the linear objective |F(Ū,U)| − k*·|R⃗⟨Ū,U⟩|.
// FindMAARCut sweeps k over a geometric grid, solves each linear problem
// with the extended Kernighan–Lin heuristic (package kl), and keeps the cut
// with the lowest aggregate acceptance rate. Detect then applies the cut
// repeatedly, pruning each detected group, which defeats the self-rejection
// whitewashing strategy (§IV-E).
package core
