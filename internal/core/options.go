package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Seeds carries the OSN provider's prior knowledge: a small set of users
// manually verified as legitimate or as friend spammers (§III-B, §IV-F).
// Seeds are pinned to their region during partitioning, ruling out the
// spurious low-ratio cuts inside the legitimate region that would otherwise
// cause false positives.
type Seeds struct {
	Legit   []graph.NodeID
	Spammer []graph.NodeID
}

// Empty reports whether no seeds are configured.
func (s Seeds) Empty() bool { return len(s.Legit) == 0 && len(s.Spammer) == 0 }

// CutOptions parameterizes a single MAAR cut search.
type CutOptions struct {
	// KMin and KMax bound the geometric sweep over the friends-to-
	// rejections ratio k of §IV-D. Defaults: [1/32, 32].
	KMin, KMax float64
	// KFactor is the geometric step between successive k values.
	// Default: 1.5.
	KFactor float64
	// WeightScale converts k into integral edge weights for the bucket
	// list: friendships weigh WeightScale, rejections round(k·WeightScale).
	// Default: 64.
	WeightScale int64
	// Seeds pins known users to their regions.
	Seeds Seeds
	// Restarts adds that many random initial partitions per k on top of
	// the acceptance-heuristic initialization; the best cut across all
	// starts wins. Default: 0.
	Restarts int
	// MaxPasses caps KL passes per (k, start). Zero uses kl's default.
	MaxPasses int
	// Parallelism is the number of goroutines solving the sweep's
	// independent (k, init) jobs. Zero means GOMAXPROCS. The result is
	// identical at any parallelism: the reduction is deterministic.
	Parallelism int
	// RandSeed makes the run reproducible. The zero value is a valid seed.
	RandSeed uint64
	// Multilevel runs the sweep through the multilevel ladder (package ml):
	// the residual is coarsened once by heavy-edge matching (rejection-
	// preserving pairs preferred, rejection-connected ones contracted only
	// as a last resort), every (k, init) job is scored by a KL solve on the
	// small coarsest graph — contraction is exact, so coarse acceptances
	// are true fine-graph acceptances — and a shortlist of the best ks
	// (plus ties) is refined back down the ladder, once per distinct coarse
	// partition. A quality gate then solves a capped set of flat reference
	// jobs at the refined and neighbouring ks and falls back to the full
	// flat sweep (emitting obs.EvMLFallback) if any reference found a
	// strictly better acceptance, so enabling Multilevel can change which
	// near-tie cut is published but never publishes a cut the gate's flat
	// references beat. Composes with WarmInit: the warm hint is projected
	// onto the coarse graph like any other initial partition.
	Multilevel bool
	// MLCoarsestNodes bounds the coarsest level's node count (zero means
	// ml.DefaultCoarsestNodes); MLMaxLevels caps the ladder depth including
	// level 0 (zero means ml.DefaultMaxLevels). Only read when Multilevel
	// is set.
	MLCoarsestNodes int
	MLMaxLevels     int
	// WarmInit, when non-nil, replaces the standard initial partitions
	// (acceptance heuristic plus Restarts random starts) with this single
	// partition: every (k, init) job starts KL from it, with seeds still
	// pre-placed. The incremental epoch engine (internal/incr) threads the
	// previous epoch's converged cut through here so the sweep resumes
	// near the old optimum instead of rediscovering it. Length must equal
	// the graph's node count.
	WarmInit graph.Partition
	// Tracer receives structured sweep events (obs.EvSweepStart, one
	// obs.EvSolveDone per KL solve, obs.EvSweepDone). nil disables
	// tracing at zero cost: no events are built and the hot path reads
	// no clocks. Tracing never changes the returned cut.
	Tracer obs.Tracer
	// TraceRound tags this sweep's events with a 1-based detection round
	// for correlation; Detect stamps it automatically. Zero means the
	// sweep runs outside any round.
	TraceRound int
}

// Default sweep and scaling constants for CutOptions.
const (
	DefaultKMin        = 1.0 / 32
	DefaultKMax        = 32.0
	DefaultKFactor     = 1.5
	DefaultWeightScale = 64
)

// WithDefaults returns a copy of o with zero fields replaced by the
// package defaults.
func (o CutOptions) WithDefaults() CutOptions {
	if o.KMin <= 0 {
		o.KMin = DefaultKMin
	}
	if o.KMax <= 0 {
		o.KMax = DefaultKMax
	}
	if o.KFactor <= 1 {
		o.KFactor = DefaultKFactor
	}
	if o.WeightScale <= 0 {
		o.WeightScale = DefaultWeightScale
	}
	return o
}

// KGrid returns the geometric k grid of the MAAR sweep (§IV-D) for o with
// defaults applied. Each grid point is derived from an integer exponent —
// KMin·KFactor^i — rather than by accumulating k *= KFactor, so rounding
// error does not compound across the grid and the KMax inclusion guard
// cannot include or drop the last point platform-dependently.
func (o CutOptions) KGrid() []float64 {
	o = o.WithDefaults()
	points := 0
	for o.KMin*math.Pow(o.KFactor, float64(points)) <= o.KMax*(1+1e-9) {
		points++
	}
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = o.KMin * math.Pow(o.KFactor, float64(i))
	}
	return grid
}

// Validate reports configuration errors in o relative to graph g.
func (o CutOptions) Validate(g *graph.Graph) error { return o.validate(g.NumNodes()) }

// validate is Validate against a bare node count, shared with the frozen
// snapshot path.
func (o CutOptions) validate(numNodes int) error {
	o = o.WithDefaults()
	if o.KMin > o.KMax {
		return fmt.Errorf("core: KMin %v > KMax %v", o.KMin, o.KMax)
	}
	if math.Round(o.KMin*float64(o.WeightScale)) < 1 {
		return fmt.Errorf("core: KMin %v rounds to zero at weight scale %d", o.KMin, o.WeightScale)
	}
	n := graph.NodeID(numNodes)
	for _, u := range o.Seeds.Legit {
		if u < 0 || u >= n {
			return fmt.Errorf("core: legit seed %d out of range", u)
		}
	}
	for _, u := range o.Seeds.Spammer {
		if u < 0 || u >= n {
			return fmt.Errorf("core: spammer seed %d out of range", u)
		}
	}
	if o.Restarts < 0 {
		return fmt.Errorf("core: negative Restarts %d", o.Restarts)
	}
	if o.MLCoarsestNodes < 0 {
		return fmt.Errorf("core: negative MLCoarsestNodes %d", o.MLCoarsestNodes)
	}
	if o.MLMaxLevels < 0 {
		return fmt.Errorf("core: negative MLMaxLevels %d", o.MLMaxLevels)
	}
	if o.WarmInit != nil && len(o.WarmInit) != numNodes {
		return fmt.Errorf("core: WarmInit length %d != %d nodes", len(o.WarmInit), numNodes)
	}
	return nil
}

// Cut is the result of one MAAR search.
type Cut struct {
	// Partition labels every node; the Suspect region is the detected
	// spammer-candidate group.
	Partition graph.Partition
	// Stats are the cut statistics of Partition.
	Stats graph.CutStats
	// K is the sweep value whose linear objective produced the cut.
	K float64
	// Acceptance is Stats.AcceptanceOfSuspect(), the aggregate acceptance
	// rate of the suspect region's outgoing requests.
	Acceptance float64
}
