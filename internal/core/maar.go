package core

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/rng"
)

// FindMAARCut approximates the minimum aggregate acceptance rate cut of g
// (§IV-B) by sweeping the linearized objective over a geometric grid of k
// values (Theorem 1, §IV-D) and solving each with extended Kernighan–Lin.
//
// ok is false when no valid cut exists: the graph carries no rejections, or
// every candidate partition was trivial (one side empty).
func FindMAARCut(g *graph.Graph, opts CutOptions) (Cut, bool) {
	opts = opts.WithDefaults()
	if err := opts.Validate(g); err != nil {
		panic(err)
	}
	if g.NumRejections() == 0 || g.NumNodes() < 2 {
		return Cut{}, false
	}

	pinned := pinnedSet(g, opts.Seeds)
	src := rng.New(opts.RandSeed)
	inits := initialPartitions(g, opts, src.Stream("init"))

	// Enumerate the (k, init) jobs of the sweep. They are independent KL
	// solves, so they parallelize; the reduction below is deterministic
	// regardless of completion order or worker count.
	type job struct {
		initIdx int
		k       float64
		wR      int64
	}
	var jobs []job
	for k := opts.KMin; k <= opts.KMax*(1+1e-9); k *= opts.KFactor {
		wR := int64(math.Round(k * float64(opts.WeightScale)))
		if wR >= 1 {
			for i := range inits {
				jobs = append(jobs, job{initIdx: i, k: k, wR: wR})
			}
		}
	}

	type candidate struct {
		cut Cut
		ok  bool
	}
	results := make([]candidate, len(jobs))
	run := func(j int) {
		jb := jobs[j]
		cfg := kl.Config{
			FriendWeight: opts.WeightScale,
			RejectWeight: jb.wR,
			Pinned:       pinned,
			MaxPasses:    opts.MaxPasses,
		}
		res := kl.Partition(g, inits[jb.initIdx], cfg)
		cut, ok := scoreCut(g, res.Partition, jb.k, opts.Seeds)
		results[j] = candidate{cut: cut, ok: ok}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for j := range jobs {
			run(j)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					run(j)
				}
			}()
		}
		for j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	// Deterministic reduction: minimum acceptance, ties to the earliest
	// (k, init) job — the order the serial sweep would have kept.
	best := Cut{Acceptance: math.Inf(1)}
	found := false
	for _, cand := range results {
		if cand.ok && cand.cut.Acceptance < best.Acceptance {
			best = cand.cut
			found = true
		}
	}
	return best, found
}

// scoreCut evaluates a partition as a MAAR candidate. When no seeds
// constrain orientation, it also scores the mirrored cut (the complement
// region as suspect) and keeps the lower acceptance, since both
// orientations of a bipartition are candidate MAAR cuts.
func scoreCut(g *graph.Graph, p graph.Partition, k float64, seeds Seeds) (Cut, bool) {
	s := p.Stats(g)
	if s.Trivial() {
		return Cut{}, false
	}
	best := Cut{}
	found := false
	if s.RejIntoSuspect > 0 {
		best = Cut{Partition: p, Stats: s, K: k, Acceptance: s.AcceptanceOfSuspect()}
		found = true
	}
	if seeds.Empty() && s.RejIntoLegit > 0 {
		if acc := s.AcceptanceOfLegit(); !found || acc < best.Acceptance {
			best = Cut{Partition: mirror(p), Stats: mirrorStats(s), K: k, Acceptance: acc}
			found = true
		}
	}
	return best, found
}

func mirror(p graph.Partition) graph.Partition {
	m := make(graph.Partition, len(p))
	for i, r := range p {
		m[i] = r.Other()
	}
	return m
}

func mirrorStats(s graph.CutStats) graph.CutStats {
	return graph.CutStats{
		SuspectSize:      s.LegitSize,
		LegitSize:        s.SuspectSize,
		CrossFriendships: s.CrossFriendships,
		RejIntoSuspect:   s.RejIntoLegit,
		RejIntoLegit:     s.RejIntoSuspect,
	}
}

// pinnedSet returns the pin mask for the seed sets, or nil if no seeds.
func pinnedSet(g *graph.Graph, seeds Seeds) []bool {
	if seeds.Empty() {
		return nil
	}
	pinned := make([]bool, g.NumNodes())
	for _, u := range seeds.Legit {
		pinned[u] = true
	}
	for _, u := range seeds.Spammer {
		pinned[u] = true
	}
	return pinned
}

// initialPartitions builds the KL starting points: the per-node acceptance
// heuristic plus opts.Restarts random partitions. Seeds are pre-placed in
// all of them (§IV-F).
func initialPartitions(g *graph.Graph, opts CutOptions, r *rand.Rand) []graph.Partition {
	n := g.NumNodes()
	placeSeeds := func(p graph.Partition) graph.Partition {
		for _, u := range opts.Seeds.Legit {
			p[u] = graph.Legit
		}
		for _, u := range opts.Seeds.Spammer {
			p[u] = graph.Suspect
		}
		return p
	}

	// Heuristic start: the aggregate acceptance rate over the whole graph
	// separates users with excess in-rejections from the rest. Collusion
	// defeats this per-user signal — that is why it is only a starting
	// point for KL's group moves, never the detector itself.
	totalF, totalR := g.NumFriendships(), g.NumRejections()
	threshold := float64(2*totalF) / float64(2*totalF+totalR)
	heur := graph.NewPartition(n)
	for u := 0; u < n; u++ {
		if g.Acceptance(graph.NodeID(u)) < threshold {
			heur[u] = graph.Suspect
		}
	}
	inits := []graph.Partition{placeSeeds(heur)}

	for i := 0; i < opts.Restarts; i++ {
		p := graph.NewPartition(n)
		for u := range p {
			if r.Float64() < 0.5 {
				p[u] = graph.Suspect
			}
		}
		inits = append(inits, placeSeeds(p))
	}
	return inits
}
