package core

import (
	"math"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/obs"
	"repro/internal/rng"
)

// graphView is the read surface the sweep needs from a graph; both the
// mutable *graph.Graph and the immutable *graph.Frozen satisfy it.
type graphView interface {
	NumNodes() int
	NumFriendships() int
	NumRejections() int
	Acceptance(u graph.NodeID) float64
}

// FindMAARCut approximates the minimum aggregate acceptance rate cut of g
// (§IV-B) by sweeping the linearized objective over a geometric grid of k
// values (Theorem 1, §IV-D) and solving each with extended Kernighan–Lin.
//
// The sweep runs on a frozen CSR snapshot of g (see graph.Freeze); callers
// holding a snapshot already should use FindMAARCutFrozen to skip the
// freeze. ok is false when no valid cut exists: the graph carries no
// rejections, or every candidate partition was trivial (one side empty).
func FindMAARCut(g *graph.Graph, opts CutOptions) (Cut, bool) {
	return FindMAARCutFrozen(g.Freeze(), opts)
}

// FindMAARCutFrozen is FindMAARCut on an immutable CSR snapshot. The
// (k, init) jobs of the sweep are independent KL solves distributed over
// opts.Parallelism workers; each worker reuses one kl.Workspace and keeps
// only its best candidate, so steady-state jobs perform no allocations.
// The reduction is deterministic regardless of completion order or worker
// count, and the returned cut is identical to the seed slice-of-slices
// implementation's.
func FindMAARCutFrozen(f *graph.Frozen, opts CutOptions) (Cut, bool) {
	opts = opts.WithDefaults()
	if err := opts.validate(f.NumNodes()); err != nil {
		panic(err)
	}
	if f.NumRejections() == 0 || f.NumNodes() < 2 {
		return Cut{}, false
	}

	pinned := pinnedSet(f.NumNodes(), opts.Seeds)
	src := rng.New(opts.RandSeed)
	inits := initialPartitions(f, opts, src.Stream("init"))
	jobs := sweepJobs(opts, len(inits))

	// Every (k, init) job starts KL from one of a handful of shared initial
	// partitions, so their cut statistics are computed once here instead of
	// once per job inside the solver.
	initStats := make([]graph.CutStats, len(inits))
	for i, init := range inits {
		initStats[i] = f.Stats(init)
	}

	if opts.Multilevel {
		if cut, ok, done := findMAARCutMultilevel(f, opts, pinned, inits, initStats, jobs); done {
			return cut, ok
		}
		// The ladder did not coarsen, or the quality gate rejected the
		// refined winner: re-run the sweep flat, cold.
	}
	return flatSweepFrozen(f, opts, pinned, inits, initStats, jobs)
}

// flatSweepFrozen runs the full-resolution (k, init) sweep — the reference
// path every other sweep mode gates against.
func flatSweepFrozen(f *graph.Frozen, opts CutOptions, pinned []bool, inits []graph.Partition, initStats []graph.CutStats, jobs []sweepJob) (Cut, bool) {
	// Tracing and counters. A nil tracer keeps the sweep clock-free and
	// allocation-identical; the expvar counters below are always live but
	// tick per solve (a handful of atomic adds), never per edge. Each KL
	// pass walks every CSR adjacency entry twice (gain init + switching),
	// so a solve's edge work is passes × 2 × (2|F| + 2|R|).
	tr := opts.Tracer
	edgeWork := int64(2 * (2*f.NumFriendships() + 2*f.NumRejections()))
	var sweepPasses atomic.Int64
	var sweepStart time.Time
	if tr != nil {
		sweepStart = time.Now()
		tr.Emit(obs.Event{
			Name: obs.EvSweepStart, Wall: sweepStart, Round: opts.TraceRound,
			Jobs: len(jobs), Nodes: f.NumNodes(),
			Friendships: f.NumFriendships(), Rejections: f.NumRejections(),
		})
	}

	// candidate is a worker-local running best: the cut with the minimum
	// acceptance, ties to the earliest (k, init) job — the order the serial
	// sweep would have kept. The partition buffer is allocated once per
	// worker and overwritten on each adoption, so improving jobs copy out of
	// the workspace without allocating.
	type candidate struct {
		cut    Cut
		jobIdx int
		found  bool
	}
	run := func(ws *kl.Workspace, j int, best *candidate) {
		jb := jobs[j]
		cfg := kl.Config{
			FriendWeight: opts.WeightScale,
			RejectWeight: jb.wR,
			Pinned:       pinned,
			MaxPasses:    opts.MaxPasses,
		}
		obs.Pipeline.SolvesStarted.Add(1)
		var solveStart time.Time
		if tr != nil {
			solveStart = time.Now()
		}
		res := kl.PartitionFrozenFromStats(f, inits[jb.initIdx], initStats[jb.initIdx], cfg, ws)
		acc, mirrored, ok := orientCut(res.Stats, opts.Seeds)
		obs.Pipeline.SolvesFinished.Add(1)
		obs.Pipeline.KLPasses.Add(int64(res.Passes))
		obs.Pipeline.EdgesScanned.Add(int64(res.Passes) * edgeWork)
		if tr != nil {
			sweepPasses.Add(int64(res.Passes))
			ev := obs.Event{
				Name: obs.EvSolveDone, Wall: time.Now(), Dur: time.Since(solveStart),
				Round: opts.TraceRound, Job: j + 1, K: jb.k, Init: jb.initIdx + 1,
				Passes: res.Passes, Switches: res.Switches, Rollbacks: res.Rollbacks,
				Gains: res.PassGains, Acceptance: -1,
			}
			if ok {
				ev.Acceptance = acc
			}
			tr.Emit(ev)
		}
		if !ok {
			return
		}
		if best.found && (acc > best.cut.Acceptance ||
			(acc == best.cut.Acceptance && j > best.jobIdx)) {
			return
		}
		if cap(best.cut.Partition) < len(res.Partition) {
			best.cut.Partition = make(graph.Partition, len(res.Partition))
		}
		p := best.cut.Partition[:len(res.Partition)]
		s := res.Stats
		if mirrored {
			for i, r := range res.Partition {
				p[i] = r.Other()
			}
			s = mirrorStats(s)
		} else {
			copy(p, res.Partition)
		}
		best.cut = Cut{Partition: p, Stats: s, K: jb.k, Acceptance: acc}
		best.jobIdx, best.found = j, true
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	bests := make([]candidate, workers)
	if workers == 1 {
		ws := &kl.Workspace{}
		for j := range jobs {
			run(ws, j, &bests[0])
		}
		obs.Pipeline.WorkspaceReuse.Add(int64(len(jobs) - 1))
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &kl.Workspace{}
				solved := 0
				for j := range next {
					run(ws, j, &bests[w])
					solved++
				}
				if solved > 1 {
					obs.Pipeline.WorkspaceReuse.Add(int64(solved - 1))
				}
			}(w)
		}
		for j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	var final candidate
	for _, b := range bests {
		if !b.found {
			continue
		}
		if !final.found || b.cut.Acceptance < final.cut.Acceptance ||
			(b.cut.Acceptance == final.cut.Acceptance && b.jobIdx < final.jobIdx) {
			final = b
		}
	}
	obs.Pipeline.Sweeps.Add(1)
	if tr != nil {
		ev := obs.Event{
			Name: obs.EvSweepDone, Wall: time.Now(), Dur: time.Since(sweepStart),
			Round: opts.TraceRound, Jobs: len(jobs),
			Passes: int(sweepPasses.Load()), Acceptance: -1,
		}
		if final.found {
			ev.K = final.cut.K
			ev.Acceptance = final.cut.Acceptance
		}
		tr.Emit(ev)
	}
	return final.cut, final.found
}

// sweepJob is one independent KL solve of the sweep. kIdx is the dense
// index of the job's grid point among those that survived weight rounding
// — the multilevel sweep groups candidates by it.
type sweepJob struct {
	initIdx int
	kIdx    int
	k       float64
	wR      int64
}

// sweepJobs enumerates the (k, init) jobs in the deterministic order the
// serial sweep would visit them.
func sweepJobs(opts CutOptions, numInits int) []sweepJob {
	grid := opts.KGrid()
	jobs := make([]sweepJob, 0, len(grid)*numInits)
	kIdx := 0
	for _, k := range grid {
		wR := int64(math.Round(k * float64(opts.WeightScale)))
		if wR >= 1 {
			for i := 0; i < numInits; i++ {
				jobs = append(jobs, sweepJob{initIdx: i, kIdx: kIdx, k: k, wR: wR})
			}
			kIdx++
		}
	}
	return jobs
}

// findMAARCutOnSlices is the seed implementation of the sweep, running
// extended KL directly on the mutable slice-of-slices graph and re-walking
// every edge to score each candidate. It is retained as the correctness
// bar: the property tests and BenchmarkFindMAARCut assert that the frozen
// engine returns byte-identical cuts.
func findMAARCutOnSlices(g *graph.Graph, opts CutOptions) (Cut, bool) {
	opts = opts.WithDefaults()
	if err := opts.Validate(g); err != nil {
		panic(err)
	}
	if g.NumRejections() == 0 || g.NumNodes() < 2 {
		return Cut{}, false
	}

	pinned := pinnedSet(g.NumNodes(), opts.Seeds)
	src := rng.New(opts.RandSeed)
	inits := initialPartitions(g, opts, src.Stream("init"))
	jobs := sweepJobs(opts, len(inits))

	type candidate struct {
		cut Cut
		ok  bool
	}
	results := make([]candidate, len(jobs))
	run := func(j int) {
		jb := jobs[j]
		cfg := kl.Config{
			FriendWeight: opts.WeightScale,
			RejectWeight: jb.wR,
			Pinned:       pinned,
			MaxPasses:    opts.MaxPasses,
		}
		res := kl.Partition(g, inits[jb.initIdx], cfg)
		cut, ok := scoreCut(g, res.Partition, jb.k, opts.Seeds)
		results[j] = candidate{cut: cut, ok: ok}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for j := range jobs {
			run(j)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					run(j)
				}
			}()
		}
		for j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	best := Cut{Acceptance: math.Inf(1)}
	found := false
	for _, cand := range results {
		if cand.ok && cand.cut.Acceptance < best.Acceptance {
			best = cand.cut
			found = true
		}
	}
	return best, found
}

// orientCut evaluates the statistics of a converged partition as a MAAR
// candidate without materializing anything: it reports the candidate's
// acceptance, whether the mirrored orientation (complement region as
// suspect) is the one to keep, and whether the partition is a valid
// candidate at all. When no seeds constrain orientation both orientations
// compete, since both sides of a bipartition are candidate MAAR cuts.
func orientCut(s graph.CutStats, seeds Seeds) (acc float64, mirrored, ok bool) {
	if s.Trivial() {
		return 0, false, false
	}
	if s.RejIntoSuspect > 0 {
		acc, ok = s.AcceptanceOfSuspect(), true
	}
	if seeds.Empty() && s.RejIntoLegit > 0 {
		if a := s.AcceptanceOfLegit(); !ok || a < acc {
			acc, mirrored, ok = a, true, true
		}
	}
	return acc, mirrored, ok
}

// scoreCut evaluates a partition as a MAAR candidate by re-walking the
// graph (the seed path; the frozen engine reads the statistics off the KL
// result instead). When no seeds constrain orientation, it also scores the
// mirrored cut and keeps the lower acceptance.
func scoreCut(g *graph.Graph, p graph.Partition, k float64, seeds Seeds) (Cut, bool) {
	s := p.Stats(g)
	if s.Trivial() {
		return Cut{}, false
	}
	best := Cut{}
	found := false
	if s.RejIntoSuspect > 0 {
		best = Cut{Partition: p, Stats: s, K: k, Acceptance: s.AcceptanceOfSuspect()}
		found = true
	}
	if seeds.Empty() && s.RejIntoLegit > 0 {
		if acc := s.AcceptanceOfLegit(); !found || acc < best.Acceptance {
			best = Cut{Partition: mirror(p), Stats: mirrorStats(s), K: k, Acceptance: acc}
			found = true
		}
	}
	return best, found
}

func mirror(p graph.Partition) graph.Partition {
	m := make(graph.Partition, len(p))
	for i, r := range p {
		m[i] = r.Other()
	}
	return m
}

func mirrorStats(s graph.CutStats) graph.CutStats {
	return graph.CutStats{
		SuspectSize:      s.LegitSize,
		LegitSize:        s.SuspectSize,
		CrossFriendships: s.CrossFriendships,
		RejIntoSuspect:   s.RejIntoLegit,
		RejIntoLegit:     s.RejIntoSuspect,
	}
}

// pinnedSet returns the pin mask for the seed sets, or nil if no seeds.
func pinnedSet(numNodes int, seeds Seeds) []bool {
	if seeds.Empty() {
		return nil
	}
	pinned := make([]bool, numNodes)
	for _, u := range seeds.Legit {
		pinned[u] = true
	}
	for _, u := range seeds.Spammer {
		pinned[u] = true
	}
	return pinned
}

// initialPartitions builds the KL starting points: the per-node acceptance
// heuristic plus opts.Restarts random partitions. Seeds are pre-placed in
// all of them (§IV-F).
func initialPartitions(g graphView, opts CutOptions, r *rand.Rand) []graph.Partition {
	n := g.NumNodes()
	placeSeeds := func(p graph.Partition) graph.Partition {
		for _, u := range opts.Seeds.Legit {
			p[u] = graph.Legit
		}
		for _, u := range opts.Seeds.Spammer {
			p[u] = graph.Suspect
		}
		return p
	}

	// A warm start supersedes every standard starting point: the previous
	// epoch's converged cut is a better seed than the acceptance heuristic,
	// and random restarts would only re-explore ground the quality gate in
	// the incremental engine already covers by falling back to a cold solve.
	if opts.WarmInit != nil {
		return []graph.Partition{placeSeeds(slices.Clone(opts.WarmInit))}
	}

	// Heuristic start: the aggregate acceptance rate over the whole graph
	// separates users with excess in-rejections from the rest. Collusion
	// defeats this per-user signal — that is why it is only a starting
	// point for KL's group moves, never the detector itself.
	totalF, totalR := g.NumFriendships(), g.NumRejections()
	threshold := float64(2*totalF) / float64(2*totalF+totalR)
	heur := graph.NewPartition(n)
	for u := 0; u < n; u++ {
		if g.Acceptance(graph.NodeID(u)) < threshold {
			heur[u] = graph.Suspect
		}
	}
	inits := []graph.Partition{placeSeeds(heur)}

	for i := 0; i < opts.Restarts; i++ {
		p := graph.NewPartition(n)
		for u := range p {
			if r.Float64() < 0.5 {
				p[u] = graph.Suspect
			}
		}
		inits = append(inits, placeSeeds(p))
	}
	return inits
}
