package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// benchCutWorld is a Table I-scale planted instance: 24000 legitimate users
// with OSN-like degree (~12), 6000 fakes spraying requests at a 70%
// rejection rate. Edges are inserted in shuffled arrival order, the way an
// ingest pipeline receives them — not node by node, which would give the
// mutable graph's per-node slices an unrealistically contiguous layout.
func benchCutWorld() (*graph.Graph, CutOptions) {
	r := rand.New(rand.NewPCG(7, 99))
	const nL, nF = 24000, 6000
	type edge struct {
		u, v graph.NodeID
		rej  bool
	}
	var edges []edge
	for i := 0; i < nL; i++ {
		edges = append(edges, edge{graph.NodeID(i), graph.NodeID((i + 1) % nL), false})
		for c := 0; c < 5; c++ {
			v := graph.NodeID(r.IntN(nL))
			if v != graph.NodeID(i) {
				edges = append(edges, edge{graph.NodeID(i), v, false})
			}
		}
	}
	for i := 0; i < nL/2; i++ {
		u, v := r.IntN(nL), r.IntN(nL)
		if u != v {
			edges = append(edges, edge{graph.NodeID(u), graph.NodeID(v), true})
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 6 && k < i; k++ {
			edges = append(edges, edge{u, graph.NodeID(nL + r.IntN(i)), false})
		}
		for req := 0; req < 12; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				edges = append(edges, edge{target, u, true})
			} else {
				edges = append(edges, edge{u, target, false})
			}
		}
	}
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	g := graph.New(nL + nF)
	for _, e := range edges {
		if e.rej {
			g.AddRejection(e.u, e.v)
		} else {
			g.AddFriendship(e.u, e.v)
		}
	}
	// Serial sweep so ns/op compares engine cost, not scheduling.
	opts := CutOptions{Parallelism: 1, Restarts: 1, RandSeed: 5}
	return g, opts
}

// assertSameCut fails unless the two cuts agree on acceptance, k, and the
// exact suspect set — the frozen engine must reproduce the seed engine's
// answer byte for byte, not merely an equally good one.
func assertSameCut(tb testing.TB, want, got Cut, okW, okG bool) {
	tb.Helper()
	if okW != okG {
		tb.Fatalf("found mismatch: seed %v, frozen %v", okW, okG)
	}
	if !okW {
		return
	}
	if got.Acceptance != want.Acceptance || got.K != want.K || got.Stats != want.Stats {
		tb.Fatalf("cut mismatch: seed {acc=%v k=%v %+v}, frozen {acc=%v k=%v %+v}",
			want.Acceptance, want.K, want.Stats, got.Acceptance, got.K, got.Stats)
	}
	for u := range want.Partition {
		if want.Partition[u] != got.Partition[u] {
			tb.Fatalf("suspect set mismatch at node %d: seed %v, frozen %v",
				u, want.Partition[u], got.Partition[u])
		}
	}
}

// TestFrozenSweepMatchesSeedSweep: FindMAARCutFrozen returns the identical
// cut to the retained seed slice-of-slices sweep across randomized worlds,
// with and without seeds, at serial and parallel settings.
func TestFrozenSweepMatchesSeedSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts CutOptions
	}{
		{"serial", CutOptions{Parallelism: 1, Restarts: 2, RandSeed: 3}},
		{"parallel", CutOptions{Parallelism: 4, Restarts: 2, RandSeed: 3}},
		{"seeded", CutOptions{Parallelism: 3, Restarts: 1, RandSeed: 9,
			Seeds: plantedSeeds(300, 100, 4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(17, 23))
			for trial := 0; trial < 4; trial++ {
				g, _ := plantedWorld(r, 300, 100, 0.4+0.1*float64(trial))
				want, okW := findMAARCutOnSlices(g, tc.opts)
				got, okG := FindMAARCutFrozen(g.Freeze(), tc.opts)
				assertSameCut(t, want, got, okW, okG)
			}
		})
	}
}

// BenchmarkFindMAARCut compares the frozen CSR sweep against the retained
// seed implementation on the same Table I-scale instance, after asserting
// that both return the identical cut. Run with -benchmem: the frozen
// engine's point is ns/op and allocs/op together.
func BenchmarkFindMAARCut(b *testing.B) {
	g, opts := benchCutWorld()
	f := g.Freeze()

	want, okW := findMAARCutOnSlices(g, opts)
	got, okG := FindMAARCutFrozen(f, opts)
	assertSameCut(b, want, got, okW, okG)

	b.Run("Frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FindMAARCutFrozen(f, opts)
		}
	})
	b.Run("Seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			findMAARCutOnSlices(g, opts)
		}
	})
}
