package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// TimedRequest is one friend request with its outcome and the time interval
// it occurred in, used by the compromised-account deployment of §VII.
type TimedRequest struct {
	From, To graph.NodeID
	Accepted bool
	Interval int
}

// IntervalDetection is the detection output for one time interval.
type IntervalDetection struct {
	Interval  int
	Detection Detection
}

// DetectSharded runs Rejecto per time interval, the deployment §VII
// describes for catching compromised accounts: requests and rejections are
// sharded by interval, an augmented graph is built per shard on top of the
// pre-existing friendship base, and detection runs on each. An account that
// starts spamming after compromise follows the friend-spam model inside its
// post-compromise intervals and is exposed there.
//
// base supplies the pre-existing friendships (its rejections, if any, are
// ignored); requests supply each interval's accepted links and rejections.
// Intervals with no rejections are skipped. opts.TargetCount applies per
// interval; prefer AcceptanceThreshold, which adapts to shard size.
func DetectSharded(base *graph.Graph, requests []TimedRequest, opts DetectorOptions) ([]IntervalDetection, error) {
	shards := make(map[int][]TimedRequest)
	for _, req := range requests {
		if req.From < 0 || int(req.From) >= base.NumNodes() ||
			req.To < 0 || int(req.To) >= base.NumNodes() {
			return nil, fmt.Errorf("core: request %d→%d outside base graph", req.From, req.To)
		}
		shards[req.Interval] = append(shards[req.Interval], req)
	}
	intervals := make([]int, 0, len(shards))
	for iv := range shards {
		intervals = append(intervals, iv)
	}
	sort.Ints(intervals)

	var out []IntervalDetection
	for _, iv := range intervals {
		aug := buildInterval(base, shards[iv])
		if aug.NumRejections() == 0 {
			continue
		}
		det, err := Detect(aug, opts)
		if errors.Is(err, ErrInterrupted) {
			// Keep the completed-intervals prefix plus this interval's
			// partial rounds so an interrupted run still reports its work.
			out = append(out, IntervalDetection{Interval: iv, Detection: det})
			return out, ErrInterrupted
		}
		if err != nil {
			return nil, fmt.Errorf("core: interval %d: %w", iv, err)
		}
		out = append(out, IntervalDetection{Interval: iv, Detection: det})
	}
	return out, nil
}

// buildInterval overlays one shard's requests on the friendship base:
// accepted requests become OSN links, rejected ones become rejection edges
// ⟨target, sender⟩.
//
// The overlay is canonicalized (adjacency sorted) before detection, so the
// interval's result depends only on the *set* of answered requests, not on
// the order they were logged in. That is what lets the online service
// (internal/server) ingest from concurrent writers and still reproduce the
// batch result byte-for-byte when the log is replayed in any
// per-edge-order-preserving permutation.
func buildInterval(base *graph.Graph, reqs []TimedRequest) *graph.Graph {
	aug := base.Clone()
	for _, req := range reqs {
		if req.Accepted {
			if req.From != req.To {
				aug.AddFriendship(req.From, req.To)
			}
		} else if req.From != req.To {
			aug.AddRejection(req.To, req.From)
		}
	}
	aug.Canonicalize()
	return aug
}
