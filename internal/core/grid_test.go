package core

import (
	"math"
	"testing"
)

// TestKGridDefaultPinned pins the default sweep grid exactly: 18 points,
// each bit-identical to KMin·KFactor^i. The grid is derived from integer
// exponents precisely so that no accumulation drift can creep back in; this
// test is the tripwire.
func TestKGridDefaultPinned(t *testing.T) {
	grid := CutOptions{}.KGrid()
	if len(grid) != 18 {
		t.Fatalf("default grid has %d points, want 18", len(grid))
	}
	for i, k := range grid {
		want := DefaultKMin * math.Pow(DefaultKFactor, float64(i))
		if k != want {
			t.Errorf("grid[%d] = %v, want %v (KMin·KFactor^%d)", i, k, want, i)
		}
	}
	if grid[0] != 1.0/32 {
		t.Errorf("grid[0] = %v, want 1/32", grid[0])
	}
	if last := grid[17]; last > DefaultKMax || last < 30 {
		t.Errorf("grid[17] = %v, want within (30, 32]", last)
	}
}

// TestKGridCustomBounds: KGrid must include KMax when it lies on the grid
// (ulp tolerance) and exclude points beyond it.
func TestKGridCustomBounds(t *testing.T) {
	grid := CutOptions{KMin: 1, KMax: 8, KFactor: 2}.KGrid()
	want := []float64{1, 2, 4, 8}
	if len(grid) != len(want) {
		t.Fatalf("grid = %v, want %v", grid, want)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid = %v, want %v", grid, want)
		}
	}
}

// TestKGridMatchesSweepJobWeights: every default grid point must survive
// the wR ≥ 1 rounding filter at the default weight scale, so the sweep
// really visits all 18 linearizations.
func TestKGridMatchesSweepJobWeights(t *testing.T) {
	opts := CutOptions{}.WithDefaults()
	jobs := sweepJobs(opts, 1)
	if len(jobs) != 18 {
		t.Fatalf("default sweep has %d jobs, want 18", len(jobs))
	}
	for _, jb := range jobs {
		want := int64(math.Round(jb.k * float64(opts.WeightScale)))
		if jb.wR != want || jb.wR < 1 {
			t.Errorf("k=%v: wR=%d, want %d (≥1)", jb.k, jb.wR, want)
		}
	}
}
