package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// plantedWorld builds a small two-region world with a known spammer group:
// legit users 0..nL-1 on a ring with chords, fakes nL..nL+nF-1 densely
// linked, spam requests from every fake with the given rejection rate.
func plantedWorld(r *rand.Rand, nL, nF int, rejRate float64) (*graph.Graph, []bool) {
	g := graph.New(nL + nF)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+7)%nL))
	}
	// Sporadic legit rejections (≈ 20% odds vs the 2 sent requests each).
	for i := 0; i < nL/2; i++ {
		u, v := r.IntN(nL), r.IntN(nL)
		if u != v {
			g.AddRejection(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 4 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(nL+r.IntN(i)))
		}
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < rejRate {
				g.AddRejection(target, u)
			} else if target != u {
				g.AddFriendship(u, target)
			}
		}
	}
	isFake := make([]bool, nL+nF)
	for i := nL; i < nL+nF; i++ {
		isFake[i] = true
	}
	return g, isFake
}

func plantedSeeds(nL, nF, per int) Seeds {
	var s Seeds
	for i := 0; i < per; i++ {
		s.Legit = append(s.Legit, graph.NodeID(i*nL/per))
		s.Spammer = append(s.Spammer, graph.NodeID(nL+i*nF/per))
	}
	return s
}

func TestFindMAARCutRecoversPlantedRegion(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 81))
	const nL, nF = 400, 150
	g, isFake := plantedWorld(r, nL, nF, 0.7)
	cut, ok := FindMAARCut(g, CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 3})
	if !ok {
		t.Fatal("no cut found")
	}
	correct, wrong := 0, 0
	for u, reg := range cut.Partition {
		if (reg == graph.Suspect) == isFake[u] {
			correct++
		} else {
			wrong++
		}
	}
	if acc := float64(correct) / float64(correct+wrong); acc < 0.95 {
		t.Fatalf("cut labels only %.2f%% of nodes correctly", 100*acc)
	}
	if cut.Acceptance > 0.45 {
		t.Fatalf("cut acceptance %.3f too high for 70%% rejection spam", cut.Acceptance)
	}
}

func TestFindMAARCutNoRejections(t *testing.T) {
	g := graph.New(10)
	g.AddFriendship(0, 1)
	if _, ok := FindMAARCut(g, CutOptions{}); ok {
		t.Fatal("found a cut on a graph without rejections")
	}
}

func TestFindMAARCutCollusionResistance(t *testing.T) {
	// Densifying the fake region must not raise the detected cut's
	// acceptance: the objective ignores intra-region edges (§IV-A).
	r := rand.New(rand.NewPCG(2, 82))
	const nL, nF = 400, 150
	g, isFake := plantedWorld(r, nL, nF, 0.7)
	// Collusion overlay: 20 extra intra-fake edges per fake.
	for i := 0; i < nF; i++ {
		for k := 0; k < 20; k++ {
			v := nL + r.IntN(nF)
			if nL+i != v {
				g.AddFriendship(graph.NodeID(nL+i), graph.NodeID(v))
			}
		}
	}
	cut, ok := FindMAARCut(g, CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 3})
	if !ok {
		t.Fatal("no cut found under collusion")
	}
	caught := 0
	for u, reg := range cut.Partition {
		if reg == graph.Suspect && isFake[u] {
			caught++
		}
	}
	if float64(caught) < 0.9*nF {
		t.Fatalf("collusion evaded the cut: only %d/%d fakes caught", caught, nF)
	}
}

func TestSeedsArePinned(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 83))
	g, _ := plantedWorld(r, 200, 80, 0.7)
	seeds := plantedSeeds(200, 80, 10)
	cut, ok := FindMAARCut(g, CutOptions{Seeds: seeds, RandSeed: 1})
	if !ok {
		t.Fatal("no cut")
	}
	for _, u := range seeds.Legit {
		if cut.Partition[u] != graph.Legit {
			t.Fatalf("legit seed %d ended suspect", u)
		}
	}
	for _, u := range seeds.Spammer {
		if cut.Partition[u] != graph.Suspect {
			t.Fatalf("spammer seed %d ended legit", u)
		}
	}
}

func TestCutOptionsValidate(t *testing.T) {
	g := graph.New(5)
	cases := []struct {
		name string
		opts CutOptions
		ok   bool
	}{
		{"defaults", CutOptions{}, true},
		{"inverted range", CutOptions{KMin: 4, KMax: 2}, false},
		{"k rounds to zero", CutOptions{KMin: 0.001, WeightScale: 8}, false},
		{"bad legit seed", CutOptions{Seeds: Seeds{Legit: []graph.NodeID{9}}}, false},
		{"bad spam seed", CutOptions{Seeds: Seeds{Spammer: []graph.NodeID{-1}}}, false},
		{"negative restarts", CutOptions{Restarts: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(g); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDetectRequiresTermination(t *testing.T) {
	g := graph.New(4)
	if _, err := Detect(g, DetectorOptions{}); err == nil {
		t.Fatal("Detect without termination condition accepted")
	}
	if _, err := Detect(g, DetectorOptions{TargetCount: 99}); err == nil {
		t.Fatal("TargetCount above node count accepted")
	}
}

func TestDetectTargetCount(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 84))
	const nL, nF = 400, 150
	g, isFake := plantedWorld(r, nL, nF, 0.7)
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 9},
		TargetCount: nF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Suspects) != nF {
		t.Fatalf("detected %d, want exactly %d", len(det.Suspects), nF)
	}
	correct := 0
	for _, u := range det.Suspects {
		if isFake[u] {
			correct++
		}
	}
	if prec := float64(correct) / float64(nF); prec < 0.9 {
		t.Fatalf("precision %.3f below 0.9", prec)
	}
}

func TestDetectAcceptanceThreshold(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 85))
	const nL, nF = 400, 150
	g, _ := plantedWorld(r, nL, nF, 0.7)
	det, err := Detect(g, DetectorOptions{
		Cut:                 CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 9},
		AcceptanceThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Groups) == 0 {
		t.Fatal("threshold termination detected nothing")
	}
	for _, grp := range det.Groups {
		if grp.Acceptance > 0.5 {
			t.Fatalf("group with acceptance %.3f above threshold was kept", grp.Acceptance)
		}
	}
}

// TestDetectGroupsNonDecreasingAcceptance checks the ordering property of
// §IV-E: iterative MAAR yields groups in non-decreasing acceptance order.
func TestDetectGroupsNonDecreasingAcceptance(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 86))
	// Two separate fake groups with different rejection rates.
	const nL = 400
	g, _ := plantedWorld(r, nL, 80, 0.9)
	// Second, milder group appended.
	first := int(g.AddNodes(80))
	for i := 0; i < 80; i++ {
		u := graph.NodeID(first + i)
		for k := 0; k < 3 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(first+r.IntN(i)))
		}
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.6 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, 80, 20), RandSeed: 2},
		TargetCount: 160,
		MaxRounds:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Groups) < 2 {
		t.Skipf("only %d group(s) detected; ordering property needs ≥ 2", len(det.Groups))
	}
	for i := 1; i < len(det.Groups); i++ {
		if det.Groups[i].Acceptance < det.Groups[i-1].Acceptance-1e-9 {
			t.Fatalf("group %d acceptance %.3f < previous %.3f",
				i, det.Groups[i].Acceptance, det.Groups[i-1].Acceptance)
		}
	}
}

func TestDetectSelfRejectionIterates(t *testing.T) {
	// Fabricate the §IV-E whitewash structure: senders spam legits AND get
	// rejected heavily by the whitewash half; iterative detection must
	// still uncover both halves.
	r := rand.New(rand.NewPCG(7, 87))
	const nL, half = 400, 60
	g := graph.New(nL)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+7)%nL))
	}
	first := int(g.AddNodes(2 * half))
	isFake := make([]bool, g.NumNodes())
	for u := first; u < g.NumNodes(); u++ {
		isFake[u] = true
	}
	for i := 0; i < 2*half; i++ {
		u := graph.NodeID(first + i)
		for k := 0; k < 3 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(first+r.IntN(i)))
		}
		// Everyone spams legits at 70% rejection.
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	// Whitewash overlay at 95% self-rejection: senders (first half)
	// request the second half.
	for i := 0; i < half; i++ {
		u := graph.NodeID(first + i)
		for req := 0; req < 10; req++ {
			w := graph.NodeID(first + half + r.IntN(half))
			if r.Float64() < 0.95 {
				g.AddRejection(w, u)
			} else if u != w {
				g.AddFriendship(u, w)
			}
		}
	}
	seeds := Seeds{}
	for i := 0; i < 20; i++ {
		seeds.Legit = append(seeds.Legit, graph.NodeID(i*nL/20))
		seeds.Spammer = append(seeds.Spammer, graph.NodeID(first+i*half/20))
	}
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: seeds, RandSeed: 4},
		TargetCount: 2 * half,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, u := range det.Suspects {
		if isFake[u] {
			caught++
		}
	}
	if prec := float64(caught) / float64(len(det.Suspects)); prec < 0.85 {
		t.Fatalf("self-rejection evaded iterative detection: precision %.3f", prec)
	}
}

func TestDetectDeterministic(t *testing.T) {
	r1 := rand.New(rand.NewPCG(8, 88))
	g1, _ := plantedWorld(r1, 200, 80, 0.7)
	r2 := rand.New(rand.NewPCG(8, 88))
	g2, _ := plantedWorld(r2, 200, 80, 0.7)
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(200, 80, 10), RandSeed: 11},
		TargetCount: 80,
	}
	a, err := Detect(g1, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Suspects) != len(b.Suspects) {
		t.Fatal("detection not deterministic")
	}
	for i := range a.Suspects {
		if a.Suspects[i] != b.Suspects[i] {
			t.Fatal("suspect order not deterministic")
		}
	}
}

func TestMirrorOrientationWithoutSeeds(t *testing.T) {
	// Without seeds the detector must orient the cut toward the side with
	// the lower outgoing acceptance — here the "legit-looking" side is
	// tiny and heavily rejected.
	g := graph.New(12)
	for i := 0; i < 8; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%8))
	}
	for i := 8; i < 12; i++ {
		for j := 0; j < 8; j++ {
			g.AddRejection(graph.NodeID(i), graph.NodeID(j)) // 8..11 reject everyone
		}
	}
	cut, ok := FindMAARCut(g, CutOptions{})
	if !ok {
		t.Fatal("no cut")
	}
	// The ring nodes (0..7) send requests that 8..11 reject: their
	// aggregate acceptance across the cut is 0, so they are the suspects.
	suspectRing := 0
	for u := 0; u < 8; u++ {
		if cut.Partition[u] == graph.Suspect {
			suspectRing++
		}
	}
	if suspectRing < 8 || math.Abs(cut.Acceptance) > 1e-9 {
		t.Fatalf("mirror orientation not chosen: %d/8 ring nodes suspect, acceptance %.3f",
			suspectRing, cut.Acceptance)
	}
}
