package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// These tests validate the paper's two theoretical claims by exhaustive
// enumeration on graphs small enough to brute-force:
//
//   - Theorem 1 (§IV-D): the MAAR cut with friends-to-rejections ratio k*
//     is the global optimum of the linear objective |F(Ū,U)| − k*·|R⟨Ū,U⟩|
//     with objective value zero.
//   - The §IV-B reduction: the optimal MAAR ratio is within a factor two
//     of the optimal MIN-RATIO-CUT ratio of the corresponding
//     multi-commodity instance (commodities in both directions).

// tinyAugmented generates a random small augmented graph with at least one
// rejection.
func tinyAugmented(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < 2*n; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	for i := 0; i < n; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddRejection(u, v)
		}
	}
	return g
}

// enumerateCuts calls fn with the stats of every non-trivial bipartition
// orientation (each mask's Suspect side is the set bits).
func enumerateCuts(g *graph.Graph, fn func(p graph.Partition, s graph.CutStats)) {
	n := g.NumNodes()
	for mask := 1; mask < (1<<n)-1; mask++ {
		p := graph.NewPartition(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p[i] = graph.Suspect
			}
		}
		fn(p, p.Stats(g))
	}
}

// bruteMAAR returns the brute-force MAAR cut: minimal acceptance with
// RejIntoSuspect > 0.
func bruteMAAR(g *graph.Graph) (best graph.CutStats, found bool) {
	bestAcc := math.Inf(1)
	enumerateCuts(g, func(_ graph.Partition, s graph.CutStats) {
		if s.RejIntoSuspect == 0 {
			return
		}
		if acc := s.AcceptanceOfSuspect(); acc < bestAcc {
			bestAcc, best, found = acc, s, true
		}
	})
	return best, found
}

func TestTheorem1OnTinyGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 111))
		g := tinyAugmented(r, 8)
		opt, ok := bruteMAAR(g)
		if !ok {
			return true
		}
		kStar := float64(opt.CrossFriendships) / float64(opt.RejIntoSuspect)
		// The linear objective at k* must be globally minimized by the
		// MAAR cut, with value zero (up to the float comparison).
		optObj := opt.Objective(kStar)
		if math.Abs(optObj) > 1e-9 {
			return false
		}
		holds := true
		enumerateCuts(g, func(_ graph.Partition, s graph.CutStats) {
			if s.Objective(kStar) < optObj-1e-9 {
				holds = false
			}
		})
		return holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorTwoOfMinRatioCut(t *testing.T) {
	// MIN-RATIO-CUT objective of the corresponding instance: cut capacity
	// (cross friendships) over cross-partition commodity demand, where
	// each rejection edge is a unit commodity counted in both directions
	// across the cut (§IV-B).
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 112))
		g := tinyAugmented(r, 8)
		minMAAR, minMR := math.Inf(1), math.Inf(1)
		enumerateCuts(g, func(_ graph.Partition, s graph.CutStats) {
			if s.RejIntoSuspect > 0 {
				ratio := float64(s.CrossFriendships) / float64(s.RejIntoSuspect)
				if ratio < minMAAR {
					minMAAR = ratio
				}
			}
			if cross := s.RejIntoSuspect + s.RejIntoLegit; cross > 0 {
				ratio := float64(s.CrossFriendships) / float64(cross)
				if ratio < minMR {
					minMR = ratio
				}
			}
		})
		if math.IsInf(minMR, 1) || math.IsInf(minMAAR, 1) {
			return true
		}
		// min OMR ≤ min OMAAR ≤ 2 · min OMR.
		return minMR <= minMAAR+1e-9 && minMAAR <= 2*minMR+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHeuristicNearBruteForce checks the end-to-end k-sweep + extended-KL
// pipeline against the brute-force MAAR optimum on tiny graphs: over a
// deterministic batch of instances the heuristic must find the exact
// optimum in the large majority and never return an invalid cut.
func TestHeuristicNearBruteForce(t *testing.T) {
	const instances = 30
	exact, valid, applicable := 0, 0, 0
	for seed := uint64(0); seed < instances; seed++ {
		r := rand.New(rand.NewPCG(seed, 113))
		g := tinyAugmented(r, 9)
		opt, ok := bruteMAAR(g)
		if !ok {
			continue
		}
		applicable++
		cut, found := FindMAARCut(g, CutOptions{KFactor: 1.2, Restarts: 4, RandSeed: seed})
		if !found {
			continue
		}
		valid++
		if math.Abs(cut.Acceptance-opt.AcceptanceOfSuspect()) < 1e-9 {
			exact++
		}
	}
	if applicable == 0 {
		t.Fatal("no applicable instances")
	}
	if valid < applicable {
		t.Fatalf("heuristic failed to return a cut on %d/%d instances", applicable-valid, applicable)
	}
	if float64(exact) < 0.7*float64(applicable) {
		t.Fatalf("heuristic matched the brute-force optimum on only %d/%d instances", exact, applicable)
	}
	t.Logf("heuristic exact on %d/%d tiny instances", exact, applicable)
}
