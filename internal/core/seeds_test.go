package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestSpreadSeedsCoversCommunities(t *testing.T) {
	// Two legit cliques bridged weakly, plus a spam clique.
	const k = 8
	g := graph.New(3 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddFriendship(graph.NodeID(i), graph.NodeID(j))
			g.AddFriendship(graph.NodeID(k+i), graph.NodeID(k+j))
			g.AddFriendship(graph.NodeID(2*k+i), graph.NodeID(2*k+j))
		}
	}
	g.AddFriendship(0, graph.NodeID(k))

	var legitPool, spamPool []graph.NodeID
	for i := 0; i < 2*k; i++ {
		legitPool = append(legitPool, graph.NodeID(i))
	}
	for i := 2 * k; i < 3*k; i++ {
		spamPool = append(spamPool, graph.NodeID(i))
	}

	s := SpreadSeeds(g, legitPool, spamPool, 2, 3, rand.New(rand.NewPCG(1, 1)))
	if len(s.Legit) != 2 || len(s.Spammer) != 3 {
		t.Fatalf("seed counts = %d/%d", len(s.Legit), len(s.Spammer))
	}
	// The two legit seeds must land in different cliques.
	inA := func(u graph.NodeID) bool { return int(u) < k }
	if inA(s.Legit[0]) == inA(s.Legit[1]) {
		t.Fatalf("legit seeds %v not spread over communities", s.Legit)
	}
	for _, u := range s.Spammer {
		if int(u) < 2*k {
			t.Fatalf("spammer seed %d outside the spam pool", u)
		}
	}
}

func TestSpreadSeedsEmptyPools(t *testing.T) {
	g := graph.New(4)
	s := SpreadSeeds(g, nil, nil, 3, 3, nil)
	if len(s.Legit) != 0 || len(s.Spammer) != 0 {
		t.Fatalf("empty pools produced seeds: %+v", s)
	}
}
