package core

import (
	"math/rand/v2"
	"testing"
)

// TestParallelSweepDeterministic: FindMAARCut must return the identical
// cut at any parallelism level — the sweep's reduction is order-free.
func TestParallelSweepDeterministic(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 121))
	g, _ := plantedWorld(r, 300, 120, 0.7)
	seeds := plantedSeeds(300, 120, 15)

	var baseline Cut
	for i, par := range []int{1, 2, 4, 8} {
		cut, ok := FindMAARCut(g, CutOptions{
			Seeds: seeds, Restarts: 2, Parallelism: par, RandSeed: 3,
		})
		if !ok {
			t.Fatalf("parallelism %d found no cut", par)
		}
		if i == 0 {
			baseline = cut
			continue
		}
		if cut.Acceptance != baseline.Acceptance || cut.K != baseline.K ||
			cut.Stats != baseline.Stats {
			t.Fatalf("parallelism %d diverged: %+v vs %+v", par, cut.Stats, baseline.Stats)
		}
		for u := range cut.Partition {
			if cut.Partition[u] != baseline.Partition[u] {
				t.Fatalf("parallelism %d: node %d labeled differently", par, u)
			}
		}
	}
}
