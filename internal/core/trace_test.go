package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceLine mirrors the JSONL field names needed to reconstruct a run.
type traceLine struct {
	Ev     string  `json:"ev"`
	Round  int     `json:"round"`
	K      float64 `json:"k"`
	Acc    float64 `json:"acc"`
	Passes int     `json:"passes"`
	Detail string  `json:"detail"`
}

func parseTrace(t *testing.T, data []byte) []traceLine {
	t.Helper()
	var out []traceLine
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var e traceLine
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("trace line %d invalid: %v\n%s", i+1, err, line)
		}
		out = append(out, e)
	}
	return out
}

// TestDetectTraceReconstruction: a JSONL trace of a detection must
// reconstruct the run — round count, the winning k and acceptance of every
// round, and a self-consistent KL-pass total — and tracing must not change
// the detection itself.
func TestDetectTraceReconstruction(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 86))
	const nL, nF = 400, 150
	g, _ := plantedWorld(r, nL, nF, 0.7)
	opts := DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 9},
		TargetCount: nF,
	}

	untraced, err := Detect(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	opts.Tracer = sink
	passesBefore := obs.Pipeline.KLPasses.Value()
	det, err := Detect(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	// Tracing must be purely observational.
	if det.Rounds != untraced.Rounds || len(det.Suspects) != len(untraced.Suspects) {
		t.Fatalf("tracing changed the detection: %d/%d rounds, %d/%d suspects",
			det.Rounds, untraced.Rounds, len(det.Suspects), len(untraced.Suspects))
	}
	for i := range det.Suspects {
		if det.Suspects[i] != untraced.Suspects[i] {
			t.Fatalf("tracing changed suspect %d", i)
		}
	}

	events := parseTrace(t, buf.Bytes())
	if events[0].Ev != obs.EvDetectStart {
		t.Fatalf("trace starts with %q", events[0].Ev)
	}
	last := events[len(events)-1]
	if last.Ev != obs.EvDetectDone || last.Round != det.Rounds || last.Detail != "target" {
		t.Fatalf("trace ends with %+v, want detect.done for %d rounds", last, det.Rounds)
	}

	// Reconstruct the per-round outcomes and the pass totals.
	winK := map[int]float64{}
	winAcc := map[int]float64{}
	roundsDone, solvePasses, sweepPasses := 0, 0, 0
	for _, e := range events {
		switch e.Ev {
		case obs.EvRoundDone:
			roundsDone++
			winK[e.Round] = e.K
			winAcc[e.Round] = e.Acc
		case obs.EvSolveDone:
			solvePasses += e.Passes
		case obs.EvSweepDone:
			sweepPasses += e.Passes
		}
	}
	if roundsDone != det.Rounds {
		t.Fatalf("trace has %d round.done events, detection ran %d rounds", roundsDone, det.Rounds)
	}
	for _, grp := range det.Groups {
		if winK[grp.Round] != grp.K {
			t.Fatalf("round %d: trace k=%v, detection k=%v", grp.Round, winK[grp.Round], grp.K)
		}
		if winAcc[grp.Round] != grp.Acceptance {
			t.Fatalf("round %d: trace acc=%v, detection acc=%v", grp.Round, winAcc[grp.Round], grp.Acceptance)
		}
	}
	if solvePasses == 0 || solvePasses != sweepPasses {
		t.Fatalf("pass totals inconsistent: solve.done sum %d, sweep.done sum %d", solvePasses, sweepPasses)
	}
	if got := obs.Pipeline.KLPasses.Value() - passesBefore; got != int64(solvePasses) {
		t.Fatalf("expvar counted %d KL passes, trace says %d", got, solvePasses)
	}
}

// TestDetectCancel: a fired Cancel channel must stop detection between
// rounds with ErrInterrupted, a valid partial Detection, and a trace whose
// detect.done records the interruption.
func TestDetectCancel(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 87))
	const nL, nF = 400, 150
	g, _ := plantedWorld(r, nL, nF, 0.7)
	done := make(chan struct{})
	close(done)

	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 20), RandSeed: 9},
		TargetCount: nF,
		Cancel:      done,
		Tracer:      sink,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if det.Rounds != 0 || len(det.Suspects) != 0 {
		t.Fatalf("pre-fired cancel still ran %d rounds, %d suspects", det.Rounds, len(det.Suspects))
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	last := events[len(events)-1]
	if last.Ev != obs.EvDetectDone || last.Detail != "interrupted" {
		t.Fatalf("trace end = %+v, want detect.done/interrupted", last)
	}
}

// TestDetectShardedInterrupted: the §VII sharded runner must return the
// completed-intervals prefix alongside ErrInterrupted instead of dropping
// the work already done.
func TestDetectShardedInterrupted(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 88))
	const nL, nF = 200, 60
	g, _ := plantedWorld(r, nL, nF, 0.7)
	base := g.Clone()
	var reqs []TimedRequest
	for iv := 0; iv < 2; iv++ {
		for i := 0; i < 40; i++ {
			reqs = append(reqs, TimedRequest{
				From: 5, To: 6, Accepted: i%3 == 0, Interval: iv,
			})
		}
	}
	done := make(chan struct{})
	close(done)
	dets, err := DetectSharded(base, reqs, DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(nL, nF, 10), RandSeed: 9},
		TargetCount: nF,
		Cancel:      done,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// The partial (zero-round) first interval is still reported.
	if len(dets) != 1 || dets[0].Detection.Rounds != 0 {
		t.Fatalf("partial results dropped: %+v", dets)
	}
}
