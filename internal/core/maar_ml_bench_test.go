package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// benchCutWorldSized is benchCutWorld at an arbitrary scale: nL legitimate
// users with OSN-like degree, nF fakes spraying requests at a 70% rejection
// rate, edges inserted in shuffled arrival order.
func benchCutWorldSized(nL, nF int) (*graph.Graph, CutOptions) {
	r := rand.New(rand.NewPCG(7, 99))
	type edge struct {
		u, v graph.NodeID
		rej  bool
	}
	var edges []edge
	for i := 0; i < nL; i++ {
		edges = append(edges, edge{graph.NodeID(i), graph.NodeID((i + 1) % nL), false})
		for c := 0; c < 5; c++ {
			v := graph.NodeID(r.IntN(nL))
			if v != graph.NodeID(i) {
				edges = append(edges, edge{graph.NodeID(i), v, false})
			}
		}
	}
	for i := 0; i < nL/2; i++ {
		u, v := r.IntN(nL), r.IntN(nL)
		if u != v {
			edges = append(edges, edge{graph.NodeID(u), graph.NodeID(v), true})
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 6 && k < i; k++ {
			edges = append(edges, edge{u, graph.NodeID(nL + r.IntN(i)), false})
		}
		for req := 0; req < 12; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				edges = append(edges, edge{target, u, true})
			} else {
				edges = append(edges, edge{u, target, false})
			}
		}
	}
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	g := graph.New(nL + nF)
	for _, e := range edges {
		if e.rej {
			g.AddRejection(e.u, e.v)
		} else {
			g.AddFriendship(e.u, e.v)
		}
	}
	// Serial sweep so ns/op compares engine cost, not scheduling.
	opts := CutOptions{Parallelism: 1, RandSeed: 5}
	return g, opts
}

// BenchmarkMAARSweep compares the flat frozen sweep against the multilevel
// ladder on planted worlds across sizes, restart counts, and — at the
// largest size — coarsening depths. Restarts are the multilevel engine's
// home turf: the ladder and the gate's capped per-k checks are paid once
// per sweep, while the flat sweep pays the full k-grid again for every
// extra init, so the speedup grows with the restart count. Each multilevel
// case first asserts the quality criterion — published acceptance no worse
// than the flat sweep on the same graph and restart budget — and reports
// both acceptances plus the gate's fallback count as benchmark metrics, so
// scripts/bench_ml.sh can enforce the criterion from the bench output
// alone.
func BenchmarkMAARSweep(b *testing.B) {
	type cse struct {
		name     string
		nL, nF   int
		restarts int
		coarsest int // 0 = ml default
	}
	cases := []cse{
		{"n=7500-r12", 6000, 1500, 12, 0},
		{"n=15000-r12", 12000, 3000, 12, 0},
		{"n=30000-r1", 24000, 6000, 1, 0},
		{"n=30000-r4", 24000, 6000, 4, 0},
		{"n=30000-r12", 24000, 6000, 12, 0},
		{"n=30000-r12-coarsest384", 24000, 6000, 12, 384},
		{"n=30000-r12-coarsest24", 24000, 6000, 12, 24},
	}
	worlds := map[string]*graph.Frozen{}
	baseOpts := map[string]CutOptions{}
	flatCuts := map[string]Cut{}
	for _, c := range cases {
		key := fmt.Sprintf("%d/%d", c.nL, c.nF)
		if _, ok := worlds[key]; !ok {
			g, opts := benchCutWorldSized(c.nL, c.nF)
			worlds[key] = g.Freeze()
			baseOpts[key] = opts
		}
	}
	for _, c := range cases {
		key := fmt.Sprintf("%d/%d", c.nL, c.nF)
		f := worlds[key]
		opts := baseOpts[key]
		opts.Restarts = c.restarts
		mlOpts := opts
		mlOpts.Multilevel = true
		mlOpts.MLCoarsestNodes = c.coarsest

		flatKey := fmt.Sprintf("%s/r%d", key, c.restarts)
		flat, cached := flatCuts[flatKey]
		if !cached {
			var okFlat bool
			flat, okFlat = FindMAARCutFrozen(f, opts)
			if !okFlat {
				b.Fatalf("%s: flat sweep found no cut", c.name)
			}
			flatCuts[flatKey] = flat
		}
		mlCut, okML := FindMAARCutFrozen(f, mlOpts)
		if !okML {
			b.Fatalf("%s: multilevel sweep found no cut", c.name)
		}
		if mlCut.Acceptance > flat.Acceptance+1e-12 {
			b.Fatalf("%s: multilevel acceptance %.6f worse than flat %.6f",
				c.name, mlCut.Acceptance, flat.Acceptance)
		}

		if c.coarsest == 0 {
			b.Run("flat/"+c.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					FindMAARCutFrozen(f, opts)
				}
				b.ReportMetric(flat.Acceptance, "acc")
			})
		}
		b.Run("ml/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			before := obs.ML.Fallbacks.Value()
			for i := 0; i < b.N; i++ {
				FindMAARCutFrozen(f, mlOpts)
			}
			b.ReportMetric(mlCut.Acceptance, "acc")
			b.ReportMetric(flat.Acceptance, "accflat")
			b.ReportMetric(float64(obs.ML.Fallbacks.Value()-before)/float64(b.N), "fallbacks/op")
		})
	}
}
