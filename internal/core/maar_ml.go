package core

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// Shortlist sizing for the multilevel sweep. refineShortlist is how many
// distinct-k coarse winners are refined down the ladder: one is not
// enough, because coarse granularity can underrate the k whose flat solve
// wins, so the sweep hedges across the best few k values and lets the
// full-resolution acceptances pick the winner. The frontier descent
// additionally refines the k values below the smallest shortlisted k: the
// MAAR winner tends to sit just above the k where cuts stop being
// trivial, and supernode granularity shifts that boundary upward — a
// trivial coarse cut at such a k still projects to a fine starting point
// whose polish can open the cut the flat sweep would have found. The
// descent walks downward until a polished cut comes back invalid (the
// flat validity boundary), visiting at least frontierMin k values before
// an invalid polish can end it. Each step costs one refinement descent
// plus one flat polish — a handful of solves next to the flat sweep's
// |grid|×|inits|.
const (
	refineShortlist = 4
	frontierMin     = 2
	// maxChecksPerK bounds the cold flat checks at each non-winning k the
	// gate visits (shortlisted and frontier alike): the acceptance-
	// heuristic init plus the first random inits up to the cap. The coarse
	// solve often collapses distinct inits onto one supernode-granularity
	// cut, so the flat sweep's init diversity must be probed at full
	// resolution — but random inits are exchangeable, so a fixed-size
	// prefix samples that diversity as well as any subset, and the cap
	// keeps the gate's cost per k independent of the restart count. That
	// independence is what lets the multilevel speedup grow with restarts
	// instead of being eaten by its own gate. Only the published k is
	// checked against every init, uncapped.
	maxChecksPerK = 4
)

// findMAARCutMultilevel runs the sweep through the multilevel ladder:
// coarsen once, score every (k, init) job with a KL solve on the coarsest
// graph, refine only a short-list of the best distinct-k candidates back
// down the ladder, flat-polish the best refined cut, and gate it against a
// flat solve of the same job. Contraction is exact (graph.Contract), so
// the coarse acceptances the jobs are ranked by are true fine-graph
// acceptances of the projected partitions — the ladder changes the move
// set KL explores per job, never the scoring.
//
// done reports whether the multilevel path produced a decision. It is
// false when the sweep must be re-run flat: the graph would not coarsen,
// no coarse job yielded a valid candidate, or the quality gate rejected
// the polished winner (obs.EvMLFallback). The caller then runs
// flatSweepFrozen on the same jobs, cold.
func findMAARCutMultilevel(f *graph.Frozen, opts CutOptions, pinned []bool, inits []graph.Partition, initStats []graph.CutStats, jobs []sweepJob) (Cut, bool, bool) {
	tr := opts.Tracer
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	lad := ml.Coarsen(f, pinned, ml.Options{
		CoarsestNodes: opts.MLCoarsestNodes,
		MaxLevels:     opts.MLMaxLevels,
	})
	obs.ML.Coarsens.Add(1)
	obs.ML.CoarsenLevels.Add(int64(lad.Depth() - 1))
	if tr != nil {
		tr.Emit(obs.Event{
			Name: obs.EvMLCoarsen, Wall: time.Now(), Dur: time.Since(t0),
			Round: opts.TraceRound, Nodes: lad.CoarsestNodes(), Attempt: lad.Depth(),
		})
	}
	if lad.Depth() == 1 {
		// Nothing coarsened (the residual is already at or below the
		// coarsest bound): the flat sweep is the multilevel sweep, minus
		// the ladder overhead. Not a gate failure, so no fallback event.
		obs.ML.FlatDepth1.Add(1)
		return Cut{}, false, false
	}

	top := lad.Levels[lad.Depth()-1]
	cf := top.F

	// Project each shared initial partition onto the coarsest level once;
	// every job then starts from the small coarse copy. This is also where
	// WarmInit composes with the ladder: a warm hint arrives here as the
	// sole initial partition and gets projected like any other.
	cInits := make([]graph.Partition, len(inits))
	cStats := make([]graph.CutStats, len(inits))
	for i, init := range inits {
		cInits[i] = lad.ProjectToCoarsest(init)
		cStats[i] = cf.Stats(cInits[i])
	}

	numK := 0
	for _, jb := range jobs {
		if jb.kIdx >= numK {
			numK = jb.kIdx + 1
		}
	}

	var sweepStart time.Time
	var coarsePasses atomic.Int64
	if tr != nil {
		sweepStart = time.Now()
	}

	// candidate is the result of one coarse (k, init) job. A solve whose
	// coarse cut was trivial (no valid MAAR candidate at supernode
	// granularity) is still recorded, marked invalid: the frontier refines
	// such partitions anyway, because triviality at coarse granularity
	// need not survive projection plus polish. The raw (solver-
	// orientation) partition and statistics are retained for refinement:
	// RefineDown continues optimizing the same linear objective the coarse
	// solve did, and orientation is re-decided at full resolution. Every
	// job's candidate is kept — not just the per-k best — because coarse
	// scores mislead per init too: the init whose coarse cut scored worse
	// can be the one whose refinement reaches the flat winner, so the
	// refinement stage needs each init's coarse partition.
	type candidate struct {
		part   graph.Partition // coarse partition, solver orientation
		stats  graph.CutStats
		acc    float64
		jobIdx int
		kIdx   int
		found  bool
		valid  bool
	}
	cands := make([]candidate, len(jobs))
	run := func(ws *kl.Workspace, j int) {
		jb := jobs[j]
		cfg := kl.Config{
			FriendWeight: opts.WeightScale,
			RejectWeight: jb.wR,
			Pinned:       top.Pinned,
			MaxPasses:    opts.MaxPasses,
		}
		res := kl.PartitionFrozenFromStats(cf, cInits[jb.initIdx], cStats[jb.initIdx], cfg, ws)
		obs.ML.CoarseSolves.Add(1)
		if tr != nil {
			coarsePasses.Add(int64(res.Passes))
		}
		acc, _, ok := orientCut(res.Stats, opts.Seeds)
		c := &cands[j]
		c.part = append(c.part[:0], res.Partition...)
		c.stats, c.acc, c.jobIdx, c.kIdx = res.Stats, acc, j, jb.kIdx
		c.found, c.valid = true, ok
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		ws := &kl.Workspace{}
		for j := range jobs {
			run(ws, j)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := &kl.Workspace{}
				for j := range next {
					run(ws, j)
				}
			}()
		}
		for j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	// better orders candidates for one k: valid beats invalid, then lowest
	// acceptance, then earliest job.
	better := func(acc float64, jobIdx int, valid bool, b *candidate) bool {
		if !b.found || valid != b.valid {
			return !b.found || valid
		}
		if valid && acc != b.acc {
			return acc < b.acc
		}
		return jobIdx < b.jobIdx
	}
	// Reduce to the per-k winners in job order — cands is indexed by job,
	// so the outcome is independent of worker count and scheduling.
	perK := make([]candidate, numK)
	for _, c := range cands {
		if c.found && better(c.acc, c.jobIdx, c.valid, &perK[c.kIdx]) {
			perK[c.kIdx] = c
		}
	}

	// Shortlist: the best valid per-k winners by (acceptance, job index),
	// plus the frontier — the k values directly below the smallest
	// shortlisted k (all the largest ones, when nothing was valid). The
	// coarse move set systematically inflates small-k acceptances: a
	// precise small cut may not exist at supernode granularity at all, so
	// the k the flat sweep would win at tends to sit just below the k
	// values the coarse ranking prefers, and its candidate earns a descent
	// even when its coarse score was poor or trivial.
	valid := make([]candidate, 0, numK)
	for _, c := range perK {
		if c.found && c.valid {
			valid = append(valid, c)
		}
	}
	sort.Slice(valid, func(a, b int) bool {
		if valid[a].acc != valid[b].acc {
			return valid[a].acc < valid[b].acc
		}
		return valid[a].jobIdx < valid[b].jobIdx
	})
	shortlist := valid
	if len(shortlist) > refineShortlist {
		// Keep every candidate tied with the last one that made the cut:
		// coarse acceptances often plateau across a k range (the coarse
		// move set cannot express the cuts that would separate them), and
		// which end of the plateau polishes best depends on the k-weighted
		// objective, not the tied score. Dropping ties by job order would
		// systematically refine the wrong end.
		end := refineShortlist
		thresh := shortlist[end-1].acc
		for end < len(shortlist) && shortlist[end].acc <= thresh+1e-12 {
			end++
		}
		shortlist = shortlist[:end]
	}
	kLo := numK
	for _, c := range shortlist {
		if c.kIdx < kLo {
			kLo = c.kIdx
		}
	}

	if tr != nil {
		ev := obs.Event{
			Name: obs.EvMLSolve, Wall: time.Now(), Dur: time.Since(sweepStart),
			Round: opts.TraceRound, Jobs: len(jobs),
			Passes: int(coarsePasses.Load()), Acceptance: -1,
		}
		if len(shortlist) > 0 {
			ev.Job = shortlist[0].jobIdx + 1
			ev.K = jobs[shortlist[0].jobIdx].k
			ev.Init = jobs[shortlist[0].jobIdx].initIdx + 1
			ev.Acceptance = shortlist[0].acc
		}
		tr.Emit(ev)
	}
	// Refine each shortlisted candidate down the ladder (boundary-only,
	// shared pooled solver), flat-polish it — a full KL solve from the
	// refined partition, finishing what greedy boundary passes left and
	// reopening cuts that were trivial at coarse granularity — and keep
	// the best polished cut by its full-resolution acceptance.
	cfgAt := func(jb sweepJob) kl.Config {
		return kl.Config{
			FriendWeight: opts.WeightScale,
			RejectWeight: jb.wR,
			Pinned:       pinned,
			MaxPasses:    opts.MaxPasses,
		}
	}
	solver := ml.NewSolver()
	ws := &kl.Workspace{}
	var best struct {
		part     graph.Partition
		stats    graph.CutStats
		acc      float64
		jobIdx   int
		mirrored bool
		found    bool
	}
	refinedKs := make([]int, 0, len(shortlist)+frontierMin)
	refineOne := func(cand candidate) bool {
		jb := jobs[cand.jobIdx]
		cfg := cfgAt(jb)
		var refineStart time.Time
		if tr != nil {
			refineStart = time.Now()
		}
		refined := solver.RefineDown(lad, cand.part, cand.stats, cfg)
		polished := kl.PartitionFrozenFromStats(f, refined.Partition, refined.Stats, cfg, ws)
		acc, mirrored, ok := orientCut(polished.Stats, opts.Seeds)
		obs.ML.Refines.Add(1)
		if !slices.Contains(refinedKs, cand.kIdx) {
			refinedKs = append(refinedKs, cand.kIdx)
		}
		if tr != nil {
			ev := obs.Event{
				Name: obs.EvMLRefine, Wall: time.Now(), Dur: time.Since(refineStart),
				Round: opts.TraceRound, Job: cand.jobIdx + 1, K: jb.k,
				Init: jb.initIdx + 1, Passes: refined.Passes + polished.Passes,
				Switches:   refined.Switches + polished.Switches,
				Rollbacks:  refined.Rollbacks + polished.Rollbacks,
				Acceptance: -1,
			}
			if ok {
				ev.Acceptance = acc
			}
			tr.Emit(ev)
		}
		if !ok {
			return false
		}
		if best.found && (acc > best.acc || acc == best.acc && cand.jobIdx > best.jobIdx) {
			return true
		}
		// The polished partition aliases the shared workspace and the next
		// candidate overwrites it, so an adopted candidate is copied out.
		best.part = append(best.part[:0], polished.Partition...)
		best.stats, best.acc, best.jobIdx = polished.Stats, acc, cand.jobIdx
		best.mirrored, best.found = mirrored, true
		return true
	}
	// checkBeats cold-solves one flat job and reports whether its cut is
	// valid and whether it beats the best polished candidate so far — the
	// signal that the ladder lost something and the sweep must re-run
	// flat. best only ever improves, so a check that passed against an
	// earlier best still passes against the final one.
	checked := make(map[int]bool, len(inits)*frontierMin)
	checkBeats := func(j int) (beats, okFlat bool) {
		if checked[j] {
			return false, false
		}
		checked[j] = true
		cj := jobs[j]
		obs.Pipeline.SolvesStarted.Add(1)
		check := kl.PartitionFrozenFromStats(f, inits[cj.initIdx], initStats[cj.initIdx], cfgAt(cj), ws)
		obs.Pipeline.SolvesFinished.Add(1)
		obs.Pipeline.KLPasses.Add(int64(check.Passes))
		accFlat, _, ok := orientCut(check.Stats, opts.Seeds)
		return ok && (!best.found || accFlat < best.acc), ok
	}
	fallback := func(k float64, detail string) {
		obs.ML.Fallbacks.Add(1)
		if tr != nil {
			ev := obs.Event{
				Name: obs.EvMLFallback, Wall: time.Now(), Round: opts.TraceRound,
				K: k, Acceptance: -1, Detail: detail,
			}
			if best.found {
				ev.Acceptance = best.acc
			}
			tr.Emit(ev)
		}
	}
	// Refine every init's coarse candidate at each shortlisted k, not just
	// the per-k winner: the coarse ranking can invert the inits (the
	// worse-scored coarse cut refining to the better fine cut), so each
	// distinct coarse partition gets its own descent. Inits frequently
	// collapse onto the same coarse cut, and duplicates would refine
	// identically, so they are skipped.
	for _, cand := range shortlist {
		base := cand.kIdx * len(inits)
		for i := range inits {
			c := cands[base+i]
			if !c.found {
				continue
			}
			dup := false
			for ii := 0; ii < i; ii++ {
				if prev := cands[base+ii]; prev.found && slices.Equal(prev.part, c.part) {
					dup = true
					break
				}
			}
			if !dup {
				refineOne(c)
			}
		}
	}
	// Frontier descent: walk the k values below the smallest shortlisted k
	// (all of them, when nothing was valid). The coarse move set
	// systematically inflates small-k acceptances — a precise small cut
	// may not exist at supernode granularity at all — so the k the flat
	// sweep would win at tends to sit below the k values the coarse
	// ranking prefers, at the flat validity boundary. The ladder is
	// structurally blind here (projection through supernodes erases the
	// very structure that makes these cuts precise), so each step both
	// refines the k's coarse candidate as one more polished entrant and
	// cold-solves the flat jobs at that k (up to maxFrontierChecks inits)
	// as gate checks. The walk stops
	// only once a k yields nothing valid from either path frontierMin
	// times in a row — the validity boundary of the flat sweep itself, not
	// of the coarser move set.
	checksPerK := len(inits)
	if checksPerK > maxChecksPerK {
		checksPerK = maxChecksPerK
	}
	invalidRun := 0
	for k := kLo - 1; k >= 0; k-- {
		if !perK[k].found {
			break
		}
		anyValid := refineOne(perK[k])
		for i := 0; i < checksPerK; i++ {
			j := k*len(inits) + i
			beats, okFlat := checkBeats(j)
			if beats {
				fallback(jobs[j].k, "flat check beat polished winner")
				return Cut{}, false, false
			}
			anyValid = anyValid || okFlat
		}
		if anyValid {
			invalidRun = 0
		} else if invalidRun++; invalidRun >= frontierMin {
			break
		}
	}
	if !best.found {
		fallback(0, "no refined candidate")
		return Cut{}, false, false
	}

	// Final gate over the shortlisted ks. At the winning k every initial
	// partition is checked, uncapped — the published cut must survive the
	// flat sweep's full init diversity at its own k. Every other refined k
	// gets the capped init prefix (maxChecksPerK, same as the frontier):
	// the coarse solve can collapse distinct inits onto one coarse cut
	// whose single refinement misrepresents an init whose flat solve
	// diverges, so one check per k is not enough, but a capped prefix
	// keeps the gate's cost per k independent of the restart count.
	// (Frontier ks were already checked during the descent; checkBeats
	// dedups.) Jobs enumerate k-major with a full init block per surviving
	// grid point, so job indices recover as kIdx·|inits| + initIdx.
	jb := jobs[best.jobIdx]
	checks := make([]int, 0, len(refinedKs)*checksPerK+len(inits))
	for i := range inits {
		checks = append(checks, jb.kIdx*len(inits)+i)
	}
	for _, k := range refinedKs {
		if k != jb.kIdx && k >= kLo {
			for i := 0; i < checksPerK; i++ {
				checks = append(checks, k*len(inits)+i)
			}
		}
	}
	for _, j := range checks {
		if beats, _ := checkBeats(j); beats {
			fallback(jobs[j].k, "flat check beat polished winner")
			return Cut{}, false, false
		}
	}

	p := best.part[:len(best.part):len(best.part)]
	s := best.stats
	if best.mirrored {
		p = slices.Clone(p)
		for i, r := range p {
			p[i] = r.Other()
		}
		s = mirrorStats(s)
	}
	obs.Pipeline.Sweeps.Add(1)
	return Cut{Partition: p, Stats: s, K: jb.k, Acceptance: best.acc}, true, true
}
