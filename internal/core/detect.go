package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ErrInterrupted is returned by Detect when DetectorOptions.Cancel fires:
// the returned Detection is a valid partial result covering every round
// that completed before the interruption.
var ErrInterrupted = errors.New("core: detection interrupted")

// DetectorOptions parameterizes the iterative friend-spammer detection of
// §IV-E. At least one termination condition (TargetCount or
// AcceptanceThreshold) must be set.
type DetectorOptions struct {
	Cut CutOptions

	// TargetCount stops detection once that many accounts have been
	// flagged — the paper's primary termination condition, assuming the
	// OSN estimated the fake population by inspecting sampled accounts.
	// The final group is trimmed to the target by per-node rejection
	// ratio. Zero disables the condition.
	TargetCount int

	// AcceptanceThreshold stops detection once the best remaining cut's
	// aggregate acceptance rate exceeds this value (e.g. an estimate of
	// the acceptance rate of normal users). Groups come out in
	// non-decreasing acceptance order, so this is a clean stopping rule.
	// Zero disables the condition.
	AcceptanceThreshold float64

	// MaxRounds caps the number of cut-and-prune rounds. Zero means
	// DefaultMaxRounds.
	MaxRounds int

	// Tracer receives the detection's structured events: the round,
	// freeze, and prune spans emitted here plus the sweep and solve
	// events of each round's MAAR search (see package obs for the
	// taxonomy). nil disables tracing at zero cost. When Tracer is nil
	// but Cut.Tracer is set, the cut's tracer observes the whole
	// detection, so facade callers can set either.
	Tracer obs.Tracer

	// Cancel, when non-nil, stops detection cleanly between rounds once
	// the channel is closed (e.g. a context's Done channel): Detect
	// returns the rounds completed so far with ErrInterrupted, so a
	// traced or long run interrupted by SIGINT still yields its partial
	// detection and a flushable trace.
	Cancel <-chan struct{}
}

// DefaultMaxRounds bounds detection rounds when MaxRounds is zero.
const DefaultMaxRounds = 64

// Group is one detected batch of suspected friend spammers: the Suspect
// region of one round's MAAR cut, identified by original-graph node IDs.
type Group struct {
	Members []graph.NodeID
	// Acceptance is the aggregate acceptance rate of the group's requests
	// toward the residual graph it was cut from.
	Acceptance float64
	// K is the sweep ratio that produced the cut.
	K float64
	// Round is the 1-based detection round.
	Round int
}

// Detection is the result of Detect.
type Detection struct {
	// Groups lists the detected groups in detection order; their
	// acceptance rates are non-decreasing (§IV-E "other termination
	// conditions").
	Groups []Group
	// Suspects is the flattened detection set, trimmed to TargetCount
	// when that condition is set.
	Suspects []graph.NodeID
	// Rounds is the number of MAAR rounds executed.
	Rounds int
}

// Detect iteratively uncovers groups of friend spammers: each round finds
// the MAAR cut of the residual graph, declares its Suspect region, prunes
// those accounts with their links and rejections, and repeats (§IV-E).
// Iterating is what defeats the self-rejection strategy: a fabricated
// low-ratio cut inside the fake region is consumed in an early round,
// exposing the whitewashed accounts to the following rounds.
//
// Detect freezes g once up front and runs every round on an immutable CSR
// residual: the sweep reads the snapshot and pruning derives the next
// round's snapshot directly (graph.Frozen.Subgraph), so the mutable graph
// is never touched after the freeze.
func Detect(g *graph.Graph, opts DetectorOptions) (Detection, error) {
	det, _, err := detectOn(nil, g, opts, nil)
	return det, err
}

// DetectFrozen is Detect on a prebuilt immutable CSR snapshot, skipping the
// up-front freeze (and its phase.freeze trace event). Handing it the
// FreezeCanonical of a graph produces exactly the Detection that Detect
// returns for the canonicalized graph — the identity the incremental epoch
// engine (internal/incr) relies on when it patches last epoch's snapshot
// instead of rebuilding it.
func DetectFrozen(f *graph.Frozen, opts DetectorOptions) (Detection, error) {
	det, _, err := detectOn(f, nil, opts, nil)
	return det, err
}

// detectOn is the shared engine behind Detect, DetectFrozen, and
// DetectWarm: exactly one of f and g is non-nil, and warm (when non-nil)
// supplies previous-epoch round hints (see DetectWarm).
func detectOn(f *graph.Frozen, g *graph.Graph, opts DetectorOptions, warm *WarmStart) (Detection, WarmReport, error) {
	numNodes := 0
	if f != nil {
		numNodes = f.NumNodes()
	} else {
		numNodes = g.NumNodes()
	}
	var report WarmReport
	if opts.TargetCount <= 0 && opts.AcceptanceThreshold <= 0 {
		return Detection{}, report, fmt.Errorf("core: Detect needs TargetCount or AcceptanceThreshold")
	}
	if opts.TargetCount < 0 || opts.TargetCount > numNodes {
		return Detection{}, report, fmt.Errorf("core: TargetCount %d out of range", opts.TargetCount)
	}
	if err := opts.Cut.validate(numNodes); err != nil {
		return Detection{}, report, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}

	// Seed membership on original IDs; remapped into each residual graph.
	isLegitSeed := make(map[graph.NodeID]bool, len(opts.Cut.Seeds.Legit))
	for _, u := range opts.Cut.Seeds.Legit {
		isLegitSeed[u] = true
	}
	isSpamSeed := make(map[graph.NodeID]bool, len(opts.Cut.Seeds.Spammer))
	for _, u := range opts.Cut.Seeds.Spammer {
		isSpamSeed[u] = true
	}

	// Tracing: every site guards on tr so an untraced run builds no
	// events; round-duration clocks are read unconditionally because the
	// expvar round counters are always live and a round costs seconds,
	// not microseconds.
	tr := opts.Tracer
	if tr == nil {
		tr = opts.Cut.Tracer
	}
	residual := f
	var detectStart time.Time
	if tr != nil {
		detectStart = time.Now()
		ev := obs.Event{Name: obs.EvDetectStart, Wall: detectStart, Nodes: numNodes}
		if f != nil {
			ev.Friendships, ev.Rejections = f.NumFriendships(), f.NumRejections()
		} else {
			ev.Friendships, ev.Rejections = g.NumFriendships(), g.NumRejections()
		}
		tr.Emit(ev)
	}
	if residual == nil {
		freezeStart := time.Now()
		residual = g.Freeze()
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvFreeze, Wall: time.Now(), Dur: time.Since(freezeStart),
				Nodes: residual.NumNodes(),
			})
		}
	}
	// origID maps residual node IDs back to the input's IDs; identity
	// initially.
	origID := make([]graph.NodeID, numNodes)
	for i := range origID {
		origID[i] = graph.NodeID(i)
	}

	var det Detection
	detected := 0
	stopReason := ""
	for det.Rounds < maxRounds {
		if canceled(opts.Cancel) {
			stopReason = "interrupted"
			break
		}
		if opts.TargetCount > 0 && detected >= opts.TargetCount {
			stopReason = "target"
			break
		}
		roundStart := time.Now()
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvRoundStart, Wall: roundStart, Round: det.Rounds + 1,
				Nodes:       residual.NumNodes(),
				Friendships: residual.NumFriendships(),
				Rejections:  residual.NumRejections(),
			})
		}
		cutOpts := opts.Cut
		cutOpts.Seeds = remapSeeds(origID, isLegitSeed, isSpamSeed)
		cutOpts.RandSeed = opts.Cut.RandSeed + uint64(det.Rounds)*0x9e3779b9
		cutOpts.Tracer = tr
		cutOpts.TraceRound = det.Rounds + 1

		cut, ok := solveRound(residual, cutOpts, origID, warm, det.Rounds, &report, tr)
		if !ok {
			stopReason = "no-cut"
			break
		}
		det.Rounds++
		if opts.AcceptanceThreshold > 0 && cut.Acceptance > opts.AcceptanceThreshold {
			stopReason = "threshold"
			endRound(tr, det.Rounds, roundStart, cut, 0)
			break
		}

		members := make([]graph.NodeID, 0, cut.Stats.SuspectSize)
		for u, r := range cut.Partition {
			if r == graph.Suspect {
				members = append(members, origID[u])
			}
		}
		// Order members most-suspicious-first so a TargetCount trim keeps
		// the accounts with the worst individual rejection ratios.
		sortBySuspicion(residual, cut.Partition, origID, members)

		det.Groups = append(det.Groups, Group{
			Members:    members,
			Acceptance: cut.Acceptance,
			K:          cut.K,
			Round:      det.Rounds,
		})
		detected += len(members)

		// Prune the group — nodes, links, and rejections — and continue
		// on the residual graph.
		pruneStart := time.Now()
		keep := make([]bool, residual.NumNodes())
		for u, r := range cut.Partition {
			keep[u] = r == graph.Legit
		}
		var subOrig []graph.NodeID
		residual, subOrig = residual.Subgraph(keep)
		newOrig := make([]graph.NodeID, len(subOrig))
		for i, oldIdx := range subOrig {
			newOrig[i] = origID[oldIdx]
		}
		origID = newOrig
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvPrune, Wall: time.Now(), Dur: time.Since(pruneStart),
				Round: det.Rounds, Nodes: residual.NumNodes(),
			})
		}
		endRound(tr, det.Rounds, roundStart, cut, len(members))
	}

	det.Suspects = flatten(det.Groups)
	if opts.TargetCount > 0 && len(det.Suspects) > opts.TargetCount {
		det.Suspects = det.Suspects[:opts.TargetCount]
	}
	if tr != nil {
		tr.Emit(obs.Event{
			Name: obs.EvDetectDone, Wall: time.Now(), Dur: time.Since(detectStart),
			Round: det.Rounds, Suspects: len(det.Suspects), Detail: stopReason,
		})
	}
	if stopReason == "interrupted" {
		return det, report, ErrInterrupted
	}
	return det, report, nil
}

// endRound closes one detection round: it ticks the always-live round
// counters and emits the round.done span when tracing.
func endRound(tr obs.Tracer, round int, start time.Time, cut Cut, suspects int) {
	dur := time.Since(start)
	obs.Pipeline.Rounds.Add(1)
	ms := float64(dur) / float64(time.Millisecond)
	obs.Pipeline.RoundMS.Add(ms)
	obs.Pipeline.LastRoundMS.Set(ms)
	if tr != nil {
		tr.Emit(obs.Event{
			Name: obs.EvRoundDone, Wall: time.Now(), Dur: dur, Round: round,
			K: cut.K, Acceptance: cut.Acceptance, Suspects: suspects,
		})
	}
}

// canceled reports whether the cancellation channel has fired; a nil
// channel never cancels.
func canceled(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// remapSeeds translates original-ID seed membership into residual-graph IDs.
func remapSeeds(origID []graph.NodeID, isLegit, isSpam map[graph.NodeID]bool) Seeds {
	var s Seeds
	for u, orig := range origID {
		if isLegit[orig] {
			s.Legit = append(s.Legit, graph.NodeID(u))
		} else if isSpam[orig] {
			s.Spammer = append(s.Spammer, graph.NodeID(u))
		}
	}
	return s
}

// sortBySuspicion orders members (original IDs) most-suspicious-first so a
// TargetCount trim keeps the right accounts. The order is lexicographic:
//
//  1. in-rejection ratio, descending — direct spam evidence; this also
//     makes a removal prefix kill the most attack edges, which is what the
//     defense-in-depth deployment needs (§VI-D);
//  2. fraction of friendships pointing inside the detected group,
//     descending — separates silent accomplices (all links into the
//     spammer region, e.g. Fig 10's non-sending half) from legitimate
//     users swept into the cut, who keep most links outside it;
//  3. node ID, for determinism.
func sortBySuspicion(residual *graph.Frozen, p graph.Partition, origID []graph.NodeID, members []graph.NodeID) {
	type scored struct{ rejRatio, inGroup float64 }
	scores := make(map[graph.NodeID]scored, len(members))
	for u, r := range p {
		if r != graph.Suspect {
			continue
		}
		deg := residual.Degree(graph.NodeID(u))
		s := scored{rejRatio: 1 - residual.Acceptance(graph.NodeID(u))}
		if deg > 0 {
			inGroup := 0
			for _, v := range residual.Friends(graph.NodeID(u)) {
				if p[v] == graph.Suspect {
					inGroup++
				}
			}
			s.inGroup = float64(inGroup) / float64(deg)
		}
		scores[origID[u]] = s
	}
	sort.Slice(members, func(i, j int) bool {
		si, sj := scores[members[i]], scores[members[j]]
		if si.rejRatio != sj.rejRatio {
			return si.rejRatio > sj.rejRatio
		}
		if si.inGroup != sj.inGroup {
			return si.inGroup > sj.inGroup
		}
		return members[i] < members[j]
	})
}

func flatten(groups []Group) []graph.NodeID {
	var out []graph.NodeID
	for _, grp := range groups {
		out = append(out, grp.Members...)
	}
	return out
}
