package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestDetectShardedCatchesCompromise(t *testing.T) {
	// A legitimate base graph; in interval 0 everyone behaves, in interval
	// 1 a block of accounts is compromised and starts spamming.
	r := rand.New(rand.NewPCG(1, 91))
	const n = 300
	base := graph.New(n)
	for i := 0; i < n; i++ {
		base.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
		base.AddFriendship(graph.NodeID(i), graph.NodeID((i+9)%n))
	}
	compromised := map[graph.NodeID]bool{}
	var reqs []TimedRequest
	// Interval 0: benign traffic with sporadic rejections.
	for i := 0; i < 200; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			reqs = append(reqs, TimedRequest{From: u, To: v, Accepted: r.Float64() < 0.8, Interval: 0})
		}
	}
	// Interval 1: nodes 0..39 are compromised, flooding rejected requests.
	for i := 0; i < 40; i++ {
		u := graph.NodeID(i)
		compromised[u] = true
		for k := 0; k < 10; k++ {
			v := graph.NodeID(40 + r.IntN(n-40))
			reqs = append(reqs, TimedRequest{From: u, To: v, Accepted: r.Float64() < 0.25, Interval: 1})
		}
	}
	dets, err := DetectSharded(base, reqs, DetectorOptions{
		Cut:                 CutOptions{RandSeed: 3},
		AcceptanceThreshold: 0.5,
		MaxRounds:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var interval1 *IntervalDetection
	for i := range dets {
		if dets[i].Interval == 1 {
			interval1 = &dets[i]
		}
	}
	if interval1 == nil {
		t.Fatal("no detection ran for the compromise interval")
	}
	caught := 0
	for _, u := range interval1.Detection.Suspects {
		if compromised[u] {
			caught++
		}
	}
	if caught < 30 {
		t.Fatalf("only %d/40 compromised accounts caught in their interval", caught)
	}
	// Interval 0 must not flag a large group: benign traffic only.
	for _, d := range dets {
		if d.Interval == 0 && len(d.Detection.Suspects) > 40 {
			t.Fatalf("benign interval flagged %d accounts", len(d.Detection.Suspects))
		}
	}
}

func TestDetectShardedValidation(t *testing.T) {
	base := graph.New(2)
	reqs := []TimedRequest{{From: 0, To: 9, Interval: 0}}
	if _, err := DetectSharded(base, reqs, DetectorOptions{AcceptanceThreshold: 0.5}); err == nil {
		t.Fatal("out-of-range request accepted")
	}
}

func TestDetectShardedSkipsRejectionFreeIntervals(t *testing.T) {
	base := graph.New(4)
	base.AddFriendship(0, 1)
	reqs := []TimedRequest{
		{From: 0, To: 2, Accepted: true, Interval: 0}, // no rejections
		{From: 1, To: 3, Accepted: false, Interval: 1},
		{From: 2, To: 3, Accepted: false, Interval: 1},
	}
	dets, err := DetectSharded(base, reqs, DetectorOptions{AcceptanceThreshold: 0.9, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.Interval == 0 {
			t.Fatal("rejection-free interval was not skipped")
		}
	}
}
