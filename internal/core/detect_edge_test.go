package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestDetectMaxRoundsCapsWork(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 151))
	g, _ := plantedWorld(r, 200, 80, 0.7)
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{RandSeed: 1},
		TargetCount: 200, // more than the fakes, forcing extra rounds
		MaxRounds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Rounds > 2 {
		t.Fatalf("rounds = %d, exceeds MaxRounds", det.Rounds)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	g := graph.New(0)
	det, err := Detect(g, DetectorOptions{AcceptanceThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Suspects) != 0 || det.Rounds != 0 {
		t.Fatalf("empty graph detected something: %+v", det)
	}
}

func TestDetectNoRejections(t *testing.T) {
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID(i+1))
	}
	det, err := Detect(g, DetectorOptions{TargetCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Suspects) != 0 {
		t.Fatalf("rejection-free graph yielded %d suspects", len(det.Suspects))
	}
}

func TestDetectGroupMetadata(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 152))
	g, _ := plantedWorld(r, 200, 80, 0.8)
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: plantedSeeds(200, 80, 10), RandSeed: 3},
		TargetCount: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, grp := range det.Groups {
		if grp.Round != i+1 {
			t.Fatalf("group %d has round %d", i, grp.Round)
		}
		if grp.K <= 0 {
			t.Fatalf("group %d has non-positive k %v", i, grp.K)
		}
		if grp.Acceptance < 0 || grp.Acceptance > 1 {
			t.Fatalf("group %d acceptance %v outside [0,1]", i, grp.Acceptance)
		}
		if len(grp.Members) == 0 {
			t.Fatalf("group %d empty", i)
		}
	}
}

func TestDetectSuspectsNeverIncludeLegitSeeds(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 153))
	g, _ := plantedWorld(r, 300, 100, 0.7)
	seeds := plantedSeeds(300, 100, 20)
	det, err := Detect(g, DetectorOptions{
		Cut:         CutOptions{Seeds: seeds, RandSeed: 5},
		TargetCount: 150, // over-detection pressure
		MaxRounds:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	legitSeed := make(map[graph.NodeID]bool)
	for _, u := range seeds.Legit {
		legitSeed[u] = true
	}
	for _, u := range det.Suspects {
		if legitSeed[u] {
			t.Fatalf("legit seed %d was flagged despite pinning", u)
		}
	}
}

func TestDetectTrimExact(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 154))
	g, isFake := plantedWorld(r, 300, 100, 0.7)
	for _, target := range []int{10, 50, 100} {
		det, err := Detect(g, DetectorOptions{
			Cut:         CutOptions{Seeds: plantedSeeds(300, 100, 10), RandSeed: 5},
			TargetCount: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(det.Suspects) != target {
			t.Fatalf("target %d: detected %d", target, len(det.Suspects))
		}
		correct := 0
		for _, u := range det.Suspects {
			if isFake[u] {
				correct++
			}
		}
		if float64(correct) < 0.9*float64(target) {
			t.Fatalf("target %d: only %d correct", target, correct)
		}
	}
}
