package core

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// SpreadSeeds builds a Seeds set with community-aware placement (§IV-F):
// legitimate seeds are spread over the friendship communities of g so that
// every community is covered before any contributes a second seed — the
// SybilRank-style selection the paper recommends for ruling out spurious
// cuts inside the legitimate region. Spammer seeds need no spreading (the
// detector only uses them to anchor the suspect region), so they are taken
// from the candidate list in degree order.
//
// legitCandidates and spamCandidates are the manually-verified pools the
// OSN provider drew by inspecting random users. r drives the community
// detection; nil uses a fixed internal seed.
func SpreadSeeds(g *graph.Graph, legitCandidates, spamCandidates []graph.NodeID, nLegit, nSpam int, r *rand.Rand) Seeds {
	comm, _ := g.Communities(r, 0)
	s := Seeds{
		Legit: g.SpreadOverCommunities(legitCandidates, comm, nLegit),
	}
	if nSpam > 0 && len(spamCandidates) > 0 {
		// Degree-ordered pick via the same helper with a single-community
		// labeling restricted to the candidates.
		uniform := make([]int32, g.NumNodes())
		s.Spammer = g.SpreadOverCommunities(spamCandidates, uniform, nSpam)
	}
	return s
}
