package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := New(42).Stream("spam")
	b := New(42).Stream("spam")
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: same (seed, name) diverged: %d != %d", i, got, want)
		}
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	a := New(42).Stream("spam")
	b := New(42).Stream("legit")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different names produced %d identical draws out of 64", same)
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := New(1).Stream("x")
	b := New(2).Stream("x")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 64", same)
	}
}

func TestSplitNamespaces(t *testing.T) {
	root := New(7)
	a := root.Split("attack").Stream("s")
	b := root.Split("detect").Stream("s")
	c := root.Split("attack").Stream("s")
	if a.Uint64() == b.Uint64() {
		t.Error("split children with different names correlate")
	}
	a2 := New(7).Split("attack").Stream("s")
	_ = c
	if got, want := a2.Uint64(), New(7).Split("attack").Stream("s").Uint64(); got != want {
		t.Error("split is not deterministic")
	}
}

func TestPerm(t *testing.T) {
	r := New(3).Stream("perm")
	p := Perm(r, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 {
			t.Fatalf("perm value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("perm value %d repeated", v)
		}
		seen[v] = true
	}
}

func TestSampleProperties(t *testing.T) {
	r := New(9).Stream("sample")
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		s := Sample(r, n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	r := New(11).Stream("sample")
	s := Sample(r, 5, 5)
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Sample(5,5) = %v, want a permutation of 0..4", s)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2, 3) did not panic")
		}
	}()
	Sample(New(1).Stream("s"), 2, 3)
}

func TestBinomialBounds(t *testing.T) {
	r := New(13).Stream("binomial")
	for _, n := range []int{0, 1, 10, 64, 65, 1000} {
		for _, p := range []float64{-0.5, 0, 0.3, 0.7, 1, 1.5} {
			k := Binomial(r, n, p)
			if k < 0 || k > n {
				t.Errorf("Binomial(%d, %v) = %d out of [0, n]", n, p, k)
			}
		}
	}
	if Binomial(r, 100, 0) != 0 {
		t.Error("Binomial(n, 0) != 0")
	}
	if Binomial(r, 100, 1) != 100 {
		t.Error("Binomial(n, 1) != n")
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(17).Stream("binomial-mean")
	for _, tc := range []struct {
		n int
		p float64
	}{{50, 0.3}, {500, 0.7}, {1000, 0.1}} {
		const draws = 2000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += Binomial(r, tc.n, tc.p)
		}
		mean := float64(sum) / draws
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(draws) {
			t.Errorf("Binomial(%d, %v): mean %.2f too far from %.2f", tc.n, tc.p, mean, want)
		}
	}
}
