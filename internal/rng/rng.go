package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Source derives named random streams from a root seed.
type Source struct {
	seed uint64
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed the Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns a deterministic PCG stream for the given name.
// Successive calls with the same name return independent *rand.Rand values
// positioned at the start of the same sequence.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	// fnv.Write never returns an error.
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewPCG(s.seed, h.Sum64()))
}

// Split derives a child Source whose streams are independent of the
// parent's. Use it to hand a subsystem its own namespace of streams.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return &Source{seed: mix(s.seed, h.Sum64())}
}

// mix combines two 64-bit values with a SplitMix64-style finalizer so that
// related seeds do not produce correlated streams.
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15 + b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perm returns a deterministic pseudo-random permutation of [0, n) drawn
// from r.
func Perm(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) without
// replacement, in random order. It panics if k > n or k < 0.
func Sample(r *rand.Rand, n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		v := r.IntN(i + 1)
		if _, ok := chosen[v]; ok {
			v = i
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Binomial draws from Binomial(n, p) by direct simulation for small n and a
// normal approximation for large n. The callers in this repository use it to
// assign per-user rejection counts, where n is a node degree.
func Binomial(r *rand.Rand, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	default:
		mean := float64(n) * p
		sd := math.Sqrt(mean * (1 - p))
		k := int(r.NormFloat64()*sd + mean + 0.5)
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}
