// Package rng provides deterministic, named random-number streams.
//
// Every experiment in this repository must be reproducible from a single
// integer seed. Sharing one *rand.Rand across subsystems makes results
// depend on call order, so instead each subsystem derives an independent
// stream from the root seed and a stable name. Two streams with different
// names are statistically independent; the same (seed, name) pair always
// yields the same sequence.
package rng
