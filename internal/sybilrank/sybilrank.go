package sybilrank

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Options parameterizes SybilRank. The zero value selects the defaults.
type Options struct {
	// Iterations is the number of power iterations; 0 means ⌈log₂ n⌉,
	// the early-termination rule of the original design.
	Iterations int
	// TotalTrust is the trust mass split among the seeds; 0 means n.
	// It only scales the scores, not the ranking.
	TotalTrust float64
}

// View is the read-only adjacency the ranking walks. Both *graph.Graph and
// *graph.Frozen satisfy it, so detection-epoch CSR snapshots rank without
// being thawed back into a mutable graph.
type View interface {
	NumNodes() int
	Friends(graph.NodeID) []graph.NodeID
	Degree(graph.NodeID) int
}

// Rank propagates trust from the seed set and returns the degree-normalized
// trust score per node (higher = more trusted). Nodes unreachable from the
// seeds — including isolated nodes — score zero and therefore rank at the
// bottom.
func Rank(g *graph.Graph, seeds []graph.NodeID, opts Options) ([]float64, error) {
	return RankView(g, seeds, opts)
}

// RankFrozen is Rank over an immutable CSR snapshot — the adapter the
// ensemble uses on published epoch read models. Identical output to Rank on
// the equivalent mutable graph.
func RankFrozen(f *graph.Frozen, seeds []graph.NodeID, opts Options) ([]float64, error) {
	return RankView(f, seeds, opts)
}

// RankView is the shared implementation behind Rank and RankFrozen.
func RankView(g View, seeds []graph.NodeID, opts Options) ([]float64, error) {
	n := g.NumNodes()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sybilrank: at least one trust seed required")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("sybilrank: seed %d out of range [0, %d)", s, n)
		}
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = int(math.Ceil(math.Log2(float64(max(n, 2)))))
	}
	total := opts.TotalTrust
	if total == 0 {
		total = float64(n)
	}

	trust := make([]float64, n)
	share := total / float64(len(seeds))
	for _, s := range seeds {
		trust[s] += share
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		clear(next)
		for u := 0; u < n; u++ {
			nbrs := g.Friends(graph.NodeID(u))
			if len(nbrs) == 0 {
				continue // trust on isolated nodes evaporates
			}
			out := trust[u] / float64(len(nbrs))
			for _, v := range nbrs {
				next[v] += out
			}
		}
		trust, next = next, trust
	}

	for u := 0; u < n; u++ {
		if d := g.Degree(graph.NodeID(u)); d > 0 {
			trust[u] /= float64(d)
		} else {
			trust[u] = 0
		}
	}
	return trust, nil
}
