package sybilrank

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func BenchmarkRank(b *testing.B) {
	r := rand.New(rand.NewPCG(4, 4))
	g := gen.BarabasiAlbert(r, 20000, 8)
	seeds := []graph.NodeID{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rank(g, seeds, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
