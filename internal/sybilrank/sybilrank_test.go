package sybilrank

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestValidation(t *testing.T) {
	g := graph.New(3)
	if _, err := Rank(g, nil, Options{}); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := Rank(g, []graph.NodeID{7}, Options{}); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestTrustConservedAndNormalized(t *testing.T) {
	// On a connected graph total (pre-normalization) trust is conserved;
	// after degree normalization all scores are non-negative.
	r := rand.New(rand.NewPCG(1, 61))
	g := gen.ErdosRenyiGNM(r, 50, 200)
	scores, err := Rank(g, []graph.NodeID{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u, s := range scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", u, s)
		}
	}
}

func TestIsolatedNodesScoreZero(t *testing.T) {
	g := graph.New(4)
	g.AddFriendship(0, 1)
	scores, err := Rank(g, []graph.NodeID{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[2] != 0 || scores[3] != 0 {
		t.Fatalf("isolated nodes scored %v, %v; want 0", scores[2], scores[3])
	}
}

func TestUnreachableRegionScoresZero(t *testing.T) {
	// Two components; seeds in the first. The second must score 0.
	g := graph.New(6)
	g.AddFriendship(0, 1)
	g.AddFriendship(1, 2)
	g.AddFriendship(3, 4)
	g.AddFriendship(4, 5)
	scores, err := Rank(g, []graph.NodeID{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 3; u < 6; u++ {
		if scores[u] != 0 {
			t.Fatalf("unreachable node %d scored %v", u, scores[u])
		}
	}
	if scores[1] == 0 {
		t.Fatal("reachable node scored 0")
	}
}

// TestRanksSybilsBottom reproduces the core SybilRank property: with few
// attack edges, early-terminated propagation ranks the Sybil region at the
// bottom, yielding AUC near 1.
func TestRanksSybilsBottom(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 62))
	const nLegit, nSybil = 500, 200
	g := gen.BarabasiAlbert(r, nLegit, 4)
	first := int(g.AddNodes(nSybil))
	// Dense Sybil region.
	for i := 0; i < nSybil; i++ {
		for k := 0; k < 4 && k < i; k++ {
			g.AddFriendship(graph.NodeID(first+i), graph.NodeID(first+r.IntN(i)))
		}
	}
	// Only 5 attack edges.
	for i := 0; i < 5; i++ {
		g.AddFriendship(graph.NodeID(r.IntN(nLegit)), graph.NodeID(first+r.IntN(nSybil)))
	}
	isFake := make([]bool, g.NumNodes())
	for u := first; u < g.NumNodes(); u++ {
		isFake[u] = true
	}
	seeds := []graph.NodeID{0, 1, 2, 3, 4}
	scores, err := Rank(g, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUC(scores, isFake); auc < 0.95 {
		t.Fatalf("AUC = %.3f, want ≥ 0.95 with few attack edges", auc)
	}
}

// TestMoreAttackEdgesDegradeRanking: the paper's motivation for Rejecto —
// friend spam adds attack edges, which erode SybilRank's separation.
func TestMoreAttackEdgesDegradeRanking(t *testing.T) {
	build := func(attackEdges int) float64 {
		r := rand.New(rand.NewPCG(3, 63))
		const nLegit, nSybil = 400, 200
		g := gen.BarabasiAlbert(r, nLegit, 4)
		first := int(g.AddNodes(nSybil))
		for i := 1; i < nSybil; i++ {
			for k := 0; k < 4 && k < i; k++ {
				g.AddFriendship(graph.NodeID(first+i), graph.NodeID(first+r.IntN(i)))
			}
		}
		for i := 0; i < attackEdges; i++ {
			g.AddFriendship(graph.NodeID(r.IntN(nLegit)), graph.NodeID(first+r.IntN(nSybil)))
		}
		isFake := make([]bool, g.NumNodes())
		for u := first; u < g.NumNodes(); u++ {
			isFake[u] = true
		}
		scores, err := Rank(g, []graph.NodeID{0, 1, 2}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.AUC(scores, isFake)
	}
	few, many := build(5), build(2000)
	if many >= few {
		t.Fatalf("AUC did not degrade with attack edges: %v → %v", few, many)
	}
}

func TestCustomIterationsAndTrust(t *testing.T) {
	g := graph.New(3)
	g.AddFriendship(0, 1)
	g.AddFriendship(1, 2)
	a, err := Rank(g, []graph.NodeID{0}, Options{Iterations: 2, TotalTrust: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(g, []graph.NodeID{0}, Options{Iterations: 2, TotalTrust: 6})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a {
		if math.Abs(2*a[u]-b[u]) > 1e-9 {
			t.Fatalf("TotalTrust must only scale scores: %v vs %v", a, b)
		}
	}
}

func TestRankFrozenMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 3))
	for trial := 0; trial < 20; trial++ {
		n := 8 + r.IntN(60)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
			if u != v {
				g.AddFriendship(u, v)
			}
		}
		seeds := []graph.NodeID{0, graph.NodeID(n / 2)}
		want, err := Rank(g, seeds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RankFrozen(g.Freeze(), seeds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			if want[u] != got[u] {
				t.Fatalf("trial %d node %d: frozen %v != graph %v", trial, u, got[u], want[u])
			}
		}
	}
}

func TestRankFrozenValidation(t *testing.T) {
	f := graph.New(4).Freeze()
	if _, err := RankFrozen(f, nil, Options{}); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := RankFrozen(f, []graph.NodeID{9}, Options{}); err == nil {
		t.Error("out-of-range seed accepted")
	}
}
