// Package sybilrank implements SybilRank [Cao et al., NSDI 2012], the
// social-graph-based Sybil detection scheme the paper pairs with Rejecto
// for defense in depth (§II-C, §VI-D).
//
// SybilRank seeds trust at known legitimate users and propagates it with
// O(log n) power iterations of the degree-normalized random walk over the
// undirected social graph. Early termination is the crux: trust has time to
// mix within the legitimate region but not to cross the (few) attack edges
// into the Sybil region, so degree-normalized trust ranks Sybils at the
// bottom. The ranking quality is measured by the area under the ROC curve,
// exactly as in the paper's Fig 16.
package sybilrank
