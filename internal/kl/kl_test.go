package kl

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// twoCommunities builds two internally-dense groups of size k with a single
// bridging friendship, plus rejections from group A into group B.
func twoCommunities(k int, rejections int) *graph.Graph {
	g := graph.New(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddFriendship(graph.NodeID(i), graph.NodeID(j))
			g.AddFriendship(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	g.AddFriendship(0, graph.NodeID(k))
	for i := 0; i < rejections && i < k; i++ {
		g.AddRejection(graph.NodeID(i), graph.NodeID(k+i))
	}
	return g
}

func TestFindsPlantedCut(t *testing.T) {
	const k = 8
	g := twoCommunities(k, 6)
	// Start from a deliberately wrong partition: only half of group B
	// marked suspect.
	init := graph.NewPartition(2 * k)
	for i := k; i < k+k/2; i++ {
		init[i] = graph.Suspect
	}
	res := Partition(g, init, Config{FriendWeight: 64, RejectWeight: 128}) // k=2
	for i := 0; i < k; i++ {
		if res.Partition[i] != graph.Legit {
			t.Fatalf("node %d (group A) ended up suspect", i)
		}
		if res.Partition[k+i] != graph.Suspect {
			t.Fatalf("node %d (group B) ended up legit", k+i)
		}
	}
	// Planted cut: 1 cross friendship, 6 rejections into suspect.
	if want := int64(1*64 - 6*128); res.Objective != want {
		t.Fatalf("objective = %d, want %d", res.Objective, want)
	}
}

func TestRespectsPins(t *testing.T) {
	const k = 6
	g := twoCommunities(k, 4)
	init := graph.NewPartition(2 * k)
	// Pin one group-B node to Legit against the gradient.
	pinned := make([]bool, 2*k)
	pinned[k] = true
	init[k] = graph.Legit
	for i := k + 1; i < 2*k; i++ {
		init[i] = graph.Suspect
	}
	res := Partition(g, init, Config{FriendWeight: 64, RejectWeight: 256, Pinned: pinned})
	if res.Partition[k] != graph.Legit {
		t.Fatal("pinned node switched regions")
	}
}

func TestGainMatchesObjectiveDelta(t *testing.T) {
	// Property: for every node, the computed switch gain equals the
	// objective difference of actually switching it.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 21))
		g := randomAugmented(r, 14, 40, 25)
		p := randomPartition(r, 14)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(1 + r.IntN(300))}
		opt := &optimizer{g: g, cfg: cfg}
		before := Objective(g, p, cfg)
		for u := 0; u < g.NumNodes(); u++ {
			gain := opt.gain(p, graph.NodeID(u))
			p[u] = p[u].Other()
			after := Objective(g, p, cfg)
			p[u] = p[u].Other()
			if before-after != gain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionNeverWorsensObjective(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 22))
		g := randomAugmented(r, 20, 60, 40)
		init := randomPartition(r, 20)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(1 + r.IntN(200))}
		res := Partition(g, init, cfg)
		return res.Objective <= Objective(g, init, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionIsLocalOptimum(t *testing.T) {
	// After convergence no single-node switch of a free node improves the
	// objective.
	r := rand.New(rand.NewPCG(77, 23))
	g := randomAugmented(r, 16, 50, 30)
	init := randomPartition(r, 16)
	cfg := Config{FriendWeight: 64, RejectWeight: 96}
	res := Partition(g, init, cfg)
	opt := &optimizer{g: g, cfg: cfg}
	for u := 0; u < g.NumNodes(); u++ {
		if gain := opt.gain(res.Partition, graph.NodeID(u)); gain > 0 {
			t.Fatalf("node %d still has positive switch gain %d after convergence", u, gain)
		}
	}
}

func TestInputPartitionNotMutated(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 24))
	g := randomAugmented(r, 10, 30, 20)
	init := randomPartition(r, 10)
	snapshot := init.Clone()
	Partition(g, init, Config{FriendWeight: 64, RejectWeight: 64})
	for i := range init {
		if init[i] != snapshot[i] {
			t.Fatal("Partition mutated its input")
		}
	}
}

func TestRejectWeightZeroMinimizesCrossEdges(t *testing.T) {
	// With w_R = 0 the objective reduces to classic min-cut pressure:
	// from an all-one-side start KL must not create any cut.
	g := twoCommunities(5, 3)
	init := graph.NewPartition(10)
	res := Partition(g, init, Config{FriendWeight: 1, RejectWeight: 0})
	if s := res.Partition.Stats(g); s.CrossFriendships != 0 {
		t.Fatalf("w_R=0 from trivial start created %d cross edges", s.CrossFriendships)
	}
}

func TestConfigValidate(t *testing.T) {
	g := graph.New(3)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{FriendWeight: 1, RejectWeight: 1}, true},
		{"zero friend weight", Config{FriendWeight: 0, RejectWeight: 1}, false},
		{"negative reject weight", Config{FriendWeight: 1, RejectWeight: -1}, false},
		{"pinned mismatch", Config{FriendWeight: 1, Pinned: make([]bool, 2)}, false},
		{"negative passes", Config{FriendWeight: 1, MaxPasses: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(g); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestMatchesBruteForceOnTinyGraphs: on graphs small enough to enumerate,
// repeated KL from every corner of the search space must find the global
// optimum of the linear objective. KL is a heuristic; to make the check
// sound we start it from the optimum itself and require it not to leave it
// (the optimum is a fixed point), plus require the best KL result over all
// single-region starts to be within the enumerated optimum.
func TestMatchesBruteForceOnTinyGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 25))
		const n = 9
		g := randomAugmented(r, n, 12, 8)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(32 + r.IntN(200))}

		bestObj := int64(1 << 62)
		var bestP graph.Partition
		for mask := 0; mask < 1<<n; mask++ {
			p := graph.NewPartition(n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					p[i] = graph.Suspect
				}
			}
			if obj := Objective(g, p, cfg); obj < bestObj {
				bestObj, bestP = obj, p
			}
		}
		// The optimum must be a fixed point of KL.
		res := Partition(g, bestP, cfg)
		return res.Objective == bestObj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomAugmented(r *rand.Rand, n, friendships, rejections int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < friendships; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	for i := 0; i < rejections; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddRejection(u, v)
		}
	}
	return g
}

func randomPartition(r *rand.Rand, n int) graph.Partition {
	p := graph.NewPartition(n)
	for i := range p {
		if r.IntN(2) == 0 {
			p[i] = graph.Suspect
		}
	}
	return p
}
