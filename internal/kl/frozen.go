package kl

import (
	"repro/internal/bucketlist"
	"repro/internal/graph"
)

// Workspace holds the reusable scratch state of PartitionFrozen: the FM
// bucket list (reset in place between passes and jobs), the tentative
// switch sequence, and the working partition. A Workspace is owned by one
// goroutine; the independent (k, init) jobs of a MAAR sweep each reuse
// their worker's Workspace, so steady-state solves allocate nothing.
//
// The zero value is ready for use; the first calls through a Workspace
// size its buffers (and re-size them if the graph or gain range grows),
// after which PartitionFrozen performs no allocations at all.
type Workspace struct {
	dense *denseBuckets   // specialized structure for dense gain ranges
	list  bucketlist.List // fallback for gain ranges too wide for dense
	seq   []wsStep
	p     graph.Partition
	gains []int64 // per-pass best-gain trajectory (Result.PassGains)
}

// wsStep records one tentative switch of a KL pass: the node, the gain the
// bucket list predicted, and the switch's effect on the incremental cut
// statistics so a rollback can subtract it.
type wsStep struct {
	node   graph.NodeID
	gain   int64
	dCross int32 // delta CrossFriendships
	dRejS  int32 // delta RejIntoSuspect
	dRejL  int32 // delta RejIntoLegit
	dSusp  int8  // delta SuspectSize (±1)
}

// PartitionFrozen runs extended KL on a CSR snapshot. It is byte-identical
// to Partition on the graph the snapshot was frozen from — same partition,
// objective, cut statistics, and pass count — but tracks the objective and
// cut statistics incrementally as nodes switch (so Result.Stats costs no
// final O(V+E) walk) and reuses ws across calls (so a warmed-up call
// performs zero allocations; see BenchmarkPartitionFrozen and the
// TestPartitionFrozenZeroAllocs guarantee).
//
// ws may be nil, in which case a throwaway workspace is used. When ws is
// non-nil the returned Result.Partition and Result.PassGains alias
// workspace memory: they are valid until the next PartitionFrozen call
// with the same ws, and callers keeping them longer must Clone/copy.
func PartitionFrozen(f *graph.Frozen, init graph.Partition, cfg Config, ws *Workspace) Result {
	checkFrozenArgs(f, init, cfg)
	return partitionFrozen(f, init, f.Stats(init), cfg, nil, ws)
}

// PartitionFrozenFromStats is PartitionFrozen for callers that already
// hold init's cut statistics — a sweep reuses the same few initial
// partitions across every weight configuration, so computing each init's
// stats once replaces an O(V+E) walk per solve. initStats must equal
// f.Stats(init); everything else is as documented on PartitionFrozen.
func PartitionFrozenFromStats(f *graph.Frozen, init graph.Partition, initStats graph.CutStats, cfg Config, ws *Workspace) Result {
	checkFrozenArgs(f, init, cfg)
	return partitionFrozen(f, init, initStats, cfg, nil, ws)
}

func checkFrozenArgs(f *graph.Frozen, init graph.Partition, cfg Config) {
	n := f.NumNodes()
	if len(init) != n {
		panic("kl: initial partition length mismatch")
	}
	if cfg.Pinned != nil && len(cfg.Pinned) != n {
		panic("kl: pinned length mismatch")
	}
	if cfg.FriendWeight <= 0 {
		panic("kl: FriendWeight must be positive")
	}
	if cfg.RejectWeight < 0 {
		panic("kl: RejectWeight must be non-negative")
	}
}

func partitionFrozen(f *graph.Frozen, init graph.Partition, initStats graph.CutStats, cfg Config, active []bool, ws *Workspace) Result {
	n := f.NumNodes()
	maxPasses := cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = DefaultMaxPasses
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if cap(ws.p) < n {
		ws.p = make(graph.Partition, n)
	}
	if cap(ws.seq) < n {
		// A pass records at most one step per node; sizing the sequence up
		// front avoids append-doubling through the first pass.
		ws.seq = make([]wsStep, 0, n)
	}
	if cap(ws.gains) < maxPasses {
		ws.gains = make([]int64, 0, maxPasses)
	}
	ws.gains = ws.gains[:0]
	p := ws.p[:n]
	ws.p = p
	copy(p, init)

	opt := frozenOptimizer{
		f:        f,
		cfg:      cfg,
		ws:       ws,
		active:   active,
		weighted: f.Weighted(),
		maxAbs:   frozenMaxAbsGain(f, cfg),
		stats:    initStats,
	}
	passes := 0
	for passes < maxPasses {
		passes++
		if improved := opt.pass(p); !improved {
			break
		}
	}
	return Result{
		Partition: p,
		Objective: int64(opt.stats.CrossFriendships)*cfg.FriendWeight -
			int64(opt.stats.RejIntoSuspect)*cfg.RejectWeight,
		Stats:     opt.stats,
		Passes:    passes,
		Switches:  opt.switches,
		Rollbacks: opt.rollbacks,
		PassGains: ws.gains,
	}
}

// frozenMaxAbsGain is maxAbsGain over a CSR snapshot. On weighted (coarse)
// snapshots the bound is the weighted degree — see frozen_ml.go.
func frozenMaxAbsGain(f *graph.Frozen, cfg Config) int64 {
	if f.Weighted() {
		return frozenMaxAbsGainWeighted(f, cfg)
	}
	var maxAbs int64
	for u := 0; u < f.NumNodes(); u++ {
		wd := int64(f.Degree(graph.NodeID(u)))*cfg.FriendWeight +
			int64(f.InRejections(graph.NodeID(u))+f.OutRejections(graph.NodeID(u)))*cfg.RejectWeight
		if wd > maxAbs {
			maxAbs = wd
		}
	}
	return maxAbs
}

type frozenOptimizer struct {
	f   *graph.Frozen
	cfg Config
	ws  *Workspace
	// active, when non-nil, restricts switching to the marked nodes: the
	// others keep their init region and are never added to the bucket
	// structure (RefineFrozen's boundary-only refinement). Inactive nodes
	// still shape their neighbours' gains and the incremental statistics.
	active []bool
	// weighted dispatches the gain/switch kernels to their multiplicity-
	// counting forms (frozen_ml.go); set once from f.Weighted().
	weighted bool
	maxAbs   int64
	// stats are the cut statistics of the current partition, updated on
	// every tentative switch and rollback.
	stats graph.CutStats
	// Trace counters surfaced through Result; kept identical to the seed
	// optimizer's so the parity tests can pin them field for field.
	switches  int
	rollbacks int
}

// pass performs one KL improvement pass over p in place, mirroring
// (*optimizer).pass step for step on the snapshot. Whenever the gain range
// is one bucketlist.New would serve with the dense implementation — every
// realistic configuration — the pass runs on the workspace's specialized
// denseBuckets structure (same tie-break order, cache-packed layout, no
// interface dispatch); otherwise it falls back to the generic bucket list.
func (o *frozenOptimizer) pass(p graph.Partition) bool {
	f, cfg := o.f, o.cfg
	n := f.NumNodes()

	seq := o.ws.seq[:0]
	if bucketlist.PrefersDense(-o.maxAbs, o.maxAbs) {
		d := o.ws.dense
		if d == nil {
			d = &denseBuckets{}
			o.ws.dense = d
		}
		d.reset(n, -o.maxAbs, o.maxAbs)
		if cfg.Pinned == nil && o.active == nil {
			for u := 0; u < n; u++ {
				d.add(int32(u), o.gain(p, graph.NodeID(u)))
			}
		} else {
			for u := 0; u < n; u++ {
				if cfg.Pinned != nil && cfg.Pinned[u] || o.active != nil && !o.active[u] {
					continue
				}
				d.add(int32(u), o.gain(p, graph.NodeID(u)))
			}
		}
		for {
			u, gu, ok := d.popMax()
			if !ok || cfg.Greedy && gu <= 0 {
				break
			}
			seq = append(seq, wsStep{node: graph.NodeID(u), gain: gu})
			o.applySwitchDense(p, graph.NodeID(u), d, &seq[len(seq)-1])
		}
	} else {
		list := bucketlist.Renew(o.ws.list, n, -o.maxAbs, o.maxAbs)
		o.ws.list = list
		for u := 0; u < n; u++ {
			if cfg.Pinned != nil && cfg.Pinned[u] || o.active != nil && !o.active[u] {
				continue
			}
			list.Add(u, o.gain(p, graph.NodeID(u)))
		}
		for {
			u, gu, ok := list.PopMax()
			if !ok || cfg.Greedy && gu <= 0 {
				break
			}
			seq = append(seq, wsStep{node: graph.NodeID(u), gain: gu})
			o.applySwitch(p, graph.NodeID(u), list, &seq[len(seq)-1])
		}
	}
	o.ws.seq = seq

	var cum, bestCum int64
	bestLen := 0
	for i := range seq {
		cum += seq[i].gain
		if cum > bestCum {
			bestCum, bestLen = cum, i+1
		}
	}
	rollFrom := bestLen
	if bestCum <= 0 {
		rollFrom = 0 // no improving prefix: roll back everything
	}
	o.switches += len(seq)
	o.rollbacks += len(seq) - rollFrom
	o.ws.gains = append(o.ws.gains, bestCum)
	for i := rollFrom; i < len(seq); i++ {
		st := &seq[i]
		p[st.node] = p[st.node].Other()
		o.stats.CrossFriendships -= int(st.dCross)
		o.stats.RejIntoSuspect -= int(st.dRejS)
		o.stats.RejIntoLegit -= int(st.dRejL)
		o.stats.SuspectSize -= int(st.dSusp)
		o.stats.LegitSize += int(st.dSusp)
	}
	return bestCum > 0
}

// gain computes (*optimizer).gain on the snapshot, in counting form: each
// adjacency walk tallies the neighbours matching its gating region — a
// compare-and-increment the compiler lowers without branches — and the
// weights multiply the counts once at the end. The value is identical to
// the seed's per-edge accumulation (integer arithmetic, same terms).
func (o *frozenOptimizer) gain(p graph.Partition, u graph.NodeID) int64 {
	if o.weighted {
		return o.gainWeighted(p, u)
	}
	f, cfg := o.f, o.cfg
	pu := p[u]
	friends := f.Friends(u)
	same := 0
	for _, v := range friends {
		if p[v] == pu {
			same++
		}
	}
	gain := cfg.FriendWeight * int64(len(friends)-2*same)
	suspectRejected := 0
	for _, x := range f.Rejected(u) {
		if p[x] == graph.Suspect {
			suspectRejected++
		}
	}
	legitRejecters := 0
	for _, x := range f.Rejecters(u) {
		if p[x] == graph.Legit {
			legitRejecters++
		}
	}
	if pu == graph.Legit {
		return gain + cfg.RejectWeight*int64(legitRejecters-suspectRejected)
	}
	return gain + cfg.RejectWeight*int64(suspectRejected-legitRejecters)
}

// applySwitch flips u in p, updates the bucket-list gains of u's still-free
// neighbours exactly as (*optimizer).applySwitch does, and — in the same
// adjacency walk — accumulates the switch's effect on the cut statistics
// into st and o.stats. Every friendship of u toggles its cross status;
// every rejection incident to u moves between counted and uncounted
// depending on the fixed endpoint's region.
func (o *frozenOptimizer) applySwitch(p graph.Partition, u graph.NodeID, list bucketlist.List, st *wsStep) {
	if o.weighted {
		o.applySwitchWeighted(p, u, list, st)
		return
	}
	f, cfg := o.f, o.cfg
	oldPu := p[u]
	newPu := oldPu.Other()
	p[u] = newPu
	if oldPu == graph.Legit {
		st.dSusp = 1
	} else {
		st.dSusp = -1
	}

	for _, v := range f.Friends(u) {
		if p[v] == newPu {
			st.dCross-- // edge was cross, now internal
			list.AdjustIfPresent(int(v), -2*cfg.FriendWeight)
		} else {
			st.dCross++ // edge was internal, now cross
			list.AdjustIfPresent(int(v), 2*cfg.FriendWeight)
		}
	}
	// Edges ⟨u, x⟩: u is the rejecter. With x Suspect the edge counts in
	// RejIntoSuspect exactly while u is Legit; with x Legit it counts in
	// RejIntoLegit exactly while u is Suspect.
	for _, x := range f.Rejected(u) {
		if p[x] == graph.Suspect {
			if newPu == graph.Legit {
				st.dRejS++
			} else {
				st.dRejS--
			}
		} else if newPu == graph.Suspect {
			st.dRejL++
		} else {
			st.dRejL--
		}
		list.AdjustIfPresent(int(x), RejecterContrib(p[x], newPu, cfg.RejectWeight)-
			RejecterContrib(p[x], oldPu, cfg.RejectWeight))
	}
	// Edges ⟨x, u⟩: u is the target. With x Legit the edge counts in
	// RejIntoSuspect exactly while u is Suspect; with x Suspect it counts
	// in RejIntoLegit exactly while u is Legit.
	for _, x := range f.Rejecters(u) {
		if p[x] == graph.Legit {
			if newPu == graph.Suspect {
				st.dRejS++
			} else {
				st.dRejS--
			}
		} else if newPu == graph.Legit {
			st.dRejL++
		} else {
			st.dRejL--
		}
		list.AdjustIfPresent(int(x), RejectedContrib(p[x], newPu, cfg.RejectWeight)-
			RejectedContrib(p[x], oldPu, cfg.RejectWeight))
	}

	o.stats.CrossFriendships += int(st.dCross)
	o.stats.RejIntoSuspect += int(st.dRejS)
	o.stats.RejIntoLegit += int(st.dRejL)
	o.stats.SuspectSize += int(st.dSusp)
	o.stats.LegitSize -= int(st.dSusp)
}

// applySwitchDense is applySwitch on the workspace's specialized dense
// structure: identical step for step, but the membership probe is a
// caller-side bitmap test (absent neighbours never touch their node
// record) and the gain deltas are folded to their sign form. For both
// rejection directions the Contrib difference collapses to +wR when the
// listed neighbour now shares u's region and −wR otherwise, since exactly
// one of oldPu/newPu satisfies each Contrib's gating region. This is the
// hottest loop of the whole sweep.
func (o *frozenOptimizer) applySwitchDense(p graph.Partition, u graph.NodeID, d *denseBuckets, st *wsStep) {
	if o.weighted {
		o.applySwitchDenseWeighted(p, u, d, st)
		return
	}
	f := o.f
	wF2, wR := 2*o.cfg.FriendWeight, o.cfg.RejectWeight
	oldPu := p[u]
	newPu := oldPu.Other()
	p[u] = newPu
	if oldPu == graph.Legit {
		st.dSusp = 1
	} else {
		st.dSusp = -1
	}

	for _, v := range f.Friends(u) {
		if p[v] == newPu {
			st.dCross--
			if d.present(int32(v)) {
				d.relink(int32(v), -wF2)
			}
		} else {
			st.dCross++
			if d.present(int32(v)) {
				d.relink(int32(v), wF2)
			}
		}
	}
	for _, x := range f.Rejected(u) {
		if p[x] == graph.Suspect {
			if newPu == graph.Legit {
				st.dRejS++
			} else {
				st.dRejS--
			}
		} else if newPu == graph.Suspect {
			st.dRejL++
		} else {
			st.dRejL--
		}
		if wR != 0 && d.present(int32(x)) {
			if p[x] == newPu {
				d.relink(int32(x), wR)
			} else {
				d.relink(int32(x), -wR)
			}
		}
	}
	for _, x := range f.Rejecters(u) {
		if p[x] == graph.Legit {
			if newPu == graph.Suspect {
				st.dRejS++
			} else {
				st.dRejS--
			}
		} else if newPu == graph.Legit {
			st.dRejL++
		} else {
			st.dRejL--
		}
		if wR != 0 && d.present(int32(x)) {
			if p[x] == newPu {
				d.relink(int32(x), wR)
			} else {
				d.relink(int32(x), -wR)
			}
		}
	}

	o.stats.CrossFriendships += int(st.dCross)
	o.stats.RejIntoSuspect += int(st.dRejS)
	o.stats.RejIntoLegit += int(st.dRejL)
	o.stats.SuspectSize += int(st.dSusp)
	o.stats.LegitSize -= int(st.dSusp)
}
