package kl

import "math/bits"

// denseBuckets is the frozen engine's private FM gain structure: the same
// bucket-array-of-LIFO-lists discipline as bucketlist.Dense — identical
// insertion, update, and max-pop tie-break order, which the cross-path
// property tests verify — rearranged for the memory system:
//
//   - Node state is an array of structs (next, prev, gain in one 12-byte
//     record), so relinking a node in the switching loop costs one cache
//     line instead of several scattered array reads.
//   - Membership lives in its own bitmap (n/8 bytes, L1-resident), so
//     probing a neighbour that has already been switched out — half of all
//     adjacency visits, averaged over a pass — never touches its node
//     record at all.
//   - Gains are int32. The structure is only used when the gain range fits
//     the dense bucket limit (≤ 2²² buckets, so |gain| ≤ 2²¹), exactly the
//     condition under which bucketlist.New picks Dense.
//   - An occupancy bitmap (one bit per bucket) turns the max-bucket scan
//     over mostly-empty heads — the dominant PopMax cost when the gain
//     range is much wider than the node count — into word-at-a-time skips.
//
// It is not an implementation of bucketlist.List: no panics, no bounds
// checks, int32 everywhere. The generic interface remains the seed path's
// and the fallback for gain ranges too wide for dense buckets.
type denseBuckets struct {
	minGain   int32
	heads     []int32  // heads[b] = first node of bucket b, or -1
	occ       []uint64 // bit b set iff heads[b] >= 0
	nodes     []fmNode
	inBits    []uint64 // bit u set iff node u is present
	maxCursor int32    // highest bucket that may be occupied; -1 when fresh
	size      int
}

// fmNode is one node's intrusive list record.
type fmNode struct {
	next, prev int32
	gain       int32
}

// reset rebinds d to a node count and gain range, reusing storage. Like
// bucketlist.Dense.Reset it relies on the all-(-1) heads invariant: pops
// and unlinks restore emptied buckets, so a drained structure resets in
// O(1) and a partially-full one in O(present nodes).
func (d *denseBuckets) reset(n int, minGain, maxGain int64) {
	if d.size > 0 {
		for w, word := range d.inBits {
			for word != 0 {
				u := int32(w<<6 | bits.TrailingZeros64(word))
				word &= word - 1
				d.unlink(&d.nodes[u])
			}
			d.inBits[w] = 0
		}
		d.size = 0
	}
	buckets := maxGain - minGain + 1
	if buckets > int64(len(d.heads)) {
		d.heads = make([]int32, buckets)
		for i := range d.heads {
			d.heads[i] = -1
		}
		d.occ = make([]uint64, (buckets+63)/64)
	}
	if n > len(d.nodes) {
		d.nodes = make([]fmNode, n)
		d.inBits = make([]uint64, (n+63)/64)
	}
	d.minGain = int32(minGain)
	d.maxCursor = -1
}

// present reports whether node is in the structure. It reads only the
// membership bitmap, never the node record.
func (d *denseBuckets) present(node int32) bool {
	return d.inBits[node>>6]>>(uint(node)&63)&1 != 0
}

// add inserts node with the given gain (LIFO within its bucket).
func (d *denseBuckets) add(node int32, gain int64) {
	nd := &d.nodes[node]
	nd.gain = int32(gain)
	d.inBits[node>>6] |= 1 << (uint(node) & 63)
	d.push(node, nd, int32(gain)-d.minGain)
	d.size++
}

// relink adds delta to node's gain and moves it to the front of its new
// bucket — Update semantics for a node the caller has checked is present
// (see present) with a non-zero delta.
func (d *denseBuckets) relink(node int32, delta int64) {
	nd := &d.nodes[node]
	d.unlink(nd)
	g := nd.gain + int32(delta)
	nd.gain = g
	d.push(node, nd, g-d.minGain)
}

// popMax removes and returns a node with maximum gain, ties to the node
// most recently pushed into its bucket.
func (d *denseBuckets) popMax() (node int32, gain int64, ok bool) {
	if d.size == 0 {
		return 0, 0, false
	}
	b := d.maxCursor
	if d.heads[b] < 0 {
		// Bitmap scan: skip 64 empty buckets per word.
		w := int(b >> 6)
		x := d.occ[w] & (^uint64(0) >> (63 - uint(b)&63))
		for x == 0 {
			w--
			x = d.occ[w]
		}
		b = int32(w<<6 | (63 - bits.LeadingZeros64(x)))
		d.maxCursor = b
	}
	n := d.heads[b]
	nd := &d.nodes[n]
	nx := nd.next
	d.heads[b] = nx
	if nx >= 0 {
		d.nodes[nx].prev = -1
	} else {
		d.occ[b>>6] &^= 1 << (uint(b) & 63)
	}
	d.inBits[n>>6] &^= 1 << (uint(n) & 63)
	d.size--
	return n, int64(nd.gain), true
}

// push prepends node to bucket b.
func (d *denseBuckets) push(node int32, nd *fmNode, b int32) {
	head := d.heads[b]
	nd.next = head
	nd.prev = -1
	if head >= 0 {
		d.nodes[head].prev = node
	} else {
		d.occ[b>>6] |= 1 << (uint(b) & 63)
	}
	d.heads[b] = node
	if b > d.maxCursor {
		d.maxCursor = b
	}
}

// unlink removes nd from its bucket without clearing membership.
func (d *denseBuckets) unlink(nd *fmNode) {
	b := nd.gain - d.minGain
	nx, pv := nd.next, nd.prev
	if pv >= 0 {
		d.nodes[pv].next = nx
	} else {
		d.heads[b] = nx
		if nx < 0 {
			d.occ[b>>6] &^= 1 << (uint(b) & 63)
		}
	}
	if nx >= 0 {
		d.nodes[nx].prev = pv
	}
}
