package kl

import (
	"fmt"

	"repro/internal/bucketlist"
	"repro/internal/graph"
)

// Config parameterizes one extended-KL optimization.
type Config struct {
	// FriendWeight is the fixed-point objective weight of a cross-cut
	// friendship (w_F above). Must be positive.
	FriendWeight int64
	// RejectWeight is the fixed-point objective credit of a rejection
	// crossing from Legit into Suspect (w_R above). Must be non-negative;
	// the effective ratio k of §IV-D is RejectWeight/FriendWeight.
	RejectWeight int64
	// Pinned marks seed nodes that must stay in their initial region.
	// May be nil (no seeds); otherwise len(Pinned) == g.NumNodes().
	Pinned []bool
	// MaxPasses bounds the number of KL passes. Zero means DefaultMaxPasses.
	// In practice KL converges in a handful of passes [Fiduccia 1982].
	MaxPasses int
	// Greedy switches the frozen engine's pass to strict hill climbing: it
	// stops popping at the first non-positive gain instead of tentatively
	// switching every node and rolling back to the best prefix. A greedy
	// pass reaches single-switch convergence on its own (gains are
	// maintained incrementally, so the loop only ends when no remaining
	// node improves), making one pass sufficient — at the price of KL's
	// ability to cross objective plateaus. The multilevel ladder uses it
	// for per-level boundary refinement, where the projected partition is
	// already near-optimal and plateau-crossing is the coarsest solve's
	// job. Only PartitionFrozen/RefineFrozen honor it.
	Greedy bool
}

// DefaultMaxPasses bounds KL passes when Config.MaxPasses is zero.
const DefaultMaxPasses = 40

// Result reports the outcome of a Partition call.
type Result struct {
	Partition graph.Partition
	// Objective is the final fixed-point objective value
	// |F(Ū,U)|·w_F − |R⃗⟨Ū,U⟩|·w_R.
	Objective int64
	// Stats are the cut statistics of Partition, so callers scoring the
	// cut do not re-walk the graph. PartitionFrozen maintains them
	// incrementally as nodes switch.
	Stats graph.CutStats
	// Passes is the number of improvement passes performed.
	Passes int
	// Switches is the total number of tentative node switches across all
	// passes, and Rollbacks the number undone by best-prefix rollback;
	// Switches − Rollbacks is the net moves the solve kept. Both are
	// plain counters the passes maintain anyway, so recording them costs
	// nothing — they exist for the observability layer (obs.EvSolveDone).
	Switches  int
	Rollbacks int
	// PassGains is the best-gain trajectory: the best cumulative
	// objective reduction each pass found (the amount it kept after
	// rollback). Its length equals Passes, and the final entry is ≤ 0
	// exactly when the solve converged before MaxPasses. In
	// PartitionFrozen the slice aliases workspace memory — valid until
	// the next call with the same Workspace; Clone to retain.
	PassGains []int64
}

// Partition runs extended KL from the given initial partition and returns
// the locally optimal partition for the configured linear objective. The
// input partition is not modified.
func Partition(g *graph.Graph, init graph.Partition, cfg Config) Result {
	n := g.NumNodes()
	if len(init) != n {
		panic("kl: initial partition length mismatch")
	}
	if cfg.Pinned != nil && len(cfg.Pinned) != n {
		panic("kl: pinned length mismatch")
	}
	if cfg.FriendWeight <= 0 {
		panic("kl: FriendWeight must be positive")
	}
	if cfg.RejectWeight < 0 {
		panic("kl: RejectWeight must be non-negative")
	}
	maxPasses := cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = DefaultMaxPasses
	}

	p := init.Clone()
	opt := &optimizer{g: g, cfg: cfg, maxAbs: maxAbsGain(g, cfg),
		passGains: make([]int64, 0, maxPasses)}

	passes := 0
	for passes < maxPasses {
		passes++
		if improved := opt.pass(p); !improved {
			break
		}
	}
	s := p.Stats(g)
	return Result{
		Partition: p,
		Objective: int64(s.CrossFriendships)*cfg.FriendWeight -
			int64(s.RejIntoSuspect)*cfg.RejectWeight,
		Stats:     s,
		Passes:    passes,
		Switches:  opt.switches,
		Rollbacks: opt.rollbacks,
		PassGains: opt.passGains,
	}
}

// maxAbsGain bounds any node's switch gain by its weighted degree. The
// bound depends only on degrees and weights — never on the partition — so
// it is computed once per (graph, config) rather than once per pass.
func maxAbsGain(g *graph.Graph, cfg Config) int64 {
	var maxAbs int64
	for u := 0; u < g.NumNodes(); u++ {
		wd := int64(g.Degree(graph.NodeID(u)))*cfg.FriendWeight +
			int64(g.InRejections(graph.NodeID(u))+g.OutRejections(graph.NodeID(u)))*cfg.RejectWeight
		if wd > maxAbs {
			maxAbs = wd
		}
	}
	return maxAbs
}

// Objective evaluates the fixed-point linear objective of partition p.
func Objective(g *graph.Graph, p graph.Partition, cfg Config) int64 {
	s := p.Stats(g)
	return int64(s.CrossFriendships)*cfg.FriendWeight -
		int64(s.RejIntoSuspect)*cfg.RejectWeight
}

type optimizer struct {
	g      *graph.Graph
	cfg    Config
	maxAbs int64 // per-graph gain bound, computed once by maxAbsGain

	// Trace counters surfaced through Result; see Result.Switches.
	switches  int
	rollbacks int
	passGains []int64
}

// pass performs one KL improvement pass over p in place, returning whether
// the objective strictly improved.
func (o *optimizer) pass(p graph.Partition) bool {
	g, cfg := o.g, o.cfg
	n := g.NumNodes()

	list := bucketlist.New(n, -o.maxAbs, o.maxAbs)
	for u := 0; u < n; u++ {
		if cfg.Pinned != nil && cfg.Pinned[u] {
			continue
		}
		list.Add(u, o.gain(p, graph.NodeID(u)))
	}

	// Tentatively switch every free node in greedy max-gain order,
	// recording the sequence (Algorithm 1 lines 7–15). p is mutated as the
	// tentative p_tmp and rolled back below.
	type step struct {
		node graph.NodeID
		gain int64
	}
	seq := make([]step, 0, list.Len())
	for {
		u, gu, ok := list.PopMax()
		if !ok {
			break
		}
		seq = append(seq, step{node: graph.NodeID(u), gain: gu})
		o.applySwitch(p, graph.NodeID(u), list)
	}

	// Find the prefix with the largest positive cumulative gain
	// (Algorithm 1 line 18). Ties take the shortest prefix.
	var cum, bestCum int64
	bestLen := 0
	for i, st := range seq {
		cum += st.gain
		if cum > bestCum {
			bestCum, bestLen = cum, i+1
		}
	}
	if bestCum <= 0 {
		bestLen = 0 // no improving prefix: roll back everything
	}
	o.switches += len(seq)
	o.rollbacks += len(seq) - bestLen
	o.passGains = append(o.passGains, bestCum)
	for _, st := range seq[bestLen:] {
		p[st.node] = p[st.node].Other()
	}
	return bestCum > 0
}

// gain returns the objective reduction achieved by switching u to the other
// region under partition p.
func (o *optimizer) gain(p graph.Partition, u graph.NodeID) int64 {
	g, cfg := o.g, o.cfg
	var gain int64
	pu := p[u]
	for _, v := range g.Friends(u) {
		if p[v] == pu {
			gain -= cfg.FriendWeight
		} else {
			gain += cfg.FriendWeight
		}
	}
	// Edges ⟨u, x⟩ (u rejected x's request) count only while u is Legit
	// and x is Suspect.
	for _, x := range g.Rejected(u) {
		if p[x] == graph.Suspect {
			if pu == graph.Legit {
				gain -= cfg.RejectWeight // switch un-counts the rejection
			} else {
				gain += cfg.RejectWeight // switch makes it count
			}
		}
	}
	// Edges ⟨x, u⟩ (x rejected u's request) count only while x is Legit
	// and u is Suspect.
	for _, x := range g.Rejecters(u) {
		if p[x] == graph.Legit {
			if pu == graph.Legit {
				gain += cfg.RejectWeight // switch makes it count
			} else {
				gain -= cfg.RejectWeight // switch un-counts the rejection
			}
		}
	}
	return gain
}

// applySwitch flips u in p and incrementally updates the bucket-list gains
// of u's still-free neighbours (Algorithm 1 line 14).
func (o *optimizer) applySwitch(p graph.Partition, u graph.NodeID, list bucketlist.List) {
	g, cfg := o.g, o.cfg
	oldPu := p[u]
	newPu := oldPu.Other()
	p[u] = newPu

	// Friendship (u, v): v's gain term for this edge is −w_F when v and u
	// share a region, +w_F otherwise; flipping u flips the term.
	for _, v := range g.Friends(u) {
		if !list.Contains(int(v)) {
			continue
		}
		if p[v] == newPu {
			list.Update(int(v), list.Gain(int(v))-2*cfg.FriendWeight)
		} else {
			list.Update(int(v), list.Gain(int(v))+2*cfg.FriendWeight)
		}
	}
	if cfg.RejectWeight == 0 {
		return
	}
	// Edge ⟨u, x⟩: from x's perspective a rejection cast on it by u. Its
	// contribution to gain(x) is nonzero only while u is Legit:
	// +w_R if x is Legit (switching x starts counting the edge),
	// −w_R if x is Suspect (switching x stops counting it).
	for _, x := range g.Rejected(u) {
		if !list.Contains(int(x)) {
			continue
		}
		delta := RejecterContrib(p[x], newPu, cfg.RejectWeight) -
			RejecterContrib(p[x], oldPu, cfg.RejectWeight)
		if delta != 0 {
			list.Update(int(x), list.Gain(int(x))+delta)
		}
	}
	// Edge ⟨x, u⟩: from x's perspective a rejection x cast on u. Its
	// contribution to gain(x) is nonzero only while u is Suspect:
	// −w_R if x is Legit, +w_R if x is Suspect.
	for _, x := range g.Rejecters(u) {
		if !list.Contains(int(x)) {
			continue
		}
		delta := RejectedContrib(p[x], newPu, cfg.RejectWeight) -
			RejectedContrib(p[x], oldPu, cfg.RejectWeight)
		if delta != 0 {
			list.Update(int(x), list.Gain(int(x))+delta)
		}
	}
}

// RejecterContrib is the contribution to gain(x) of a rejection edge
// ⟨rejecter, x⟩ cast on x, given the regions of x and the rejecter.
// Exported for the distributed engine, whose workers compute the same
// gains over graph shards.
func RejecterContrib(px, pRejecter graph.Region, wR int64) int64 {
	if pRejecter != graph.Legit {
		return 0
	}
	if px == graph.Legit {
		return wR
	}
	return -wR
}

// RejectedContrib is the contribution to gain(x) of a rejection edge
// ⟨x, target⟩ cast by x, given the regions of x and the target.
// Exported for the distributed engine; see RejecterContrib.
func RejectedContrib(px, pTarget graph.Region, wR int64) int64 {
	if pTarget != graph.Suspect {
		return 0
	}
	if px == graph.Legit {
		return -wR
	}
	return wR
}

// Validate checks the Config against a graph, returning a descriptive
// error instead of the panics Partition raises. Exported for callers that
// accept configs from flags or files.
func (cfg Config) Validate(g *graph.Graph) error {
	if cfg.FriendWeight <= 0 {
		return fmt.Errorf("kl: FriendWeight %d must be positive", cfg.FriendWeight)
	}
	if cfg.RejectWeight < 0 {
		return fmt.Errorf("kl: RejectWeight %d must be non-negative", cfg.RejectWeight)
	}
	if cfg.Pinned != nil && len(cfg.Pinned) != g.NumNodes() {
		return fmt.Errorf("kl: Pinned length %d != %d nodes", len(cfg.Pinned), g.NumNodes())
	}
	if cfg.MaxPasses < 0 {
		return fmt.Errorf("kl: MaxPasses %d must be non-negative", cfg.MaxPasses)
	}
	return nil
}
