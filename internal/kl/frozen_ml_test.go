package kl

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// contractRandom builds a random augmented graph and a random contraction
// of it, returning both snapshots and the coarse→partition projection map.
func contractRandom(r *rand.Rand, n int) (fine, coarse *graph.Frozen, coarseID []graph.NodeID, numCoarse int) {
	g := randomAugmented(r, n, r.IntN(4*n), r.IntN(3*n))
	fine = g.Freeze()
	numCoarse = 1 + r.IntN(n)
	coarseID = make([]graph.NodeID, n)
	perm := r.Perm(n)
	for c := 0; c < numCoarse; c++ {
		coarseID[perm[c]] = graph.NodeID(c)
	}
	for _, u := range perm[numCoarse:] {
		coarseID[u] = graph.NodeID(r.IntN(numCoarse))
	}
	coarse = fine.Contract(coarseID, numCoarse)
	return fine, coarse, coarseID, numCoarse
}

// TestWeightedSolveMatchesUnitSnapshot: contracting with the identity map
// produces a weighted snapshot with all-unit multiplicities and the same
// adjacency sets; solving it must agree with the unweighted snapshot on
// objective and statistics (adjacency order differs — Contract sorts — so
// tie-breaking may pick a different local optimum only if order matters,
// which the canonical snapshots rule out).
func TestWeightedSolveMatchesUnitSnapshot(t *testing.T) {
	ws := &Workspace{}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 51))
		n := 2 + r.IntN(30)
		g := randomAugmented(r, n, r.IntN(4*n), r.IntN(3*n))
		fz := g.FreezeCanonical()
		id := make([]graph.NodeID, n)
		for u := range id {
			id[u] = graph.NodeID(u)
		}
		unit := fz.Contract(id, n)
		if !unit.Weighted() {
			t.Error("identity contraction not weighted")
			return false
		}
		init := randomPartition(r, n)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(r.IntN(300))}
		want := PartitionFrozen(fz, init, cfg, nil)
		got := PartitionFrozen(unit, init, cfg, ws)
		if got.Objective != want.Objective || got.Stats != want.Stats || got.Passes != want.Passes {
			t.Errorf("seed %d: weighted unit solve diverged: got obj %d stats %+v, want obj %d stats %+v",
				seed, got.Objective, got.Stats, want.Objective, want.Stats)
			return false
		}
		for i := range want.Partition {
			if got.Partition[i] != want.Partition[i] {
				t.Errorf("seed %d: partitions differ at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedGainBruteForce: the weighted gain kernel must equal the
// objective difference of actually flipping the node, for both the dense
// and the brute-force Stats evaluation.
func TestWeightedGainBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 52))
		_, coarse, _, numCoarse := contractRandom(r, 2+r.IntN(30))
		cfg := Config{FriendWeight: 64, RejectWeight: int64(r.IntN(300))}
		p := randomPartition(r, numCoarse)
		obj := func(p graph.Partition) int64 {
			s := coarse.Stats(p)
			return int64(s.CrossFriendships)*cfg.FriendWeight -
				int64(s.RejIntoSuspect)*cfg.RejectWeight
		}
		o := frozenOptimizer{f: coarse, cfg: cfg, weighted: true}
		for u := 0; u < numCoarse; u++ {
			before := obj(p)
			p[u] = p[u].Other()
			after := obj(p)
			p[u] = p[u].Other()
			if got, want := o.gain(p, graph.NodeID(u)), before-after; got != want {
				t.Errorf("seed %d: gain(%d) = %d, want %d", seed, u, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedSolveStatsExact: on random contracted snapshots the
// incrementally tracked weighted statistics must equal a from-scratch
// weighted Stats walk, and the objective must never regress from init.
func TestWeightedSolveStatsExact(t *testing.T) {
	ws := &Workspace{}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 53))
		_, coarse, _, numCoarse := contractRandom(r, 2+r.IntN(40))
		init := randomPartition(r, numCoarse)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(r.IntN(300))}
		res := PartitionFrozen(coarse, init, cfg, ws)
		if res.Stats != coarse.Stats(res.Partition) {
			t.Errorf("seed %d: incremental stats %+v != walk %+v", seed, res.Stats, coarse.Stats(res.Partition))
			return false
		}
		initObj := func() int64 {
			s := coarse.Stats(init)
			return int64(s.CrossFriendships)*cfg.FriendWeight -
				int64(s.RejIntoSuspect)*cfg.RejectWeight
		}()
		if res.Objective > initObj {
			t.Errorf("seed %d: objective regressed %d -> %d", seed, initObj, res.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRefineFrozenActiveMask: inactive nodes must keep their init region;
// a nil mask must match PartitionFrozenFromStats exactly; stats stay exact.
func TestRefineFrozenActiveMask(t *testing.T) {
	ws := &Workspace{}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 54))
		n := 2 + r.IntN(40)
		g := randomAugmented(r, n, r.IntN(4*n), r.IntN(3*n))
		fz := g.Freeze()
		init := randomPartition(r, n)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(r.IntN(300))}
		active := make([]bool, n)
		for i := range active {
			active[i] = r.IntN(3) != 0
		}
		res := RefineFrozen(fz, init, fz.Stats(init), active, cfg, ws)
		for u := range init {
			if !active[u] && res.Partition[u] != init[u] {
				t.Errorf("seed %d: inactive node %d switched", seed, u)
				return false
			}
		}
		if res.Stats != fz.Stats(res.Partition) {
			t.Errorf("seed %d: refine stats drifted", seed)
			return false
		}
		full := RefineFrozen(fz, init, fz.Stats(init), nil, cfg, nil)
		want := PartitionFrozenFromStats(fz, init, fz.Stats(init), cfg, nil)
		if full.Objective != want.Objective || full.Stats != want.Stats || full.Passes != want.Passes {
			t.Errorf("seed %d: nil-mask refine diverged from PartitionFrozen", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceGrowZeroAllocs is the k-grid allocation-regression guard:
// one workspace Grown once for the largest node count and the widest gain
// range of a sweep must serve every solve of the sweep — ascending reject
// weights (the k-grid), shrinking graphs (the ladder's levels, the
// detector's residuals), boundary-masked refinement, weighted coarse
// snapshots — with zero allocations from the very first call.
func TestWorkspaceGrowZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 55))
	type job struct {
		f      *graph.Frozen
		init   graph.Partition
		stats  graph.CutStats
		active []bool
		cfg    Config
	}
	var jobs []job
	sizes := []int{400, 90, 250, 30}
	weights := []int64{2, 64, 96, 640, 2048} // the k-grid's ascending w_R
	for _, n := range sizes {
		g := randomAugmented(r, n, 4*n, 2*n)
		fz := g.Freeze()
		init := randomPartition(r, n)
		active := make([]bool, n)
		for i := range active {
			active[i] = r.IntN(2) == 0
		}
		for _, wR := range weights {
			cfg := Config{FriendWeight: 64, RejectWeight: wR}
			jobs = append(jobs, job{fz, init, fz.Stats(init), nil, cfg})
			jobs = append(jobs, job{fz, init, fz.Stats(init), active, cfg})
		}
	}
	// A weighted coarse job rides along: the ladder reuses the same pool.
	{
		rc := rand.New(rand.NewPCG(14, 56))
		_, coarse, _, numCoarse := contractRandom(rc, 300)
		init := randomPartition(rc, numCoarse)
		jobs = append(jobs, job{coarse, init, coarse.Stats(init),
			nil, Config{FriendWeight: 64, RejectWeight: 2048}})
	}

	maxN, maxAbs := 0, int64(0)
	for _, j := range jobs {
		if n := j.f.NumNodes(); n > maxN {
			maxN = n
		}
		if a := FrozenMaxAbsGain(j.f, j.cfg); a > maxAbs {
			maxAbs = a
		}
	}
	ws := &Workspace{}
	ws.Grow(maxN, 0, maxAbs)

	allocs := testing.AllocsPerRun(5, func() {
		for _, j := range jobs {
			RefineFrozen(j.f, j.init, j.stats, j.active, j.cfg, ws)
		}
	})
	if allocs != 0 {
		t.Fatalf("grown workspace allocated %.1f objects per sweep, want 0", allocs)
	}
}
