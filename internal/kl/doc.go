// Package kl implements the paper's extended Kernighan–Lin heuristic
// (Algorithm 1, §IV-C/§IV-D) on rejection-augmented social graphs.
//
// The classic KL/FM heuristic bipartitions an undirected graph to minimize
// cross-partition edges. Rejecto's extension differs in three ways:
//
//   - Edges are weighted and typed. A friendship crossing the cut costs
//     +FriendWeight; a rejection edge ⟨a, b⟩ *reduces* the objective by
//     RejectWeight, but only when it points from the Legit region into the
//     Suspect region (a ∈ Ū, b ∈ U). The pass therefore minimizes the
//     linearized objective |F(Ū,U)|·w_F − |R⃗⟨Ū,U⟩|·w_R, the fixed-point
//     form of |F(Ū,U)| − k·|R⃗⟨Ū,U⟩| with k = w_R/w_F.
//   - Node pairs are not interchanged; single nodes switch sides, because
//     the spammer/legitimate partition has no prescribed balance.
//   - Seed nodes are pinned to their region and never switch (§IV-F).
//
// Each pass greedily switches every free node once in max-gain order
// (tracked by a Fiduccia–Mattheyses bucket list), then rolls back to the
// prefix of switches with the highest cumulative objective reduction.
// Passes repeat until no prefix improves the objective.
package kl
