package kl

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// TestPartitionFrozenMatchesSlicePath: on randomized graphs, configs, and
// initial partitions — with and without pins — PartitionFrozen must return
// the identical partition, objective, cut statistics, and pass count as the
// seed slice-of-slices Partition.
func TestPartitionFrozenMatchesSlicePath(t *testing.T) {
	ws := &Workspace{} // shared across instances: reuse must not leak state
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 41))
		n := 2 + r.IntN(30)
		g := randomAugmented(r, n, r.IntN(4*n), r.IntN(3*n))
		init := randomPartition(r, n)
		cfg := Config{
			FriendWeight: 64,
			RejectWeight: int64(r.IntN(300)), // includes w_R = 0
		}
		if r.IntN(2) == 0 {
			pinned := make([]bool, n)
			for i := range pinned {
				pinned[i] = r.IntN(5) == 0
			}
			cfg.Pinned = pinned
		}

		want := Partition(g, init, cfg)
		got := PartitionFrozen(g.Freeze(), init, cfg, ws)

		if got.Objective != want.Objective || got.Passes != want.Passes || got.Stats != want.Stats {
			return false
		}
		// The introspection counters feed the tracing layer and must track
		// the seed path exactly too.
		if got.Switches != want.Switches || got.Rollbacks != want.Rollbacks {
			return false
		}
		if len(got.PassGains) != len(want.PassGains) || len(got.PassGains) != got.Passes {
			return false
		}
		for i := range want.PassGains {
			if got.PassGains[i] != want.PassGains[i] {
				return false
			}
		}
		for i := range want.Partition {
			if got.Partition[i] != want.Partition[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionFrozenStatsExact: the incrementally tracked statistics must
// equal a from-scratch Stats walk of the returned partition.
func TestPartitionFrozenStatsExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(25)
		g := randomAugmented(r, n, r.IntN(4*n), r.IntN(3*n))
		fz := g.Freeze()
		init := randomPartition(r, n)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(r.IntN(200))}
		res := PartitionFrozen(fz, init, cfg, nil)
		return res.Stats == fz.Stats(res.Partition)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionFrozenZeroAllocs: after one warm-up call, a PartitionFrozen
// solve through a Workspace — covering every pass it performs — must not
// allocate at all. This is also the observability layer's zero-overhead
// guard: the switch/rollback counters and the PassGains trajectory that
// feed solve.done events are tracked on this path unconditionally, so any
// allocation they introduced would fail here.
func TestPartitionFrozenZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 43))
	g := randomAugmented(r, 400, 1600, 900)
	fz := g.Freeze()
	init := randomPartition(r, 400)
	cfg := Config{FriendWeight: 64, RejectWeight: 96}

	ws := &Workspace{}
	PartitionFrozen(fz, init, cfg, ws) // warm up workspace buffers

	allocs := testing.AllocsPerRun(20, func() {
		PartitionFrozen(fz, init, cfg, ws)
	})
	if allocs != 0 {
		t.Fatalf("PartitionFrozen allocated %.1f objects per run, want 0", allocs)
	}
}

// TestPartitionFrozenWorkspaceAcrossGraphs: one workspace must serve
// differently sized graphs and gain ranges back to back, as the sweep and
// the iterative detector's shrinking residuals do.
func TestPartitionFrozenWorkspaceAcrossGraphs(t *testing.T) {
	ws := &Workspace{}
	r := rand.New(rand.NewPCG(11, 44))
	for _, n := range []int{30, 7, 120, 2, 64} {
		g := randomAugmented(r, n, 3*n, 2*n)
		init := randomPartition(r, n)
		cfg := Config{FriendWeight: 64, RejectWeight: int64(1 + r.IntN(2000))}
		want := Partition(g, init, cfg)
		got := PartitionFrozen(g.Freeze(), init, cfg, ws)
		if got.Objective != want.Objective || got.Stats != want.Stats {
			t.Fatalf("n=%d: frozen result diverged from slice path", n)
		}
	}
}

// TestPartitionFrozenNilWorkspace: a nil workspace must work.
func TestPartitionFrozenNilWorkspace(t *testing.T) {
	g := twoCommunities(6, 4)
	init := graph.NewPartition(12)
	res := PartitionFrozen(g.Freeze(), init, Config{FriendWeight: 64, RejectWeight: 128}, nil)
	want := Partition(g, init, Config{FriendWeight: 64, RejectWeight: 128})
	if res.Objective != want.Objective {
		t.Fatalf("objective = %d, want %d", res.Objective, want.Objective)
	}
}
