package kl

import (
	"repro/internal/bucketlist"
	"repro/internal/graph"
)

// Multilevel support: the weighted gain/switch kernels that let the frozen
// engine run on the contracted snapshots of internal/ml, the boundary-only
// refinement entry point of the uncoarsening ladder, and Workspace.Grow —
// the pooling hook that keeps the whole ladder allocation-free once warm.
//
// The weighted kernels are the unweighted ones with every adjacency entry
// counting its multiplicity: a coarse edge of weight w moves gains and cut
// statistics exactly as w parallel fine edges would, which is what makes a
// coarse KL pass equivalent to a (constrained) fine pass at 1/w the scan
// cost. They live behind frozenOptimizer.weighted so the unweighted hot
// path keeps its exact instruction sequence.

// RefineFrozen runs extended KL restricted to the active nodes: a node with
// active[u] false keeps its init region and is never entered into the gain
// structure, though it still shapes its neighbours' gains and the
// incremental cut statistics. This is the uncoarsening ladder's boundary
// refinement — after projecting a coarse cut one level down, only nodes
// near the cut can profitably switch, and restricting the bucket fill to
// them makes a refinement pass O(boundary) instead of O(V).
//
// active may be nil, which refines every node (PartitionFrozenFromStats).
// initStats must equal f.Stats(init); everything else — workspace reuse,
// result aliasing, byte-identical tie-breaking — is as documented on
// PartitionFrozen.
func RefineFrozen(f *graph.Frozen, init graph.Partition, initStats graph.CutStats, active []bool, cfg Config, ws *Workspace) Result {
	checkFrozenArgs(f, init, cfg)
	if active != nil && len(active) != f.NumNodes() {
		panic("kl: active length mismatch")
	}
	return partitionFrozen(f, init, initStats, cfg, active, ws)
}

// FrozenMaxAbsGain bounds any node's switch gain on f under cfg — the gain
// range a Workspace must accommodate. Exported so sweep drivers can Grow a
// workspace once for the widest configuration they will run (the largest
// RejectWeight of a k-grid) and stay allocation-free across every job.
func FrozenMaxAbsGain(f *graph.Frozen, cfg Config) int64 {
	return frozenMaxAbsGain(f, cfg)
}

// frozenMaxAbsGainWeighted is frozenMaxAbsGain with multiplicities: the
// bound is the weighted degree, since a supernode's switch moves every fine
// edge its coarse edges stand for.
func frozenMaxAbsGainWeighted(f *graph.Frozen, cfg Config) int64 {
	var maxAbs int64
	for u := 0; u < f.NumNodes(); u++ {
		wd := f.WeightedDegree(graph.NodeID(u))*cfg.FriendWeight +
			(f.WeightedInRejections(graph.NodeID(u))+f.WeightedOutRejections(graph.NodeID(u)))*cfg.RejectWeight
		if wd > maxAbs {
			maxAbs = wd
		}
	}
	return maxAbs
}

// Grow presizes ws for solves of up to n nodes, maxPasses passes (zero
// means DefaultMaxPasses) and gain range ±maxAbs, so that every subsequent
// PartitionFrozen/RefineFrozen call within those bounds performs zero
// allocations — including the first. The multilevel ladder calls it once
// with the level-0 node count and the sweep's widest gain range; the
// denseBuckets reset then reuses the same storage at every level and every
// k, shrinking in place (see denseBuckets.reset). Growing an already-grown
// workspace only reallocates the buffers that actually got bigger.
func (ws *Workspace) Grow(n, maxPasses int, maxAbs int64) {
	if maxPasses <= 0 {
		maxPasses = DefaultMaxPasses
	}
	if cap(ws.p) < n {
		ws.p = make(graph.Partition, n)
	}
	if cap(ws.seq) < n {
		ws.seq = make([]wsStep, 0, n)
	}
	if cap(ws.gains) < maxPasses {
		ws.gains = make([]int64, 0, maxPasses)
	}
	if bucketlist.PrefersDense(-maxAbs, maxAbs) {
		if ws.dense == nil {
			ws.dense = &denseBuckets{}
		}
		ws.dense.reset(n, -maxAbs, maxAbs)
	} else {
		ws.list = bucketlist.Renew(ws.list, n, -maxAbs, maxAbs)
	}
}

// gainWeighted is gain with multiplicities (see the package comment above).
func (o *frozenOptimizer) gainWeighted(p graph.Partition, u graph.NodeID) int64 {
	f, cfg := o.f, o.cfg
	pu := p[u]
	friends, fw := f.Friends(u), f.FriendWeights(u)
	var tot, same int64
	for i, v := range friends {
		w := int64(fw[i])
		tot += w
		if p[v] == pu {
			same += w
		}
	}
	gain := cfg.FriendWeight * (tot - 2*same)
	var suspectRejected int64
	out, ow := f.Rejected(u), f.RejectedWeights(u)
	for i, x := range out {
		if p[x] == graph.Suspect {
			suspectRejected += int64(ow[i])
		}
	}
	var legitRejecters int64
	in, iw := f.Rejecters(u), f.RejecterWeights(u)
	for i, x := range in {
		if p[x] == graph.Legit {
			legitRejecters += int64(iw[i])
		}
	}
	if pu == graph.Legit {
		return gain + cfg.RejectWeight*(legitRejecters-suspectRejected)
	}
	return gain + cfg.RejectWeight*(suspectRejected-legitRejecters)
}

// applySwitchWeighted is applySwitch with multiplicities: each neighbour's
// gain delta and each statistics delta scales by the edge weight.
func (o *frozenOptimizer) applySwitchWeighted(p graph.Partition, u graph.NodeID, list bucketlist.List, st *wsStep) {
	f, cfg := o.f, o.cfg
	oldPu := p[u]
	newPu := oldPu.Other()
	p[u] = newPu
	if oldPu == graph.Legit {
		st.dSusp = 1
	} else {
		st.dSusp = -1
	}

	friends, fw := f.Friends(u), f.FriendWeights(u)
	for i, v := range friends {
		w := fw[i]
		if p[v] == newPu {
			st.dCross -= w
			list.AdjustIfPresent(int(v), -2*cfg.FriendWeight*int64(w))
		} else {
			st.dCross += w
			list.AdjustIfPresent(int(v), 2*cfg.FriendWeight*int64(w))
		}
	}
	out, ow := f.Rejected(u), f.RejectedWeights(u)
	for i, x := range out {
		w := ow[i]
		if p[x] == graph.Suspect {
			if newPu == graph.Legit {
				st.dRejS += w
			} else {
				st.dRejS -= w
			}
		} else if newPu == graph.Suspect {
			st.dRejL += w
		} else {
			st.dRejL -= w
		}
		list.AdjustIfPresent(int(x), (RejecterContrib(p[x], newPu, cfg.RejectWeight)-
			RejecterContrib(p[x], oldPu, cfg.RejectWeight))*int64(w))
	}
	in, iw := f.Rejecters(u), f.RejecterWeights(u)
	for i, x := range in {
		w := iw[i]
		if p[x] == graph.Legit {
			if newPu == graph.Suspect {
				st.dRejS += w
			} else {
				st.dRejS -= w
			}
		} else if newPu == graph.Legit {
			st.dRejL += w
		} else {
			st.dRejL -= w
		}
		list.AdjustIfPresent(int(x), (RejectedContrib(p[x], newPu, cfg.RejectWeight)-
			RejectedContrib(p[x], oldPu, cfg.RejectWeight))*int64(w))
	}

	o.stats.CrossFriendships += int(st.dCross)
	o.stats.RejIntoSuspect += int(st.dRejS)
	o.stats.RejIntoLegit += int(st.dRejL)
	o.stats.SuspectSize += int(st.dSusp)
	o.stats.LegitSize -= int(st.dSusp)
}

// applySwitchDenseWeighted is applySwitchDense with multiplicities. The
// sign-form collapse of the rejection deltas carries over unchanged — only
// the magnitude scales by the weight.
func (o *frozenOptimizer) applySwitchDenseWeighted(p graph.Partition, u graph.NodeID, d *denseBuckets, st *wsStep) {
	f := o.f
	wF2, wR := 2*o.cfg.FriendWeight, o.cfg.RejectWeight
	oldPu := p[u]
	newPu := oldPu.Other()
	p[u] = newPu
	if oldPu == graph.Legit {
		st.dSusp = 1
	} else {
		st.dSusp = -1
	}

	friends, fw := f.Friends(u), f.FriendWeights(u)
	for i, v := range friends {
		w := fw[i]
		if p[v] == newPu {
			st.dCross -= w
			if d.present(int32(v)) {
				d.relink(int32(v), -wF2*int64(w))
			}
		} else {
			st.dCross += w
			if d.present(int32(v)) {
				d.relink(int32(v), wF2*int64(w))
			}
		}
	}
	out, ow := f.Rejected(u), f.RejectedWeights(u)
	for i, x := range out {
		w := ow[i]
		if p[x] == graph.Suspect {
			if newPu == graph.Legit {
				st.dRejS += w
			} else {
				st.dRejS -= w
			}
		} else if newPu == graph.Suspect {
			st.dRejL += w
		} else {
			st.dRejL -= w
		}
		if wR != 0 && d.present(int32(x)) {
			if p[x] == newPu {
				d.relink(int32(x), wR*int64(w))
			} else {
				d.relink(int32(x), -wR*int64(w))
			}
		}
	}
	in, iw := f.Rejecters(u), f.RejecterWeights(u)
	for i, x := range in {
		w := iw[i]
		if p[x] == graph.Legit {
			if newPu == graph.Suspect {
				st.dRejS += w
			} else {
				st.dRejS -= w
			}
		} else if newPu == graph.Legit {
			st.dRejL += w
		} else {
			st.dRejL -= w
		}
		if wR != 0 && d.present(int32(x)) {
			if p[x] == newPu {
				d.relink(int32(x), wR*int64(w))
			} else {
				d.relink(int32(x), -wR*int64(w))
			}
		}
	}

	o.stats.CrossFriendships += int(st.dCross)
	o.stats.RejIntoSuspect += int(st.dRejS)
	o.stats.RejIntoLegit += int(st.dRejL)
	o.stats.SuspectSize += int(st.dSusp)
	o.stats.LegitSize -= int(st.dSusp)
}
