package kl

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// benchWorld builds a two-region world with spam-style rejections.
func benchWorld(n int) (*graph.Graph, graph.Partition) {
	r := rand.New(rand.NewPCG(uint64(n), 3))
	half := n / 2
	g := graph.New(n)
	for i := 0; i < half; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%half))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+5)%half))
	}
	for i := half; i < n; i++ {
		for k := 0; k < 3; k++ {
			v := half + r.IntN(half)
			if v != i {
				g.AddFriendship(graph.NodeID(i), graph.NodeID(v))
			}
		}
		for req := 0; req < 8; req++ {
			target := graph.NodeID(r.IntN(half))
			if r.Float64() < 0.7 {
				g.AddRejection(target, graph.NodeID(i))
			} else {
				g.AddFriendship(graph.NodeID(i), target)
			}
		}
	}
	// Start from a noisy partition so passes have work to do.
	init := graph.NewPartition(n)
	for i := half; i < n; i++ {
		if i%3 != 0 {
			init[i] = graph.Suspect
		}
	}
	return g, init
}

func BenchmarkPartition(b *testing.B) {
	for _, n := range []int{2000, 20000} {
		g, init := benchWorld(n)
		cfg := Config{FriendWeight: 64, RejectWeight: 32}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Partition(g, init, cfg)
			}
		})
	}
}

// BenchmarkPartitionFrozen is BenchmarkPartition on the CSR snapshot with a
// reused workspace — the steady-state configuration of the MAAR sweep.
func BenchmarkPartitionFrozen(b *testing.B) {
	for _, n := range []int{2000, 20000} {
		g, init := benchWorld(n)
		f := g.Freeze()
		cfg := Config{FriendWeight: 64, RejectWeight: 32}
		ws := &Workspace{}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PartitionFrozen(f, init, cfg, ws)
			}
		})
	}
}

func BenchmarkGainInitialization(b *testing.B) {
	g, init := benchWorld(20000)
	cfg := Config{FriendWeight: 64, RejectWeight: 32}
	opt := &optimizer{g: g, cfg: cfg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink int64
		for u := 0; u < g.NumNodes(); u++ {
			sink += opt.gain(init, graph.NodeID(u))
		}
		if sink == 1<<62 {
			b.Fatal("unreachable")
		}
	}
}
