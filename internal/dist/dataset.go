package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// The dataset layer is a miniature RDD: immutable, partitioned collections
// of rows living on workers, transformed by named operations and rebuilt
// from lineage when a worker is lost. Go cannot ship closures across
// processes the way Spark ships JVM closures, so transformations are
// registered by name in a process-global registry that both master and
// worker binaries share (they link the same package, so registration at
// init time covers both sides of the RPC transport too).

// FlatMapFunc transforms one row into zero or more rows. Returning nil
// filters the row out; returning multiple rows expands it.
type FlatMapFunc func(row []byte) [][]byte

var (
	opMu  sync.RWMutex
	opReg = make(map[string]FlatMapFunc)
)

// RegisterOp registers a named flat-map operation. Registration must happen
// before any Transform using the name executes, typically from an init
// function. Re-registering a name panics: lineage replay depends on a
// name's meaning never changing.
func RegisterOp(name string, fn FlatMapFunc) {
	opMu.Lock()
	defer opMu.Unlock()
	if _, dup := opReg[name]; dup {
		panic(fmt.Sprintf("dist: op %q registered twice", name))
	}
	opReg[name] = fn
}

func lookupOp(name string) (FlatMapFunc, error) {
	opMu.RLock()
	defer opMu.RUnlock()
	fn, ok := opReg[name]
	if !ok {
		return nil, fmt.Errorf("dist: op %q not registered", name)
	}
	return fn, nil
}

// DatasetArgs is the worker-side dataset operation request.
type DatasetArgs struct {
	// Op is one of "store", "apply", "collect", "count", "drop".
	Op string
	// SourceName identifies the input dataset ("store" ignores it).
	SourceName string
	// TargetName identifies the output dataset for "store" and "apply".
	TargetName string
	// MapOp is the registered operation name for "apply".
	MapOp string
	// Rows carries the partition contents for "store".
	Rows [][]byte
	// Token, when non-zero, dedups the mutating ops (store/apply/drop):
	// the worker executes a given token at most once, so duplicated
	// deliveries and lost-reply retries are idempotent even for ops whose
	// bodies are not. Read-only ops ignore it.
	Token uint64
}

// DatasetReply carries dataset operation results.
type DatasetReply struct {
	Rows  [][]byte
	Count int64
}

// Dataset handles one dataset operation on the worker. A missing source
// dataset is reported as ErrStateLost — the master only names datasets it
// placed (or derived) here, so absence means this worker restarted empty
// and the lineage must be replayed.
func (w *Worker) Dataset(args *DatasetArgs, reply *DatasetReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	mutating := args.Op == "store" || args.Op == "apply" || args.Op == "drop"
	if mutating && args.Token != 0 {
		if w.seen.has(args.Token) {
			// Duplicate delivery of an already-executed mutation:
			// acknowledge without re-executing.
			return nil
		}
	}
	switch args.Op {
	case "store":
		w.datasets[args.TargetName] = args.Rows
	case "apply":
		src, ok := w.datasets[args.SourceName]
		if !ok {
			return fmt.Errorf("%w: dataset %q not on this worker", ErrStateLost, args.SourceName)
		}
		fn, err := lookupOp(args.MapOp)
		if err != nil {
			return err
		}
		var out [][]byte
		for _, row := range src {
			out = append(out, fn(row)...)
		}
		w.datasets[args.TargetName] = out
	case "collect":
		src, ok := w.datasets[args.SourceName]
		if !ok {
			return fmt.Errorf("%w: dataset %q not on this worker", ErrStateLost, args.SourceName)
		}
		reply.Rows = src
	case "count":
		src, ok := w.datasets[args.SourceName]
		if !ok {
			return fmt.Errorf("%w: dataset %q not on this worker", ErrStateLost, args.SourceName)
		}
		reply.Count = int64(len(src))
	case "drop":
		delete(w.datasets, args.SourceName)
	default:
		return fmt.Errorf("dist: unknown dataset op %q", args.Op)
	}
	if mutating && args.Token != 0 {
		// Recorded only on success — a failed attempt must stay
		// retryable under the same token.
		w.seen.add(args.Token)
	}
	return nil
}

// Dataset is the master-side handle of a distributed collection. Handles
// are immutable; Transform returns a new handle. Lineage (the chain of
// transforms back to the master-held source rows) is retained so a lost
// worker's partitions can be recomputed.
type Dataset struct {
	c    *Cluster
	name string

	// lineage
	parent *Dataset
	mapOp  string
	source [][][]byte // per-worker source rows; only set on root datasets
}

// CreateDataset partitions rows round-robin across workers and stores them.
// The source rows are retained master-side as the recovery lineage root.
func (c *Cluster) CreateDataset(name string, rows [][]byte) (*Dataset, error) {
	parts := make([][][]byte, c.Workers())
	for i, row := range rows {
		w := i % c.Workers()
		parts[w] = append(parts[w], row)
	}
	d := &Dataset{c: c, name: name, source: parts}
	for wk := 0; wk < c.Workers(); wk++ {
		if err := d.storeOn(wk); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (d *Dataset) storeOn(worker int) error {
	var rows [][]byte
	if d.source != nil {
		rows = d.source[worker]
	}
	args := &DatasetArgs{Op: "store", TargetName: d.name, Rows: rows, Token: d.c.nextToken()}
	return d.c.call(worker, CallDataset, args, &DatasetReply{})
}

// Name returns the dataset's cluster-wide identifier.
func (d *Dataset) Name() string { return d.name }

// Transform applies a registered flat-map op partition-wise, producing the
// dataset named target.
func (d *Dataset) Transform(target, mapOp string) (*Dataset, error) {
	if _, err := lookupOp(mapOp); err != nil {
		return nil, err
	}
	out := &Dataset{c: d.c, name: target, parent: d, mapOp: mapOp}
	for wk := 0; wk < d.c.Workers(); wk++ {
		if err := out.applyOn(wk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *Dataset) applyOn(worker int) error {
	args := &DatasetArgs{
		Op: "apply", SourceName: d.parent.name, TargetName: d.name,
		MapOp: d.mapOp, Token: d.c.nextToken(),
	}
	return d.c.call(worker, CallDataset, args, &DatasetReply{})
}

// rebuildOn replays the lineage of d onto one worker, bottom-up.
func (d *Dataset) rebuildOn(worker int) error {
	if d.parent != nil {
		if err := d.parent.rebuildOn(worker); err != nil {
			return err
		}
		return d.applyOn(worker)
	}
	return d.storeOn(worker)
}

// Collect gathers all partitions to the master. Row order is
// deterministic: worker order, then partition order.
func (d *Dataset) Collect() ([][]byte, error) {
	var out [][]byte
	for wk := 0; wk < d.c.Workers(); wk++ {
		var reply DatasetReply
		args := &DatasetArgs{Op: "collect", SourceName: d.name}
		if err := d.c.callWithRecovery(wk, CallDataset, args, &reply, d.rebuildOn); err != nil {
			return nil, err
		}
		out = append(out, reply.Rows...)
	}
	return out, nil
}

// Count returns the total number of rows across partitions.
func (d *Dataset) Count() (int64, error) {
	var total int64
	for wk := 0; wk < d.c.Workers(); wk++ {
		var reply DatasetReply
		args := &DatasetArgs{Op: "count", SourceName: d.name}
		if err := d.c.callWithRecovery(wk, CallDataset, args, &reply, d.rebuildOn); err != nil {
			return 0, err
		}
		total += reply.Count
	}
	return total, nil
}

// Drop releases the dataset's partitions on all workers. The handle (and
// its lineage) stays valid: like an unpersisted RDD, a later action on it
// (or on a derived dataset) recomputes the partitions from lineage.
func (d *Dataset) Drop() error {
	for wk := 0; wk < d.c.Workers(); wk++ {
		args := &DatasetArgs{Op: "drop", SourceName: d.name, Token: d.c.nextToken()}
		if err := d.c.call(wk, CallDataset, args, &DatasetReply{}); err != nil {
			return err
		}
	}
	return nil
}

// EncodeRow gob-encodes a typed value into a dataset row.
func EncodeRow[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: encode row: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRow decodes a row produced by EncodeRow.
func DecodeRow[T any](row []byte) (T, error) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(row)).Decode(&v); err != nil {
		return v, fmt.Errorf("dist: decode row: %w", err)
	}
	return v, nil
}

// RegisteredOps lists the registered op names, sorted; useful for
// diagnostics.
func RegisteredOps() []string {
	opMu.RLock()
	defer opMu.RUnlock()
	names := make([]string, 0, len(opReg))
	for name := range opReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
