package dist

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// testWorld builds a small planted spam world (mirroring core's tests).
func testWorld(seed uint64, nL, nF int) (*graph.Graph, []bool, core.Seeds) {
	r := rand.New(rand.NewPCG(seed, 101))
	g := graph.New(nL + nF)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+7)%nL))
	}
	for i := 0; i < nL/2; i++ {
		u, v := r.IntN(nL), r.IntN(nL)
		if u != v {
			g.AddRejection(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 4 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(nL+r.IntN(i)))
		}
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	isFake := make([]bool, nL+nF)
	for i := nL; i < nL+nF; i++ {
		isFake[i] = true
	}
	var seeds core.Seeds
	for i := 0; i < 16; i++ {
		seeds.Legit = append(seeds.Legit, graph.NodeID(i*nL/16))
		seeds.Spammer = append(seeds.Spammer, graph.NodeID(nL+i*nF/16))
	}
	return g, isFake, seeds
}

func TestShardsPartitionTheGraph(t *testing.T) {
	g, _, _ := testWorld(1, 100, 40)
	shards := MakeShards(g, 7)
	if len(shards) != 7 {
		t.Fatalf("shards = %d, want 7", len(shards))
	}
	covered := 0
	friendTotal, rejTotal := 0, 0
	for _, sh := range shards {
		covered += sh.NumNodes()
		friendTotal += len(sh.FriendDst)
		rejTotal += len(sh.RejOutDst)
		for u := sh.Lo; u < sh.Hi; u++ {
			wantFriends := g.Friends(graph.NodeID(u))
			gotFriends := sh.friends(u)
			if len(wantFriends) != len(gotFriends) {
				t.Fatalf("node %d friends mismatch", u)
			}
			for i := range wantFriends {
				if int32(wantFriends[i]) != gotFriends[i] {
					t.Fatalf("node %d friend %d mismatch", u, i)
				}
			}
		}
	}
	if covered != g.NumNodes() {
		t.Fatalf("shards cover %d nodes, want %d", covered, g.NumNodes())
	}
	if friendTotal != 2*g.NumFriendships() || rejTotal != g.NumRejections() {
		t.Fatalf("shards hold %d friend entries and %d rejections; want %d, %d",
			friendTotal, rejTotal, 2*g.NumFriendships(), g.NumRejections())
	}
}

func TestClusterFetch(t *testing.T) {
	g, _, _ := testWorld(2, 80, 30)
	c := NewLocalCluster(3, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	adjs, err := c.fetch([]int32{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 3 {
		t.Fatalf("fetched %d records, want 3", len(adjs))
	}
	for _, adj := range adjs {
		want := g.Friends(graph.NodeID(adj.Node))
		if len(adj.Friends) != len(want) {
			t.Fatalf("node %d adjacency mismatch", adj.Node)
		}
	}
	if io := c.IO(); io.Calls == 0 || io.BytesRecv == 0 {
		t.Fatalf("traffic not accounted: %+v", io)
	}
}

func TestClusterCutStatsMatchesLocal(t *testing.T) {
	g, isFake, _ := testWorld(3, 120, 50)
	c := NewLocalCluster(4, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 3); err != nil {
		t.Fatal(err)
	}
	p := graph.NewPartition(g.NumNodes())
	pb := newBitset(g.NumNodes())
	for u := range p {
		if isFake[u] {
			p[u] = graph.Suspect
			pb.set(int32(u), true)
		}
	}
	want := p.Stats(g)
	got, err := c.cutStats(pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(got.CrossFriendships) != want.CrossFriendships ||
		int(got.RejIntoSuspect) != want.RejIntoSuspect ||
		int(got.RejIntoLegit) != want.RejIntoLegit {
		t.Fatalf("distributed cut stats %+v != local %+v", got, want)
	}
}

func TestGatherGainsAliveFiltering(t *testing.T) {
	g, _, _ := testWorld(4, 60, 20)
	n := g.NumNodes()
	c := NewLocalCluster(2, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 1); err != nil {
		t.Fatal(err)
	}
	// Probe degrees with the (wF=-1, wR=0) trick, then kill node 0's
	// neighbourhood and check degrees drop.
	allLegit := newBitset(n)
	deg, err := c.gatherGains(n, allLegit, nil, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if int(deg[u]) != g.Degree(graph.NodeID(u)) {
			t.Fatalf("degree probe wrong at %d: %d != %d", u, deg[u], g.Degree(graph.NodeID(u)))
		}
	}
	alive := newBitset(n)
	for u := 1; u < n; u++ {
		alive.set(int32(u), true)
	}
	deg2, err := c.gatherGains(n, allLegit, alive, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Friends(0) {
		if deg2[v] != deg[v]-1 {
			t.Fatalf("alive filtering did not drop node 0 from %d's degree", v)
		}
	}
	if deg2[0] != 0 {
		t.Fatalf("dead node degree = %d, want 0", deg2[0])
	}
}

// TestDistributedDetectionMatchesCore is the engine's anchor test: the
// distributed detector must produce exactly the same suspect set as the
// single-machine detector, round for round.
func TestDistributedDetectionMatchesCore(t *testing.T) {
	g, _, seeds := testWorld(5, 300, 120)
	n := g.NumNodes()

	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 7}
	local, err := core.Detect(g, core.DetectorOptions{Cut: cutOpts, TargetCount: 120})
	if err != nil {
		t.Fatal(err)
	}

	c := NewLocalCluster(4, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	cfg := DetectorConfig{Cut: cutOpts, TargetCount: 120}
	det := NewDetector(c, n, cfg)
	remote, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(remote.Suspects) != len(local.Suspects) {
		t.Fatalf("suspect counts differ: dist %d, core %d", len(remote.Suspects), len(local.Suspects))
	}
	localSet := make(map[graph.NodeID]bool, len(local.Suspects))
	for _, u := range local.Suspects {
		localSet[u] = true
	}
	for _, u := range remote.Suspects {
		if !localSet[u] {
			t.Fatalf("distributed detector flagged %d, core did not", u)
		}
	}
	if len(remote.Groups) != len(local.Groups) {
		t.Fatalf("group counts differ: dist %d, core %d", len(remote.Groups), len(local.Groups))
	}
	for i := range remote.Groups {
		if remote.Groups[i].Acceptance != local.Groups[i].Acceptance {
			t.Fatalf("group %d acceptance differs: %v vs %v",
				i, remote.Groups[i].Acceptance, local.Groups[i].Acceptance)
		}
	}
}

func TestPrefetcherReducesRoundTrips(t *testing.T) {
	g, _, seeds := testWorld(6, 300, 120)
	run := func(batch int) (int64, int64) {
		c := NewLocalCluster(4, 0)
		defer c.Close()
		if err := c.LoadGraph(g, 2); err != nil {
			t.Fatal(err)
		}
		cfg := DetectorConfig{
			Cut:           core.CutOptions{Seeds: seeds, RandSeed: 7},
			TargetCount:   120,
			PrefetchBatch: batch,
		}
		det := NewDetector(c, g.NumNodes(), cfg)
		if _, err := det.Detect(cfg); err != nil {
			t.Fatal(err)
		}
		served, _, misses := det.Prefetcher().Stats()
		return served, misses
	}
	servedA, missesA := run(1)   // no batching: every fresh node is a miss
	servedB, missesB := run(128) // batched prefetch
	if servedA != servedB {
		t.Fatalf("served counts differ across batch sizes: %d vs %d", servedA, servedB)
	}
	if missesB*4 > missesA {
		t.Fatalf("prefetching did not cut misses: batch=1 → %d, batch=128 → %d", missesA, missesB)
	}
}

func TestWorkerFailureRecovery(t *testing.T) {
	g, _, seeds := testWorld(7, 200, 80)
	c := NewLocalCluster(3, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	// Kill a worker, then run a full detection: callWithRecovery must
	// rebuild the lost shards from lineage and finish correctly.
	FailWorker(c.transport, 1)
	cfg := DetectorConfig{Cut: core.CutOptions{Seeds: seeds, RandSeed: 7}, TargetCount: 80}
	det := NewDetector(c, g.NumNodes(), cfg)
	remote, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Detect(g, core.DetectorOptions{
		Cut: core.CutOptions{Seeds: seeds, RandSeed: 7}, TargetCount: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Suspects) != len(local.Suspects) {
		t.Fatalf("post-recovery detection differs: %d vs %d suspects",
			len(remote.Suspects), len(local.Suspects))
	}
}

func TestVirtualLatencyAccounting(t *testing.T) {
	g, _, _ := testWorld(8, 50, 20)
	c := NewLocalCluster(2, 100) // 100ns per call
	defer c.Close()
	if err := c.LoadGraph(g, 1); err != nil {
		t.Fatal(err)
	}
	io := c.IO()
	if got := c.VirtualLatency(); got != 100*2 { // two LoadShard calls
		t.Fatalf("virtual latency = %v after %d calls, want 200ns", got, io.Calls)
	}
}
