package dist

import (
	"repro/internal/graph"
)

// Shard is one worker-resident partition of the augmented social graph: the
// adjacency of the node range [Lo, Hi) in CSR (offset/index) form, which is
// compact in memory and cheap to gob-encode.
type Shard struct {
	ID     int
	Lo, Hi int32 // node range [Lo, Hi)

	// Friendship adjacency: neighbours of node u are
	// FriendDst[FriendOff[u-Lo]:FriendOff[u-Lo+1]].
	FriendOff []int32
	FriendDst []int32
	// Rejections cast on u (edges ⟨x, u⟩): sources in RejInSrc.
	RejInOff []int32
	RejInSrc []int32
	// Rejections cast by u (edges ⟨u, x⟩): targets in RejOutDst.
	RejOutOff []int32
	RejOutDst []int32
}

// NumNodes reports the shard's node count.
func (s *Shard) NumNodes() int { return int(s.Hi - s.Lo) }

// friends returns u's friendship neighbours; u must be in [Lo, Hi).
func (s *Shard) friends(u int32) []int32 {
	i := u - s.Lo
	return s.FriendDst[s.FriendOff[i]:s.FriendOff[i+1]]
}

func (s *Shard) rejIn(u int32) []int32 {
	i := u - s.Lo
	return s.RejInSrc[s.RejInOff[i]:s.RejInOff[i+1]]
}

func (s *Shard) rejOut(u int32) []int32 {
	i := u - s.Lo
	return s.RejOutDst[s.RejOutOff[i]:s.RejOutOff[i+1]]
}

// NodeAdj is the adjacency record of a single node, the unit the master
// fetches (and prefetches) from workers during the switching phase.
type NodeAdj struct {
	Node    int32
	Friends []int32
	RejIn   []int32 // users that rejected Node's requests
	RejOut  []int32 // users whose requests Node rejected
}

// MakeShards cuts g into count contiguous node-range shards. It freezes g
// first; callers already holding a CSR snapshot should use MakeShardsFrozen.
func MakeShards(g *graph.Graph, count int) []Shard {
	return MakeShardsFrozen(g.Freeze(), count)
}

// MakeShardsFrozen cuts a CSR snapshot into count contiguous node-range
// shards. Since the snapshot is already in CSR form, each shard is filled
// by exact-size copies of the snapshot's adjacency rows — no append growth.
func MakeShardsFrozen(f *graph.Frozen, count int) []Shard {
	n := f.NumNodes()
	if count < 1 {
		count = 1
	}
	if count > n && n > 0 {
		count = n
	}
	shards := make([]Shard, 0, count)
	for i := 0; i < count; i++ {
		lo := int32(i * n / count)
		hi := int32((i + 1) * n / count)
		shards = append(shards, makeShard(f, i, lo, hi))
	}
	return shards
}

func makeShard(f *graph.Frozen, id int, lo, hi int32) Shard {
	var nF, nRI, nRO int32
	for u := lo; u < hi; u++ {
		nF += int32(f.Degree(graph.NodeID(u)))
		nRI += int32(f.InRejections(graph.NodeID(u)))
		nRO += int32(f.OutRejections(graph.NodeID(u)))
	}
	s := Shard{
		ID: id, Lo: lo, Hi: hi,
		FriendOff: make([]int32, 1, hi-lo+1),
		FriendDst: make([]int32, 0, nF),
		RejInOff:  make([]int32, 1, hi-lo+1),
		RejInSrc:  make([]int32, 0, nRI),
		RejOutOff: make([]int32, 1, hi-lo+1),
		RejOutDst: make([]int32, 0, nRO),
	}
	for u := lo; u < hi; u++ {
		for _, v := range f.Friends(graph.NodeID(u)) {
			s.FriendDst = append(s.FriendDst, int32(v))
		}
		s.FriendOff = append(s.FriendOff, int32(len(s.FriendDst)))
		for _, v := range f.Rejecters(graph.NodeID(u)) {
			s.RejInSrc = append(s.RejInSrc, int32(v))
		}
		s.RejInOff = append(s.RejInOff, int32(len(s.RejInSrc)))
		for _, v := range f.Rejected(graph.NodeID(u)) {
			s.RejOutDst = append(s.RejOutDst, int32(v))
		}
		s.RejOutOff = append(s.RejOutOff, int32(len(s.RejOutDst)))
	}
	return s
}

// bitset is a packed bool vector used to broadcast the partition and the
// liveness mask to workers: 1 bit per node instead of 1 byte.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int32, v bool) {
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// sizeOf estimates the wire size of the supported message types for the
// local transport's byte accounting. It intentionally under-approximates
// encoding overhead: the point is the scaling shape, not codec detail.
func sizeOf(v any) int64 {
	switch m := v.(type) {
	case nil:
		return 0
	case *LoadShardArgs:
		return 16 + 4*int64(len(m.Shard.FriendOff)+len(m.Shard.FriendDst)+
			len(m.Shard.RejInOff)+len(m.Shard.RejInSrc)+
			len(m.Shard.RejOutOff)+len(m.Shard.RejOutDst))
	case *FetchArgs:
		return 4 * int64(len(m.Nodes))
	case *FetchReply:
		total := int64(0)
		for _, a := range m.Adj {
			total += 16 + 4*int64(len(a.Friends)+len(a.RejIn)+len(a.RejOut))
		}
		return total
	case *ComputeGainsArgs:
		return 16 + 8*int64(len(m.Partition)+len(m.Alive))
	case *ComputeGainsReply:
		return 8 * int64(len(m.Gains))
	case *CutStatsArgs:
		return 8 * int64(len(m.Partition)+len(m.Alive))
	case *CutStatsReply:
		return 24
	case *DatasetArgs:
		total := int64(len(m.Op) + len(m.SourceName) + 16)
		for _, row := range m.Rows {
			total += int64(len(row)) + 4
		}
		return total
	case *DatasetReply:
		total := int64(8)
		for _, row := range m.Rows {
			total += int64(len(row)) + 4
		}
		return total
	case *struct{}:
		return 0
	default:
		return 8
	}
}
