package dist

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// TestShardRangeErrorTyped pins the satellite contract: shardOf/workerOf
// report an uncovered node as a typed *ShardRangeError carrying the
// offending ID, extractable with errors.As — the flat message used to lose
// which ID was out of range.
func TestShardRangeErrorTyped(t *testing.T) {
	loaded := NewLocalCluster(2, 0)
	defer loaded.Close()
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%8))
	}
	if err := loaded.LoadGraph(g, 2); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	empty := NewLocalCluster(1, 0)
	defer empty.Close()

	cases := []struct {
		name       string
		c          *Cluster
		node       int32
		wantErr    bool
		wantShards int
	}{
		{"covered low", loaded, 0, false, 0},
		{"covered high", loaded, 7, false, 0},
		{"negative", loaded, -1, true, 4},
		{"just past range", loaded, 8, true, 4},
		{"far past range", loaded, 1 << 20, true, 4},
		{"no graph loaded", empty, 3, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, resolve := range []struct {
				name string
				fn   func(int32) (int, error)
			}{
				{"shardOf", tc.c.shardOf},
				{"workerOf", tc.c.workerOf},
			} {
				_, err := resolve.fn(tc.node)
				if !tc.wantErr {
					if err != nil {
						t.Fatalf("%s(%d): unexpected error %v", resolve.name, tc.node, err)
					}
					continue
				}
				if err == nil {
					t.Fatalf("%s(%d): want error, got nil", resolve.name, tc.node)
				}
				var sre *ShardRangeError
				if !errors.As(err, &sre) {
					t.Fatalf("%s(%d): error %v is not a *ShardRangeError", resolve.name, tc.node, err)
				}
				if sre.Node != tc.node {
					t.Errorf("%s(%d): error carries node %d", resolve.name, tc.node, sre.Node)
				}
				if sre.Shards != tc.wantShards {
					t.Errorf("%s(%d): error reports %d shards, want %d", resolve.name, tc.node, sre.Shards, tc.wantShards)
				}
			}
		})
	}
}

// TestRegisterClearedOnReset pins the extension-handler lifecycle: a
// registered method dispatches, a reset worker answers it with
// ErrStateLost (the recovery trigger), and re-registration restores it.
func TestRegisterClearedOnReset(t *testing.T) {
	w := NewWorker()
	type pingArgs struct{ X int }
	type pingReply struct{ X int }
	echo := func(args, reply any) error {
		reply.(*pingReply).X = args.(*pingArgs).X
		return nil
	}
	const method = Call("Ext.Echo")
	w.Register(method, echo)
	var rep pingReply
	if err := w.dispatch(method, &pingArgs{X: 7}, &rep); err != nil || rep.X != 7 {
		t.Fatalf("dispatch after Register: reply %d, err %v", rep.X, err)
	}
	w.reset()
	if err := w.dispatch(method, &pingArgs{X: 7}, &rep); !errors.Is(err, ErrStateLost) {
		t.Fatalf("dispatch after reset: err %v, want ErrStateLost", err)
	}
	w.Register(method, echo)
	rep = pingReply{}
	if err := w.dispatch(method, &pingArgs{X: 9}, &rep); err != nil || rep.X != 9 {
		t.Fatalf("dispatch after re-Register: reply %d, err %v", rep.X, err)
	}

	// A method that was never registered while other extensions are live is
	// a programming error, not a crash-restart: it must NOT be ErrStateLost,
	// or the recovery path would retry a bug to exhaustion.
	if err := w.dispatch(Call("Ext.Typo"), &pingArgs{X: 1}, &rep); err == nil || errors.Is(err, ErrStateLost) {
		t.Fatalf("dispatch of unregistered method with live extensions: err %v, want non-state-lost error", err)
	}
}
