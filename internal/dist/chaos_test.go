package dist

import (
	"testing"

	"repro/internal/core"
)

// TestMidDetectionWorkerFailure injects a one-shot worker failure in the
// middle of a distributed detection run and checks that lineage recovery
// lets the run finish with exactly the single-machine result. The detector
// keeps no state on workers beyond the (replayable) shards, so a mid-run
// loss must be fully transparent.
func TestMidDetectionWorkerFailure(t *testing.T) {
	g, _, seeds := testWorld(31, 250, 100)
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 3}

	local, err := core.Detect(g, core.DetectorOptions{Cut: cutOpts, TargetCount: 100})
	if err != nil {
		t.Fatal(err)
	}

	for _, failAt := range []int64{0, 10, 500} {
		c := NewLocalCluster(3, 0)
		if err := c.LoadGraph(g, 2); err != nil {
			t.Fatal(err)
		}
		if !FailWorkerAfter(c.transport, 1, failAt) {
			t.Fatal("FailWorkerAfter unsupported on local transport")
		}
		cfg := DetectorConfig{Cut: cutOpts, TargetCount: 100}
		det := NewDetector(c, g.NumNodes(), cfg)
		remote, err := det.Detect(cfg)
		if err != nil {
			t.Fatalf("failAt=%d: %v", failAt, err)
		}
		if len(remote.Suspects) != len(local.Suspects) {
			t.Fatalf("failAt=%d: %d suspects, want %d", failAt, len(remote.Suspects), len(local.Suspects))
		}
		for i := range remote.Suspects {
			if remote.Suspects[i] != local.Suspects[i] {
				t.Fatalf("failAt=%d: suspect %d differs after recovery", failAt, i)
			}
		}
		_ = c.Close()
	}
}

// TestDoubleFailure kills two different workers at different points of the
// same run.
func TestDoubleFailure(t *testing.T) {
	g, _, seeds := testWorld(32, 200, 80)
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 5}
	local, err := core.Detect(g, core.DetectorOptions{Cut: cutOpts, TargetCount: 80})
	if err != nil {
		t.Fatal(err)
	}
	c := NewLocalCluster(4, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	FailWorkerAfter(c.transport, 0, 20)
	FailWorkerAfter(c.transport, 3, 200)
	cfg := DetectorConfig{Cut: cutOpts, TargetCount: 80}
	det := NewDetector(c, g.NumNodes(), cfg)
	remote, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Suspects) != len(local.Suspects) {
		t.Fatalf("double failure changed detection: %d vs %d", len(remote.Suspects), len(local.Suspects))
	}
}
