// Chaos seed matrix: every canonical fault class is swept over a table of
// seeds, and every seeded run must produce a detection byte-identical to
// the fault-free baseline. The file lives in package dist_test because it
// layers internal/chaos (which imports dist) over the cluster.
//
// When a seed fails, the test prints a ready-to-run replay command and
// appends "class=<c> seed=<n>" to the file named by $CHAOS_FAILURES_FILE
// (CI uploads it as an artifact). Replay with:
//
//	go test ./internal/dist/ -run TestChaosReplay -chaos.class=<c> -chaos.seed=<n> -v
package dist_test

import (
	"flag"
	"fmt"
	mathrand "math/rand/v2"
	"os"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

var (
	chaosSeedFlag  = flag.Uint64("chaos.seed", 0, "replay this chaos seed via TestChaosReplay")
	chaosClassFlag = flag.String("chaos.class", "mixed", "fault class for -chaos.seed replay")
)

// chaosWorld plants the spam world the whole matrix runs on. It mirrors the
// package-internal testWorld (which an external test file cannot reach).
func chaosWorld(seed uint64, nL, nF int) (*graph.Graph, core.Seeds) {
	r := mathrand.New(mathrand.NewPCG(seed, 101))
	g := graph.New(nL + nF)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+7)%nL))
	}
	for i := 0; i < nL/2; i++ {
		u, v := r.IntN(nL), r.IntN(nL)
		if u != v {
			g.AddRejection(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 4 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(nL+r.IntN(i)))
		}
		for req := 0; req < 10; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	var seeds core.Seeds
	for i := 0; i < 16; i++ {
		seeds.Legit = append(seeds.Legit, graph.NodeID(i*nL/16))
		seeds.Spammer = append(seeds.Spammer, graph.NodeID(nL+i*nF/16))
	}
	return g, seeds
}

// matrixSetup is the fixed world and detection config every matrix (and
// replay) run uses — a replayed seed must see the exact call sequence the
// matrix saw.
func matrixSetup() (*graph.Graph, dist.DetectorConfig) {
	g, seeds := chaosWorld(41, 200, 80)
	cfg := dist.DetectorConfig{
		Cut:         core.CutOptions{Seeds: seeds, RandSeed: 11},
		TargetCount: 80,
	}
	return g, cfg
}

// matrixSeeds is the per-class seed table: 32 seeds, disjoint across
// classes so the matrix explores 192 distinct schedules.
func matrixSeeds(class string) []uint64 {
	n := 32
	if testing.Short() {
		n = 6
	}
	base := uint64(1)
	for _, c := range chaos.ClassNames() {
		if c == class {
			break
		}
		base += 1000
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// reportChaosFailure prints the replay one-liner and records the seed for
// the CI artifact.
func reportChaosFailure(t *testing.T, class string, f chaos.Failure) {
	t.Helper()
	t.Errorf("%s\nreplay: go test ./internal/dist/ -run TestChaosReplay -chaos.class=%s -chaos.seed=%d -v",
		f, class, f.Seed)
	if path := os.Getenv("CHAOS_FAILURES_FILE"); path != "" {
		fh, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("cannot record failing seed: %v", err)
			return
		}
		fmt.Fprintf(fh, "class=%s seed=%d\n", class, f.Seed)
		fh.Close()
	}
}

// TestChaosSeedMatrix is the engine's fault-tolerance contract: under
// every canonical fault class and every tabled seed, detection results are
// byte-identical to the fault-free run — faults may cost retries, virtual
// time and traffic, but never results.
func TestChaosSeedMatrix(t *testing.T) {
	g, cfg := matrixSetup()
	for _, class := range chaos.ClassNames() {
		mix, ok := chaos.Class(class)
		if !ok {
			t.Fatalf("class %q missing", class)
		}
		t.Run(class, func(t *testing.T) {
			t.Parallel()
			sc := chaos.Scenario{Faults: mix}
			rep, err := sc.Verify(g, cfg, matrixSeeds(class))
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Baseline.Suspects) == 0 {
				t.Fatal("baseline found no suspects — the matrix world is vacuous")
			}
			if rep.TotalFaults() == 0 {
				t.Fatalf("class %q injected no faults over %d runs", class, len(rep.Runs))
			}
			for _, f := range rep.Failures {
				reportChaosFailure(t, class, f)
			}
		})
	}
}

// TestChaosScheduleReproducible asserts the other half of the acceptance
// contract: one seed yields one fault schedule, byte-for-byte, across
// independent invocations — which is what makes every matrix failure
// replayable from its seed alone.
func TestChaosScheduleReproducible(t *testing.T) {
	g, cfg := matrixSetup()
	mix, _ := chaos.Class("mixed")
	sc := chaos.Scenario{Faults: mix}
	a, err := sc.Run(g, cfg, 97)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(g, cfg, 97)
	if err != nil {
		t.Fatal(err)
	}
	if a.Calls != b.Calls {
		t.Fatalf("same seed, different call counts: %d vs %d", a.Calls, b.Calls)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("same seed, different fault schedules: %d vs %d faults", len(a.Faults), len(b.Faults))
	}
	if len(a.Faults) == 0 {
		t.Fatal("mixed class injected nothing — reproducibility check is vacuous")
	}
	if diff := chaos.DiffDetections(a.Detection, b.Detection); diff != "" {
		t.Fatalf("same seed, different detections: %s", diff)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("same seed, different virtual time: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

// TestChaosReplay re-executes one matrix seed with the fault log printed,
// for debugging a failure reported by TestChaosSeedMatrix. It is a no-op
// without -chaos.seed.
func TestChaosReplay(t *testing.T) {
	if *chaosSeedFlag == 0 {
		t.Skip("pass -chaos.seed (and -chaos.class) to replay a matrix seed")
	}
	mix, ok := chaos.Class(*chaosClassFlag)
	if !ok {
		t.Fatalf("unknown -chaos.class %q; have %v", *chaosClassFlag, chaos.ClassNames())
	}
	g, cfg := matrixSetup()
	sc := chaos.Scenario{Faults: mix}
	base, err := sc.Baseline(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(g, cfg, *chaosSeedFlag)
	for _, rec := range res.Faults {
		t.Logf("%s", rec)
	}
	t.Logf("%d calls, %d faults, %v virtual time, io: %s",
		res.Calls, len(res.Faults), res.Elapsed, res.IO)
	if err != nil {
		t.Fatalf("seed %d: detection failed: %v", *chaosSeedFlag, err)
	}
	if diff := chaos.DiffDetections(base, res.Detection); diff != "" {
		t.Fatalf("seed %d: %s", *chaosSeedFlag, diff)
	}
}

// TestMidDetectionWorkerFailure injects a one-shot worker failure in the
// middle of a distributed detection run and checks that lineage recovery
// lets the run finish with exactly the single-machine result. The detector
// keeps no state on workers beyond the (replayable) shards, so a mid-run
// loss must be fully transparent.
func TestMidDetectionWorkerFailure(t *testing.T) {
	g, seeds := chaosWorld(31, 250, 100)
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 3}

	local, err := core.Detect(g, core.DetectorOptions{Cut: cutOpts, TargetCount: 100})
	if err != nil {
		t.Fatal(err)
	}

	for _, failAt := range []int64{0, 10, 500} {
		c := dist.NewLocalCluster(3, 0)
		if err := c.LoadGraph(g, 2); err != nil {
			t.Fatal(err)
		}
		if !dist.FailWorkerAfter(c.Transport(), 1, failAt) {
			t.Fatal("FailWorkerAfter unsupported on local transport")
		}
		cfg := dist.DetectorConfig{Cut: cutOpts, TargetCount: 100}
		det := dist.NewDetector(c, g.NumNodes(), cfg)
		remote, err := det.Detect(cfg)
		if err != nil {
			t.Fatalf("failAt=%d: %v", failAt, err)
		}
		if len(remote.Suspects) != len(local.Suspects) {
			t.Fatalf("failAt=%d: %d suspects, want %d", failAt, len(remote.Suspects), len(local.Suspects))
		}
		for i := range remote.Suspects {
			if remote.Suspects[i] != local.Suspects[i] {
				t.Fatalf("failAt=%d: suspect %d differs after recovery", failAt, i)
			}
		}
		_ = c.Close()
	}
}

// TestDoubleFailure kills two different workers at different points of the
// same run.
func TestDoubleFailure(t *testing.T) {
	g, seeds := chaosWorld(32, 200, 80)
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 5}
	local, err := core.Detect(g, core.DetectorOptions{Cut: cutOpts, TargetCount: 80})
	if err != nil {
		t.Fatal(err)
	}
	c := dist.NewLocalCluster(4, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	dist.FailWorkerAfter(c.Transport(), 0, 20)
	dist.FailWorkerAfter(c.Transport(), 3, 200)
	cfg := dist.DetectorConfig{Cut: cutOpts, TargetCount: 80}
	det := dist.NewDetector(c, g.NumNodes(), cfg)
	remote, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Suspects) != len(local.Suspects) {
		t.Fatalf("double failure changed detection: %d vs %d", len(remote.Suspects), len(local.Suspects))
	}
}
