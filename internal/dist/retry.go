package dist

import (
	"errors"
	"time"
)

// The retry layer classifies call failures into three kinds and gives the
// master a deterministic policy for surviving the first two:
//
//   - transient: the call (or its reply) was lost in flight, or exceeded
//     the per-call timeout. The worker may or may not have executed it.
//     Retried in place with capped exponential backoff; every worker
//     method is idempotent (reads are pure, dataset mutations carry
//     dedup tokens), so re-execution is safe.
//   - worker down: the worker process is gone (ErrWorkerDown). Handled by
//     callWithRecovery: replace the worker if the transport can, rebuild
//     its state from lineage, and retry — repeatedly, because a
//     replacement can die mid-rebuild too.
//   - state lost: the worker answers but no longer holds the state the
//     master placed on it (ErrStateLost) — a crash-restart the master did
//     not orchestrate. Same lineage rebuild, no replacement needed.
//
// Everything is driven through a Clock so chaos tests can run the whole
// schedule — timeouts, backoff sleeps, injected latency — on virtual time.

// ErrTransient marks a call failure that may succeed if simply retried:
// an injected or real network fault where the request or reply was lost.
var ErrTransient = errors.New("dist: transient rpc error")

// ErrTimeout reports that a call's master-side duration exceeded the
// retry policy's per-call timeout. It is treated as transient: the call
// may have executed, so retries rely on worker idempotence.
var ErrTimeout = errors.New("dist: rpc timeout")

// ErrStateLost reports that a worker is reachable but has lost the shards
// or datasets the master loaded onto it — the signature of a worker that
// crashed and restarted empty. callWithRecovery responds by replaying the
// lineage onto the worker without replacing it.
var ErrStateLost = errors.New("dist: worker state lost")

// IsTransient reports whether err is worth retrying on the same worker
// without any recovery action.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}

// IsRecoverable reports whether err calls for the recovery path: reviving
// and/or rebuilding the worker's state from lineage before retrying.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrWorkerDown) || errors.Is(err, ErrStateLost)
}

// Clock abstracts time for the retry path — timeout measurement and
// backoff sleeps. The default RealClock uses the wall clock; chaos tests
// install a virtual clock so seeded fault schedules replay identically
// and backoff never actually sleeps.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// RetryPolicy configures the cluster's call-retry behaviour. The zero
// value means "use the defaults" everywhere it is accepted.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per call (first attempt included) for
	// transient failures. Default 4.
	MaxAttempts int
	// Timeout is the per-attempt budget on the cluster clock; a call whose
	// master-side duration exceeds it counts as failed-transient even if a
	// reply arrived (the real-world semantics: the master has already
	// given up, so the reply is dropped and the call retried). Zero
	// disables the check.
	Timeout time.Duration
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Defaults 5ms / 500ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RecoveryAttempts bounds the revive→rebuild→retry cycles in
	// callWithRecovery. Each cycle retries the call once; between cycles
	// the same capped backoff applies, which is what lets the master
	// outwait a worker that restarts on its own. Default 4.
	RecoveryAttempts int
	// JitterSeed seeds the deterministic backoff jitter stream. The
	// stream is independent of every algorithm stream, so retries never
	// perturb detection results. Default 1.
	JitterSeed uint64
}

// DefaultRetryPolicy returns the production defaults.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{}.WithDefaults() }

// WithDefaults fills zero fields with the defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.RecoveryAttempts <= 0 {
		p.RecoveryAttempts = 4
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

// backoffBase returns the un-jittered delay before retry number retry
// (1-based): BaseBackoff·2^(retry−1), capped at MaxBackoff.
func (p RetryPolicy) backoffBase(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}
