package dist

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// Test ops, registered once for the package's tests.
func init() {
	RegisterOp("test/double", func(row []byte) [][]byte {
		v := binary.LittleEndian.Uint32(row)
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, v*2)
		return [][]byte{out}
	})
	RegisterOp("test/keep-even", func(row []byte) [][]byte {
		if binary.LittleEndian.Uint32(row)%2 == 0 {
			return [][]byte{row}
		}
		return nil
	})
	RegisterOp("test/fanout3", func(row []byte) [][]byte {
		return [][]byte{row, row, row}
	})
}

func u32row(v uint32) []byte {
	row := make([]byte, 4)
	binary.LittleEndian.PutUint32(row, v)
	return row
}

func makeRows(n int) [][]byte {
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = u32row(uint32(i))
	}
	return rows
}

func TestDatasetCreateCollect(t *testing.T) {
	c := NewLocalCluster(3, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(10))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("collected %d rows, want 10", len(rows))
	}
	seen := make(map[uint32]bool)
	for _, row := range rows {
		seen[binary.LittleEndian.Uint32(row)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("rows lost or duplicated: %d distinct", len(seen))
	}
}

func TestDatasetTransformChain(t *testing.T) {
	c := NewLocalCluster(2, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(10))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := d.Transform("doubled", "test/double")
	if err != nil {
		t.Fatal(err)
	}
	evens, err := doubled.Transform("evens", "test/keep-even")
	if err != nil {
		t.Fatal(err)
	}
	count, err := evens.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 { // doubling makes everything even
		t.Fatalf("count = %d, want 10", count)
	}
	rows, err := evens.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if v := binary.LittleEndian.Uint32(row); v%2 != 0 || v >= 20 {
			t.Fatalf("unexpected row value %d", v)
		}
	}
}

func TestDatasetFanout(t *testing.T) {
	c := NewLocalCluster(2, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(4))
	if err != nil {
		t.Fatal(err)
	}
	tripled, err := d.Transform("tripled", "test/fanout3")
	if err != nil {
		t.Fatal(err)
	}
	count, err := tripled.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Fatalf("fanout count = %d, want 12", count)
	}
}

func TestDatasetUnknownOp(t *testing.T) {
	c := NewLocalCluster(1, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Transform("x", "test/does-not-exist"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDatasetLineageRecovery(t *testing.T) {
	c := NewLocalCluster(3, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(30))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := d.Transform("doubled", "test/double")
	if err != nil {
		t.Fatal(err)
	}
	// Kill a worker; its partitions (source AND derived) are lost. The
	// next Collect must rebuild them by replaying the lineage.
	FailWorker(c.transport, 1)
	rows, err := doubled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("post-recovery collect = %d rows, want 30", len(rows))
	}
	sum := uint64(0)
	for _, row := range rows {
		sum += uint64(binary.LittleEndian.Uint32(row))
	}
	if want := uint64(2 * 29 * 30 / 2); sum != want {
		t.Fatalf("post-recovery sum = %d, want %d", sum, want)
	}
}

func TestDatasetDrop(t *testing.T) {
	c := NewLocalCluster(2, 0)
	defer c.Close()
	d, err := c.CreateDataset("nums", makeRows(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Drop(); err != nil {
		t.Fatal(err)
	}
	// A dropped dataset is not invalidated — like an unpersisted RDD, a
	// later action recomputes it from lineage (the missing partitions
	// surface as ErrStateLost, and recovery replays the source rows).
	n, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recomputed count = %d, want 4", n)
	}
}

func TestEncodeDecodeRow(t *testing.T) {
	type pair struct{ A, B int }
	row, err := EncodeRow(pair{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow[pair](row)
	if err != nil {
		t.Fatal(err)
	}
	if got != (pair{3, 4}) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestRegisterOpTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterOp("test/dup", func(row []byte) [][]byte { return nil })
	RegisterOp("test/dup", func(row []byte) [][]byte { return nil })
}

func TestRegisteredOpsSorted(t *testing.T) {
	names := RegisteredOps()
	if len(names) < 3 {
		t.Fatalf("expected test ops registered, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("RegisteredOps not sorted")
		}
	}
}

func ExampleDataset() {
	c := NewLocalCluster(2, 0)
	defer c.Close()
	d, _ := c.CreateDataset("example", [][]byte{u32row(1), u32row(2), u32row(3)})
	doubled, _ := d.Transform("example-doubled", "test/double")
	n, _ := doubled.Count()
	fmt.Println(n)
	// Output: 3
}
