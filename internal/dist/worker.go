package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/kl"
)

// Worker holds graph shards and dataset partitions in its own memory, the
// role Spark executors play for the paper's prototype. All worker methods
// are pure with respect to master state: the master ships the current
// partition and liveness bitsets with every computation request.
type Worker struct {
	mu       sync.Mutex
	shards   []*Shard // sorted by Lo
	datasets map[string][][]byte
	// handlers holds extension methods installed with Register. Cleared
	// on reset like everything else: a replacement process comes up
	// without its extensions, and the first call to one answers
	// ErrStateLost so the master's recovery path reinstalls them.
	handlers map[Call]Handler
	// seen dedups mutating dataset calls by token, so a duplicated
	// delivery (or a retry of a call whose reply was lost) executes the
	// mutation exactly once. Cleared on reset: a fresh process genuinely
	// has not executed anything.
	seen tokenSet
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{datasets: make(map[string][][]byte)}
}

// reset drops all worker state, as when a worker process is replaced.
func (w *Worker) reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.shards = nil
	w.datasets = make(map[string][][]byte)
	w.handlers = nil
	w.seen = tokenSet{}
}

// Handler is an extension method body: args and reply are the pointer
// types the caller's Register contract fixes for the method. Handlers run
// outside the worker's mutex and must do their own synchronization.
type Handler func(args, reply any) error

// Register installs (or replaces) the handler for an extension method —
// the seam engines layered on dist use to put their own worker-side
// services (the sharded rejectod's journal/engine nodes) behind the same
// transport, retry, and recovery machinery as the built-in methods. Like
// shards and datasets, registrations are worker state: reset (a crash or
// replacement) clears them, and dispatch then answers the method with
// ErrStateLost so CallWithRecovery's rebuild closure reinstalls the
// extension before replaying its lineage.
func (w *Worker) Register(method Call, h Handler) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.handlers == nil {
		w.handlers = make(map[Call]Handler)
	}
	w.handlers[method] = h
}

// tokenSet remembers recently seen dedup tokens with a bounded ring:
// old tokens are evicted FIFO once the window fills. The window only
// needs to outlast one call's retry horizon, which it does by orders of
// magnitude.
type tokenSet struct {
	m    map[uint64]struct{}
	ring []uint64
	pos  int
}

const tokenWindow = 1 << 12

// has reports whether tok is in the window.
func (s *tokenSet) has(tok uint64) bool {
	_, ok := s.m[tok]
	return ok
}

// add records tok, evicting the oldest token once the window fills. Only
// successfully executed mutations are recorded — a failed attempt must
// stay retryable.
func (s *tokenSet) add(tok uint64) {
	if s.m == nil {
		s.m = make(map[uint64]struct{}, tokenWindow)
		s.ring = make([]uint64, tokenWindow)
	}
	if s.has(tok) {
		return
	}
	if old := s.ring[s.pos]; old != 0 {
		delete(s.m, old)
	}
	s.ring[s.pos] = tok
	s.pos = (s.pos + 1) % len(s.ring)
	s.m[tok] = struct{}{}
}

// LoadShardArgs carries a shard to a worker.
type LoadShardArgs struct {
	Shard Shard
}

// FetchArgs requests adjacency records; all nodes must live in the target
// worker's shards.
type FetchArgs struct {
	Nodes []int32
}

// FetchReply carries the requested adjacency records.
type FetchReply struct {
	Adj []NodeAdj
}

// ComputeGainsArgs asks a worker to compute the switch gain of every alive
// node it hosts, under the given partition and weights.
type ComputeGainsArgs struct {
	Partition bitset
	Alive     bitset // nil means all alive
	WF, WR    int64
}

// ComputeGainsReply returns gains concatenated over the worker's shards in
// ascending node order; dead nodes hold zero placeholders.
type ComputeGainsReply struct {
	Gains []int64
}

// CutStatsArgs asks for the worker's partial cut statistics.
type CutStatsArgs struct {
	Partition bitset
	Alive     bitset
}

// CutStatsReply carries partial sums; the master adds them up across
// workers. Friendships are counted once globally (by their low-endpoint
// owner); rejections by the owner of the casting node.
type CutStatsReply struct {
	CrossFriendships int64
	RejIntoSuspect   int64
	RejIntoLegit     int64
}

// dispatch routes a transport call to the worker implementation:
// registered extension handlers first, then the built-in method set.
func (w *Worker) dispatch(method Call, args, reply any) error {
	w.mu.Lock()
	h := w.handlers[method]
	registered := len(w.handlers)
	w.mu.Unlock()
	if h != nil {
		return h(args, reply)
	}
	switch method {
	case CallLoadShard:
		return w.LoadShard(args.(*LoadShardArgs), reply.(*struct{}))
	case CallFetch:
		return w.Fetch(args.(*FetchArgs), reply.(*FetchReply))
	case CallComputeGains:
		return w.ComputeGains(args.(*ComputeGainsArgs), reply.(*ComputeGainsReply))
	case CallCutStats:
		return w.CutStats(args.(*CutStatsArgs), reply.(*CutStatsReply))
	case CallDataset:
		return w.Dataset(args.(*DatasetArgs), reply.(*DatasetReply))
	case CallPing:
		return w.Ping(args.(*struct{}), reply.(*struct{}))
	default:
		if registered == 0 {
			// No extension handlers at all matches the post-reset state: a
			// crash-restart wiped the registrations, so report state lost
			// and let the master's recovery path reinstall the extension
			// and replay its lineage.
			return fmt.Errorf("%w: no handler for method %q", ErrStateLost, method)
		}
		// Other extensions are registered but not this method: that is a
		// programming error (unregistered or misspelled method), not a
		// recoverable crash — surface it instead of burning retries.
		return fmt.Errorf("dist: no handler for method %q", method)
	}
}

// Ping answers liveness probes.
func (w *Worker) Ping(_ *struct{}, _ *struct{}) error { return nil }

// LoadShard installs (or replaces) a shard on the worker.
func (w *Worker) LoadShard(args *LoadShardArgs, _ *struct{}) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	sh := args.Shard
	for i, existing := range w.shards {
		if existing.ID == sh.ID {
			w.shards[i] = &sh
			return nil
		}
	}
	w.shards = append(w.shards, &sh)
	sort.Slice(w.shards, func(i, j int) bool { return w.shards[i].Lo < w.shards[j].Lo })
	return nil
}

// shardFor locates the shard containing node u. A miss is reported as
// ErrStateLost: the master only routes a node here when its placement
// says this worker hosts it, so not holding the shard means the worker
// restarted empty and needs its lineage replayed.
func (w *Worker) shardFor(u int32) (*Shard, error) {
	i := sort.Search(len(w.shards), func(i int) bool { return w.shards[i].Hi > u })
	if i < len(w.shards) && w.shards[i].Lo <= u {
		return w.shards[i], nil
	}
	return nil, fmt.Errorf("%w: node %d not hosted on this worker", ErrStateLost, u)
}

// Fetch returns the adjacency records of the requested nodes.
func (w *Worker) Fetch(args *FetchArgs, reply *FetchReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.Adj = make([]NodeAdj, 0, len(args.Nodes))
	for _, u := range args.Nodes {
		sh, err := w.shardFor(u)
		if err != nil {
			return err
		}
		reply.Adj = append(reply.Adj, NodeAdj{
			Node:    u,
			Friends: sh.friends(u),
			RejIn:   sh.rejIn(u),
			RejOut:  sh.rejOut(u),
		})
	}
	return nil
}

// region converts a partition bit to the graph.Region it encodes.
func region(suspect bool) graph.Region {
	if suspect {
		return graph.Suspect
	}
	return graph.Legit
}

// ComputeGains computes the extended-KL switch gain for every alive hosted
// node — the distributed equivalent of the single-machine gain
// initialization, run worker-side so the graph never moves (§V).
func (w *Worker) ComputeGains(args *ComputeGainsArgs, reply *ComputeGainsReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.shards) == 0 {
		// A worker the master believes holds shards but doesn't has
		// restarted empty; answering with zero gains would silently
		// corrupt the round.
		return fmt.Errorf("%w: no shards loaded", ErrStateLost)
	}
	alive := func(u int32) bool { return args.Alive == nil || args.Alive.get(u) }
	total := 0
	for _, sh := range w.shards {
		total += sh.NumNodes()
	}
	reply.Gains = make([]int64, 0, total)
	for _, sh := range w.shards {
		for u := sh.Lo; u < sh.Hi; u++ {
			if !alive(u) {
				reply.Gains = append(reply.Gains, 0)
				continue
			}
			pu := region(args.Partition.get(u))
			var gain int64
			for _, v := range sh.friends(u) {
				if !alive(v) {
					continue
				}
				if region(args.Partition.get(v)) == pu {
					gain -= args.WF
				} else {
					gain += args.WF
				}
			}
			for _, x := range sh.rejOut(u) {
				if alive(x) {
					gain += kl.RejectedContrib(pu, region(args.Partition.get(x)), args.WR)
				}
			}
			for _, x := range sh.rejIn(u) {
				if alive(x) {
					gain += kl.RejecterContrib(pu, region(args.Partition.get(x)), args.WR)
				}
			}
			reply.Gains = append(reply.Gains, gain)
		}
	}
	return nil
}

// CutStats computes the worker's contribution to the global cut statistics.
// The reply is zeroed first: it accumulates, and under duplicated delivery
// or a lost-reply retry the same reply struct is presented twice — without
// the reset the second execution would double-count every edge.
func (w *Worker) CutStats(args *CutStatsArgs, reply *CutStatsReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	*reply = CutStatsReply{}
	if len(w.shards) == 0 {
		return fmt.Errorf("%w: no shards loaded", ErrStateLost)
	}
	alive := func(u int32) bool { return args.Alive == nil || args.Alive.get(u) }
	for _, sh := range w.shards {
		for u := sh.Lo; u < sh.Hi; u++ {
			if !alive(u) {
				continue
			}
			uSuspect := args.Partition.get(u)
			for _, v := range sh.friends(u) {
				if u < v && alive(v) && args.Partition.get(v) != uSuspect {
					reply.CrossFriendships++
				}
			}
			for _, v := range sh.rejOut(u) {
				if !alive(v) {
					continue
				}
				vSuspect := args.Partition.get(v)
				switch {
				case !uSuspect && vSuspect:
					reply.RejIntoSuspect++
				case uSuspect && !vSuspect:
					reply.RejIntoLegit++
				}
			}
		}
	}
	return nil
}
