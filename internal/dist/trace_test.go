package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

type traceLine struct {
	Ev     string  `json:"ev"`
	Round  int     `json:"round"`
	K      float64 `json:"k"`
	Detail string  `json:"detail"`
}

// TestDistributedTrace: a traced distributed detection must emit the same
// span taxonomy as core — freeze (from LoadGraph), rounds, sweeps, RPC
// boundaries — with per-round winners matching the detection, and tracing
// must not perturb the detection.
func TestDistributedTrace(t *testing.T) {
	g, _, seeds := testWorld(5, 300, 120)
	n := g.NumNodes()
	cutOpts := core.CutOptions{Seeds: seeds, RandSeed: 7}

	plain := detectOnce(t, g, n, DetectorConfig{Cut: cutOpts, TargetCount: 120}, nil)

	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	tracedOpts := cutOpts
	tracedOpts.Tracer = sink
	traced := detectOnce(t, g, n, DetectorConfig{Cut: tracedOpts, TargetCount: 120}, sink)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(traced.Suspects) != len(plain.Suspects) || traced.Rounds != plain.Rounds {
		t.Fatalf("tracing changed the detection: %d/%d suspects, %d/%d rounds",
			len(traced.Suspects), len(plain.Suspects), traced.Rounds, plain.Rounds)
	}

	seen := map[string]int{}
	winK := map[int]float64{}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var e traceLine
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d invalid: %v", i+1, err)
		}
		seen[e.Ev]++
		if e.Ev == obs.EvRoundDone {
			winK[e.Round] = e.K
		}
	}
	for _, ev := range []string{
		obs.EvFreeze, obs.EvDistShard, obs.EvDistRPC, obs.EvDetectStart,
		obs.EvRoundStart, obs.EvSweepStart, obs.EvSolveDone, obs.EvSweepDone,
		obs.EvPrune, obs.EvRoundDone, obs.EvDetectDone,
	} {
		if seen[ev] == 0 {
			t.Fatalf("trace has no %s events; taxonomy coverage broken (%v)", ev, seen)
		}
	}
	if seen[obs.EvRoundDone] != traced.Rounds {
		t.Fatalf("%d round.done events for %d rounds", seen[obs.EvRoundDone], traced.Rounds)
	}
	for _, grp := range traced.Groups {
		if winK[grp.Round] != grp.K {
			t.Fatalf("round %d: trace k=%v, detection k=%v", grp.Round, winK[grp.Round], grp.K)
		}
	}
}

// detectOnce runs one distributed detection on a fresh cluster, optionally
// traced (the tracer also observes LoadGraph's shard placement).
func detectOnce(t *testing.T, g *graph.Graph, n int, cfg DetectorConfig, tr obs.Tracer) core.Detection {
	t.Helper()
	c := NewLocalCluster(4, 0)
	defer c.Close()
	c.SetTracer(tr)
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(c, n, cfg)
	res, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDistributedDetectCancel: a fired Cancel channel interrupts the
// distributed detection with core.ErrInterrupted and a valid partial
// result, matching the single-machine contract.
func TestDistributedDetectCancel(t *testing.T) {
	g, _, seeds := testWorld(5, 300, 120)
	c := NewLocalCluster(4, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	cfg := DetectorConfig{
		Cut:         core.CutOptions{Seeds: seeds, RandSeed: 7},
		TargetCount: 120,
		Cancel:      done,
	}
	det := NewDetector(c, g.NumNodes(), cfg)
	res, err := det.Detect(cfg)
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("err = %v, want core.ErrInterrupted", err)
	}
	if res.Rounds != 0 || len(res.Suspects) != 0 {
		t.Fatalf("pre-fired cancel still ran %d rounds", res.Rounds)
	}
}
