package dist

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Cluster is the master's view of the worker pool: the transport, the
// shard→worker placement, and the recovery lineage for graph shards.
type Cluster struct {
	transport Transport
	stats     *IOStats

	// shardHome[shardID] = worker index hosting the shard.
	shardHome []int
	// nodeShard resolves a node to its shard by range; shards are
	// contiguous and sorted, so this is a binary-search-free index when
	// ranges are uniform. We keep the ranges for generality.
	shardLo []int32
	shardHi []int32

	// shardSource regenerates a shard for recovery — the lineage root of
	// graph data, equivalent to recomputing an RDD partition.
	shardSource func(shardID int) Shard

	// tracer observes the master↔worker boundary: one obs.EvDistRPC per
	// transport call, one obs.EvDistShard per shard placement. nil (the
	// default) disables tracing with no per-call clock reads.
	tracer obs.Tracer
}

// SetTracer installs t as the cluster's RPC/shard tracer; nil disables
// tracing. Set it before starting a run — the field is read by every
// call, so swapping it mid-run races.
func (c *Cluster) SetTracer(t obs.Tracer) { c.tracer = t }

// NewLocalCluster builds an in-process cluster with the given number of
// workers. latency is the simulated per-call round-trip latency accumulated
// into VirtualLatency (no real sleeping).
func NewLocalCluster(workers int, latency time.Duration) *Cluster {
	if workers < 1 {
		panic("dist: cluster needs at least one worker")
	}
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = NewWorker()
	}
	stats := &IOStats{}
	return &Cluster{
		transport: NewLocalTransport(ws, stats, latency),
		stats:     stats,
	}
}

// NewCluster wraps an arbitrary transport (e.g. the RPC transport) in a
// Cluster. stats may be nil.
func NewCluster(t Transport, stats *IOStats) *Cluster {
	return &Cluster{transport: t, stats: stats}
}

// Workers reports the worker count.
func (c *Cluster) Workers() int { return c.transport.Workers() }

// IO returns a snapshot of the traffic counters (zero-valued if the
// transport does not account traffic).
func (c *Cluster) IO() IOSnapshot {
	if c.stats == nil {
		return IOSnapshot{}
	}
	return c.stats.Snapshot()
}

// VirtualLatency reports the simulated network time accumulated by a local
// transport.
func (c *Cluster) VirtualLatency() time.Duration { return VirtualLatency(c.transport) }

// Close shuts down the transport.
func (c *Cluster) Close() error { return c.transport.Close() }

// call issues a plain transport call, emitting one dist.rpc span per
// call when a tracer is installed. The master-side duration includes any
// simulated latency the transport accounts.
func (c *Cluster) call(worker int, method Call, args, reply any) error {
	if c.tracer == nil {
		return c.transport.Call(worker, method, args, reply)
	}
	start := time.Now()
	err := c.transport.Call(worker, method, args, reply)
	ev := obs.Event{
		Name: obs.EvDistRPC, Wall: time.Now(), Dur: time.Since(start),
		Detail: string(method),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	c.tracer.Emit(ev)
	return err
}

// callWithRecovery issues a call and, when the worker is down, rebuilds the
// worker's state (graph shards via the shard lineage, plus any dataset
// lineage supplied by the caller) and retries once. This is the engine's
// fault-tolerance path; the paper's prototype delegated the same job to
// Spark's RDD recomputation.
func (c *Cluster) callWithRecovery(worker int, method Call, args, reply any, rebuild func(worker int) error) error {
	err := c.call(worker, method, args, reply)
	if err == nil || !errors.Is(err, ErrWorkerDown) {
		return err
	}
	if !ReviveWorker(c.transport, worker) {
		return err // transport has no revive hook (e.g. real RPC)
	}
	if err := c.reloadShards(worker); err != nil {
		return fmt.Errorf("dist: recovering worker %d: %w", worker, err)
	}
	if rebuild != nil {
		if err := rebuild(worker); err != nil {
			return fmt.Errorf("dist: recovering worker %d datasets: %w", worker, err)
		}
	}
	return c.call(worker, method, args, reply)
}

// LoadGraph shards g across the workers round-robin and records the shard
// lineage for recovery. shardsPerWorker ≥ 1 controls granularity.
func (c *Cluster) LoadGraph(g *graph.Graph, shardsPerWorker int) error {
	if shardsPerWorker < 1 {
		shardsPerWorker = 1
	}
	count := c.Workers() * shardsPerWorker
	loadStart := time.Now()
	f := g.Freeze()
	shards := MakeShardsFrozen(f, count)
	c.shardHome = make([]int, len(shards))
	c.shardLo = make([]int32, len(shards))
	c.shardHi = make([]int32, len(shards))
	// The lineage closure re-slices from the frozen snapshot, so recovery
	// stays correct even if the caller keeps mutating g after loading. A
	// production deployment would re-read from durable storage; holding the
	// snapshot on the master during a run is the equivalent for this engine.
	c.shardSource = func(shardID int) Shard {
		return makeShard(f, shardID, c.shardLo[shardID], c.shardHi[shardID])
	}
	for i, sh := range shards {
		home := i % c.Workers()
		c.shardHome[i] = home
		c.shardLo[i] = sh.Lo
		c.shardHi[i] = sh.Hi
		if err := c.call(home, CallLoadShard, &LoadShardArgs{Shard: sh}, &struct{}{}); err != nil {
			return fmt.Errorf("dist: loading shard %d: %w", i, err)
		}
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{
				Name: obs.EvDistShard, Wall: time.Now(),
				Detail: fmt.Sprintf("shard %d → worker %d", i, home),
				Nodes:  sh.NumNodes(),
			})
		}
	}
	// LoadGraph is the distributed engine's freeze phase: the snapshot,
	// the shard slicing, and the pushes to the workers together play the
	// role core.Detect's up-front Freeze plays on one machine.
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Name: obs.EvFreeze, Wall: time.Now(), Dur: time.Since(loadStart),
			Nodes: f.NumNodes(),
		})
	}
	return nil
}

// reloadShards restores every shard homed on the given worker.
func (c *Cluster) reloadShards(worker int) error {
	if c.shardSource == nil {
		return nil
	}
	for id, home := range c.shardHome {
		if home != worker {
			continue
		}
		sh := c.shardSource(id)
		if err := c.call(worker, CallLoadShard, &LoadShardArgs{Shard: sh}, &struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// shardOf resolves the shard hosting node u.
func (c *Cluster) shardOf(u int32) (int, error) {
	for id := range c.shardLo {
		if c.shardLo[id] <= u && u < c.shardHi[id] {
			return id, nil
		}
	}
	return 0, fmt.Errorf("dist: node %d not covered by any shard", u)
}

// workerOf resolves the worker hosting node u.
func (c *Cluster) workerOf(u int32) (int, error) {
	sh, err := c.shardOf(u)
	if err != nil {
		return 0, err
	}
	return c.shardHome[sh], nil
}

// gatherGains asks every worker for the switch gains of its nodes and
// assembles the global gain vector.
func (c *Cluster) gatherGains(n int, p bitset, alive bitset, wF, wR int64) ([]int64, error) {
	gains := make([]int64, n)
	args := &ComputeGainsArgs{Partition: p, Alive: alive, WF: wF, WR: wR}
	for wk := 0; wk < c.Workers(); wk++ {
		var reply ComputeGainsReply
		if err := c.callWithRecovery(wk, CallComputeGains, args, &reply, nil); err != nil {
			return nil, err
		}
		// The reply concatenates the worker's shards in ascending node
		// order; map back through the shard ranges.
		idx := 0
		for id, home := range c.shardHome {
			if home != wk {
				continue
			}
			for u := c.shardLo[id]; u < c.shardHi[id]; u++ {
				if idx >= len(reply.Gains) {
					return nil, fmt.Errorf("dist: short gains reply from worker %d", wk)
				}
				gains[u] = reply.Gains[idx]
				idx++
			}
		}
		if idx != len(reply.Gains) {
			return nil, fmt.Errorf("dist: gains reply length mismatch from worker %d", wk)
		}
	}
	return gains, nil
}

// cutStats sums the partial cut statistics across workers.
func (c *Cluster) cutStats(p bitset, alive bitset) (CutStatsReply, error) {
	var total CutStatsReply
	args := &CutStatsArgs{Partition: p, Alive: alive}
	for wk := 0; wk < c.Workers(); wk++ {
		var reply CutStatsReply
		if err := c.callWithRecovery(wk, CallCutStats, args, &reply, nil); err != nil {
			return CutStatsReply{}, err
		}
		total.CrossFriendships += reply.CrossFriendships
		total.RejIntoSuspect += reply.RejIntoSuspect
		total.RejIntoLegit += reply.RejIntoLegit
	}
	return total, nil
}

// fetch pulls adjacency records for the given nodes, grouped per worker
// into one call each.
func (c *Cluster) fetch(nodes []int32) ([]NodeAdj, error) {
	byWorker := make(map[int][]int32)
	for _, u := range nodes {
		wk, err := c.workerOf(u)
		if err != nil {
			return nil, err
		}
		byWorker[wk] = append(byWorker[wk], u)
	}
	out := make([]NodeAdj, 0, len(nodes))
	for wk, batch := range byWorker {
		var reply FetchReply
		if err := c.callWithRecovery(wk, CallFetch, &FetchArgs{Nodes: batch}, &reply, nil); err != nil {
			return nil, err
		}
		out = append(out, reply.Adj...)
	}
	return out, nil
}
