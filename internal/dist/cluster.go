package dist

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Cluster is the master's view of the worker pool: the transport, the
// shard→worker placement, and the recovery lineage for graph shards.
type Cluster struct {
	transport Transport
	stats     *IOStats

	// shardHome[shardID] = worker index hosting the shard.
	shardHome []int
	// nodeShard resolves a node to its shard by range; shards are
	// contiguous and sorted, so this is a binary-search-free index when
	// ranges are uniform. We keep the ranges for generality.
	shardLo []int32
	shardHi []int32

	// shardSource regenerates a shard for recovery — the lineage root of
	// graph data, equivalent to recomputing an RDD partition.
	shardSource func(shardID int) Shard

	// tracer observes the master↔worker boundary: one obs.EvDistRPC per
	// transport call, one obs.EvDistShard per shard placement. nil (the
	// default) disables tracing with no per-call clock reads.
	tracer obs.Tracer

	// retry policy, the clock it runs on, and its jitter stream. The
	// jitter stream is independent of every algorithm stream so that
	// retries can never perturb detection results.
	retry  RetryPolicy
	clock  Clock
	jmu    sync.Mutex
	jitter *rand.Rand

	// tokens issues dedup tokens for mutating dataset calls, making them
	// safe under duplicated delivery and timeout-triggered re-execution.
	tokens atomic.Uint64
}

// SetTracer installs t as the cluster's RPC/shard tracer; nil disables
// tracing. Set it before starting a run — the field is read by every
// call, so swapping it mid-run races.
func (c *Cluster) SetTracer(t obs.Tracer) { c.tracer = t }

// SetRetryPolicy installs p (zero fields defaulted) as the cluster's call
// retry policy. Set it before starting a run.
func (c *Cluster) SetRetryPolicy(p RetryPolicy) {
	c.retry = p.WithDefaults()
	c.jitter = rng.New(c.retry.JitterSeed).Stream("dist/retry-jitter")
}

// RetryPolicy returns the active policy.
func (c *Cluster) RetryPolicy() RetryPolicy { return c.retry }

// SetClock installs the clock the retry path measures timeouts and sleeps
// backoff on. Chaos tests pass the same virtual clock their transport
// advances; nil restores the wall clock. Set it before starting a run.
func (c *Cluster) SetClock(clk Clock) {
	if clk == nil {
		clk = realClock{}
	}
	c.clock = clk
}

// Transport returns the cluster's transport, for fault-injection hooks
// (FailWorker and friends) and traffic shaping in tests.
func (c *Cluster) Transport() Transport { return c.transport }

// NewLocalCluster builds an in-process cluster with the given number of
// workers. latency is the simulated per-call round-trip latency accumulated
// into VirtualLatency (no real sleeping).
func NewLocalCluster(workers int, latency time.Duration) *Cluster {
	if workers < 1 {
		panic("dist: cluster needs at least one worker")
	}
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = NewWorker()
	}
	stats := &IOStats{}
	c := &Cluster{
		transport: NewLocalTransport(ws, stats, latency),
		stats:     stats,
		clock:     realClock{},
	}
	c.SetRetryPolicy(RetryPolicy{})
	return c
}

// NewCluster wraps an arbitrary transport (e.g. the RPC transport, or a
// chaos-wrapped one) in a Cluster. stats may be nil.
func NewCluster(t Transport, stats *IOStats) *Cluster {
	c := &Cluster{transport: t, stats: stats, clock: realClock{}}
	c.SetRetryPolicy(RetryPolicy{})
	return c
}

// Workers reports the worker count.
func (c *Cluster) Workers() int { return c.transport.Workers() }

// IO returns a snapshot of the traffic counters (zero-valued if the
// transport does not account traffic).
func (c *Cluster) IO() IOSnapshot {
	if c.stats == nil {
		return IOSnapshot{}
	}
	return c.stats.Snapshot()
}

// VirtualLatency reports the simulated network time accumulated by a local
// transport.
func (c *Cluster) VirtualLatency() time.Duration { return VirtualLatency(c.transport) }

// Close shuts down the transport.
func (c *Cluster) Close() error { return c.transport.Close() }

// call issues one logical call, retrying transient failures (lost calls,
// lost replies, per-call timeouts) under the cluster's retry policy with
// capped exponential backoff and deterministic jitter. Each attempt emits
// one dist.rpc span when a tracer is installed; each retry additionally
// emits a dist.retry span carrying the attempt number and the backoff
// slept before it. Worker-down and state-lost failures return immediately
// — they need the recovery path, not a blind retry.
func (c *Cluster) call(worker int, method Call, args, reply any) error {
	var err error
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			// The failed attempt may have partially filled the reply (a
			// lost-reply fault executes worker-side first); zero it so the
			// retry starts from a clean slate.
			zeroReply(reply)
		}
		err = c.callOnce(worker, method, args, reply)
		if err == nil || !IsTransient(err) || attempt >= c.retry.MaxAttempts {
			return err
		}
		d := c.backoff(attempt)
		obs.Pipeline.RPCRetries.Add(1)
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{
				Name: obs.EvDistRetry, Wall: time.Now(), Dur: d,
				Attempt: attempt + 1, Detail: string(method), Err: err.Error(),
			})
		}
		c.clock.Sleep(d)
	}
}

// callOnce issues a single transport attempt, enforcing the per-attempt
// timeout on the cluster clock. A reply that arrives after the timeout is
// discarded and the attempt reported as ErrTimeout — exactly what a real
// master does, so the worker may have executed the call (idempotence
// makes the retry safe).
func (c *Cluster) callOnce(worker int, method Call, args, reply any) error {
	deadline := c.retry.Timeout
	tr := c.tracer
	var wallStart time.Time
	if tr != nil {
		wallStart = time.Now()
	}
	var clockStart time.Time
	if deadline > 0 {
		clockStart = c.clock.Now()
	}
	err := c.transport.Call(worker, method, args, reply)
	if err == nil && deadline > 0 && c.clock.Now().Sub(clockStart) > deadline {
		zeroReply(reply)
		err = fmt.Errorf("%w: %s to worker %d exceeded %v", ErrTimeout, method, worker, deadline)
	}
	if tr != nil {
		ev := obs.Event{
			Name: obs.EvDistRPC, Wall: time.Now(), Dur: time.Since(wallStart),
			Detail: string(method),
		}
		if err != nil {
			ev.Err = err.Error()
		}
		tr.Emit(ev)
	}
	return err
}

// backoff returns the jittered delay before retry number retry (1-based):
// the capped exponential base, halved, plus a uniform draw over the other
// half from the deterministic jitter stream.
func (c *Cluster) backoff(retry int) time.Duration {
	d := c.retry.backoffBase(retry)
	if d <= 1 {
		return d
	}
	half := d / 2
	c.jmu.Lock()
	j := c.jitter.Int64N(int64(d - half + 1))
	c.jmu.Unlock()
	return half + time.Duration(j)
}

// zeroReply clears the struct a reply pointer points at, so a retried
// attempt cannot observe (or accumulate onto) a previous attempt's
// partial reply.
func zeroReply(reply any) {
	if rv := reflect.ValueOf(reply); rv.Kind() == reflect.Pointer && !rv.IsNil() {
		rv.Elem().SetZero()
	}
}

// callWithRecovery issues a call and, when the worker is down or has lost
// its state, rebuilds the worker (graph shards via the shard lineage,
// plus any dataset lineage supplied by the caller) and retries. This is
// the engine's fault-tolerance path; the paper's prototype delegated the
// same job to Spark's RDD recomputation.
//
// The cycle runs up to RecoveryAttempts times because recovery itself can
// fail over: a replacement worker may die mid-rebuild (the rebuild calls
// return ErrWorkerDown again), and a transport may decline to revive a
// worker that is restarting on its own — the master then backs off and
// probes until the worker reappears, discovering the restart through
// ErrStateLost and replaying the lineage onto it.
func (c *Cluster) callWithRecovery(worker int, method Call, args, reply any, rebuild func(worker int) error) error {
	err := c.call(worker, method, args, reply)
	if err == nil || !IsRecoverable(err) {
		return err
	}
	max := c.retry.RecoveryAttempts
	for attempt := 1; attempt <= max; attempt++ {
		obs.Pipeline.RPCRecoveries.Add(1)
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{
				Name: obs.EvDistRetry, Wall: time.Now(), Attempt: attempt,
				Detail: fmt.Sprintf("recover worker %d for %s", worker, method),
				Err:    err.Error(),
			})
		}
		if errors.Is(err, ErrWorkerDown) {
			if !ReviveWorker(c.transport, worker) {
				// No replacement available (real RPC transport, or a chaos
				// worker that will restart on its own): wait and probe.
				c.clock.Sleep(c.backoff(attempt))
				zeroReply(reply)
				err = c.call(worker, method, args, reply)
				if err == nil || !IsRecoverable(err) {
					return err
				}
				continue
			}
		}
		if rerr := c.rebuildWorker(worker, rebuild); rerr != nil {
			if !IsRecoverable(rerr) {
				return fmt.Errorf("dist: recovering worker %d: %w", worker, rerr)
			}
			// The worker died (or lost state again) mid-rebuild; go
			// around and recover it again rather than failing the round.
			err = rerr
			c.clock.Sleep(c.backoff(attempt))
			continue
		}
		zeroReply(reply)
		err = c.call(worker, method, args, reply)
		if err == nil || !IsRecoverable(err) {
			return err
		}
		c.clock.Sleep(c.backoff(attempt))
	}
	return fmt.Errorf("dist: worker %d not recovered after %d attempts: %w", worker, max, err)
}

// Call issues one logical call to worker under the cluster's retry policy
// (transient failures retried with backoff; worker-down and state-lost
// failures returned for the recovery path). It is the exported surface for
// engines layered on the cluster — the sharded rejectod coordinator
// (internal/cluster) drives its extension RPCs through it.
func (c *Cluster) Call(worker int, method Call, args, reply any) error {
	return c.call(worker, method, args, reply)
}

// CallWithRecovery issues a call under the full fault-tolerance path: on
// worker-down or state-lost failures the worker is revived (or awaited)
// and its state rebuilt — the graph-shard lineage first, then the caller's
// rebuild closure, which must reinstall whatever extension state (handlers,
// datasets, journals) the caller placed on the worker. The rebuild closure
// may itself issue calls through the cluster; failures inside it are
// retried by the surrounding recovery cycle up to RecoveryAttempts times.
func (c *Cluster) CallWithRecovery(worker int, method Call, args, reply any, rebuild func(worker int) error) error {
	return c.callWithRecovery(worker, method, args, reply, rebuild)
}

// nextToken issues a cluster-unique dedup token for a mutating dataset
// call. Tokens start at 1 so zero can mean "untokened".
func (c *Cluster) nextToken() uint64 { return c.tokens.Add(1) }

// rebuildWorker restores a revived (or self-restarted) worker's state:
// every shard homed on it, then any dataset lineage the caller supplied.
func (c *Cluster) rebuildWorker(worker int, rebuild func(worker int) error) error {
	if err := c.reloadShards(worker); err != nil {
		return err
	}
	if rebuild != nil {
		if err := rebuild(worker); err != nil {
			return err
		}
	}
	return nil
}

// LoadGraph shards g across the workers round-robin and records the shard
// lineage for recovery. shardsPerWorker ≥ 1 controls granularity.
func (c *Cluster) LoadGraph(g *graph.Graph, shardsPerWorker int) error {
	if shardsPerWorker < 1 {
		shardsPerWorker = 1
	}
	count := c.Workers() * shardsPerWorker
	loadStart := time.Now()
	f := g.Freeze()
	shards := MakeShardsFrozen(f, count)
	c.shardHome = make([]int, len(shards))
	c.shardLo = make([]int32, len(shards))
	c.shardHi = make([]int32, len(shards))
	// The lineage closure re-slices from the frozen snapshot, so recovery
	// stays correct even if the caller keeps mutating g after loading. A
	// production deployment would re-read from durable storage; holding the
	// snapshot on the master during a run is the equivalent for this engine.
	c.shardSource = func(shardID int) Shard {
		return makeShard(f, shardID, c.shardLo[shardID], c.shardHi[shardID])
	}
	for i, sh := range shards {
		home := i % c.Workers()
		c.shardHome[i] = home
		c.shardLo[i] = sh.Lo
		c.shardHi[i] = sh.Hi
		if err := c.call(home, CallLoadShard, &LoadShardArgs{Shard: sh}, &struct{}{}); err != nil {
			return fmt.Errorf("dist: loading shard %d: %w", i, err)
		}
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{
				Name: obs.EvDistShard, Wall: time.Now(),
				Detail: fmt.Sprintf("shard %d → worker %d", i, home),
				Nodes:  sh.NumNodes(),
			})
		}
	}
	// LoadGraph is the distributed engine's freeze phase: the snapshot,
	// the shard slicing, and the pushes to the workers together play the
	// role core.Detect's up-front Freeze plays on one machine.
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Name: obs.EvFreeze, Wall: time.Now(), Dur: time.Since(loadStart),
			Nodes: f.NumNodes(),
		})
	}
	return nil
}

// reloadShards restores every shard homed on the given worker.
func (c *Cluster) reloadShards(worker int) error {
	if c.shardSource == nil {
		return nil
	}
	for id, home := range c.shardHome {
		if home != worker {
			continue
		}
		sh := c.shardSource(id)
		if err := c.call(worker, CallLoadShard, &LoadShardArgs{Shard: sh}, &struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// ShardRangeError reports a node ID that no loaded shard range covers.
// shardOf/workerOf return it so callers can recover the precise offending
// ID (for logging, routing, or input validation) instead of re-parsing a
// flattened message.
type ShardRangeError struct {
	// Node is the offending node ID.
	Node int32
	// Shards is the number of shard ranges consulted; 0 means no graph
	// was loaded at all.
	Shards int
}

func (e *ShardRangeError) Error() string {
	if e.Shards == 0 {
		return fmt.Sprintf("dist: node %d not covered: no shards loaded", e.Node)
	}
	return fmt.Sprintf("dist: node %d not covered by any of %d shards", e.Node, e.Shards)
}

// shardOf resolves the shard hosting node u.
func (c *Cluster) shardOf(u int32) (int, error) {
	for id := range c.shardLo {
		if c.shardLo[id] <= u && u < c.shardHi[id] {
			return id, nil
		}
	}
	return 0, &ShardRangeError{Node: u, Shards: len(c.shardLo)}
}

// workerOf resolves the worker hosting node u.
func (c *Cluster) workerOf(u int32) (int, error) {
	sh, err := c.shardOf(u)
	if err != nil {
		return 0, err
	}
	return c.shardHome[sh], nil
}

// gatherGains asks every worker for the switch gains of its nodes and
// assembles the global gain vector.
func (c *Cluster) gatherGains(n int, p bitset, alive bitset, wF, wR int64) ([]int64, error) {
	gains := make([]int64, n)
	args := &ComputeGainsArgs{Partition: p, Alive: alive, WF: wF, WR: wR}
	for wk := 0; wk < c.Workers(); wk++ {
		var reply ComputeGainsReply
		if err := c.callWithRecovery(wk, CallComputeGains, args, &reply, nil); err != nil {
			return nil, err
		}
		// The reply concatenates the worker's shards in ascending node
		// order; map back through the shard ranges.
		idx := 0
		for id, home := range c.shardHome {
			if home != wk {
				continue
			}
			for u := c.shardLo[id]; u < c.shardHi[id]; u++ {
				if idx >= len(reply.Gains) {
					return nil, fmt.Errorf("dist: short gains reply from worker %d", wk)
				}
				gains[u] = reply.Gains[idx]
				idx++
			}
		}
		if idx != len(reply.Gains) {
			return nil, fmt.Errorf("dist: gains reply length mismatch from worker %d", wk)
		}
	}
	return gains, nil
}

// cutStats sums the partial cut statistics across workers.
func (c *Cluster) cutStats(p bitset, alive bitset) (CutStatsReply, error) {
	var total CutStatsReply
	args := &CutStatsArgs{Partition: p, Alive: alive}
	for wk := 0; wk < c.Workers(); wk++ {
		var reply CutStatsReply
		if err := c.callWithRecovery(wk, CallCutStats, args, &reply, nil); err != nil {
			return CutStatsReply{}, err
		}
		total.CrossFriendships += reply.CrossFriendships
		total.RejIntoSuspect += reply.RejIntoSuspect
		total.RejIntoLegit += reply.RejIntoLegit
	}
	return total, nil
}

// fetch pulls adjacency records for the given nodes, grouped per worker
// into one call each. Workers are visited in index order — not map
// order — so the master's call sequence is a pure function of the
// detection state, which is what lets a seeded chaos schedule replay the
// exact same faults on the exact same calls across invocations.
func (c *Cluster) fetch(nodes []int32) ([]NodeAdj, error) {
	byWorker := make(map[int][]int32)
	for _, u := range nodes {
		wk, err := c.workerOf(u)
		if err != nil {
			return nil, err
		}
		byWorker[wk] = append(byWorker[wk], u)
	}
	out := make([]NodeAdj, 0, len(nodes))
	for wk := 0; wk < c.Workers(); wk++ {
		batch := byWorker[wk]
		if len(batch) == 0 {
			continue
		}
		var reply FetchReply
		if err := c.callWithRecovery(wk, CallFetch, &FetchArgs{Nodes: batch}, &reply, nil); err != nil {
			return nil, err
		}
		out = append(out, reply.Adj...)
	}
	return out, nil
}
