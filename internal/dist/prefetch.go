package dist

import (
	"repro/internal/bucketlist"
	"repro/internal/cache"
)

// Prefetcher implements §V's network-I/O reduction: instead of fetching one
// node's adjacency per switch, it pulls a batch of the nodes with the
// highest potential move gains — the ones "likely to be accessed in the
// near future" — into a bounded buffer with LRU replacement.
type Prefetcher struct {
	c      *Cluster
	buffer *cache.LRU[int32, NodeAdj]
	batch  int

	fetched   int64 // nodes pulled over the network
	served    int64 // nodes served from the buffer
	misses    int64 // Get calls that triggered a batch fetch
	prefetchW []int32
}

// DefaultPrefetchBatch is the prefetch batch size when the caller passes 0.
const DefaultPrefetchBatch = 256

// DefaultBufferCap is the adjacency buffer capacity when the caller
// passes 0.
const DefaultBufferCap = 1 << 16

// NewPrefetcher builds a prefetcher over the cluster. batch is the number
// of top-gain nodes pulled per miss; bufferCap bounds the buffer.
func NewPrefetcher(c *Cluster, batch, bufferCap int) *Prefetcher {
	if batch <= 0 {
		batch = DefaultPrefetchBatch
	}
	if bufferCap <= 0 {
		bufferCap = DefaultBufferCap
	}
	if bufferCap < batch {
		bufferCap = batch
	}
	return &Prefetcher{
		c:      c,
		buffer: cache.NewLRU[int32, NodeAdj](bufferCap),
		batch:  batch,
	}
}

// Get returns the adjacency of u, fetching a batch on miss. list supplies
// the current top-gain frontier (the nodes most likely to be switched
// next); it may be nil, in which case only u is fetched.
func (p *Prefetcher) Get(u int32, list bucketlist.List) (NodeAdj, error) {
	if adj, ok := p.buffer.Get(u); ok {
		p.served++
		return adj, nil
	}
	p.misses++
	want := p.prefetchW[:0]
	want = append(want, u)
	if list != nil {
		want = append(want, peekTop(list, p.batch-1, int(u))...)
	}
	p.prefetchW = want
	adjs, err := p.c.fetch(want)
	if err != nil {
		return NodeAdj{}, err
	}
	p.fetched += int64(len(adjs))
	var out NodeAdj
	found := false
	for _, adj := range adjs {
		p.buffer.Add(adj.Node, adj)
		if adj.Node == u {
			out, found = adj, true
		}
	}
	if !found {
		// Defensive: the fetch must always include u itself.
		single, err := p.c.fetch([]int32{u})
		if err != nil {
			return NodeAdj{}, err
		}
		out = single[0]
		p.buffer.Add(u, out)
		p.fetched++
	}
	p.served++
	return out, nil
}

// Stats reports (nodes served, nodes fetched over the network, misses).
// served−misses is the number of zero-round-trip switches.
func (p *Prefetcher) Stats() (served, fetched, misses int64) {
	return p.served, p.fetched, p.misses
}

// Reset clears the buffer (e.g. between detection rounds, where pruning
// invalidates adjacency liveness; the detector filters dead neighbours
// itself, so resetting is about memory, not correctness).
func (p *Prefetcher) Reset() { p.buffer.Clear() }

// peekTop returns up to k node IDs with the highest current gains, without
// disturbing the list: nodes are popped and re-added. exclude is skipped.
func peekTop(list bucketlist.List, k int, exclude int) []int32 {
	if k <= 0 {
		return nil
	}
	type popped struct {
		node int
		gain int64
	}
	tmp := make([]popped, 0, k+1)
	out := make([]int32, 0, k)
	for len(out) < k {
		n, g, ok := list.PopMax()
		if !ok {
			break
		}
		tmp = append(tmp, popped{n, g})
		if n != exclude {
			out = append(out, int32(n))
		}
	}
	// Restore in reverse pop order so LIFO tie-breaking is preserved for
	// equal gains (the last re-Added is popped first again).
	for i := len(tmp) - 1; i >= 0; i-- {
		list.Add(tmp[i].node, tmp[i].gain)
	}
	return out
}
