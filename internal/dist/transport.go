package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrWorkerDown reports that the target worker has failed; the caller may
// recover it and retry.
var ErrWorkerDown = errors.New("dist: worker down")

// Call names a worker RPC method. The set is closed: the engine's worker
// surface is Load/Fetch/ComputeGains/CutStats plus the dataset operations.
type Call string

// The worker method names.
const (
	CallLoadShard    Call = "Worker.LoadShard"
	CallFetch        Call = "Worker.Fetch"
	CallComputeGains Call = "Worker.ComputeGains"
	CallCutStats     Call = "Worker.CutStats"
	CallDataset      Call = "Worker.Dataset"
	CallPing         Call = "Worker.Ping"
)

// Transport delivers calls from the master to workers.
type Transport interface {
	// Call invokes method on the given worker, filling reply. args and
	// reply are gob-encodable structs (pointer for reply).
	Call(worker int, method Call, args, reply any) error
	// Workers reports the worker count.
	Workers() int
	// Close releases transport resources.
	Close() error
}

// IOStats accumulates the master↔worker traffic of a run.
type IOStats struct {
	Calls     atomic.Int64
	BytesSent atomic.Int64 // request payloads
	BytesRecv atomic.Int64 // reply payloads
}

// Snapshot returns a plain-value copy of the counters.
func (s *IOStats) Snapshot() IOSnapshot {
	return IOSnapshot{
		Calls:     s.Calls.Load(),
		BytesSent: s.BytesSent.Load(),
		BytesRecv: s.BytesRecv.Load(),
	}
}

// IOSnapshot is a point-in-time view of IOStats.
type IOSnapshot struct {
	Calls     int64
	BytesSent int64
	BytesRecv int64
}

// Sub returns the delta s − earlier.
func (s IOSnapshot) Sub(earlier IOSnapshot) IOSnapshot {
	return IOSnapshot{
		Calls:     s.Calls - earlier.Calls,
		BytesSent: s.BytesSent - earlier.BytesSent,
		BytesRecv: s.BytesRecv - earlier.BytesRecv,
	}
}

func (s IOSnapshot) String() string {
	return fmt.Sprintf("%d calls, %d B sent, %d B received", s.Calls, s.BytesSent, s.BytesRecv)
}

// localTransport dispatches calls in-process. It still serializes argument
// sizes through sizeOf estimates so that the byte accounting matches what a
// wire transport would see, and can simulate per-call latency by
// accumulating virtual time (no real sleeping, so benches stay fast).
type localTransport struct {
	workers []*Worker
	stats   *IOStats

	latency     time.Duration // virtual per-call round-trip latency
	virtualTime atomic.Int64  // accumulated simulated latency, ns

	mu        sync.Mutex
	down      map[int]bool
	failAfter map[int]int64 // worker -> remaining calls before injected failure
}

// NewLocalTransport creates an in-process transport over the given workers.
// latency, if non-zero, is accounted per call into VirtualLatency.
func NewLocalTransport(workers []*Worker, stats *IOStats, latency time.Duration) Transport {
	return &localTransport{
		workers:   workers,
		stats:     stats,
		latency:   latency,
		down:      make(map[int]bool),
		failAfter: make(map[int]int64),
	}
}

func (t *localTransport) Workers() int { return len(t.workers) }

func (t *localTransport) Call(worker int, method Call, args, reply any) error {
	if worker < 0 || worker >= len(t.workers) {
		return fmt.Errorf("dist: worker %d out of range", worker)
	}
	t.mu.Lock()
	dead := t.down[worker]
	if remaining, armed := t.failAfter[worker]; armed && !dead {
		if remaining <= 0 {
			// Injected failure fires exactly once: the worker loses its
			// state and calls fail until ReviveWorker.
			t.down[worker] = true
			delete(t.failAfter, worker)
			t.workers[worker].reset()
			dead = true
		} else {
			t.failAfter[worker] = remaining - 1
		}
	}
	t.mu.Unlock()
	if dead {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, worker)
	}
	if t.stats != nil {
		t.stats.Calls.Add(1)
		t.stats.BytesSent.Add(sizeOf(args))
	}
	t.virtualTime.Add(int64(t.latency))
	if err := t.workers[worker].dispatch(method, args, reply); err != nil {
		return err
	}
	if t.stats != nil {
		t.stats.BytesRecv.Add(sizeOf(reply))
	}
	return nil
}

func (t *localTransport) Close() error { return nil }

// VirtualLatency reports the simulated network latency accumulated so far.
// It is only meaningful for transports created by NewLocalTransport.
func VirtualLatency(t Transport) time.Duration {
	if lt, ok := t.(*localTransport); ok {
		return time.Duration(lt.virtualTime.Load())
	}
	return 0
}

// Failer is implemented by transports that support deterministic fault
// injection: killing a worker immediately or after a countdown of calls.
type Failer interface {
	FailWorker(worker int) bool
	FailWorkerAfter(worker int, afterCalls int64) bool
}

// Reviver is implemented by transports that can replace a failed worker
// with a fresh, empty one. A transport may decline (return false) — e.g.
// the chaos transport refuses while it is simulating a worker that will
// restart on its own — in which case the master backs off and retries
// until the worker reappears or its recovery budget runs out.
type Reviver interface {
	ReviveWorker(worker int) bool
}

// FailWorker marks a worker as failed, so subsequent calls return
// ErrWorkerDown until ReviveWorker. It is a test/chaos hook supported by
// the local transport and wrappers that forward it (package chaos); on
// the RPC transport, kill the worker's listener instead.
func FailWorker(t Transport, worker int) bool {
	f, ok := t.(Failer)
	return ok && f.FailWorker(worker)
}

// FailWorkerAfter arms a one-shot failure: the worker serves the next
// afterCalls calls to it and then dies (losing its state) until revived.
// Deterministic chaos hook for testing mid-run recovery.
func FailWorkerAfter(t Transport, worker int, afterCalls int64) bool {
	f, ok := t.(Failer)
	return ok && f.FailWorkerAfter(worker, afterCalls)
}

// ReviveWorker clears a failure mark and resets the worker to an empty
// state (its shards are lost, as when a fresh process replaces a dead one).
// It reports false when the transport cannot (or will not yet) replace
// the worker.
func ReviveWorker(t Transport, worker int) bool {
	r, ok := t.(Reviver)
	return ok && r.ReviveWorker(worker)
}

// FailWorker implements Failer.
func (t *localTransport) FailWorker(worker int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[worker] = true
	return true
}

// FailWorkerAfter implements Failer.
func (t *localTransport) FailWorkerAfter(worker int, afterCalls int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failAfter[worker] = afterCalls
	return true
}

// ReviveWorker implements Reviver.
func (t *localTransport) ReviveWorker(worker int) bool {
	t.mu.Lock()
	t.down[worker] = false
	t.mu.Unlock()
	t.workers[worker].reset()
	return true
}
