package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// The RPC transport runs the same master/worker protocol over real TCP
// sockets with gob encoding (net/rpc), demonstrating that the engine's
// worker surface is genuinely remote-capable. The in-process transport
// remains the default for benchmarks — on a single host, real sockets only
// measure the loopback stack.

// WorkerServer hosts one Worker over net/rpc.
type WorkerServer struct {
	worker   *Worker
	listener net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ServeWorker starts a worker RPC server on addr (e.g. "127.0.0.1:0").
// It returns once the listener is accepting.
func ServeWorker(addr string) (*WorkerServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker listen: %w", err)
	}
	s := &WorkerServer{
		worker:   NewWorker(),
		listener: l,
		conns:    make(map[net.Conn]struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", s.worker); err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("dist: register worker: %w", err)
	}
	go s.acceptLoop(srv)
	return s, nil
}

func (s *WorkerServer) acceptLoop(srv *rpc.Server) {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			srv.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Addr returns the server's listen address.
func (s *WorkerServer) Addr() string { return s.listener.Addr().String() }

// Close stops the server and drops all connections.
func (s *WorkerServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return s.listener.Close()
}

// rpcTransport is a Transport over net/rpc clients.
type rpcTransport struct {
	clients []*rpc.Client
	stats   *IOStats
}

// NewRPCTransport connects to worker servers at the given addresses.
// Traffic is accounted into stats (which may be nil) by counting the bytes
// crossing each connection.
func NewRPCTransport(addrs []string, stats *IOStats) (Transport, error) {
	t := &rpcTransport{stats: stats}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dist: dial worker %s: %w", addr, err)
		}
		t.clients = append(t.clients, rpc.NewClient(&countingConn{Conn: conn, stats: stats}))
	}
	return t, nil
}

func (t *rpcTransport) Workers() int { return len(t.clients) }

func (t *rpcTransport) Call(worker int, method Call, args, reply any) error {
	if worker < 0 || worker >= len(t.clients) {
		return fmt.Errorf("dist: worker %d out of range", worker)
	}
	if t.stats != nil {
		t.stats.Calls.Add(1)
	}
	if err := t.clients[worker].Call(string(method), args, reply); err != nil {
		return fmt.Errorf("%w: worker %d: %v", ErrWorkerDown, worker, err)
	}
	return nil
}

func (t *rpcTransport) Close() error {
	var firstErr error
	for _, c := range t.clients {
		if c != nil {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// countingConn counts the bytes crossing a connection into IOStats.
type countingConn struct {
	net.Conn
	stats *IOStats
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.stats != nil {
		c.stats.BytesRecv.Add(int64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if c.stats != nil {
		c.stats.BytesSent.Add(int64(n))
	}
	return n, err
}
