package dist

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bucketlist"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Detector runs Rejecto's MAAR search and iterative detection with the
// graph sharded across the cluster and only per-node algorithm state on the
// master — the architecture of §V. It mirrors the single-machine detector
// in package core step for step, and the tests assert that the two produce
// identical detections.
type Detector struct {
	c  *Cluster
	n  int
	pf *Prefetcher

	// Master-resident per-node state (~20 bytes/node, as in the paper).
	part   bitset
	alive  bitset
	pinned bitset

	// Per-node structural counts, refreshed per round from the workers.
	deg    []int64
	inRej  []int64
	outRej []int64
}

// DetectorConfig parameterizes a distributed detection run.
type DetectorConfig struct {
	// Cut carries the MAAR sweep parameters; its Seeds pin nodes exactly
	// as in package core.
	Cut core.CutOptions
	// TargetCount and AcceptanceThreshold are the §IV-E termination
	// conditions; at least one must be set.
	TargetCount         int
	AcceptanceThreshold float64
	// MaxRounds caps detection rounds; zero means core.DefaultMaxRounds.
	MaxRounds int
	// PrefetchBatch and BufferCap size the §V prefetcher; zero selects
	// the defaults.
	PrefetchBatch int
	BufferCap     int
	// Cancel, when non-nil, stops detection cleanly between rounds once
	// the channel is closed: Detect returns the rounds completed so far
	// with core.ErrInterrupted, exactly like the single-machine detector.
	Cancel <-chan struct{}
	// Retry, when non-zero, replaces the cluster's call-retry policy for
	// this detector's runs: transient-failure attempts, per-call timeout,
	// capped exponential backoff with deterministic jitter, and the
	// recovery-cycle budget. The zero value keeps the cluster's current
	// policy (the defaults, unless SetRetryPolicy was called).
	Retry RetryPolicy
}

// NewDetector prepares a detector for a graph of n nodes already loaded
// into the cluster via LoadGraph.
func NewDetector(c *Cluster, n int, cfg DetectorConfig) *Detector {
	if cfg.Retry != (RetryPolicy{}) {
		c.SetRetryPolicy(cfg.Retry)
	}
	return &Detector{
		c:  c,
		n:  n,
		pf: NewPrefetcher(c, cfg.PrefetchBatch, cfg.BufferCap),
	}
}

// Prefetcher exposes the detector's prefetch statistics.
func (d *Detector) Prefetcher() *Prefetcher { return d.pf }

// Detect runs the full iterative detection (§IV-E) on the cluster.
func (d *Detector) Detect(cfg DetectorConfig) (core.Detection, error) {
	if cfg.TargetCount <= 0 && cfg.AcceptanceThreshold <= 0 {
		return core.Detection{}, fmt.Errorf("dist: Detect needs TargetCount or AcceptanceThreshold")
	}
	if cfg.TargetCount < 0 || cfg.TargetCount > d.n {
		return core.Detection{}, fmt.Errorf("dist: TargetCount %d out of range", cfg.TargetCount)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = core.DefaultMaxRounds
	}
	opts := cfg.Cut.WithDefaults()

	// The cut's tracer observes the whole distributed detection; the
	// freeze span was already emitted by LoadGraph (via the cluster's own
	// tracer), so only detection/round/sweep/prune spans originate here.
	tr := opts.Tracer
	var detectStart time.Time
	if tr != nil {
		detectStart = time.Now()
		tr.Emit(obs.Event{Name: obs.EvDetectStart, Wall: detectStart, Nodes: d.n})
	}

	d.alive = newBitset(d.n)
	for u := 0; u < d.n; u++ {
		d.alive.set(int32(u), true)
	}
	d.pinned = newBitset(d.n)
	for _, u := range opts.Seeds.Legit {
		d.pinned.set(int32(u), true)
	}
	for _, u := range opts.Seeds.Spammer {
		d.pinned.set(int32(u), true)
	}

	var det core.Detection
	detected := 0
	aliveCount := d.n
	stopReason := ""
	for det.Rounds < maxRounds {
		if canceled(cfg.Cancel) {
			stopReason = "interrupted"
			break
		}
		if cfg.TargetCount > 0 && detected >= cfg.TargetCount {
			stopReason = "target"
			break
		}
		roundStart := time.Now()
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvRoundStart, Wall: roundStart,
				Round: det.Rounds + 1, Nodes: aliveCount,
			})
		}
		roundOpts := opts
		roundOpts.RandSeed = opts.RandSeed + uint64(det.Rounds)*0x9e3779b9
		roundOpts.TraceRound = det.Rounds + 1

		cut, ok, err := d.findMAARCut(roundOpts)
		if err != nil {
			return core.Detection{}, err
		}
		if !ok {
			stopReason = "no-cut"
			break
		}
		det.Rounds++
		if cfg.AcceptanceThreshold > 0 && cut.Acceptance > cfg.AcceptanceThreshold {
			stopReason = "threshold"
			endRound(tr, det.Rounds, roundStart, cut, 0)
			break
		}

		members := make([]graph.NodeID, 0, cut.Stats.SuspectSize)
		pb := newBitset(d.n)
		for u := 0; u < d.n; u++ {
			if d.alive.get(int32(u)) && cut.Partition[u] == graph.Suspect {
				members = append(members, graph.NodeID(u))
				pb.set(int32(u), true)
			}
		}
		if err := d.sortBySuspicion(members, pb); err != nil {
			return core.Detection{}, err
		}
		det.Groups = append(det.Groups, core.Group{
			Members:    members,
			Acceptance: cut.Acceptance,
			K:          cut.K,
			Round:      det.Rounds,
		})
		detected += len(members)

		// The distributed prune flips alive bits on the master instead of
		// deriving a residual snapshot; it is this engine's phase.prune.
		pruneStart := time.Now()
		for _, u := range members {
			d.alive.set(int32(u), false)
		}
		aliveCount -= len(members)
		d.pf.Reset()
		if tr != nil {
			tr.Emit(obs.Event{
				Name: obs.EvPrune, Wall: time.Now(), Dur: time.Since(pruneStart),
				Round: det.Rounds, Nodes: aliveCount,
			})
		}
		endRound(tr, det.Rounds, roundStart, cut, len(members))
	}

	for _, grp := range det.Groups {
		det.Suspects = append(det.Suspects, grp.Members...)
	}
	if cfg.TargetCount > 0 && len(det.Suspects) > cfg.TargetCount {
		det.Suspects = det.Suspects[:cfg.TargetCount]
	}
	if tr != nil {
		tr.Emit(obs.Event{
			Name: obs.EvDetectDone, Wall: time.Now(), Dur: time.Since(detectStart),
			Round: det.Rounds, Suspects: len(det.Suspects), Detail: stopReason,
		})
	}
	if stopReason == "interrupted" {
		return det, core.ErrInterrupted
	}
	return det, nil
}

// endRound mirrors the single-machine detector's round bookkeeping: it
// ticks the always-live round counters and emits round.done when tracing.
func endRound(tr obs.Tracer, round int, start time.Time, cut core.Cut, suspects int) {
	dur := time.Since(start)
	obs.Pipeline.Rounds.Add(1)
	ms := float64(dur) / float64(time.Millisecond)
	obs.Pipeline.RoundMS.Add(ms)
	obs.Pipeline.LastRoundMS.Set(ms)
	if tr != nil {
		tr.Emit(obs.Event{
			Name: obs.EvRoundDone, Wall: time.Now(), Dur: dur, Round: round,
			K: cut.K, Acceptance: cut.Acceptance, Suspects: suspects,
		})
	}
}

// canceled reports whether the cancellation channel has fired; a nil
// channel never cancels.
func canceled(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// refreshCounts pulls the alive-filtered degree and rejection counts from
// the workers via three ComputeGains probes with degenerate weights: under
// an all-Legit partition the gain reduces to wR·inRej − wF·deg, and under
// all-Suspect to wR·outRej − wF·deg.
func (d *Detector) refreshCounts() error {
	allLegit := newBitset(d.n)
	var err error
	if d.deg, err = d.c.gatherGains(d.n, allLegit, d.alive, -1, 0); err != nil {
		return err
	}
	if d.inRej, err = d.c.gatherGains(d.n, allLegit, d.alive, 0, 1); err != nil {
		return err
	}
	allSuspect := newBitset(d.n)
	for u := 0; u < d.n; u++ {
		allSuspect.set(int32(u), true)
	}
	if d.outRej, err = d.c.gatherGains(d.n, allSuspect, d.alive, 0, 1); err != nil {
		return err
	}
	return nil
}

// findMAARCut mirrors core.FindMAARCut over the cluster.
func (d *Detector) findMAARCut(opts core.CutOptions) (core.Cut, bool, error) {
	if err := d.refreshCounts(); err != nil {
		return core.Cut{}, false, err
	}
	var totalF, totalR int64
	aliveCount := 0
	for u := 0; u < d.n; u++ {
		if !d.alive.get(int32(u)) {
			continue
		}
		aliveCount++
		totalF += d.deg[u]
		totalR += d.inRej[u]
	}
	totalF /= 2
	if totalR == 0 || aliveCount < 2 {
		return core.Cut{}, false, nil
	}

	src := rng.New(opts.RandSeed)
	inits := d.initialPartitions(opts, src)

	// The master solves the (k, init) jobs serially — the parallelism of
	// the distributed engine lives inside each solve, in the fan-out to
	// the workers — so the sweep events arrive in job order by nature.
	tr := opts.Tracer
	var sweepStart time.Time
	if tr != nil {
		gridJobs := 0
		for _, k := range opts.KGrid() {
			if int64(math.Round(k*float64(opts.WeightScale))) >= 1 {
				gridJobs++
			}
		}
		sweepStart = time.Now()
		tr.Emit(obs.Event{
			Name: obs.EvSweepStart, Wall: sweepStart, Round: opts.TraceRound,
			Jobs: gridJobs * len(inits), Nodes: aliveCount,
			Friendships: int(totalF), Rejections: int(totalR),
		})
	}

	best := core.Cut{Acceptance: math.Inf(1)}
	found := false
	job, sweepPasses := 0, 0
	for _, k := range opts.KGrid() {
		wR := int64(math.Round(k * float64(opts.WeightScale)))
		if wR < 1 {
			continue
		}
		for initIdx, init := range inits {
			obs.Pipeline.SolvesStarted.Add(1)
			var solveStart time.Time
			if tr != nil {
				solveStart = time.Now()
			}
			p, passes, err := d.extendedKL(init, opts.WeightScale, wR, opts.MaxPasses)
			if err != nil {
				return core.Cut{}, false, err
			}
			cand, ok, err := d.scoreCut(p, k, opts.Seeds)
			if err != nil {
				return core.Cut{}, false, err
			}
			obs.Pipeline.SolvesFinished.Add(1)
			obs.Pipeline.KLPasses.Add(int64(passes))
			sweepPasses += passes
			job++
			if tr != nil {
				ev := obs.Event{
					Name: obs.EvSolveDone, Wall: time.Now(), Dur: time.Since(solveStart),
					Round: opts.TraceRound, Job: job, K: k, Init: initIdx + 1,
					Passes: passes, Acceptance: -1,
				}
				if ok {
					ev.Acceptance = cand.Acceptance
				}
				tr.Emit(ev)
			}
			if ok && cand.Acceptance < best.Acceptance {
				best = cand
				found = true
			}
		}
	}
	obs.Pipeline.Sweeps.Add(1)
	if tr != nil {
		ev := obs.Event{
			Name: obs.EvSweepDone, Wall: time.Now(), Dur: time.Since(sweepStart),
			Round: opts.TraceRound, Jobs: job, Passes: sweepPasses, Acceptance: -1,
		}
		if found {
			ev.K = best.K
			ev.Acceptance = best.Acceptance
		}
		tr.Emit(ev)
	}
	return best, found, nil
}

// initialPartitions mirrors core's starting points: the per-node acceptance
// heuristic against the global aggregate acceptance, plus optional random
// restarts, with seeds pre-placed. Dead nodes stay Legit (they are skipped
// everywhere).
func (d *Detector) initialPartitions(opts core.CutOptions, src *rng.Source) []bitset {
	var totalF, totalR int64
	for u := 0; u < d.n; u++ {
		if d.alive.get(int32(u)) {
			totalF += d.deg[u]
			totalR += d.inRej[u]
		}
	}
	threshold := float64(totalF) / float64(totalF+totalR) // totalF is already 2|F|

	placeSeeds := func(p bitset) bitset {
		for _, u := range opts.Seeds.Legit {
			p.set(int32(u), false)
		}
		for _, u := range opts.Seeds.Spammer {
			p.set(int32(u), true)
		}
		return p
	}

	heur := newBitset(d.n)
	for u := 0; u < d.n; u++ {
		if !d.alive.get(int32(u)) {
			continue
		}
		f, r := d.deg[u], d.inRej[u]
		acc := 1.0
		if f+r > 0 {
			acc = float64(f) / float64(f+r)
		}
		if acc < threshold {
			heur.set(int32(u), true)
		}
	}
	inits := []bitset{placeSeeds(heur)}

	r := src.Stream("init")
	for i := 0; i < opts.Restarts; i++ {
		p := newBitset(d.n)
		for u := 0; u < d.n; u++ {
			// Draw for every node (dead included) so the stream consumption
			// matches core's, which draws over the residual graph; parity
			// of detections is asserted set-wise, not stream-wise, so a
			// simple per-alive draw is fine too — but be deterministic.
			if r.Float64() < 0.5 && d.alive.get(int32(u)) {
				p.set(int32(u), true)
			}
		}
		inits = append(inits, placeSeeds(p))
	}
	return inits
}

// extendedKL is the distributed Algorithm 1: gains are initialized
// worker-side, the switching sequence runs on the master with prefetched
// adjacency, and the best prefix is applied. The second result is the
// number of passes executed, counted exactly like kl.Result.Passes (the
// final non-improving pass included).
func (d *Detector) extendedKL(init bitset, wF, wR int64, maxPasses int) (graph.Partition, int, error) {
	if maxPasses == 0 {
		maxPasses = kl.DefaultMaxPasses
	}
	p := make(bitset, len(init))
	copy(p, init)

	passes := 0
	for pass := 0; pass < maxPasses; pass++ {
		improved, err := d.klPass(p, wF, wR)
		if err != nil {
			return nil, 0, err
		}
		passes++
		if !improved {
			break
		}
	}
	out := graph.NewPartition(d.n)
	for u := 0; u < d.n; u++ {
		if p.get(int32(u)) {
			out[u] = graph.Suspect
		}
	}
	return out, passes, nil
}

type step struct {
	node int32
	gain int64
}

func (d *Detector) klPass(p bitset, wF, wR int64) (bool, error) {
	gains, err := d.c.gatherGains(d.n, p, d.alive, wF, wR)
	if err != nil {
		return false, err
	}

	var maxAbs int64 = 1
	for u := 0; u < d.n; u++ {
		if !d.alive.get(int32(u)) {
			continue
		}
		wd := d.deg[u]*wF + (d.inRej[u]+d.outRej[u])*wR
		if wd > maxAbs {
			maxAbs = wd
		}
	}
	list := bucketlist.New(d.n, -maxAbs, maxAbs)
	for u := 0; u < d.n; u++ {
		if d.alive.get(int32(u)) && !d.pinned.get(int32(u)) {
			list.Add(u, gains[u])
		}
	}

	seq := make([]step, 0, list.Len())
	for {
		u, gu, ok := list.PopMax()
		if !ok {
			break
		}
		seq = append(seq, step{node: int32(u), gain: gu})
		if err := d.applySwitch(p, int32(u), wF, wR, list); err != nil {
			return false, err
		}
	}

	var cum, bestCum int64
	bestLen := 0
	for i, st := range seq {
		cum += st.gain
		if cum > bestCum {
			bestCum, bestLen = cum, i+1
		}
	}
	rollFrom := bestLen
	if bestCum <= 0 {
		rollFrom = 0
	}
	for _, st := range seq[rollFrom:] {
		p.set(st.node, !p.get(st.node))
	}
	return bestCum > 0, nil
}

// applySwitch flips u and updates the gains of its still-listed neighbours,
// pulling u's adjacency through the prefetcher. Dead neighbours are
// filtered master-side, which is what lets pruning avoid re-sharding.
func (d *Detector) applySwitch(p bitset, u int32, wF, wR int64, list bucketlist.List) error {
	adj, err := d.pf.Get(u, list)
	if err != nil {
		return err
	}
	oldSuspect := p.get(u)
	p.set(u, !oldSuspect)
	oldPu, newPu := region(oldSuspect), region(!oldSuspect)

	for _, v := range adj.Friends {
		if !list.Contains(int(v)) {
			continue
		}
		if p.get(v) == !oldSuspect {
			list.Update(int(v), list.Gain(int(v))-2*wF)
		} else {
			list.Update(int(v), list.Gain(int(v))+2*wF)
		}
	}
	if wR == 0 {
		return nil
	}
	for _, x := range adj.RejOut { // edges ⟨u, x⟩; x sees u as a rejecter
		if !list.Contains(int(x)) {
			continue
		}
		px := region(p.get(x))
		delta := kl.RejecterContrib(px, newPu, wR) - kl.RejecterContrib(px, oldPu, wR)
		if delta != 0 {
			list.Update(int(x), list.Gain(int(x))+delta)
		}
	}
	for _, x := range adj.RejIn { // edges ⟨x, u⟩; x sees u as its target
		if !list.Contains(int(x)) {
			continue
		}
		px := region(p.get(x))
		delta := kl.RejectedContrib(px, newPu, wR) - kl.RejectedContrib(px, oldPu, wR)
		if delta != 0 {
			list.Update(int(x), list.Gain(int(x))+delta)
		}
	}
	return nil
}

// scoreCut mirrors core's cut scoring, including the mirrored orientation
// when no seeds constrain it.
func (d *Detector) scoreCut(p graph.Partition, k float64, seeds core.Seeds) (core.Cut, bool, error) {
	pb := newBitset(d.n)
	suspectSize, legitSize := 0, 0
	for u := 0; u < d.n; u++ {
		if !d.alive.get(int32(u)) {
			continue
		}
		if p[u] == graph.Suspect {
			pb.set(int32(u), true)
			suspectSize++
		} else {
			legitSize++
		}
	}
	partial, err := d.c.cutStats(pb, d.alive)
	if err != nil {
		return core.Cut{}, false, err
	}
	s := graph.CutStats{
		SuspectSize:      suspectSize,
		LegitSize:        legitSize,
		CrossFriendships: int(partial.CrossFriendships),
		RejIntoSuspect:   int(partial.RejIntoSuspect),
		RejIntoLegit:     int(partial.RejIntoLegit),
	}
	if s.Trivial() {
		return core.Cut{}, false, nil
	}
	best := core.Cut{}
	found := false
	if s.RejIntoSuspect > 0 {
		best = core.Cut{Partition: p, Stats: s, K: k, Acceptance: s.AcceptanceOfSuspect()}
		found = true
	}
	if seeds.Empty() && s.RejIntoLegit > 0 {
		if acc := s.AcceptanceOfLegit(); !found || acc < best.Acceptance {
			m := p.Clone()
			for u := 0; u < d.n; u++ {
				if d.alive.get(int32(u)) {
					m[u] = m[u].Other()
				}
			}
			best = core.Cut{
				Partition: m,
				Stats: graph.CutStats{
					SuspectSize:      s.LegitSize,
					LegitSize:        s.SuspectSize,
					CrossFriendships: s.CrossFriendships,
					RejIntoSuspect:   s.RejIntoLegit,
					RejIntoLegit:     s.RejIntoSuspect,
				},
				K:          k,
				Acceptance: acc,
			}
			found = true
		}
	}
	return best, found, nil
}

// sortBySuspicion orders members by the same group-aware trim score as the
// single-machine detector (see core's sortBySuspicion). The in-group
// friendship counts come from one more degenerate-weight probe: under the
// cut partition, ComputeGains with (wF=−1, wR=0) returns same−cross per
// node, so friendsInGroup = (gain + deg) / 2.
func (d *Detector) sortBySuspicion(members []graph.NodeID, cut bitset) error {
	sameMinusCross, err := d.c.gatherGains(d.n, cut, d.alive, -1, 0)
	if err != nil {
		return err
	}
	type scored struct{ rejRatio, inGroup float64 }
	score := func(u graph.NodeID) scored {
		deg, inRej := d.deg[u], d.inRej[u]
		var s scored
		if deg+inRej > 0 {
			s.rejRatio = float64(inRej) / float64(deg+inRej)
		}
		if deg > 0 {
			inGroup := (sameMinusCross[u] + deg) / 2
			s.inGroup = float64(inGroup) / float64(deg)
		}
		return s
	}
	sort.Slice(members, func(i, j int) bool {
		si, sj := score(members[i]), score(members[j])
		if si.rejRatio != sj.rejRatio {
			return si.rejRatio > sj.rejRatio
		}
		if si.inGroup != sj.inGroup {
			return si.inGroup > sj.inGroup
		}
		return members[i] < members[j]
	})
	return nil
}
