package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// startRPCCluster spins up real net/rpc worker servers on loopback and a
// cluster connected to them.
func startRPCCluster(t *testing.T, workers int) (*Cluster, func()) {
	t.Helper()
	servers := make([]*WorkerServer, 0, workers)
	addrs := make([]string, 0, workers)
	for i := 0; i < workers; i++ {
		s, err := ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	stats := &IOStats{}
	tr, err := NewRPCTransport(addrs, stats)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(tr, stats)
	cleanup := func() {
		_ = c.Close()
		for _, s := range servers {
			_ = s.Close()
		}
	}
	return c, cleanup
}

func TestRPCFetchAndStats(t *testing.T) {
	g, _, _ := testWorld(21, 80, 30)
	c, cleanup := startRPCCluster(t, 3)
	defer cleanup()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	adjs, err := c.fetch([]int32{0, 40, 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 3 {
		t.Fatalf("fetched %d records", len(adjs))
	}
	for _, adj := range adjs {
		if len(adj.Friends) != g.Degree(graph.NodeID(adj.Node)) {
			t.Fatalf("node %d adjacency wrong over RPC", adj.Node)
		}
	}
	io := c.IO()
	if io.Calls == 0 || io.BytesSent == 0 || io.BytesRecv == 0 {
		t.Fatalf("RPC traffic not accounted: %+v", io)
	}
}

func TestRPCCutStatsMatchesLocal(t *testing.T) {
	g, isFake, _ := testWorld(22, 100, 40)
	c, cleanup := startRPCCluster(t, 2)
	defer cleanup()
	if err := c.LoadGraph(g, 1); err != nil {
		t.Fatal(err)
	}
	p := graph.NewPartition(g.NumNodes())
	pb := newBitset(g.NumNodes())
	for u := range p {
		if isFake[u] {
			p[u] = graph.Suspect
			pb.set(int32(u), true)
		}
	}
	want := p.Stats(g)
	got, err := c.cutStats(pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(got.CrossFriendships) != want.CrossFriendships ||
		int(got.RejIntoSuspect) != want.RejIntoSuspect {
		t.Fatalf("RPC cut stats %+v != local %+v", got, want)
	}
}

// TestRPCDetectionMatchesCore runs the full distributed detection over real
// sockets and checks it against the single-machine detector.
func TestRPCDetectionMatchesCore(t *testing.T) {
	if testing.Short() {
		t.Skip("RPC end-to-end too heavy for -short")
	}
	g, _, seeds := testWorld(23, 200, 80)
	c, cleanup := startRPCCluster(t, 3)
	defer cleanup()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	cfg := DetectorConfig{Cut: core.CutOptions{Seeds: seeds, RandSeed: 5}, TargetCount: 80}
	det := NewDetector(c, g.NumNodes(), cfg)
	remote, err := det.Detect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Detect(g, core.DetectorOptions{
		Cut: core.CutOptions{Seeds: seeds, RandSeed: 5}, TargetCount: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Suspects) != len(local.Suspects) {
		t.Fatalf("RPC detection differs: %d vs %d", len(remote.Suspects), len(local.Suspects))
	}
	localSet := make(map[graph.NodeID]bool)
	for _, u := range local.Suspects {
		localSet[u] = true
	}
	for _, u := range remote.Suspects {
		if !localSet[u] {
			t.Fatalf("RPC detector flagged %d, core did not", u)
		}
	}
}

func TestRPCDatasetOps(t *testing.T) {
	c, cleanup := startRPCCluster(t, 2)
	defer cleanup()
	d, err := c.CreateDataset("rpc-nums", makeRows(8))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := d.Transform("rpc-doubled", "test/double")
	if err != nil {
		t.Fatal(err)
	}
	count, err := doubled.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("count over RPC = %d, want 8", count)
	}
}

func TestRPCWorkerDownSurfacesError(t *testing.T) {
	g, _, _ := testWorld(24, 40, 10)
	servers := make([]*WorkerServer, 2)
	addrs := make([]string, 2)
	for i := range servers {
		s, err := ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		addrs[i] = s.Addr()
	}
	tr, err := NewRPCTransport(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(tr, nil)
	defer c.Close()
	defer servers[1].Close()
	if err := c.LoadGraph(g, 1); err != nil {
		t.Fatal(err)
	}
	_ = servers[0].Close()
	// A call to the dead worker must fail with ErrWorkerDown (there is no
	// revive hook on real RPC, so recovery cannot hide it).
	_, err = c.fetch([]int32{0})
	if err == nil {
		t.Fatal("fetch from dead RPC worker succeeded")
	}
}
