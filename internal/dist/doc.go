// Package dist is a from-scratch master/worker cluster-compute substrate
// that stands in for the Spark deployment of the paper's prototype (§V).
//
// The paper's data layout decisions are reproduced exactly:
//
//   - The master keeps only per-node algorithm state — partition side,
//     potential switch gain, liveness — plus the gain bucket list
//     (~20 bytes per node), so a billion-user deployment needs ~20 GB of
//     master memory.
//   - The social graph (friendships and rejections) is sharded across
//     workers by node range, like Spark RDD partitions.
//   - Node switches pull the switched node's adjacency from its worker;
//     a prefetcher batches the top-gain frontier into an LRU buffer so
//     most switches cost no network round trip (§V "Reducing the network
//     I/O with prefetching").
//   - Worker partitions carry lineage: a lost worker is rebuilt by
//     replaying the shard loader, the moral equivalent of RDD recompute.
//
// Two transports are provided: an in-process one (function dispatch with
// byte accounting and an optional simulated per-call latency) and a real
// net/rpc transport over TCP loopback. The distributed detector produces
// byte-identical results to the single-machine detector in package core,
// which the tests assert.
package dist
