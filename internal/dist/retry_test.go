package dist

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := DefaultRetryPolicy()
	if p.MaxAttempts != 4 || p.RecoveryAttempts != 4 {
		t.Fatalf("default attempts = %d/%d, want 4/4", p.MaxAttempts, p.RecoveryAttempts)
	}
	if p.BaseBackoff != 5*time.Millisecond || p.MaxBackoff != 500*time.Millisecond {
		t.Fatalf("default backoff = %v/%v, want 5ms/500ms", p.BaseBackoff, p.MaxBackoff)
	}
	if p.Timeout != 0 {
		t.Fatalf("default timeout = %v, want disabled", p.Timeout)
	}
	if p.JitterSeed != 1 {
		t.Fatalf("default jitter seed = %d, want 1", p.JitterSeed)
	}
}

func TestBackoffBaseDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 5 * time.Millisecond, MaxBackoff: 32 * time.Millisecond}.WithDefaults()
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		32 * time.Millisecond, 32 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoffBase(i + 1); got != w {
			t.Fatalf("backoffBase(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	sequence := func() []time.Duration {
		c := NewLocalCluster(1, 0)
		defer c.Close()
		c.SetRetryPolicy(RetryPolicy{JitterSeed: 42})
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = c.backoff(i + 1)
		}
		return out
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered backoff not deterministic at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	p := RetryPolicy{JitterSeed: 42}.WithDefaults()
	for i, d := range a {
		base := p.backoffBase(i + 1)
		if d < base/2 || d > base {
			t.Fatalf("backoff(%d) = %v outside [base/2, base] = [%v, %v]", i+1, d, base/2, base)
		}
	}
}

// flakyTransport fails the first n calls with a transient error, then
// delegates to a healthy single-worker dispatch.
type flakyTransport struct {
	w         *Worker
	remaining int
	calls     int
}

func (f *flakyTransport) Call(worker int, method Call, args, reply any) error {
	f.calls++
	if f.remaining > 0 {
		f.remaining--
		return fmt.Errorf("%w: injected", ErrTransient)
	}
	return f.w.dispatch(method, args, reply)
}
func (f *flakyTransport) Workers() int { return 1 }
func (f *flakyTransport) Close() error { return nil }

// recordingClock counts sleeps without sleeping.
type recordingClock struct {
	now    time.Time
	slept  []time.Duration
	perNow time.Duration // advance applied on every Now() read
}

func (c *recordingClock) Now() time.Time {
	c.now = c.now.Add(c.perNow)
	return c.now
}
func (c *recordingClock) Sleep(d time.Duration) {
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
}

func TestCallRetriesTransientFailures(t *testing.T) {
	ft := &flakyTransport{w: NewWorker(), remaining: 2}
	c := NewCluster(ft, nil)
	clk := &recordingClock{}
	c.SetClock(clk)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond})
	if err := c.call(0, CallPing, &struct{}{}, &struct{}{}); err != nil {
		t.Fatalf("call did not survive 2 transient failures: %v", err)
	}
	if ft.calls != 3 {
		t.Fatalf("transport saw %d attempts, want 3", ft.calls)
	}
	if len(clk.slept) != 2 {
		t.Fatalf("backed off %d times, want 2", len(clk.slept))
	}
}

func TestCallGivesUpAfterMaxAttempts(t *testing.T) {
	ft := &flakyTransport{w: NewWorker(), remaining: 100}
	c := NewCluster(ft, nil)
	c.SetClock(&recordingClock{})
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	err := c.call(0, CallPing, &struct{}{}, &struct{}{})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if ft.calls != 3 {
		t.Fatalf("transport saw %d attempts, want exactly MaxAttempts=3", ft.calls)
	}
}

func TestCallTimeoutClassifiedTransient(t *testing.T) {
	// Every Now() read advances the clock 30ms; callOnce reads it twice
	// around the transport call, so each attempt measures 30ms against a
	// 20ms budget and times out.
	ft := &flakyTransport{w: NewWorker()}
	c := NewCluster(ft, nil)
	c.SetClock(&recordingClock{perNow: 30 * time.Millisecond})
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, Timeout: 20 * time.Millisecond, BaseBackoff: time.Millisecond})
	err := c.call(0, CallPing, &struct{}{}, &struct{}{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !IsTransient(err) {
		t.Fatal("timeout must classify as transient")
	}
	if IsRecoverable(err) {
		t.Fatal("timeout must not trigger worker recovery")
	}
	if ft.calls != 2 {
		t.Fatalf("transport saw %d attempts, want 2", ft.calls)
	}
}

func TestZeroReplyClearsBetweenAttempts(t *testing.T) {
	reply := &ComputeGainsReply{Gains: []int64{1, 2, 3}}
	zeroReply(reply)
	if reply.Gains != nil {
		t.Fatalf("zeroReply left %+v", reply)
	}
	var nilPtr *ComputeGainsReply
	zeroReply(nilPtr) // must not panic
	zeroReply(nil)    // must not panic
}

// TestWorkerDiesDuringRebuild is the regression test for the recovery
// loop: a worker that is killed again while its shards are being reloaded
// must be recovered again, not fail the round. The second kill is armed as
// a countdown that fires on the first LoadShard of the rebuild.
func TestWorkerDiesDuringRebuild(t *testing.T) {
	g, _, _ := testWorld(21, 120, 40)
	c := NewLocalCluster(3, 0)
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	// Kill worker 1 now, and arm a second kill that fires on the first
	// call it serves after its revival — i.e. mid-rebuild, during
	// reloadShards.
	FailWorker(c.transport, 1)
	FailWorkerAfter(c.transport, 1, 0)

	var u int32
	for u = 0; int(u) < g.NumNodes(); u++ {
		if wk, err := c.workerOf(u); err == nil && wk == 1 {
			break
		}
	}
	adjs, err := c.fetch([]int32{u})
	if err != nil {
		t.Fatalf("fetch did not survive a kill during rebuild: %v", err)
	}
	if len(adjs) != 1 || adjs[0].Node != u {
		t.Fatalf("fetched %+v, want node %d", adjs, u)
	}
	if len(adjs[0].Friends) != len(g.Friends(graph.NodeID(u))) {
		t.Fatalf("recovered adjacency truncated: %d friends, want %d",
			len(adjs[0].Friends), len(g.Friends(graph.NodeID(u))))
	}
}

// TestRecoveryBudgetExhausted pins the failure mode: a worker that stays
// dead past RecoveryAttempts fails the call with a descriptive error
// instead of looping forever.
func TestRecoveryBudgetExhausted(t *testing.T) {
	// downTransport: always down, declines revival.
	c := NewCluster(downTransport{}, nil)
	c.SetClock(&recordingClock{})
	c.SetRetryPolicy(RetryPolicy{RecoveryAttempts: 3, BaseBackoff: time.Microsecond})
	err := c.callWithRecovery(0, CallPing, &struct{}{}, &struct{}{}, nil)
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("err = %v, want wrapped ErrWorkerDown", err)
	}
}

type downTransport struct{}

func (downTransport) Call(worker int, method Call, args, reply any) error {
	return fmt.Errorf("%w: worker %d", ErrWorkerDown, worker)
}
func (downTransport) Workers() int { return 1 }
func (downTransport) Close() error { return nil }

func TestCutStatsReplyReuseNoDoubleCount(t *testing.T) {
	g, isFake, _ := testWorld(22, 100, 40)
	w := NewWorker()
	shards := MakeShards(g, 1)
	if err := w.LoadShard(&LoadShardArgs{Shard: shards[0]}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	pb := newBitset(g.NumNodes())
	for u := range isFake {
		if isFake[u] {
			pb.set(int32(u), true)
		}
	}
	args := &CutStatsArgs{Partition: pb}
	var reply CutStatsReply
	if err := w.CutStats(args, &reply); err != nil {
		t.Fatal(err)
	}
	first := reply
	// Duplicated delivery presents the same (already filled) reply struct;
	// the counts must not accumulate.
	if err := w.CutStats(args, &reply); err != nil {
		t.Fatal(err)
	}
	if reply != first {
		t.Fatalf("reply reuse double-counted: %+v then %+v", first, reply)
	}
}

// countExecutions counts rows mapped by the "test/count-executions" op.
// The op registry is process-global and RegisterOp panics on duplicates,
// so the op registers once and the counter resets per test run (-count>1
// reuses the process).
var (
	countExecutions     int
	countExecutionsOnce sync.Once
)

func TestDatasetTokenDedup(t *testing.T) {
	countExecutionsOnce.Do(func() {
		RegisterOp("test/count-executions", func(row []byte) [][]byte {
			countExecutions++
			return [][]byte{row}
		})
	})
	countExecutions = 0
	w := NewWorker()
	store := &DatasetArgs{Op: "store", TargetName: "src", Rows: makeRows(3), Token: 7}
	if err := w.Dataset(store, &DatasetReply{}); err != nil {
		t.Fatal(err)
	}
	apply := &DatasetArgs{
		Op: "apply", SourceName: "src", TargetName: "dst",
		MapOp: "test/count-executions", Token: 8,
	}
	if err := w.Dataset(apply, &DatasetReply{}); err != nil {
		t.Fatal(err)
	}
	if countExecutions != 3 {
		t.Fatalf("first apply executed %d rows, want 3", countExecutions)
	}
	// Duplicate delivery of the same token: acknowledged, not re-executed.
	if err := w.Dataset(apply, &DatasetReply{}); err != nil {
		t.Fatal(err)
	}
	if countExecutions != 3 {
		t.Fatalf("duplicate apply re-executed (%d rows)", countExecutions)
	}
	// A fresh token executes again.
	apply2 := *apply
	apply2.TargetName = "dst2"
	apply2.Token = 9
	if err := w.Dataset(&apply2, &DatasetReply{}); err != nil {
		t.Fatal(err)
	}
	if countExecutions != 6 {
		t.Fatalf("fresh token did not execute: %d rows", countExecutions)
	}
}

func TestDatasetTokenNotRecordedOnFailure(t *testing.T) {
	w := NewWorker()
	// Apply against a missing source fails with ErrStateLost …
	apply := &DatasetArgs{
		Op: "apply", SourceName: "missing", TargetName: "dst",
		MapOp: "test/double", Token: 11,
	}
	if err := w.Dataset(apply, &DatasetReply{}); !errors.Is(err, ErrStateLost) {
		t.Fatalf("err = %v, want ErrStateLost", err)
	}
	// … and the token stays unspent: after the source appears, the same
	// token must execute.
	store := &DatasetArgs{Op: "store", TargetName: "missing", Rows: makeRows(2), Token: 12}
	if err := w.Dataset(store, &DatasetReply{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Dataset(apply, &DatasetReply{}); err != nil {
		t.Fatalf("retry under the same token failed: %v", err)
	}
	var count DatasetReply
	if err := w.Dataset(&DatasetArgs{Op: "count", SourceName: "dst"}, &count); err != nil {
		t.Fatal(err)
	}
	if count.Count != 2 {
		t.Fatalf("retried apply produced %d rows, want 2", count.Count)
	}
}

func TestTokenSetWindowEviction(t *testing.T) {
	var s tokenSet
	for tok := uint64(1); tok <= tokenWindow+10; tok++ {
		s.add(tok)
	}
	if s.has(1) || s.has(5) {
		t.Fatal("oldest tokens not evicted from the window")
	}
	if !s.has(tokenWindow + 10) {
		t.Fatal("newest token missing")
	}
}

func TestDetectorConfigRetryOverridesClusterPolicy(t *testing.T) {
	c := NewLocalCluster(1, 0)
	defer c.Close()
	custom := RetryPolicy{MaxAttempts: 9, Timeout: time.Second}
	NewDetector(c, 1, DetectorConfig{Retry: custom})
	if got := c.RetryPolicy().MaxAttempts; got != 9 {
		t.Fatalf("detector did not install its retry policy: MaxAttempts = %d", got)
	}
	if got := c.RetryPolicy().Timeout; got != time.Second {
		t.Fatalf("detector did not install its timeout: %v", got)
	}
	// Zero config keeps the cluster's policy.
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5})
	NewDetector(c, 1, DetectorConfig{})
	if got := c.RetryPolicy().MaxAttempts; got != 5 {
		t.Fatalf("zero DetectorConfig.Retry clobbered the cluster policy: MaxAttempts = %d", got)
	}
}

// TestStateLostTriggersRebuildWithoutRevive covers the crash-restart
// discovery path: a worker that answers but lost its shards is rebuilt in
// place (no replacement), and the call then succeeds.
func TestStateLostTriggersRebuildWithoutRevive(t *testing.T) {
	g, _, _ := testWorld(23, 100, 30)
	c := NewLocalCluster(2, 0)
	defer c.Close()
	if err := c.LoadGraph(g, 2); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash-restart the master did not see: wipe worker 0
	// behind the transport's back.
	lt := c.transport.(*localTransport)
	lt.workers[0].reset()

	var u int32
	for u = 0; int(u) < g.NumNodes(); u++ {
		if wk, err := c.workerOf(u); err == nil && wk == 0 {
			break
		}
	}
	adjs, err := c.fetch([]int32{u})
	if err != nil {
		t.Fatalf("fetch did not recover from a silent state wipe: %v", err)
	}
	if len(adjs) != 1 || len(adjs[0].Friends) != len(g.Friends(graph.NodeID(u))) {
		t.Fatalf("rebuilt adjacency wrong: %+v", adjs)
	}
}
