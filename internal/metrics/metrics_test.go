package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEvaluateConfusion(t *testing.T) {
	isFake := []bool{true, true, false, false, true}
	c, err := Evaluate([]graph.NodeID{0, 2}, isFake)
	if err != nil {
		t.Fatal(err)
	}
	want := Confusion{TruePositives: 1, FalsePositives: 1, TrueNegatives: 1, FalseNegatives: 2}
	if c != want {
		t.Fatalf("Evaluate = %+v, want %+v", c, want)
	}
	if math.Abs(c.Precision()-0.5) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
}

func TestEvaluateErrors(t *testing.T) {
	isFake := []bool{true, false}
	if _, err := Evaluate([]graph.NodeID{5}, isFake); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Evaluate([]graph.NodeID{0, 0}, isFake); err == nil {
		t.Error("duplicate declaration accepted")
	}
}

func TestPrecisionEqualsRecallAtTrueCount(t *testing.T) {
	// The paper's §VI-A observation: declaring exactly as many suspects
	// as there are fakes makes precision and recall identical.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 41))
		const n = 50
		isFake := make([]bool, n)
		nFake := 0
		for i := range isFake {
			if r.IntN(3) == 0 {
				isFake[i] = true
				nFake++
			}
		}
		if nFake == 0 {
			return true
		}
		perm := r.Perm(n)
		declared := make([]graph.NodeID, nFake)
		for i := range declared {
			declared[i] = graph.NodeID(perm[i])
		}
		c, err := Evaluate(declared, isFake)
		if err != nil {
			return false
		}
		return math.Abs(c.Precision()-c.Recall()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	c := Confusion{TruePositives: 2, FalsePositives: 2, FalseNegatives: 2}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Fatalf("F1 = %v, want 0.5", c.F1())
	}
	if (Confusion{}).F1() != 0 {
		t.Fatal("empty confusion F1 != 0")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	// Fakes scored strictly below legits: AUC = 1.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	isFake := []bool{true, true, false, false}
	if auc := AUC(scores, isFake); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	isFake := []bool{true, true, false, false}
	if auc := AUC(scores, isFake); math.Abs(auc) > 1e-12 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	isFake := []bool{true, false, true, false}
	if auc := AUC(scores, isFake); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("all-tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if auc := AUC([]float64{1, 2}, []bool{false, false}); auc != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", auc)
	}
}

func TestAUCMatchesPairCounting(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(30)
		scores := make([]float64, n)
		isFake := make([]bool, n)
		for i := range scores {
			scores[i] = float64(r.IntN(10)) // ties likely
			isFake[i] = r.IntN(2) == 0
		}
		// Direct pair counting.
		wins, pairs := 0.0, 0.0
		for i := range scores {
			if !isFake[i] {
				continue
			}
			for j := range scores {
				if isFake[j] {
					continue
				}
				pairs++
				switch {
				case scores[j] > scores[i]:
					wins++
				case scores[j] == scores[i]:
					wins += 0.5
				}
			}
		}
		want := 0.5
		if pairs > 0 {
			want = wins / pairs
		}
		return math.Abs(AUC(scores, isFake)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestROCMonotone(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 43))
	n := 40
	scores := make([]float64, n)
	isFake := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		isFake[i] = r.IntN(2) == 0
	}
	curve := ROC(scores, isFake)
	if curve[0].FalsePositiveRate != 0 || curve[0].TruePositiveRate != 0 {
		t.Fatal("ROC does not start at origin")
	}
	last := curve[len(curve)-1]
	if last.FalsePositiveRate != 1 || last.TruePositiveRate != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FalsePositiveRate < curve[i-1].FalsePositiveRate ||
			curve[i].TruePositiveRate < curve[i-1].TruePositiveRate {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestAUCLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AUC([]float64{1}, []bool{true, false})
}
