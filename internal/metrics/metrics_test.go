package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEvaluateConfusion(t *testing.T) {
	isFake := []bool{true, true, false, false, true}
	c, err := Evaluate([]graph.NodeID{0, 2}, isFake)
	if err != nil {
		t.Fatal(err)
	}
	want := Confusion{TruePositives: 1, FalsePositives: 1, TrueNegatives: 1, FalseNegatives: 2}
	if c != want {
		t.Fatalf("Evaluate = %+v, want %+v", c, want)
	}
	if math.Abs(c.Precision()-0.5) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
}

func TestEvaluateErrors(t *testing.T) {
	isFake := []bool{true, false}
	if _, err := Evaluate([]graph.NodeID{5}, isFake); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Evaluate([]graph.NodeID{0, 0}, isFake); err == nil {
		t.Error("duplicate declaration accepted")
	}
}

func TestPrecisionEqualsRecallAtTrueCount(t *testing.T) {
	// The paper's §VI-A observation: declaring exactly as many suspects
	// as there are fakes makes precision and recall identical.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 41))
		const n = 50
		isFake := make([]bool, n)
		nFake := 0
		for i := range isFake {
			if r.IntN(3) == 0 {
				isFake[i] = true
				nFake++
			}
		}
		if nFake == 0 {
			return true
		}
		perm := r.Perm(n)
		declared := make([]graph.NodeID, nFake)
		for i := range declared {
			declared[i] = graph.NodeID(perm[i])
		}
		c, err := Evaluate(declared, isFake)
		if err != nil {
			return false
		}
		return math.Abs(c.Precision()-c.Recall()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	c := Confusion{TruePositives: 2, FalsePositives: 2, FalseNegatives: 2}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Fatalf("F1 = %v, want 0.5", c.F1())
	}
	if (Confusion{}).F1() != 0 {
		t.Fatal("empty confusion F1 != 0")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	// Fakes scored strictly below legits: AUC = 1.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	isFake := []bool{true, true, false, false}
	if auc := AUC(scores, isFake); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	isFake := []bool{true, true, false, false}
	if auc := AUC(scores, isFake); math.Abs(auc) > 1e-12 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	isFake := []bool{true, false, true, false}
	if auc := AUC(scores, isFake); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("all-tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if auc := AUC([]float64{1, 2}, []bool{false, false}); auc != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", auc)
	}
}

func TestAUCMatchesPairCounting(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(30)
		scores := make([]float64, n)
		isFake := make([]bool, n)
		for i := range scores {
			scores[i] = float64(r.IntN(10)) // ties likely
			isFake[i] = r.IntN(2) == 0
		}
		// Direct pair counting.
		wins, pairs := 0.0, 0.0
		for i := range scores {
			if !isFake[i] {
				continue
			}
			for j := range scores {
				if isFake[j] {
					continue
				}
				pairs++
				switch {
				case scores[j] > scores[i]:
					wins++
				case scores[j] == scores[i]:
					wins += 0.5
				}
			}
		}
		want := 0.5
		if pairs > 0 {
			want = wins / pairs
		}
		return math.Abs(AUC(scores, isFake)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestROCMonotone(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 43))
	n := 40
	scores := make([]float64, n)
	isFake := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		isFake[i] = r.IntN(2) == 0
	}
	curve := ROC(scores, isFake)
	if curve[0].FalsePositiveRate != 0 || curve[0].TruePositiveRate != 0 {
		t.Fatal("ROC does not start at origin")
	}
	last := curve[len(curve)-1]
	if last.FalsePositiveRate != 1 || last.TruePositiveRate != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FalsePositiveRate < curve[i-1].FalsePositiveRate ||
			curve[i].TruePositiveRate < curve[i-1].TruePositiveRate {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestAUCLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AUC([]float64{1}, []bool{true, false})
}

func TestRecallAtPrecisionBasic(t *testing.T) {
	// Scores separate perfectly: fakes at 0.9, legits at 0.1.
	susp := []float64{0.9, 0.9, 0.1, 0.1, 0.1}
	isFake := []bool{true, true, false, false, false}
	p := RecallAtPrecision(susp, isFake, 0.8)
	if !p.Feasible || p.Recall != 1 || p.Precision != 1 || p.Threshold != 0.9 {
		t.Fatalf("perfect separation: %+v", p)
	}
}

func TestRecallAtPrecisionTradesRecallForPrecision(t *testing.T) {
	// Declaring the top 2 gives precision 1, recall 0.5; widening to the
	// top 4 gives precision 0.75, recall 0.75. The floor decides which
	// operating point wins.
	susp := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	isFake := []bool{true, true, false, true, false, true}
	strict := RecallAtPrecision(susp, isFake, 0.9)
	if !strict.Feasible || strict.Recall != 0.5 || strict.Precision != 1 {
		t.Fatalf("strict floor: %+v", strict)
	}
	lax := RecallAtPrecision(susp, isFake, 0.7)
	if !lax.Feasible || lax.Recall != 0.75 || lax.Precision != 0.75 {
		t.Fatalf("lax floor: %+v", lax)
	}
}

func TestRecallAtPrecisionInfeasible(t *testing.T) {
	// Legits outscore fakes everywhere: no threshold reaches 0.9 precision.
	susp := []float64{0.9, 0.8, 0.2, 0.1}
	isFake := []bool{false, false, true, true}
	p := RecallAtPrecision(susp, isFake, 0.9)
	if p.Feasible || p.Recall != 0 || p.Precision != 0 {
		t.Fatalf("infeasible floor produced %+v", p)
	}
}

func TestRecallAtPrecisionDegenerateClasses(t *testing.T) {
	if p := RecallAtPrecision([]float64{1, 0}, []bool{false, false}, 0.5); p.Feasible {
		t.Fatalf("no fakes: %+v", p)
	}
	if p := RecallAtPrecision([]float64{1, 0}, []bool{true, true}, 0.5); p.Feasible {
		t.Fatalf("all fakes: %+v", p)
	}
	if p := RecallAtPrecision(nil, nil, 0.5); p.Feasible {
		t.Fatalf("empty input: %+v", p)
	}
}

func TestRecallAtPrecisionTiesGroupTogether(t *testing.T) {
	// All nodes share one score: the only operating point declares all.
	susp := []float64{0.5, 0.5, 0.5, 0.5}
	isFake := []bool{true, false, true, false}
	p := RecallAtPrecision(susp, isFake, 0.5)
	if !p.Feasible || p.Recall != 1 || p.Precision != 0.5 {
		t.Fatalf("tied scores: %+v", p)
	}
	if q := RecallAtPrecision(susp, isFake, 0.6); q.Feasible {
		t.Fatalf("tied scores above floor: %+v", q)
	}
}

func TestRecallAtPrecisionAgainstExhaustive(t *testing.T) {
	// The swept optimum must match a brute-force scan over all thresholds.
	r := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.IntN(40)
		susp := make([]float64, n)
		isFake := make([]bool, n)
		fakes := 0
		for i := range susp {
			susp[i] = float64(r.IntN(8)) / 8 // coarse grid forces ties
			isFake[i] = r.IntN(2) == 0
			if isFake[i] {
				fakes++
			}
		}
		if fakes == 0 || fakes == n {
			continue
		}
		floor := 0.6
		got := RecallAtPrecision(susp, isFake, floor)
		var want OperatingPoint
		for _, th := range susp {
			tp, fp := 0, 0
			for i := range susp {
				if susp[i] >= th {
					if isFake[i] {
						tp++
					} else {
						fp++
					}
				}
			}
			if tp+fp == 0 {
				continue
			}
			prec := float64(tp) / float64(tp+fp)
			rec := float64(tp) / float64(fakes)
			if prec >= floor && (!want.Feasible || rec > want.Recall ||
				(rec == want.Recall && prec > want.Precision)) {
				want = OperatingPoint{Threshold: th, Precision: prec, Recall: rec, Feasible: true}
			}
		}
		if got.Feasible != want.Feasible || got.Recall != want.Recall || got.Precision != want.Precision {
			t.Fatalf("trial %d: swept %+v, brute force %+v", trial, got, want)
		}
	}
}

func TestOperatingPointF1(t *testing.T) {
	p := OperatingPoint{Precision: 0.5, Recall: 1, Feasible: true}
	if math.Abs(p.F1()-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v", p.F1())
	}
	if (OperatingPoint{}).F1() != 0 {
		t.Fatal("zero point F1 not 0")
	}
}
