// Package metrics implements the evaluation measures of §VI: the
// precision/recall of a fixed-size detection set (identical when the
// declared count equals the true positive count, as the paper notes) and
// the area under the ROC curve used to judge SybilRank's ranking quality.
package metrics
