package metrics

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// Precision returns TP/(TP+FP), or 0 when nothing was declared positive.
func (c Confusion) Precision() float64 {
	d := c.TruePositives + c.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	d := c.TruePositives + c.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate builds the confusion matrix of a declared suspect set against
// ground truth. isFake must cover every node ID appearing in declared.
func Evaluate(declared []graph.NodeID, isFake []bool) (Confusion, error) {
	var c Confusion
	seen := make(map[graph.NodeID]bool, len(declared))
	for _, u := range declared {
		if u < 0 || int(u) >= len(isFake) {
			return Confusion{}, fmt.Errorf("metrics: declared node %d outside ground truth", u)
		}
		if seen[u] {
			return Confusion{}, fmt.Errorf("metrics: node %d declared twice", u)
		}
		seen[u] = true
		if isFake[u] {
			c.TruePositives++
		} else {
			c.FalsePositives++
		}
	}
	for u, fake := range isFake {
		if seen[graph.NodeID(u)] {
			continue
		}
		if fake {
			c.FalseNegatives++
		} else {
			c.TrueNegatives++
		}
	}
	return c, nil
}

// PrecisionAtK is the paper's accuracy metric: the fraction of the declared
// suspects that are truly fake. When len(declared) equals the number of
// fakes, it coincides with recall (§VI-A).
func PrecisionAtK(declared []graph.NodeID, isFake []bool) (float64, error) {
	c, err := Evaluate(declared, isFake)
	if err != nil {
		return 0, err
	}
	return c.Precision(), nil
}

// AUC computes the area under the ROC curve for a scoring where *higher*
// scores mean *more trusted* (SybilRank's trust ranks): the probability
// that a uniformly random legitimate node outscores a uniformly random
// fake, counting ties as half. scores and isFake must have equal length.
// It returns 0.5 when either class is empty (no ranking information).
func AUC(scores []float64, isFake []bool) float64 {
	if len(scores) != len(isFake) {
		panic("metrics: AUC length mismatch")
	}
	type item struct {
		score float64
		fake  bool
	}
	items := make([]item, len(scores))
	for i := range scores {
		items[i] = item{scores[i], isFake[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })

	// Mann–Whitney U via average ranks, with tie groups sharing their
	// mean rank.
	nFake, nLegit := 0, 0
	var fakeRankSum float64
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: mean of i+1..j
		for k := i; k < j; k++ {
			if items[k].fake {
				nFake++
				fakeRankSum += avgRank
			} else {
				nLegit++
			}
		}
		i = j
	}
	if nFake == 0 || nLegit == 0 {
		return 0.5
	}
	// U counts (legit > fake) pairs; fakes should sit at the low ranks.
	u := fakeRankSum - float64(nFake)*float64(nFake+1)/2
	return 1 - u/(float64(nFake)*float64(nLegit))
}

// OperatingPoint is one threshold choice on a suspicion scoring: declaring
// every node with suspicion >= Threshold yields the given precision and
// recall over the ground truth.
type OperatingPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
	// Feasible reports whether any threshold met the precision floor the
	// point was selected under; when false the other fields are zero.
	Feasible bool
}

// F1 returns the harmonic mean of the point's precision and recall.
func (p OperatingPoint) F1() float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

// RecallAtPrecision sweeps the declaration threshold over a suspicion
// scoring (higher = more suspicious) and returns the operating point with
// the highest recall among those whose precision is at least minPrecision,
// breaking recall ties toward higher precision, then higher threshold.
// Fakes are the positive class. When no threshold reaches the floor — or
// either class is empty — the returned point has Feasible false and zero
// metrics; a defense that cannot operate at the pinned precision scores
// zero recall in the matrix rather than being graded on a laxer floor.
func RecallAtPrecision(suspicion []float64, isFake []bool, minPrecision float64) OperatingPoint {
	if len(suspicion) != len(isFake) {
		panic("metrics: RecallAtPrecision length mismatch")
	}
	type item struct {
		score float64
		fake  bool
	}
	items := make([]item, len(suspicion))
	nFake := 0
	for i := range suspicion {
		items[i] = item{suspicion[i], isFake[i]}
		if isFake[i] {
			nFake++
		}
	}
	if nFake == 0 || nFake == len(items) {
		return OperatingPoint{}
	}
	// Descending by score: declaring a prefix = thresholding at its last
	// distinct score.
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	var best OperatingPoint
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].fake {
				tp++
			} else {
				fp++
			}
			j++
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(nFake)
		if precision >= minPrecision {
			better := !best.Feasible || recall > best.Recall ||
				(recall == best.Recall && precision > best.Precision)
			if better {
				best = OperatingPoint{
					Threshold: items[i].score,
					Precision: precision,
					Recall:    recall,
					Feasible:  true,
				}
			}
		}
		i = j
	}
	return best
}

// ROCPoint is one point of an ROC curve.
type ROCPoint struct {
	FalsePositiveRate float64
	TruePositiveRate  float64
}

// ROC returns the ROC curve of a trust scoring (higher = more trusted),
// sweeping the threshold from most to least suspicious. Fakes are the
// positive class, so a point's TPR is the fraction of fakes scored at or
// below the threshold.
func ROC(scores []float64, isFake []bool) []ROCPoint {
	if len(scores) != len(isFake) {
		panic("metrics: ROC length mismatch")
	}
	type item struct {
		score float64
		fake  bool
	}
	items := make([]item, len(scores))
	nFake, nLegit := 0, 0
	for i := range scores {
		items[i] = item{scores[i], isFake[i]}
		if isFake[i] {
			nFake++
		} else {
			nLegit++
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })

	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].fake {
				tp++
			} else {
				fp++
			}
			j++
		}
		var pt ROCPoint
		if nLegit > 0 {
			pt.FalsePositiveRate = float64(fp) / float64(nLegit)
		}
		if nFake > 0 {
			pt.TruePositiveRate = float64(tp) / float64(nFake)
		}
		curve = append(curve, pt)
		i = j
	}
	return curve
}
