// Package attack simulates friend-spam attacks on a legitimate social
// graph, reproducing the workload model of the paper's evaluation (§VI-A)
// and the strategic-attacker overlays of §VI-B/§VI-C.
//
// A Scenario injects a Sybil region into a base graph of legitimate users
// and synthesizes friend-request traffic:
//
//   - Every friendship is an accepted request; every rejection edge a
//     rejected one. The full directed request log is retained because the
//     VoteTrust baseline consumes requests, not the augmented graph.
//   - Fake accounts arrive one at a time, each befriending
//     IntraLinksPerFake earlier fakes (accepted intra requests).
//   - Spamming fakes send RequestsPerSpammer requests to distinct random
//     legitimate users; each is rejected with probability
//     SpamRejectionRate (the paper's 70% default, measured on RenRen).
//   - Legitimate users reject one another sporadically: user u receives
//     round(sent_u·ρ/(1−ρ)) rejections from random non-friend legitimate
//     users, where sent_u ≈ half of u's friendships, making the aggregate
//     legitimate acceptance rate 1−ρ (ρ = LegitRejectionRate, default 20%).
//   - CarelessFraction of legitimate users each send one request that a
//     random fake accepts — the paper's stress-test for careless users.
//
// Strategic overlays: collusion (extra accepted intra-fake requests,
// Fig 13), self-rejection whitewashing (Fig 14), and spammers rejecting
// requests from legitimate users (Fig 15).
package attack
