package attack

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FieldRangeError reports a Scenario parameter outside its valid interval.
// NaN values are rejected with the same error: every comparison against a
// NaN is false, so without the explicit check a NaN fraction would sail
// through range validation and silently build a degenerate world.
type FieldRangeError struct {
	// Field is the Scenario field name, e.g. "SpammerFraction".
	Field string
	// Value is the rejected value.
	Value float64
	// Min and Max bound the valid interval; MaxExclusive marks [Min, Max)
	// instead of [Min, Max].
	Min, Max     float64
	MaxExclusive bool
}

func (e *FieldRangeError) Error() string {
	close := "]"
	if e.MaxExclusive {
		close = ")"
	}
	return fmt.Sprintf("attack: %s %v outside [%v, %v%s", e.Field, e.Value, e.Min, e.Max, close)
}

// checkFraction validates a rate/fraction field against [0, 1], or [0, 1)
// when maxExclusive is set.
func checkFraction(field string, v float64, maxExclusive bool) error {
	bad := math.IsNaN(v) || v < 0
	if maxExclusive {
		bad = bad || v >= 1
	} else {
		bad = bad || v > 1
	}
	if bad {
		return &FieldRangeError{Field: field, Value: v, Min: 0, Max: 1, MaxExclusive: maxExclusive}
	}
	return nil
}

// Request is one friend request with its outcome. Accepted requests
// correspond to friendship edges in the augmented graph; rejected ones to
// rejection edges ⟨To, From⟩.
type Request struct {
	From, To graph.NodeID
	Accepted bool
}

// Scenario describes one simulated attack. The zero value is not useful;
// start from Baseline() and override fields.
type Scenario struct {
	// NumFakes is the size of the injected Sybil region (paper: 10000).
	NumFakes int
	// IntraLinksPerFake is how many earlier fakes each arriving fake
	// befriends (paper: 6).
	IntraLinksPerFake int
	// SpammerFraction is the fraction of fakes that send friend spam
	// (1.0 in most experiments; 0.5 in Fig 10 and Fig 16). Must lie in
	// [0, 1]; anything else (including NaN) is a *FieldRangeError.
	SpammerFraction float64
	// RequestsPerSpammer is the spam volume per spamming fake (paper: 20;
	// Fig 9/10 sweep 5–50). Must lie in [0, base.NumNodes()].
	RequestsPerSpammer int
	// SpamRejectionRate is the probability a legitimate user rejects a
	// spam request (paper default 0.7; Fig 11 sweeps it). Must lie in
	// [0, 1]; anything else (including NaN) is a *FieldRangeError.
	SpamRejectionRate float64
	// LegitRejectionRate is the rejection rate of requests among
	// legitimate users (paper default 0.2; Fig 12 sweeps it). Must lie in
	// [0, 1) — 1 would demand infinitely many rejections per sent request;
	// anything else (including NaN) is a *FieldRangeError.
	LegitRejectionRate float64
	// CarelessFraction of legitimate users send one accepted request to a
	// random fake (paper: 0.15). Must lie in [0, 1]; anything else
	// (including NaN) is a *FieldRangeError.
	CarelessFraction float64

	// CollusionExtraPerFake adds this many accepted requests from each
	// fake to random other fakes (Fig 13 sweeps 0–40).
	CollusionExtraPerFake int

	// SelfRejection, when non-nil, splits the fakes in half: the sender
	// half each direct SelfRejection.Requests requests at the whitewash
	// half, rejected with probability SelfRejection.Rate (Fig 14).
	SelfRejection *SelfRejection

	// RejectedLegitRequests makes this many random legitimate users send
	// one request each to a random fake that rejects it (Fig 15 sweeps
	// 16K–160K). Sampling is with replacement over (legit, fake) pairs;
	// duplicate pairs collapse into one rejection edge as in the paper's
	// graph model.
	RejectedLegitRequests int

	// Seed drives all randomness in the build.
	Seed uint64
}

// SelfRejection configures the whitewashing overlay of Fig 14.
type SelfRejection struct {
	// Requests per sender fake directed at the whitewash half (paper: 20).
	Requests int
	// Rate is the probability each such request is rejected. Must lie in
	// [0, 1]; anything else (including NaN) is a *FieldRangeError.
	Rate float64
}

// Baseline returns the paper's moderate baseline attack setting (§VI-A).
func Baseline() Scenario {
	return Scenario{
		NumFakes:           10000,
		IntraLinksPerFake:  6,
		SpammerFraction:    1.0,
		RequestsPerSpammer: 20,
		SpamRejectionRate:  0.7,
		LegitRejectionRate: 0.2,
		CarelessFraction:   0.15,
	}
}

// World is a built attack scenario: the augmented graph, ground truth, and
// the full request log.
type World struct {
	Graph *graph.Graph
	// NumLegit is the size of the legitimate region; legitimate users
	// occupy IDs [0, NumLegit) and fakes [NumLegit, NumNodes).
	NumLegit int
	// IsFake is the ground-truth label per node.
	IsFake []bool
	// SpamSenders lists the fakes that sent friend spam.
	SpamSenders []graph.NodeID
	// Whitewashed lists the self-rejection whitewash targets (Fig 14).
	Whitewashed []graph.NodeID
	// Requests is the complete directed request log.
	Requests []Request
}

// NumFakes reports the size of the injected Sybil region.
func (w *World) NumFakes() int { return w.Graph.NumNodes() - w.NumLegit }

// Fakes returns the IDs of all fake accounts.
func (w *World) Fakes() []graph.NodeID {
	out := make([]graph.NodeID, 0, w.NumFakes())
	for u := w.NumLegit; u < w.Graph.NumNodes(); u++ {
		out = append(out, graph.NodeID(u))
	}
	return out
}

// Build runs the scenario against a copy of the base legitimate graph.
// base must contain only friendships (the legitimate region's OSN links);
// any rejections it carries are rejected with an error.
func (s Scenario) Build(base *graph.Graph) (*World, error) {
	if err := s.Validate(base); err != nil {
		return nil, err
	}
	src := rng.New(s.Seed)
	w := &World{
		Graph:    base.Clone(),
		NumLegit: base.NumNodes(),
	}

	s.injectFakeRegion(w, src.Stream("arrival"))
	s.legitRequestTraffic(w, src.Stream("legit"))
	s.spamTraffic(w, src.Stream("spam"))
	s.carelessTraffic(w, src.Stream("careless"))
	s.collusionTraffic(w, src.Stream("collusion"))
	s.selfRejectionTraffic(w, src.Stream("selfrej"))
	s.rejectLegitTraffic(w, src.Stream("rejlegit"))

	w.IsFake = make([]bool, w.Graph.NumNodes())
	for u := w.NumLegit; u < w.Graph.NumNodes(); u++ {
		w.IsFake[u] = true
	}
	return w, nil
}

// Validate checks the scenario's parameters against the base graph it
// would build on. Fraction and rate fields outside their documented ranges
// (or NaN) yield a *FieldRangeError naming the offending field; structural
// problems (rejections in the base, non-positive NumFakes, oversized
// RequestsPerSpammer) yield plain errors. Build calls Validate first, so a
// bad scenario fails loudly instead of producing a degenerate world.
func (s Scenario) Validate(base *graph.Graph) error {
	if base.NumRejections() != 0 {
		return fmt.Errorf("attack: base graph already carries %d rejections", base.NumRejections())
	}
	if s.NumFakes <= 0 {
		return fmt.Errorf("attack: NumFakes %d must be positive", s.NumFakes)
	}
	if err := checkFraction("SpammerFraction", s.SpammerFraction, false); err != nil {
		return err
	}
	if err := checkFraction("SpamRejectionRate", s.SpamRejectionRate, false); err != nil {
		return err
	}
	if err := checkFraction("LegitRejectionRate", s.LegitRejectionRate, true); err != nil {
		return err
	}
	if err := checkFraction("CarelessFraction", s.CarelessFraction, false); err != nil {
		return err
	}
	if s.RequestsPerSpammer < 0 || s.RequestsPerSpammer > base.NumNodes() {
		return fmt.Errorf("attack: RequestsPerSpammer %d out of range", s.RequestsPerSpammer)
	}
	if s.SelfRejection != nil {
		if err := checkFraction("SelfRejection.Rate", s.SelfRejection.Rate, false); err != nil {
			return err
		}
	}
	return nil
}

// injectFakeRegion adds the Sybil region: each arriving fake befriends
// IntraLinksPerFake earlier fakes (accepted requests sent by the arrival).
func (s Scenario) injectFakeRegion(w *World, r *rand.Rand) {
	first := int(w.Graph.AddNodes(s.NumFakes))
	for i := 0; i < s.NumFakes; i++ {
		u := graph.NodeID(first + i)
		links := min(s.IntraLinksPerFake, i)
		if links == 0 {
			continue
		}
		for _, j := range rng.Sample(r, i, links) {
			v := graph.NodeID(first + j)
			w.Graph.AddFriendship(u, v)
			w.Requests = append(w.Requests, Request{From: u, To: v, Accepted: true})
		}
	}
}

// legitRequestTraffic materializes the request history behind the base
// graph's friendships and adds the sporadic rejections among legitimate
// users: every friendship is an accepted request with a uniform-random
// sender, and each user u receives round(sent_u·ρ/(1−ρ)) rejections from
// random non-friend legitimate users.
func (s Scenario) legitRequestTraffic(w *World, r *rand.Rand) {
	g := w.Graph
	sent := make([]int, w.NumLegit)
	for u := 0; u < w.NumLegit; u++ {
		for _, v := range g.Friends(graph.NodeID(u)) {
			if graph.NodeID(u) < v && int(v) < w.NumLegit {
				from, to := graph.NodeID(u), v
				if r.IntN(2) == 0 {
					from, to = to, from
				}
				sent[from]++
				w.Requests = append(w.Requests, Request{From: from, To: to, Accepted: true})
			}
		}
	}
	if s.LegitRejectionRate <= 0 || w.NumLegit < 2 {
		return
	}
	odds := s.LegitRejectionRate / (1 - s.LegitRejectionRate)
	for u := 0; u < w.NumLegit; u++ {
		rejections := int(float64(sent[u])*odds + 0.5)
		for i := 0; i < rejections; i++ {
			// Random non-friend legitimate rejecter; duplicates collapse.
			for attempt := 0; attempt < 32; attempt++ {
				v := graph.NodeID(r.IntN(w.NumLegit))
				if v == graph.NodeID(u) || g.HasFriendship(graph.NodeID(u), v) {
					continue
				}
				g.AddRejection(v, graph.NodeID(u))
				w.Requests = append(w.Requests, Request{From: graph.NodeID(u), To: v, Accepted: false})
				break
			}
		}
	}
}

// spamTraffic sends each spamming fake's requests to distinct random
// legitimate targets; each is rejected with probability SpamRejectionRate.
func (s Scenario) spamTraffic(w *World, r *rand.Rand) {
	if s.RequestsPerSpammer == 0 || s.SpammerFraction == 0 {
		return
	}
	numSenders := int(float64(s.NumFakes)*s.SpammerFraction + 0.5)
	reqs := min(s.RequestsPerSpammer, w.NumLegit)
	for i := 0; i < numSenders; i++ {
		u := graph.NodeID(w.NumLegit + i)
		w.SpamSenders = append(w.SpamSenders, u)
		for _, t := range rng.Sample(r, w.NumLegit, reqs) {
			target := graph.NodeID(t)
			if r.Float64() < s.SpamRejectionRate {
				w.Graph.AddRejection(target, u)
				w.Requests = append(w.Requests, Request{From: u, To: target, Accepted: false})
			} else {
				w.Graph.AddFriendship(u, target)
				w.Requests = append(w.Requests, Request{From: u, To: target, Accepted: true})
			}
		}
	}
}

// carelessTraffic lets CarelessFraction of legitimate users each send one
// request that a random fake accepts (§VI-A stress test).
func (s Scenario) carelessTraffic(w *World, r *rand.Rand) {
	count := int(float64(w.NumLegit)*s.CarelessFraction + 0.5)
	if count == 0 {
		return
	}
	for _, uIdx := range rng.Sample(r, w.NumLegit, count) {
		u := graph.NodeID(uIdx)
		fake := graph.NodeID(w.NumLegit + r.IntN(s.NumFakes))
		w.Graph.AddFriendship(u, fake)
		w.Requests = append(w.Requests, Request{From: u, To: fake, Accepted: true})
	}
}

// collusionTraffic adds CollusionExtraPerFake accepted requests from every
// fake to random other fakes (Fig 13).
func (s Scenario) collusionTraffic(w *World, r *rand.Rand) {
	if s.CollusionExtraPerFake <= 0 || s.NumFakes < 2 {
		return
	}
	for i := 0; i < s.NumFakes; i++ {
		u := graph.NodeID(w.NumLegit + i)
		added := 0
		for attempt := 0; added < s.CollusionExtraPerFake && attempt < 20*s.CollusionExtraPerFake; attempt++ {
			v := graph.NodeID(w.NumLegit + r.IntN(s.NumFakes))
			if v == u || !w.Graph.AddFriendship(u, v) {
				continue
			}
			w.Requests = append(w.Requests, Request{From: u, To: v, Accepted: true})
			added++
		}
	}
}

// selfRejectionTraffic applies the Fig 14 whitewashing overlay: the first
// half of the fakes (the spam senders) each send SelfRejection.Requests
// requests to the second half, rejected with probability
// SelfRejection.Rate. The rejections fabricate a low-ratio cut around the
// sender half, attempting to whitewash the rejecting half.
func (s Scenario) selfRejectionTraffic(w *World, r *rand.Rand) {
	if s.SelfRejection == nil || s.NumFakes < 2 {
		return
	}
	half := s.NumFakes / 2
	for i := half; i < s.NumFakes; i++ {
		w.Whitewashed = append(w.Whitewashed, graph.NodeID(w.NumLegit+i))
	}
	reqs := min(s.SelfRejection.Requests, s.NumFakes-half)
	for i := 0; i < half; i++ {
		u := graph.NodeID(w.NumLegit + i)
		for _, j := range rng.Sample(r, s.NumFakes-half, reqs) {
			target := graph.NodeID(w.NumLegit + half + j)
			if r.Float64() < s.SelfRejection.Rate {
				w.Graph.AddRejection(target, u)
				w.Requests = append(w.Requests, Request{From: u, To: target, Accepted: false})
			} else {
				w.Graph.AddFriendship(u, target)
				w.Requests = append(w.Requests, Request{From: u, To: target, Accepted: true})
			}
		}
	}
}

// rejectLegitTraffic applies the Fig 15 overlay: RejectedLegitRequests
// requests from random legitimate users to random fakes, all rejected by
// the fakes.
func (s Scenario) rejectLegitTraffic(w *World, r *rand.Rand) {
	for i := 0; i < s.RejectedLegitRequests; i++ {
		u := graph.NodeID(r.IntN(w.NumLegit))
		fake := graph.NodeID(w.NumLegit + r.IntN(s.NumFakes))
		w.Graph.AddRejection(fake, u)
		w.Requests = append(w.Requests, Request{From: u, To: fake, Accepted: false})
	}
}

// SampleSeeds draws the OSN provider's prior knowledge from the ground
// truth: nLegit legitimate seeds and nSpam spammer seeds, uniformly at
// random (§III-B: "obtained by manually inspecting a set of random users").
// Spammer seeds are drawn from the spam senders when any exist, since those
// are the accounts an inspection of reported requests would surface.
func (w *World) SampleSeeds(r *rand.Rand, nLegit, nSpam int) core.Seeds {
	var seeds core.Seeds
	nLegit = min(nLegit, w.NumLegit)
	for _, u := range rng.Sample(r, w.NumLegit, nLegit) {
		seeds.Legit = append(seeds.Legit, graph.NodeID(u))
	}
	pool := w.SpamSenders
	if len(pool) == 0 {
		pool = w.Fakes()
	}
	nSpam = min(nSpam, len(pool))
	for _, i := range rng.Sample(r, len(pool), nSpam) {
		seeds.Spammer = append(seeds.Spammer, pool[i])
	}
	return seeds
}
