package attack

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func smallBase(seed uint64) *graph.Graph {
	return gen.BarabasiAlbert(rand.New(rand.NewPCG(seed, 71)), 1000, 4)
}

func smallScenario() Scenario {
	s := Baseline()
	s.NumFakes = 500
	s.Seed = 7
	return s
}

func TestBuildBasicShape(t *testing.T) {
	base := smallBase(1)
	w, err := smallScenario().Build(base)
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.NumNodes() != 1500 {
		t.Fatalf("nodes = %d, want 1500", w.Graph.NumNodes())
	}
	if w.NumLegit != 1000 || w.NumFakes() != 500 {
		t.Fatalf("split = %d/%d", w.NumLegit, w.NumFakes())
	}
	for u := 0; u < 1000; u++ {
		if w.IsFake[u] {
			t.Fatal("legit node labeled fake")
		}
	}
	for u := 1000; u < 1500; u++ {
		if !w.IsFake[u] {
			t.Fatal("fake node labeled legit")
		}
	}
	if len(w.SpamSenders) != 500 {
		t.Fatalf("senders = %d, want all 500", len(w.SpamSenders))
	}
	if base.NumRejections() != 0 || base.NumNodes() != 1000 {
		t.Fatal("Build mutated the base graph")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := smallScenario().Build(smallBase(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallScenario().Build(smallBase(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumFriendships() != b.Graph.NumFriendships() ||
		a.Graph.NumRejections() != b.Graph.NumRejections() ||
		len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed produced different worlds")
	}
}

func TestRequestLogConsistentWithGraph(t *testing.T) {
	w, err := smallScenario().Build(smallBase(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range w.Requests {
		if req.Accepted {
			if !w.Graph.HasFriendship(req.From, req.To) {
				t.Fatalf("accepted request %d→%d has no friendship", req.From, req.To)
			}
		} else if !w.Graph.HasRejection(req.To, req.From) {
			t.Fatalf("rejected request %d→%d has no rejection edge", req.From, req.To)
		}
	}
}

func TestSpamRejectionRateRealized(t *testing.T) {
	sc := smallScenario()
	sc.CarelessFraction = 0
	sc.LegitRejectionRate = 0
	w, err := sc.Build(smallBase(3))
	if err != nil {
		t.Fatal(err)
	}
	// All rejections are now spam rejections: legit → fake.
	total := float64(sc.NumFakes * sc.RequestsPerSpammer)
	got := float64(w.Graph.NumRejections()) / total
	if math.Abs(got-sc.SpamRejectionRate) > 0.03 {
		t.Fatalf("realized spam rejection rate %.3f, want ≈ %.2f", got, sc.SpamRejectionRate)
	}
	w.Graph.ForEachRejection(func(from, to graph.NodeID) {
		if int(from) >= w.NumLegit || int(to) < w.NumLegit {
			t.Fatalf("spam rejection %d→%d not legit→fake", from, to)
		}
	})
}

func TestLegitAggregateAcceptance(t *testing.T) {
	sc := smallScenario()
	sc.NumFakes = 1
	sc.RequestsPerSpammer = 0
	sc.CarelessFraction = 0
	sc.IntraLinksPerFake = 0
	sc.LegitRejectionRate = 0.2
	base := smallBase(4)
	w, err := sc.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate acceptance among legits = F/(F+R) must track 1−ρ.
	f, r := float64(base.NumFriendships()), float64(w.Graph.NumRejections())
	if acc := f / (f + r); math.Abs(acc-0.8) > 0.03 {
		t.Fatalf("legit aggregate acceptance %.3f, want ≈ 0.8", acc)
	}
}

func TestSpammerFractionHalf(t *testing.T) {
	sc := smallScenario()
	sc.SpammerFraction = 0.5
	w, err := sc.Build(smallBase(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.SpamSenders) != 250 {
		t.Fatalf("senders = %d, want 250", len(w.SpamSenders))
	}
	// Non-senders must not receive rejections from legit users.
	senders := make(map[graph.NodeID]bool)
	for _, s := range w.SpamSenders {
		senders[s] = true
	}
	w.Graph.ForEachRejection(func(from, to graph.NodeID) {
		if w.IsFake[to] && !senders[to] && !w.IsFake[from] {
			t.Fatalf("non-sender fake %d received a legit rejection", to)
		}
	})
}

func TestCollusionAddsIntraFakeEdges(t *testing.T) {
	scBase := smallScenario()
	w0, err := scBase.Build(smallBase(6))
	if err != nil {
		t.Fatal(err)
	}
	sc := smallScenario()
	sc.CollusionExtraPerFake = 10
	w1, err := sc.Build(smallBase(6))
	if err != nil {
		t.Fatal(err)
	}
	added := w1.Graph.NumFriendships() - w0.Graph.NumFriendships()
	want := 10 * sc.NumFakes
	if float64(added) < 0.9*float64(want) {
		t.Fatalf("collusion added %d edges, want ≈ %d", added, want)
	}
}

func TestSelfRejectionOverlay(t *testing.T) {
	sc := smallScenario()
	sc.SelfRejection = &SelfRejection{Requests: 10, Rate: 0.8}
	w, err := sc.Build(smallBase(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Whitewashed) != sc.NumFakes/2 {
		t.Fatalf("whitewashed = %d, want %d", len(w.Whitewashed), sc.NumFakes/2)
	}
	// Rejections cast by whitewashed fakes on sender fakes must exist.
	whitewashed := make(map[graph.NodeID]bool)
	for _, u := range w.Whitewashed {
		whitewashed[u] = true
	}
	intraRejections := 0
	w.Graph.ForEachRejection(func(from, to graph.NodeID) {
		if whitewashed[from] && w.IsFake[to] && !whitewashed[to] {
			intraRejections++
		}
	})
	want := float64(sc.NumFakes/2*10) * 0.8
	if math.Abs(float64(intraRejections)-want) > 0.15*want {
		t.Fatalf("intra-fake rejections = %d, want ≈ %.0f", intraRejections, want)
	}
}

func TestRejectedLegitRequestsOverlay(t *testing.T) {
	sc := smallScenario()
	sc.RejectedLegitRequests = 2000
	w, err := sc.Build(smallBase(8))
	if err != nil {
		t.Fatal(err)
	}
	// Rejections fake → legit must now exist in quantity (duplicate
	// (legit, fake) pairs collapse, so allow slack).
	count := 0
	w.Graph.ForEachRejection(func(from, to graph.NodeID) {
		if w.IsFake[from] && !w.IsFake[to] {
			count++
		}
	})
	if count < 1800 {
		t.Fatalf("fake→legit rejections = %d, want ≈ 2000", count)
	}
}

func TestCarelessFractionRealized(t *testing.T) {
	sc := smallScenario()
	sc.RequestsPerSpammer = 0
	sc.SpammerFraction = 0
	sc.LegitRejectionRate = 0
	w, err := sc.Build(smallBase(9))
	if err != nil {
		t.Fatal(err)
	}
	attackEdges := 0
	w.Graph.ForEachFriendship(func(u, v graph.NodeID) {
		if w.IsFake[u] != w.IsFake[v] {
			attackEdges++
		}
	})
	want := int(float64(w.NumLegit)*sc.CarelessFraction + 0.5)
	if attackEdges != want {
		t.Fatalf("careless attack edges = %d, want %d", attackEdges, want)
	}
}

func TestValidation(t *testing.T) {
	base := smallBase(10)
	cases := []struct {
		name   string
		mutate func(*Scenario)
		// field names the FieldRangeError the case must produce; empty
		// means any non-nil error (structural checks stay untyped).
		field string
	}{
		{"zero fakes", func(s *Scenario) { s.NumFakes = 0 }, ""},
		{"negative fakes", func(s *Scenario) { s.NumFakes = -3 }, ""},
		{"spam rate above 1", func(s *Scenario) { s.SpamRejectionRate = 1.5 }, "SpamRejectionRate"},
		{"spam rate below 0", func(s *Scenario) { s.SpamRejectionRate = -0.01 }, "SpamRejectionRate"},
		{"spam rate NaN", func(s *Scenario) { s.SpamRejectionRate = math.NaN() }, "SpamRejectionRate"},
		{"legit rate at 1", func(s *Scenario) { s.LegitRejectionRate = 1 }, "LegitRejectionRate"},
		{"legit rate below 0", func(s *Scenario) { s.LegitRejectionRate = -0.5 }, "LegitRejectionRate"},
		{"legit rate NaN", func(s *Scenario) { s.LegitRejectionRate = math.NaN() }, "LegitRejectionRate"},
		{"careless below 0", func(s *Scenario) { s.CarelessFraction = -0.1 }, "CarelessFraction"},
		{"careless above 1", func(s *Scenario) { s.CarelessFraction = 1.01 }, "CarelessFraction"},
		{"careless NaN", func(s *Scenario) { s.CarelessFraction = math.NaN() }, "CarelessFraction"},
		{"spammer fraction above 1", func(s *Scenario) { s.SpammerFraction = 2 }, "SpammerFraction"},
		{"spammer fraction below 0", func(s *Scenario) { s.SpammerFraction = -1 }, "SpammerFraction"},
		{"spammer fraction NaN", func(s *Scenario) { s.SpammerFraction = math.NaN() }, "SpammerFraction"},
		{"too many requests", func(s *Scenario) { s.RequestsPerSpammer = 10000 }, ""},
		{"negative requests", func(s *Scenario) { s.RequestsPerSpammer = -1 }, ""},
		{"self rejection above 1", func(s *Scenario) {
			s.SelfRejection = &SelfRejection{Requests: 5, Rate: 2}
		}, "SelfRejection.Rate"},
		{"self rejection NaN", func(s *Scenario) {
			s.SelfRejection = &SelfRejection{Requests: 5, Rate: math.NaN()}
		}, "SelfRejection.Rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := smallScenario()
			tc.mutate(&sc)
			_, err := sc.Build(base)
			if err == nil {
				t.Fatal("Build accepted invalid scenario")
			}
			var rerr *FieldRangeError
			if tc.field == "" {
				if errors.As(err, &rerr) {
					t.Fatalf("structural error unexpectedly typed: %v", err)
				}
				return
			}
			if !errors.As(err, &rerr) {
				t.Fatalf("error %v is not a *FieldRangeError", err)
			}
			if rerr.Field != tc.field {
				t.Fatalf("FieldRangeError.Field = %q, want %q", rerr.Field, tc.field)
			}
		})
	}
	// Boundary values are valid: both interval ends for closed ranges, the
	// open top for LegitRejectionRate just below 1.
	ok := smallScenario()
	ok.SpammerFraction = 0
	ok.SpamRejectionRate = 1
	ok.LegitRejectionRate = 0.999
	ok.CarelessFraction = 1
	ok.SelfRejection = &SelfRejection{Requests: 1, Rate: 0}
	if err := ok.Validate(base); err != nil {
		t.Fatalf("boundary scenario rejected: %v", err)
	}
	// Base with rejections is rejected.
	dirty := smallBase(11)
	dirty.AddRejection(0, 1)
	if _, err := smallScenario().Build(dirty); err == nil {
		t.Error("base graph with rejections accepted")
	}
}

func TestSampleSeeds(t *testing.T) {
	w, err := smallScenario().Build(smallBase(12))
	if err != nil {
		t.Fatal(err)
	}
	seeds := w.SampleSeeds(rand.New(rand.NewPCG(1, 72)), 20, 15)
	if len(seeds.Legit) != 20 || len(seeds.Spammer) != 15 {
		t.Fatalf("seeds = %d/%d, want 20/15", len(seeds.Legit), len(seeds.Spammer))
	}
	for _, u := range seeds.Legit {
		if w.IsFake[u] {
			t.Fatal("legit seed is fake")
		}
	}
	senders := make(map[graph.NodeID]bool)
	for _, s := range w.SpamSenders {
		senders[s] = true
	}
	for _, u := range seeds.Spammer {
		if !senders[u] {
			t.Fatal("spammer seed is not a spam sender")
		}
	}
}

func TestArrivalIntraLinks(t *testing.T) {
	sc := smallScenario()
	sc.RequestsPerSpammer = 0
	sc.SpammerFraction = 0
	sc.CarelessFraction = 0
	sc.LegitRejectionRate = 0
	w, err := sc.Build(smallBase(13))
	if err != nil {
		t.Fatal(err)
	}
	intra := 0
	w.Graph.ForEachFriendship(func(u, v graph.NodeID) {
		if w.IsFake[u] && w.IsFake[v] {
			intra++
		}
	})
	// Each fake after the 6th adds exactly 6 links; earlier ones add i.
	want := 0
	for i := 0; i < sc.NumFakes; i++ {
		want += min(6, i)
	}
	if intra != want {
		t.Fatalf("intra-fake links = %d, want %d", intra, want)
	}
}
