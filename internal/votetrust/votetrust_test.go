package votetrust

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		reqs []Request
		opts Options
	}{
		{"out of range", 2, []Request{{From: 0, To: 5}}, Options{}},
		{"self request", 2, []Request{{From: 1, To: 1}}, Options{}},
		{"bad seed", 2, nil, Options{TrustSeeds: []graph.NodeID{9}}},
		{"bad damping", 2, nil, Options{Damping: 1.5}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.n, tc.reqs, tc.opts); err == nil {
			t.Errorf("%s: Run accepted invalid input", tc.name)
		}
	}
}

func TestRatingSeparatesSpammers(t *testing.T) {
	// 0..3 legit users exchanging accepted requests; 4 is a spammer whose
	// requests are mostly rejected.
	reqs := []Request{
		{0, 1, true}, {1, 2, true}, {2, 3, true}, {3, 0, true},
		{0, 2, true}, {1, 3, true},
		{4, 0, false}, {4, 1, false}, {4, 2, false}, {4, 3, true},
	}
	res, err := Run(5, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		if res.Ratings[u] <= res.Ratings[4] {
			t.Fatalf("legit %d rating %.3f not above spammer rating %.3f",
				u, res.Ratings[u], res.Ratings[4])
		}
	}
	if got := MostSuspicious(res, 1); got[0] != 4 {
		t.Fatalf("MostSuspicious = %v, want [4]", got)
	}
}

func TestNoRequestsSitAtPrior(t *testing.T) {
	reqs := []Request{{0, 1, true}}
	res, err := Run(3, reqs, Options{PriorAlpha: 1, PriorBeta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Ratings[2]-0.5) > 1e-9 {
		t.Fatalf("silent user rating = %v, want prior 0.5", res.Ratings[2])
	}
}

func TestRatingsWithinUnitInterval(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 51))
	const n = 60
	var reqs []Request
	for i := 0; i < 400; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			reqs = append(reqs, Request{u, v, r.IntN(2) == 0})
		}
	}
	res, err := Run(n, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u, rating := range res.Ratings {
		if rating < 0 || rating > 1 {
			t.Fatalf("rating[%d] = %v outside [0,1]", u, rating)
		}
	}
}

func TestVotesNormalizedToMeanOne(t *testing.T) {
	r := rand.New(rand.NewPCG(10, 52))
	const n = 50
	var reqs []Request
	for i := 0; i < 300; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			reqs = append(reqs, Request{u, v, true})
		}
	}
	res, err := Run(n, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Votes {
		if v < 0 {
			t.Fatalf("negative vote %v", v)
		}
		sum += v
	}
	if math.Abs(sum/float64(n)-1) > 1e-6 {
		t.Fatalf("mean vote = %v, want 1", sum/n)
	}
}

func TestTrustSeedsConcentrateVotes(t *testing.T) {
	// A request chain 0→1→2; seeding trust at 0 must give 0 (and its
	// successors) more votes than an unreachable node.
	reqs := []Request{{0, 1, true}, {1, 2, true}, {3, 4, true}}
	res, err := Run(5, reqs, Options{TrustSeeds: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Votes[1] <= res.Votes[4] {
		t.Fatalf("votes did not flow from seed: votes[1]=%v votes[4]=%v", res.Votes[1], res.Votes[4])
	}
}

// TestCollusionInflatesRatings demonstrates the structural weakness the
// paper exploits in Fig 13: accepted requests among colluding accounts
// lift each account's individual rating toward legitimate levels.
func TestCollusionInflatesRatings(t *testing.T) {
	build := func(collude bool) Result {
		var reqs []Request
		// Legit users 0..9 accept one another.
		for u := 0; u < 10; u++ {
			reqs = append(reqs, Request{graph.NodeID(u), graph.NodeID((u + 1) % 10), true})
		}
		// Spammers 10..13 send rejected spam.
		for s := 10; s < 14; s++ {
			for tgt := 0; tgt < 5; tgt++ {
				reqs = append(reqs, Request{graph.NodeID(s), graph.NodeID(tgt), false})
			}
			if collude {
				for o := 10; o < 14; o++ {
					if o != s {
						for rep := 0; rep < 5; rep++ {
							reqs = append(reqs, Request{graph.NodeID(s), graph.NodeID(o), true})
						}
					}
				}
			}
		}
		res, err := Run(14, reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	honest := build(false)
	colluding := build(true)
	for s := 10; s < 14; s++ {
		if colluding.Ratings[s] <= honest.Ratings[s] {
			t.Fatalf("collusion did not raise spammer %d rating (%.3f → %.3f)",
				s, honest.Ratings[s], colluding.Ratings[s])
		}
	}
}

func TestMostSuspiciousDeterministicOrder(t *testing.T) {
	res := Result{
		Votes:   []float64{1, 1, 2, 1},
		Ratings: []float64{0.5, 0.2, 0.2, 0.9},
	}
	got := MostSuspicious(res, 3)
	want := []graph.NodeID{1, 2, 0} // rating asc, then votes asc
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MostSuspicious = %v, want %v", got, want)
		}
	}
	if len(MostSuspicious(res, 99)) != 4 {
		t.Fatal("k beyond n not capped")
	}
}
