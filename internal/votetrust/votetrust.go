package votetrust

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Request is one directed friend request and its outcome.
type Request struct {
	From, To graph.NodeID
	Accepted bool
}

// Options parameterizes VoteTrust. The zero value selects the defaults.
type Options struct {
	// Damping is the PageRank damping factor d. Default 0.85.
	Damping float64
	// VoteIterations bounds the vote power iteration. Default 30.
	VoteIterations int
	// RatingIterations bounds the vote-aggregation iteration. Default 10.
	RatingIterations int
	// PriorAlpha and PriorBeta smooth ratings toward α/(α+β) for users
	// with little weighted request history. Defaults 1, 1.
	PriorAlpha, PriorBeta float64
	// TrustSeeds is the teleport set of the vote assignment. Empty means
	// uniform teleportation.
	TrustSeeds []graph.NodeID
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.VoteIterations == 0 {
		o.VoteIterations = 30
	}
	if o.RatingIterations == 0 {
		o.RatingIterations = 10
	}
	if o.PriorAlpha == 0 {
		o.PriorAlpha = 1
	}
	if o.PriorBeta == 0 {
		o.PriorBeta = 1
	}
	return o
}

// Result carries VoteTrust's per-user outputs.
type Result struct {
	// Votes is the PageRank-like vote capacity, normalized to mean 1.
	Votes []float64
	// Ratings is the aggregated request-response rating in [0, 1];
	// users that sent no requests sit at the prior mean.
	Ratings []float64
}

// Run executes both VoteTrust stages for n users over the request log.
func Run(n int, requests []Request, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Damping < 0 || opts.Damping >= 1 {
		return Result{}, fmt.Errorf("votetrust: damping %v out of [0,1)", opts.Damping)
	}
	for _, req := range requests {
		if req.From < 0 || int(req.From) >= n || req.To < 0 || int(req.To) >= n {
			return Result{}, fmt.Errorf("votetrust: request %d→%d outside user set of %d", req.From, req.To, n)
		}
		if req.From == req.To {
			return Result{}, fmt.Errorf("votetrust: self-request at node %d", req.From)
		}
	}
	for _, s := range opts.TrustSeeds {
		if s < 0 || int(s) >= n {
			return Result{}, fmt.Errorf("votetrust: trust seed %d out of range", s)
		}
	}
	votes := assignVotes(n, requests, opts)
	ratings := aggregateVotes(n, requests, votes, opts)
	return Result{Votes: votes, Ratings: ratings}, nil
}

// assignVotes runs the PageRank-like vote propagation on the directed
// request graph.
func assignVotes(n int, requests []Request, opts Options) []float64 {
	outDeg := make([]float64, n)
	for _, req := range requests {
		outDeg[req.From]++
	}
	teleport := make([]float64, n)
	if len(opts.TrustSeeds) > 0 {
		share := 1 / float64(len(opts.TrustSeeds))
		for _, s := range opts.TrustSeeds {
			teleport[s] += share
		}
	} else {
		for i := range teleport {
			teleport[i] = 1 / float64(n)
		}
	}

	v := make([]float64, n)
	copy(v, teleport)
	next := make([]float64, n)
	d := opts.Damping
	for it := 0; it < opts.VoteIterations; it++ {
		// Mass from dangling users (no outgoing requests) re-enters via
		// the teleport distribution.
		dangling := 0.0
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling += v[u]
			}
		}
		for u := 0; u < n; u++ {
			next[u] = (1 - d + d*dangling) * teleport[u]
		}
		for _, req := range requests {
			next[req.To] += d * v[req.From] / outDeg[req.From]
		}
		v, next = next, v
	}
	// Normalize to mean 1 so votes compose with the Beta prior on a
	// size-independent scale.
	for i := range v {
		v[i] *= float64(n)
	}
	return v
}

// aggregateVotes iterates the weighted rating computation.
func aggregateVotes(n int, requests []Request, votes []float64, opts Options) []float64 {
	prior := opts.PriorAlpha / (opts.PriorAlpha + opts.PriorBeta)
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 // optimistic start, as in the original design
	}
	next := make([]float64, n)
	for it := 0; it < opts.RatingIterations; it++ {
		num := make([]float64, n)
		den := make([]float64, n)
		for _, req := range requests {
			w := votes[req.To] * r[req.To]
			if w < 0 {
				w = 0
			}
			den[req.From] += w
			if req.Accepted {
				num[req.From] += w
			}
		}
		for u := 0; u < n; u++ {
			if den[u] == 0 && num[u] == 0 {
				// No (weighted) request history: sit at the prior mean.
				next[u] = prior
				continue
			}
			next[u] = (opts.PriorAlpha + num[u]) / (opts.PriorAlpha + opts.PriorBeta + den[u])
		}
		r, next = next, r
	}
	return r
}

// MostSuspicious returns the k users with the lowest ratings — the
// detection rule the paper applies to VoteTrust in §VI-A. Ties break
// toward lower votes (less trusted), then lower IDs, for determinism.
func MostSuspicious(res Result, k int) []graph.NodeID {
	n := len(res.Ratings)
	if k > n {
		k = n
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := order[a], order[b]
		if res.Ratings[ua] != res.Ratings[ub] {
			return res.Ratings[ua] < res.Ratings[ub]
		}
		if res.Votes[ua] != res.Votes[ub] {
			return res.Votes[ua] < res.Votes[ub]
		}
		return ua < ub
	})
	return order[:k]
}
