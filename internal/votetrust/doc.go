// Package votetrust reimplements VoteTrust [Xue et al., INFOCOM 2013], the
// baseline the paper compares Rejecto against (§VI). VoteTrust ranks users
// on the directed friend-request graph in two cascaded steps:
//
//  1. Vote assignment: a PageRank-like trust propagation over request
//     edges assigns every user a vote capacity, teleporting to a trusted
//     seed set (uniformly over all users when no seeds are given).
//  2. Vote aggregation: every user's rating is the weighted average of the
//     responses to their requests — 1 for accepted, 0 for rejected — where
//     a response's weight is the target's votes times the target's current
//     rating. The computation iterates, and a Beta(α, β) prior smooths
//     users with little request history.
//
// Users are declared suspicious from the lowest rating up. The paper
// identifies two structural weaknesses that its evaluation exercises: the
// rating is a per-user acceptance rate (defeated by collusion, Fig 13) and
// the votes are manipulable by requests among controlled accounts.
package votetrust
