package votetrust

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func BenchmarkRun(b *testing.B) {
	r := rand.New(rand.NewPCG(5, 5))
	const n = 20000
	reqs := make([]Request, 0, 8*n)
	for i := 0; i < 8*n; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			reqs = append(reqs, Request{u, v, r.Float64() < 0.75})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(n, reqs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
