package osn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// UserID identifies a registered account. It is the same ID space as
// graph.NodeID so materialized graphs need no translation.
type UserID = graph.NodeID

// EventKind enumerates request-lifecycle and enforcement transitions.
type EventKind uint8

// The event kinds, in rough lifecycle order.
const (
	// EventRequestSent: Actor sent a friend request to Subject.
	EventRequestSent EventKind = iota
	// EventRequestAccepted: Actor accepted Subject's pending request,
	// creating an OSN link.
	EventRequestAccepted
	// EventRequestRejected: Actor explicitly rejected Subject's request.
	EventRequestRejected
	// EventRequestReported: Actor reported Subject's request as abusive.
	// Reports are rejections with an audit trail (only OSN providers see
	// them, §II-A).
	EventRequestReported
	// EventRequestExpired: Subject's request to Actor sat pending past
	// the TTL — an ignored request, counted as a social rejection.
	EventRequestExpired
	// EventChallenged: the provider issued Actor a CAPTCHA-style
	// challenge (§VII).
	EventChallenged
	// EventRateLimited: the provider rate-limited Actor's requests.
	EventRateLimited
	// EventSuspended: the provider suspended Actor.
	EventSuspended
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRequestSent:
		return "sent"
	case EventRequestAccepted:
		return "accepted"
	case EventRequestRejected:
		return "rejected"
	case EventRequestReported:
		return "reported"
	case EventRequestExpired:
		return "expired"
	case EventChallenged:
		return "challenged"
	case EventRateLimited:
		return "rate-limited"
	case EventSuspended:
		return "suspended"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one append-only log entry.
type Event struct {
	Seq   int64
	Tick  int64
	Kind  EventKind
	Actor UserID
	// Subject is the other party (the request's sender for response
	// events; the target for EventRequestSent; unused for enforcement
	// events, where it equals Actor).
	Subject UserID
}

// Config parameterizes the service. The zero value selects the defaults.
type Config struct {
	// PendingTTL is how many ticks a request may sit pending before
	// ExpirePending counts it as ignored. Default 30.
	PendingTTL int64
	// RateLimitWindow and RateLimitBudget cap the requests a rate-limited
	// account can send per window of ticks. Defaults: 10 ticks, 2
	// requests.
	RateLimitWindow int64
	RateLimitBudget int
}

func (c Config) withDefaults() Config {
	if c.PendingTTL <= 0 {
		c.PendingTTL = 30
	}
	if c.RateLimitWindow <= 0 {
		c.RateLimitWindow = 10
	}
	if c.RateLimitBudget <= 0 {
		c.RateLimitBudget = 2
	}
	return c
}

// Service is the OSN friend-request monitor. Not safe for concurrent use;
// an OSN front-end would shard services per region and merge logs.
type Service struct {
	cfg  Config
	tick int64

	friends map[edgeKey]bool
	pending map[edgeKey]int64 // (from, to) -> tick sent

	status     map[UserID]accountStatus
	sentInWin  map[UserID]int   // requests sent in the current rate window
	winStart   map[UserID]int64 // rate window start tick
	challenged map[UserID]bool  // challenge outstanding (blocks requests until passed)

	users  int
	events []Event
}

type accountStatus uint8

const (
	statusNormal accountStatus = iota
	statusRateLimited
	statusSuspended
)

type edgeKey struct{ from, to UserID }

// NewService returns an empty service.
func NewService(cfg Config) *Service {
	return &Service{
		cfg:        cfg.withDefaults(),
		friends:    make(map[edgeKey]bool),
		pending:    make(map[edgeKey]int64),
		status:     make(map[UserID]accountStatus),
		sentInWin:  make(map[UserID]int),
		winStart:   make(map[UserID]int64),
		challenged: make(map[UserID]bool),
	}
}

// Register creates a new account and returns its ID.
func (s *Service) Register() UserID {
	id := UserID(s.users)
	s.users++
	return id
}

// RegisterN creates n accounts and returns the first ID.
func (s *Service) RegisterN(n int) UserID {
	first := UserID(s.users)
	s.users += n
	return first
}

// NumUsers reports the registered account count.
func (s *Service) NumUsers() int { return s.users }

// Tick returns the current logical time.
func (s *Service) Tick() int64 { return s.tick }

// Advance moves logical time forward by n ticks (n ≥ 0).
func (s *Service) Advance(n int64) {
	if n < 0 {
		panic("osn: Advance with negative ticks")
	}
	s.tick += n
}

// Events returns the append-only event log. Callers must not mutate it.
func (s *Service) Events() []Event { return s.events }

func (s *Service) checkUser(u UserID) error {
	if u < 0 || int(u) >= s.users {
		return fmt.Errorf("osn: unknown user %d", u)
	}
	return nil
}

func (s *Service) log(kind EventKind, actor, subject UserID) {
	s.events = append(s.events, Event{
		Seq: int64(len(s.events)), Tick: s.tick,
		Kind: kind, Actor: actor, Subject: subject,
	})
}

// Friends reports whether u and v hold an OSN link.
func (s *Service) Friends(u, v UserID) bool {
	return s.friends[normalize(u, v)]
}

func normalize(u, v UserID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// SendRequest records a friend request from one user to another. It
// returns an error when the request violates lifecycle or enforcement
// rules; callers simulating attackers should treat errors as throttling.
func (s *Service) SendRequest(from, to UserID) error {
	if err := s.checkUser(from); err != nil {
		return err
	}
	if err := s.checkUser(to); err != nil {
		return err
	}
	switch {
	case from == to:
		return fmt.Errorf("osn: self-request by %d", from)
	case s.status[from] == statusSuspended:
		return fmt.Errorf("osn: account %d is suspended", from)
	case s.challenged[from]:
		return fmt.Errorf("osn: account %d has an unanswered challenge", from)
	case s.Friends(from, to):
		return fmt.Errorf("osn: %d and %d are already friends", from, to)
	}
	if _, dup := s.pending[edgeKey{from, to}]; dup {
		return fmt.Errorf("osn: duplicate pending request %d→%d", from, to)
	}
	if s.status[from] == statusRateLimited {
		if s.tick-s.winStart[from] >= s.cfg.RateLimitWindow {
			s.winStart[from] = s.tick
			s.sentInWin[from] = 0
		}
		if s.sentInWin[from] >= s.cfg.RateLimitBudget {
			return fmt.Errorf("osn: account %d is rate limited", from)
		}
		s.sentInWin[from]++
	}
	s.pending[edgeKey{from, to}] = s.tick
	s.log(EventRequestSent, from, to)
	return nil
}

// respond consumes the pending request from sender to responder.
func (s *Service) respond(responder, sender UserID, kind EventKind) error {
	if err := s.checkUser(responder); err != nil {
		return err
	}
	if err := s.checkUser(sender); err != nil {
		return err
	}
	key := edgeKey{sender, responder}
	if _, ok := s.pending[key]; !ok {
		return fmt.Errorf("osn: no pending request %d→%d", sender, responder)
	}
	delete(s.pending, key)
	if kind == EventRequestAccepted {
		s.friends[normalize(sender, responder)] = true
	}
	s.log(kind, responder, sender)
	return nil
}

// Accept accepts sender's pending request, creating an OSN link.
func (s *Service) Accept(responder, sender UserID) error {
	return s.respond(responder, sender, EventRequestAccepted)
}

// Reject explicitly rejects sender's pending request — a social rejection.
func (s *Service) Reject(responder, sender UserID) error {
	return s.respond(responder, sender, EventRequestRejected)
}

// Report flags sender's pending request as abusive — a social rejection
// that only the provider sees (§II-A).
func (s *Service) Report(responder, sender UserID) error {
	return s.respond(responder, sender, EventRequestReported)
}

// ExpirePending turns every request pending longer than the TTL into an
// ignored request: the target implicitly casts a social rejection. Returns
// the number expired. Call it after Advance.
func (s *Service) ExpirePending() int {
	expired := 0
	for key, sentAt := range s.pending {
		if s.tick-sentAt > s.cfg.PendingTTL {
			delete(s.pending, key)
			s.log(EventRequestExpired, key.to, key.from)
			expired++
		}
	}
	return expired
}

// PendingCount reports the number of requests currently pending against u
// (requests u has not answered) — the per-account signal §II measured on
// purchased accounts.
func (s *Service) PendingCount(u UserID) int {
	n := 0
	for key := range s.pending {
		if key.to == u {
			n++
		}
	}
	return n
}

// isRejection reports whether the event kind casts a social rejection.
func (k EventKind) isRejection() bool {
	return k == EventRequestRejected || k == EventRequestReported || k == EventRequestExpired
}

// AugmentedGraph materializes the rejection-augmented social graph from
// the event log: OSN links from accepted requests, rejection edges
// ⟨target, sender⟩ from rejections, reports, and expiries.
func (s *Service) AugmentedGraph() *graph.Graph {
	g := graph.New(s.users)
	for _, e := range s.events {
		switch {
		case e.Kind == EventRequestAccepted:
			g.AddFriendship(e.Actor, e.Subject)
		case e.Kind.isRejection():
			g.AddRejection(e.Actor, e.Subject)
		}
	}
	return g
}

// TimedRequests shards the answered requests into intervals of the given
// tick length, in the form core.DetectSharded consumes. Response time
// (not send time) buckets a request, since the rejection is the signal.
func (s *Service) TimedRequests(intervalTicks int64) []core.TimedRequest {
	if intervalTicks <= 0 {
		panic("osn: intervalTicks must be positive")
	}
	var out []core.TimedRequest
	for _, e := range s.events {
		var accepted bool
		switch {
		case e.Kind == EventRequestAccepted:
			accepted = true
		case e.Kind.isRejection():
			accepted = false
		default:
			continue
		}
		out = append(out, core.TimedRequest{
			From:     e.Subject, // the request's sender
			To:       e.Actor,
			Accepted: accepted,
			Interval: int(e.Tick / intervalTicks),
		})
	}
	return out
}
