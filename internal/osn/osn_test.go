package osn

import (
	"testing"

	"repro/internal/graph"
)

func newService(users int) (*Service, UserID) {
	s := NewService(Config{})
	first := s.RegisterN(users)
	return s, first
}

func TestRequestLifecycleAccept(t *testing.T) {
	s, _ := newService(3)
	if err := s.SendRequest(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Friends(0, 1) {
		t.Fatal("friendship before acceptance")
	}
	if err := s.Accept(1, 0); err != nil {
		t.Fatal(err)
	}
	if !s.Friends(0, 1) || !s.Friends(1, 0) {
		t.Fatal("acceptance did not create a symmetric link")
	}
	// The consumed request cannot be answered twice.
	if err := s.Reject(1, 0); err == nil {
		t.Fatal("double response accepted")
	}
}

func TestRequestLifecycleErrors(t *testing.T) {
	s, _ := newService(3)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"self request", func() error { return s.SendRequest(1, 1) }},
		{"unknown sender", func() error { return s.SendRequest(9, 1) }},
		{"unknown target", func() error { return s.SendRequest(1, 9) }},
		{"respond without request", func() error { return s.Accept(2, 1) }},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Duplicate pending.
	if err := s.SendRequest(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(0, 1); err == nil {
		t.Fatal("duplicate pending request accepted")
	}
	// Request to an existing friend.
	if err := s.Accept(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(1, 0); err == nil {
		t.Fatal("request to existing friend accepted")
	}
}

func TestRejectAndReportCreateRejectionEdges(t *testing.T) {
	s, _ := newService(4)
	mustSend(t, s, 2, 0)
	mustSend(t, s, 2, 1)
	if err := s.Reject(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Report(1, 2); err != nil {
		t.Fatal(err)
	}
	g := s.AugmentedGraph()
	if !g.HasRejection(0, 2) || !g.HasRejection(1, 2) {
		t.Fatal("rejection/report did not materialize as rejection edges")
	}
	if g.NumFriendships() != 0 {
		t.Fatal("phantom friendship")
	}
}

func TestExpiryCountsAsIgnoredRejection(t *testing.T) {
	s, _ := newService(3)
	mustSend(t, s, 0, 1)
	s.Advance(10)
	if n := s.ExpirePending(); n != 0 {
		t.Fatalf("expired %d before TTL", n)
	}
	s.Advance(25) // past the default TTL of 30
	if n := s.ExpirePending(); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	g := s.AugmentedGraph()
	if !g.HasRejection(1, 0) {
		t.Fatal("ignored request did not become a rejection edge ⟨target, sender⟩")
	}
	// The expired request is gone.
	if err := s.Accept(1, 0); err == nil {
		t.Fatal("expired request still answerable")
	}
}

func TestPendingCount(t *testing.T) {
	s, _ := newService(5)
	for i := UserID(1); i <= 3; i++ {
		mustSend(t, s, i, 0)
	}
	if n := s.PendingCount(0); n != 3 {
		t.Fatalf("pending = %d, want 3", n)
	}
	if err := s.Reject(0, 1); err != nil {
		t.Fatal(err)
	}
	if n := s.PendingCount(0); n != 2 {
		t.Fatalf("pending = %d after one rejection, want 2", n)
	}
}

func TestAugmentedGraphMatchesLog(t *testing.T) {
	s, _ := newService(6)
	mustSend(t, s, 0, 1)
	mustSend(t, s, 0, 2)
	mustSend(t, s, 3, 0)
	if err := s.Accept(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept(0, 3); err != nil {
		t.Fatal(err)
	}
	g := s.AugmentedGraph()
	if g.NumNodes() != 6 || g.NumFriendships() != 2 || g.NumRejections() != 1 {
		t.Fatalf("graph = %d nodes, %d friendships, %d rejections",
			g.NumNodes(), g.NumFriendships(), g.NumRejections())
	}
	if !g.HasFriendship(0, 1) || !g.HasFriendship(0, 3) || !g.HasRejection(2, 0) {
		t.Fatal("materialized edges wrong")
	}
}

func TestTimedRequestsSharding(t *testing.T) {
	s, _ := newService(4)
	mustSend(t, s, 0, 1)
	if err := s.Accept(1, 0); err != nil { // interval 0
		t.Fatal(err)
	}
	s.Advance(100)
	mustSend(t, s, 2, 3)
	if err := s.Reject(3, 2); err != nil { // interval 1 at length 100
		t.Fatal(err)
	}
	reqs := s.TimedRequests(100)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2", len(reqs))
	}
	if reqs[0].Interval != 0 || !reqs[0].Accepted || reqs[0].From != 0 {
		t.Fatalf("first shard wrong: %+v", reqs[0])
	}
	if reqs[1].Interval != 1 || reqs[1].Accepted || reqs[1].From != 2 || reqs[1].To != 3 {
		t.Fatalf("second shard wrong: %+v", reqs[1])
	}
}

func TestEventLogOrdering(t *testing.T) {
	s, _ := newService(3)
	mustSend(t, s, 0, 1)
	if err := s.Accept(1, 0); err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i) {
			t.Fatal("event sequence numbers not dense")
		}
	}
	if events[0].Kind != EventRequestSent || events[1].Kind != EventRequestAccepted {
		t.Fatalf("event kinds = %v, %v", events[0].Kind, events[1].Kind)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{
		EventRequestSent, EventRequestAccepted, EventRequestRejected,
		EventRequestReported, EventRequestExpired, EventChallenged,
		EventRateLimited, EventSuspended, EventKind(99),
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		str := k.String()
		if str == "" || seen[str] {
			t.Fatalf("EventKind %d stringifies badly: %q", k, str)
		}
		seen[str] = true
	}
}

func mustSend(t *testing.T, s *Service, from, to UserID) {
	t.Helper()
	if err := s.SendRequest(from, to); err != nil {
		t.Fatal(err)
	}
}

var _ = graph.NodeID(0) // the UserID alias is graph.NodeID by design
