// Package osn implements the OSN-side deployment surface of Rejecto: the
// friend-request lifecycle that produces the rejection-augmented social
// graph, and the §VII response policies applied to detected accounts.
//
// The paper's system model (§I, §III) assumes the OSN provider "monitors
// the friend requests sent out by users and augments the social graph with
// directed social rejections". This package is that monitor: a
// deterministic, event-sourced service where
//
//   - a friend request is sent, then accepted, rejected, reported, or
//     left pending until it expires — expiry counts as an *ignored*
//     request, which the paper treats as a social rejection alongside
//     explicit rejections and abuse reports;
//   - accepted requests create undirected OSN links; rejections, reports,
//     and expiries create directed rejection edges ⟨target, sender⟩;
//   - every transition lands in an append-only event log, from which the
//     augmented graph (for core.Detect) or per-interval request shards
//     (for core.DetectSharded) are materialized;
//   - detected accounts receive escalating §VII responses — CAPTCHA-style
//     challenges, request rate limiting, then suspension — enforced on
//     the request path.
//
// Time is logical: the caller advances a tick counter, so simulations and
// tests are exactly reproducible.
package osn
