package osn

import "fmt"

// Enforcer applies the paper's §VII responses to detected accounts with
// escalation: the first detection issues a CAPTCHA-style challenge, a
// repeat detection rate-limits the account, and a third suspends it. The
// graduated path is what gives the system "a certain degree of tolerance
// to false positives" — a misdetected human passes the challenge and loses
// nothing but a click.
type Enforcer struct {
	s *Service
	// strikes counts how many times each account has been detected.
	strikes map[UserID]int
	// challengePass simulates the probability a challenged account passes
	// (humans ≈ 1, bots ≈ 0); the caller supplies the outcome per account
	// via PassChallenge instead when it wants full control.
	challengePass func(UserID) bool
}

// NewEnforcer wraps a service. challengePass decides whether a challenged
// account eventually passes its challenge; nil means nobody passes until
// PassChallenge is called explicitly.
func NewEnforcer(s *Service, challengePass func(UserID) bool) *Enforcer {
	return &Enforcer{s: s, strikes: make(map[UserID]int), challengePass: challengePass}
}

// Strikes reports how many detections have been enforced against u.
func (e *Enforcer) Strikes(u UserID) int { return e.strikes[u] }

// Apply enforces one detection batch, escalating per account:
// challenge → rate limit → suspend. It returns per-level counts.
func (e *Enforcer) Apply(detected []UserID) (challenged, limited, suspended int, err error) {
	for _, u := range detected {
		if cerr := e.s.checkUser(u); cerr != nil {
			return challenged, limited, suspended, cerr
		}
		e.strikes[u]++
		switch e.strikes[u] {
		case 1:
			e.s.challenged[u] = true
			e.s.log(EventChallenged, u, u)
			challenged++
			if e.challengePass != nil && e.challengePass(u) {
				e.s.challenged[u] = false
			}
		case 2:
			e.s.status[u] = statusRateLimited
			e.s.winStart[u] = e.s.tick
			e.s.sentInWin[u] = 0
			e.s.log(EventRateLimited, u, u)
			limited++
		default:
			e.s.status[u] = statusSuspended
			e.s.log(EventSuspended, u, u)
			suspended++
		}
	}
	return challenged, limited, suspended, nil
}

// PassChallenge clears an outstanding challenge on u (a human solved the
// CAPTCHA). It errors if no challenge is outstanding.
func (e *Enforcer) PassChallenge(u UserID) error {
	if err := e.s.checkUser(u); err != nil {
		return err
	}
	if !e.s.challenged[u] {
		return fmt.Errorf("osn: no outstanding challenge for %d", u)
	}
	e.s.challenged[u] = false
	return nil
}

// Status describes an account's enforcement state.
type Status struct {
	Challenged  bool
	RateLimited bool
	Suspended   bool
}

// StatusOf reports u's enforcement state.
func (e *Enforcer) StatusOf(u UserID) Status {
	return Status{
		Challenged:  e.s.challenged[u],
		RateLimited: e.s.status[u] == statusRateLimited,
		Suspended:   e.s.status[u] == statusSuspended,
	}
}
