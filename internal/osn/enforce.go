package osn

import (
	"fmt"

	"repro/internal/score"
)

// Enforcer applies the paper's §VII responses to detected accounts with
// escalation: the first detection issues a CAPTCHA-style challenge, a
// repeat detection rate-limits the account, and a third suspends it. The
// graduated path is what gives the system "a certain degree of tolerance
// to false positives" — a misdetected human passes the challenge and loses
// nothing but a click.
type Enforcer struct {
	s *Service
	// strikes counts how many times each account has been detected.
	strikes map[UserID]int
	// challengePass simulates the probability a challenged account passes
	// (humans ≈ 1, bots ≈ 0); the caller supplies the outcome per account
	// via PassChallenge instead when it wants full control.
	challengePass func(UserID) bool
}

// NewEnforcer wraps a service. challengePass decides whether a challenged
// account eventually passes its challenge; nil means nobody passes until
// PassChallenge is called explicitly.
func NewEnforcer(s *Service, challengePass func(UserID) bool) *Enforcer {
	return &Enforcer{s: s, strikes: make(map[UserID]int), challengePass: challengePass}
}

// Strikes reports how many detections have been enforced against u.
func (e *Enforcer) Strikes(u UserID) int { return e.strikes[u] }

// Apply enforces one detection batch, escalating per account:
// challenge → rate limit → suspend. It returns per-level counts.
func (e *Enforcer) Apply(detected []UserID) (challenged, limited, suspended int, err error) {
	for _, u := range detected {
		if cerr := e.s.checkUser(u); cerr != nil {
			return challenged, limited, suspended, cerr
		}
		e.strikes[u]++
		switch e.strikes[u] {
		case 1:
			e.s.challenged[u] = true
			e.s.log(EventChallenged, u, u)
			challenged++
			if e.challengePass != nil && e.challengePass(u) {
				e.s.challenged[u] = false
			}
		case 2:
			e.s.status[u] = statusRateLimited
			e.s.winStart[u] = e.s.tick
			e.s.sentInWin[u] = 0
			e.s.log(EventRateLimited, u, u)
			limited++
		default:
			e.s.status[u] = statusSuspended
			e.s.log(EventSuspended, u, u)
			suspended++
		}
	}
	return challenged, limited, suspended, nil
}

// ApplyVerdict folds one real-time scoring verdict (internal/score) into
// the enforcement ladder — the shape server.Config.ScoreHook expects, so a
// live rejectod can drive graduated enforcement straight from /v1/score
// traffic.
//
// A deny verdict counts as a detection: one strike through the
// challenge → rate-limit → suspend escalation, same as Apply. A throttle
// verdict rate-limits the account without consuming a strike — reversible
// friction for the paper's false-positive tolerance: a mis-scored human is
// slowed, not pushed down the ladder, and the next allow-scoring epoch
// lifts the limit via ClearThrottle. An allow verdict is a no-op.
func (e *Enforcer) ApplyVerdict(u UserID, v score.Verdict) error {
	if err := e.s.checkUser(u); err != nil {
		return err
	}
	switch v {
	case score.VerdictAllow:
		return nil
	case score.VerdictThrottle:
		// Never de-escalate: an account the ladder already rate-limited or
		// suspended keeps its standing strike state.
		if e.s.status[u] == statusNormal {
			e.s.status[u] = statusRateLimited
			e.s.winStart[u] = e.s.tick
			e.s.sentInWin[u] = 0
			e.s.log(EventRateLimited, u, u)
		}
		return nil
	case score.VerdictDeny:
		_, _, _, err := e.Apply([]UserID{u})
		return err
	default:
		return fmt.Errorf("osn: unknown verdict %d", v)
	}
}

// ClearThrottle lifts a rate limit that ApplyVerdict imposed without a
// strike. Limits earned through the strike ladder (two or more detections)
// stay — only detections clear those, by design.
func (e *Enforcer) ClearThrottle(u UserID) error {
	if err := e.s.checkUser(u); err != nil {
		return err
	}
	if e.s.status[u] == statusRateLimited && e.strikes[u] < 2 {
		e.s.status[u] = statusNormal
	}
	return nil
}

// PassChallenge clears an outstanding challenge on u (a human solved the
// CAPTCHA). It errors if no challenge is outstanding.
func (e *Enforcer) PassChallenge(u UserID) error {
	if err := e.s.checkUser(u); err != nil {
		return err
	}
	if !e.s.challenged[u] {
		return fmt.Errorf("osn: no outstanding challenge for %d", u)
	}
	e.s.challenged[u] = false
	return nil
}

// Status describes an account's enforcement state.
type Status struct {
	Challenged  bool
	RateLimited bool
	Suspended   bool
}

// StatusOf reports u's enforcement state.
func (e *Enforcer) StatusOf(u UserID) Status {
	return Status{
		Challenged:  e.s.challenged[u],
		RateLimited: e.s.status[u] == statusRateLimited,
		Suspended:   e.s.status[u] == statusSuspended,
	}
}
