package osn

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestServiceAgainstModel drives random operation sequences through the
// Service and a naive reference model, checking that friendships, pending
// requests, and the materialized augmented graph always agree.
func TestServiceAgainstModel(t *testing.T) {
	const users = 12
	type pair struct{ from, to UserID }
	f := func(seed uint64, opsRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 141))
		ops := int(opsRaw) + 30
		s := NewService(Config{PendingTTL: 5})
		s.RegisterN(users)

		friends := map[pair]bool{}
		pending := map[pair]int64{}
		rejections := map[pair]bool{} // rejecter → sender
		tick := int64(0)

		for i := 0; i < ops; i++ {
			u := UserID(r.IntN(users))
			v := UserID(r.IntN(users))
			key := pair{u, v}
			norm := pair{min(u, v), max(u, v)}
			switch r.IntN(5) {
			case 0: // send
				err := s.SendRequest(u, v)
				_, dup := pending[key]
				wantErr := u == v || friends[norm] || dup
				if (err != nil) != wantErr {
					return false
				}
				if err == nil {
					pending[key] = tick
				}
			case 1: // accept
				err := s.Accept(v, u) // v responds to u's request
				_, ok := pending[key]
				if (err != nil) == ok {
					return false
				}
				if err == nil {
					delete(pending, key)
					friends[norm] = true
				}
			case 2: // reject
				err := s.Reject(v, u)
				_, ok := pending[key]
				if (err != nil) == ok {
					return false
				}
				if err == nil {
					delete(pending, key)
					rejections[pair{v, u}] = true
				}
			case 3: // advance + expire
				s.Advance(3)
				tick += 3
				s.ExpirePending()
				for k, sentAt := range pending {
					if tick-sentAt > 5 {
						delete(pending, k)
						rejections[pair{k.to, k.from}] = true
					}
				}
			case 4: // report
				err := s.Report(v, u)
				_, ok := pending[key]
				if (err != nil) == ok {
					return false
				}
				if err == nil {
					delete(pending, key)
					rejections[pair{v, u}] = true
				}
			}
		}

		// Cross-check full state.
		for u := UserID(0); u < users; u++ {
			for v := UserID(0); v < users; v++ {
				if u == v {
					continue
				}
				if s.Friends(u, v) != friends[pair{min(u, v), max(u, v)}] {
					return false
				}
			}
			wantPending := 0
			for k := range pending {
				if k.to == u {
					wantPending++
				}
			}
			if s.PendingCount(u) != wantPending {
				return false
			}
		}
		g := s.AugmentedGraph()
		if g.NumFriendships() != len(friends) {
			return false
		}
		for k := range rejections {
			if !g.HasRejection(k.from, k.to) {
				return false
			}
		}
		return g.NumRejections() == len(rejections)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
