package osn

import (
	"testing"

	"repro/internal/score"
)

func TestEnforcerEscalation(t *testing.T) {
	s, _ := newService(4)
	e := NewEnforcer(s, nil)
	spammer := UserID(3)

	// Strike 1: challenge. Requests blocked until the challenge passes.
	challenged, limited, suspended, err := e.Apply([]UserID{spammer})
	if err != nil || challenged != 1 || limited != 0 || suspended != 0 {
		t.Fatalf("strike 1 = %d/%d/%d, err %v", challenged, limited, suspended, err)
	}
	if err := s.SendRequest(spammer, 0); err == nil {
		t.Fatal("challenged account could still send requests")
	}
	if err := e.PassChallenge(spammer); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(spammer, 0); err != nil {
		t.Fatalf("after passing the challenge: %v", err)
	}

	// Strike 2: rate limit.
	_, limited, _, err = e.Apply([]UserID{spammer})
	if err != nil || limited != 1 {
		t.Fatalf("strike 2 limited=%d err=%v", limited, err)
	}
	st := e.StatusOf(spammer)
	if !st.RateLimited || st.Suspended {
		t.Fatalf("status after strike 2 = %+v", st)
	}

	// Strike 3: suspension; requests permanently refused.
	_, _, suspended, err = e.Apply([]UserID{spammer})
	if err != nil || suspended != 1 {
		t.Fatalf("strike 3 suspended=%d err=%v", suspended, err)
	}
	if err := s.SendRequest(spammer, 1); err == nil {
		t.Fatal("suspended account could still send requests")
	}
	if e.Strikes(spammer) != 3 {
		t.Fatalf("strikes = %d", e.Strikes(spammer))
	}
}

func TestRateLimitBudget(t *testing.T) {
	s := NewService(Config{RateLimitWindow: 10, RateLimitBudget: 2})
	s.RegisterN(10)
	e := NewEnforcer(s, func(UserID) bool { return true }) // auto-pass challenges
	spammer := UserID(0)
	// Escalate to rate-limited.
	if _, _, _, err := e.Apply([]UserID{spammer}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.Apply([]UserID{spammer}); err != nil {
		t.Fatal(err)
	}

	// Budget of 2 per 10-tick window.
	if err := s.SendRequest(spammer, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(spammer, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(spammer, 3); err == nil {
		t.Fatal("third request within the window not limited")
	}
	// New window resets the budget.
	s.Advance(10)
	if err := s.SendRequest(spammer, 3); err != nil {
		t.Fatalf("request in fresh window: %v", err)
	}
}

func TestFalsePositiveToleratedByChallenge(t *testing.T) {
	// §VII: a misdetected human passes the challenge and continues.
	s, _ := newService(3)
	human := UserID(0)
	e := NewEnforcer(s, func(u UserID) bool { return u == human })
	if _, _, _, err := e.Apply([]UserID{human}); err != nil {
		t.Fatal(err)
	}
	if err := s.SendRequest(human, 1); err != nil {
		t.Fatalf("human blocked after passing challenge: %v", err)
	}
}

func TestPassChallengeWithoutOutstanding(t *testing.T) {
	s, _ := newService(2)
	e := NewEnforcer(s, nil)
	if err := e.PassChallenge(0); err == nil {
		t.Fatal("passing a non-existent challenge succeeded")
	}
}

func TestEnforcerUnknownUser(t *testing.T) {
	s, _ := newService(2)
	e := NewEnforcer(s, nil)
	if _, _, _, err := e.Apply([]UserID{99}); err == nil {
		t.Fatal("unknown user enforced")
	}
}

func TestApplyVerdict(t *testing.T) {
	s, _ := newService(6)
	e := NewEnforcer(s, nil)
	u := UserID(2)

	// Allow is a no-op: no strike, no status change.
	if err := e.ApplyVerdict(u, score.VerdictAllow); err != nil {
		t.Fatal(err)
	}
	if e.Strikes(u) != 0 || e.StatusOf(u) != (Status{}) {
		t.Fatalf("allow changed state: strikes=%d status=%+v", e.Strikes(u), e.StatusOf(u))
	}

	// Throttle rate-limits without a strike.
	if err := e.ApplyVerdict(u, score.VerdictThrottle); err != nil {
		t.Fatal(err)
	}
	if e.Strikes(u) != 0 {
		t.Fatalf("throttle consumed a strike: %d", e.Strikes(u))
	}
	if st := e.StatusOf(u); !st.RateLimited || st.Challenged || st.Suspended {
		t.Fatalf("status after throttle = %+v", st)
	}
	// ClearThrottle lifts it, because no strikes back the limit.
	if err := e.ClearThrottle(u); err != nil {
		t.Fatal(err)
	}
	if st := e.StatusOf(u); st.RateLimited {
		t.Fatal("throttle not lifted")
	}

	// Deny walks the strike ladder exactly like Apply.
	if err := e.ApplyVerdict(u, score.VerdictDeny); err != nil {
		t.Fatal(err)
	}
	if e.Strikes(u) != 1 || !e.StatusOf(u).Challenged {
		t.Fatalf("after deny 1: strikes=%d status=%+v", e.Strikes(u), e.StatusOf(u))
	}
	if err := e.ApplyVerdict(u, score.VerdictDeny); err != nil {
		t.Fatal(err)
	}
	if e.Strikes(u) != 2 || !e.StatusOf(u).RateLimited {
		t.Fatalf("after deny 2: strikes=%d status=%+v", e.Strikes(u), e.StatusOf(u))
	}
	// A strike-backed rate limit does not clear as a throttle would.
	if err := e.ClearThrottle(u); err != nil {
		t.Fatal(err)
	}
	if !e.StatusOf(u).RateLimited {
		t.Fatal("ClearThrottle lifted a strike-backed rate limit")
	}
	if err := e.ApplyVerdict(u, score.VerdictDeny); err != nil {
		t.Fatal(err)
	}
	if !e.StatusOf(u).Suspended {
		t.Fatalf("after deny 3: status=%+v", e.StatusOf(u))
	}

	// Throttling an already-suspended account never de-escalates.
	if err := e.ApplyVerdict(u, score.VerdictThrottle); err != nil {
		t.Fatal(err)
	}
	if !e.StatusOf(u).Suspended {
		t.Fatal("throttle de-escalated a suspension")
	}

	if err := e.ApplyVerdict(u, score.Verdict(99)); err == nil {
		t.Fatal("unknown verdict accepted")
	}
	if err := e.ApplyVerdict(UserID(100), score.VerdictDeny); err == nil {
		t.Fatal("unknown user accepted")
	}
}
