package osn

import (
	"math/rand/v2"
	"testing"
)

// BenchmarkRequestLifecycle measures the service's request path: send plus
// a response, the per-event cost an OSN front-end would pay.
func BenchmarkRequestLifecycle(b *testing.B) {
	const users = 10000
	s := NewService(Config{})
	s.RegisterN(users)
	r := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := UserID(r.IntN(users))
		to := UserID(r.IntN(users))
		if from == to || s.Friends(from, to) {
			continue
		}
		if err := s.SendRequest(from, to); err != nil {
			continue
		}
		if r.IntN(2) == 0 {
			_ = s.Accept(to, from)
		} else {
			_ = s.Reject(to, from)
		}
	}
}

// BenchmarkAugmentedGraph measures materializing the detection input from
// the event log.
func BenchmarkAugmentedGraph(b *testing.B) {
	const users = 5000
	s := NewService(Config{})
	s.RegisterN(users)
	r := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 20000; i++ {
		from, to := UserID(r.IntN(users)), UserID(r.IntN(users))
		if from == to || s.Friends(from, to) {
			continue
		}
		if s.SendRequest(from, to) != nil {
			continue
		}
		if r.IntN(3) == 0 {
			_ = s.Reject(to, from)
		} else {
			_ = s.Accept(to, from)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := s.AugmentedGraph()
		if g.NumNodes() != users {
			b.Fatal("bad graph")
		}
	}
}
