package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// benchShards are the layouts BENCH_cluster.json reports; the CI criterion
// compares the first and last.
var benchShards = []int{1, 2, 4}

// benchShipEvery is the per-shard ship cadence: each shard makes its own
// slice of the stream durable every benchShipEvery records, the deployment
// cadence ShipEvery models (a global flush barrier would pin every layout
// to the same fsync count and hide the scaling).
const benchShipEvery = 4000

// benchClusterWorld is the fixed workload every layout ingests: the same
// base and journal, so timings across layouts are directly comparable.
func benchClusterWorld() (*graph.Graph, core.DetectorOptions, []core.TimedRequest) {
	r := rand.New(rand.NewPCG(42, 1))
	const n, journal, intervals = 800, 40000, 8
	base := testBase(r, n)
	// Parallelism 1 inside each solve: epoch scaling should come from the
	// shard fan-out, not from oversubscribing every shard's KL.
	opts := core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: 7, Parallelism: 1},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}
	return base, opts, testRequests(r, n, journal, intervals)
}

// busyCollector sums each shard's ship busy time (encode, worker append,
// fsync) from cluster.ship events. Under Config.Serial the ships run one
// at a time, so every shard's busy time is an isolated measurement even
// on a single-CPU host — the busiest shard is the shard tier's ingest
// bottleneck when each shard runs on its own node.
type busyCollector struct {
	mu   sync.Mutex
	busy map[int]time.Duration
}

func (bc *busyCollector) Emit(ev obs.Event) {
	if ev.Name != obs.EvClusterShip {
		return
	}
	bc.mu.Lock()
	bc.busy[ev.Job] += ev.Dur
	bc.mu.Unlock()
}

func (bc *busyCollector) max() time.Duration {
	var m time.Duration
	for _, d := range bc.busy {
		if d > m {
			m = d
		}
	}
	return m
}

func benchCoordinator(b *testing.B, base *graph.Graph, opts core.DetectorOptions, shards int, mods ...func(*Config)) *Coordinator {
	b.Helper()
	cfg := Config{
		Base:     base,
		Detector: opts,
		Shards:   shards,
		Dir:      b.TempDir(),
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Recover(nil); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterIngest ingests one full journal per iteration — Append
// routing plus the per-shard ship cadence — and reports two timings:
//
//   - ns/op: single-process wall time (every shard's ship work and fsyncs
//     share this machine, so it is GOMAXPROCS- and disk-bound);
//   - busyns/op: the busiest shard's total ship busy time, measured with
//     serial fan-out so each shard's work is timed in isolation. This is
//     the shard tier's ingest bottleneck in the deployment the subsystem
//     exists for — one shard per node — and is the number the CI ≥2×
//     throughput criterion is computed from (scripts/bench_cluster.sh).
//
// recs/op reports the fixed record count, letting tooling turn either
// timing into records/sec.
func BenchmarkClusterIngest(b *testing.B) {
	base, opts, reqs := benchClusterWorld()
	for _, shards := range benchShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var busyTotal time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bc := &busyCollector{busy: make(map[int]time.Duration)}
				c := benchCoordinator(b, base, opts, shards, func(cfg *Config) {
					cfg.Serial = true
					cfg.ShipEvery = benchShipEvery
					cfg.Tracer = bc
				})
				b.StartTimer()
				for _, req := range reqs {
					if err := c.Append(req); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				busyTotal += bc.max()
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(busyTotal.Nanoseconds())/float64(b.N), "busyns/op")
			b.ReportMetric(float64(len(reqs)), "recs/op")
		})
	}
}

// BenchmarkClusterEpoch times one merged detection epoch over the fully
// ingested journal per iteration: shard fan-out, per-shard engine steps,
// and the interval-ordered merge.
func BenchmarkClusterEpoch(b *testing.B) {
	base, opts, reqs := benchClusterWorld()
	for _, shards := range benchShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := benchCoordinator(b, base, opts, shards)
				for _, req := range reqs {
					if err := c.Append(req); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := c.Detect(len(reqs), nil); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
