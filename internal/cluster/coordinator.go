package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ErrClosed is returned by operations on a closed coordinator.
var ErrClosed = errors.New("cluster: coordinator closed")

// Config parameterizes a Coordinator.
type Config struct {
	// Base is the friendship base graph every interval overlays on,
	// shared read-only by all shard engines. Required.
	Base *graph.Graph

	// Detector configures each shard engine's detections. At least one
	// termination condition must be set. Cancel is ignored: shard epoch
	// steps are not internally interruptible (the coordinator refuses new
	// epochs once closing instead).
	Detector core.DetectorOptions

	// Shards is the partition count for both planes: user-ID ranges for
	// ingest/journal ownership, interval mod Shards for detection
	// ownership. Required, ≥ 1.
	Shards int

	// Workers is the dist worker count; shards are placed round-robin
	// (shard s on worker s mod Workers). Zero defaults to Shards.
	Workers int

	// Dir is the journal root: shard s journals into segmented storage
	// under Dir/shard-NNN. Required.
	Dir string

	// SegmentBytes is each shard store's segment roll size (0 = the
	// storage default).
	SegmentBytes int64

	// PatchMaxFraction is each shard engine's cold-rebuild threshold
	// (0 = incr.DefaultMaxPatchFraction).
	PatchMaxFraction float64

	// Retry is the RPC retry policy (zero fields defaulted).
	Retry dist.RetryPolicy

	// Clock drives retry timeouts and backoff; nil means the wall clock.
	// Chaos tests install the virtual clock their transport advances.
	Clock dist.Clock

	// Transport, when non-nil, wraps the coordinator's local transport —
	// the chaos-injection seam. The wrapper must forward Failer/Reviver.
	Transport func(dist.Transport) dist.Transport

	// StoreHooks, when non-nil, supplies each shard store's fault hooks
	// at open time. It is called again on every reopen, so return a
	// per-shard singleton (e.g. one chaos.StoreFaults per shard) if fault
	// budgets should span crash-rebuild cycles.
	StoreHooks func(shard int) storage.Hooks

	// ShipEvery, when positive, ships a shard's journal tail to its
	// worker (ingest + durable flush) as soon as that shard's unshipped
	// backlog reaches this many records, instead of waiting for the next
	// Flush. Per-shard cadence is how sharding scales ingest durability:
	// every shard fsyncs only its own slice of the stream, so each
	// shard's flush count — and with it the per-node durability cost —
	// drops as shards are added. Zero ships only on explicit Flush.
	ShipEvery int

	// Serial runs the ship and detect fan-outs one shard at a time
	// instead of concurrently. The merged epochs are identical either
	// way; serial fan-out makes the RPC schedule a pure function of the
	// drive sequence, which is what lets a seeded chaos schedule replay
	// deterministically.
	Serial bool

	// Tracer observes the coordinator↔shard boundary (cluster.* events)
	// and every shard engine's pipeline events; nil disables tracing.
	Tracer obs.Tracer
}

// ShardStats describes one shard for /v1/stats and the experiments
// report.
type ShardStats struct {
	Shard  int `json:"shard"`
	Worker int `json:"worker"`
	// Records is the shard's journal length (sender-routed records);
	// Shipped how many of them are acked worker-side.
	Records int64 `json:"records"`
	Shipped int64 `json:"shipped"`
	// Owned is the shard's interval-owned record count; Stepped how many
	// its engine has consumed.
	Owned   int `json:"owned"`
	Stepped int `json:"stepped"`
	// Last epoch step breakdown, from the shard's DetectReply.
	Suspects  int     `json:"suspects"`
	Patched   int     `json:"patched"`
	ColdBuilt int     `json:"cold_built"`
	Reused    int     `json:"reused"`
	PatchMS   float64 `json:"patch_ms"`
	SolveMS   float64 `json:"solve_ms"`
}

// Stats is the coordinator's point-in-time shape, served under "cluster"
// in /v1/stats.
type Stats struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Records counts routed answered requests; Boundary the subset whose
	// interval owner differs from the sender's home shard.
	Records     int64        `json:"records"`
	Boundary    int64        `json:"boundary"`
	LastMergeMS float64      `json:"last_merge_ms"`
	PerShard    []ShardStats `json:"per_shard"`
}

// Coordinator owns the master side of the sharded rejectod: it routes
// answered requests to shard journals, drives shard epochs, and merges
// the per-shard detection sets into one epoch. It implements
// server.Backend; the rejectod server drives it from its ingest and
// detector goroutines, and the coordinator's own fan-outs add shard-level
// parallelism under that.
//
// Lifecycle: New, Recover exactly once, then Append/Flush/Detect, then
// Close.
type Coordinator struct {
	cfg     Config
	nodeCfg nodeConfig
	workers []*dist.Worker
	cl      *dist.Cluster
	home    []int   // shard → worker
	shardsOn [][]int // worker → shards
	rebuildMu []sync.Mutex // per worker: serializes lineage replays

	mu        sync.Mutex
	recovered bool
	closed    bool
	// all is the routed journal in arrival order; perShard and owned are
	// its two partitions (by sender's home shard and by interval owner).
	// All three are append-only, so handed-out sub-slices stay immutable
	// — the same prefix trick the server's snapshot uses.
	all      []core.TimedRequest
	perShard [][]core.TimedRequest
	owned    [][]core.TimedRequest
	// shipped[s] counts perShard[s] records acked by the shard's journal;
	// stepped[s] counts owned[s] records acked by the shard's engine.
	shipped []int64
	stepped []int
	// detCursor / ownedUpto implement the O(delta) epoch cut: ownedUpto[s]
	// is the number of owned[s] records within all[:detCursor].
	detCursor int
	ownedUpto []int
	boundary  int64
	lastStep  []DetectReply
	lastMerge float64
}

// New builds a Coordinator: workers, transport (local by default, wrapped
// by Config.Transport), and the shard service installed on every worker.
// No journal is touched until Recover.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("cluster: Config.Base is required")
	}
	if cfg.Base.NumNodes() == 0 {
		return nil, fmt.Errorf("cluster: Config.Base is empty")
	}
	if cfg.Detector.TargetCount <= 0 && cfg.Detector.AcceptanceThreshold <= 0 {
		return nil, fmt.Errorf("cluster: Detector needs TargetCount or AcceptanceThreshold")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: Config.Shards must be ≥ 1")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
	}
	det := cfg.Detector
	det.Cancel = nil
	c := &Coordinator{
		cfg: cfg,
		nodeCfg: nodeConfig{
			base: &coordBase{
				graph:    cfg.Base,
				detector: det,
				patchMax: cfg.PatchMaxFraction,
			},
			dir:      cfg.Dir,
			segBytes: cfg.SegmentBytes,
			hooks:    cfg.StoreHooks,
			tracer:   cfg.Tracer,
		},
		workers:   make([]*dist.Worker, cfg.Workers),
		home:      make([]int, cfg.Shards),
		shardsOn:  make([][]int, cfg.Workers),
		rebuildMu: make([]sync.Mutex, cfg.Workers),
		perShard:  make([][]core.TimedRequest, cfg.Shards),
		owned:     make([][]core.TimedRequest, cfg.Shards),
		shipped:   make([]int64, cfg.Shards),
		stepped:   make([]int, cfg.Shards),
		ownedUpto: make([]int, cfg.Shards),
		lastStep:  make([]DetectReply, cfg.Shards),
	}
	for w := range c.workers {
		c.workers[w] = dist.NewWorker()
	}
	for s := 0; s < cfg.Shards; s++ {
		w := s % cfg.Workers
		c.home[s] = w
		c.shardsOn[w] = append(c.shardsOn[w], s)
	}
	stats := &dist.IOStats{}
	var tr dist.Transport = dist.NewLocalTransport(c.workers, stats, 0)
	if cfg.Transport != nil {
		tr = cfg.Transport(tr)
	}
	c.cl = dist.NewCluster(tr, stats)
	c.cl.SetRetryPolicy(cfg.Retry)
	if cfg.Clock != nil {
		c.cl.SetClock(cfg.Clock)
	}
	c.cl.SetTracer(cfg.Tracer)
	for w := range c.workers {
		c.installNode(w)
	}
	return c, nil
}

// Cluster exposes the underlying dist.Cluster (transport access for
// tests and IO accounting).
func (c *Coordinator) Cluster() *dist.Cluster { return c.cl }

// Mode implements server.Backend.
func (c *Coordinator) Mode() string { return "cluster" }

func (c *Coordinator) installNode(w int) { install(c.workers[w], c.nodeCfg) }

// homeShard routes a sender to its shard by contiguous user-ID range.
func (c *Coordinator) homeShard(u graph.NodeID) (int, error) {
	n := c.cfg.Base.NumNodes()
	if int(u) < 0 || int(u) >= n {
		return 0, fmt.Errorf("cluster: node %d outside the %d-node base", u, n)
	}
	return int(int64(u) * int64(c.cfg.Shards) / int64(n)), nil
}

// ownerShard routes an interval to the shard that detects it.
func (c *Coordinator) ownerShard(interval int) int {
	s := interval % c.cfg.Shards
	if s < 0 {
		s += c.cfg.Shards
	}
	return s
}

// zeroReply clears a reply struct between attempts (mirrors the retry
// layer's own scrubbing for the install-retry path below).
func zeroReply(reply any) {
	if rv := reflect.ValueOf(reply); rv.Kind() == reflect.Pointer && !rv.IsNil() {
		rv.Elem().SetZero()
	}
}

// callInstalled issues a retried call and, when the worker answers
// state-lost, installs a fresh shard service and tries once more — enough
// for the boot and rebuild paths, whose surrounding loops re-drive any
// deeper failure.
func (c *Coordinator) callInstalled(w int, method dist.Call, args, reply any) error {
	err := c.cl.Call(w, method, args, reply)
	if err == nil || !errors.Is(err, dist.ErrStateLost) {
		return err
	}
	c.installNode(w)
	zeroReply(reply)
	return c.cl.Call(w, method, args, reply)
}

// Recover opens every shard's journal partition, pulls the durable
// records back shard-major, rebuilds the coordinator's routing state, and
// hands each shard's batch to apply (the server validates and folds them
// there). Within a shard, records keep their journal order; detection and
// the read model are order-independent across shards (DESIGN.md §16), so
// the shard-major concatenation recovers the same published state the
// pre-restart process held. Must be called exactly once, before any
// Append or Detect.
func (c *Coordinator) Recover(apply func([]core.TimedRequest) error) (int, error) {
	c.mu.Lock()
	if c.recovered {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: Recover called twice")
	}
	c.recovered = true
	c.mu.Unlock()
	for s := 0; s < c.cfg.Shards; s++ {
		w := c.home[s]
		var or OpenReply
		if err := c.callInstalled(w, callOpen, &OpenArgs{Shard: s}, &or); err != nil {
			return 0, fmt.Errorf("cluster: opening shard %d: %w", s, err)
		}
		var pr PullReply
		if err := c.callInstalled(w, callPull, &PullArgs{Shard: s}, &pr); err != nil {
			return 0, fmt.Errorf("cluster: pulling shard %d: %w", s, err)
		}
		if apply != nil && len(pr.Records) > 0 {
			if err := apply(pr.Records); err != nil {
				return 0, err
			}
		}
		c.mu.Lock()
		c.perShard[s] = append(c.perShard[s], pr.Records...)
		c.shipped[s] = int64(len(c.perShard[s]))
		for _, req := range pr.Records {
			o := c.ownerShard(req.Interval)
			c.all = append(c.all, req)
			c.owned[o] = append(c.owned[o], req)
			if o != s {
				c.boundary++
				obs.Cluster.Boundary.Add(1)
			}
			obs.Cluster.Routed.Add(1)
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.detCursor = len(c.all)
	for s := range c.ownedUpto {
		c.ownedUpto[s] = len(c.owned[s])
	}
	n := len(c.all)
	c.mu.Unlock()
	return n, nil
}

// Append routes one answered request: into the arrival journal, its
// sender's shard partition, and its interval owner's detection queue.
// Shipping to the shard's worker is deferred to Flush (the server's
// quiet-point policy), so Append itself never blocks on the transport —
// unless Config.ShipEvery is set, in which case reaching a shard's
// backlog threshold ships that shard's tail inline (natural ingest
// backpressure).
func (c *Coordinator) Append(req core.TimedRequest) error {
	s, err := c.homeShard(req.From)
	if err != nil {
		return err
	}
	o := c.ownerShard(req.Interval)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.all = append(c.all, req)
	c.perShard[s] = append(c.perShard[s], req)
	c.owned[o] = append(c.owned[o], req)
	if s != o {
		c.boundary++
		obs.Cluster.Boundary.Add(1)
	}
	var (
		ship  bool
		start int64
		batch []core.TimedRequest
	)
	if c.cfg.ShipEvery > 0 {
		ps := c.perShard[s]
		if start = c.shipped[s]; int64(len(ps))-start >= int64(c.cfg.ShipEvery) {
			ship = true
			batch = ps[start:len(ps):len(ps)]
		}
	}
	c.mu.Unlock()
	obs.Cluster.Routed.Add(1)
	if ship {
		return c.shipShard(s, start, batch)
	}
	return nil
}

// forEachShard runs f over the given shards — concurrently by default
// (the multi-node win: per-shard encode, fsync, and solve overlap), or in
// order under Config.Serial for deterministic chaos schedules.
func (c *Coordinator) forEachShard(shards []int, f func(s int) error) error {
	if c.cfg.Serial || len(shards) <= 1 {
		for _, s := range shards {
			if err := f(s); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			errs[i] = f(s)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Flush ships every shard's unshipped journal tail to its worker and
// makes it durable, fanning the batches out per shard.
func (c *Coordinator) Flush() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	starts := make([]int64, c.cfg.Shards)
	batches := make([][]core.TimedRequest, c.cfg.Shards)
	var pending []int
	for s := range c.perShard {
		ps := c.perShard[s]
		if c.shipped[s] < int64(len(ps)) {
			starts[s] = c.shipped[s]
			batches[s] = ps[c.shipped[s]:len(ps):len(ps)]
			pending = append(pending, s)
		}
	}
	c.mu.Unlock()
	return c.forEachShard(pending, func(s int) error {
		return c.shipShard(s, starts[s], batches[s])
	})
}

// shipShard appends one positioned batch to a shard's journal and flushes
// it, under the full recovery path.
func (c *Coordinator) shipShard(s int, start int64, recs []core.TimedRequest) error {
	w := c.home[s]
	var wallStart time.Time
	if c.cfg.Tracer != nil {
		wallStart = time.Now()
	}
	var ir IngestReply
	if err := c.cl.CallWithRecovery(w, callIngest, &IngestArgs{Shard: s, Start: start, Records: recs}, &ir, c.rebuild); err != nil {
		return fmt.Errorf("cluster: shard %d ingest: %w", s, err)
	}
	if err := c.cl.CallWithRecovery(w, callFlush, &FlushArgs{Shard: s}, &FlushReply{}, c.rebuild); err != nil {
		return fmt.Errorf("cluster: shard %d flush: %w", s, err)
	}
	c.mu.Lock()
	if end := start + int64(len(recs)); end > c.shipped[s] {
		c.shipped[s] = end
	}
	c.mu.Unlock()
	obs.Cluster.ShipBatches.Add(1)
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			Name: obs.EvClusterShip, Wall: time.Now(), Dur: time.Since(wallStart),
			Job: s, Nodes: len(recs),
		})
	}
	return nil
}

// rebuild is the lineage replay CallWithRecovery invokes after reviving a
// worker (or discovering its state lost): for every shard homed on it,
// reopen the journal partition from disk, re-ship the records the crash
// cost, and cold-replay the engine to the coordinator's acked step count.
// It issues its calls through the same transport as normal traffic, so a
// chaos schedule can fault the recovery itself — including the storage
// recovery inside Open — and the surrounding recovery cycle re-drives it.
func (c *Coordinator) rebuild(worker int) error {
	c.rebuildMu[worker].Lock()
	defer c.rebuildMu[worker].Unlock()
	for _, s := range c.shardsOn[worker] {
		var wallStart time.Time
		if c.cfg.Tracer != nil {
			wallStart = time.Now()
		}
		var or OpenReply
		if err := c.callInstalled(worker, callOpen, &OpenArgs{Shard: s}, &or); err != nil {
			return err
		}
		c.mu.Lock()
		ps := c.perShard[s][:len(c.perShard[s]):len(c.perShard[s])]
		seed := c.stepped[s]
		pre := c.owned[s][:seed:seed]
		c.mu.Unlock()
		if or.Records > int64(len(ps)) {
			// The durable journal can never be ahead of the coordinator's
			// lineage — it is fed exclusively from it.
			return fmt.Errorf("cluster: shard %d journal holds %d records, lineage has %d", s, or.Records, len(ps))
		}
		if or.Records < int64(len(ps)) {
			var ir IngestReply
			if err := c.cl.Call(worker, callIngest, &IngestArgs{Shard: s, Start: or.Records, Records: ps[or.Records:]}, &ir); err != nil {
				return err
			}
			if err := c.cl.Call(worker, callFlush, &FlushArgs{Shard: s}, &FlushReply{}); err != nil {
				return err
			}
		}
		c.mu.Lock()
		if int64(len(ps)) > c.shipped[s] {
			c.shipped[s] = int64(len(ps))
		}
		c.mu.Unlock()
		if seed > 0 {
			// Re-derive the engine's memo by stepping the owned prefix
			// from zero. DisableWarm makes the replay byte-identical to
			// the incremental path the crash interrupted; the reply is
			// the memoized detection set and is discarded here.
			var dr DetectReply
			if err := c.cl.Call(worker, callDetect, &DetectArgs{Shard: s, Stepped: 0, Delta: pre}, &dr); err != nil {
				return err
			}
		}
		obs.Cluster.Rebuilds.Add(1)
		if c.cfg.Tracer != nil {
			c.cfg.Tracer.Emit(obs.Event{
				Name: obs.EvClusterRebuild, Wall: time.Now(), Dur: time.Since(wallStart),
				Job: s, Nodes: len(ps),
			})
		}
	}
	return nil
}

// Detect advances every shard's engine to the epoch cut (the first events
// routed records) and merges the per-shard detection sets in ascending
// interval order. Each interval is owned by exactly one shard and each
// per-interval detection is a pure, order-independent function of the
// interval's request multiset, so the merge is byte-identical to the
// single-node engine over the same journal prefix. cancel is only
// consulted before work starts — shard epochs run to completion.
func (c *Coordinator) Detect(events int, cancel <-chan struct{}) ([]core.IntervalDetection, error) {
	if cancel != nil {
		select {
		case <-cancel:
			return nil, ErrClosed
		default:
		}
	}
	start := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if events > len(c.all) {
		// The epoch cut can never exceed the routed journal: the caller
		// counts the same events it handed to Append. A mismatch means the
		// caller's journal and the coordinator's lineage desynced (e.g. an
		// Append failed after the caller recorded the event); clamping here
		// would silently publish epochs covering fewer records than the
		// caller believes, breaking the byte-identity invariant.
		n := len(c.all)
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: detect cut %d exceeds journal of %d events", events, n)
	}
	if events > c.detCursor {
		for _, req := range c.all[c.detCursor:events] {
			c.ownedUpto[c.ownerShard(req.Interval)]++
		}
		c.detCursor = events
	}
	targets := make([]int, c.cfg.Shards)
	startSteps := make([]int, c.cfg.Shards)
	deltas := make([][]core.TimedRequest, c.cfg.Shards)
	var active []int
	for s := 0; s < c.cfg.Shards; s++ {
		newK := c.ownedUpto[s]
		if newK == 0 {
			continue
		}
		targets[s] = newK
		startSteps[s] = c.stepped[s]
		d := c.owned[s][c.stepped[s]:newK]
		deltas[s] = d[:len(d):len(d)]
		active = append(active, s)
	}
	c.mu.Unlock()

	replies := make([]DetectReply, c.cfg.Shards)
	err := c.forEachShard(active, func(s int) error {
		var wallStart time.Time
		if c.cfg.Tracer != nil {
			wallStart = time.Now()
		}
		var dr DetectReply
		args := &DetectArgs{Shard: s, Stepped: startSteps[s], Delta: deltas[s]}
		if err := c.cl.CallWithRecovery(c.home[s], callDetect, args, &dr, c.rebuild); err != nil {
			return fmt.Errorf("cluster: shard %d detect: %w", s, err)
		}
		replies[s] = dr
		c.mu.Lock()
		if targets[s] > c.stepped[s] {
			c.stepped[s] = targets[s]
		}
		c.lastStep[s] = dr
		c.mu.Unlock()
		obs.Cluster.ShardDetects.Add(1)
		if c.cfg.Tracer != nil {
			c.cfg.Tracer.Emit(obs.Event{
				Name: obs.EvClusterDetect, Wall: time.Now(), Dur: time.Since(wallStart),
				Job: s, Suspects: dr.Suspects,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var merged []core.IntervalDetection
	suspects := 0
	for _, s := range active {
		merged = append(merged, replies[s].Dets...)
		suspects += replies[s].Suspects
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Interval < merged[j].Interval })
	ms := float64(time.Since(start).Microseconds()) / 1e3
	obs.Cluster.Merges.Add(1)
	obs.Cluster.LastMergeMS.Set(ms)
	c.mu.Lock()
	c.lastMerge = ms
	boundary := c.boundary
	c.mu.Unlock()
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			Name: obs.EvClusterMerge, Wall: time.Now(), Dur: time.Since(start),
			Suspects: suspects, Nodes: int(boundary),
			Detail: fmt.Sprintf("%d shards", c.cfg.Shards),
		})
	}
	return merged, nil
}

// Stats implements server.Backend; the returned value is a Stats.
func (c *Coordinator) Stats() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Shards:      c.cfg.Shards,
		Workers:     c.cfg.Workers,
		Records:     int64(len(c.all)),
		Boundary:    c.boundary,
		LastMergeMS: c.lastMerge,
		PerShard:    make([]ShardStats, c.cfg.Shards),
	}
	for s := 0; s < c.cfg.Shards; s++ {
		last := c.lastStep[s]
		st.PerShard[s] = ShardStats{
			Shard:     s,
			Worker:    c.home[s],
			Records:   int64(len(c.perShard[s])),
			Shipped:   c.shipped[s],
			Owned:     len(c.owned[s]),
			Stepped:   c.stepped[s],
			Suspects:  last.Suspects,
			Patched:   last.Patched,
			ColdBuilt: last.ColdBuilt,
			Reused:    last.Reused,
			PatchMS:   last.PatchMS,
			SolveMS:   last.SolveMS,
		}
	}
	return st
}

// Close flushes and closes every reachable shard store and shuts the
// transport down. A shard whose worker is dead at close time is left to
// its durable state — exactly what a killed process leaves — and is not
// an error; the next boot's Recover picks it up.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var errs []error
	for s := 0; s < c.cfg.Shards; s++ {
		err := c.cl.Call(c.home[s], callClose, &CloseArgs{Shard: s}, &CloseReply{})
		if err != nil && !dist.IsRecoverable(err) {
			errs = append(errs, fmt.Errorf("cluster: closing shard %d: %w", s, err))
		}
	}
	if err := c.cl.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
