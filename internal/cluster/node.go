package cluster

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// The coordinator↔shard RPC surface, registered as extension methods on
// each dist.Worker. Every method is positionally idempotent: retried and
// duplicated deliveries converge on the same worker state and the same
// reply, which is what makes them safe under the retry layer's
// at-least-once semantics.
const (
	callOpen   dist.Call = "Cluster.Open"
	callIngest dist.Call = "Cluster.Ingest"
	callFlush  dist.Call = "Cluster.Flush"
	callDetect dist.Call = "Cluster.Detect"
	callPull   dist.Call = "Cluster.Pull"
	callClose  dist.Call = "Cluster.Close"
)

// OpenArgs opens (or reopens) a shard's journal partition on its worker.
type OpenArgs struct {
	Shard int
}

// OpenReply reports the durable journal length recovered from disk.
type OpenReply struct {
	Records int64
}

// IngestArgs appends a batch of answered requests to a shard's journal at
// a fixed offset. Start is the coordinator's record count before the
// batch: a worker already past Start+len(Records) treats the call as a
// duplicate, one inside the window appends only the unseen suffix, and
// one behind Start has lost journal state and says so.
type IngestArgs struct {
	Shard   int
	Start   int64
	Records []core.TimedRequest
}

// IngestReply reports the shard's journal length after the append.
type IngestReply struct {
	Records int64
}

// FlushArgs makes a shard's appended records durable.
type FlushArgs struct {
	Shard int
}

// FlushReply is empty; flush idempotence is inherent.
type FlushReply struct{}

// DetectArgs advances a shard's engine over the delta of interval-owned
// records past Stepped (the coordinator's view of how many owned records
// the engine has consumed). Like IngestArgs the positioning makes the
// call idempotent: an engine already past Stepped steps only the unseen
// suffix, and one exactly at Stepped+len(Delta) returns its memoized
// reply — the lost-reply retry case.
type DetectArgs struct {
	Shard   int
	Stepped int
	Delta   []core.TimedRequest
}

// DetectReply carries the shard's full per-interval detection set (over
// every owned record consumed so far, ascending by interval) plus the
// step's timing and reuse breakdown for stats and the experiments report.
type DetectReply struct {
	Stepped   int
	Dets      []core.IntervalDetection
	Suspects  int
	Patched   int
	ColdBuilt int
	Reused    int
	PatchMS   float64
	SolveMS   float64
}

// PullArgs streams a shard's journal back to the coordinator, from a
// record offset — the boot-time recovery read.
type PullArgs struct {
	Shard int
	From  int64
}

// PullReply carries the requested journal suffix.
type PullReply struct {
	Records []core.TimedRequest
}

// CloseArgs flushes and closes a shard's store (graceful shutdown only;
// crashed workers leave their handles to the process reaper, exactly like
// a killed process would).
type CloseArgs struct {
	Shard int
}

// CloseReply is empty.
type CloseReply struct{}

// nodeConfig is the worker-side slice of the coordinator's Config.
type nodeConfig struct {
	base     *coordBase
	dir      string
	segBytes int64
	hooks    func(shard int) storage.Hooks
	tracer   obs.Tracer
}

// coordBase bundles what every shard engine shares: the base graph
// (read-only — engines Clone it per cold snapshot build, and Clone is a
// pure read, so sharing across worker goroutines is safe) and the
// detector options with Cancel stripped.
type coordBase struct {
	graph    *graph.Graph
	detector core.DetectorOptions
	patchMax float64
}

// node is one worker's shard service: the journal partitions and engines
// of every shard homed on it. A worker crash (dist reset) drops the whole
// node — its in-memory journals, engines, and any unflushed store buffers
// — exactly like a killed process; the coordinator's rebuild closure
// installs a fresh node and replays the lineage.
type node struct {
	cfg    nodeConfig
	mu     sync.Mutex
	shards map[int]*shardNode
}

// shardNode is one shard's worker-side state.
type shardNode struct {
	store storage.Store
	// broken marks a store that failed an operation (e.g. an injected
	// storage crash): every call answers state-lost until Open reopens
	// the partition from disk.
	broken  bool
	journal []core.TimedRequest
	engine  *incr.Engine
	stepped int
	hasLast bool
	last    DetectReply
}

func newNode(cfg nodeConfig) *node {
	return &node{cfg: cfg, shards: make(map[int]*shardNode)}
}

// stateLost wraps a shard-service failure as dist.ErrStateLost, routing it
// into the master's rebuild path.
func stateLost(format string, a ...any) error {
	return fmt.Errorf("cluster: %s: %w", fmt.Sprintf(format, a...), dist.ErrStateLost)
}

// shard returns a usable shard state or state-lost (absent: the node was
// rebuilt without this shard; broken: its store crashed).
func (n *node) shard(id int) (*shardNode, error) {
	sn := n.shards[id]
	if sn == nil {
		return nil, stateLost("shard %d not open on this worker", id)
	}
	if sn.broken {
		return nil, stateLost("shard %d store crashed", id)
	}
	return sn, nil
}

// open opens shard id's journal partition, recovering its durable records
// — or reports the current length when the shard is already healthy, so a
// redundant rebuild probe never drops live state.
func (n *node) open(args *OpenArgs, reply *OpenReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sn := n.shards[args.Shard]; sn != nil {
		if !sn.broken {
			reply.Records = int64(len(sn.journal))
			return nil
		}
		// A crashed store writes nothing more on Close; it only releases
		// handles so the reopen below sees the directory as a restarted
		// process would.
		sn.store.Close()
		delete(n.shards, args.Shard)
	}
	var hooks storage.Hooks
	if n.cfg.hooks != nil {
		hooks = n.cfg.hooks(args.Shard)
	}
	st, err := storage.Open(storage.Options{
		Dir:          filepath.Join(n.cfg.dir, fmt.Sprintf("shard-%03d", args.Shard)),
		SegmentBytes: n.cfg.segBytes,
		Tracer:       n.cfg.tracer,
		Hooks:        hooks,
	})
	if err != nil {
		return stateLost("opening shard %d: %v", args.Shard, err)
	}
	sn := &shardNode{store: st}
	if _, err := st.Recover(func(reqs []core.TimedRequest) error {
		sn.journal = append(sn.journal, reqs...)
		return nil
	}); err != nil {
		st.Close()
		return stateLost("recovering shard %d: %v", args.Shard, err)
	}
	eng, err := incr.NewEngine(incr.Config{
		Base:             n.cfg.base.graph,
		Detector:         n.cfg.base.detector,
		MaxPatchFraction: n.cfg.base.patchMax,
		DisableWarm:      true, // rebuilt engines must replay to identical bytes
		Tracer:           n.cfg.tracer,
	})
	if err != nil {
		st.Close()
		return fmt.Errorf("cluster: shard %d engine: %w", args.Shard, err)
	}
	sn.engine = eng
	n.shards[args.Shard] = sn
	reply.Records = int64(len(sn.journal))
	return nil
}

// ingest appends the unseen suffix of a positioned batch.
func (n *node) ingest(args *IngestArgs, reply *IngestReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn, err := n.shard(args.Shard)
	if err != nil {
		return err
	}
	have := int64(len(sn.journal))
	if args.Start > have {
		return stateLost("shard %d ingest gap: batch starts at %d, journal holds %d", args.Shard, args.Start, have)
	}
	if done := have - args.Start; done < int64(len(args.Records)) {
		for _, req := range args.Records[done:] {
			if err := sn.store.Append(req); err != nil {
				sn.broken = true
				return stateLost("shard %d append: %v", args.Shard, err)
			}
			sn.journal = append(sn.journal, req)
		}
	}
	reply.Records = int64(len(sn.journal))
	return nil
}

// flush makes the shard's journal durable.
func (n *node) flush(args *FlushArgs, _ *FlushReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn, err := n.shard(args.Shard)
	if err != nil {
		return err
	}
	if err := sn.store.Flush(); err != nil {
		sn.broken = true
		return stateLost("shard %d flush: %v", args.Shard, err)
	}
	return nil
}

// detect advances the shard engine over the positioned delta and replies
// with the full owned detection set. The engine holds the mutex for the
// whole step — shards homed on the same worker serialize, which is the
// node's capacity model.
func (n *node) detect(args *DetectArgs, reply *DetectReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn, err := n.shard(args.Shard)
	if err != nil {
		return err
	}
	if args.Stepped > sn.stepped {
		return stateLost("shard %d detect gap: delta starts at %d, engine stepped %d", args.Shard, args.Stepped, sn.stepped)
	}
	off := sn.stepped - args.Stepped
	if off > len(args.Delta) {
		// The engine is already past the delta's end — e.g. a rebuild seed
		// positioned from a stale coordinator read racing an in-flight step
		// on a co-homed shard. The memoized reply is the answer, same as
		// the empty-suffix case below.
		if sn.hasLast {
			*reply = sn.last
		}
		return nil
	}
	suffix := args.Delta[off:]
	if len(suffix) == 0 {
		// Duplicate delivery, lost-reply retry, or a rebuild seed that
		// raced a newer step: the memoized reply (or the zero reply for a
		// never-stepped shard) is the answer either way.
		if sn.hasLast {
			*reply = sn.last
		}
		return nil
	}
	var d incr.Delta
	for _, req := range suffix {
		d.AddRequest(req)
	}
	dets, stats, err := sn.engine.Step(d)
	if err != nil {
		// Step errors are not recoverable by replaying lineage (the
		// replay would hit the same validation failure); surface them.
		return fmt.Errorf("cluster: shard %d step: %w", args.Shard, err)
	}
	sn.stepped += len(suffix)
	suspects := 0
	for _, det := range dets {
		suspects += len(det.Detection.Suspects)
	}
	sn.last = DetectReply{
		Stepped:   sn.stepped,
		Dets:      dets,
		Suspects:  suspects,
		Patched:   stats.Patched,
		ColdBuilt: stats.ColdBuilt,
		Reused:    stats.Reused,
		PatchMS:   float64(stats.PatchDur.Microseconds()) / 1e3,
		SolveMS:   float64(stats.SolveDur.Microseconds()) / 1e3,
	}
	sn.hasLast = true
	*reply = sn.last
	return nil
}

// pull streams the shard's journal suffix back to the coordinator.
func (n *node) pull(args *PullArgs, reply *PullReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn, err := n.shard(args.Shard)
	if err != nil {
		return err
	}
	if args.From > int64(len(sn.journal)) {
		return stateLost("shard %d pull past end: from %d, journal holds %d", args.Shard, args.From, len(sn.journal))
	}
	recs := sn.journal[args.From:]
	reply.Records = recs[:len(recs):len(recs)]
	return nil
}

// closeShard flushes and closes the shard's store.
func (n *node) closeShard(args *CloseArgs, _ *CloseReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn := n.shards[args.Shard]
	if sn == nil {
		return nil
	}
	delete(n.shards, args.Shard)
	return sn.store.Close()
}

// handler adapts a typed method body to the dist.Handler signature.
func handler[A any, R any](f func(*A, *R) error) dist.Handler {
	return func(args, reply any) error {
		a, okA := args.(*A)
		r, okR := reply.(*R)
		if !okA || !okR {
			return fmt.Errorf("cluster: mismatched args/reply types %T/%T", args, reply)
		}
		return f(a, r)
	}
}

// install registers a fresh node's handlers on w, replacing any previous
// registration. Called at startup and by the rebuild path after a worker
// reset wiped the registrations.
func install(w *dist.Worker, cfg nodeConfig) {
	n := newNode(cfg)
	w.Register(callOpen, handler(n.open))
	w.Register(callIngest, handler(n.ingest))
	w.Register(callFlush, handler(n.flush))
	w.Register(callDetect, handler(n.detect))
	w.Register(callPull, handler(n.pull))
	w.Register(callClose, handler(n.closeShard))
}
