// Package cluster is the multi-node rejectod: ingest, journaling, and
// detection partitioned across dist workers by user-ID shard, coordinated
// into epochs that are byte-identical to a single-node server over the
// same journal.
//
// # Ownership planes
//
// Two partitions coexist, both derived from the same shard count S:
//
//   - Ingest/journal ownership follows the sender: an answered request is
//     routed to the home shard of its From node (contiguous user-ID
//     ranges), appended to that shard's own storage-backed journal
//     partition (internal/storage segments under Dir/shard-NNN), and
//     flushed at the server's quiet points.
//   - Detection ownership follows the interval: interval i belongs to
//     shard i mod S, whose shard-local incr.Engine memoizes exactly the
//     intervals it owns.
//
// A record whose interval owner differs from its sender's home shard is a
// boundary residual: the coordinator routes a copy of it to the interval
// owner at epoch time (the journal copy stays with the sender's shard), so
// every interval's detection sees the interval's full request multiset.
// Per-interval detection is order-independent (requests are canonicalized
// before each solve — the replay invariant), so merging the per-shard
// detection sets in ascending interval order reproduces the single-node
// core.DetectSharded / incr.Engine result byte for byte. Shard engines run
// with warm starting disabled for the same reason: a crash-rebuilt engine
// that cold-replays its prefix must land on the same bytes as one that
// never crashed.
//
// # Fault tolerance
//
// Shard RPCs ride dist.Cluster's retry and recovery machinery and are
// positionally idempotent: ingest batches carry their journal offset (a
// replayed batch appends only the unseen suffix; a gap reports
// dist.ErrStateLost), epoch steps carry the engine's step count (a
// duplicated step returns the memoized reply). A crashed worker is rebuilt
// from the coordinator's in-memory lineage — reopen the shard's journal
// from disk, re-ship the unflushed tail, cold-replay the engine prefix —
// through the same transport, so chaos schedules can fault the recovery
// itself. Simulated storage crashes (storage.ErrCrashed via
// chaos.StoreFaults) surface as state-lost and take the same path.
//
// The Coordinator implements server.Backend, so cmd/rejectod serves
// /v1/suspects and /v1/score from merged multi-node epochs unchanged. See
// DESIGN.md §16 for the full design and invariants.
package cluster
