package cluster

import (
	"reflect"
	"testing"
	"time"

	"math/rand/v2"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/storage"
)

// chaosMatrixRetry mirrors the chaos scenario preset: more attempts and a
// short virtual timeout so injected latency becomes timeouts, plus a
// recovery budget that outlasts a capped kill cascade.
func chaosMatrixRetry(seed uint64) dist.RetryPolicy {
	return dist.RetryPolicy{
		MaxAttempts:      8,
		Timeout:          50 * time.Millisecond,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       16 * time.Millisecond,
		RecoveryAttempts: 16,
		JitterSeed:       seed ^ 0x9e3779b97f4a7c15,
	}
}

// TestChaosMatrix32 is the multi-node correctness harness: 32 seeded fault
// schedules — dropped calls, lost replies, duplicates, timeout-latency,
// worker crashes and self-restarts mid-epoch, plus simulated storage
// crashes inside shard journals (so worker rebuilds fault *during* storage
// recovery too) — and under every one of them each published epoch must be
// byte-identical to the fault-free single-node engine over the same
// journal prefix.
//
// The coordinator runs Serial so its RPC sequence is a pure function of
// the drive sequence and each seed's schedule replays deterministically.
func TestChaosMatrix32(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 43))
	const n, count, maxIv, batch = 100, 150, 5, 50
	const shards, workers = 4, 2
	base := testBase(r, n)
	reqs := testRequests(r, n, count, maxIv)

	// Fault-free single-node baseline at each epoch cut.
	var want [][]core.IntervalDetection
	var cuts []int
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		dets, err := core.DetectSharded(base, reqs[:end], testOpts())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dets)
		cuts = append(cuts, end)
	}

	totalFaults, totalKills, totalStoreFaults := 0, 0, 0
	for seed := uint64(1); seed <= 32; seed++ {
		// Per-shard fault singletons: budgets span reopen cycles, so a
		// rebuilt store cannot re-arm its own crash schedule.
		stores := make([]*chaos.StoreFaults, shards)
		for s := range stores {
			stores[s] = chaos.NewStoreFaults(chaos.StoreFaultOptions{
				Seed:      seed ^ uint64(s)<<8,
				PCrash:    0.01,
				MaxFaults: 2,
			})
		}
		var ct *chaos.Transport
		cfg := Config{
			Base:     base,
			Detector: testOpts(),
			Shards:   shards,
			Workers:  workers,
			Dir:      t.TempDir(),
			Serial:   true,
			Retry:    chaosMatrixRetry(seed),
			Transport: func(inner dist.Transport) dist.Transport {
				ct = chaos.Wrap(inner, chaos.Options{
					Seed:            seed,
					PLatency:        0.04,
					LatencyMin:      time.Millisecond,
					LatencyMax:      60 * time.Millisecond,
					PTransient:      0.05,
					PReplyLost:      0.05,
					PDuplicate:      0.05,
					PCrash:          0.02,
					PRestart:        0.01,
					RestartAfterMin: 1,
					RestartAfterMax: 4,
					MaxKills:        3,
				})
				return ct
			},
			StoreHooks: func(shard int) storage.Hooks { return stores[shard] },
		}
		cfg.Clock = nil // set below once the transport exists
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cluster().SetClock(ct.Clock())
		if _, err := c.Recover(nil); err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}

		ct.Arm()
		for i, cut := range cuts {
			lo := 0
			if i > 0 {
				lo = cuts[i-1]
			}
			for _, req := range reqs[lo:cut] {
				if err := c.Append(req); err != nil {
					t.Fatalf("seed %d: append: %v", seed, err)
				}
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("seed %d: flush at cut %d: %v", seed, cut, err)
			}
			got, err := c.Detect(cut, nil)
			if err != nil {
				t.Fatalf("seed %d: detect at cut %d: %v", seed, cut, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("seed %d: epoch at cut %d diverged from fault-free single-node baseline\nfaults: %v",
					seed, cut, ct.Log())
			}
		}
		ct.Disarm()
		// One fault-free epoch after the storm: the converged state, not
		// just a lucky final answer.
		got, err := c.Detect(count, nil)
		if err != nil {
			t.Fatalf("seed %d: final detect: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want[len(want)-1]) {
			t.Fatalf("seed %d: post-disarm epoch diverged\nfaults: %v", seed, ct.Log())
		}
		if err := c.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}

		counts := ct.Counts()
		for kind, n := range counts {
			totalFaults += n
			if kind == chaos.FaultCrash || kind == chaos.FaultRestart {
				totalKills += n
			}
		}
		for _, sf := range stores {
			totalStoreFaults += sf.Faults()
		}
	}
	if totalFaults == 0 {
		t.Fatal("no RPC faults injected across 32 seeds — the matrix is vacuous")
	}
	if totalKills == 0 {
		t.Fatal("no worker was killed mid-epoch across 32 seeds — raise PCrash")
	}
	if totalStoreFaults == 0 {
		t.Fatal("no storage crash injected across 32 seeds — raise PCrash")
	}
	t.Logf("32 seeds: %d RPC faults (%d kills), %d storage crashes, all epochs byte-identical",
		totalFaults, totalKills, totalStoreFaults)
}
