package cluster

import (
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// testBase builds a friendship ring with random chords — the pre-existing
// social graph detection overlays.
func testBase(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	for i := 0; i < n; i++ {
		u, v := r.IntN(n), r.IntN(n)
		if u != v {
			g.AddFriendship(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// testRequests draws count answered requests over maxIv intervals; spammy
// senders (top decile of IDs) are rejected often so detections find
// something.
func testRequests(r *rand.Rand, nNodes, count, maxIv int) []core.TimedRequest {
	reqs := make([]core.TimedRequest, 0, count)
	for len(reqs) < count {
		from := graph.NodeID(r.IntN(nNodes))
		to := graph.NodeID(r.IntN(nNodes))
		if from == to {
			continue
		}
		rejOdds := 0.25
		if int(from) >= nNodes*9/10 {
			rejOdds = 0.8
		}
		reqs = append(reqs, core.TimedRequest{
			From: from, To: to,
			Accepted: r.Float64() >= rejOdds,
			Interval: r.IntN(maxIv),
		})
	}
	return reqs
}

func testOpts() core.DetectorOptions {
	return core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: 7, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}
}

// newTestCoord builds and recovers a coordinator over t.TempDir, applying
// mods to the config first.
func newTestCoord(t *testing.T, base *graph.Graph, shards, workers int, mods ...func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Base:     base,
		Detector: testOpts(),
		Shards:   shards,
		Workers:  workers,
		Dir:      t.TempDir(),
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// driveBatches appends reqs in batches, flushing and detecting after each,
// and returns the detections of every mid-stream epoch plus the final one.
func driveBatches(t *testing.T, c *Coordinator, reqs []core.TimedRequest, batch int) [][]core.IntervalDetection {
	t.Helper()
	var epochs [][]core.IntervalDetection
	for start := 0; start < len(reqs); start += batch {
		end := start + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		for _, req := range reqs[start:end] {
			if err := c.Append(req); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		dets, err := c.Detect(end, nil)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, dets)
	}
	return epochs
}

// TestClusterMatchesSingleNode is the tentpole invariant: for every shard
// and worker layout, the coordinator's merged epochs — including every
// mid-stream epoch — are byte-identical to the single-node batch engine
// over the same journal prefix.
func TestClusterMatchesSingleNode(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 23))
	const n, count, maxIv, batch = 120, 180, 6, 50
	base := testBase(r, n)
	reqs := testRequests(r, n, count, maxIv)

	// Reference epochs at each batch cut, from the single-node engine.
	var want [][]core.IntervalDetection
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		dets, err := core.DetectSharded(base, reqs[:end], testOpts())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dets)
	}

	layouts := []struct{ shards, workers int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {4, 2}, {5, 3},
	}
	for _, lay := range layouts {
		c := newTestCoord(t, base, lay.shards, lay.workers)
		got := driveBatches(t, c, reqs, batch)
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("shards=%d workers=%d: epoch %d diverged from single-node engine",
					lay.shards, lay.workers, i)
			}
		}
		st := c.Stats().(Stats)
		if st.Records != int64(count) {
			t.Fatalf("shards=%d: stats carry %d records, want %d", lay.shards, st.Records, count)
		}
		if lay.shards > 1 && st.Boundary == 0 {
			t.Fatalf("shards=%d: no boundary residuals in a random workload — routing is vacuous", lay.shards)
		}
	}
}

// TestBoundaryResiduals pins the two ownership planes apart: a request
// whose sender lives on one shard but whose interval is owned by another
// must be counted as a boundary residual and still reach the owner's
// detection.
func TestBoundaryResiduals(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 9))
	const n = 40
	base := testBase(r, n)
	c := newTestCoord(t, base, 2, 2)

	// Sender 0 homes on shard 0; interval 1 is owned by shard 1.
	reqs := []core.TimedRequest{
		{From: 0, To: 5, Accepted: false, Interval: 1},
		{From: 1, To: 6, Accepted: true, Interval: 1},
		{From: graph.NodeID(n - 1), To: 3, Accepted: false, Interval: 0}, // home 1, owner 0
		{From: 2, To: 7, Accepted: false, Interval: 0},                   // home 0, owner 0
	}
	for _, req := range reqs {
		if err := c.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Detect(len(reqs), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DetectSharded(base, reqs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("boundary-heavy epoch diverged from single-node engine")
	}
	st := c.Stats().(Stats)
	if st.Boundary != 3 {
		t.Fatalf("boundary residuals = %d, want 3", st.Boundary)
	}
}

// TestClusterRestartRecovers closes the durability loop: a second
// coordinator over the same directory recovers every flushed record and
// publishes the same merged epoch.
func TestClusterRestartRecovers(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 31))
	const n, count = 80, 120
	base := testBase(r, n)
	reqs := testRequests(r, n, count, 5)
	dir := t.TempDir()

	cfg := Config{Base: base, Detector: testOpts(), Shards: 3, Workers: 2, Dir: dir}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if err := c1.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := c1.Detect(count, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	recovered := 0
	nrec, err := c2.Recover(func(batch []core.TimedRequest) error {
		recovered += len(batch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nrec != count || recovered != count {
		t.Fatalf("recovered %d records (apply saw %d), want %d", nrec, recovered, count)
	}
	after, err := c2.Detect(count, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("post-restart epoch diverged from pre-restart epoch")
	}
}

// TestPositionalIdempotency drives the shard service handlers directly
// through every duplicate/gap case the retry layer can produce.
func TestPositionalIdempotency(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 13))
	base := testBase(r, 30)
	det := testOpts()
	n := newNode(nodeConfig{
		base: &coordBase{graph: base, detector: det},
		dir:  t.TempDir(),
	})
	var or OpenReply
	if err := n.open(&OpenArgs{Shard: 0}, &or); err != nil {
		t.Fatal(err)
	}
	if or.Records != 0 {
		t.Fatalf("fresh shard recovered %d records", or.Records)
	}

	reqs := testRequests(r, 30, 8, 2)
	// First delivery, then an exact duplicate, then an overlapping batch.
	var ir IngestReply
	if err := n.ingest(&IngestArgs{Shard: 0, Start: 0, Records: reqs[:5]}, &ir); err != nil {
		t.Fatal(err)
	}
	if err := n.ingest(&IngestArgs{Shard: 0, Start: 0, Records: reqs[:5]}, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Records != 5 {
		t.Fatalf("duplicate ingest grew the journal to %d", ir.Records)
	}
	if err := n.ingest(&IngestArgs{Shard: 0, Start: 3, Records: reqs[3:8]}, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Records != 8 {
		t.Fatalf("overlapping ingest produced %d records, want 8", ir.Records)
	}
	// A gap is lost state, not silent corruption.
	if err := n.ingest(&IngestArgs{Shard: 0, Start: 12, Records: reqs[:2]}, &ir); !errors.Is(err, dist.ErrStateLost) {
		t.Fatalf("gapped ingest returned %v, want ErrStateLost", err)
	}

	// Detect: first step, duplicate step (memoized reply), gapped step.
	var d1, d2 DetectReply
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 0, Delta: reqs[:5]}, &d1); err != nil {
		t.Fatal(err)
	}
	if d1.Stepped != 5 {
		t.Fatalf("engine stepped %d, want 5", d1.Stepped)
	}
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 0, Delta: reqs[:5]}, &d2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("duplicate detect did not return the memoized reply")
	}
	var d3 DetectReply
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 9, Delta: reqs[:2]}, &d3); !errors.Is(err, dist.ErrStateLost) {
		t.Fatal("gapped detect must report lost state")
	}

	// Open on a healthy shard is a probe: it must not drop live state.
	if err := n.open(&OpenArgs{Shard: 0}, &or); err != nil {
		t.Fatal(err)
	}
	if or.Records != 8 {
		t.Fatalf("probe open reports %d records, want 8", or.Records)
	}
	var d4 DetectReply
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 5, Delta: nil}, &d4); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d4, d1) {
		t.Fatal("probe open wiped the engine's memoized state")
	}

	// A never-opened shard reports lost state on every method.
	if err := n.flush(&FlushArgs{Shard: 1}, &FlushReply{}); !errors.Is(err, dist.ErrStateLost) {
		t.Fatal("unopened shard must report lost state")
	}
}

// TestConfigValidation pins the constructor's error surface.
func TestConfigValidation(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	base := testBase(r, 10)
	good := Config{Base: base, Detector: testOpts(), Shards: 2, Dir: t.TempDir()}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"nil base", func(c *Config) { c.Base = nil }},
		{"no termination", func(c *Config) { c.Detector = core.DetectorOptions{} }},
		{"zero shards", func(c *Config) { c.Shards = 0 }},
		{"no dir", func(c *Config) { c.Dir = "" }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
	c, err := New(good)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(nil); err == nil {
		t.Fatal("second Recover must fail")
	}
	if err := c.Append(core.TimedRequest{From: 50, To: 1, Interval: 0}); err == nil {
		t.Fatal("Append accepted a sender outside the base")
	}
}

// TestShipEvery checks the per-shard ship cadence: once a shard's
// unshipped backlog reaches the threshold, Append ships it inline — no
// explicit Flush — and the shipped records survive a restart. Epochs stay
// byte-identical to the single-node engine regardless of cadence.
func TestShipEvery(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 5))
	const n, count, maxIv, every = 90, 140, 4, 8
	base := testBase(r, n)
	reqs := testRequests(r, n, count, maxIv)
	dir := t.TempDir()

	c := newTestCoord(t, base, 3, 3, func(cfg *Config) {
		cfg.Dir = dir
		cfg.ShipEvery = every
	})
	for _, req := range reqs {
		if err := c.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats().(Stats)
	var shipped int64
	for _, s := range st.PerShard {
		shipped += s.Shipped
		if s.Records-s.Shipped >= every {
			t.Fatalf("shard %d backlog %d at cadence %d", s.Shard, s.Records-s.Shipped, every)
		}
	}
	if shipped == 0 {
		t.Fatal("no records auto-shipped without an explicit Flush")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Detect(count, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DetectSharded(base, reqs, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ShipEvery cadence changed the merged epoch")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The shipped journal is durable: a fresh coordinator over the same
	// dir recovers every record and republishes the same epoch.
	c2 := newTestCoord(t, base, 3, 3, func(cfg *Config) { cfg.Dir = dir })
	again, err := c2.Detect(count, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("post-restart epoch diverged")
	}
}

// TestDetectStaleSeedReturnsMemo reproduces the rebuild/detect race on
// co-homed shards: a rebuild seed positioned from a stale coordinator
// read (Stepped:0 with a short owned prefix) can arrive after the
// engine has already stepped past the prefix. The handler must answer
// with the memoized reply — not panic slicing past the delta's end.
func TestDetectStaleSeedReturnsMemo(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 9))
	base := testBase(r, 60)
	reqs := testRequests(r, 60, 12, 3)
	n := newNode(nodeConfig{
		base: &coordBase{graph: base, detector: testOpts()},
		dir:  t.TempDir(),
	})
	if err := n.open(&OpenArgs{Shard: 0}, &OpenReply{}); err != nil {
		t.Fatal(err)
	}
	if err := n.ingest(&IngestArgs{Shard: 0, Start: 0, Records: reqs}, &IngestReply{}); err != nil {
		t.Fatal(err)
	}
	var full DetectReply
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 0, Delta: reqs}, &full); err != nil {
		t.Fatal(err)
	}
	var stale DetectReply
	if err := n.detect(&DetectArgs{Shard: 0, Stepped: 0, Delta: reqs[:3]}, &stale); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stale, full) {
		t.Fatalf("stale seed reply diverged from memoized reply: got %d dets stepped %d, want %d dets stepped %d",
			len(stale.Dets), stale.Stepped, len(full.Dets), full.Stepped)
	}
}
