package cache

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestLockedBasics(t *testing.T) {
	c := NewLocked[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if evicted := c.Add(3, "c"); !evicted {
		t.Fatal("expected eviction at capacity")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if !c.Remove(3) || c.Remove(3) {
		t.Fatal("Remove(3) should succeed exactly once")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries behind")
	}
}

// TestLockedConcurrent hammers one cache from many goroutines; run under
// -race this is the concurrency contract check.
func TestLockedConcurrent(t *testing.T) {
	c := NewLocked[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (w*31 + i) % 128
				if i%3 == 0 {
					c.Add(k, i)
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}

// TestLockedExpvarCounters: every Get ticks the process-wide
// rejecto.cache_hits / rejecto.cache_misses expvars, so warm-epoch
// memoization wins are visible at /debug/vars. The counters are global, so
// the test asserts on deltas.
func TestLockedExpvarCounters(t *testing.T) {
	c := NewLocked[string, int](4)
	hits0, misses0 := obs.Cache.Hits.Value(), obs.Cache.Misses.Value()

	c.Get("absent") // miss
	c.Add("k", 1)
	c.Get("k") // hit
	c.Get("k") // hit

	if d := obs.Cache.Hits.Value() - hits0; d != 2 {
		t.Fatalf("rejecto.cache_hits advanced by %d, want 2", d)
	}
	if d := obs.Cache.Misses.Value() - misses0; d != 1 {
		t.Fatalf("rejecto.cache_misses advanced by %d, want 1", d)
	}

	// The per-instance Stats tally must agree with what was just ticked.
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("Stats() = (%d, %d), want (2, 1)", hits, misses)
	}
}
