package cache

import (
	"sync"
	"testing"
)

func TestLockedBasics(t *testing.T) {
	c := NewLocked[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if evicted := c.Add(3, "c"); !evicted {
		t.Fatal("expected eviction at capacity")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if !c.Remove(3) || c.Remove(3) {
		t.Fatal("Remove(3) should succeed exactly once")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries behind")
	}
}

// TestLockedConcurrent hammers one cache from many goroutines; run under
// -race this is the concurrency contract check.
func TestLockedConcurrent(t *testing.T) {
	c := NewLocked[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (w*31 + i) % 128
				if i%3 == 0 {
					c.Add(k, i)
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}
