package cache

import "container/list"

// LRU is a fixed-capacity least-recently-used cache. The zero value is not
// usable; construct with NewLRU. LRU is not safe for concurrent use; callers
// that share one across goroutines must serialize access.
type LRU[K comparable, V any] struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[K]*list.Element
	onEvict  func(K, V)

	hits   uint64
	misses uint64
}

type lruEntry[K comparable, V any] struct {
	key   K
	value V
}

// NewLRU returns an LRU holding at most capacity entries. It panics if
// capacity is not positive.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("cache: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// OnEvict registers a callback invoked with each entry as it is evicted or
// removed. Passing nil clears the callback.
func (c *LRU[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// Len reports the number of cached entries.
func (c *LRU[K, V]) Len() int { return c.ll.Len() }

// Cap reports the cache capacity.
func (c *LRU[K, V]) Cap() int { return c.capacity }

// Get returns the value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for key without updating recency or statistics.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without updating recency.
func (c *LRU[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Add inserts or updates key and marks it most recently used, evicting the
// least-recently-used entry if the cache is full. It reports whether an
// eviction occurred.
func (c *LRU[K, V]) Add(key K, value V) (evicted bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).value = value
		return false
	}
	el := c.ll.PushFront(&lruEntry[K, V]{key: key, value: value})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		c.evictOldest()
		return true
	}
	return false
}

// Remove deletes key from the cache, reporting whether it was present.
func (c *LRU[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// Clear removes all entries, invoking the eviction callback for each.
func (c *LRU[K, V]) Clear() {
	for c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// Stats returns the cumulative hit and miss counts observed by Get.
func (c *LRU[K, V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Keys returns the cached keys ordered from most to least recently used.
func (c *LRU[K, V]) Keys() []K {
	keys := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry[K, V]).key)
	}
	return keys
}

func (c *LRU[K, V]) evictOldest() {
	if el := c.ll.Back(); el != nil {
		c.removeElement(el)
	}
}

func (c *LRU[K, V]) removeElement(el *list.Element) {
	entry := el.Value.(*lruEntry[K, V])
	c.ll.Remove(el)
	delete(c.items, entry.key)
	if c.onEvict != nil {
		c.onEvict(entry.key, entry.value)
	}
}
