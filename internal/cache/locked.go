package cache

import (
	"sync"

	"repro/internal/obs"
)

// Locked is a mutex-guarded LRU, safe for concurrent use. The rejectod
// service memoizes hot per-user lookup responses through one: many HTTP
// readers share the cache while detection epochs roll underneath (entries
// are keyed by epoch, so a new epoch naturally evicts the old epoch's
// entries as fresh keys displace them).
type Locked[K comparable, V any] struct {
	mu  sync.Mutex
	lru *LRU[K, V]
}

// NewLocked returns a concurrency-safe LRU holding at most capacity
// entries. It panics if capacity is not positive.
func NewLocked[K comparable, V any](capacity int) *Locked[K, V] {
	return &Locked[K, V]{lru: NewLRU[K, V](capacity)}
}

// Get returns the value for key and marks it most recently used. Every Get
// also ticks the process-wide rejecto.cache_hits / rejecto.cache_misses
// expvars (obs.Cache), so memoization wins — e.g. the server's per-user
// lookups staying hot across a warm epoch — are observable at /debug/vars.
func (c *Locked[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.lru.Get(key)
	if ok {
		obs.Cache.Hits.Add(1)
	} else {
		obs.Cache.Misses.Add(1)
	}
	return v, ok
}

// Add inserts or updates key, evicting the least-recently-used entry if the
// cache is full. It reports whether an eviction occurred.
func (c *Locked[K, V]) Add(key K, value V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Add(key, value)
}

// Remove deletes key, reporting whether it was present.
func (c *Locked[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Remove(key)
}

// Len reports the number of cached entries.
func (c *Locked[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear removes all entries.
func (c *Locked[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Clear()
}

// Stats returns the cumulative hit and miss counts observed by Get.
func (c *Locked[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Stats()
}
