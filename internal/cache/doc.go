// Package cache provides a generic fixed-capacity LRU cache.
//
// The Rejecto master prefetches worker-resident adjacency lists into a
// bounded buffer and evicts the least-recently-used entries (§V of the
// paper). This package implements that buffer; it is also reusable as a
// plain LRU map.
package cache
