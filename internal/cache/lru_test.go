package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicAddGet(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Get(1) // 1 is now more recent than 2
	if evicted := c.Add(3, 30); !evicted {
		t.Fatal("Add over capacity did not report eviction")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently-used entry 1 was evicted")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := NewLRU[int, string](2)
	c.Add(1, "x")
	if evicted := c.Add(1, "y"); evicted {
		t.Fatal("updating an existing key reported eviction")
	}
	if v, _ := c.Get(1); v != "y" {
		t.Fatalf("Get(1) = %q, want y", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := NewLRU[int, int](1)
	var evictedKeys []int
	c.OnEvict(func(k, v int) { evictedKeys = append(evictedKeys, k) })
	c.Add(1, 1)
	c.Add(2, 2)
	c.Remove(2)
	if len(evictedKeys) != 2 || evictedKeys[0] != 1 || evictedKeys[1] != 2 {
		t.Fatalf("evicted keys %v, want [1 2]", evictedKeys)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Peek(1)
	c.Add(3, 3)
	if _, ok := c.Peek(1); ok {
		t.Fatal("Peek promoted entry 1 past entry 2")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("entry 2 evicted despite Peek(1) not promoting")
	}
}

func TestStats(t *testing.T) {
	c := NewLRU[int, int](4)
	c.Add(1, 1)
	c.Get(1)
	c.Get(2)
	c.Get(1)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestKeysOrder(t *testing.T) {
	c := NewLRU[int, int](3)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	c.Get(1)
	keys := c.Keys()
	want := []int{1, 3, 2}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestClear(t *testing.T) {
	c := NewLRU[int, int](3)
	count := 0
	c.OnEvict(func(int, int) { count++ })
	c.Add(1, 1)
	c.Add(2, 2)
	c.Clear()
	if c.Len() != 0 || count != 2 {
		t.Fatalf("after Clear: Len=%d evictions=%d, want 0, 2", c.Len(), count)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRU(0) did not panic")
		}
	}()
	NewLRU[int, int](0)
}

// TestAgainstMapModel cross-checks the LRU against a naive model under a
// random operation sequence.
func TestAgainstMapModel(t *testing.T) {
	const capacity = 8
	c := NewLRU[uint8, int](capacity)
	type model struct {
		vals  map[uint8]int
		order []uint8 // most recent first
	}
	m := model{vals: map[uint8]int{}}
	touch := func(k uint8) {
		for i, existing := range m.order {
			if existing == k {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.order = append([]uint8{k}, m.order...)
	}

	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := uint8(op)
			switch (op >> 8) % 3 {
			case 0: // Add
				c.Add(k, int(op))
				m.vals[k] = int(op)
				touch(k)
				if len(m.order) > capacity {
					last := m.order[len(m.order)-1]
					m.order = m.order[:len(m.order)-1]
					delete(m.vals, last)
				}
			case 1: // Get
				got, ok := c.Get(k)
				want, wantOK := m.vals[k]
				if ok != wantOK || (ok && got != want) {
					return false
				}
				if ok {
					touch(k)
				}
			case 2: // Remove
				removed := c.Remove(k)
				_, present := m.vals[k]
				if removed != present {
					return false
				}
				delete(m.vals, k)
				for i, existing := range m.order {
					if existing == k {
						m.order = append(m.order[:i], m.order[i+1:]...)
						break
					}
				}
			}
			if c.Len() != len(m.vals) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
