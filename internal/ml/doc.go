// Package ml implements a METIS-style multilevel ladder for the extended-KL
// MAAR solver: coarsen the rejection-augmented snapshot by heavy-edge
// matching, solve the MAAR cut on the small coarse graph, then uncoarsen
// level by level with boundary-only KL refinement.
//
// The matching prefers rejection-preserving pairs: two nodes joined by a
// rejection edge are contracted only as a last resort, because a rejection
// internal to a supernode can never again cross a cut — it would vanish
// from every |R⃗⟨Ū,U⟩| count and erase exactly the signal the MAAR
// objective keys on (§IV-B of the paper). Among the eligible candidates
// the matching is the classic greedy heavy-edge rule: each unmatched node
// pairs with the unmatched friend of largest friendship weight, ties
// broken toward the closest individual acceptance estimate (spam-like
// nodes merge with spam-like nodes) and then the lowest node ID. The
// greedy ascending scan attempts every node once, so the result is a
// maximal matching over the eligible pairs. When a scan stops making
// progress the policy relaxes in tiers (see relaxTrigger) so the ladder
// keeps shrinking; contraction stays exact regardless of which tier
// produced a pair, so a looser tier can only coarsen the move set, never
// corrupt a score.
//
// Contraction is exact (see graph.Contract): a coarse partition's cut
// statistics — and therefore its MAAR objective and acceptance — equal the
// fine graph's for the projected partition, so every level of the ladder
// optimizes the true objective, just over a coarser move set.
package ml
