package ml

import (
	"repro/internal/graph"
	"repro/internal/kl"
)

// Solver runs one multilevel V-cycle per call: project the initial
// bipartition up the ladder, solve the coarsest level with full KL, then
// uncoarsen with boundary-only refinement per level and a final full
// polish on level 0. All scratch state — the per-level partitions, the
// boundary mask, the projection tallies, and the kl.Workspace shared by
// every level — is pooled on the Solver, so a warmed-up Solve performs
// zero allocations (TestSolverZeroAllocs). A Solver is owned by one
// goroutine; sweep workers each hold their own and share the Ladder.
type Solver struct {
	// RefinePasses caps the boundary-refinement passes spent at each level
	// on the way down (zero means DefaultRefinePasses). The refinements
	// run greedily (kl.Config.Greedy), so a single pass already reaches
	// single-switch convergence over the boundary; the coarsest solve
	// always runs full KL to convergence, and the sweep's quality gate
	// (core.FindMAARCutFrozen) guards whatever a greedy boundary pass
	// cannot recover.
	RefinePasses int
	// Polish, when set, finishes level 0 with an unmasked full-KL
	// refinement so the returned cut is a local optimum of the flat
	// problem. Costs one or two full passes over the input graph — the
	// sweep skips it per job and instead polishes only the winning cut.
	Polish bool

	ws    kl.Workspace
	parts []graph.Partition // parts[i] is the working partition of level i
	act   []bool            // boundary mask, sized to the largest level
	cntS  []int32           // per-supernode Suspect-member tally (projection)
	cntT  []int32           // per-supernode member count (projection)
}

// DefaultRefinePasses bounds per-level boundary refinement when
// Solver.RefinePasses is zero. One greedy pass is already convergent with
// respect to single switches (see kl.Config.Greedy).
const DefaultRefinePasses = 1

// NewSolver returns an empty Solver; buffers grow on first use, or up
// front via Grow.
func NewSolver() *Solver { return &Solver{} }

// Grow presizes every pooled buffer for lad and for KL gain ranges up to
// ±maxAbs (see kl.FrozenMaxAbsGain), so that every subsequent Solve on
// lad — at any weight configuration within the range — allocates nothing,
// including the first. Growing for a new ladder keeps any buffer that is
// already big enough.
func (s *Solver) Grow(lad *Ladder, maxAbs int64) {
	depth := lad.Depth()
	for len(s.parts) < depth {
		s.parts = append(s.parts, nil)
	}
	for i, lv := range lad.Levels {
		if n := lv.F.NumNodes(); cap(s.parts[i]) < n {
			s.parts[i] = make(graph.Partition, n)
		}
	}
	n0 := lad.Levels[0].F.NumNodes()
	if cap(s.act) < n0 {
		s.act = make([]bool, n0)
	}
	if depth > 1 {
		if n1 := lad.Levels[1].F.NumNodes(); cap(s.cntS) < n1 {
			s.cntS = make([]int32, n1)
			s.cntT = make([]int32, n1)
		}
	}
	s.ws.Grow(n0, 0, maxAbs)
}

// Solve runs the full V-cycle on lad from init and returns the refined
// level-0 result, never worse than init: the majority projection onto the
// coarsest level is lossy (a supernode holding a mixed pair — possible in
// any tier, certain once the desperate matching tier contracts a
// rejection edge — snaps to one region), so when the refined cut ends
// with a worse objective than init itself, Solve returns init unchanged.
// initStats must equal lad.Levels[0].F.Stats(init). cfg.Pinned, if set,
// must be the pinned mask lad was coarsened with — each level swaps in
// its own projected mask. The returned Partition and PassGains alias
// solver memory: valid until the next SolveCoarse/RefineDown/Solve call,
// Clone to retain.
func (s *Solver) Solve(lad *Ladder, init graph.Partition, initStats graph.CutStats, cfg kl.Config) kl.Result {
	res := s.SolveCoarse(lad, init, cfg)
	down := s.RefineDown(lad, res.Partition, res.Stats, cfg)
	out := sumResult(res, down)
	initObj := int64(initStats.CrossFriendships)*cfg.FriendWeight -
		int64(initStats.RejIntoSuspect)*cfg.RejectWeight
	if out.Objective > initObj {
		p0 := s.parts[0][:len(init)]
		copy(p0, init)
		out.Partition = p0
		out.Stats = initStats
		out.Objective = initObj
	}
	return out
}

// SolveCoarse runs the upward half of the V-cycle: project init to the
// coarsest level (majority region per supernode, ties toward Legit —
// deterministic, and exact for any partition that keeps supernodes atomic)
// and solve there with full KL. The returned Result describes the coarsest
// level — Partition has lad.CoarsestNodes() entries — but its edge
// statistics and objective are exact for the fine graph too, because
// contraction is (see graph.Contract). A MAAR sweep exploits exactly that:
// it scores every (k, init) job on its cheap coarse solve and pays for
// RefineDown only on the winner.
func (s *Solver) SolveCoarse(lad *Ladder, init graph.Partition, cfg kl.Config) kl.Result {
	s.Grow(lad, kl.FrozenMaxAbsGain(lad.Levels[0].F, cfg))
	depth := lad.Depth()
	p0 := s.parts[0][:lad.Levels[0].F.NumNodes()]
	copy(p0, init)
	s.parts[0] = p0
	for i := 1; i < depth; i++ {
		s.projectUp(lad.Levels[i], s.parts[i-1], i)
	}
	top := depth - 1
	lvCfg := cfg
	lvCfg.Pinned = lad.Levels[top].Pinned
	tp := s.parts[top]
	res := kl.PartitionFrozenFromStats(lad.Levels[top].F, tp, lad.Levels[top].F.Stats(tp), lvCfg, &s.ws)
	copy(tp, res.Partition)
	res.Partition = tp
	return res
}

// RefineDown runs the downward half of the V-cycle: starting from a
// coarsest-level partition (len lad.CoarsestNodes()) with exact statistics
// coarseStats, project one level at a time, carry the edge statistics,
// recount the sizes, and greedily refine the boundary under the pass cap.
// The statistics never need a full recount on the way down: contraction is
// exact, so a level's edge statistics equal the coarser result's, and only
// the two region sizes change with the projection.
func (s *Solver) RefineDown(lad *Ladder, coarse graph.Partition, coarseStats graph.CutStats, cfg kl.Config) kl.Result {
	s.Grow(lad, kl.FrozenMaxAbsGain(lad.Levels[0].F, cfg))
	depth := lad.Depth()
	top := depth - 1
	tp := s.parts[top][:lad.Levels[top].F.NumNodes()]
	if &tp[0] != &coarse[0] {
		copy(tp, coarse)
	}
	res := kl.Result{
		Partition: tp,
		Stats:     coarseStats,
		Objective: int64(coarseStats.CrossFriendships)*cfg.FriendWeight -
			int64(coarseStats.RejIntoSuspect)*cfg.RejectWeight,
	}

	refineCfg := cfg
	refineCfg.Greedy = true
	if refineCfg.MaxPasses = s.RefinePasses; refineCfg.MaxPasses <= 0 {
		refineCfg.MaxPasses = DefaultRefinePasses
	}
	for i := top - 1; i >= 0; i-- {
		lv := lad.Levels[i]
		stats := s.projectDown(lad.Levels[i+1].CoarseID, s.parts[i+1], s.parts[i], res.Stats)
		active := s.boundary(lv.F, s.parts[i])
		refineCfg.Pinned = lv.Pinned
		r := kl.RefineFrozen(lv.F, s.parts[i], stats, active, refineCfg, &s.ws)
		copy(s.parts[i], r.Partition)
		res = sumResult(res, r)
		if i == 0 && s.Polish {
			polishCfg := cfg
			polishCfg.Pinned = lv.Pinned
			r = kl.RefineFrozen(lv.F, s.parts[0], r.Stats, nil, polishCfg, &s.ws)
			copy(s.parts[0], r.Partition)
			res = sumResult(res, r)
		}
	}
	res.Partition = s.parts[0]
	return res
}

// sumResult folds a refinement step into the aggregate: final objective,
// statistics, partition and pass gains come from the latest step, while the
// pass/switch/rollback counters accumulate across the whole V-cycle (they
// feed obs.EvSolveDone, where total work is the interesting number).
func sumResult(agg, step kl.Result) kl.Result {
	step.Passes += agg.Passes
	step.Switches += agg.Switches
	step.Rollbacks += agg.Rollbacks
	return step
}

// projectUp fills s.parts[i] with the majority-projection of fine (the
// partition of level i-1) through lv.CoarseID.
func (s *Solver) projectUp(lv Level, fine graph.Partition, i int) {
	nc := lv.F.NumNodes()
	cntS, cntT := s.cntS[:nc], s.cntT[:nc]
	for c := range cntS {
		cntS[c], cntT[c] = 0, 0
	}
	for u, c := range lv.CoarseID {
		cntT[c]++
		if fine[u] == graph.Suspect {
			cntS[c]++
		}
	}
	p := s.parts[i][:nc]
	for c := range p {
		if 2*cntS[c] > cntT[c] {
			p[c] = graph.Suspect
		} else {
			p[c] = graph.Legit
		}
	}
	s.parts[i] = p
}

// projectDown expands the coarse partition onto the finer level and
// returns the finer statistics: edge fields carried from the coarse result
// (contraction exactness), region sizes recounted over the fine nodes.
func (s *Solver) projectDown(coarseID []graph.NodeID, coarse, fine graph.Partition, coarseStats graph.CutStats) graph.CutStats {
	stats := coarseStats
	stats.SuspectSize, stats.LegitSize = 0, 0
	for u, c := range coarseID {
		r := coarse[c]
		fine[u] = r
		if r == graph.Suspect {
			stats.SuspectSize++
		} else {
			stats.LegitSize++
		}
	}
	return stats
}

// boundary marks the nodes worth refining after a projection: the
// endpoints of cross-cut friendships, i.e. the projected cut's frontier.
// Rejection-incident nodes need no special handling in the common case —
// the strict and relaxed matching tiers never contract a rejection edge,
// so the coarsest solve already placed those nodes at supernode
// granularity, and only the friendship frontier gains new freedom as
// supernodes split. Pairs the desperate tier merged across a rejection
// edge sit outside the mask when they split; whatever a boundary pass
// then misses is the quality gate's job (core.FindMAARCutFrozen), not the
// refiner's. One branch-light O(V+E) sweep (no bucket traffic), written
// into the pooled mask; each cross edge marks u when scanned from either
// endpoint, so both sides end up active.
func (s *Solver) boundary(f *graph.Frozen, p graph.Partition) []bool {
	n := f.NumNodes()
	act := s.act[:n]
	for u := 0; u < n; u++ {
		pu := p[u]
		a := false
		for _, v := range f.Friends(graph.NodeID(u)) {
			if p[v] != pu {
				a = true
				break
			}
		}
		act[u] = a
	}
	return act
}
