package ml

import (
	"repro/internal/graph"
)

// Options bounds the coarsening schedule. The zero value uses defaults.
type Options struct {
	// CoarsestNodes stops coarsening once a level has at most this many
	// nodes (default DefaultCoarsestNodes). The coarsest solve is a full
	// KL sweep over this many supernodes.
	CoarsestNodes int
	// MaxLevels caps the ladder depth including level 0 (default
	// DefaultMaxLevels) — a backstop for graphs that keep shrinking by
	// tiny factors.
	MaxLevels int
}

// Coarsening defaults: a sub-hundred-node coarsest graph makes the coarse
// solve's cost invisible, and matching halves (at best) the node count per
// level, so 24 levels cover graphs past 10⁸ nodes.
const (
	DefaultCoarsestNodes = 96
	DefaultMaxLevels     = 24
	// minShrink is the per-level progress floor: if a matching leaves more
	// than this fraction of the nodes as singletons the ladder stops —
	// further levels would add refinement cost without shrinking the work.
	minShrink = 0.98
)

func (o Options) coarsestNodes() int {
	if o.CoarsestNodes <= 0 {
		return DefaultCoarsestNodes
	}
	return o.CoarsestNodes
}

func (o Options) maxLevels() int {
	if o.MaxLevels <= 0 {
		return DefaultMaxLevels
	}
	return o.MaxLevels
}

// Level is one rung of the ladder. Level 0 is the input snapshot; each
// deeper level is the contraction of the one before it.
type Level struct {
	// F is the (weighted, for levels ≥ 1) CSR snapshot of this level.
	F *graph.Frozen
	// CoarseID maps every node of the previous (finer) level to its
	// supernode in F. nil on level 0.
	CoarseID []graph.NodeID
	// Pinned marks supernodes containing a pinned fine node. Pinned nodes
	// are never matched, so every pinned supernode is a singleton and the
	// pin constraint projects exactly. nil when nothing is pinned.
	Pinned []bool
}

// Ladder is the immutable result of Coarsen: the per-level snapshots and
// vertex maps. It is built once per residual and shared read-only by every
// sweep worker; per-job state lives in Solver.
type Ladder struct {
	Levels []Level
}

// Depth reports the number of levels including level 0.
func (l *Ladder) Depth() int { return len(l.Levels) }

// CoarsestNodes reports the node count of the deepest level.
func (l *Ladder) CoarsestNodes() int { return l.Levels[len(l.Levels)-1].F.NumNodes() }

// ProjectToCoarsest returns the majority-projection of a level-0 partition
// onto the coarsest level (ties toward Legit, matching Solver.projectUp).
// A sweep calls it once per shared initial partition and then starts every
// (k, init) job directly from the small coarse copy, instead of paying the
// upward walk per job.
func (l *Ladder) ProjectToCoarsest(init graph.Partition) graph.Partition {
	if len(init) != l.Levels[0].F.NumNodes() {
		panic("ml: ProjectToCoarsest partition length mismatch")
	}
	fine := init
	for i := 1; i < len(l.Levels); i++ {
		lv := l.Levels[i]
		nc := lv.F.NumNodes()
		cntS := make([]int32, nc)
		cntT := make([]int32, nc)
		for u, c := range lv.CoarseID {
			cntT[c]++
			if fine[u] == graph.Suspect {
				cntS[c]++
			}
		}
		p := make(graph.Partition, nc)
		for c := range p {
			if 2*cntS[c] > cntT[c] {
				p[c] = graph.Suspect
			}
		}
		fine = p
	}
	if len(l.Levels) == 1 {
		fine = append(graph.Partition(nil), init...)
	}
	return fine
}

// Coarsen builds the multilevel ladder for f. pinned marks nodes that must
// stay in their initial region (seeds); it may be nil. Coarsening stops at
// opt's bounds or as soon as a matching stops making progress, so the
// ladder always has at least one level (the input itself).
func Coarsen(f *graph.Frozen, pinned []bool, opt Options) *Ladder {
	if pinned != nil && len(pinned) != f.NumNodes() {
		panic("ml: pinned length mismatch")
	}
	lad := &Ladder{Levels: []Level{{F: f, Pinned: pinned}}}
	coarsest, maxLevels := opt.coarsestNodes(), opt.maxLevels()
	for len(lad.Levels) < maxLevels {
		cur := lad.Levels[len(lad.Levels)-1]
		n := cur.F.NumNodes()
		if n <= coarsest {
			break
		}
		coarseID, numCoarse := match(cur.F, cur.Pinned)
		if float64(numCoarse) > minShrink*float64(n) {
			break
		}
		next := Level{
			F:        cur.F.Contract(coarseID, numCoarse),
			CoarseID: coarseID,
		}
		if cur.Pinned != nil {
			next.Pinned = make([]bool, numCoarse)
			for u, c := range coarseID {
				if cur.Pinned[u] {
					next.Pinned[c] = true
				}
			}
		}
		lad.Levels = append(lad.Levels, next)
	}
	return lad
}

// Acceptance-similarity bounds of the matching. Mixing a spam-like node
// into a legitimate supernode (or vice versa) erases the distinction KL
// needs to place the pair's members on opposite sides of the cut, and the
// damage compounds level over level — a few hundred mixed supernodes per
// level are enough to bury a planted cut by level six. The acceptance
// estimate is the per-node spam signal the paper's objective is built
// from, so the matching keys on it: candidates are ranked by quantized
// acceptance similarity first and friendship weight second, and a pair
// further apart than maxAccDiff never matches at all.
const (
	maxAccDiff = 0.25
	accQuantum = 0.05
	// relaxTrigger: when a pass would shrink the level by less than this
	// factor, the next looser tier re-scans the leftovers. Tier two
	// (relaxed) drops the parity and similarity requirements but still
	// preserves rejection edges. Tier three (desperate) additionally
	// permits contracting rejection-connected pairs — preferring the
	// lightest such edge, so the least spam signal is pooled away — and
	// falls back to matching across rejection adjacency when the friend
	// graph runs dry. Deep levels concentrate incoming rejections onto
	// nearly every supernode, so without the looser tiers the ladder
	// stalls hundreds of nodes above CoarsestNodes and the "coarsest"
	// solves stop being cheap. Contraction is exact in every tier; cut
	// quality stays protected by the refinement ladder and the sweep's
	// flat gate, not by the matching.
	relaxTrigger = 0.85
)

// scanMode selects the matching tier: each looser tier re-scans only the
// nodes the previous tiers left unmatched.
type scanMode int

const (
	scanStrict scanMode = iota
	scanRelaxed
	scanDesperate
)

// match computes one rejection-preserving heavy-edge matching over f and
// returns the supernode assignment: matched pairs share a coarse ID,
// everything else stays a singleton. Coarse IDs are assigned in ascending
// order of each group's lowest fine ID, so the assignment — like the greedy
// scan itself — is deterministic in f alone.
func match(f *graph.Frozen, pinned []bool) (coarseID []graph.NodeID, numCoarse int) {
	n := f.NumNodes()
	weighted := f.Weighted()

	// Individual acceptance estimates for the similarity rank, computed
	// once: Acceptance walks the adjacency per call, so caching it keeps
	// the candidate scan O(deg) instead of O(deg²). rejTarget marks nodes
	// with any incoming rejection — the paper's primary spam signal. A
	// target never matches a non-target: acceptance alone cannot separate
	// a lightly-rejected spammer (f/(f+1) ≈ 1) from a clean user, and one
	// such merge per level compounds into a buried cut. Pooling preserves
	// the marker, so the rule keeps protecting deeper levels.
	acc := make([]float64, n)
	rejTarget := make([]bool, n)
	for u := range acc {
		acc[u] = f.Acceptance(graph.NodeID(u))
		rejTarget[u] = f.InRejections(graph.NodeID(u)) > 0
	}

	mate := make([]graph.NodeID, n)
	for u := range mate {
		mate[u] = -1
	}
	// scan is one greedy ascending matching pass over the unmatched nodes.
	// Strict mode enforces rejection-target parity and the acceptance cap
	// and ranks candidates by quantized similarity before weight; relaxed
	// mode drops both and ranks by weight alone (plain heavy-edge), with
	// similarity only as a tiebreak; both preserve rejection edges.
	// Desperate mode permits rejection-connected pairs, ranking friends by
	// weight with the lightest attached rejection signal as the first
	// tiebreak (erase as little as possible), and — if a node has no
	// unmatched friend at all — matches across the rejection adjacency
	// itself, lightest edge first. Pins hold in every mode.
	scan := func(mode scanMode) {
		for u := 0; u < n; u++ {
			uid := graph.NodeID(u)
			if mate[u] >= 0 || pinned != nil && pinned[u] {
				continue
			}
			friends := f.Friends(uid)
			var weights []int32
			if weighted {
				weights = f.FriendWeights(uid)
			}
			best := graph.NodeID(-1)
			bestQ := -1
			var bestW, bestRej int64
			for i, v := range friends {
				if mate[v] >= 0 || pinned != nil && pinned[v] {
					continue
				}
				if mode == scanStrict && rejTarget[v] != rejTarget[u] {
					continue
				}
				diff := acc[u] - acc[v]
				if diff < 0 {
					diff = -diff
				}
				if mode == scanStrict && diff > maxAccDiff {
					continue
				}
				q := int(diff / accQuantum)
				w := int64(1)
				if weighted {
					w = int64(weights[i])
				}
				rej := int64(0)
				if mode == scanDesperate {
					rej = f.RejectionWeight(uid, v) + f.RejectionWeight(v, uid)
				}
				if best >= 0 {
					worse := false
					switch mode {
					case scanStrict:
						worse = q > bestQ || q == bestQ && (w < bestW || w == bestW && v > best)
					case scanRelaxed:
						worse = w < bestW || w == bestW && (q > bestQ || q == bestQ && v > best)
					case scanDesperate:
						worse = rej > bestRej || rej == bestRej &&
							(w < bestW || w == bestW && (q > bestQ || q == bestQ && v > best))
					}
					if worse {
						continue
					}
				}
				// Rejection-preserving rule, checked last: it is the costly
				// probe, so only candidates that would win run it.
				if mode != scanDesperate && (f.HasRejection(uid, v) || f.HasRejection(v, uid)) {
					continue
				}
				best, bestQ, bestW, bestRej = v, q, w, rej
			}
			if best < 0 && mode == scanDesperate {
				// No unmatched friend: pair across the rejection adjacency,
				// lightest edge first so the least signal is pooled away.
				// Out- and in-neighbours are both scanned — the union is what
				// keeps rejection-only components shrinking.
				consider := func(v graph.NodeID, w int64) {
					if v == uid || mate[v] >= 0 || pinned != nil && pinned[v] {
						return
					}
					if best >= 0 && (w > bestRej || w == bestRej && v >= best) {
						return
					}
					best, bestRej = v, w
				}
				var ow, iw []int32
				if weighted {
					ow, iw = f.RejectedWeights(uid), f.RejecterWeights(uid)
				}
				for i, v := range f.Rejected(uid) {
					w := int64(1)
					if ow != nil {
						w = int64(ow[i])
					}
					consider(v, w)
				}
				for i, v := range f.Rejecters(uid) {
					w := int64(1)
					if iw != nil {
						w = int64(iw[i])
					}
					consider(v, w)
				}
			}
			if best >= 0 {
				mate[u] = best
				mate[best] = uid
			}
		}
	}
	unmatched := func() int {
		m := 0
		for u := range mate {
			if mate[u] < 0 {
				m++
			}
		}
		return m
	}
	scan(scanStrict)
	if float64(n-(n-unmatched())/2) > relaxTrigger*float64(n) {
		scan(scanRelaxed)
		if float64(n-(n-unmatched())/2) > relaxTrigger*float64(n) {
			scan(scanDesperate)
		}
	}

	coarseID = make([]graph.NodeID, n)
	for u := range coarseID {
		coarseID[u] = -1
	}
	for u := 0; u < n; u++ {
		if coarseID[u] >= 0 {
			continue
		}
		coarseID[u] = graph.NodeID(numCoarse)
		if m := mate[u]; m >= 0 {
			coarseID[m] = graph.NodeID(numCoarse)
		}
		numCoarse++
	}
	return coarseID, numCoarse
}
