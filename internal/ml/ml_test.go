package ml

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/kl"
)

// randomWorld builds a random rejection-augmented graph.
func randomWorld(r *rand.Rand, n, friendships, rejections int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < friendships; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	for i := 0; i < rejections; i++ {
		u, v := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if u != v {
			g.AddRejection(u, v)
		}
	}
	return g
}

func randomPartition(r *rand.Rand, n int) graph.Partition {
	p := make(graph.Partition, n)
	for i := range p {
		if r.IntN(2) == 1 {
			p[i] = graph.Suspect
		}
	}
	return p
}

// TestMatchIsValidMaximalMatching: the supernode assignment must encode a
// matching (groups of size ≤ 2), matched pairs must be adjacent (friends,
// or joined only by a rejection edge when the desperate tier ran) with no
// pinned member, and the matching must be maximal over the STRICT
// eligibility rule — the tiers only ever add pairs on top of the strict
// pass, so no two strictly-eligible unmatched neighbours may remain no
// matter which tiers ran.
func TestMatchIsValidMaximalMatching(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 61))
		n := 2 + r.IntN(60)
		g := randomWorld(r, n, r.IntN(5*n), r.IntN(3*n))
		fz := g.Freeze()
		var pinned []bool
		if r.IntN(2) == 0 {
			pinned = make([]bool, n)
			for i := range pinned {
				pinned[i] = r.IntN(6) == 0
			}
		}
		coarseID, numCoarse := match(fz, pinned)

		members := make([][]graph.NodeID, numCoarse)
		for u, c := range coarseID {
			if c < 0 || int(c) >= numCoarse {
				t.Errorf("seed %d: coarseID %d out of range", seed, c)
				return false
			}
			members[c] = append(members[c], graph.NodeID(u))
		}
		matched := make([]bool, n)
		for c, m := range members {
			switch len(m) {
			case 1:
			case 2:
				u, v := m[0], m[1]
				matched[u], matched[v] = true, true
				if !fz.HasFriendship(u, v) &&
					!fz.HasRejection(u, v) && !fz.HasRejection(v, u) {
					t.Errorf("seed %d: pair %d–%d not adjacent", seed, u, v)
					return false
				}
				if pinned != nil && (pinned[u] || pinned[v]) {
					t.Errorf("seed %d: pinned node matched in pair %d–%d", seed, u, v)
					return false
				}
			default:
				t.Errorf("seed %d: supernode %d has %d members", seed, c, len(m))
				return false
			}
		}
		// Maximality: every unmatched–unmatched friend pair must be blocked
		// by a pin, a rejection edge, or the acceptance-similarity bound.
		ok := true
		fz.ForEachFriendship(func(u, v graph.NodeID) {
			if matched[u] || matched[v] {
				return
			}
			if pinned != nil && (pinned[u] || pinned[v]) {
				return
			}
			if fz.HasRejection(u, v) || fz.HasRejection(v, u) {
				return
			}
			if d := fz.Acceptance(u) - fz.Acceptance(v); d > maxAccDiff || -d > maxAccDiff {
				return
			}
			if (fz.InRejections(u) > 0) != (fz.InRejections(v) > 0) {
				return
			}
			t.Errorf("seed %d: matching not maximal, %d–%d both free", seed, u, v)
			ok = false
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLadderRoundTrip: projecting a supernode-atomic partition up the
// ladder and back down must reproduce it exactly — the vertex maps
// round-trip. Also pins the ladder's structural invariants: composed maps
// stay in range and pinned supernodes stay singletons.
func TestLadderRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 62))
		n := 2 + r.IntN(200)
		g := randomWorld(r, n, r.IntN(6*n), r.IntN(2*n))
		fz := g.Freeze()
		lad := Coarsen(fz, nil, Options{CoarsestNodes: 4})

		// A random coarsest partition, expanded down: by construction it
		// keeps every supernode atomic at every level.
		s := NewSolver()
		s.Grow(lad, 1)
		depth := lad.Depth()
		top := randomPartition(r, lad.CoarsestNodes())
		parts := make([]graph.Partition, depth)
		parts[depth-1] = top
		for i := depth - 1; i > 0; i-- {
			fine := make(graph.Partition, lad.Levels[i-1].F.NumNodes())
			for u, c := range lad.Levels[i].CoarseID {
				fine[u] = parts[i][c]
			}
			parts[i-1] = fine
		}
		// Round trip: majority projection of each level's expansion must
		// reproduce the coarser partition exactly (supernodes are atomic,
		// so the majority is unanimous).
		for i := 1; i < depth; i++ {
			s.projectUp(lad.Levels[i], parts[i-1], i)
			got := s.parts[i][:lad.Levels[i].F.NumNodes()]
			for c := range got {
				if got[c] != parts[i][c] {
					t.Errorf("seed %d: level %d round-trip differs at %d", seed, i, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveStatsExactAndImproves: the V-cycle's incrementally carried
// statistics must equal a from-scratch walk of the returned partition, the
// objective must match its stats, never regress from init, and pinned
// nodes must keep their region.
func TestSolveStatsExactAndImproves(t *testing.T) {
	s := NewSolver()
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 63))
		n := 2 + r.IntN(300)
		g := randomWorld(r, n, r.IntN(6*n), r.IntN(3*n))
		fz := g.Freeze()
		cfg := kl.Config{FriendWeight: 64, RejectWeight: int64(r.IntN(500))}
		var pinned []bool
		if r.IntN(2) == 0 {
			pinned = make([]bool, n)
			for i := range pinned {
				pinned[i] = r.IntN(8) == 0
			}
			cfg.Pinned = pinned
		}
		lad := Coarsen(fz, pinned, Options{CoarsestNodes: 16})
		init := randomPartition(r, n)
		if pinned != nil {
			// Seeds pin suspects in detection; any fixed convention works
			// for the invariant being tested.
			for u := range init {
				if pinned[u] {
					init[u] = graph.Suspect
				}
			}
		}
		initStats := fz.Stats(init)
		res := s.Solve(lad, init, initStats, cfg)

		if res.Stats != fz.Stats(res.Partition) {
			t.Errorf("seed %d: carried stats %+v != walk %+v", seed, res.Stats, fz.Stats(res.Partition))
			return false
		}
		wantObj := int64(res.Stats.CrossFriendships)*cfg.FriendWeight -
			int64(res.Stats.RejIntoSuspect)*cfg.RejectWeight
		if res.Objective != wantObj {
			t.Errorf("seed %d: objective %d != stats objective %d", seed, res.Objective, wantObj)
			return false
		}
		initObj := int64(initStats.CrossFriendships)*cfg.FriendWeight -
			int64(initStats.RejIntoSuspect)*cfg.RejectWeight
		if res.Objective > initObj {
			t.Errorf("seed %d: objective regressed %d -> %d", seed, initObj, res.Objective)
			return false
		}
		for u := range init {
			if pinned != nil && pinned[u] && res.Partition[u] != init[u] {
				t.Errorf("seed %d: pinned node %d switched", seed, u)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveMatchesFlatOnSmallLadder: a ladder that never coarsens (the
// input is already at or below CoarsestNodes) must reproduce the flat
// frozen solver byte for byte.
func TestSolveMatchesFlatOnSmallLadder(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 64))
	g := randomWorld(r, 50, 150, 80)
	fz := g.Freeze()
	lad := Coarsen(fz, nil, Options{CoarsestNodes: 64})
	if lad.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", lad.Depth())
	}
	init := randomPartition(r, 50)
	cfg := kl.Config{FriendWeight: 64, RejectWeight: 96}
	want := kl.PartitionFrozen(fz, init, cfg, nil)
	got := NewSolver().Solve(lad, init, fz.Stats(init), cfg)
	if got.Objective != want.Objective || got.Stats != want.Stats || got.Passes != want.Passes {
		t.Fatalf("single-level solve diverged: got %+v, want %+v", got.Stats, want.Stats)
	}
	for i := range want.Partition {
		if got.Partition[i] != want.Partition[i] {
			t.Fatalf("partitions differ at %d", i)
		}
	}
}

// TestSolverZeroAllocs: after one warm-up V-cycle, Solve must not allocate
// — the pooled-workspace guarantee the ladder's speedup rests on, across
// the k-grid's weight spread just like the sweep runs it.
func TestSolverZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 65))
	g := randomWorld(r, 2000, 8000, 3000)
	fz := g.Freeze()
	lad := Coarsen(fz, nil, Options{})
	init := randomPartition(r, 2000)
	initStats := fz.Stats(init)
	weights := []int64{2, 64, 2048}

	s := NewSolver()
	var maxAbs int64
	for _, wR := range weights {
		if a := kl.FrozenMaxAbsGain(fz, kl.Config{FriendWeight: 64, RejectWeight: wR}); a > maxAbs {
			maxAbs = a
		}
	}
	s.Grow(lad, maxAbs)
	s.Solve(lad, init, initStats, kl.Config{FriendWeight: 64, RejectWeight: weights[0]}) // warm-up

	allocs := testing.AllocsPerRun(10, func() {
		for _, wR := range weights {
			s.Solve(lad, init, initStats, kl.Config{FriendWeight: 64, RejectWeight: wR})
		}
	})
	if allocs != 0 {
		t.Fatalf("Solve allocated %.1f objects per run, want 0", allocs)
	}
}

// TestCoarsenShrinks: on a friendship-rich graph the ladder must actually
// shrink toward the coarsest bound within the level cap.
func TestCoarsenShrinks(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 66))
	g := randomWorld(r, 4000, 20000, 500)
	lad := Coarsen(g.Freeze(), nil, Options{})
	if lad.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3", lad.Depth())
	}
	for i := 1; i < lad.Depth(); i++ {
		prev, cur := lad.Levels[i-1].F.NumNodes(), lad.Levels[i].F.NumNodes()
		if cur >= prev {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev, cur)
		}
		if !lad.Levels[i].F.Weighted() {
			t.Fatalf("level %d not weighted", i)
		}
		if len(lad.Levels[i].CoarseID) != prev {
			t.Fatalf("level %d vertex map length %d, want %d", i, len(lad.Levels[i].CoarseID), prev)
		}
	}
}
