// Package bucketlist implements the gain bucket structure used by the
// extended Kernighan–Lin optimization (§IV-C of the paper, following
// Fiduccia & Mattheyses 1982).
//
// A bucket list indexes every free (unswitched, unpinned) node by the gain
// its switch would bring to the partition objective, and answers
// "which free node has the maximum gain?" in amortized constant time. The
// paper's Algorithm 1 calls this structure nodeGainList.
//
// Two implementations are provided behind the List interface:
//
//   - Dense: the classic FM array of doubly-linked lists with a moving
//     max-gain pointer. O(1) operations, memory proportional to the gain
//     range. Used when the range is bounded (it always is here: gains are
//     fixed-point integers bounded by max weighted degree).
//   - Sparse: a map from gain to bucket plus a lazy max-heap of occupied
//     gains. O(log B) operations where B is the number of distinct gains,
//     memory proportional to occupancy. Used for extreme gain ranges.
//
// New picks between them based on the declared gain range. The two
// implementations are cross-checked by property tests.
package bucketlist

// List indexes nodes by integer gain and yields max-gain nodes.
//
// Node IDs must be in [0, n) where n is the capacity the list was built
// with, and each node may be present at most once.
type List interface {
	// Add inserts node with the given gain. It panics if node is already
	// present or out of range.
	Add(node int, gain int64)
	// Update changes the gain of a present node. It panics if absent.
	Update(node int, gain int64)
	// Remove deletes node if present, reporting whether it was.
	Remove(node int) bool
	// Contains reports whether node is present.
	Contains(node int) bool
	// Gain returns the current gain of a present node. It panics if absent.
	Gain(node int) int64
	// PopMax removes and returns a node with the maximum gain.
	// ok is false when the list is empty. Ties break toward the node most
	// recently inserted into its bucket (LIFO), the classic FM policy.
	PopMax() (node int, gain int64, ok bool)
	// Len reports the number of present nodes.
	Len() int
}

// New returns a List for nodes in [0, n) whose gains stay within
// [minGain, maxGain]. It selects the dense implementation when the gain
// range is affordable (at most denseRangeLimit buckets) and the sparse one
// otherwise.
func New(n int, minGain, maxGain int64) List {
	const denseRangeLimit = 1 << 22 // 4M buckets ≈ 32 MB of list heads
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	if r := maxGain - minGain + 1; r <= denseRangeLimit {
		return NewDense(n, minGain, maxGain)
	}
	return NewSparse(n)
}
