package bucketlist

// List indexes nodes by integer gain and yields max-gain nodes.
//
// Node IDs must be in [0, n) where n is the capacity the list was built
// with, and each node may be present at most once.
type List interface {
	// Add inserts node with the given gain. It panics if node is already
	// present or out of range.
	Add(node int, gain int64)
	// Update changes the gain of a present node. It panics if absent.
	Update(node int, gain int64)
	// Remove deletes node if present, reporting whether it was.
	Remove(node int) bool
	// Contains reports whether node is present.
	Contains(node int) bool
	// Gain returns the current gain of a present node. It panics if absent.
	Gain(node int) int64
	// AdjustIfPresent adds delta to node's gain when node is present; an
	// absent node or a zero delta is a no-op. It is exactly equivalent to
	//
	//	if l.Contains(node) { l.Update(node, l.Gain(node)+delta) }
	//
	// fused into one call, since that triple is the inner loop of KL's
	// neighbour re-gain updates.
	AdjustIfPresent(node int, delta int64)
	// PopMax removes and returns a node with the maximum gain.
	// ok is false when the list is empty. Ties break toward the node most
	// recently inserted into its bucket (LIFO), the classic FM policy.
	PopMax() (node int, gain int64, ok bool)
	// Len reports the number of present nodes.
	Len() int
	// Reset empties the list and rebinds it to the given gain bounds,
	// reusing its memory: after Reset the list behaves exactly like a
	// freshly constructed one for the same node capacity. It allocates only
	// when a dense list's bucket range grows beyond any range it has held
	// before. Reset lets a KL workspace reuse one list across passes and
	// jobs instead of reallocating O(n + gain-range) each pass.
	Reset(minGain, maxGain int64)
}

// denseRangeLimit bounds the bucket count of the dense implementation:
// 4M buckets ≈ 16 MB of list heads.
const denseRangeLimit = 1 << 22

// PrefersDense reports whether New selects the dense implementation for
// the given gain bounds. Exported so that engines carrying their own
// specialized dense structure (package kl's workspace) can make the same
// choice New would, keeping tie-break behavior — and therefore results —
// identical across implementations.
func PrefersDense(minGain, maxGain int64) bool {
	return maxGain-minGain+1 <= denseRangeLimit
}

// New returns a List for nodes in [0, n) whose gains stay within
// [minGain, maxGain]. It selects the dense implementation when the gain
// range is affordable (at most denseRangeLimit buckets); otherwise the
// scanning one when the node count is small (at most scanNodeLimit), and
// the sparse one past that.
func New(n int, minGain, maxGain int64) List {
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	if PrefersDense(minGain, maxGain) {
		return NewDense(n, minGain, maxGain)
	}
	if n <= scanNodeLimit {
		return NewScan(n)
	}
	return NewSparse(n)
}

// Renew returns a list for n nodes and the given gain bounds, reusing l's
// memory via Reset when l (possibly nil) has the same node capacity and the
// implementation New would select for the bounds. Callers holding a
// workspace use it instead of New to make steady-state passes allocation
// free.
func Renew(l List, n int, minGain, maxGain int64) List {
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	dense := PrefersDense(minGain, maxGain)
	switch impl := l.(type) {
	case *Dense:
		if dense && len(impl.next) == n {
			impl.Reset(minGain, maxGain)
			return impl
		}
	case *Scan:
		if !dense && n <= scanNodeLimit && len(impl.gain) == n {
			impl.Reset(minGain, maxGain)
			return impl
		}
	case *Sparse:
		if !dense && n > scanNodeLimit && len(impl.in) == n {
			impl.Reset(minGain, maxGain)
			return impl
		}
	}
	return New(n, minGain, maxGain)
}
