// Package bucketlist implements the gain bucket structure used by the
// extended Kernighan–Lin optimization (§IV-C of the paper, following
// Fiduccia & Mattheyses 1982).
//
// A bucket list indexes every free (unswitched, unpinned) node by the gain
// its switch would bring to the partition objective, and answers
// "which free node has the maximum gain?" in amortized constant time. The
// paper's Algorithm 1 calls this structure nodeGainList.
//
// Three implementations are provided behind the List interface:
//
//   - Dense: the classic FM array of doubly-linked lists with a moving
//     max-gain pointer. O(1) operations, memory proportional to the gain
//     range. Used when the range is bounded (on unweighted snapshots it
//     always is: gains are fixed-point integers bounded by max weighted
//     degree).
//   - Scan: flat per-node arrays with a bitmap PopMax scan. O(1)
//     mutations, O(present) PopMax, no memory tied to the gain range.
//     Used when the range is too wide for Dense but the node count is
//     small — the shape weighted coarse graphs from the multilevel ladder
//     produce, where pooled edge multiplicities blow up the gain range
//     while the node count shrinks toward the coarsest bound.
//   - Sparse: a map from gain to bucket plus a lazy max-heap of occupied
//     gains. O(log B) operations where B is the number of distinct gains,
//     memory proportional to occupancy. Used for extreme gain ranges on
//     node counts too large for Scan.
//
// New picks between them based on the declared gain range and node count.
// The implementations are cross-checked by property tests: identical
// insertion, update, and LIFO max-pop order, so the KL engines' results
// do not depend on which one serves a solve.
package bucketlist
