package bucketlist

import (
	"fmt"
	"math/bits"
)

// Scan is a bucket list for the small-n/wide-range corner: gain ranges too
// wide for Dense on graphs with only a few thousand nodes. The multilevel
// ladder manufactures exactly this shape — contraction pools fine-edge
// multiplicities into supernode weights, so a few hundred coarse nodes can
// carry gains in the hundreds of millions — and there the constant factors
// of Sparse's map-and-heap bookkeeping dominate whole KL solves.
//
// Scan stores per-node state in three flat arrays and answers PopMax by
// scanning the membership bitmap, word at a time, comparing the present
// nodes' (gain, stamp) pairs. Everything but PopMax is O(1) with no
// hashing; PopMax is O(n/64 + present). The stamp is a global insertion
// counter: each (re)insertion of a node into its conceptual bucket bumps
// it, so "maximum gain, ties to the highest stamp" reproduces exactly the
// LIFO-within-bucket pop order of Dense and Sparse — the property the
// cross-implementation tests pin, and what keeps KL results identical no
// matter which structure New selects.
type Scan struct {
	gain  []int64
	stamp []uint64 // last (re)insertion tick; higher = more recent
	in    []uint64 // membership bitmap
	size  int
	tick  uint64
}

var _ List = (*Scan)(nil)

// scanNodeLimit bounds the node count New serves with Scan when the gain
// range is too wide for Dense: past a few thousand nodes the O(present)
// PopMax scans lose to Sparse's O(log B) heap.
const scanNodeLimit = 4096

// NewScan returns a Scan list for nodes in [0, n).
func NewScan(n int) *Scan {
	return &Scan{
		gain:  make([]int64, n),
		stamp: make([]uint64, n),
		in:    make([]uint64, (n+63)/64),
	}
}

func (s *Scan) present(node int) bool {
	return s.in[node>>6]>>(uint(node)&63)&1 != 0
}

// Add implements List.
func (s *Scan) Add(node int, gain int64) {
	if s.present(node) {
		panic(fmt.Sprintf("bucketlist: node %d already present", node))
	}
	s.in[node>>6] |= 1 << (uint(node) & 63)
	s.gain[node] = gain
	s.tick++
	s.stamp[node] = s.tick
	s.size++
}

// Update implements List.
func (s *Scan) Update(node int, gain int64) {
	if !s.present(node) {
		panic(fmt.Sprintf("bucketlist: update of absent node %d", node))
	}
	if gain == s.gain[node] {
		return // same bucket: Dense and Sparse leave the position alone
	}
	s.gain[node] = gain
	s.tick++
	s.stamp[node] = s.tick
}

// AdjustIfPresent implements List.
func (s *Scan) AdjustIfPresent(node int, delta int64) {
	if delta == 0 || !s.present(node) {
		return
	}
	s.gain[node] += delta
	s.tick++
	s.stamp[node] = s.tick
}

// Remove implements List.
func (s *Scan) Remove(node int) bool {
	if !s.present(node) {
		return false
	}
	s.in[node>>6] &^= 1 << (uint(node) & 63)
	s.size--
	return true
}

// Contains implements List.
func (s *Scan) Contains(node int) bool { return s.present(node) }

// Gain implements List.
func (s *Scan) Gain(node int) int64 {
	if !s.present(node) {
		panic(fmt.Sprintf("bucketlist: gain of absent node %d", node))
	}
	return s.gain[node]
}

// PopMax implements List.
func (s *Scan) PopMax() (node int, gain int64, ok bool) {
	if s.size == 0 {
		return 0, 0, false
	}
	best := -1
	var bestGain int64
	var bestStamp uint64
	for w, word := range s.in {
		base := w << 6
		for word != 0 {
			u := base | bits.TrailingZeros64(word)
			word &= word - 1
			if g := s.gain[u]; best < 0 || g > bestGain ||
				g == bestGain && s.stamp[u] > bestStamp {
				best, bestGain, bestStamp = u, g, s.stamp[u]
			}
		}
	}
	s.in[best>>6] &^= 1 << (uint(best) & 63)
	s.size--
	return best, bestGain, true
}

// Len implements List.
func (s *Scan) Len() int { return s.size }

// Reset implements List.
func (s *Scan) Reset(minGain, maxGain int64) {
	for i := range s.in {
		s.in[i] = 0
	}
	s.size = 0
	s.tick = 0
}
