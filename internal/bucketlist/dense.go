package bucketlist

import "fmt"

// Dense is the classic Fiduccia–Mattheyses bucket array: one intrusive
// doubly-linked list per integer gain value, plus a max-gain cursor that
// only moves down between insertions. All operations are O(1) amortized.
//
// Nodes are stored intrusively in fixed arrays, so a Dense list performs no
// per-operation allocation after construction.
type Dense struct {
	minGain  int64
	nbuckets int64   // current logical bucket count (gain range width)
	heads    []int32 // heads[g-minGain] = first node in bucket g, or -1

	// heads may be longer than nbuckets after a Reset to a narrower range;
	// every entry, in range or beyond, is -1 whenever the list is empty, so
	// Reset never has to re-clear it.

	next []int32 // next[u] = following node in u's bucket, or -1
	prev []int32 // prev[u] = preceding node, or -1 (head)
	gain []int64
	in   []bool

	maxCursor int // highest bucket index that may be non-empty
	size      int
}

var _ List = (*Dense)(nil)

// NewDense returns a Dense list for nodes in [0, n) with gains in
// [minGain, maxGain].
func NewDense(n int, minGain, maxGain int64) *Dense {
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	buckets := maxGain - minGain + 1
	d := &Dense{
		minGain:   minGain,
		nbuckets:  buckets,
		heads:     make([]int32, buckets),
		next:      make([]int32, n),
		prev:      make([]int32, n),
		gain:      make([]int64, n),
		in:        make([]bool, n),
		maxCursor: -1,
	}
	for i := range d.heads {
		d.heads[i] = -1
	}
	return d
}

// Reset implements List. Emptying restores the all-(-1) invariant on heads
// bucket by bucket, so rebinding to new bounds is O(present nodes) plus, at
// most once per high-water range, one allocation to grow heads.
func (d *Dense) Reset(minGain, maxGain int64) {
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	if d.size > 0 {
		for u := range d.in {
			if d.in[u] {
				d.unlink(u)
				d.in[u] = false
			}
		}
		d.size = 0
	}
	buckets := maxGain - minGain + 1
	if buckets > int64(len(d.heads)) {
		d.heads = make([]int32, buckets)
		for i := range d.heads {
			d.heads[i] = -1
		}
	}
	d.minGain = minGain
	d.nbuckets = buckets
	d.maxCursor = -1
}

func (d *Dense) bucket(gain int64) int {
	idx := gain - d.minGain
	if idx < 0 || idx >= d.nbuckets {
		panic(fmt.Sprintf("bucketlist: gain %d outside declared range [%d, %d]",
			gain, d.minGain, d.minGain+d.nbuckets-1))
	}
	return int(idx)
}

// Add implements List.
func (d *Dense) Add(node int, gain int64) {
	if d.in[node] {
		panic(fmt.Sprintf("bucketlist: node %d already present", node))
	}
	b := d.bucket(gain)
	d.gain[node] = gain
	d.in[node] = true
	d.push(node, b)
	if b > d.maxCursor {
		d.maxCursor = b
	}
	d.size++
}

// Update implements List.
func (d *Dense) Update(node int, gain int64) {
	if !d.in[node] {
		panic(fmt.Sprintf("bucketlist: update of absent node %d", node))
	}
	if gain == d.gain[node] {
		return
	}
	d.unlink(node)
	b := d.bucket(gain)
	d.gain[node] = gain
	d.push(node, b)
	if b > d.maxCursor {
		d.maxCursor = b
	}
}

// AdjustIfPresent implements List.
func (d *Dense) AdjustIfPresent(node int, delta int64) {
	if delta == 0 || !d.in[node] {
		return
	}
	d.unlink(node)
	g := d.gain[node] + delta
	b := d.bucket(g)
	d.gain[node] = g
	d.push(node, b)
	if b > d.maxCursor {
		d.maxCursor = b
	}
}

// Remove implements List.
func (d *Dense) Remove(node int) bool {
	if !d.in[node] {
		return false
	}
	d.unlink(node)
	d.in[node] = false
	d.size--
	return true
}

// Contains implements List.
func (d *Dense) Contains(node int) bool { return d.in[node] }

// Gain implements List.
func (d *Dense) Gain(node int) int64 {
	if !d.in[node] {
		panic(fmt.Sprintf("bucketlist: gain of absent node %d", node))
	}
	return d.gain[node]
}

// PopMax implements List.
func (d *Dense) PopMax() (node int, gain int64, ok bool) {
	if d.size == 0 {
		return 0, 0, false
	}
	for d.heads[d.maxCursor] < 0 {
		d.maxCursor--
	}
	n := int(d.heads[d.maxCursor])
	g := d.gain[n]
	d.unlink(n)
	d.in[n] = false
	d.size--
	return n, g, true
}

// Len implements List.
func (d *Dense) Len() int { return d.size }

// push prepends node to bucket b (LIFO order).
func (d *Dense) push(node, b int) {
	head := d.heads[b]
	d.next[node] = head
	d.prev[node] = -1
	if head >= 0 {
		d.prev[head] = int32(node)
	}
	d.heads[b] = int32(node)
}

// unlink removes node from its current bucket without clearing membership.
func (d *Dense) unlink(node int) {
	b := d.bucket(d.gain[node])
	nx, pv := d.next[node], d.prev[node]
	if pv >= 0 {
		d.next[pv] = nx
	} else {
		d.heads[b] = nx
	}
	if nx >= 0 {
		d.prev[nx] = pv
	}
}
