package bucketlist

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// implementations under test; all must satisfy the same contract.
func implementations(n int, minG, maxG int64) map[string]List {
	return map[string]List{
		"dense":  NewDense(n, minG, maxG),
		"scan":   NewScan(n),
		"sparse": NewSparse(n),
	}
}

func TestAddPopMax(t *testing.T) {
	for name, l := range implementations(10, -100, 100) {
		t.Run(name, func(t *testing.T) {
			l.Add(1, 5)
			l.Add(2, -3)
			l.Add(3, 7)
			node, gain, ok := l.PopMax()
			if !ok || node != 3 || gain != 7 {
				t.Fatalf("PopMax = %d, %d, %v; want 3, 7, true", node, gain, ok)
			}
			node, gain, _ = l.PopMax()
			if node != 1 || gain != 5 {
				t.Fatalf("second PopMax = %d, %d; want 1, 5", node, gain)
			}
			node, gain, _ = l.PopMax()
			if node != 2 || gain != -3 {
				t.Fatalf("third PopMax = %d, %d; want 2, -3", node, gain)
			}
			if _, _, ok := l.PopMax(); ok {
				t.Fatal("PopMax on empty list reported ok")
			}
		})
	}
}

func TestUpdateMovesBuckets(t *testing.T) {
	for name, l := range implementations(4, -10, 10) {
		t.Run(name, func(t *testing.T) {
			l.Add(0, 1)
			l.Add(1, 2)
			l.Update(0, 9)
			if g := l.Gain(0); g != 9 {
				t.Fatalf("Gain(0) = %d, want 9", g)
			}
			node, gain, _ := l.PopMax()
			if node != 0 || gain != 9 {
				t.Fatalf("PopMax after update = %d, %d; want 0, 9", node, gain)
			}
		})
	}
}

func TestUpdateSameGainNoOp(t *testing.T) {
	for name, l := range implementations(4, -10, 10) {
		t.Run(name, func(t *testing.T) {
			l.Add(0, 3)
			l.Update(0, 3)
			if !l.Contains(0) || l.Gain(0) != 3 || l.Len() != 1 {
				t.Fatal("same-gain update corrupted state")
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, l := range implementations(4, -10, 10) {
		t.Run(name, func(t *testing.T) {
			l.Add(0, 3)
			l.Add(1, 3)
			if !l.Remove(0) {
				t.Fatal("Remove of present node = false")
			}
			if l.Remove(0) {
				t.Fatal("Remove of absent node = true")
			}
			if l.Contains(0) || !l.Contains(1) || l.Len() != 1 {
				t.Fatal("state wrong after Remove")
			}
			node, _, _ := l.PopMax()
			if node != 1 {
				t.Fatalf("PopMax = %d, want 1", node)
			}
		})
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	for name, l := range implementations(4, -10, 10) {
		t.Run(name, func(t *testing.T) {
			l.Add(0, 1)
			defer func() {
				if recover() == nil {
					t.Fatal("duplicate Add did not panic")
				}
			}()
			l.Add(0, 2)
		})
	}
}

func TestUpdateAbsentPanics(t *testing.T) {
	for name, l := range implementations(4, -10, 10) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Update of absent node did not panic")
				}
			}()
			l.Update(0, 2)
		})
	}
}

func TestDenseGainOutOfRangePanics(t *testing.T) {
	l := NewDense(4, -5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range gain did not panic")
		}
	}()
	l.Add(0, 6)
}

func TestDenseLIFOTieBreak(t *testing.T) {
	l := NewDense(4, 0, 10)
	l.Add(0, 5)
	l.Add(1, 5)
	l.Add(2, 5)
	node, _, _ := l.PopMax()
	if node != 2 {
		t.Fatalf("PopMax tie-break = %d, want most recent (2)", node)
	}
}

func TestNewSelectsImplementation(t *testing.T) {
	if _, ok := New(4, -100, 100).(*Dense); !ok {
		t.Error("small range should select Dense")
	}
	if _, ok := New(4, -(1 << 40), 1<<40).(*Scan); !ok {
		t.Error("huge range on a small node count should select Scan")
	}
	if _, ok := New(scanNodeLimit+1, -(1 << 40), 1<<40).(*Sparse); !ok {
		t.Error("huge range on a large node count should select Sparse")
	}
}

// TestCrossImplementation runs a random op sequence against Dense and each
// other implementation and checks they agree on every observable.
func TestCrossImplementation(t *testing.T) {
	const n = 64
	for _, other := range []struct {
		name string
		mk   func() List
	}{
		{"sparse", func() List { return NewSparse(n) }},
		{"scan", func() List { return NewScan(n) }},
	} {
		t.Run(other.name, func(t *testing.T) {
			crossCheck(t, other.mk)
		})
	}
}

func crossCheck(t *testing.T, mk func() List) {
	const n = 64
	f := func(seed uint64, opsRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		ops := int(opsRaw) + 20
		d := NewDense(n, -50, 50)
		s := mk()
		for i := 0; i < ops; i++ {
			node := r.IntN(n)
			gain := int64(r.IntN(101) - 50)
			switch r.IntN(5) {
			case 0:
				if !d.Contains(node) {
					d.Add(node, gain)
					s.Add(node, gain)
				}
			case 1:
				if d.Contains(node) {
					d.Update(node, gain)
					s.Update(node, gain)
				}
			case 2:
				if d.Remove(node) != s.Remove(node) {
					return false
				}
			case 4:
				// Reset must leave both implementations observably empty and
				// fully usable under the (possibly different) new bounds.
				lo := int64(-50 - r.IntN(30))
				hi := int64(50 + r.IntN(30))
				d.Reset(lo, hi)
				s.Reset(lo, hi)
				if d.Len() != 0 || s.Len() != 0 {
					return false
				}
				if _, _, ok := d.PopMax(); ok {
					return false
				}
				if _, _, ok := s.PopMax(); ok {
					return false
				}
				for u := 0; u < n; u++ {
					if d.Contains(u) || s.Contains(u) {
						return false
					}
				}
			case 3:
				nd, gd, okd := d.PopMax()
				ns, gs, oks := s.PopMax()
				if okd != oks || gd != gs {
					return false
				}
				// Max gain must agree; the node may differ within a tie
				// bucket, so re-align state by removing the other's pick.
				if okd && nd != ns {
					if d.Contains(ns) && d.Gain(ns) == gd && s.Contains(nd) && s.Gain(nd) == gs {
						d.Remove(ns)
						s.Remove(nd)
					} else {
						return false
					}
				}
			}
			if d.Len() != s.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResetEquivalentToFresh: after arbitrary use, a Reset list must be
// indistinguishable from a freshly constructed one — same PopMax sequence,
// LIFO tie-breaks included — for every implementation.
func TestResetEquivalentToFresh(t *testing.T) {
	const n = 48
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 12))
		dirty := []List{NewDense(n, -30, 30), NewScan(n), NewSparse(n)}
		for i := 0; i < 40; i++ {
			node, gain := r.IntN(n), int64(r.IntN(61)-30)
			if !dirty[0].Contains(node) {
				for _, l := range dirty {
					l.Add(node, gain)
				}
			} else if r.IntN(2) == 0 {
				for _, l := range dirty {
					l.Update(node, gain)
				}
			}
		}
		// Leave some residue, pop some, then Reset to different bounds.
		lo, hi := int64(-40), int64(55)
		for _, l := range dirty {
			l.PopMax()
			l.Reset(lo, hi)
		}

		fresh := []List{NewDense(n, lo, hi), NewScan(n), NewSparse(n)}
		for i := 0; i < n; i++ {
			gain := int64(r.IntN(int(hi-lo+1))) + lo
			for _, l := range dirty {
				l.Add(i, gain)
			}
			for _, l := range fresh {
				l.Add(i, gain)
			}
		}
		for {
			done := false
			for i := range dirty {
				n1, g1, ok1 := dirty[i].PopMax()
				n2, g2, ok2 := fresh[i].PopMax()
				if n1 != n2 || g1 != g2 || ok1 != ok2 {
					return false
				}
				done = !ok1
			}
			if done {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseResetGrowsRange: Reset to wider bounds than construction must
// accept the full new range.
func TestDenseResetGrowsRange(t *testing.T) {
	l := NewDense(4, -5, 5)
	l.Add(0, 5)
	l.Reset(-100, 100)
	l.Add(0, 99)
	l.Add(1, -100)
	if node, gain, _ := l.PopMax(); node != 0 || gain != 99 {
		t.Fatalf("PopMax = %d, %d; want 0, 99", node, gain)
	}
}

// TestRenew: Renew must reuse a compatible list and rebuild otherwise.
func TestRenew(t *testing.T) {
	d := NewDense(8, -10, 10)
	d.Add(3, 4)
	if got := Renew(d, 8, -20, 20); got != List(d) {
		t.Error("Renew did not reuse a compatible Dense list")
	} else if got.Len() != 0 {
		t.Error("Renew did not reset the reused list")
	}
	if _, ok := Renew(d, 9, -10, 10).(*Dense); !ok {
		t.Error("Renew with different n should build a fresh Dense")
	}
	if _, ok := Renew(d, 8, -(1 << 40), 1<<40).(*Scan); !ok {
		t.Error("Renew with a huge range on small n should switch to Scan")
	}
	sc := NewScan(8)
	sc.Add(1, 1<<30)
	if got := Renew(sc, 8, -(1<<40), 1<<40); got != List(sc) {
		t.Error("Renew did not reuse a compatible Scan list")
	} else if got.Len() != 0 {
		t.Error("Renew did not reset the reused Scan list")
	}
	if _, ok := Renew(sc, 8, -10, 10).(*Dense); !ok {
		t.Error("Renew with a small range should switch to Dense")
	}
	big := scanNodeLimit + 1
	s := NewSparse(big)
	s.Add(1, 1<<30)
	if got := Renew(s, big, -(1<<40), 1<<40); got != List(s) {
		t.Error("Renew did not reuse a compatible Sparse list")
	}
	if _, ok := Renew(sc, big, -(1<<40), 1<<40).(*Sparse); !ok {
		t.Error("Renew with a huge range past scanNodeLimit should switch to Sparse")
	}
	if _, ok := Renew(nil, 8, -10, 10).(*Dense); !ok {
		t.Error("Renew(nil) should construct a list")
	}
}

// TestPopMaxIsMonotoneWithoutMutation: absent interleaved updates, PopMax
// yields non-increasing gains.
func TestPopMaxIsMonotoneWithoutMutation(t *testing.T) {
	for name, l := range implementations(256, -1000, 1000) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(4, 2))
			for i := 0; i < 256; i++ {
				l.Add(i, int64(r.IntN(2001)-1000))
			}
			prev := int64(1 << 62)
			for {
				_, g, ok := l.PopMax()
				if !ok {
					break
				}
				if g > prev {
					t.Fatalf("PopMax gain increased: %d after %d", g, prev)
				}
				prev = g
			}
		})
	}
}
