package bucketlist

import (
	"container/heap"
	"fmt"
)

// Sparse is a bucket list for unbounded gain ranges: a hash map from gain
// value to its bucket, plus a lazily-cleaned max-heap of occupied gain
// values. Operations are O(log B) with B the number of distinct gains.
type Sparse struct {
	buckets map[int64][]int32 // gain -> stack of nodes (LIFO)
	heapVal gainHeap          // occupied gains; may contain stale entries
	gain    []int64
	in      []bool
	pos     []int32 // index of node within its bucket stack
	size    int
}

var _ List = (*Sparse)(nil)

// NewSparse returns a Sparse list for nodes in [0, n).
func NewSparse(n int) *Sparse {
	return &Sparse{
		buckets: make(map[int64][]int32),
		gain:    make([]int64, n),
		in:      make([]bool, n),
		pos:     make([]int32, n),
	}
}

// Add implements List.
func (s *Sparse) Add(node int, gain int64) {
	if s.in[node] {
		panic(fmt.Sprintf("bucketlist: node %d already present", node))
	}
	s.in[node] = true
	s.gain[node] = gain
	s.pushBucket(node, gain)
	s.size++
}

// Update implements List.
func (s *Sparse) Update(node int, gain int64) {
	if !s.in[node] {
		panic(fmt.Sprintf("bucketlist: update of absent node %d", node))
	}
	if gain == s.gain[node] {
		return
	}
	s.removeFromBucket(node)
	s.gain[node] = gain
	s.pushBucket(node, gain)
}

// AdjustIfPresent implements List.
func (s *Sparse) AdjustIfPresent(node int, delta int64) {
	if delta == 0 || !s.in[node] {
		return
	}
	s.removeFromBucket(node)
	g := s.gain[node] + delta
	s.gain[node] = g
	s.pushBucket(node, g)
}

// Remove implements List.
func (s *Sparse) Remove(node int) bool {
	if !s.in[node] {
		return false
	}
	s.removeFromBucket(node)
	s.in[node] = false
	s.size--
	return true
}

// Contains implements List.
func (s *Sparse) Contains(node int) bool { return s.in[node] }

// Gain implements List.
func (s *Sparse) Gain(node int) int64 {
	if !s.in[node] {
		panic(fmt.Sprintf("bucketlist: gain of absent node %d", node))
	}
	return s.gain[node]
}

// PopMax implements List.
func (s *Sparse) PopMax() (node int, gain int64, ok bool) {
	if s.size == 0 {
		return 0, 0, false
	}
	for {
		g := s.heapVal[0]
		bucket := s.buckets[g]
		if len(bucket) == 0 {
			// Stale heap entry: the bucket emptied after this gain was
			// pushed. Drop and retry.
			heap.Pop(&s.heapVal)
			delete(s.buckets, g)
			continue
		}
		n := int(bucket[len(bucket)-1])
		s.removeFromBucket(n)
		s.in[n] = false
		s.size--
		return n, g, true
	}
}

// Len implements List.
func (s *Sparse) Len() int { return s.size }

// Reset implements List. The gain bounds are advisory for a Sparse list
// (its range is unbounded); Reset empties it while keeping the bucket map
// and heap storage for reuse.
func (s *Sparse) Reset(minGain, maxGain int64) {
	if maxGain < minGain {
		panic("bucketlist: maxGain < minGain")
	}
	clear(s.buckets)
	s.heapVal = s.heapVal[:0]
	clear(s.in)
	s.size = 0
}

func (s *Sparse) pushBucket(node int, gain int64) {
	bucket := s.buckets[gain]
	if len(bucket) == 0 {
		heap.Push(&s.heapVal, gain)
	}
	s.pos[node] = int32(len(bucket))
	s.buckets[gain] = append(bucket, int32(node))
}

// removeFromBucket deletes node from its gain bucket by swapping with the
// stack top (preserving O(1) removal; the LIFO tie-break is therefore
// approximate after interior removals, which the List contract allows).
func (s *Sparse) removeFromBucket(node int) {
	g := s.gain[node]
	bucket := s.buckets[g]
	i, last := int(s.pos[node]), len(bucket)-1
	if i != last {
		moved := bucket[last]
		bucket[i] = moved
		s.pos[moved] = int32(i)
	}
	s.buckets[g] = bucket[:last]
	// Empty buckets are cleaned lazily by PopMax; eagerly deleting here
	// would strand the heap entry forever.
}

// gainHeap is a max-heap of gain values.
type gainHeap []int64

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i] > h[j] }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *gainHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
