package bucketlist

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// benchOps runs a representative FM workload: fill, then interleaved
// PopMax + neighbour gain updates.
func benchOps(b *testing.B, mk func() List, n int) {
	r := rand.New(rand.NewPCG(1, 2))
	gains := make([]int64, n)
	for i := range gains {
		gains[i] = int64(r.IntN(2001) - 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := mk()
		for u := 0; u < n; u++ {
			l.Add(u, gains[u])
		}
		for {
			u, _, ok := l.PopMax()
			if !ok {
				break
			}
			// Update 4 pseudo-neighbours, as a KL switch would.
			for k := 1; k <= 4; k++ {
				v := (u + k*37) % n
				if l.Contains(v) {
					l.Update(v, l.Gain(v)+int64(k%2*2-1)*64)
				}
			}
		}
	}
}

func BenchmarkDense(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchOps(b, func() List { return NewDense(n, -1300, 1300) }, n)
		})
	}
}

func BenchmarkSparse(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchOps(b, func() List { return NewSparse(n) }, n)
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("%dk", n/1024) }
