package chaos

import (
	"sync"
	"time"
)

// Clock is a deterministic virtual clock implementing dist.Clock. Sleeps
// advance it instantly, and the fault transport advances it by every
// latency it injects, so an entire seeded schedule — injected delays,
// per-call timeouts, exponential backoff — plays out in microseconds of
// real time while remaining byte-for-byte reproducible.
type Clock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// clockEpoch is the fixed origin of every virtual clock. Any nonzero
// instant works; a stable one keeps virtual timestamps comparable across
// runs and log lines.
var clockEpoch = time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)

// NewClock returns a virtual clock at the epoch.
func NewClock() *Clock { return &Clock{now: clockEpoch} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking. Negative d is a no-op.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept += d
	c.mu.Unlock()
}

// Advance moves the clock forward by d (injected latency, as opposed to a
// caller-requested sleep). Negative d is a no-op.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Elapsed reports how far the clock has moved from its epoch: the run's
// total virtual time.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(clockEpoch)
}

// Slept reports the portion of Elapsed spent in Sleep calls — the
// master's cumulative backoff, as opposed to injected call latency.
func (c *Clock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
