package chaos

import "reflect"

// zeroReply clears the struct a reply pointer points at, so a lost-reply
// fault leaves no trace of the worker-side execution in the master's
// buffer.
func zeroReply(reply any) {
	if rv := reflect.ValueOf(reply); rv.Kind() == reflect.Pointer && !rv.IsNil() {
		rv.Elem().SetZero()
	}
}

// newReplyLike allocates a fresh zero value of reply's pointee type — the
// throwaway buffer for the first delivery of a duplicated call.
func newReplyLike(reply any) any {
	return reflect.New(reflect.TypeOf(reply).Elem()).Interface()
}
