package chaos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// Scenario describes one chaos experiment: a cluster shape, a retry
// policy, and a fault mix. Run executes a seeded detection under that
// mix; Verify sweeps a seed list and asserts every run's detection is
// byte-identical to the fault-free baseline.
type Scenario struct {
	// Workers and ShardsPerWorker shape the cluster (defaults 3 and 2).
	Workers         int
	ShardsPerWorker int
	// Faults is the fault mix; its Seed field is overridden per run.
	Faults Options
	// Retry is the cluster retry policy. The zero value selects chaos
	// defaults sized so every preset fault class recovers: more attempts
	// and a shorter (virtual) timeout and backoff than production, plus a
	// recovery budget that covers a capped kill cascade. A zero JitterSeed
	// is derived from the run's fault seed.
	Retry dist.RetryPolicy
}

// chaosRetry is the scenario default retry policy. The timeout interacts
// with the latency fault class: injected delays beyond 50ms (virtual)
// become timeouts, exercising the discard-late-reply path.
func chaosRetry() dist.RetryPolicy {
	return dist.RetryPolicy{
		MaxAttempts:      8,
		Timeout:          50 * time.Millisecond,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       16 * time.Millisecond,
		RecoveryAttempts: 16,
	}
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Workers < 1 {
		sc.Workers = 3
	}
	if sc.ShardsPerWorker < 1 {
		sc.ShardsPerWorker = 2
	}
	if sc.Retry == (dist.RetryPolicy{}) {
		sc.Retry = chaosRetry()
	}
	return sc
}

// RunResult is one seeded chaos run: what was detected, which faults were
// injected, and what the run cost on the virtual timeline.
type RunResult struct {
	Seed      uint64
	Detection core.Detection
	Faults    []FaultRecord
	Counts    map[FaultKind]int
	Calls     int64
	Elapsed   time.Duration // virtual time: injected latency + backoff
	IO        dist.IOSnapshot
}

// Baseline runs the fault-free detection the chaos runs are compared
// against. It goes through the same (disarmed) transport stack, so the
// only difference from a faulty run is the faults themselves.
func (sc Scenario) Baseline(g *graph.Graph, cfg dist.DetectorConfig) (core.Detection, error) {
	res, err := sc.run(g, cfg, Options{}, false)
	return res.Detection, err
}

// Run executes one seeded detection under the scenario's fault mix.
func (sc Scenario) Run(g *graph.Graph, cfg dist.DetectorConfig, seed uint64) (RunResult, error) {
	opts := sc.Faults
	opts.Seed = seed
	return sc.run(g, cfg, opts, true)
}

func (sc Scenario) run(g *graph.Graph, cfg dist.DetectorConfig, fopts Options, arm bool) (RunResult, error) {
	sc = sc.withDefaults()
	ws := make([]*dist.Worker, sc.Workers)
	for i := range ws {
		ws[i] = dist.NewWorker()
	}
	stats := &dist.IOStats{}
	ct := Wrap(dist.NewLocalTransport(ws, stats, 0), fopts)
	c := dist.NewCluster(ct, stats)
	defer c.Close()
	c.SetClock(ct.Clock())
	rp := sc.Retry
	if rp.JitterSeed == 0 {
		// Vary backoff jitter with the fault seed: determinism of results
		// must not depend on a particular backoff sequence.
		rp.JitterSeed = fopts.Seed ^ 0x9e3779b97f4a7c15
	}
	c.SetRetryPolicy(rp)
	// The detector must inherit the cluster policy, not install its own.
	cfg.Retry = dist.RetryPolicy{}

	res := RunResult{Seed: fopts.Seed}
	if err := c.LoadGraph(g, sc.ShardsPerWorker); err != nil {
		return res, err
	}
	if arm {
		ct.Arm()
	}
	det := dist.NewDetector(c, g.NumNodes(), cfg)
	d, err := det.Detect(cfg)
	res.Detection = d
	res.Faults = ct.Log()
	res.Counts = ct.Counts()
	res.Calls = ct.Calls()
	res.Elapsed = ct.Clock().Elapsed()
	res.IO = c.IO()
	return res, err
}

// Failure records one seed whose run errored or diverged from the
// baseline.
type Failure struct {
	Seed uint64
	Err  error  // run error, if any
	Diff string // first divergence from the baseline, if the run completed
}

func (f Failure) String() string {
	if f.Err != nil {
		return fmt.Sprintf("seed %d: %v", f.Seed, f.Err)
	}
	return fmt.Sprintf("seed %d: %s", f.Seed, f.Diff)
}

// Report is the outcome of a Verify sweep.
type Report struct {
	Baseline core.Detection
	Runs     []RunResult
	Failures []Failure
}

// TotalFaults sums injected faults across the sweep's runs.
func (r Report) TotalFaults() int {
	n := 0
	for _, run := range r.Runs {
		n += len(run.Faults)
	}
	return n
}

// Verify runs every seed under the scenario's fault mix and checks each
// detection against the fault-free baseline. Per-seed divergences land in
// Report.Failures (the sweep continues); the returned error is reserved
// for the baseline itself failing.
func (sc Scenario) Verify(g *graph.Graph, cfg dist.DetectorConfig, seeds []uint64) (Report, error) {
	var rep Report
	base, err := sc.Baseline(g, cfg)
	if err != nil {
		return rep, fmt.Errorf("chaos: fault-free baseline failed: %w", err)
	}
	rep.Baseline = base
	for _, seed := range seeds {
		res, err := sc.Run(g, cfg, seed)
		rep.Runs = append(rep.Runs, res)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Err: err})
			continue
		}
		if diff := DiffDetections(base, res.Detection); diff != "" {
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Diff: diff})
		}
	}
	return rep, nil
}

// DiffDetections reports the first difference between two detections, or
// "" when they are byte-identical (same suspects in the same order, same
// groups with the same members, acceptance rates, k values and rounds).
func DiffDetections(want, got core.Detection) string {
	if want.Rounds != got.Rounds {
		return fmt.Sprintf("rounds = %d, want %d", got.Rounds, want.Rounds)
	}
	if len(want.Suspects) != len(got.Suspects) {
		return fmt.Sprintf("len(suspects) = %d, want %d", len(got.Suspects), len(want.Suspects))
	}
	for i := range want.Suspects {
		if want.Suspects[i] != got.Suspects[i] {
			return fmt.Sprintf("suspects[%d] = %d, want %d", i, got.Suspects[i], want.Suspects[i])
		}
	}
	if len(want.Groups) != len(got.Groups) {
		return fmt.Sprintf("len(groups) = %d, want %d", len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		w, g := want.Groups[i], got.Groups[i]
		if w.Acceptance != g.Acceptance || w.K != g.K || w.Round != g.Round {
			return fmt.Sprintf("groups[%d] = (acc %v, k %v, round %d), want (acc %v, k %v, round %d)",
				i, g.Acceptance, g.K, g.Round, w.Acceptance, w.K, w.Round)
		}
		if len(w.Members) != len(g.Members) {
			return fmt.Sprintf("len(groups[%d].members) = %d, want %d", i, len(g.Members), len(w.Members))
		}
		for j := range w.Members {
			if w.Members[j] != g.Members[j] {
				return fmt.Sprintf("groups[%d].members[%d] = %d, want %d", i, j, g.Members[j], w.Members[j])
			}
		}
	}
	return ""
}

// EqualDetections reports whether two detections are byte-identical.
func EqualDetections(a, b core.Detection) bool { return DiffDetections(a, b) == "" }

// classes are the canonical fault mixes the seed-matrix tests sweep. Each
// isolates one failure mode (plus "mixed", which layers them all) at rates
// chosen so a run sees the fault many times yet always recovers within the
// scenario retry budget.
var classes = map[string]Options{
	"latency": {
		PLatency: 0.25, LatencyMin: time.Millisecond, LatencyMax: 80 * time.Millisecond,
	},
	"transient": {
		PTransient: 0.05, PReplyLost: 0.03,
	},
	"duplicate": {
		PDuplicate: 0.10,
	},
	"crash": {
		PCrash: 0.004, MaxKills: 3,
	},
	"restart": {
		PRestart: 0.004, RestartAfterMin: 1, RestartAfterMax: 3, MaxKills: 3,
	},
	"mixed": {
		PLatency: 0.10, LatencyMin: time.Millisecond, LatencyMax: 80 * time.Millisecond,
		PTransient: 0.02, PReplyLost: 0.01, PDuplicate: 0.04,
		PCrash: 0.002, PRestart: 0.002, RestartAfterMin: 1, RestartAfterMax: 3,
		MaxKills: 3,
	},
}

// Class returns the named canonical fault mix.
func Class(name string) (Options, bool) {
	o, ok := classes[name]
	return o, ok
}

// ClassNames lists the canonical fault classes, sorted.
func ClassNames() []string {
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
