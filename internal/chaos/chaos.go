package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rng"
)

// FaultKind classifies an injected fault.
type FaultKind int

// The fault classes. Latency advances the virtual clock (possibly past the
// cluster's per-call timeout); Transient drops the call before the worker
// sees it; ReplyLost executes the call and drops the reply; Duplicate
// delivers the call twice; Crash kills the worker until the master replaces
// it; Restart kills the worker, refuses replacement, and revives it — empty
// — after a drawn number of probe calls. RestartDone is the bookkeeping
// record logged when that self-revival fires.
const (
	FaultNone FaultKind = iota
	FaultLatency
	FaultTransient
	FaultReplyLost
	FaultDuplicate
	FaultCrash
	FaultRestart
	FaultRestartDone
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultTransient:
		return "transient"
	case FaultReplyLost:
		return "reply-lost"
	case FaultDuplicate:
		return "duplicate"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultRestartDone:
		return "restart-done"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Options configures a fault schedule. All probabilities are per call and
// disjoint: a single uniform draw per call picks at most one fault, so the
// sum of the P fields must stay ≤ 1.
type Options struct {
	// Seed drives the schedule. Identical seeds over identical call
	// sequences inject identical faults.
	Seed uint64

	// PLatency injects a virtual delay drawn uniformly from
	// [LatencyMin, LatencyMax] — exceeding the cluster's per-call timeout
	// turns it into a timeout-and-retry.
	PLatency               float64
	LatencyMin, LatencyMax time.Duration

	// PTransient drops the call before the worker executes it.
	PTransient float64
	// PReplyLost executes the call on the worker and drops the reply.
	PReplyLost float64
	// PDuplicate delivers the call twice (the master sees one reply).
	PDuplicate float64

	// PCrash kills the worker; the master's recovery path replaces it and
	// replays lineage. Requires the inner transport to implement
	// dist.Failer (the local transport does).
	PCrash float64
	// PRestart kills the worker but declines replacement: the worker
	// restarts on its own — empty — after a number of probe calls drawn
	// from [RestartAfterMin, RestartAfterMax], and the master discovers
	// the wiped state through ErrStateLost.
	PRestart                         float64
	RestartAfterMin, RestartAfterMax int

	// MaxKills caps the total crash+restart injections of a run (a kill
	// cascade that outlasts the recovery budget would correctly fail the
	// round, which is not what a determinism test wants). 0 means no cap.
	MaxKills int

	// Tracer, when non-nil, receives one chaos.fault event per injection.
	Tracer obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.LatencyMax < o.LatencyMin {
		o.LatencyMax = o.LatencyMin
	}
	if o.RestartAfterMin < 1 {
		o.RestartAfterMin = 1
	}
	if o.RestartAfterMax < o.RestartAfterMin {
		o.RestartAfterMax = o.RestartAfterMin
	}
	return o
}

// FaultRecord is one entry of the fault log: which fault hit which call.
// The log is the schedule's fingerprint — two runs with the same seed must
// produce deeply equal logs, which the reproducibility test asserts.
type FaultRecord struct {
	Call    int64 // 1-based global call index at injection time
	Worker  int
	Method  dist.Call
	Kind    FaultKind
	Latency time.Duration // FaultLatency only
	After   int           // FaultRestart only: probe calls until self-revival
}

func (r FaultRecord) String() string {
	s := fmt.Sprintf("call %d: %s %s → worker %d", r.Call, r.Kind, r.Method, r.Worker)
	if r.Kind == FaultLatency {
		s += fmt.Sprintf(" (%v)", r.Latency)
	}
	if r.Kind == FaultRestart {
		s += fmt.Sprintf(" (revives after %d calls)", r.After)
	}
	return s
}

// Transport wraps an inner dist.Transport with seeded fault injection. It
// starts disarmed (passing calls through untouched) so setup traffic —
// LoadGraph, dataset creation — stays fault-free; Arm it when the run
// under test begins.
type Transport struct {
	inner dist.Transport
	opts  Options
	clock *Clock

	mu        sync.Mutex
	r         *randStream
	armed     bool
	calls     int64
	kills     int
	down      map[int]bool // workers this layer killed and hasn't seen revived
	restartIn map[int]int  // worker → probe calls left until self-revival
	log       []FaultRecord
	counts    map[FaultKind]int
}

// randStream narrows *rand.Rand to the draws the schedule needs; it exists
// so the draw order is explicit and auditable.
type randStream struct {
	r interface {
		Float64() float64
		Int64N(int64) int64
	}
}

// Wrap layers fault injection over inner. The returned transport is
// disarmed; call Arm once setup traffic is done.
func Wrap(inner dist.Transport, opts Options) *Transport {
	opts = opts.withDefaults()
	return &Transport{
		inner:     inner,
		opts:      opts,
		clock:     NewClock(),
		r:         &randStream{rng.New(opts.Seed).Stream("chaos/faults")},
		down:      make(map[int]bool),
		restartIn: make(map[int]int),
		counts:    make(map[FaultKind]int),
	}
}

// Clock returns the virtual clock the transport advances. Install it on
// the cluster (Cluster.SetClock) so injected latency, per-call timeouts,
// and retry backoff all share one deterministic timeline.
func (t *Transport) Clock() *Clock { return t.clock }

// Arm enables fault injection. Disarm suspends it (bookkeeping for
// already-injected restarts keeps running, so a pending self-revival still
// fires).
func (t *Transport) Arm() { t.mu.Lock(); t.armed = true; t.mu.Unlock() }

// Disarm suspends fault injection.
func (t *Transport) Disarm() { t.mu.Lock(); t.armed = false; t.mu.Unlock() }

// Workers reports the inner transport's worker count.
func (t *Transport) Workers() int { return t.inner.Workers() }

// Close closes the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Log returns a copy of the fault log.
func (t *Transport) Log() []FaultRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FaultRecord, len(t.log))
	copy(out, t.log)
	return out
}

// Counts returns per-kind injection counts.
func (t *Transport) Counts() map[FaultKind]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[FaultKind]int, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// Calls reports the number of calls seen.
func (t *Transport) Calls() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// FailWorker forwards to the inner transport's chaos hook.
func (t *Transport) FailWorker(worker int) bool {
	return dist.FailWorker(t.inner, worker)
}

// FailWorkerAfter forwards to the inner transport's chaos hook.
func (t *Transport) FailWorkerAfter(worker int, afterCalls int64) bool {
	return dist.FailWorkerAfter(t.inner, worker, afterCalls)
}

// ReviveWorker replaces a failed worker — unless this layer killed it with
// a pending self-restart, in which case it declines and the master must
// back off and probe until the worker reappears on its own.
func (t *Transport) ReviveWorker(worker int) bool {
	t.mu.Lock()
	if _, pending := t.restartIn[worker]; pending {
		t.mu.Unlock()
		return false
	}
	delete(t.down, worker)
	t.mu.Unlock()
	return dist.ReviveWorker(t.inner, worker)
}

// Call delivers one RPC, possibly injecting a fault first. The draw
// sequence depends only on the seed and the (deterministic) call sequence,
// so the schedule replays exactly across invocations.
func (t *Transport) Call(worker int, method dist.Call, args, reply any) error {
	t.mu.Lock()
	t.calls++
	idx := t.calls

	// A pending self-restart counts down on every call (probe) to the dead
	// worker, then revives it with empty state.
	if left, pending := t.restartIn[worker]; pending {
		left--
		if left <= 0 {
			delete(t.restartIn, worker)
			delete(t.down, worker)
			dist.ReviveWorker(t.inner, worker)
			t.recordLocked(FaultRecord{Call: idx, Worker: worker, Method: method, Kind: FaultRestartDone})
		} else {
			t.restartIn[worker] = left
		}
	}

	rec := FaultRecord{Call: idx, Worker: worker, Method: method, Kind: FaultNone}
	// Workers this layer brought down get no fresh faults: a drawn fault
	// would mask ErrWorkerDown as a transient error and send the master
	// down the wrong recovery path. (The dead worker answers ErrWorkerDown
	// regardless, so no coverage is lost.)
	if t.armed && !t.down[worker] {
		rec = t.draw(idx, worker, method)
		if rec.Kind != FaultNone {
			t.recordLocked(rec)
		}
	}
	t.mu.Unlock()

	switch rec.Kind {
	case FaultLatency:
		t.clock.Advance(rec.Latency)
		return t.inner.Call(worker, method, args, reply)
	case FaultTransient:
		return fmt.Errorf("%w: chaos dropped %s to worker %d", dist.ErrTransient, method, worker)
	case FaultReplyLost:
		if err := t.inner.Call(worker, method, args, reply); err != nil {
			return err
		}
		zeroReply(reply)
		return fmt.Errorf("%w: chaos dropped reply of %s from worker %d", dist.ErrTransient, method, worker)
	case FaultDuplicate:
		first := newReplyLike(reply)
		if err := t.inner.Call(worker, method, args, first); err != nil {
			return err
		}
		return t.inner.Call(worker, method, args, reply)
	case FaultCrash, FaultRestart:
		return fmt.Errorf("%w: chaos killed worker %d during %s", dist.ErrWorkerDown, worker, method)
	default:
		return t.inner.Call(worker, method, args, reply)
	}
}

// draw decides the fault for one call. Caller holds t.mu. At most one
// uniform draw picks the kind; kinds with parameters draw them immediately
// after, so the stream position stays a pure function of the schedule.
func (t *Transport) draw(idx int64, worker int, method dist.Call) FaultRecord {
	rec := FaultRecord{Call: idx, Worker: worker, Method: method, Kind: FaultNone}
	o := t.opts
	if o.PLatency+o.PTransient+o.PReplyLost+o.PDuplicate+o.PCrash+o.PRestart <= 0 {
		return rec
	}
	u := t.r.r.Float64()
	cum := 0.0
	pick := func(p float64) bool {
		cum += p
		return u < cum
	}
	switch {
	case pick(o.PLatency):
		rec.Kind = FaultLatency
		rec.Latency = o.LatencyMin
		if span := int64(o.LatencyMax - o.LatencyMin); span > 0 {
			rec.Latency += time.Duration(t.r.r.Int64N(span + 1))
		}
	case pick(o.PTransient):
		rec.Kind = FaultTransient
	case pick(o.PReplyLost):
		rec.Kind = FaultReplyLost
	case pick(o.PDuplicate):
		rec.Kind = FaultDuplicate
	case pick(o.PCrash):
		if t.killLocked(worker, 0) {
			rec.Kind = FaultCrash
		}
	case pick(o.PRestart):
		after := o.RestartAfterMin
		if span := o.RestartAfterMax - o.RestartAfterMin; span > 0 {
			after += int(t.r.r.Int64N(int64(span) + 1))
		}
		if t.killLocked(worker, after) {
			rec.Kind = FaultRestart
			rec.After = after
		}
	}
	return rec
}

// killLocked brings a worker down (restartAfter > 0 schedules self-revival
// after that many probe calls). Caller holds t.mu. Returns false when the
// kill budget is spent or the inner transport cannot fail workers.
func (t *Transport) killLocked(worker, restartAfter int) bool {
	if t.opts.MaxKills > 0 && t.kills >= t.opts.MaxKills {
		return false
	}
	if !dist.FailWorker(t.inner, worker) {
		return false
	}
	t.kills++
	t.down[worker] = true
	if restartAfter > 0 {
		t.restartIn[worker] = restartAfter
	}
	return true
}

// recordLocked appends to the fault log and emits a chaos.fault event.
// Caller holds t.mu.
func (t *Transport) recordLocked(rec FaultRecord) {
	t.log = append(t.log, rec)
	t.counts[rec.Kind]++
	obs.Pipeline.ChaosFaults.Add(1)
	if t.opts.Tracer != nil {
		t.opts.Tracer.Emit(obs.Event{
			Name: obs.EvChaosFault, Wall: time.Now(), Dur: rec.Latency,
			Job:    int(rec.Call),
			Detail: fmt.Sprintf("%s %s → worker %d", rec.Kind, rec.Method, rec.Worker),
		})
	}
}
