// Package chaos is a seeded, fully deterministic fault-injection layer for
// the distributed detection engine. A chaos.Transport wraps any
// dist.Transport and, driven by a single PRNG seed and a virtual clock,
// injects per-call latency, transient RPC errors, lost replies, duplicated
// deliveries, worker crashes, and crash-restarts. The same seed always
// produces the same fault schedule on the same call sequence, so every
// failure a test finds is replayable from one integer.
//
// The invariant the package exists to check: detection under any injected
// fault schedule must produce suspect sets byte-identical to the fault-free
// run. The master holds all algorithm state, workers compute pure functions
// of (shards, args), lineage rebuilds are exact, and the retry path draws
// its jitter from a stream independent of the algorithm's — so faults may
// cost time and traffic, but never results. The scenario runner in this
// package asserts exactly that.
package chaos
