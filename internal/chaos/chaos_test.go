package chaos

import (
	"errors"
	"fmt"
	mathrand "math/rand/v2"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

func TestClockDeterministicAdvance(t *testing.T) {
	c := NewClock()
	start := c.Now()
	c.Advance(10 * time.Millisecond)
	c.Sleep(5 * time.Millisecond)
	c.Sleep(-time.Second) // no-op
	c.Advance(-time.Second)
	if got := c.Now().Sub(start); got != 15*time.Millisecond {
		t.Fatalf("clock advanced %v, want 15ms", got)
	}
	if c.Elapsed() != 15*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 15ms", c.Elapsed())
	}
	if c.Slept() != 5*time.Millisecond {
		t.Fatalf("Slept = %v, want 5ms", c.Slept())
	}
}

// fakeTransport records deliveries and fills DatasetReply.Count so tests
// can observe reply zeroing.
type fakeTransport struct {
	deliveries []string
}

func (f *fakeTransport) Call(worker int, method dist.Call, args, reply any) error {
	f.deliveries = append(f.deliveries, fmt.Sprintf("%d:%s", worker, method))
	if r, ok := reply.(*dist.DatasetReply); ok {
		r.Count = 42
	}
	return nil
}
func (f *fakeTransport) Workers() int { return 2 }
func (f *fakeTransport) Close() error { return nil }

func TestDisarmedPassesThrough(t *testing.T) {
	inner := &fakeTransport{}
	ct := Wrap(inner, Options{Seed: 1, PTransient: 1})
	for i := 0; i < 5; i++ {
		if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); err != nil {
			t.Fatalf("disarmed call %d failed: %v", i, err)
		}
	}
	if len(inner.deliveries) != 5 {
		t.Fatalf("inner saw %d calls, want 5", len(inner.deliveries))
	}
	if got := ct.Log(); len(got) != 0 {
		t.Fatalf("disarmed transport logged faults: %v", got)
	}
}

func TestTransientDropsCall(t *testing.T) {
	inner := &fakeTransport{}
	ct := Wrap(inner, Options{Seed: 1, PTransient: 1})
	ct.Arm()
	err := ct.Call(1, dist.CallFetch, &dist.FetchArgs{}, &dist.FetchReply{})
	if !dist.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if len(inner.deliveries) != 0 {
		t.Fatalf("dropped call still reached the worker: %v", inner.deliveries)
	}
}

func TestReplyLostExecutesThenDrops(t *testing.T) {
	inner := &fakeTransport{}
	ct := Wrap(inner, Options{Seed: 1, PReplyLost: 1})
	ct.Arm()
	var reply dist.DatasetReply
	err := ct.Call(0, dist.CallDataset, &dist.DatasetArgs{}, &reply)
	if !dist.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if len(inner.deliveries) != 1 {
		t.Fatalf("inner saw %d calls, want 1 (executed, reply lost)", len(inner.deliveries))
	}
	if reply.Count != 0 {
		t.Fatalf("lost reply leaked data to the master: %+v", reply)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	inner := &fakeTransport{}
	ct := Wrap(inner, Options{Seed: 1, PDuplicate: 1})
	ct.Arm()
	var reply dist.DatasetReply
	if err := ct.Call(0, dist.CallDataset, &dist.DatasetArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(inner.deliveries) != 2 {
		t.Fatalf("inner saw %d calls, want 2", len(inner.deliveries))
	}
	if reply.Count != 42 {
		t.Fatalf("duplicate delivery lost the reply: %+v", reply)
	}
}

func TestLatencyAdvancesClock(t *testing.T) {
	inner := &fakeTransport{}
	d := 10 * time.Millisecond
	ct := Wrap(inner, Options{Seed: 1, PLatency: 1, LatencyMin: d, LatencyMax: d})
	ct.Arm()
	for i := 0; i < 3; i++ {
		if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ct.Clock().Elapsed(); got != 3*d {
		t.Fatalf("clock advanced %v over 3 delayed calls, want %v", got, 3*d)
	}
	if len(inner.deliveries) != 3 {
		t.Fatalf("delayed calls did not reach the worker: %d", len(inner.deliveries))
	}
}

func TestCrashKillsUntilRevived(t *testing.T) {
	ws := []*dist.Worker{dist.NewWorker()}
	inner := dist.NewLocalTransport(ws, nil, 0)
	ct := Wrap(inner, Options{Seed: 1, PCrash: 1, MaxKills: 1})
	ct.Arm()
	err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{})
	if !errors.Is(err, dist.ErrWorkerDown) {
		t.Fatalf("crash fault returned %v, want ErrWorkerDown", err)
	}
	// Down workers get no fresh faults: the next call reports the plain
	// down state from the inner transport.
	if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); !errors.Is(err, dist.ErrWorkerDown) {
		t.Fatalf("probe of dead worker returned %v, want ErrWorkerDown", err)
	}
	if !dist.ReviveWorker(ct, 0) {
		t.Fatal("crash-killed worker must be replaceable")
	}
	// MaxKills is spent, so the revived worker serves calls.
	if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); err != nil {
		t.Fatalf("revived worker still failing: %v", err)
	}
	if got := ct.Counts()[FaultCrash]; got != 1 {
		t.Fatalf("crash count = %d, want 1", got)
	}
}

func TestRestartVetoesReviveThenSelfHeals(t *testing.T) {
	ws := []*dist.Worker{dist.NewWorker()}
	inner := dist.NewLocalTransport(ws, nil, 0)
	ct := Wrap(inner, Options{
		Seed: 1, PRestart: 1, RestartAfterMin: 2, RestartAfterMax: 2, MaxKills: 1,
	})
	ct.Arm()
	if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); !errors.Is(err, dist.ErrWorkerDown) {
		t.Fatalf("restart fault returned %v, want ErrWorkerDown", err)
	}
	if dist.ReviveWorker(ct, 0) {
		t.Fatal("revive must be declined while a self-restart is pending")
	}
	// First probe: still down.
	if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); !errors.Is(err, dist.ErrWorkerDown) {
		t.Fatalf("probe 1 returned %v, want ErrWorkerDown", err)
	}
	// Second probe: the self-restart fires and the call goes through.
	if err := ct.Call(0, dist.CallPing, &struct{}{}, &struct{}{}); err != nil {
		t.Fatalf("worker did not self-revive: %v", err)
	}
	counts := ct.Counts()
	if counts[FaultRestart] != 1 || counts[FaultRestartDone] != 1 {
		t.Fatalf("counts = %v, want one restart and one restart-done", counts)
	}
}

func TestScheduleReproducible(t *testing.T) {
	mix := Options{
		PLatency: 0.2, LatencyMin: time.Millisecond, LatencyMax: 20 * time.Millisecond,
		PTransient: 0.2, PReplyLost: 0.1, PDuplicate: 0.1,
	}
	sequence := func(seed uint64) []FaultRecord {
		ct := Wrap(&fakeTransport{}, func() Options { o := mix; o.Seed = seed; return o }())
		ct.Arm()
		methods := []dist.Call{dist.CallPing, dist.CallFetch, dist.CallComputeGains, dist.CallCutStats}
		for i := 0; i < 200; i++ {
			var reply dist.FetchReply
			_ = ct.Call(i%2, methods[i%len(methods)], &dist.FetchArgs{}, &reply)
		}
		return ct.Log()
	}
	a, b := sequence(7), sequence(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules: %d vs %d faults", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("schedule empty — the mix should inject faults over 200 calls")
	}
	if c := sequence(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// miniWorld plants a small spam graph for scenario tests.
func miniWorld(seed uint64, nL, nF int) (*graph.Graph, core.Seeds) {
	r := mathrand.New(mathrand.NewPCG(seed, 77))
	g := graph.New(nL + nF)
	for i := 0; i < nL; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%nL))
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+5)%nL))
	}
	for i := 0; i < nF; i++ {
		u := graph.NodeID(nL + i)
		for k := 0; k < 3 && k < i; k++ {
			g.AddFriendship(u, graph.NodeID(nL+r.IntN(i)))
		}
		for req := 0; req < 8; req++ {
			target := graph.NodeID(r.IntN(nL))
			if r.Float64() < 0.7 {
				g.AddRejection(target, u)
			} else {
				g.AddFriendship(u, target)
			}
		}
	}
	var seeds core.Seeds
	for i := 0; i < 8; i++ {
		seeds.Legit = append(seeds.Legit, graph.NodeID(i*nL/8))
		seeds.Spammer = append(seeds.Spammer, graph.NodeID(nL+i*nF/8))
	}
	return g, seeds
}

func TestScenarioVerifyTransient(t *testing.T) {
	g, seeds := miniWorld(11, 80, 30)
	cfg := dist.DetectorConfig{
		Cut:         core.CutOptions{Seeds: seeds, RandSeed: 3},
		TargetCount: 30,
	}
	mix, ok := Class("transient")
	if !ok {
		t.Fatal("transient class missing")
	}
	sc := Scenario{Faults: mix}
	rep, err := sc.Verify(g, cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("scenario failure: %s", f)
	}
	if rep.TotalFaults() == 0 {
		t.Fatal("no faults injected across 3 runs")
	}
	if len(rep.Baseline.Suspects) == 0 {
		t.Fatal("baseline detected nothing — the scenario is vacuous")
	}
}

func TestClassNamesStable(t *testing.T) {
	names := ClassNames()
	if len(names) != 6 {
		t.Fatalf("classes = %v, want 6", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("ClassNames not sorted: %v", names)
		}
	}
	for _, name := range names {
		if _, ok := Class(name); !ok {
			t.Fatalf("Class(%q) missing", name)
		}
	}
}
