package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/storage"
)

// StoreFaults is the storage-engine counterpart of the RPC fault
// transport: a seeded, deterministic implementation of storage.Hooks that
// simulates process death at the storage engine's crash points — mid-append
// (torn record), mid-seal (torn footer), between segment creation and
// manifest commit, mid-snapshot-write (torn temp file), between snapshot
// rename and manifest commit, and mid-compaction-delete. Identical seeds
// over identical operation sequences inject identical faults, so every
// recovery bug a test finds replays from one integer.
//
// The invariant the hooks exist to check mirrors the transport's: after any
// injected crash, reopening the store must recover a journal that is a
// prefix of everything appended and a superset of everything flushed, and
// the epochs built from that journal must be byte-identical to a cold batch
// replay of the same prefix.
type StoreFaults struct {
	opts StoreFaultOptions

	mu     sync.Mutex
	r      *randStream
	calls  int64
	faults int
	log    []StoreFaultRecord
}

// StoreFaultOptions configures a storage fault schedule.
type StoreFaultOptions struct {
	// Seed drives the schedule, via a stream independent of the RPC fault
	// stream so the two layers can share a seed without coupling.
	Seed uint64

	// PCrash is the per-point crash probability applied at every fault
	// point; a per-point entry in PCrashAt overrides it.
	PCrash float64
	// PCrashAt maps a storage.Point* name to its own crash probability.
	PCrashAt map[string]float64

	// MaxFaults caps total injections; 0 means one (the typical
	// crash-once-then-recover test shape). Negative means no cap.
	MaxFaults int

	// Tracer, when non-nil, receives one chaos.fault event per injection.
	Tracer obs.Tracer
}

// StoreFaultRecord is one entry of the storage fault log.
type StoreFaultRecord struct {
	Call  int64 // 1-based hook consultation index at injection time
	Point string
	Torn  int // bytes of the pending write that reached disk
}

func (r StoreFaultRecord) String() string {
	return fmt.Sprintf("op %d: crash at %s (torn %dB)", r.Call, r.Point, r.Torn)
}

// NewStoreFaults builds a seeded storage fault injector.
func NewStoreFaults(opts StoreFaultOptions) *StoreFaults {
	if opts.MaxFaults == 0 {
		opts.MaxFaults = 1
	}
	return &StoreFaults{
		opts: opts,
		r:    &randStream{rng.New(opts.Seed).Stream("chaos/store")},
	}
}

// At implements storage.Hooks. One uniform draw decides the crash; a crash
// at a write point draws the torn length uniformly from [0, size), so every
// partial-frame prefix is eventually exercised.
func (s *StoreFaults) At(point string, size int) storage.Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	p := s.opts.PCrash
	if override, ok := s.opts.PCrashAt[point]; ok {
		p = override
	}
	if p <= 0 {
		return storage.Fault{}
	}
	if s.opts.MaxFaults > 0 && s.faults >= s.opts.MaxFaults {
		return storage.Fault{}
	}
	if s.r.r.Float64() >= p {
		return storage.Fault{}
	}
	f := storage.Fault{Crash: true}
	if size > 0 {
		f.Torn = int(s.r.r.Int64N(int64(size)))
	}
	s.faults++
	rec := StoreFaultRecord{Call: s.calls, Point: point, Torn: f.Torn}
	s.log = append(s.log, rec)
	obs.Pipeline.ChaosFaults.Add(1)
	if s.opts.Tracer != nil {
		s.opts.Tracer.Emit(obs.Event{
			Name: obs.EvChaosFault, Wall: time.Now(),
			Job:    int(rec.Call),
			Detail: fmt.Sprintf("crash %s (torn %dB)", rec.Point, rec.Torn),
		})
	}
	return f
}

// Log returns a copy of the fault log.
func (s *StoreFaults) Log() []StoreFaultRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoreFaultRecord, len(s.log))
	copy(out, s.log)
	return out
}

// Faults reports the number of crashes injected.
func (s *StoreFaults) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}
