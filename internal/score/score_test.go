package score

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/graph"
)

func newTestScorer(t *testing.T, n int, opts Options) *Scorer {
	t.Helper()
	s, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptionsDefaultsAndValidation(t *testing.T) {
	s := newTestScorer(t, 4, Options{})
	got := s.Options()
	if got.DenyThreshold != DefaultDenyThreshold ||
		got.ThrottleThreshold != DefaultThrottleThreshold ||
		got.WindowEvents != DefaultWindowEvents {
		t.Fatalf("defaults not applied: %+v", got)
	}
	bad := []Options{
		{DenyThreshold: 1.5},
		{DenyThreshold: -0.1},
		{ThrottleThreshold: 0.9, DenyThreshold: 0.8},
		{WindowEvents: 100},
		{WindowEvents: 8},
	}
	for _, o := range bad {
		if _, err := New(4, o); err == nil {
			t.Errorf("Options %+v accepted, want error", o)
		}
	}
	if _, err := New(-1, Options{}); err == nil {
		t.Error("negative account count accepted")
	}
}

func TestUntouchedAccountIsNeutral(t *testing.T) {
	s := newTestScorer(t, 8, Options{})
	f := s.Features(3)
	if f.RequestRate != 0 || f.RejectionVelocity != 0 {
		t.Fatalf("untouched account has nonzero rates: %+v", f)
	}
	if f.AcceptFast < 0.49 || f.AcceptFast > 0.51 || f.AcceptSlow < 0.49 || f.AcceptSlow > 0.51 {
		t.Fatalf("untouched account not at neutral acceptance prior: %+v", f)
	}
	res := s.Score(3)
	if res.Verdict != VerdictAllow || res.Score >= DefaultThrottleThreshold {
		t.Fatalf("untouched account not allowed: %+v", res)
	}
	if res.Epoch != -1 {
		t.Fatalf("no epoch published but Epoch = %d", res.Epoch)
	}
}

func TestWindowRoll(t *testing.T) {
	// WindowEvents 16: the smallest legal window keeps the test short.
	s := newTestScorer(t, 2, Options{WindowEvents: 16})

	// 10 rejected requests by account 0 inside window 0.
	for i := 0; i < 10; i++ {
		s.Observe(0, false)
	}
	f := s.Features(0)
	if f.RequestRate < 10 || f.RejectionVelocity < 10 {
		t.Fatalf("window 0 rates too low: %+v", f)
	}

	// Advance the clock into window 1 with account 1 traffic: account 0's
	// counts must slide into the previous-window slot and decay as the
	// window fills.
	for i := 0; i < 16; i++ {
		s.Observe(1, true)
	}
	// clock = 26, window 1 is 10/16 full: carry = 1 - 10/16.
	f = s.Features(0)
	wantCarry := 10 * (1 - 10.0/16)
	if f.RequestRate != wantCarry || f.RejectionVelocity != wantCarry {
		t.Fatalf("carried rate = %+v, want %v", f, wantCarry)
	}

	// Two empty windows later the counts must be gone entirely.
	for i := 0; i < 32; i++ {
		s.Observe(1, true)
	}
	f = s.Features(0)
	if f.RequestRate != 0 || f.RejectionVelocity != 0 {
		t.Fatalf("stale counts survived a 2-window gap: %+v", f)
	}
}

func TestAcceptanceEWMAsReachExtremes(t *testing.T) {
	s := newTestScorer(t, 1, Options{})
	for i := 0; i < 200; i++ {
		s.Observe(0, false)
	}
	f := s.Features(0)
	if f.AcceptFast != 0 || f.AcceptSlow != 0 {
		t.Fatalf("all-rejected account did not reach acceptance 0: %+v", f)
	}
	for i := 0; i < 400; i++ {
		s.Observe(0, true)
	}
	f = s.Features(0)
	if f.AcceptFast != 1 || f.AcceptSlow != 1 {
		t.Fatalf("all-accepted account did not reach acceptance 1: %+v", f)
	}
}

func TestTrajectorySignal(t *testing.T) {
	// A long-benign account that pivots to spam: the fast EWMA must fall
	// away from the slow one, raising the falling-acceptance reason while
	// the slow EWMA is still high.
	s := newTestScorer(t, 1, Options{})
	for i := 0; i < 100; i++ {
		s.Observe(0, true)
	}
	for i := 0; i < 6; i++ {
		s.Observe(0, false)
	}
	f := s.Features(0)
	if f.AcceptFast >= f.AcceptSlow {
		t.Fatalf("pivot did not open a fast<slow gap: %+v", f)
	}
	res := s.Score(0)
	if res.Reasons&ReasonFallingAcceptance == 0 {
		t.Fatalf("pivot did not raise falling-acceptance: %+v, features %+v", res, f)
	}
}

func TestSpammerVsBenignSeparation(t *testing.T) {
	s := newTestScorer(t, 3, Options{})
	// Account 0: blatant spammer, 40 rejections in the current window.
	for i := 0; i < 40; i++ {
		s.Observe(0, false)
	}
	// Account 1: active benign user, 20 accepted requests.
	for i := 0; i < 20; i++ {
		s.Observe(1, true)
	}
	spam, benign, idle := s.Score(0), s.Score(1), s.Score(2)
	if spam.Verdict != VerdictDeny {
		t.Fatalf("blatant spammer not denied: %+v", spam)
	}
	if spam.Reasons&ReasonRejectionVelocity == 0 || spam.Reasons&ReasonLowAcceptance == 0 {
		t.Fatalf("spammer reasons incomplete: %+v", spam)
	}
	if benign.Verdict != VerdictAllow {
		t.Fatalf("active benign user not allowed: %+v", benign)
	}
	if idle.Verdict != VerdictAllow {
		t.Fatalf("idle user not allowed: %+v", idle)
	}
	if !(spam.Score > benign.Score && benign.Score >= idle.Score) {
		t.Fatalf("score ordering broken: spam %v benign %v idle %v",
			spam.Score, benign.Score, idle.Score)
	}
}

func TestCountSaturation(t *testing.T) {
	s := newTestScorer(t, 1, Options{WindowEvents: 4096})
	for i := 0; i < 3000; i++ {
		s.Observe(0, false)
	}
	f := s.Features(0)
	if f.RequestRate != cntMask || f.RejectionVelocity != cntMask {
		t.Fatalf("counts did not saturate at %d: %+v", cntMask, f)
	}
	if s.Score(0).Verdict != VerdictDeny {
		t.Fatalf("saturated spammer not denied")
	}
}

// TestEpochSuspectAlwaysAtLeastDeny drives random feature states into an
// account and checks the core invariant: with the account in the published
// suspect set, every score is >= the deny threshold and the verdict is
// deny, whatever the online features say.
func TestEpochSuspectAlwaysAtLeastDeny(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		opts := Options{
			DenyThreshold:     0.3 + r.Float64()*0.69,
			ThrottleThreshold: 0.2,
		}
		s := newTestScorer(t, 8, opts)
		id := graph.NodeID(r.IntN(8))
		for i, n := 0, r.IntN(300); i < n; i++ {
			s.Observe(graph.NodeID(r.IntN(8)), r.Float64() < 0.7)
		}
		s.PublishEpoch(NewEpochView(int64(trial), int64(s.Clock()), 8, []graph.NodeID{id}))
		res := s.Score(id)
		if res.Score < opts.DenyThreshold || res.Verdict != VerdictDeny {
			t.Fatalf("trial %d: suspect scored %v (deny threshold %v), verdict %v",
				trial, res.Score, opts.DenyThreshold, res.Verdict)
		}
		if res.Reasons&ReasonEpochSuspect == 0 {
			t.Fatalf("trial %d: suspect verdict missing epoch reason: %+v", trial, res)
		}
		if res.Epoch != int64(trial) {
			t.Fatalf("trial %d: verdict cites epoch %d", trial, res.Epoch)
		}
	}
}

func TestScoreDeterminismWithoutIngest(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 11))
	s := newTestScorer(t, 16, Options{WindowEvents: 64})
	for i := 0; i < 500; i++ {
		s.Observe(graph.NodeID(r.IntN(16)), r.Float64() < 0.6)
	}
	s.PublishEpoch(NewEpochView(3, int64(s.Clock())-10, 16, []graph.NodeID{2, 5}))
	for id := graph.NodeID(0); id < 16; id++ {
		first := s.Score(id)
		for i := 0; i < 5; i++ {
			if again := s.Score(id); again != first {
				t.Fatalf("id %d: repeated Score diverged: %+v vs %+v", id, first, again)
			}
		}
	}
}

func TestStalenessTracksClock(t *testing.T) {
	s := newTestScorer(t, 4, Options{})
	for i := 0; i < 10; i++ {
		s.Observe(0, true)
	}
	s.PublishEpoch(NewEpochView(1, 10, 4, nil))
	if got := s.Score(0).StalenessEvents; got != 0 {
		t.Fatalf("fresh epoch staleness = %d", got)
	}
	for i := 0; i < 25; i++ {
		s.Observe(1, true)
	}
	if got := s.Score(0).StalenessEvents; got != 25 {
		t.Fatalf("staleness = %d, want 25", got)
	}
}

func TestEpochViewMembership(t *testing.T) {
	v := NewEpochView(9, 100, 130, []graph.NodeID{0, 63, 64, 129, 64})
	if v.NumSuspects() != 4 {
		t.Fatalf("NumSuspects = %d, want 4 (dupes collapse)", v.NumSuspects())
	}
	for _, u := range []graph.NodeID{0, 63, 64, 129} {
		if !v.Suspect(u) {
			t.Errorf("Suspect(%d) = false", u)
		}
	}
	for _, u := range []graph.NodeID{1, 62, 65, 128} {
		if v.Suspect(u) {
			t.Errorf("Suspect(%d) = true", u)
		}
	}
	// Out-of-range probes must not panic or match.
	if v.Suspect(100000) {
		t.Error("out-of-range ID reported suspect")
	}
}

func TestVerdictAndReasonStrings(t *testing.T) {
	if VerdictAllow.String() != "allow" || VerdictThrottle.String() != "throttle" || VerdictDeny.String() != "deny" {
		t.Fatal("verdict wire names wrong")
	}
	r := ReasonEpochSuspect | ReasonLowAcceptance
	got := r.Strings()
	if len(got) != 2 || got[0] != "epoch_suspect" || got[1] != "low_acceptance" {
		t.Fatalf("Reason.Strings() = %v", got)
	}
	if Reason(0).Strings() != nil {
		t.Fatal("zero reason mask produced strings")
	}
}

// TestConcurrentReadersOneWriter hammers the single-writer contract under
// the race detector: one Observe writer, racing epoch publishes, many
// Score readers. Every result must be internally coherent — a suspect bit
// implies membership in the cited epoch's set.
func TestConcurrentReadersOneWriter(t *testing.T) {
	const n = 64
	s := newTestScorer(t, n, Options{WindowEvents: 64})
	suspectsBySeq := make(map[int64]map[graph.NodeID]bool)
	for seq := int64(0); seq < 8; seq++ {
		set := map[graph.NodeID]bool{graph.NodeID(seq): true, graph.NodeID(seq + 20): true}
		suspectsBySeq[seq] = set
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		r := rand.New(rand.NewPCG(1, 1))
		for i := 0; i < 50_000; i++ {
			s.Observe(graph.NodeID(r.IntN(n)), r.Float64() < 0.5)
		}
		close(stop)
	}()
	wg.Add(1)
	go func() { // racing epoch publishes
		defer wg.Done()
		seq := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids := make([]graph.NodeID, 0, 2)
			for id := range suspectsBySeq[seq%8] {
				ids = append(ids, id)
			}
			s.PublishEpoch(NewEpochView(seq%8, int64(s.Clock()), n, ids))
			seq++
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := graph.NodeID(r.IntN(n))
				res := s.Score(id)
				if res.Epoch >= 0 {
					inSet := suspectsBySeq[res.Epoch][id]
					gotBit := res.Reasons&ReasonEpochSuspect != 0
					if inSet != gotBit {
						t.Errorf("id %d: epoch %d suspect bit %v, set says %v",
							id, res.Epoch, gotBit, inSet)
						return
					}
				}
				if res.Score < 0 || res.Score > 1 {
					t.Errorf("score %v outside [0,1]", res.Score)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
