// Package score is the real-time verdict path: it maintains cheap
// per-account online features updated inline by the ingest fold and fuses
// them with the latest published detection epoch into a deterministic
// allow/throttle/deny verdict at friend-request time.
//
// The batch pipeline (core.Detect and its incremental/multilevel variants)
// answers "who looks like a friend spammer given everything logged so
// far", but only at epoch cadence. A production OSN needs an answer the
// moment a request arrives — including for accounts that started spamming
// after the last epoch was cut. Package score closes that gap with the
// per-account dynamics that "Friend or Faux" showed separate fakes from
// their very first requests: request rate, acceptance trajectory, and
// rejection velocity, all computed over the answered-request stream the
// server already folds.
//
// # Feature state
//
// Every account's features live in ONE uint64 loaded and stored
// atomically, so a reader always sees a coherent snapshot with a single
// atomic load — no locks, no torn state, no allocation:
//
//	bits  0..9   curReq   answered outgoing requests, current window
//	bits 10..19  prevReq  … previous window
//	bits 20..29  curRej   rejected outgoing requests, current window
//	bits 30..39  prevRej  … previous window
//	bits 40..47  win      low 8 bits of the account's last window index
//	bits 48..55  accFast  acceptance EWMA, alpha = 1/4  (Q0.8)
//	bits 56..63  accSlow  acceptance EWMA, alpha = 1/16 (Q0.8)
//
// Time is logical, not wall-clock: the Scorer's clock is the count of
// answered requests folded so far, and a rate window is a fixed span of
// that clock (default 1024 events). That makes every feature — and
// therefore every score — a pure function of the answered-request journal,
// preserving the server's replay invariant: restart a server from its
// journal and the scorer state is byte-identical, and repeated Score calls
// with no interleaved ingest return byte-identical Results. Rates are thus
// shares of recent global traffic rather than events per second, which is
// exactly the quantity that stays meaningful as load scales.
//
// Counts saturate at 1023 per window and window indices are tracked modulo
// 256, so an account silent for exactly 256 windows can briefly alias its
// stale counts into the "previous window" slot; the estimate degrades by
// at most one window of old data and the determinism contract is
// unaffected.
//
// # Verdicts
//
// Score fuses the online features with the atomically published epoch's
// suspect set (an EpochView bitset swapped in whole, so a verdict reflects
// either the old epoch or the new one, never a blend). An account in the
// published suspect set always scores at least the deny threshold; an
// account the batch cut has never seen can still be denied on its online
// dynamics alone — the early-detection half of the design. Thresholds and
// the signal fusion are documented on Options.
//
// The write side (Observe) is single-writer by contract — the server's
// ingest loop owns it, exactly as it owns the journal. Score and
// PublishEpoch are safe from any goroutine.
package score
