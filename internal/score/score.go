package score

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
)

// Verdict is the enforcement decision of one Score call.
type Verdict uint8

const (
	// VerdictAllow lets the request through untouched.
	VerdictAllow Verdict = iota
	// VerdictThrottle admits the request but tells the enforcement layer
	// to rate-limit the sender (osn.Enforcer.ApplyVerdict maps it onto the
	// paper's graduated §VII ladder).
	VerdictThrottle
	// VerdictDeny blocks the request and escalates the sender.
	VerdictDeny
)

// String returns the wire name of the verdict ("allow" | "throttle" |
// "deny").
func (v Verdict) String() string {
	switch v {
	case VerdictThrottle:
		return "throttle"
	case VerdictDeny:
		return "deny"
	default:
		return "allow"
	}
}

// Reason is a bitmask of the signals that pushed a score up. It is a fixed
// bitmask rather than a string slice so the hot path stays allocation-free;
// the HTTP layer expands it with Strings.
type Reason uint8

const (
	// ReasonEpochSuspect: the account is in the published epoch's suspect
	// set — the batch Rejecto cut flagged it.
	ReasonEpochSuspect Reason = 1 << iota
	// ReasonRejectionVelocity: the account's outgoing requests are being
	// rejected at high velocity right now.
	ReasonRejectionVelocity
	// ReasonRequestRate: the account is answering-volume-heavy — it owns an
	// outsized share of recent request traffic.
	ReasonRequestRate
	// ReasonLowAcceptance: the account's long-run acceptance EWMA is far
	// below neutral.
	ReasonLowAcceptance
	// ReasonFallingAcceptance: the account's short-run acceptance is
	// dropping away from its long-run level — the trajectory signal.
	ReasonFallingAcceptance
)

// reasonNames is indexed by bit position; order is the wire order.
var reasonNames = [...]string{
	"epoch_suspect",
	"rejection_velocity",
	"request_rate",
	"low_acceptance",
	"falling_acceptance",
}

// Strings expands the bitmask into its wire names, in fixed order. It
// allocates; keep it off the hot path.
func (r Reason) Strings() []string {
	if r == 0 {
		return nil
	}
	out := make([]string, 0, bits.OnesCount8(uint8(r)))
	for i, name := range reasonNames {
		if r&(1<<i) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// Result is one scoring verdict. Every field is a comparable scalar, so
// the determinism contract — repeated calls with no interleaved ingest are
// byte-identical — is checkable with ==.
type Result struct {
	ID graph.NodeID
	// Score is the fused suspicion in [0, 1].
	Score float64
	// Verdict is Score cut at the configured thresholds.
	Verdict Verdict
	// Reasons is the bitmask of contributing signals.
	Reasons Reason
	// Epoch is the sequence number of the epoch the verdict used, or -1
	// when no epoch has been published.
	Epoch int64
	// StalenessEvents is the number of answered requests folded since that
	// epoch was cut — how far behind the batch signal is running.
	StalenessEvents int64
}

// Options parameterizes a Scorer. The zero value takes every default.
type Options struct {
	// DenyThreshold is the score at or above which the verdict is deny.
	// Default 0.8. An account in the published epoch's suspect set always
	// scores >= DenyThreshold — the batch cut is never silently overruled.
	DenyThreshold float64
	// ThrottleThreshold is the score at or above which the verdict is at
	// least throttle. Default 0.5. Must not exceed DenyThreshold.
	ThrottleThreshold float64
	// WindowEvents is the rate-window span in answered requests (the
	// scorer's logical clock). Must be a power of two >= 16. Default 1024.
	WindowEvents int
}

// Default thresholds and window span.
const (
	DefaultDenyThreshold     = 0.8
	DefaultThrottleThreshold = 0.5
	DefaultWindowEvents      = 1024
)

// withDefaults fills zero fields and validates the result.
func (o Options) withDefaults() (Options, error) {
	if o.DenyThreshold == 0 {
		o.DenyThreshold = DefaultDenyThreshold
	}
	if o.ThrottleThreshold == 0 {
		o.ThrottleThreshold = DefaultThrottleThreshold
	}
	if o.WindowEvents == 0 {
		o.WindowEvents = DefaultWindowEvents
	}
	if o.DenyThreshold <= 0 || o.DenyThreshold > 1 {
		return o, fmt.Errorf("score: DenyThreshold %v outside (0, 1]", o.DenyThreshold)
	}
	if o.ThrottleThreshold <= 0 || o.ThrottleThreshold > o.DenyThreshold {
		return o, fmt.Errorf("score: ThrottleThreshold %v outside (0, DenyThreshold]", o.ThrottleThreshold)
	}
	if o.WindowEvents < 16 || o.WindowEvents&(o.WindowEvents-1) != 0 {
		return o, fmt.Errorf("score: WindowEvents %d is not a power of two >= 16", o.WindowEvents)
	}
	return o, nil
}

// EpochView is the scorer's read model of one published detection epoch:
// the suspect set as a bitset plus the epoch's coverage, swapped in whole
// by PublishEpoch so every verdict reflects exactly one epoch.
type EpochView struct {
	// Seq is the epoch's sequence number.
	Seq int64
	// Events is the number of answered requests the epoch covered; the
	// scorer reports clock-Events as staleness.
	Events int64

	suspects    []uint64
	numSuspects int
}

// NewEpochView builds a view over numNodes accounts flagging the given
// suspects. Duplicate IDs are fine; out-of-range IDs panic.
func NewEpochView(seq, events int64, numNodes int, suspects []graph.NodeID) *EpochView {
	v := &EpochView{Seq: seq, Events: events, suspects: make([]uint64, (numNodes+63)/64)}
	for _, u := range suspects {
		w, b := int(u)>>6, uint(u)&63
		if v.suspects[w]&(1<<b) == 0 {
			v.suspects[w] |= 1 << b
			v.numSuspects++
		}
	}
	return v
}

// Suspect reports whether the epoch's cut flagged id.
func (v *EpochView) Suspect(id graph.NodeID) bool {
	w := int(id) >> 6
	if w >= len(v.suspects) {
		return false
	}
	return v.suspects[w]&(1<<(uint(id)&63)) != 0
}

// NumSuspects reports the size of the epoch's suspect set.
func (v *EpochView) NumSuspects() int { return v.numSuspects }

// Packed feature-word layout; see the package comment.
const (
	cntBits = 10
	cntMask = 1<<cntBits - 1 // per-window counts saturate here

	offCurReq  = 0
	offPrevReq = 10
	offCurRej  = 20
	offPrevRej = 30
	offWin     = 40
	offFast    = 48
	offSlow    = 56

	accOne  = 255 // Q0.8 fixed-point 1.0
	accHalf = 128 // neutral prior

	fastInvAlpha = 4  // accFast EWMA alpha = 1/4
	slowInvAlpha = 16 // accSlow EWMA alpha = 1/16
)

// initialWord is an untouched account: zero counts, neutral acceptance.
const initialWord = uint64(accHalf)<<offFast | uint64(accHalf)<<offSlow

// Signal shaping constants: a raw per-window count c becomes the soft
// signal c/(c+half), putting the half-way point of each signal at a
// concrete "this many events per window" interpretation.
const (
	rejHalfCount  = 4.0 // 4 rejections/window -> rejection signal 0.5
	rateHalfCount = 8.0 // 8 answered requests/window -> rate signal 0.5
)

// Signal fusion weights. They deliberately sum above 1 (the signals
// overlap on real spammers); the fused online score is clamped to 1.
const (
	wRejection  = 0.50
	wRate       = 0.25
	wLowAccept  = 0.25
	wTrajectory = 0.10
)

// Scorer holds the online feature state and the published epoch view.
// Observe is single-writer (the ingest fold); Score and PublishEpoch are
// safe from any goroutine.
type Scorer struct {
	opts     Options
	winShift uint

	// clock counts answered requests folded so far — the logical time base
	// of every rate window.
	clock atomic.Uint64
	// epoch is the latest published EpochView; readers load it exactly
	// once per Score, so a verdict can never blend two epochs.
	epoch atomic.Pointer[EpochView]
	// accounts holds one packed feature word per account.
	accounts []atomic.Uint64
}

// New builds a Scorer over numNodes accounts.
func New(numNodes int, opts Options) (*Scorer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("score: negative account count %d", numNodes)
	}
	s := &Scorer{
		opts:     opts,
		winShift: uint(bits.TrailingZeros(uint(opts.WindowEvents))),
		accounts: make([]atomic.Uint64, numNodes),
	}
	for i := range s.accounts {
		s.accounts[i].Store(initialWord)
	}
	return s, nil
}

// Options returns the scorer's resolved configuration.
func (s *Scorer) Options() Options { return s.opts }

// NumAccounts reports the account-ID bound.
func (s *Scorer) NumAccounts() int { return len(s.accounts) }

// Clock returns the number of answered requests folded so far.
func (s *Scorer) Clock() uint64 { return s.clock.Load() }

// Epoch returns the latest published view, or nil before the first
// PublishEpoch.
func (s *Scorer) Epoch() *EpochView { return s.epoch.Load() }

// PublishEpoch atomically swaps in a new epoch view. Every subsequent
// Score uses exactly this view until the next publish.
func (s *Scorer) PublishEpoch(v *EpochView) { s.epoch.Store(v) }

// Observe folds one answered request by account `from` into its features.
// Single-writer: only the goroutine that owns the ingest fold may call it.
// It performs no allocation and exactly one atomic load+store of the
// account's word.
func (s *Scorer) Observe(from graph.NodeID, accepted bool) {
	t := s.clock.Add(1) - 1
	w := uint8(t >> s.winShift)
	a := &s.accounts[from]
	word := rollWindows(a.Load(), w)

	curReq := satAdd(word >> offCurReq & cntMask)
	curRej := word >> offCurRej & cntMask
	obs := uint64(0)
	if accepted {
		obs = accOne
	} else {
		curRej = satAdd(curRej)
	}
	fast := ewmaStep(word>>offFast&0xff, obs, fastInvAlpha)
	slow := ewmaStep(word>>offSlow&0xff, obs, slowInvAlpha)

	word &= (cntMask << offPrevReq) | (cntMask << offPrevRej) // keep prev counts
	word |= curReq<<offCurReq | curRej<<offCurRej |
		uint64(w)<<offWin | fast<<offFast | slow<<offSlow
	a.Store(word)
}

// rollWindows aligns a feature word to window w: one window forward shifts
// cur into prev, a larger gap clears both. The window index is tracked
// modulo 256, so a gap of exactly 256 windows aliases to "same window" —
// see the package comment.
func rollWindows(word uint64, w uint8) uint64 {
	switch w - uint8(word>>offWin) {
	case 0:
		return word
	case 1:
		cur := word >> offCurReq & cntMask
		curRej := word >> offCurRej & cntMask
		word &^= cntMask<<offCurReq | cntMask<<offPrevReq | cntMask<<offCurRej | cntMask<<offPrevRej
		word |= cur<<offPrevReq | curRej<<offPrevRej
	default:
		word &^= cntMask<<offCurReq | cntMask<<offPrevReq | cntMask<<offCurRej | cntMask<<offPrevRej
	}
	word = word&^(0xff<<offWin) | uint64(w)<<offWin
	return word
}

// satAdd increments a per-window count, saturating at cntMask.
func satAdd(c uint64) uint64 {
	if c >= cntMask {
		return cntMask
	}
	return c + 1
}

// ewmaStep moves a Q0.8 EWMA toward obs by 1/invAlpha of the gap, always
// by at least one step when the gap is nonzero, so both extremes (0 and
// 255) are exactly reachable in either direction.
func ewmaStep(old, obs, invAlpha uint64) uint64 {
	if obs >= old {
		return old + (obs-old+invAlpha-1)/invAlpha
	}
	return old - (old-obs+invAlpha-1)/invAlpha
}

// Features is the decoded online view of one account at one logical
// instant — what Score sees before fusion. Rates are events per window,
// interpolated across the current and previous windows.
type Features struct {
	// RequestRate is the account's answered outgoing requests per window.
	RequestRate float64
	// RejectionVelocity is its rejected outgoing requests per window.
	RejectionVelocity float64
	// AcceptFast and AcceptSlow are the short- and long-horizon acceptance
	// EWMAs in [0, 1]; an untouched account sits at the 0.5 neutral prior.
	AcceptFast, AcceptSlow float64
}

// Features decodes the account's current online features.
func (s *Scorer) Features(id graph.NodeID) Features {
	return decodeFeatures(s.accounts[id].Load(), s.clock.Load(), s.winShift)
}

// decodeFeatures is the pure read-side half of the window logic: it
// aligns the stored word to the clock's window without writing, then
// interpolates the sliding-window rates by the position inside the
// current window.
func decodeFeatures(word uint64, now uint64, winShift uint) Features {
	word = rollWindows(word, uint8(now>>winShift))
	frac := float64(now&(1<<winShift-1)) / float64(uint64(1)<<winShift)
	carry := 1 - frac
	return Features{
		RequestRate:       float64(word>>offCurReq&cntMask) + float64(word>>offPrevReq&cntMask)*carry,
		RejectionVelocity: float64(word>>offCurRej&cntMask) + float64(word>>offPrevRej&cntMask)*carry,
		AcceptFast:        float64(word>>offFast&0xff) / accOne,
		AcceptSlow:        float64(word>>offSlow&0xff) / accOne,
	}
}

// combine fuses online features and the epoch signal into a score and its
// reason bitmask — a pure function, the determinism anchor.
func (o Options) combine(f Features, suspect bool) (float64, Reason) {
	rejS := f.RejectionVelocity / (f.RejectionVelocity + rejHalfCount)
	rateS := f.RequestRate / (f.RequestRate + rateHalfCount)
	low := 0.0
	if f.AcceptSlow < 0.5 {
		low = (0.5 - f.AcceptSlow) * 2
	}
	fall := (f.AcceptSlow - f.AcceptFast) * 2.5
	if fall < 0 {
		fall = 0
	} else if fall > 1 {
		fall = 1
	}

	online := wRejection*rejS + wRate*rateS + wLowAccept*low + wTrajectory*fall
	if online > 1 {
		online = 1
	}

	var r Reason
	if rejS >= 0.5 {
		r |= ReasonRejectionVelocity
	}
	if rateS >= 0.5 {
		r |= ReasonRequestRate
	}
	if low >= 0.5 {
		r |= ReasonLowAcceptance
	}
	if fall >= 0.5 {
		r |= ReasonFallingAcceptance
	}
	if suspect {
		// The epoch cut pins the score at or above the deny threshold;
		// online signals only push it further. This is the invariant the
		// server's property suite enforces: the batch verdict is never
		// silently overruled by quiet recent behaviour.
		return o.DenyThreshold + (1-o.DenyThreshold)*online, r | ReasonEpochSuspect
	}
	return online, r
}

// Score computes the account's verdict: one atomic load of the epoch
// pointer, one of the clock, one of the feature word, then pure math.
// Zero allocations; safe from any goroutine; byte-identical across calls
// with no interleaved Observe/PublishEpoch.
func (s *Scorer) Score(id graph.NodeID) Result {
	ep := s.epoch.Load()
	now := s.clock.Load()
	f := decodeFeatures(s.accounts[id].Load(), now, s.winShift)

	suspect := ep != nil && ep.Suspect(id)
	sc, reasons := s.opts.combine(f, suspect)

	verdict := VerdictAllow
	switch {
	case sc >= s.opts.DenyThreshold:
		verdict = VerdictDeny
	case sc >= s.opts.ThrottleThreshold:
		verdict = VerdictThrottle
	}

	res := Result{
		ID:      id,
		Score:   sc,
		Verdict: verdict,
		Reasons: reasons,
		Epoch:   -1,
	}
	if ep != nil {
		res.Epoch = ep.Seq
		if staleness := int64(now) - ep.Events; staleness > 0 {
			res.StalenessEvents = staleness
		}
	}
	return res
}
