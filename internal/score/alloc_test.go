package score

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// TestScoreZeroAllocs pins the hot verdict path at zero allocations in
// steady state, the same bar TestPartitionFrozenZeroAllocs holds the KL
// kernel to: a score is three atomic loads and pure math.
func TestScoreZeroAllocs(t *testing.T) {
	s, err := New(1024, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 10_000; i++ {
		s.Observe(graph.NodeID(r.IntN(1024)), r.Float64() < 0.6)
	}
	s.PublishEpoch(NewEpochView(1, int64(s.Clock()), 1024, []graph.NodeID{3, 99, 700}))

	var sink Result
	id := graph.NodeID(0)
	allocs := testing.AllocsPerRun(1000, func() {
		sink = s.Score(id)
		id = (id + 7) % 1024
	})
	if allocs != 0 {
		t.Fatalf("Score allocates %v per call, want 0", allocs)
	}
	_ = sink
}

// TestObserveZeroAllocs pins the ingest-side feature fold at zero
// allocations: it runs inline in the server's single-owner ingest loop and
// must stay invisible next to the journal append.
func TestObserveZeroAllocs(t *testing.T) {
	s, err := New(64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(graph.NodeID(i%64), i%3 != 0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

// BenchmarkScore is the micro-benchmark behind the serve bench's latency
// budget: the in-process cost of one verdict, before HTTP framing.
func BenchmarkScore(b *testing.B) {
	const n = 1 << 20
	s, err := New(n, Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 200_000; i++ {
		s.Observe(graph.NodeID(r.IntN(n)), r.Float64() < 0.6)
	}
	suspects := make([]graph.NodeID, 2000)
	for i := range suspects {
		suspects[i] = graph.NodeID(r.IntN(n))
	}
	s.PublishEpoch(NewEpochView(1, int64(s.Clock()), n, suspects))
	b.ReportAllocs()
	b.ResetTimer()
	var sink Result
	for i := 0; i < b.N; i++ {
		sink = s.Score(graph.NodeID(i & (n - 1)))
	}
	_ = sink
}

// BenchmarkObserve measures the per-event cost the scorer adds to the
// ingest fold.
func BenchmarkObserve(b *testing.B) {
	const n = 1 << 20
	s, err := New(n, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(graph.NodeID(i&(n-1)), i&3 != 0)
	}
}
