package adversary

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/incr"
	"repro/internal/rng"
)

// Config parameterizes one adversary game.
type Config struct {
	// Base is the organic friendship graph the campaign attacks; it must
	// carry no rejections and is never mutated (the game clones it).
	Base *graph.Graph
	// Scenario supplies the campaign parameters (attack.Scenario request
	// model): NumFakes is the initial cohort, IntraLinksPerFake wires
	// arrivals, RequestsPerSpammer is the nominal per-account volume per
	// round, SpamRejectionRate/CarelessFraction shape the per-user
	// rejection propensities, LegitRejectionRate drives benign traffic.
	// Overlay fields (CollusionExtraPerFake, SelfRejection,
	// RejectedLegitRequests) are ignored — adaptive strategies replace
	// them.
	Scenario attack.Scenario
	// Strategy is the attacker. Strategies are stateful: pass a fresh
	// instance per game.
	Strategy Strategy
	// Rounds is the number of move→fold→epoch→observe cycles (>= 1). Each
	// round is one journal interval and one detection epoch, the same
	// temporal sharding rejectod applies.
	Rounds int
	// BenignPerRound is the organic answered-request volume per round;
	// 0 means half the organic population.
	BenignPerRound int
	// Detector configures each epoch's detection; at least one termination
	// condition must be set (same contract as incr.Engine).
	Detector core.DetectorOptions
	// Seed drives every random draw of the run.
	Seed uint64
}

// RoundLog records one completed round.
type RoundLog struct {
	Round int
	// Requests is the number of journal entries the round appended
	// (benign + cohort wiring + attacker requests).
	Requests int
	// AttackerRequests is the number of requests the strategy's plan sent.
	AttackerRequests int
	// NewFakes and Compromised count the round's cohort changes.
	NewFakes    int
	Compromised int
	// Suspects is the published suspect union after the round's epoch,
	// ascending.
	Suspects []graph.NodeID
	// FlaggedControlled is the number of attacker accounts in Suspects.
	FlaggedControlled int
}

// Outcome is a finished game: the full journal, final ground truth, the
// final published suspect set, and the final epoch's frozen read model —
// everything a defense needs for post-hoc evaluation.
type Outcome struct {
	Strategy string
	Seed     uint64
	// NumLegit is the organic population size; NumNodes the final total.
	NumLegit int
	NumNodes int
	// IsFake is final ground truth: campaign-created fakes plus organic
	// accounts the attacker compromised at any point.
	IsFake []bool
	// Controlled lists every account the attacker ever owned, ascending.
	Controlled []graph.NodeID
	// Journal is the complete answered-request log, interval = round.
	Journal []core.TimedRequest
	// Rounds logs each round.
	Rounds []RoundLog
	// Suspects is the final published suspect union, ascending — the
	// Rejecto verdict the matrix's rejecto-only defense is scored on.
	Suspects []graph.NodeID
	// Frozen is the canonical CSR snapshot of base + the whole journal,
	// the read model the rank-based ensemble signals run on.
	Frozen *graph.Frozen
}

// Game is one configured run. A Game is single-use: construct with New,
// call Run once.
type Game struct {
	cfg     Config
	src     *rng.Source
	engine  *incr.Engine
	rejRate []float64 // per-organic-account spam-rejection propensity

	numNodes    int
	active      map[graph.NodeID]bool
	dormant     map[graph.NodeID]bool
	compromised map[graph.NodeID]bool
	isFake      []bool

	journal []core.TimedRequest
	ran     bool
}

// New validates the configuration and prepares a game: the initial fake
// cohort is allocated (its arrival wiring lands in round 0's interval) and
// every organic account draws its rejection propensity.
func New(cfg Config) (*Game, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("adversary: Config.Base is required")
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("adversary: Config.Strategy is required")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("adversary: Rounds %d must be positive", cfg.Rounds)
	}
	if err := cfg.Scenario.Validate(cfg.Base); err != nil {
		return nil, err
	}
	if cfg.BenignPerRound == 0 {
		cfg.BenignPerRound = cfg.Base.NumNodes() / 2
	}
	if cfg.BenignPerRound < 0 {
		return nil, fmt.Errorf("adversary: BenignPerRound %d must be non-negative", cfg.BenignPerRound)
	}
	// DisableWarm pins every epoch to the cold DetectSharded suspect sets:
	// matrix cells must reflect detection quality, not warm-start
	// heuristics, and cold solves are byte-reproducible against the
	// non-incremental path.
	engine, err := incr.NewEngine(incr.Config{
		Base:        cfg.Base.Clone(),
		Detector:    cfg.Detector,
		DisableWarm: true,
	})
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}

	g := &Game{
		cfg:         cfg,
		src:         rng.New(cfg.Seed),
		engine:      engine,
		numNodes:    cfg.Base.NumNodes(),
		active:      make(map[graph.NodeID]bool),
		dormant:     make(map[graph.NodeID]bool),
		compromised: make(map[graph.NodeID]bool),
	}

	// Per-organic-account spam-rejection propensity: careless users barely
	// reject, the rest split harsh/lenient around the scenario rate. The
	// heterogeneity is what the target-rotation strategy learns to exploit.
	pr := g.src.Stream("propensity")
	g.rejRate = make([]float64, g.numNodes)
	base := cfg.Scenario.SpamRejectionRate
	for u := range g.rejRate {
		switch {
		case pr.Float64() < cfg.Scenario.CarelessFraction:
			g.rejRate[u] = 0.1 * base
		case pr.Float64() < 0.5:
			g.rejRate[u] = min(1, 1.3*base)
		default:
			g.rejRate[u] = 0.7 * base
		}
	}
	return g, nil
}

// controlledView builds the strategy-facing view for round t.
func (g *Game) view(round int) *View {
	controlled := make(map[graph.NodeID]bool, len(g.active)+len(g.dormant))
	for u := range g.active {
		controlled[u] = true
	}
	for u := range g.dormant {
		controlled[u] = true
	}
	return &View{
		Round:       round,
		NumLegit:    g.cfg.Base.NumNodes(),
		NumNodes:    g.numNodes,
		Active:      sortedIDs(g.active),
		Dormant:     sortedIDs(g.dormant),
		Compromised: sortedIDs(g.compromised),
		Scenario:    g.cfg.Scenario,
		controlled:  controlled,
	}
}

// spawnFakes creates count fresh fake accounts and wires each into the
// cohort with IntraLinksPerFake accepted requests to random earlier active
// accounts (the attack.Scenario arrival model), appended to round's
// interval. Returns the wiring requests.
func (g *Game) spawnFakes(count, round int, r *rand.Rand) []core.TimedRequest {
	var reqs []core.TimedRequest
	for i := 0; i < count; i++ {
		u := graph.NodeID(g.numNodes)
		g.numNodes++
		g.isFakeGrow(u, true)
		pool := sortedIDs(g.active)
		g.active[u] = true
		links := min(g.cfg.Scenario.IntraLinksPerFake, len(pool))
		if links == 0 {
			continue
		}
		for _, j := range rng.Sample(r, len(pool), links) {
			reqs = append(reqs, core.TimedRequest{
				From: u, To: pool[j], Accepted: true, Interval: round,
			})
		}
	}
	return reqs
}

// isFakeGrow extends the ground-truth slice to cover u and sets it.
func (g *Game) isFakeGrow(u graph.NodeID, fake bool) {
	for len(g.isFake) <= int(u) {
		g.isFake = append(g.isFake, false)
	}
	g.isFake[u] = fake
}

// Run plays the configured number of rounds and returns the outcome.
func (g *Game) Run() (*Outcome, error) {
	if g.ran {
		return nil, fmt.Errorf("adversary: Game is single-use; construct a new one per run")
	}
	g.ran = true

	name := g.cfg.Strategy.Name()
	var (
		obs  Observation
		logs []RoundLog
	)
	for t := 0; t < g.cfg.Rounds; t++ {
		var round []core.TimedRequest
		var delta incr.Delta

		// Benign organic traffic first: the background the cut must
		// separate the campaign from.
		br := g.src.Stream(fmt.Sprintf("benign/%d", t))
		nLegit := g.cfg.Base.NumNodes()
		for sent := 0; sent < g.cfg.BenignPerRound && nLegit-len(g.compromised) >= 2; {
			u := graph.NodeID(br.IntN(nLegit))
			v := graph.NodeID(br.IntN(nLegit))
			if u == v || g.compromised[u] || g.dormant[u] || g.compromised[v] {
				continue
			}
			round = append(round, core.TimedRequest{
				From: u, To: v,
				Accepted: br.Float64() >= g.cfg.Scenario.LegitRejectionRate,
				Interval: t,
			})
			sent++
		}

		// Round 0 injects the initial cohort before the strategy moves, so
		// the first plan already owns a wired fake region.
		if t == 0 {
			delta.NewNodes += g.cfg.Scenario.NumFakes
			round = append(round,
				g.spawnFakes(g.cfg.Scenario.NumFakes, 0, g.src.Stream("arrival/init"))...)
		}

		// Attacker move.
		view := g.view(t)
		plan := g.cfg.Strategy.Plan(view, obs, g.src.Stream(fmt.Sprintf("strategy/%d", t)))

		// Retirement takes effect immediately: this round's requests must
		// come from accounts that remain active.
		retired := make(map[graph.NodeID]bool, len(plan.Retire))
		for _, u := range plan.Retire {
			retired[u] = true
		}
		activeAfter := make(map[graph.NodeID]bool, len(g.active))
		for u := range g.active {
			if !retired[u] {
				activeAfter[u] = true
			}
		}
		if err := validatePlan(name, view, g.active, activeAfter, plan); err != nil {
			return nil, err
		}
		for _, u := range plan.Retire {
			if g.active[u] {
				delete(g.active, u)
				g.dormant[u] = true
			}
		}

		// Compromise: the game draws which organic accounts fall.
		sr := g.src.Stream(fmt.Sprintf("seize/%d", t))
		for seized := 0; seized < plan.Compromise; {
			u := graph.NodeID(sr.IntN(nLegit))
			if g.compromised[u] || g.active[u] || g.dormant[u] {
				continue
			}
			g.compromised[u] = true
			g.active[u] = true
			g.isFakeGrow(u, true)
			seized++
		}

		// Fresh fakes arrive wired into the surviving cohort.
		if plan.NewFakes > 0 {
			delta.NewNodes += plan.NewFakes
			round = append(round,
				g.spawnFakes(plan.NewFakes, t, g.src.Stream(fmt.Sprintf("arrival/%d", t)))...)
		}

		// The plan's requests, outcomes drawn by target propensity.
		or := g.src.Stream(fmt.Sprintf("outcomes/%d", t))
		outcomes := make([]RequestOutcome, 0, len(plan.Requests))
		for _, req := range plan.Requests {
			accepted := true
			if int(req.To) < nLegit && !g.compromised[req.To] && !g.dormant[req.To] {
				accepted = or.Float64() >= g.rejRate[req.To]
			} else if req.SelfReject {
				accepted = false
			}
			round = append(round, core.TimedRequest{
				From: req.From, To: req.To, Accepted: accepted, Interval: t,
			})
			outcomes = append(outcomes, RequestOutcome{From: req.From, To: req.To, Accepted: accepted})
		}

		// Fold and cut the epoch through the same engine path rejectod uses.
		delta.Requests = round
		dets, _, err := g.engine.Step(delta)
		if err != nil {
			return nil, fmt.Errorf("adversary: round %d epoch: %w", t, err)
		}
		suspects := suspectUnion(dets)

		g.journal = append(g.journal, round...)
		flagged := 0
		for _, u := range suspects {
			if g.active[u] || g.dormant[u] {
				flagged++
			}
		}
		logs = append(logs, RoundLog{
			Round:             t,
			Requests:          len(round),
			AttackerRequests:  len(plan.Requests),
			NewFakes:          plan.NewFakes,
			Compromised:       plan.Compromise,
			Suspects:          suspects,
			FlaggedControlled: flagged,
		})
		obs = Observation{Round: t, Suspects: suspects, Outcomes: outcomes}
	}

	// Final read model: base + whole journal, canonical CSR.
	aug := g.cfg.Base.Clone()
	aug.AddNodes(g.numNodes - aug.NumNodes())
	for _, req := range g.journal {
		if req.From == req.To {
			continue
		}
		if req.Accepted {
			aug.AddFriendship(req.From, req.To)
		} else {
			aug.AddRejection(req.To, req.From)
		}
	}

	controlled := make(map[graph.NodeID]bool, len(g.active)+len(g.dormant))
	for u := range g.active {
		controlled[u] = true
	}
	for u := range g.dormant {
		controlled[u] = true
	}
	isFake := make([]bool, g.numNodes)
	copy(isFake, g.isFake)

	return &Outcome{
		Strategy:   name,
		Seed:       g.cfg.Seed,
		NumLegit:   g.cfg.Base.NumNodes(),
		NumNodes:   g.numNodes,
		IsFake:     isFake,
		Controlled: sortedIDs(controlled),
		Journal:    g.journal,
		Rounds:     logs,
		Suspects:   logs[len(logs)-1].Suspects,
		Frozen:     aug.FreezeCanonical(),
	}, nil
}

// suspectUnion flattens a detection set into the published suspect union,
// ascending — exactly what rejectod's /v1/suspects serves.
func suspectUnion(dets []core.IntervalDetection) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	for _, d := range dets {
		for _, u := range d.Detection.Suspects {
			seen[u] = true
		}
	}
	return sortedIDs(seen)
}
