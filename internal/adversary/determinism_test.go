package adversary

import (
	"testing"
)

// TestGameDeterminism is the one-seed-one-world property: the same
// (strategy, seed, scale) coordinate must reproduce a byte-identical request
// journal, the same per-round published suspect sets, and the same final
// ground truth — the contract that makes the committed matrix cells
// reproducible. 32 seeds per strategy, each run twice.
func TestGameDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed property test")
	}
	const seeds = 32
	for _, f := range Strategies() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= seeds; seed++ {
				a, err := MatrixGame(f, seed, TinyScale)
				if err != nil {
					t.Fatalf("seed %d run A: %v", seed, err)
				}
				b, err := MatrixGame(f, seed, TinyScale)
				if err != nil {
					t.Fatalf("seed %d run B: %v", seed, err)
				}
				assertSameOutcome(t, seed, a, b)
			}
		})
	}
}

func assertSameOutcome(t *testing.T, seed uint64, a, b *Outcome) {
	t.Helper()
	if a.NumNodes != b.NumNodes {
		t.Fatalf("seed %d: NumNodes %d vs %d", seed, a.NumNodes, b.NumNodes)
	}
	if len(a.Journal) != len(b.Journal) {
		t.Fatalf("seed %d: journal lengths %d vs %d", seed, len(a.Journal), len(b.Journal))
	}
	for i := range a.Journal {
		if a.Journal[i] != b.Journal[i] {
			t.Fatalf("seed %d: journal entry %d differs: %+v vs %+v",
				seed, i, a.Journal[i], b.Journal[i])
		}
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("seed %d: round counts %d vs %d", seed, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if len(ra.Suspects) != len(rb.Suspects) {
			t.Fatalf("seed %d round %d: suspect counts %d vs %d",
				seed, i, len(ra.Suspects), len(rb.Suspects))
		}
		for j := range ra.Suspects {
			if ra.Suspects[j] != rb.Suspects[j] {
				t.Fatalf("seed %d round %d: suspect %d differs: %d vs %d",
					seed, i, j, ra.Suspects[j], rb.Suspects[j])
			}
		}
		if ra.Requests != rb.Requests || ra.NewFakes != rb.NewFakes ||
			ra.Compromised != rb.Compromised || ra.FlaggedControlled != rb.FlaggedControlled {
			t.Fatalf("seed %d round %d: logs differ: %+v vs %+v", seed, i, ra, rb)
		}
	}
	for u := range a.IsFake {
		if a.IsFake[u] != b.IsFake[u] {
			t.Fatalf("seed %d: IsFake[%d] differs", seed, u)
		}
	}
	for i := range a.Controlled {
		if a.Controlled[i] != b.Controlled[i] {
			t.Fatalf("seed %d: Controlled[%d] differs: %d vs %d",
				seed, i, a.Controlled[i], b.Controlled[i])
		}
	}
}

// TestGameSeedSensitivity guards against the opposite failure: a seed that
// doesn't actually thread through the draws would make every world
// identical. Different seeds must produce different journals.
func TestGameSeedSensitivity(t *testing.T) {
	f, _ := ByName("static")
	a, err := MatrixGame(f, 1, TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MatrixGame(f, 2, TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Journal) == len(b.Journal) {
		same := true
		for i := range a.Journal {
			if a.Journal[i] != b.Journal[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical journals; the seed is not wired through")
		}
	}
}
