package adversary

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// FuzzAdversaryObserve feeds every built-in strategy arbitrary observations
// — suspects it never heard of, outcomes it never sent, negative IDs,
// duplicated entries — and requires two properties: Plan never panics, and
// the emitted plan still validates against the attacker's actual holdings.
// A strategy that trusts the defense's published epoch enough to crash or
// to emit an illegal move hands the defense a kill switch.
func FuzzAdversaryObserve(f *testing.F) {
	f.Add(uint64(1), int64(0), []byte{})
	f.Add(uint64(2), int64(3), []byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x00})
	f.Add(uint64(3), int64(-9), []byte{7, 7, 7, 200, 200, 200, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint64(4), int64(1), []byte{0x80, 0x00, 0x80, 0x00, 0x80})

	f.Fuzz(func(t *testing.T, seed uint64, round int64, raw []byte) {
		// A real mid-campaign view: cohort of 6 fakes on a 40-node organic
		// world, one compromised account, one dormant.
		const numLegit = 40
		sc := MatrixScenario(TinyScale)
		sc.NumFakes = 6
		controlled := map[graph.NodeID]bool{
			5: true, 40: true, 41: true, 42: true, 43: true, 44: true, 45: true,
		}
		view := &View{
			Round:       int(round % 1000),
			NumLegit:    numLegit,
			NumNodes:    numLegit + 6,
			Active:      []graph.NodeID{5, 40, 41, 42, 44, 45},
			Dormant:     []graph.NodeID{43},
			Compromised: []graph.NodeID{5},
			Scenario:    sc,
			controlled:  controlled,
		}
		active := make(map[graph.NodeID]bool, len(view.Active))
		for _, u := range view.Active {
			active[u] = true
		}

		// Decode the fuzz payload into a hostile observation.
		obs := Observation{Round: int(round)}
		for i := 0; i+1 < len(raw) && i < 64; i += 2 {
			id := graph.NodeID(int8(raw[i])) // negatives included
			switch raw[i+1] % 3 {
			case 0:
				obs.Suspects = append(obs.Suspects, id)
			case 1:
				obs.Outcomes = append(obs.Outcomes, RequestOutcome{
					From: id, To: graph.NodeID(int8(raw[i+1])), Accepted: true})
			default:
				obs.Outcomes = append(obs.Outcomes, RequestOutcome{
					From: id, To: graph.NodeID(int8(raw[i+1])), Accepted: false})
			}
		}

		for _, fac := range Strategies() {
			strat := fac.New(sc)
			r := rand.New(rand.NewPCG(seed, 17))
			plan := strat.Plan(view, obs, r) // must not panic
			retired := make(map[graph.NodeID]bool, len(plan.Retire))
			for _, u := range plan.Retire {
				retired[u] = true
			}
			activeAfter := make(map[graph.NodeID]bool, len(active))
			for u := range active {
				if !retired[u] {
					activeAfter[u] = true
				}
			}
			if err := validatePlan(fac.Name, view, active, activeAfter, plan); err != nil {
				t.Fatalf("strategy %s emitted an invalid plan under a hostile observation: %v",
					fac.Name, err)
			}
		}
	})
}
