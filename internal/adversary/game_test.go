package adversary

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// runTiny runs one TinyScale game for the named strategy.
func runTiny(t *testing.T, name string, seed uint64) *Outcome {
	t.Helper()
	f, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown strategy %q", name)
	}
	out, err := MatrixGame(f, seed, TinyScale)
	if err != nil {
		t.Fatalf("MatrixGame(%s, %d): %v", name, seed, err)
	}
	return out
}

func TestGameInvariants(t *testing.T) {
	for _, f := range Strategies() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			out := runTiny(t, f.Name, 7)
			if out.Strategy != f.Name {
				t.Fatalf("Strategy = %q, want %q", out.Strategy, f.Name)
			}
			if out.NumLegit != TinyScale.NumLegit {
				t.Fatalf("NumLegit = %d, want %d", out.NumLegit, TinyScale.NumLegit)
			}
			if out.NumNodes < out.NumLegit+TinyScale.NumFakes {
				t.Fatalf("NumNodes = %d, below base+initial cohort", out.NumNodes)
			}
			if len(out.IsFake) != out.NumNodes {
				t.Fatalf("len(IsFake) = %d, want %d", len(out.IsFake), out.NumNodes)
			}
			if out.Frozen.NumNodes() != out.NumNodes {
				t.Fatalf("Frozen has %d nodes, want %d", out.Frozen.NumNodes(), out.NumNodes)
			}
			if len(out.Rounds) != TinyScale.Rounds {
				t.Fatalf("len(Rounds) = %d, want %d", len(out.Rounds), TinyScale.Rounds)
			}
			// Every campaign-created account is fake; every account the
			// attacker controls is fake ground truth.
			for u := out.NumLegit; u < out.NumNodes; u++ {
				if !out.IsFake[u] {
					t.Fatalf("created account %d not marked fake", u)
				}
			}
			for _, u := range out.Controlled {
				if !out.IsFake[u] {
					t.Fatalf("controlled account %d not marked fake", u)
				}
			}
			// Journal intervals must match round indices and stay in range.
			for _, req := range out.Journal {
				if req.Interval < 0 || req.Interval >= TinyScale.Rounds {
					t.Fatalf("journal interval %d outside [0, %d)", req.Interval, TinyScale.Rounds)
				}
				if int(req.From) >= out.NumNodes || int(req.To) >= out.NumNodes {
					t.Fatalf("journal request %d→%d outside %d-node world", req.From, req.To, out.NumNodes)
				}
			}
			// The final suspect set equals the last round's.
			last := out.Rounds[len(out.Rounds)-1]
			if len(out.Suspects) != len(last.Suspects) {
				t.Fatalf("final Suspects len %d != last round's %d", len(out.Suspects), len(last.Suspects))
			}
			// The game's epoch path must agree with a cold DetectSharded over
			// the same base+journal — the live loop is the rejectod path, not
			// a private variant.
			cold, err := core.DetectSharded(rebuildBase(out), out.Journal, MatrixDetector())
			if err != nil {
				t.Fatalf("cold DetectSharded: %v", err)
			}
			want := suspectUnion(cold)
			if len(want) != len(out.Suspects) {
				t.Fatalf("cold suspect union has %d accounts, game published %d", len(want), len(out.Suspects))
			}
			for i := range want {
				if want[i] != out.Suspects[i] {
					t.Fatalf("suspect %d: cold %d vs game %d", i, want[i], out.Suspects[i])
				}
			}
		})
	}
}

// rebuildBase reconstructs the organic base grown to the final node count,
// as DetectSharded wants it.
func rebuildBase(out *Outcome) *graph.Graph {
	base := MatrixBase(out.Seed, out.NumLegit)
	base.AddNodes(out.NumNodes - out.NumLegit)
	return base
}

func TestGameConfigValidation(t *testing.T) {
	base := MatrixBase(1, 60)
	sc := MatrixScenario(TinyScale)
	sc.NumFakes = 5
	strat := func() Strategy { f, _ := ByName("static"); return f.New(sc) }
	ok := Config{Base: base, Scenario: sc, Strategy: strat(), Rounds: 2,
		BenignPerRound: 10, Detector: MatrixDetector(), Seed: 1}

	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"nil base", func(c *Config) { c.Base = nil }},
		{"nil strategy", func(c *Config) { c.Strategy = nil }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"negative benign", func(c *Config) { c.BenignPerRound = -1 }},
		{"bad scenario", func(c *Config) { c.Scenario.SpamRejectionRate = 1.5 }},
		{"no detector termination", func(c *Config) { c.Detector = core.DetectorOptions{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted config with %s", tc.name)
			}
		})
	}

	t.Run("single use", func(t *testing.T) {
		g, err := New(ok)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(); err == nil {
			t.Fatal("second Run succeeded; Game must be single-use")
		}
	})
}

// planBomb emits a deliberately invalid plan to prove the game rejects it
// with a typed *PlanError.
type planBomb struct{ plan Plan }

func (p *planBomb) Name() string                             { return "bomb" }
func (p *planBomb) Plan(*View, Observation, *rand.Rand) Plan { return p.plan }

func TestPlanValidation(t *testing.T) {
	run := func(plan Plan) error {
		sc := MatrixScenario(TinyScale)
		sc.NumFakes = 4
		g, err := New(Config{
			Base: MatrixBase(3, 50), Scenario: sc,
			Strategy: &planBomb{plan: plan}, Rounds: 1,
			BenignPerRound: 5, Detector: MatrixDetector(), Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = g.Run()
		return err
	}
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative NewFakes", Plan{NewFakes: -1}},
		{"negative Compromise", Plan{Compromise: -1}},
		{"Compromise beyond organic pool", Plan{Compromise: 51}},
		{"retire unowned", Plan{Retire: []graph.NodeID{0}}},
		{"request from organic", Plan{Requests: []PlannedRequest{{From: 0, To: 1}}}},
		{"request from retired", Plan{
			Retire:   []graph.NodeID{50},
			Requests: []PlannedRequest{{From: 50, To: 1}},
		}},
		{"target out of range", Plan{Requests: []PlannedRequest{{From: 50, To: 999}}}},
		{"self request", Plan{Requests: []PlannedRequest{{From: 50, To: 50}}}},
		{"SelfReject at organic target", Plan{
			Requests: []PlannedRequest{{From: 50, To: 1, SelfReject: true}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.plan)
			if err == nil {
				t.Fatal("game executed an invalid plan")
			}
			perr, ok := err.(*PlanError)
			if !ok {
				t.Fatalf("error %T is not *PlanError: %v", err, err)
			}
			if perr.Strategy != "bomb" || perr.Round != 0 {
				t.Fatalf("PlanError = %+v, want strategy bomb round 0", perr)
			}
		})
	}
}

func TestStrategyBehaviors(t *testing.T) {
	t.Run("sacrifice retires flagged and reseeds", func(t *testing.T) {
		out := runTiny(t, "sacrifice", 11)
		var retired, created int
		for _, rl := range out.Rounds {
			created += rl.NewFakes
		}
		// Dormant accounts exist iff something was flagged then retired.
		retired = len(out.Controlled) - countActive(out)
		if fl := totalFlagged(out); fl > 0 && retired == 0 {
			t.Fatalf("flagged %d accounts but nothing retired", fl)
		}
		if created > 2*TinyScale.NumFakes { // 3× cap minus initial cohort
			t.Fatalf("created %d extra fakes, cap is %d", created, 2*TinyScale.NumFakes)
		}
	})
	t.Run("compromise seizes organics", func(t *testing.T) {
		out := runTiny(t, "compromise", 11)
		seized := 0
		for u := 0; u < out.NumLegit; u++ {
			if out.IsFake[u] {
				seized++
			}
		}
		if seized == 0 {
			t.Fatal("compromise strategy seized no organic accounts")
		}
		if seized > TinyScale.NumFakes {
			t.Fatalf("seized %d organics, cap is NumFakes=%d", seized, TinyScale.NumFakes)
		}
	})
	t.Run("churn grows the cohort", func(t *testing.T) {
		out := runTiny(t, "churn", 11)
		if out.NumNodes <= out.NumLegit+TinyScale.NumFakes {
			t.Fatal("churn strategy never created replacement fakes")
		}
	})
	t.Run("ratelimit cuts volume after detection", func(t *testing.T) {
		out := runTiny(t, "ratelimit", 11)
		static := runTiny(t, "static", 11)
		if totalFlagged(static) == 0 {
			t.Skip("static campaign never detected at this seed; no pressure to compare")
		}
		if attackerVolume(out) >= attackerVolume(static) {
			t.Fatalf("ratelimit sent %d requests, static %d — no throttling happened",
				attackerVolume(out), attackerVolume(static))
		}
	})
	t.Run("rotate avoids burned targets", func(t *testing.T) {
		out := runTiny(t, "rotate", 11)
		// Collect targets that rejected an attacker request; later requests
		// to the same target should be rare (only the pre-burn ones).
		burned := make(map[graph.NodeID]bool)
		repeats := 0
		for _, req := range out.Journal {
			if int(req.From) < out.NumLegit && !isControlledAt(out, req.From) {
				continue // benign traffic
			}
			if burned[req.To] {
				repeats++
			}
			if !req.Accepted && int(req.To) < out.NumLegit {
				burned[req.To] = true
			}
		}
		if repeats > len(out.Journal)/10 {
			t.Fatalf("rotate re-targeted burned victims %d times in a %d-request journal",
				repeats, len(out.Journal))
		}
	})
}

func countActive(out *Outcome) int {
	// Controlled minus accounts that appear in no further round = active;
	// approximate via Rounds: not tracked directly, so count distinct
	// senders in the final round's attacker requests is unreliable. Use
	// NumNodes bookkeeping instead: active = controlled - dormant, and
	// dormant accounts are exactly the retired ones. The Outcome does not
	// export dormancy, so infer from journal silence is overkill — this
	// helper only supports the sacrifice assertion, which needs "some
	// retirement happened", i.e. controlled > never-retired cohort size.
	lastCohort := make(map[graph.NodeID]bool)
	for _, req := range out.Journal {
		if req.Interval == out.Rounds[len(out.Rounds)-1].Round && isControlledAt(out, req.From) {
			lastCohort[req.From] = true
		}
	}
	return len(lastCohort)
}

func isControlledAt(out *Outcome, u graph.NodeID) bool {
	for _, c := range out.Controlled {
		if c == u {
			return true
		}
		if c > u {
			return false
		}
	}
	return false
}

func totalFlagged(out *Outcome) int {
	n := 0
	for _, rl := range out.Rounds {
		n += rl.FlaggedControlled
	}
	return n
}

func attackerVolume(out *Outcome) int {
	n := 0
	for _, rl := range out.Rounds {
		n += rl.AttackerRequests
	}
	return n
}

// TestMatrixGameSmoke prints per-strategy detection pressure at TinyScale —
// a tuning aid kept as a cheap liveness check: every strategy must finish
// and at least one must get flagged at least once across the seeds.
func TestMatrixGameSmoke(t *testing.T) {
	anyFlagged := false
	for _, f := range Strategies() {
		for seed := uint64(1); seed <= 3; seed++ {
			out, err := MatrixGame(f, seed, TinyScale)
			if err != nil {
				t.Fatalf("%s/%d: %v", f.Name, seed, err)
			}
			fl := totalFlagged(out)
			if fl > 0 {
				anyFlagged = true
			}
			t.Logf("%-10s seed=%d journal=%d suspects=%d flagged(sum)=%d controlled=%d",
				f.Name, seed, len(out.Journal), len(out.Suspects), fl, len(out.Controlled))
		}
	}
	if !anyFlagged {
		t.Fatal("no strategy was ever flagged: the matrix worlds exert no detection pressure")
	}
}
