package adversary

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/attack"
	"repro/internal/graph"
)

// Observation is what the attacker learns between rounds: the defense's
// published suspect set after the latest epoch, plus the outcomes of the
// attacker's own requests (private knowledge — a sender always learns
// whether its request was accepted). The zero Observation is what the
// first round's Plan receives, before any epoch has been published.
type Observation struct {
	// Round is the round whose epoch this observation describes.
	Round int
	// Suspects is the published suspect union across all intervals after
	// the round's epoch, ascending. The attacker sees exactly what any
	// client of /v1/suspects would.
	Suspects []graph.NodeID
	// Outcomes lists every attacker-sent request of the observed round and
	// whether the target accepted it, in send order.
	Outcomes []RequestOutcome
}

// RequestOutcome is one attacker request and its result.
type RequestOutcome struct {
	From, To graph.NodeID
	Accepted bool
}

// SuspectSet returns the observation's suspects as a membership set.
func (o Observation) SuspectSet() map[graph.NodeID]bool {
	set := make(map[graph.NodeID]bool, len(o.Suspects))
	for _, u := range o.Suspects {
		set[u] = true
	}
	return set
}

// View is the attacker's knowledge of its own holdings at planning time.
// Slices are owned by the game; strategies must not mutate them.
type View struct {
	// Round is the round being planned, starting at 0.
	Round int
	// NumLegit is the size of the organic region: accounts [0, NumLegit)
	// existed before the campaign. Some may since have been compromised.
	NumLegit int
	// NumNodes is the current total account count; fake accounts created
	// by the campaign occupy [NumLegit, NumNodes).
	NumNodes int
	// Active lists the attacker's usable accounts, ascending: the fake
	// cohort plus compromised organic accounts, minus retired ones.
	Active []graph.NodeID
	// Dormant lists retired (sacrificed) attacker accounts, ascending.
	Dormant []graph.NodeID
	// Compromised lists every organic account the attacker has ever seized,
	// ascending — including ones since retired, so NumLegit−len(Compromised)
	// is exactly the remaining seizable pool.
	Compromised []graph.NodeID
	// Scenario carries the campaign parameters the game was built with.
	Scenario attack.Scenario

	controlled map[graph.NodeID]bool
}

// IsControlled reports whether the attacker owns id (active or dormant).
func (v *View) IsControlled(id graph.NodeID) bool { return v.controlled[id] }

// RandomLegitTarget draws a uniform organic account the attacker does not
// control. It returns false only in the degenerate world where every
// organic account has been compromised.
func (v *View) RandomLegitTarget(r *rand.Rand) (graph.NodeID, bool) {
	if v.NumLegit <= len(v.Compromised) {
		return 0, false
	}
	for {
		u := graph.NodeID(r.IntN(v.NumLegit))
		if !v.controlled[u] {
			return u, true
		}
	}
}

// Plan is one attacker move: the requests to send this round plus cohort
// changes. The game executes cohort changes first, so requests may not be
// sent from accounts created or seized by the same plan — new capacity
// becomes usable the following round.
type Plan struct {
	// Requests are sent in order. Each From must be an Active account; each
	// To must be an existing account other than From.
	Requests []PlannedRequest
	// NewFakes creates this many fresh fake accounts. The game wires each
	// into the cohort with Scenario.IntraLinksPerFake accepted requests to
	// random active accounts (the arrival model of attack.Scenario).
	NewFakes int
	// Compromise seizes this many random organic accounts: they keep their
	// friendships and history but are attacker-controlled (and ground-truth
	// fake) from the next round on.
	Compromise int
	// Retire sends these active accounts dormant: they stop sending and are
	// never reactivated — the sacrifice move.
	Retire []graph.NodeID
}

// PlannedRequest is one attacker-chosen friend request. The outcome is
// decided by the game: attacker-owned targets accept (the cohort always
// welcomes its own) unless SelfReject is set, organic targets accept or
// reject by their per-user propensity draw.
type PlannedRequest struct {
	From, To graph.NodeID
	// SelfReject marks a request the attacker-owned target deliberately
	// rejects — the whitewash fabrication of the paper's §VI self-rejection
	// attack. Ignored for organic targets, which the attacker cannot
	// puppet.
	SelfReject bool
}

// Strategy is one adaptive attacker. Implementations may keep state across
// rounds (volume throttles, target memory); a Strategy value must therefore
// be used by at most one Game run. Factories in Strategies() construct
// fresh instances.
type Strategy interface {
	// Name is the strategy's stable identifier, used as the matrix row key.
	Name() string
	// Plan emits the move for view.Round. obs describes the previous
	// round's published epoch (zero-valued for round 0). All randomness
	// must come from r, the strategy's per-round seeded stream; drawing
	// from anywhere else breaks the one-seed-one-journal contract. Plan
	// must tolerate arbitrary observations — including suspects it never
	// heard of and outcomes it never sent — without panicking: the fuzz
	// harness feeds it malformed epoch views by design.
	Plan(view *View, obs Observation, r *rand.Rand) Plan
}

// PlanError reports a Plan the game refused to execute.
type PlanError struct {
	Strategy string
	Round    int
	Reason   string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("adversary: strategy %q round %d: %s", e.Strategy, e.Round, e.Reason)
}

// validatePlan checks a plan against the current holdings: Retire entries
// must come from active (the pre-retirement holdings), request senders from
// activeAfter (the holdings that survive this plan's retirement — a retired
// account stops sending the same round).
func validatePlan(name string, v *View, active, activeAfter map[graph.NodeID]bool, p Plan) error {
	fail := func(format string, args ...any) error {
		return &PlanError{Strategy: name, Round: v.Round, Reason: fmt.Sprintf(format, args...)}
	}
	if p.NewFakes < 0 {
		return fail("negative NewFakes %d", p.NewFakes)
	}
	if p.Compromise < 0 {
		return fail("negative Compromise %d", p.Compromise)
	}
	if p.Compromise > v.NumLegit-len(v.Compromised) {
		return fail("Compromise %d exceeds remaining organic accounts", p.Compromise)
	}
	for _, u := range p.Retire {
		if !active[u] {
			return fail("retiring non-active account %d", u)
		}
	}
	for _, req := range p.Requests {
		if !activeAfter[req.From] {
			return fail("request from non-active account %d", req.From)
		}
		if req.To < 0 || int(req.To) >= v.NumNodes {
			return fail("request target %d outside the %d-node world", req.To, v.NumNodes)
		}
		if req.To == req.From {
			return fail("self-request at account %d", req.From)
		}
		if req.SelfReject && !v.controlled[req.To] {
			return fail("SelfReject request %d→%d targets an organic account", req.From, req.To)
		}
	}
	return nil
}

// sortedIDs returns the set's members ascending.
func sortedIDs(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
