// Package adversary plays adaptive friend-spam campaigns against the live
// epoch loop: an attacker controls a cohort of accounts, moves once per
// round, the round's traffic folds into the journal, a detection epoch is
// cut through the same incr.Engine path rejectod uses, and the attacker
// observes the published suspect set before its next move. The paper's §VIII
// evaluation only covers static campaigns; this package supplies the
// "resistance to attack requests" game the ROADMAP names — attackers that
// rate-limit to stay under the acceptance cut, rotate targets away from
// high-rejection victims, sacrifice detected fakes and re-seed, compromise
// legitimate accounts mid-stream, and churn identities wholesale.
//
// Everything is deterministic from one seed: the same Config produces a
// byte-identical request journal, the same per-round published suspect
// sets, and therefore the same precision/recall cell in the committed
// adversary/defense matrix (results/MATRIX.json). Strategy randomness,
// target propensities, benign traffic, and outcome draws each come from
// their own named rng stream, so adding a draw to one phase cannot shift
// another phase's sequence.
package adversary
