package adversary

import (
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Factory names a strategy and constructs fresh single-use instances of it.
type Factory struct {
	Name string
	New  func(attack.Scenario) Strategy
}

// Strategies returns the built-in attacker roster: the static baseline plus
// the five adaptive behaviors, in matrix row order.
func Strategies() []Factory {
	return []Factory{
		{Name: "static", New: func(sc attack.Scenario) Strategy {
			return &staticStrategy{sc: sc}
		}},
		{Name: "ratelimit", New: func(sc attack.Scenario) Strategy {
			return &rateLimitStrategy{sc: sc, volume: max(1, sc.RequestsPerSpammer)}
		}},
		{Name: "rotate", New: func(sc attack.Scenario) Strategy {
			return &rotateStrategy{sc: sc, burned: make(map[graph.NodeID]bool)}
		}},
		{Name: "sacrifice", New: func(sc attack.Scenario) Strategy {
			return &sacrificeStrategy{sc: sc, created: sc.NumFakes}
		}},
		{Name: "compromise", New: func(sc attack.Scenario) Strategy {
			return &compromiseStrategy{sc: sc}
		}},
		{Name: "churn", New: func(sc attack.Scenario) Strategy {
			return &churnStrategy{sc: sc, created: sc.NumFakes}
		}},
	}
}

// ByName returns the factory with the given name, or false.
func ByName(name string) (Factory, bool) {
	for _, f := range Strategies() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// organicTarget draws an organic target, preferring ones outside avoid; when
// the avoid set saturates the organic region it falls back to any organic
// account rather than stalling the campaign.
func organicTarget(v *View, r *rand.Rand, avoid map[graph.NodeID]bool) (graph.NodeID, bool) {
	for tries := 0; tries < 64; tries++ {
		u, ok := v.RandomLegitTarget(r)
		if !ok {
			return 0, false
		}
		if !avoid[u] {
			return u, true
		}
	}
	return v.RandomLegitTarget(r)
}

// spamFrom appends perSender organic-targeted requests for each sender.
func spamFrom(p *Plan, v *View, senders []graph.NodeID, perSender int, r *rand.Rand, avoid map[graph.NodeID]bool) {
	for _, from := range senders {
		for i := 0; i < perSender; i++ {
			to, ok := organicTarget(v, r, avoid)
			if !ok {
				return
			}
			p.Requests = append(p.Requests, PlannedRequest{From: from, To: to})
		}
	}
}

// staticStrategy replays the attack.Scenario request model every round with
// no reaction to detection — the paper's §VIII campaign, serving as the
// matrix control row.
type staticStrategy struct{ sc attack.Scenario }

func (s *staticStrategy) Name() string { return "static" }

func (s *staticStrategy) Plan(v *View, _ Observation, r *rand.Rand) Plan {
	var p Plan
	spamFrom(&p, v, v.Active, s.sc.RequestsPerSpammer, r, nil)
	return p
}

// rateLimitStrategy throttles to duck under the acceptance cut: any flagged
// cohort account halves the per-account volume; two consecutive clean rounds
// earn one unit back, up to the scenario rate.
type rateLimitStrategy struct {
	sc     attack.Scenario
	volume int
	clean  int
}

func (s *rateLimitStrategy) Name() string { return "ratelimit" }

func (s *rateLimitStrategy) Plan(v *View, obs Observation, r *rand.Rand) Plan {
	if v.Round > 0 {
		set := obs.SuspectSet()
		flagged := false
		for _, u := range v.Active {
			if set[u] {
				flagged = true
				break
			}
		}
		if flagged {
			s.volume = max(1, s.volume/2)
			s.clean = 0
		} else if s.clean++; s.clean >= 2 && s.volume < s.sc.RequestsPerSpammer {
			s.volume++
			s.clean = 0
		}
	}
	var p Plan
	spamFrom(&p, v, v.Active, s.volume, r, nil)
	return p
}

// rotateStrategy remembers every organic account that rejected one of its
// requests and steers future volume away from those high-rejection victims,
// starving the rejection edges the cut feeds on.
type rotateStrategy struct {
	sc     attack.Scenario
	burned map[graph.NodeID]bool
}

func (s *rotateStrategy) Name() string { return "rotate" }

func (s *rotateStrategy) Plan(v *View, obs Observation, r *rand.Rand) Plan {
	for _, o := range obs.Outcomes {
		if !o.Accepted && !v.IsControlled(o.To) {
			s.burned[o.To] = true
		}
	}
	var p Plan
	spamFrom(&p, v, v.Active, s.sc.RequestsPerSpammer, r, s.burned)
	return p
}

// sacrificeStrategy abandons every flagged account and re-seeds fresh
// replacements (capped at 3× the initial cohort), betting that young
// accounts outrun the per-interval cut.
type sacrificeStrategy struct {
	sc      attack.Scenario
	created int
}

func (s *sacrificeStrategy) Name() string { return "sacrifice" }

func (s *sacrificeStrategy) Plan(v *View, obs Observation, r *rand.Rand) Plan {
	var p Plan
	set := obs.SuspectSet()
	retired := make(map[graph.NodeID]bool)
	for _, u := range v.Active { // ascending, so Retire stays ordered
		if set[u] {
			p.Retire = append(p.Retire, u)
			retired[u] = true
		}
	}
	budget := 3*s.sc.NumFakes - s.created
	p.NewFakes = min(len(p.Retire), max(budget, 0))
	s.created += p.NewFakes

	survivors := make([]graph.NodeID, 0, len(v.Active))
	for _, u := range v.Active {
		if !retired[u] {
			survivors = append(survivors, u)
		}
	}
	spamFrom(&p, v, survivors, s.sc.RequestsPerSpammer, r, nil)
	return p
}

// compromiseStrategy keeps its fake cohort silent and instead seizes organic
// accounts in small batches, spamming from inside their established
// friendships — the §VII compromised-account deployment as an adaptive move.
type compromiseStrategy struct{ sc attack.Scenario }

func (s *compromiseStrategy) Name() string { return "compromise" }

func (s *compromiseStrategy) Plan(v *View, _ Observation, r *rand.Rand) Plan {
	var p Plan
	seized := len(v.Compromised)
	batch := max(1, s.sc.NumFakes/8)
	batch = min(batch, s.sc.NumFakes-seized, v.NumLegit-seized)
	p.Compromise = max(batch, 0)

	activeSet := make(map[graph.NodeID]bool, len(v.Active))
	for _, u := range v.Active {
		activeSet[u] = true
	}
	senders := make([]graph.NodeID, 0, len(v.Compromised))
	for _, u := range v.Compromised {
		if activeSet[u] {
			senders = append(senders, u)
		}
	}
	spamFrom(&p, v, senders, s.sc.RequestsPerSpammer, r, nil)
	return p
}

// churnStrategy cycles identities wholesale: a quarter of the cohort retires
// every round and is replaced with fresh arrivals (capped at 4× the initial
// cohort), keeping most request volume on accounts too young to have
// accumulated a rejection history.
type churnStrategy struct {
	sc      attack.Scenario
	created int
}

func (s *churnStrategy) Name() string { return "churn" }

func (s *churnStrategy) Plan(v *View, _ Observation, r *rand.Rand) Plan {
	var p Plan
	k := len(v.Active) / 4
	retired := make(map[graph.NodeID]bool, k)
	if k > 0 {
		for _, i := range rng.Sample(r, len(v.Active), k) {
			p.Retire = append(p.Retire, v.Active[i])
			retired[v.Active[i]] = true
		}
	}
	budget := 4*s.sc.NumFakes - s.created
	p.NewFakes = min(k, max(budget, 0))
	s.created += p.NewFakes

	survivors := make([]graph.NodeID, 0, len(v.Active))
	for _, u := range v.Active {
		if !retired[u] {
			survivors = append(survivors, u)
		}
	}
	spamFrom(&p, v, survivors, s.sc.RequestsPerSpammer, r, nil)
	return p
}
