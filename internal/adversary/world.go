package adversary

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Scale sizes a canonical matrix world. The committed adversary/defense
// matrix (results/MATRIX.json) runs DefaultScale; property tests run
// TinyScale so 32 seeds per strategy stay cheap.
type Scale struct {
	NumLegit int // organic population
	NumFakes int // initial fake cohort
	Rounds   int // game rounds (= journal intervals = epochs)
	Volume   int // nominal requests per attacker account per round
	Benign   int // organic answered requests per round
}

// DefaultScale is the world size behind every committed matrix cell.
var DefaultScale = Scale{NumLegit: 600, NumFakes: 40, Rounds: 6, Volume: 8, Benign: 300}

// TinyScale keeps multi-seed property tests fast.
var TinyScale = Scale{NumLegit: 120, NumFakes: 10, Rounds: 4, Volume: 4, Benign: 70}

// MatrixBase generates the organic friendship base for a matrix world: a
// Watts–Strogatz small world (mean degree 6, 10% rewiring), no rejections.
func MatrixBase(seed uint64, numLegit int) *graph.Graph {
	return gen.WattsStrogatz(rng.New(seed).Stream("base"), numLegit, 6, 0.1)
}

// MatrixScenario is the campaign parameterization every matrix cell shares:
// the paper's moderate rates at the scale's size.
func MatrixScenario(sc Scale) attack.Scenario {
	return attack.Scenario{
		NumFakes:           sc.NumFakes,
		IntraLinksPerFake:  3,
		SpammerFraction:    1,
		RequestsPerSpammer: sc.Volume,
		SpamRejectionRate:  0.7,
		LegitRejectionRate: 0.15,
		CarelessFraction:   0.15,
	}
}

// MatrixDetector is the per-epoch detection configuration of the matrix:
// acceptance-threshold termination, adapting to each interval's shard.
func MatrixDetector() core.DetectorOptions {
	return core.DetectorOptions{AcceptanceThreshold: 0.5}
}

// MatrixGame builds and runs the canonical world for one matrix cell
// coordinate: strategy × seed at the given scale. Everything any defense
// config needs — journal, ground truth, suspect sets, frozen read model —
// is in the returned Outcome, so all defenses score the same world.
func MatrixGame(f Factory, seed uint64, sc Scale) (*Outcome, error) {
	scenario := MatrixScenario(sc)
	game, err := New(Config{
		Base:           MatrixBase(seed, sc.NumLegit),
		Scenario:       scenario,
		Strategy:       f.New(scenario),
		Rounds:         sc.Rounds,
		BenignPerRound: sc.Benign,
		Detector:       MatrixDetector(),
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	return game.Run()
}
