package incr

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// Edge is one directed graph edge of a Delta. For friendships the
// direction is ignored; for rejections From is the rejecter and To the
// rejected sender, matching graph.AddRejection.
type Edge struct {
	From, To graph.NodeID
}

// Delta is the change set between two epochs: everything the journal and
// base graph gained since the last Engine.Step. The zero value is the
// empty delta. The ingest path produces one for free — Server.apply calls
// AddRequest as it folds each answered request — so advancing an epoch
// never re-reads the journal.
type Delta struct {
	// NewNodes is the number of nodes appended to the base graph. The
	// rejectod server never grows its base, so this is zero there; the
	// experiments driver uses it for growing worlds.
	NewNodes int
	// Friendships and Rejections are edges added to the base graph itself
	// (outside any interval). Like NewNodes, these are for non-server
	// embeddings; they dirty every interval.
	Friendships []Edge
	Rejections  []Edge
	// Requests is the appended tail of the answered-request journal, in
	// arrival order.
	Requests []core.TimedRequest
}

// AddRequest appends one answered request to the delta — the single call
// the ingest fold makes per journaled request.
func (d *Delta) AddRequest(req core.TimedRequest) {
	d.Requests = append(d.Requests, req)
}

// Merge appends o onto d. Node IDs are absolute, so merging deltas
// captured in sequence is plain concatenation.
func (d *Delta) Merge(o Delta) {
	d.NewNodes += o.NewNodes
	d.Friendships = append(d.Friendships, o.Friendships...)
	d.Rejections = append(d.Rejections, o.Rejections...)
	d.Requests = append(d.Requests, o.Requests...)
}

// Empty reports whether the delta carries no change.
func (d Delta) Empty() bool {
	return d.NewNodes == 0 && len(d.Friendships) == 0 &&
		len(d.Rejections) == 0 && len(d.Requests) == 0
}

// EdgeCount is the number of edge additions the delta implies across base
// and requests (self-requests excluded, duplicates included).
func (d Delta) EdgeCount() int {
	n := len(d.Friendships) + len(d.Rejections)
	for _, req := range d.Requests {
		if req.From != req.To {
			n++
		}
	}
	return n
}

// Edges flattens the delta into splice-ready edge lists for the full-log
// read model (base graph plus every answered request, the epoch snapshot
// rejectod serves lookups from): base friendships plus accepted requests,
// and base rejections plus rejected requests as ⟨recipient, sender⟩.
// Self-requests contribute no edge, mirroring core.DetectSharded's
// interval overlay.
func (d Delta) Edges() (friendships, rejections [][2]graph.NodeID) {
	for _, e := range d.Friendships {
		friendships = append(friendships, [2]graph.NodeID{e.From, e.To})
	}
	for _, e := range d.Rejections {
		rejections = append(rejections, [2]graph.NodeID{e.From, e.To})
	}
	for _, req := range d.Requests {
		if req.From == req.To {
			continue
		}
		if req.Accepted {
			friendships = append(friendships, [2]graph.NodeID{req.From, req.To})
		} else {
			rejections = append(rejections, [2]graph.NodeID{req.To, req.From})
		}
	}
	return friendships, rejections
}
