package incr

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// MemoState is a portable copy of an Engine's per-interval memo — the state
// the durable storage engine (internal/storage) persists next to each
// snapshot so a restarted rejectod resumes incremental stepping instead of
// re-detecting the whole journal. Export with Engine.ExportMemo, serialize
// with EncodeMemo/DecodeMemo, and rehydrate a fresh engine with
// Engine.ImportMemo.
type MemoState struct {
	Intervals []IntervalMemo
}

// IntervalMemo is the memo of one time interval, mirroring the engine's
// internal intervalState field for field.
type IntervalMemo struct {
	Interval int
	// Reqs is the interval's full request shard in log order — the input a
	// cold rebuild folds from.
	Reqs []core.TimedRequest
	// PendNodes/PendF/PendR are additions not yet spliced into Frozen.
	// Empty on memos exported after a completed Step.
	PendNodes    int
	PendF, PendR [][2]graph.NodeID
	// Frozen is the interval's canonical snapshot (base + Reqs), nil if the
	// interval was never materialized.
	Frozen *graph.Frozen
	// HasDet marks Det as valid; Warm carries the next epoch's hints.
	HasDet bool
	Det    core.Detection
	Warm   *core.WarmStart
	// Stale marks a detection out of date w.r.t. Frozen (an interrupted
	// Step); the first Step after import re-detects it.
	Stale bool
}

// ExportMemo copies the engine's memo into a MemoState. The export aliases
// the engine's slices and snapshots — it is a consistent view only until
// the next Step, which is exactly the window rejectod serializes it in
// (both happen on the detector goroutine).
//
// Engines whose base graph grew via deltas (NewNodes or base edges) refuse
// to export: persisted memos are validated against the base the restarted
// process loads, and base growth would make the two silently diverge. The
// rejectod server never grows its base.
func (e *Engine) ExportMemo() (*MemoState, error) {
	if e.ownsBase {
		return nil, fmt.Errorf("incr: memo export with base-level growth is not supported")
	}
	st := &MemoState{Intervals: make([]IntervalMemo, 0, len(e.order))}
	for _, iv := range e.order {
		s := e.intervals[iv]
		st.Intervals = append(st.Intervals, IntervalMemo{
			Interval:  iv,
			Reqs:      s.reqs,
			PendNodes: s.pendNodes,
			PendF:     s.pendF,
			PendR:     s.pendR,
			Frozen:    s.frozen,
			HasDet:    s.hasDet,
			Det:       s.det,
			Warm:      s.warm,
			Stale:     s.stale,
		})
	}
	return st, nil
}

// ImportMemo rehydrates a fresh engine from a persisted memo. The engine
// must not have stepped yet, and every memoized snapshot must match the
// configured base's node count — a restart against a different base graph
// is a configuration error, not a silent re-detection.
//
// After a successful import, Step behaves exactly as it would on the
// engine that exported the memo: clean intervals are reused, stale or
// pending ones are re-detected, and the next delta is folded on top.
func (e *Engine) ImportMemo(st *MemoState) error {
	if len(e.intervals) > 0 {
		return fmt.Errorf("incr: memo import into an engine that already has state")
	}
	if e.ownsBase {
		return fmt.Errorf("incr: memo import after base-level growth")
	}
	n := e.base.NumNodes()
	seen := make(map[int]bool, len(st.Intervals))
	for _, m := range st.Intervals {
		if seen[m.Interval] {
			return fmt.Errorf("incr: memo lists interval %d twice", m.Interval)
		}
		seen[m.Interval] = true
		if m.Frozen != nil && m.Frozen.NumNodes() != n {
			return fmt.Errorf("incr: memo interval %d snapshot has %d nodes, the configured base has %d",
				m.Interval, m.Frozen.NumNodes(), n)
		}
		for _, req := range m.Reqs {
			if req.From < 0 || int(req.From) >= n || req.To < 0 || int(req.To) >= n {
				return fmt.Errorf("incr: memo interval %d request %d→%d outside the %d-node base",
					m.Interval, req.From, req.To, n)
			}
		}
	}
	for _, m := range st.Intervals {
		e.intervals[m.Interval] = &intervalState{
			reqs:      m.Reqs,
			pendNodes: m.PendNodes,
			pendF:     m.PendF,
			pendR:     m.PendR,
			frozen:    m.Frozen,
			det:       m.Det,
			hasDet:    m.HasDet,
			warm:      m.Warm,
			stale:     m.Stale,
		}
		e.order = append(e.order, m.Interval)
	}
	sort.Ints(e.order)
	return nil
}
