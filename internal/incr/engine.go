package incr

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Config parameterizes an Engine.
type Config struct {
	// Base is the pre-existing friendship base every interval overlays its
	// requests on, exactly as in core.DetectSharded. Required. The engine
	// does not mutate it unless a Delta carries base-level growth, in which
	// case it switches to a private clone first.
	Base *graph.Graph

	// Detector configures each interval's detection; at least one
	// termination condition must be set. Cancel interrupts Step between
	// rounds with core.ErrInterrupted.
	Detector core.DetectorOptions

	// MaxPatchFraction is the delta-to-graph edge ratio above which an
	// interval snapshot is rebuilt cold instead of patched. Zero means
	// DefaultMaxPatchFraction; negative disables patching entirely.
	MaxPatchFraction float64

	// DisableWarm makes every detection solve cold, turning Step into a
	// memoized core.DetectSharded: same suspect sets, byte for byte.
	// With warm starting on, rounds are seeded from the previous epoch's
	// cut and quality-gated (see core.DetectWarm).
	DisableWarm bool

	// Tracer observes incr.patch spans and the detection's pipeline
	// events (used when Detector carries no tracer of its own). nil
	// disables tracing.
	Tracer obs.Tracer
}

// StepStats describes how one Engine.Step advanced the epoch.
type StepStats struct {
	// Intervals is the number of interval detections in the returned set;
	// Patched/ColdBuilt/Reused break down how each interval got there
	// (patched snapshot + re-detect, cold rebuild + re-detect, or the
	// previous result served unchanged). Intervals without rejections are
	// skipped and appear in no bucket, matching core.DetectSharded.
	Intervals int
	Patched   int
	ColdBuilt int
	Reused    int
	// WarmRounds/Fallbacks/ColdRounds aggregate the per-detection
	// core.WarmReport across all re-detected intervals.
	WarmRounds int
	Fallbacks  int
	ColdRounds int
	// PatchDur is the wall-clock spent building interval snapshots
	// (patched or cold); SolveDur the wall-clock spent in detection.
	PatchDur time.Duration
	SolveDur time.Duration
}

// intervalState is the engine's memo for one time interval.
type intervalState struct {
	reqs         []core.TimedRequest // the interval's full shard, log order
	pendF, pendR [][2]graph.NodeID   // edges awaiting splice into frozen
	pendNodes    int
	frozen       *graph.Frozen // canonical snapshot of base + reqs
	det          core.Detection
	hasDet       bool
	warm         *core.WarmStart
	stale        bool // detection out of date w.r.t. frozen
}

// Engine incrementally maintains the per-interval detections of
// core.DetectSharded across a growing journal. Feed each journal delta to
// Step; it returns the full detection set (ascending by interval), reusing
// every interval the delta did not touch. Engine is not safe for
// concurrent use — rejectod drives it from its single detector goroutine.
type Engine struct {
	cfg       Config
	base      *graph.Graph
	ownsBase  bool
	intervals map[int]*intervalState
	order     []int // sorted keys of intervals
}

// NewEngine builds an Engine over the given base graph with no journal
// state; the first Step's delta typically carries the whole recovered
// journal and runs every interval cold.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("incr: Config.Base is required")
	}
	if cfg.Detector.TargetCount <= 0 && cfg.Detector.AcceptanceThreshold <= 0 {
		return nil, fmt.Errorf("incr: Detector needs TargetCount or AcceptanceThreshold")
	}
	if cfg.MaxPatchFraction == 0 {
		cfg.MaxPatchFraction = DefaultMaxPatchFraction
	}
	return &Engine{
		cfg:       cfg,
		base:      cfg.Base,
		intervals: make(map[int]*intervalState),
	}, nil
}

// mutableBase returns a base the engine may mutate, cloning the caller's
// graph on first base-level growth.
func (e *Engine) mutableBase() *graph.Graph {
	if !e.ownsBase {
		e.base = e.base.Clone()
		e.ownsBase = true
	}
	return e.base
}

// Step folds one delta into the engine's state and returns the detection
// set over the accumulated journal, ascending by interval — the same
// []core.IntervalDetection core.DetectSharded would return for it (exactly
// so with DisableWarm, quality-gated-equivalent otherwise).
//
// The delta is consumed before any detection runs, so an interrupted Step
// (core.ErrInterrupted, via Detector.Cancel) loses no state: the returned
// prefix mirrors DetectSharded's interrupted prefix, and the next Step
// re-detects the remaining stale intervals. Any other error leaves the
// delta consumed but the previous detections intact.
func (e *Engine) Step(d Delta) ([]core.IntervalDetection, StepStats, error) {
	var stats StepStats

	// Validate against the post-delta node count before consuming
	// anything, mirroring DetectSharded's up-front request check.
	n := e.base.NumNodes() + d.NewNodes
	for _, ed := range d.Friendships {
		if err := checkEdge(ed, n, "friendship"); err != nil {
			return nil, stats, err
		}
	}
	for _, ed := range d.Rejections {
		if err := checkEdge(ed, n, "rejection"); err != nil {
			return nil, stats, err
		}
	}
	for _, req := range d.Requests {
		if req.From < 0 || int(req.From) >= n || req.To < 0 || int(req.To) >= n {
			return nil, stats, fmt.Errorf("incr: request %d→%d outside the %d-node graph", req.From, req.To, n)
		}
	}

	// Phase 1 — consume the delta. Base-level growth dirties every
	// interval (each overlays on the base); request appends dirty only
	// their own interval.
	if d.NewNodes > 0 || len(d.Friendships) > 0 || len(d.Rejections) > 0 {
		b := e.mutableBase()
		b.AddNodes(d.NewNodes)
		for _, ed := range d.Friendships {
			b.AddFriendship(ed.From, ed.To)
		}
		for _, ed := range d.Rejections {
			b.AddRejection(ed.From, ed.To)
		}
		for _, st := range e.intervals {
			st.pendNodes += d.NewNodes
			for _, ed := range d.Friendships {
				st.pendF = append(st.pendF, [2]graph.NodeID{ed.From, ed.To})
			}
			for _, ed := range d.Rejections {
				st.pendR = append(st.pendR, [2]graph.NodeID{ed.From, ed.To})
			}
			st.stale = true
		}
	}
	for _, req := range d.Requests {
		st := e.intervals[req.Interval]
		if st == nil {
			st = &intervalState{}
			e.intervals[req.Interval] = st
			e.order = append(e.order, req.Interval)
			sort.Ints(e.order)
		}
		st.reqs = append(st.reqs, req)
		if req.From != req.To { // self-requests carry no edge (DetectSharded overlay)
			if req.Accepted {
				st.pendF = append(st.pendF, [2]graph.NodeID{req.From, req.To})
			} else {
				st.pendR = append(st.pendR, [2]graph.NodeID{req.To, req.From})
			}
		}
		st.stale = true
	}

	// Phase 2 — advance each interval, ascending, reusing untouched ones.
	out := make([]core.IntervalDetection, 0, len(e.order))
	for _, iv := range e.order {
		st := e.intervals[iv]
		if st.frozen == nil || st.pendNodes > 0 || len(st.pendF)+len(st.pendR) > 0 {
			e.refreshSnapshot(iv, st, &stats)
		}
		if st.frozen.NumRejections() == 0 {
			// Nothing to detect, matching DetectSharded's skip; the
			// snapshot is current, so the interval is clean until new
			// requests arrive.
			st.stale = false
			continue
		}
		if !st.stale {
			if st.hasDet {
				obs.Incr.ReusedIntervals.Add(1)
				stats.Reused++
				out = append(out, core.IntervalDetection{Interval: iv, Detection: st.det})
			}
			continue
		}

		var warm *core.WarmStart
		if !e.cfg.DisableWarm && st.hasDet {
			warm = st.warm
		}
		opts := e.cfg.Detector
		if opts.Tracer == nil {
			opts.Tracer = e.cfg.Tracer
		}
		solveStart := time.Now()
		det, rep, err := core.DetectWarm(st.frozen, opts, warm)
		stats.SolveDur += time.Since(solveStart)
		stats.WarmRounds += rep.WarmRounds
		stats.Fallbacks += rep.Fallbacks
		stats.ColdRounds += rep.ColdRounds
		if errors.Is(err, core.ErrInterrupted) {
			// Keep the completed prefix plus this interval's partial
			// rounds, like DetectSharded; the interval stays stale and is
			// re-detected by the next Step.
			out = append(out, core.IntervalDetection{Interval: iv, Detection: det})
			stats.Intervals = len(out)
			return out, stats, core.ErrInterrupted
		}
		if err != nil {
			return nil, stats, fmt.Errorf("incr: interval %d: %w", iv, err)
		}
		st.det, st.hasDet = det, true
		st.warm = core.WarmFromDetection(det, st.frozen.NumNodes())
		st.stale = false
		out = append(out, core.IntervalDetection{Interval: iv, Detection: det})
	}
	stats.Intervals = len(out)
	return out, stats, nil
}

// refreshSnapshot brings one interval's frozen snapshot up to date with
// its pending additions: a splice of the previous snapshot when the delta
// is a small enough fraction of it, a cold rebuild from the base otherwise.
// Both paths produce byte-identical snapshots (graph.SpliceCanonical's
// contract), so the choice is purely a performance one.
func (e *Engine) refreshSnapshot(iv int, st *intervalState, stats *StepStats) {
	start := time.Now()
	cold := st.frozen == nil || e.cfg.MaxPatchFraction < 0 ||
		float64(len(st.pendF)+len(st.pendR)) >
			e.cfg.MaxPatchFraction*float64(st.frozen.NumFriendships()+st.frozen.NumRejections())
	if cold {
		aug := e.base.Clone()
		for _, req := range st.reqs {
			if req.From == req.To {
				continue
			}
			if req.Accepted {
				aug.AddFriendship(req.From, req.To)
			} else {
				aug.AddRejection(req.To, req.From)
			}
		}
		aug.Canonicalize()
		st.frozen = aug.Freeze()
		obs.Incr.ColdBuilds.Add(1)
		stats.ColdBuilt++
	} else {
		st.frozen = st.frozen.SpliceCanonical(st.pendNodes, st.pendF, st.pendR)
		obs.Incr.Patches.Add(1)
		stats.Patched++
	}
	st.pendF, st.pendR, st.pendNodes = nil, nil, 0

	dur := time.Since(start)
	stats.PatchDur += dur
	ms := float64(dur) / float64(time.Millisecond)
	obs.Incr.PatchMS.Add(ms)
	obs.Incr.LastPatchMS.Set(ms)
	if e.cfg.Tracer != nil {
		detail := fmt.Sprintf("interval %d", iv)
		if cold {
			detail += " cold"
		}
		e.cfg.Tracer.Emit(obs.Event{
			Name: obs.EvIncrPatch, Wall: time.Now(), Dur: dur,
			Nodes:       st.frozen.NumNodes(),
			Friendships: st.frozen.NumFriendships(),
			Rejections:  st.frozen.NumRejections(),
			Detail:      detail,
		})
	}
}

func checkEdge(ed Edge, n int, kind string) error {
	if ed.From < 0 || int(ed.From) >= n || ed.To < 0 || int(ed.To) >= n {
		return fmt.Errorf("incr: %s %d→%d outside the %d-node graph", kind, ed.From, ed.To, n)
	}
	return nil
}
