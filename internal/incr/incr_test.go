package incr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

// randomBase builds a friendship-only base graph: a ring with random
// chords, the §VII deployment's pre-existing social graph.
func randomBase(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddFriendship(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	for i := 0; i < n; i++ {
		u, v := r.IntN(n), r.IntN(n)
		if u != v {
			g.AddFriendship(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// randomRequests draws count answered requests over nNodes and maxIv
// intervals. Spammy senders (top decile of IDs) are rejected often, so
// detections have something to find.
func randomRequests(r *rand.Rand, nNodes, count, maxIv int) []core.TimedRequest {
	reqs := make([]core.TimedRequest, 0, count)
	for i := 0; i < count; i++ {
		from := graph.NodeID(r.IntN(nNodes))
		to := graph.NodeID(r.IntN(nNodes))
		if from == to {
			continue
		}
		rejOdds := 0.25
		if int(from) >= nNodes*9/10 {
			rejOdds = 0.8
		}
		reqs = append(reqs, core.TimedRequest{
			From: from, To: to,
			Accepted: r.Float64() >= rejOdds,
			Interval: r.IntN(maxIv),
		})
	}
	return reqs
}

// coldModel folds base + requests the way rejectod's read model does and
// freezes canonically — the reference Patch must hit byte for byte.
func coldModel(base *graph.Graph, newNodes int, reqs []core.TimedRequest) *graph.Frozen {
	aug := base.Clone()
	aug.AddNodes(newNodes)
	for _, req := range reqs {
		if req.From == req.To {
			continue
		}
		if req.Accepted {
			aug.AddFriendship(req.From, req.To)
		} else {
			aug.AddRejection(req.To, req.From)
		}
	}
	return aug.FreezeCanonical()
}

// TestPatchByteIdentity is the tentpole property: over hundreds of random
// delta sequences, chaining Patch over the previous snapshot equals a cold
// FreezeCanonical of the fully folded log — CSR arrays compared directly —
// at every step of the chain.
func TestPatchByteIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		n := 10 + r.IntN(40)
		base := randomBase(r, n)
		snap := base.FreezeCanonical()
		var all []core.TimedRequest
		newNodes := 0
		for step := 0; step < 1+r.IntN(4); step++ {
			var d Delta
			if r.IntN(4) == 0 {
				d.NewNodes = r.IntN(3)
			}
			for _, req := range randomRequests(r, n+newNodes+d.NewNodes, 1+r.IntN(25), 3) {
				d.AddRequest(req)
			}
			snap = Patch(snap, d)
			all = append(all, d.Requests...)
			newNodes += d.NewNodes
			if !snap.Equal(coldModel(base, newNodes, all)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 220}); err != nil {
		t.Fatal(err)
	}
}

func testOpts() core.DetectorOptions {
	return core.DetectorOptions{
		Cut:                 core.CutOptions{RandSeed: 7, Parallelism: 2},
		AcceptanceThreshold: 0.6,
		MaxRounds:           4,
	}
}

// sameDetections asserts two interval-detection sets are identical —
// intervals, rounds, group membership and scores, suspect order.
func sameDetections(t *testing.T, got, want []core.IntervalDetection, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d intervals, want %d", what, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Interval != w.Interval {
			t.Fatalf("%s: interval %d vs %d at %d", what, g.Interval, w.Interval, i)
		}
		if g.Detection.Rounds != w.Detection.Rounds || len(g.Detection.Groups) != len(w.Detection.Groups) {
			t.Fatalf("%s: interval %d shape differs", what, g.Interval)
		}
		for j := range g.Detection.Groups {
			gg, wg := g.Detection.Groups[j], w.Detection.Groups[j]
			if gg.Acceptance != wg.Acceptance || gg.K != wg.K || len(gg.Members) != len(wg.Members) {
				t.Fatalf("%s: interval %d group %d differs", what, g.Interval, j)
			}
			for m := range gg.Members {
				if gg.Members[m] != wg.Members[m] {
					t.Fatalf("%s: interval %d group %d member %d differs", what, g.Interval, j, m)
				}
			}
		}
		for j := range g.Detection.Suspects {
			if g.Detection.Suspects[j] != w.Detection.Suspects[j] {
				t.Fatalf("%s: interval %d suspect %d differs", what, g.Interval, j)
			}
		}
	}
}

// TestEngineEquivalentToDetectSharded: with warm starting off, every Step
// over a random delta sequence must report exactly what a from-scratch
// core.DetectSharded over the accumulated journal reports.
func TestEngineEquivalentToDetectSharded(t *testing.T) {
	opts := testOpts()
	for seed := uint64(0); seed < 25; seed++ {
		r := rand.New(rand.NewPCG(seed, 31))
		n := 20 + r.IntN(40)
		base := randomBase(r, n)
		eng, err := NewEngine(Config{Base: base, Detector: opts, DisableWarm: true})
		if err != nil {
			t.Fatal(err)
		}
		var all []core.TimedRequest
		for step := 0; step < 1+r.IntN(4); step++ {
			var d Delta
			for _, req := range randomRequests(r, n, 1+r.IntN(40), 4) {
				d.AddRequest(req)
			}
			got, _, err := eng.Step(d)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			all = append(all, d.Requests...)
			want, err := core.DetectSharded(base, all, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameDetections(t, got, want, "incremental diverged from batch")
		}
	}
}

// TestEngineSnapshotsByteIdentical (white-box): after a sequence of Steps,
// every interval's live snapshot equals the cold canonical build of its
// shard — the patched path never drifts.
func TestEngineSnapshotsByteIdentical(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 33))
	const n = 40
	base := randomBase(r, n)
	eng, err := NewEngine(Config{Base: base, Detector: testOpts(), DisableWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	shards := make(map[int][]core.TimedRequest)
	for step := 0; step < 5; step++ {
		var d Delta
		for _, req := range randomRequests(r, n, 30, 3) {
			d.AddRequest(req)
		}
		if _, _, err := eng.Step(d); err != nil {
			t.Fatal(err)
		}
		for _, req := range d.Requests {
			shards[req.Interval] = append(shards[req.Interval], req)
		}
	}
	for iv, st := range eng.intervals {
		if !st.frozen.Equal(coldModel(base, 0, shards[iv])) {
			t.Fatalf("interval %d snapshot diverged from cold build", iv)
		}
	}
}

// TestEngineReusesUntouchedIntervals: a delta confined to one interval
// must leave every other interval's detection served from memo, with the
// touched one patched, not cold-rebuilt.
func TestEngineReusesUntouchedIntervals(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 44))
	const n = 60
	base := randomBase(r, n)
	eng, err := NewEngine(Config{Base: base, Detector: testOpts(), DisableWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	var seedDelta Delta
	for _, req := range randomRequests(r, n, 400, 5) {
		seedDelta.AddRequest(req)
	}
	first, stats, err := eng.Step(seedDelta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdBuilt != 5 || stats.Reused != 0 {
		t.Fatalf("first step: %d cold builds, %d reused; want 5, 0", stats.ColdBuilt, stats.Reused)
	}

	var d Delta
	for _, req := range randomRequests(r, n, 8, 5) {
		req.Interval = 2
		d.AddRequest(req)
	}
	second, stats, err := eng.Step(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Patched != 1 || stats.ColdBuilt != 0 {
		t.Fatalf("delta step: %d patched, %d cold; want 1, 0", stats.Patched, stats.ColdBuilt)
	}
	if stats.Reused != len(first)-1 {
		t.Fatalf("delta step reused %d intervals, want %d", stats.Reused, len(first)-1)
	}
	for i, det := range second {
		if det.Interval == 2 {
			continue
		}
		sameDetections(t, []core.IntervalDetection{det}, []core.IntervalDetection{first[i]},
			"untouched interval changed")
	}
}

// TestEngineColdFallbackOnLargeDelta: a delta larger than MaxPatchFraction
// of the interval's graph must rebuild cold, and the results must still
// match the batch engine.
func TestEngineColdFallbackOnLargeDelta(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 55))
	const n = 50
	base := randomBase(r, n)
	opts := testOpts()
	eng, err := NewEngine(Config{Base: base, Detector: opts, DisableWarm: true, MaxPatchFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var first Delta
	for _, req := range randomRequests(r, n, 60, 1) {
		first.AddRequest(req)
	}
	if _, _, err := eng.Step(first); err != nil {
		t.Fatal(err)
	}
	// A second delta of comparable size to the shard blows the 5% budget.
	var big Delta
	for _, req := range randomRequests(r, n, 60, 1) {
		big.AddRequest(req)
	}
	got, stats, err := eng.Step(big)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdBuilt != 1 || stats.Patched != 0 {
		t.Fatalf("large delta: %d cold, %d patched; want 1, 0", stats.ColdBuilt, stats.Patched)
	}
	all := append(append([]core.TimedRequest{}, first.Requests...), big.Requests...)
	want, err := core.DetectSharded(base, all, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, got, want, "cold fallback diverged from batch")
}

// TestEngineWarmStepMatchesBatch: with warm starting ON, a small-delta
// step must consult its hints (warm rounds or gated fallbacks, not plain
// cold rounds) and still report the batch engine's suspect sets on this
// pinned scenario.
func TestEngineWarmStepMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 66))
	const n = 60
	base := randomBase(r, n)
	opts := testOpts()
	eng, err := NewEngine(Config{Base: base, Detector: opts})
	if err != nil {
		t.Fatal(err)
	}
	var seedDelta Delta
	for _, req := range randomRequests(r, n, 300, 2) {
		seedDelta.AddRequest(req)
	}
	if _, _, err := eng.Step(seedDelta); err != nil {
		t.Fatal(err)
	}

	var d Delta
	for _, req := range randomRequests(r, n, 6, 2) {
		d.AddRequest(req)
	}
	got, stats, err := eng.Step(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmRounds+stats.Fallbacks == 0 {
		t.Fatal("warm step consulted no hints")
	}
	all := append(append([]core.TimedRequest{}, seedDelta.Requests...), d.Requests...)
	want, err := core.DetectSharded(base, all, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d intervals, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i].Detection.Suspects, want[i].Detection.Suspects
		if len(g) != len(w) {
			t.Fatalf("interval %d: %d suspects warm, %d batch", got[i].Interval, len(g), len(w))
		}
		seen := make(map[graph.NodeID]bool, len(g))
		for _, u := range g {
			seen[u] = true
		}
		for _, u := range w {
			if !seen[u] {
				t.Fatalf("interval %d: batch suspect %d missing from warm set", got[i].Interval, u)
			}
		}
	}
}

// TestEngineInterrupted: cancellation surfaces core.ErrInterrupted with
// the completed prefix, and the next Step finishes the remaining stale
// intervals without losing the consumed delta.
func TestEngineInterrupted(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 77))
	const n = 40
	base := randomBase(r, n)
	opts := testOpts()
	cancel := make(chan struct{})
	close(cancel)
	opts.Cancel = cancel
	eng, err := NewEngine(Config{Base: base, Detector: opts, DisableWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	var d Delta
	for _, req := range randomRequests(r, n, 100, 3) {
		d.AddRequest(req)
	}
	out, _, err := eng.Step(d)
	if err != core.ErrInterrupted {
		t.Fatalf("Step under cancellation: %v", err)
	}
	if len(out) != 1 || out[0].Detection.Rounds != 0 {
		t.Fatalf("interrupted prefix: %d intervals", len(out))
	}

	// Resume: a fresh engine option set without the tripped Cancel.
	eng.cfg.Detector.Cancel = nil
	got, stats, err := eng.Step(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	// Intervals 1 and 2 never got snapshots before the interrupt, so they
	// cold-build now; interval 0's snapshot was already current and must
	// not be rebuilt or re-patched.
	if stats.ColdBuilt != 2 || stats.Patched != 0 {
		t.Fatalf("resume: %d cold, %d patched; want 2, 0", stats.ColdBuilt, stats.Patched)
	}
	want, err := core.DetectSharded(base, d.Requests, eng.cfg.Detector)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, got, want, "post-interrupt resume diverged from batch")
}

// TestEngineValidation: malformed deltas are rejected before any state
// changes.
func TestEngineValidation(t *testing.T) {
	base := randomBase(rand.New(rand.NewPCG(8, 88)), 10)
	if _, err := NewEngine(Config{Detector: testOpts()}); err == nil {
		t.Fatal("NewEngine without base accepted")
	}
	if _, err := NewEngine(Config{Base: base}); err == nil {
		t.Fatal("NewEngine without termination condition accepted")
	}
	eng, err := NewEngine(Config{Base: base, Detector: testOpts()})
	if err != nil {
		t.Fatal(err)
	}
	var d Delta
	d.AddRequest(core.TimedRequest{From: 3, To: 99})
	if _, _, err := eng.Step(d); err == nil {
		t.Fatal("out-of-range request accepted")
	}
	if len(eng.intervals) != 0 {
		t.Fatal("rejected delta mutated engine state")
	}
}

// TestDeltaHelpers covers the accumulator's small API surface.
func TestDeltaHelpers(t *testing.T) {
	var d Delta
	if !d.Empty() {
		t.Fatal("zero delta not empty")
	}
	d.AddRequest(core.TimedRequest{From: 1, To: 2, Accepted: true, Interval: 0})
	d.AddRequest(core.TimedRequest{From: 2, To: 3, Interval: 1})
	d.AddRequest(core.TimedRequest{From: 4, To: 4, Interval: 1}) // self: no edge
	var o Delta
	o.NewNodes = 2
	o.Friendships = []Edge{{From: 0, To: 1}}
	o.Rejections = []Edge{{From: 1, To: 2}}
	d.Merge(o)
	if d.Empty() || d.NewNodes != 2 || len(d.Requests) != 3 {
		t.Fatalf("merge lost state: %+v", d)
	}
	if got := d.EdgeCount(); got != 4 {
		t.Fatalf("EdgeCount = %d, want 4", got)
	}
	fr, rj := d.Edges()
	if len(fr) != 2 || len(rj) != 2 {
		t.Fatalf("Edges: %d friendships, %d rejections; want 2, 2", len(fr), len(rj))
	}
	if fr[0] != [2]graph.NodeID{0, 1} || rj[1] != [2]graph.NodeID{3, 2} {
		t.Fatalf("Edges misordered: %v %v", fr, rj)
	}
}
