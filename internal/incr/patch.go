package incr

import "repro/internal/graph"

// DefaultMaxPatchFraction is the delta-to-graph edge ratio above which the
// engine rebuilds a snapshot cold instead of patching: splicing walks the
// full CSR arrays once regardless of delta size, but its per-edge merge
// work and the patch's usefulness as a "small change" both degrade as the
// delta approaches the graph itself.
const DefaultMaxPatchFraction = 0.25

// Patch splices the delta's edges (base edges plus request-derived edges,
// see Delta.Edges) and new nodes into the canonical snapshot prev. The
// result is byte-identical to FreezeCanonical of the equivalent mutable
// graph with the delta folded in — the property the package's tests assert
// over hundreds of random delta sequences.
func Patch(prev *graph.Frozen, d Delta) *graph.Frozen {
	friendships, rejections := d.Edges()
	return prev.SpliceCanonical(d.NewNodes, friendships, rejections)
}

// ShouldPatch reports whether d is small enough, relative to prev, to
// splice rather than rebuild cold. maxFraction ≤ 0 means
// DefaultMaxPatchFraction. A nil prev always rebuilds.
func ShouldPatch(prev *graph.Frozen, d Delta, maxFraction float64) bool {
	if prev == nil {
		return false
	}
	if maxFraction <= 0 {
		maxFraction = DefaultMaxPatchFraction
	}
	existing := prev.NumFriendships() + prev.NumRejections()
	return float64(d.EdgeCount()) <= maxFraction*float64(existing)
}
