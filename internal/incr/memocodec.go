package incr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// Binary codec for MemoState, the memo section of a storage snapshot file.
// The encoding is deliberately exact about slice nil-ness: a nil Suspects
// list and an empty one marshal to different JSON ("null" vs "[]"), and the
// recovery correctness bar is byte-identical epochs — so every list is
// length-prefixed with 0 = nil and n+1 = length n, and float64s round-trip
// through their IEEE bits.
//
// Layout: magic "REJMEMO1", version uint32, interval count uint32, then per
// interval the fields of IntervalMemo (frozen snapshots nested in the
// graphio frozen format). Integrity is the enclosing snapshot file's
// CRC32C; this codec only validates structure.

var memoMagic = [8]byte{'R', 'E', 'J', 'M', 'E', 'M', 'O', '1'}

const memoVersion = 1

type memoWriter struct {
	w   *bufio.Writer
	err error
}

func (m *memoWriter) bytes(b []byte) {
	if m.err == nil {
		_, m.err = m.w.Write(b)
	}
}

func (m *memoWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.bytes(b[:])
}

func (m *memoWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.bytes(b[:])
}

func (m *memoWriter) f64(v float64) { m.u64(math.Float64bits(v)) }

func (m *memoWriter) bool(v bool) {
	if v {
		m.bytes([]byte{1})
	} else {
		m.bytes([]byte{0})
	}
}

// list writes the nil-preserving length prefix: 0 = nil, n+1 = length n.
func (m *memoWriter) list(n int, nil_ bool) {
	if nil_ {
		m.u32(0)
	} else {
		m.u32(uint32(n) + 1)
	}
}

func (m *memoWriter) ids(ids []graph.NodeID) {
	m.list(len(ids), ids == nil)
	for _, id := range ids {
		m.u32(uint32(id))
	}
}

func (m *memoWriter) pairs(ps [][2]graph.NodeID) {
	m.list(len(ps), ps == nil)
	for _, p := range ps {
		m.u32(uint32(p[0]))
		m.u32(uint32(p[1]))
	}
}

// EncodeMemo serializes st.
func EncodeMemo(w io.Writer, st *MemoState) error {
	mw := &memoWriter{w: bufio.NewWriterSize(w, 1<<20)}
	mw.bytes(memoMagic[:])
	mw.u32(memoVersion)
	mw.u32(uint32(len(st.Intervals)))
	var rec [graphio.RequestRecordSize]byte
	for _, iv := range st.Intervals {
		mw.u32(uint32(int32(iv.Interval)))
		mw.bool(iv.Stale)
		mw.bool(iv.HasDet)
		mw.bool(iv.Frozen != nil)
		mw.bool(iv.Warm != nil)
		mw.u32(uint32(iv.PendNodes))
		mw.list(len(iv.Reqs), iv.Reqs == nil)
		for _, req := range iv.Reqs {
			graphio.PutRequest(rec[:], req)
			mw.bytes(rec[:])
		}
		mw.pairs(iv.PendF)
		mw.pairs(iv.PendR)
		if iv.Frozen != nil {
			if mw.err == nil {
				mw.err = graphio.WriteFrozen(mw.w, iv.Frozen)
			}
		}
		if iv.HasDet {
			mw.u32(uint32(iv.Det.Rounds))
			mw.ids(iv.Det.Suspects)
			mw.list(len(iv.Det.Groups), iv.Det.Groups == nil)
			for _, g := range iv.Det.Groups {
				mw.ids(g.Members)
				mw.f64(g.Acceptance)
				mw.f64(g.K)
				mw.u32(uint32(g.Round))
			}
		}
		if iv.Warm != nil {
			mw.u32(uint32(iv.Warm.PrevNodes))
			mw.list(len(iv.Warm.Rounds), iv.Warm.Rounds == nil)
			for _, r := range iv.Warm.Rounds {
				mw.ids(r.Suspects)
				mw.f64(r.Acceptance)
			}
		}
	}
	if mw.err != nil {
		return mw.err
	}
	return mw.w.Flush()
}

type memoReader struct {
	r   *bufio.Reader
	err error
}

func (m *memoReader) bytes(b []byte) {
	if m.err == nil {
		_, m.err = io.ReadFull(m.r, b)
	}
}

func (m *memoReader) u32() uint32 {
	var b [4]byte
	m.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (m *memoReader) u64() uint64 {
	var b [8]byte
	m.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (m *memoReader) f64() float64 { return math.Float64frombits(m.u64()) }

func (m *memoReader) bool() bool {
	var b [1]byte
	m.bytes(b[:])
	if b[0] > 1 && m.err == nil {
		m.err = fmt.Errorf("incr: memo bool byte %d", b[0])
	}
	return b[0] == 1
}

// list reads the nil-preserving length prefix and bounds it: memo lists are
// at most a few million entries, so a prefix above maxMemoList marks a
// corrupt or adversarial stream rather than a huge allocation.
const maxMemoList = 1 << 28

func (m *memoReader) list() (n int, isNil bool) {
	v := m.u32()
	if v == 0 {
		return 0, true
	}
	n = int(v - 1)
	if n > maxMemoList && m.err == nil {
		m.err = fmt.Errorf("incr: memo list length %d exceeds bound", n)
	}
	return n, false
}

func (m *memoReader) ids() []graph.NodeID {
	n, isNil := m.list()
	if isNil || m.err != nil {
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(m.u32())
	}
	return out
}

func (m *memoReader) pairs() [][2]graph.NodeID {
	n, isNil := m.list()
	if isNil || m.err != nil {
		return nil
	}
	out := make([][2]graph.NodeID, n)
	for i := range out {
		out[i][0] = graph.NodeID(m.u32())
		out[i][1] = graph.NodeID(m.u32())
	}
	return out
}

// DecodeMemo parses a serialized MemoState. Structural bounds are checked
// here; semantic validation (IDs inside the base, snapshot node counts)
// happens at Engine.ImportMemo.
func DecodeMemo(r io.Reader) (*MemoState, error) {
	mr := &memoReader{r: bufio.NewReaderSize(r, 1<<20)}
	var magic [8]byte
	mr.bytes(magic[:])
	if mr.err == nil && magic != memoMagic {
		return nil, fmt.Errorf("incr: bad memo magic %q", magic[:])
	}
	if v := mr.u32(); mr.err == nil && v != memoVersion {
		return nil, fmt.Errorf("incr: memo version %d, this build reads %d", v, memoVersion)
	}
	count := mr.u32()
	if mr.err == nil && count > maxMemoList {
		return nil, fmt.Errorf("incr: memo interval count %d exceeds bound", count)
	}
	st := &MemoState{}
	var rec [graphio.RequestRecordSize]byte
	for i := uint32(0); i < count && mr.err == nil; i++ {
		var iv IntervalMemo
		iv.Interval = int(int32(mr.u32()))
		iv.Stale = mr.bool()
		iv.HasDet = mr.bool()
		hasFrozen := mr.bool()
		hasWarm := mr.bool()
		iv.PendNodes = int(mr.u32())
		nReqs, reqsNil := mr.list()
		if !reqsNil && mr.err == nil {
			iv.Reqs = make([]core.TimedRequest, 0, nReqs)
			for j := 0; j < nReqs; j++ {
				mr.bytes(rec[:])
				if mr.err != nil {
					break
				}
				req, err := graphio.GetRequest(rec[:])
				if err != nil {
					mr.err = err
					break
				}
				iv.Reqs = append(iv.Reqs, req)
			}
		}
		iv.PendF = mr.pairs()
		iv.PendR = mr.pairs()
		if hasFrozen && mr.err == nil {
			f, err := graphio.ReadFrozen(mr.r)
			if err != nil {
				mr.err = err
			} else {
				iv.Frozen = f
			}
		}
		if iv.HasDet && mr.err == nil {
			iv.Det.Rounds = int(mr.u32())
			iv.Det.Suspects = mr.ids()
			nGroups, groupsNil := mr.list()
			if !groupsNil && mr.err == nil {
				iv.Det.Groups = make([]core.Group, 0, nGroups)
				for j := 0; j < nGroups && mr.err == nil; j++ {
					var g core.Group
					g.Members = mr.ids()
					g.Acceptance = mr.f64()
					g.K = mr.f64()
					g.Round = int(mr.u32())
					iv.Det.Groups = append(iv.Det.Groups, g)
				}
			}
		}
		if hasWarm && mr.err == nil {
			w := &core.WarmStart{PrevNodes: int(mr.u32())}
			nRounds, roundsNil := mr.list()
			if !roundsNil && mr.err == nil {
				w.Rounds = make([]core.WarmRound, 0, nRounds)
				for j := 0; j < nRounds && mr.err == nil; j++ {
					var r core.WarmRound
					r.Suspects = mr.ids()
					r.Acceptance = mr.f64()
					w.Rounds = append(w.Rounds, r)
				}
			}
			iv.Warm = w
		}
		if mr.err == nil {
			st.Intervals = append(st.Intervals, iv)
		}
	}
	if mr.err != nil {
		return nil, fmt.Errorf("incr: decoding memo: %w", mr.err)
	}
	return st, nil
}
