package incr

import (
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/core"
)

// allocBytes measures the heap bytes fn allocates, with the collector
// paused so concurrent sweeps cannot skew the reading.
func allocBytes(fn func()) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStepAllocationNotProportionalToLog: advancing an epoch over a small
// delta must not allocate like a from-scratch batch run over the whole
// journal — the point of keeping per-interval state alive. The incremental
// step touches one interval out of ten, so it should allocate well under
// half of what the batch fold-and-detect does; the 2× guard leaves room
// for noise while still failing if Step ever re-folds the log.
func TestStepAllocationNotProportionalToLog(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 99))
	const n = 200
	base := randomBase(r, n)
	opts := testOpts()
	opts.Cut.Parallelism = 1

	eng, err := NewEngine(Config{Base: base, Detector: opts, DisableWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	var seedDelta Delta
	for _, req := range randomRequests(r, n, 2000, 10) {
		seedDelta.AddRequest(req)
	}
	if _, _, err := eng.Step(seedDelta); err != nil {
		t.Fatal(err)
	}

	var d Delta
	for _, req := range randomRequests(r, n, 10, 10) {
		req.Interval = 0
		d.AddRequest(req)
	}
	all := append(append([]core.TimedRequest{}, seedDelta.Requests...), d.Requests...)

	stepBytes := allocBytes(func() {
		if _, _, err := eng.Step(d); err != nil {
			t.Error(err)
		}
	})
	batchBytes := allocBytes(func() {
		if _, err := core.DetectSharded(base, all, opts); err != nil {
			t.Error(err)
		}
	})
	if 2*stepBytes >= batchBytes {
		t.Fatalf("incremental step allocated %d bytes vs batch %d — not sublinear in the journal",
			stepBytes, batchBytes)
	}
}
