package incr

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// benchWorld is a primed-epoch scenario: a base graph, a journal spread
// over intervals, and a per-epoch delta generator producing the given
// fraction of the journal's requests, always landing in the last interval.
func benchWorld(deltaFrac float64) (base *graph.Graph, opts core.DetectorOptions, journalReqs []core.TimedRequest, makeDelta func(r *rand.Rand) Delta) {
	r := rand.New(rand.NewPCG(42, 1))
	const n, journal, intervals = 400, 8000, 8
	base = randomBase(r, n)
	opts = testOpts()
	journalReqs = randomRequests(r, n, journal, intervals)

	deltaSize := int(deltaFrac * float64(journal))
	if deltaSize < 1 {
		deltaSize = 1
	}
	makeDelta = func(r *rand.Rand) Delta {
		var d Delta
		for _, req := range randomRequests(r, n, deltaSize, intervals) {
			req.Interval = intervals - 1
			d.AddRequest(req)
		}
		return d
	}
	return base, opts, journalReqs, makeDelta
}

var benchFracs = []float64{0.001, 0.01, 0.1}

// BenchmarkEpochCold is the baseline: every epoch re-runs the batch
// engine over the full journal plus the accumulated deltas, the way
// rejectod's default mode does.
func BenchmarkEpochCold(b *testing.B) {
	for _, frac := range benchFracs {
		b.Run(fmt.Sprintf("delta=%g", frac), func(b *testing.B) {
			base, opts, journalReqs, makeDelta := benchWorld(frac)
			r := rand.New(rand.NewPCG(7, 2))
			reqs := append([]core.TimedRequest{}, journalReqs...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reqs = append(reqs, makeDelta(r).Requests...)
				if _, err := core.DetectSharded(base, reqs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEpochIncremental advances a primed engine by one delta per
// iteration. Warm-start outcomes are reported next to the timing, since a
// high fallback rate would mean the speedup comes with cold re-solves.
func BenchmarkEpochIncremental(b *testing.B) {
	for _, frac := range benchFracs {
		b.Run(fmt.Sprintf("delta=%g", frac), func(b *testing.B) {
			base, opts, journalReqs, makeDelta := benchWorld(frac)
			eng, err := NewEngine(Config{Base: base, Detector: opts})
			if err != nil {
				b.Fatal(err)
			}
			var prime Delta
			prime.Requests = journalReqs
			if _, _, err := eng.Step(prime); err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewPCG(7, 2))
			fallbacks, warm := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := eng.Step(makeDelta(r))
				if err != nil {
					b.Fatal(err)
				}
				fallbacks += stats.Fallbacks
				warm += stats.WarmRounds
			}
			b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/op")
			b.ReportMetric(float64(warm)/float64(b.N), "warmrounds/op")
		})
	}
}
