package incr

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

// stepDeltas drives an engine through a sequence of request batches,
// returning the last step's detections.
func stepDeltas(t *testing.T, e *Engine, batches [][]core.TimedRequest) []core.IntervalDetection {
	t.Helper()
	var dets []core.IntervalDetection
	for _, batch := range batches {
		var d Delta
		for _, req := range batch {
			d.AddRequest(req)
		}
		var err error
		dets, _, err = e.Step(d)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	return dets
}

// TestMemoExportImportResume is the restart property the storage engine
// depends on: an engine rehydrated from an exported memo must, over every
// subsequent delta, report detections byte-identical (JSON-marshalled) to
// the engine that never stopped.
func TestMemoExportImportResume(t *testing.T) {
	opts := testOpts()
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 71))
		n := 12 + r.IntN(30)
		base := randomBase(r, n)
		// Deterministic per-seed warm flag: all three engines must agree.
		warmOff := r.IntN(2) == 0
		mkCfg := func() *Engine {
			e, err := NewEngine(Config{Base: base, Detector: opts, DisableWarm: warmOff})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}

		var pre, post [][]core.TimedRequest
		for i := 0; i < 1+r.IntN(3); i++ {
			pre = append(pre, randomRequests(r, n, 5+r.IntN(20), 3))
		}
		for i := 0; i < 1+r.IntN(3); i++ {
			post = append(post, randomRequests(r, n, 5+r.IntN(20), 3))
		}

		continuous := mkCfg()
		stepDeltas(t, continuous, pre)
		memoSrc := mkCfg()
		stepDeltas(t, memoSrc, pre)
		memo, err := memoSrc.ExportMemo()
		if err != nil {
			t.Fatalf("ExportMemo: %v", err)
		}
		// Serialize through the binary codec, the path a restart takes.
		var buf bytes.Buffer
		if err := EncodeMemo(&buf, memo); err != nil {
			t.Fatalf("EncodeMemo: %v", err)
		}
		decoded, err := DecodeMemo(&buf)
		if err != nil {
			t.Fatalf("DecodeMemo: %v", err)
		}
		restarted := mkCfg()
		if err := restarted.ImportMemo(decoded); err != nil {
			t.Fatalf("ImportMemo: %v", err)
		}

		a := stepDeltas(t, continuous, post)
		b := stepDeltas(t, restarted, post)
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Logf("continuous: %s", ja)
			t.Logf("restarted:  %s", jb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoCodecPreservesNilness: the byte-identity bar requires nil and
// empty slices to survive the codec distinctly — they marshal to different
// JSON.
func TestMemoCodecPreservesNilness(t *testing.T) {
	st := &MemoState{Intervals: []IntervalMemo{
		{Interval: 0, Reqs: nil, HasDet: true, Det: core.Detection{Suspects: nil, Groups: nil}},
		{Interval: 1, Reqs: []core.TimedRequest{}, HasDet: true,
			Det: core.Detection{Suspects: []graph.NodeID{}, Groups: []core.Group{}}},
	}}
	var buf bytes.Buffer
	if err := EncodeMemo(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMemo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(st)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("memo round trip changed JSON:\n in  %s\n out %s", a, b)
	}
}

func TestImportMemoValidates(t *testing.T) {
	base := randomBase(rand.New(rand.NewPCG(1, 71)), 10)
	mk := func() *Engine {
		e, err := NewEngine(Config{Base: base, Detector: testOpts()})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if err := mk().ImportMemo(&MemoState{Intervals: []IntervalMemo{{Interval: 0}, {Interval: 0}}}); err == nil {
		t.Fatal("duplicate interval imported without error")
	}
	if err := mk().ImportMemo(&MemoState{Intervals: []IntervalMemo{
		{Interval: 0, Reqs: []core.TimedRequest{{From: 99, To: 1}}},
	}}); err == nil {
		t.Fatal("out-of-base request imported without error")
	}
	e := mk()
	var d Delta
	d.AddRequest(core.TimedRequest{From: 0, To: 1, Accepted: true, Interval: 0})
	if _, _, err := e.Step(d); err != nil {
		t.Fatal(err)
	}
	if err := e.ImportMemo(&MemoState{}); err == nil {
		t.Fatal("import into a stepped engine succeeded")
	}
}
