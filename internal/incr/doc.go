// Package incr is the incremental epoch engine: it keeps the per-interval
// detection state of core.DetectSharded alive between runs so that each new
// epoch pays for its delta, not for the whole journal.
//
// Three mechanisms compose:
//
//   - Delta capture. A Delta accumulates the journal's appended tail — new
//     answered requests per interval, plus (for non-server embeddings) base
//     graph growth — as a by-product of ingest, so no re-fold of the log is
//     needed to know what changed.
//
//   - Frozen-snapshot patching. Each interval's canonical CSR snapshot is
//     advanced by splicing the delta's edges into the previous snapshot
//     (graph.Frozen.SpliceCanonical), byte-identical to a cold
//     FreezeCanonical of the folded log; when a delta is too large a
//     fraction of the interval's graph, the engine falls back to the cold
//     rebuild automatically (Config.MaxPatchFraction).
//
//   - Warm-started detection. Each interval's sweep is seeded from the
//     previous epoch's converged cut via core.DetectWarm, quality-gated per
//     round: a warm round whose cut is worse than the previous epoch's is
//     re-solved cold (obs.EvIncrFallback), so warm starting never degrades
//     cut quality below the batch path's bar.
//
// With warm starting disabled, Engine.Step is equivalent to
// core.DetectSharded over the accumulated journal by construction: patched
// snapshots are byte-identical to the cold builds (property-tested in this
// package), untouched intervals reuse their deterministic results, and the
// interval iteration order and skip conditions replicate DetectSharded's.
// With warm starting enabled the suspect sets may differ only where several
// cuts tie at or below the previous epoch's acceptance bar.
package incr
