package gen

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// Collaboration generates a co-authorship-style graph as a union of team
// cliques, the generative model behind collaboration networks such as
// ca-HepTh and ca-AstroPh. Papers are added until the graph reaches
// targetEdges friendships (and every author has appeared): each paper
// selects a team and fully connects it.
//
// Team construction:
//   - The lead of each of the first n papers is a fresh author, so every
//     node joins the graph; later leads are chosen by preferential
//     attachment on paper participation.
//   - Each additional member repeats a previous co-authorship with
//     probability pRepeat (drawn from the current team's existing
//     co-authors, which overlaps cliques and drives clustering up), and is
//     otherwise chosen preferentially.
//
// teamMean is the mean team size (≥ 2); sizes follow 2 + Geometric.
func Collaboration(r *rand.Rand, n, targetEdges int, teamMean, pRepeat float64) *graph.Graph {
	if teamMean < 2 {
		panic("gen: Collaboration requires teamMean >= 2")
	}
	g := graph.New(n)
	if n < 2 {
		return g
	}
	// pGeo: success probability so that 2 + Geometric(pGeo) has mean teamMean.
	pGeo := 1 / (teamMean - 1)

	// participation is the repeated-endpoint list over paper memberships.
	participation := make([]graph.NodeID, 0, 4*n)
	introduced := 0

	team := make([]graph.NodeID, 0, 16)
	inTeam := make(map[graph.NodeID]bool, 16)

	for paper := 0; g.NumFriendships() < targetEdges || introduced < n; paper++ {
		size := 2
		for r.Float64() > pGeo {
			size++
		}
		if size > n {
			size = n
		}
		team = team[:0]
		clear(inTeam)

		// Lead author.
		var lead graph.NodeID
		if introduced < n {
			lead = graph.NodeID(introduced)
			introduced++
		} else {
			lead = participation[r.IntN(len(participation))]
		}
		team = append(team, lead)
		inTeam[lead] = true

		for attempts := 0; len(team) < size; attempts++ {
			if attempts > 10*size {
				break // accept a smaller team rather than spin
			}
			var cand graph.NodeID = -1
			if pRepeat > 0 && r.Float64() < pRepeat {
				// Repeat collaboration: a co-author of a current member.
				m := team[r.IntN(len(team))]
				if co := g.Friends(m); len(co) > 0 {
					cand = co[r.IntN(len(co))]
				}
			}
			if cand < 0 && len(participation) > 0 {
				cand = participation[r.IntN(len(participation))]
			}
			if (cand < 0 || inTeam[cand]) && introduced < n {
				// Pool exhausted or collision: bring in a fresh author.
				cand = graph.NodeID(introduced)
				introduced++
			}
			if cand < 0 || inTeam[cand] {
				continue
			}
			team = append(team, cand)
			inTeam[cand] = true
		}

		// Clique the team and record participations.
		for i, u := range team {
			participation = append(participation, u)
			for _, v := range team[i+1:] {
				g.AddFriendship(u, v)
			}
		}
	}
	return g
}
