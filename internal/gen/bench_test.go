package gen

import (
	"math/rand/v2"
	"testing"
)

func benchRand() *rand.Rand { return rand.New(rand.NewPCG(9, 9)) }

func BenchmarkBarabasiAlbert10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(benchRand(), 10000, 4)
	}
}

func BenchmarkHolmeKim10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HolmeKim(benchRand(), 10000, 4, 0.6)
	}
}

func BenchmarkForestFire10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForestFire(benchRand(), 10000, 0.35)
	}
}

func BenchmarkCollaboration10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Collaboration(benchRand(), 10000, 30000, 2.5, 0.1)
	}
}
