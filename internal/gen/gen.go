package gen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// BarabasiAlbert generates an n-node preferential-attachment graph where
// each arriving node attaches to approximately m existing nodes. Fractional
// m is honored in expectation: each arrival uses ⌊m⌋ or ⌈m⌉ links with the
// matching probability, so the final edge count tracks n·m.
func BarabasiAlbert(r *rand.Rand, n int, m float64) *graph.Graph {
	return HolmeKim(r, n, m, 0)
}

// HolmeKim generates an n-node scale-free graph with tunable clustering
// [Holme & Kim 2002]. Each arriving node makes ~m links: the first by
// preferential attachment, each subsequent one a "triad step" with
// probability pt (link to a random neighbour of the previous target, which
// closes a triangle) and a preferential attachment otherwise. pt=0 reduces
// to Barabási–Albert.
func HolmeKim(r *rand.Rand, n int, m float64, pt float64) *graph.Graph {
	if m < 1 {
		panic("gen: HolmeKim requires m >= 1")
	}
	if n < 2 {
		return graph.New(n)
	}
	g := graph.New(n)

	// Seed: a small clique so the first arrivals have targets.
	m0 := int(m) + 1
	if m0 >= n {
		m0 = n - 1
	}
	// targets is the repeated-endpoint list: each node appears once per
	// incident edge, so uniform sampling from it is degree-proportional.
	targets := make([]graph.NodeID, 0, int(2*m*float64(n)))
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			g.AddFriendship(graph.NodeID(i), graph.NodeID(j))
			targets = append(targets, graph.NodeID(i), graph.NodeID(j))
		}
	}

	mFloor := int(m)
	mFrac := m - float64(mFloor)
	for u := m0; u < n; u++ {
		links := mFloor
		if mFrac > 0 && r.Float64() < mFrac {
			links++
		}
		if links > u {
			links = u
		}
		var prev graph.NodeID = -1
		added := 0
		for attempt := 0; added < links && attempt < 50*links; attempt++ {
			var v graph.NodeID
			if added > 0 && prev >= 0 && pt > 0 && r.Float64() < pt {
				// Triad step: neighbour of the previous target.
				nbrs := g.Friends(prev)
				v = nbrs[r.IntN(len(nbrs))]
			} else {
				v = targets[r.IntN(len(targets))]
			}
			if v == graph.NodeID(u) || !g.AddFriendship(graph.NodeID(u), v) {
				continue
			}
			targets = append(targets, graph.NodeID(u), v)
			prev = v
			added++
		}
	}
	return g
}

// ForestFire generates an n-node graph with the forest-fire model
// [Leskovec & Faloutsos 2006], the process the paper used to sample its
// Facebook graph. Each arriving node picks a uniform ambassador, links to
// it, then recursively "burns" outward: from each burned node it links to a
// geometrically-distributed number of yet-unburned neighbours with mean
// fwd/(1-fwd).
func ForestFire(r *rand.Rand, n int, fwd float64) *graph.Graph {
	if fwd < 0 || fwd >= 1 {
		panic(fmt.Sprintf("gen: ForestFire fwd probability %v out of [0,1)", fwd))
	}
	g := graph.New(n)
	if n >= 2 {
		g.AddFriendship(0, 1)
	}
	burned := make([]int, n) // epoch marker: burned[v] == u+1 means burned by node u
	for u := 2; u < n; u++ {
		amb := graph.NodeID(r.IntN(u))
		g.AddFriendship(graph.NodeID(u), amb)
		burned[u] = u + 1
		burned[amb] = u + 1
		frontier := []graph.NodeID{amb}
		for len(frontier) > 0 {
			w := frontier[0]
			frontier = frontier[1:]
			// Burn a geometric number of w's unburned neighbours.
			burn := 0
			for r.Float64() < fwd {
				burn++
			}
			nbrs := g.Friends(w)
			for _, idx := range r.Perm(len(nbrs)) {
				if burn == 0 {
					break
				}
				v := nbrs[idx]
				if burned[v] == u+1 {
					continue
				}
				burned[v] = u + 1
				g.AddFriendship(graph.NodeID(u), v)
				frontier = append(frontier, v)
				burn--
			}
		}
	}
	return g
}

// ErdosRenyiGNM generates a uniform random graph with n nodes and exactly m
// distinct edges (or the maximum possible, if m exceeds it).
func ErdosRenyiGNM(r *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.NumFriendships() < m {
		u := graph.NodeID(r.IntN(n))
		v := graph.NodeID(r.IntN(n))
		if u != v {
			g.AddFriendship(u, v)
		}
	}
	return g
}

// WattsStrogatz generates a small-world graph: an n-node ring lattice where
// each node links to its k nearest neighbours (k even), with each edge
// rewired to a uniform endpoint with probability beta.
func WattsStrogatz(r *rand.Rand, n, k int, beta float64) *graph.Graph {
	if k%2 != 0 || k < 2 {
		panic("gen: WattsStrogatz requires even k >= 2")
	}
	if k >= n {
		panic("gen: WattsStrogatz requires k < n")
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// Rewire to a uniform non-self endpoint; duplicates
				// fall back to the lattice edge.
				w := graph.NodeID(r.IntN(n))
				if w != graph.NodeID(u) && g.AddFriendship(graph.NodeID(u), w) {
					continue
				}
			}
			g.AddFriendship(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}
