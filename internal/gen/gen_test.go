package gen

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xabcd))
}

func TestBarabasiAlbertSizeAndConnectivity(t *testing.T) {
	g := BarabasiAlbert(testRand(1), 2000, 4)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d, want 2000", g.NumNodes())
	}
	wantEdges := 2000 * 4
	if e := g.NumFriendships(); math.Abs(float64(e-wantEdges)) > 0.05*float64(wantEdges) {
		t.Fatalf("edges = %d, want ≈ %d", e, wantEdges)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("BA graph has %d components, want 1", count)
	}
}

func TestBarabasiAlbertFractionalM(t *testing.T) {
	g := BarabasiAlbert(testRand(2), 3000, 2.5)
	e := float64(g.NumFriendships())
	if math.Abs(e-3000*2.5) > 0.06*3000*2.5 {
		t.Fatalf("fractional m: edges = %v, want ≈ 7500", e)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g := BarabasiAlbert(testRand(3), 3000, 3)
	maxDeg := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(graph.NodeID(u)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * float64(g.NumFriendships()) / float64(g.NumNodes())
	if float64(maxDeg) < 8*avg {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
}

func TestHolmeKimClusteringIncreasesWithPt(t *testing.T) {
	ccLow := HolmeKim(testRand(4), 2000, 4, 0.1).ClusteringCoefficient(testRand(5), 0)
	ccHigh := HolmeKim(testRand(4), 2000, 4, 0.9).ClusteringCoefficient(testRand(5), 0)
	if ccHigh <= ccLow+0.05 {
		t.Fatalf("triad formation did not raise clustering: pt=0.1 → %.3f, pt=0.9 → %.3f", ccLow, ccHigh)
	}
}

func TestHolmeKimRequiresM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HolmeKim with m<1 did not panic")
		}
	}()
	HolmeKim(testRand(6), 10, 0.5, 0)
}

func TestForestFireConnectedAndClustered(t *testing.T) {
	g := ForestFire(testRand(7), 2000, 0.35)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("forest fire graph has %d components, want 1", count)
	}
	if cc := g.ClusteringCoefficient(testRand(8), 0); cc < 0.05 {
		t.Fatalf("forest fire clustering %.4f unexpectedly low", cc)
	}
}

func TestForestFireBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForestFire(fwd=1) did not panic")
		}
	}()
	ForestFire(testRand(9), 10, 1)
}

func TestErdosRenyiGNMExactEdges(t *testing.T) {
	g := ErdosRenyiGNM(testRand(10), 100, 400)
	if g.NumFriendships() != 400 {
		t.Fatalf("edges = %d, want 400", g.NumFriendships())
	}
	// Cap at the maximum possible.
	g = ErdosRenyiGNM(testRand(11), 5, 100)
	if g.NumFriendships() != 10 {
		t.Fatalf("capped edges = %d, want 10", g.NumFriendships())
	}
}

func TestWattsStrogatzDegreeAndRewiring(t *testing.T) {
	g := WattsStrogatz(testRand(12), 500, 6, 0)
	for u := 0; u < 500; u++ {
		if d := g.Degree(graph.NodeID(u)); d != 6 {
			t.Fatalf("beta=0 lattice degree(%d) = %d, want 6", u, d)
		}
	}
	ccLattice := g.ClusteringCoefficient(testRand(13), 0)
	gRewired := WattsStrogatz(testRand(12), 500, 6, 0.8)
	ccRewired := gRewired.ClusteringCoefficient(testRand(13), 0)
	if ccRewired >= ccLattice {
		t.Fatalf("rewiring did not reduce clustering: %.3f → %.3f", ccLattice, ccRewired)
	}
}

func TestCollaborationHitsTargets(t *testing.T) {
	g := Collaboration(testRand(14), 3000, 12000, 2.8, 0.3)
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if e := g.NumFriendships(); e < 12000 || e > 13500 {
		t.Fatalf("edges = %d, want slightly above 12000", e)
	}
	// Every author appears in at least one paper: no isolated nodes
	// except possibly stragglers from tiny teams.
	isolated := 0
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(graph.NodeID(u)) == 0 {
			isolated++
		}
	}
	if isolated > 0 {
		t.Fatalf("%d isolated authors", isolated)
	}
}

func TestCollaborationClusteringScalesWithRepeat(t *testing.T) {
	low := Collaboration(testRand(15), 2000, 10000, 3, 0.0).ClusteringCoefficient(testRand(16), 0)
	high := Collaboration(testRand(15), 2000, 10000, 3, 0.8).ClusteringCoefficient(testRand(16), 0)
	if high <= low {
		t.Fatalf("repeat collaboration did not raise clustering: %.3f → %.3f", low, high)
	}
}

func TestDatasetsTableI(t *testing.T) {
	ds := Datasets()
	if len(ds) != 7 {
		t.Fatalf("Datasets returned %d entries, want 7", len(ds))
	}
	wantOrder := []string{"Facebook", "ca-HepTh", "ca-AstroPh", "email-Enron", "soc-Epinions", "soc-Slashdot", "Synthetic"}
	for i, d := range ds {
		if d.Name != wantOrder[i] {
			t.Fatalf("dataset %d = %s, want %s", i, d.Name, wantOrder[i])
		}
	}
}

// TestDatasetStandInsMatchTableI generates the two small stand-ins and pins
// node count exactly, edge count within 2%, and clustering coefficient
// within a factor band of the published value. The larger graphs are
// exercised by the Table I bench instead, to keep unit tests fast.
func TestDatasetStandInsMatchTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("generation too heavy for -short")
	}
	for _, name := range []string{"Facebook", "ca-HepTh", "Synthetic"} {
		d, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(testRand(17))
		if g.NumNodes() != d.Nodes {
			t.Errorf("%s: nodes = %d, want %d", name, g.NumNodes(), d.Nodes)
		}
		if e := float64(g.NumFriendships()); math.Abs(e-float64(d.Edges)) > 0.02*float64(d.Edges) {
			t.Errorf("%s: edges = %v, want ≈ %d", name, e, d.Edges)
		}
		cc := g.ClusteringCoefficient(testRand(18), 5000)
		if name == "Synthetic" {
			if cc > 0.03 {
				t.Errorf("Synthetic: clustering %.4f, want near zero", cc)
			}
			continue
		}
		if cc < 0.6*d.ClusterCC || cc > 1.6*d.ClusterCC {
			t.Errorf("%s: clustering %.4f outside band of target %.4f", name, cc, d.ClusterCC)
		}
	}
}

func TestDatasetByNameUnknown(t *testing.T) {
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset did not error")
	}
	names := DatasetNames()
	if len(names) != 7 || names[0] != "Facebook" {
		t.Fatalf("DatasetNames = %v", names)
	}
}
