package gen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// Dataset is a recipe for one of the paper's Table I evaluation graphs.
// Generate produces a synthetic stand-in tuned to the dataset's size and
// approximate clustering coefficient (see DESIGN.md §3 on substitutions).
type Dataset struct {
	Name string

	// Published Table I statistics for the real dataset.
	Nodes      int
	Edges      int
	ClusterCC  float64
	Diameter   int
	generateFn func(r *rand.Rand) *graph.Graph
}

// Generate builds the stand-in graph for the dataset.
func (d Dataset) Generate(r *rand.Rand) *graph.Graph {
	return d.generateFn(r)
}

// Datasets returns the seven Table I evaluation graphs, in the paper's
// order. The triad-formation probabilities below were calibrated once
// against the published clustering coefficients; gen's tests pin them to a
// band around the targets.
func Datasets() []Dataset {
	holmeKim := func(n int, m, pt float64) func(*rand.Rand) *graph.Graph {
		return func(r *rand.Rand) *graph.Graph { return HolmeKim(r, n, m, pt) }
	}
	return []Dataset{
		{
			Name: "Facebook", Nodes: 10000, Edges: 40013,
			ClusterCC: 0.2332, Diameter: 17,
			generateFn: holmeKim(10000, 4.0, 0.60),
		},
		{
			Name: "ca-HepTh", Nodes: 9877, Edges: 25985,
			ClusterCC: 0.2734, Diameter: 18,
			generateFn: func(r *rand.Rand) *graph.Graph {
				return Collaboration(r, 9877, 25985, 2.33, 0.02)
			},
		},
		{
			Name: "ca-AstroPh", Nodes: 18772, Edges: 198080,
			ClusterCC: 0.3158, Diameter: 14,
			generateFn: func(r *rand.Rand) *graph.Graph {
				return Collaboration(r, 18772, 198080, 2.9, 0.06)
			},
		},
		{
			Name: "email-Enron", Nodes: 33696, Edges: 180811,
			ClusterCC: 0.0848, Diameter: 13,
			generateFn: holmeKim(33696, 5.37, 0.30),
		},
		{
			Name: "soc-Epinions", Nodes: 75877, Edges: 405739,
			ClusterCC: 0.0655, Diameter: 15,
			generateFn: holmeKim(75877, 5.35, 0.23),
		},
		{
			Name: "soc-Slashdot", Nodes: 82168, Edges: 504230,
			ClusterCC: 0.0240, Diameter: 13,
			generateFn: holmeKim(82168, 6.14, 0.09),
		},
		{
			Name: "Synthetic", Nodes: 10000, Edges: 39399,
			ClusterCC: 0.0018, Diameter: 7,
			generateFn: func(r *rand.Rand) *graph.Graph {
				return BarabasiAlbert(r, 10000, 3.95)
			},
		},
	}
}

// DatasetByName returns the Table I recipe with the given name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// DatasetNames lists the Table I dataset names in the paper's order.
func DatasetNames() []string {
	ds := Datasets()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}
