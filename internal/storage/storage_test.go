package storage

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// reqSeq builds a deterministic answered-request sequence.
func reqSeq(seed uint64, n, count int) []core.TimedRequest {
	r := rand.New(rand.NewPCG(seed, 101))
	reqs := make([]core.TimedRequest, 0, count)
	for len(reqs) < count {
		from, to := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
		if from == to {
			continue
		}
		reqs = append(reqs, core.TimedRequest{
			From: from, To: to,
			Accepted: r.IntN(3) > 0,
			Interval: r.IntN(4),
		})
	}
	return reqs
}

// recoverAll opens a store's directory fresh and returns the recovered log.
func recoverAll(t *testing.T, dir string, segBytes int64) ([]core.TimedRequest, Recovered, *FileStore) {
	t.Helper()
	st, err := Open(Options{Dir: dir, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var log []core.TimedRequest
	rec, err := st.Recover(func(req []core.TimedRequest) error {
		log = append(log, req...)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return log, rec, st
}

func appendAll(t *testing.T, st Store, reqs []core.TimedRequest) {
	t.Helper()
	for _, req := range reqs {
		if err := st.Append(req); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func sameLog(t *testing.T, got, want []core.TimedRequest, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: recovered %d records, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d is %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

func TestSegmentedAppendRecover(t *testing.T) {
	dir := t.TempDir()
	reqs := reqSeq(1, 20, 500)
	// Tiny segments force many seal/roll cycles.
	_, _, st := recoverAll(t, dir, 40*frameSize)
	appendAll(t, st, reqs)
	stats := st.Stats()
	if stats.Records != int64(len(reqs)) {
		t.Fatalf("stats report %d records, want %d", stats.Records, len(reqs))
	}
	if stats.Segments < 5 {
		t.Fatalf("tiny segment size produced only %d segments", stats.Segments)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	log, rec, st2 := recoverAll(t, dir, 40*frameSize)
	defer st2.Close()
	sameLog(t, log, reqs, "restart")
	if rec.Info.Records != len(reqs) || rec.Info.SegmentRecords != len(reqs) {
		t.Fatalf("recovery info %+v, want %d records all from segments", rec.Info, len(reqs))
	}
	if rec.Info.TornBytesTruncated != 0 || rec.Info.OrphansRemoved != 0 {
		t.Fatalf("clean restart reported damage: %+v", rec.Info)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for torn := 1; torn < frameSize; torn++ {
		dir := t.TempDir()
		reqs := reqSeq(2, 10, 25)
		_, _, st := recoverAll(t, dir, defaultSegmentBytes)
		appendAll(t, st, reqs)
		st.Close()

		// Tear the live segment: append a partial frame, as a crash
		// mid-write would.
		seg := filepath.Join(dir, segmentFileName(0))
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, torn)
		for i := range junk {
			junk[i] = 0xAB
		}
		f.Write(junk)
		f.Close()

		log, rec, st2 := recoverAll(t, dir, defaultSegmentBytes)
		sameLog(t, log, reqs, "torn restart")
		if rec.Info.TornBytesTruncated != int64(torn) {
			t.Fatalf("torn=%d: reported %d bytes truncated", torn, rec.Info.TornBytesTruncated)
		}
		// The store stays writable after truncation.
		more := reqSeq(3, 10, 5)
		appendAll(t, st2, more)
		st2.Close()
		log2, _, st3 := recoverAll(t, dir, defaultSegmentBytes)
		st3.Close()
		sameLog(t, log2, append(append([]core.TimedRequest{}, reqs...), more...), "after torn truncation")
	}
}

func TestSealedSegmentCorruptionFailsBoot(t *testing.T) {
	dir := t.TempDir()
	reqs := reqSeq(4, 10, 200)
	_, _, st := recoverAll(t, dir, 20*frameSize)
	appendAll(t, st, reqs)
	st.Close()

	// Flip one payload byte in the middle of the FIRST (sealed) segment.
	seg := filepath.Join(dir, segmentFileName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[segmentHeaderSize+5*frameSize+3] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir, SegmentBytes: 20 * frameSize})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Recover(nil); err == nil {
		t.Fatal("corrupt sealed segment recovered without error")
	}
}

func TestSnapshotCompactsAndRecoversFast(t *testing.T) {
	dir := t.TempDir()
	reqs := reqSeq(5, 16, 300)
	_, _, st := recoverAll(t, dir, 25*frameSize)
	appendAll(t, st, reqs[:250])

	frozen := frozenOf(reqs[:250], 16)
	if err := st.Snapshot(SnapshotState{Count: 250, Requests: reqs[:250], Frozen: frozen}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	stats := st.Stats()
	if stats.SnapshotRecords != 250 {
		t.Fatalf("stats report snapshot at %d, want 250", stats.SnapshotRecords)
	}
	if stats.CompactedSegments == 0 {
		t.Fatal("compaction deleted no segments")
	}
	appendAll(t, st, reqs[250:])
	st.Close()

	log, rec, st2 := recoverAll(t, dir, 25*frameSize)
	defer st2.Close()
	sameLog(t, log, reqs, "post-snapshot restart")
	if rec.SnapshotCount != 250 {
		t.Fatalf("recovered snapshot covers %d, want 250", rec.SnapshotCount)
	}
	if rec.Frozen == nil || !rec.Frozen.Equal(frozen) {
		t.Fatal("recovered frozen snapshot missing or different")
	}
	// The bulk of the journal must have come from the snapshot, not replay.
	if rec.Info.SegmentRecords >= 100 {
		t.Fatalf("replayed %d records from segments despite a snapshot at 250", rec.Info.SegmentRecords)
	}
}

// frozenOf folds requests over an n-node empty base, the server's read
// model shape.
func frozenOf(reqs []core.TimedRequest, n int) *graph.Frozen {
	g := graph.New(n)
	for _, req := range reqs {
		if req.Accepted {
			g.AddFriendship(req.From, req.To)
		} else {
			g.AddRejection(req.To, req.From)
		}
	}
	return g.FreezeCanonical()
}

func TestSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	reqs := reqSeq(6, 8, 10)
	_, _, st := recoverAll(t, dir, defaultSegmentBytes)
	defer st.Close()
	appendAll(t, st, reqs)
	if err := st.Snapshot(SnapshotState{Count: 11, Requests: make([]core.TimedRequest, 11)}); err == nil {
		t.Fatal("snapshot past the journal end accepted")
	}
	if err := st.Snapshot(SnapshotState{Count: 5, Requests: reqs[:4]}); err == nil {
		t.Fatal("snapshot with mismatched request count accepted")
	}
	if err := st.Snapshot(SnapshotState{Count: 8, Requests: reqs[:8]}); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if err := st.Snapshot(SnapshotState{Count: 5, Requests: reqs[:5]}); err == nil {
		t.Fatal("snapshot older than the current one accepted")
	}
}

func TestFlatStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.reqlog")
	reqs := reqSeq(7, 12, 40)
	st, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(nil); err != nil {
		t.Fatal(err)
	}
	appendAll(t, st, reqs)
	if st.SupportsSnapshots() {
		t.Fatal("flat store claims snapshot support")
	}
	if err := st.Snapshot(SnapshotState{}); err != ErrSnapshotsUnsupported {
		t.Fatalf("flat Snapshot returned %v, want ErrSnapshotsUnsupported", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var log []core.TimedRequest
	rec, err := st2.Recover(func(req []core.TimedRequest) error {
		log = append(log, req...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sameLog(t, log, reqs, "flat restart")
	if rec.Info.Records != len(reqs) {
		t.Fatalf("flat recovery info %+v", rec.Info)
	}
	if st2.Stats().Backend != "flat" {
		t.Fatalf("flat backend reports %q", st2.Stats().Backend)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := manifest{
		snapshotFile:  snapshotFileName(65536),
		snapshotCount: 65536,
		segments: []manifestSegment{
			{file: segmentFileName(65536), firstSeq: 65536},
			{file: segmentFileName(131072), firstSeq: 131072},
		},
	}
	if err := writeManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("readManifest: ok=%v err=%v", ok, err)
	}
	if got.snapshotFile != want.snapshotFile || got.snapshotCount != want.snapshotCount ||
		len(got.segments) != len(want.segments) {
		t.Fatalf("manifest round trip: got %+v want %+v", got, want)
	}
	for i := range want.segments {
		if got.segments[i] != want.segments[i] {
			t.Fatalf("segment %d: got %+v want %+v", i, got.segments[i], want.segments[i])
		}
	}
	if _, ok, err := readManifest(t.TempDir()); ok || err != nil {
		t.Fatalf("missing manifest: ok=%v err=%v", ok, err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readManifest(dir); err == nil {
		t.Fatal("malformed manifest parsed without error")
	}
}

func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	reqs := reqSeq(8, 10, 30)
	_, _, st := recoverAll(t, dir, defaultSegmentBytes)
	appendAll(t, st, reqs)
	st.Close()
	// Strand crash debris: a temp file and an unreferenced segment.
	os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("half"), 0o644)
	os.WriteFile(filepath.Join(dir, segmentFileName(999999)), []byte("half"), 0o644)
	log, rec, st2 := recoverAll(t, dir, defaultSegmentBytes)
	defer st2.Close()
	sameLog(t, log, reqs, "post-sweep")
	if rec.Info.OrphansRemoved != 2 {
		t.Fatalf("swept %d orphans, want 2", rec.Info.OrphansRemoved)
	}
	// Unknown files refuse the boot rather than getting deleted.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644)
	st3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Recover(nil); err == nil {
		t.Fatal("unknown file in store dir did not fail recovery")
	}
}

func TestRecoverTwiceFails(t *testing.T) {
	_, _, st := recoverAll(t, t.TempDir(), defaultSegmentBytes)
	defer st.Close()
	if _, err := st.Recover(nil); err == nil {
		t.Fatal("second Recover succeeded")
	}
	if err := st.Append(core.TimedRequest{From: 0, To: 1}); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	st2, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(core.TimedRequest{From: 0, To: 1}); err == nil {
		t.Fatal("Append before Recover succeeded")
	}
}
