package storage

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/incr"
)

// A Store is the durable home of the answered-request journal. The
// rejectod server owns exactly one; implementations must be safe for the
// server's two-goroutine access pattern (the ingest loop appending and
// flushing while the detector goroutine snapshots).
//
// Lifecycle: open, Recover exactly once, then any number of Append / Flush
// / Snapshot calls, then Close. Recover before the first Append is
// mandatory even on a fresh store — it is what positions the writer.
type Store interface {
	// Recover replays the logical journal — snapshot prefix first, then
	// every surviving segment record — calling apply with batches of
	// answered requests in arrival order. Batch sizes are an
	// implementation detail (a snapshot arrives as one batch, segment
	// replay in chunks); callers must not retain a batch slice past the
	// call. An apply error aborts recovery and is returned verbatim (the
	// server uses this to reject journals that reference nodes outside
	// its base graph).
	Recover(apply func([]core.TimedRequest) error) (Recovered, error)

	// Append adds one answered request to the journal. Durability is
	// deferred to Flush, matching the server's quiet-point flush policy.
	Append(req core.TimedRequest) error

	// Flush makes every appended record durable (buffer flush + fsync).
	Flush() error

	// Snapshot persists st and compacts: segments fully covered by the
	// snapshot are deleted after the manifest commits. Backends without
	// snapshot support return ErrSnapshotsUnsupported.
	Snapshot(st SnapshotState) error

	// SupportsSnapshots reports whether Snapshot can succeed — the check
	// server.New runs at configuration time.
	SupportsSnapshots() bool

	// Stats reports the store's current shape for /v1/stats.
	Stats() Stats

	// Close flushes and releases the store. After a simulated crash
	// (ErrCrashed) Close only releases file handles — nothing more is
	// written, so a test can reopen the directory exactly as a restarted
	// process would find it.
	Close() error
}

// ErrSnapshotsUnsupported is returned by Snapshot on backends that cannot
// persist snapshots (the flat text journal).
var ErrSnapshotsUnsupported = errors.New("storage: backend does not support snapshots")

// ErrCrashed is returned by every operation after a fault hook simulated a
// crash: the store behaves as if the process died at that instant, and the
// only useful next step is Close (release handles) and a fresh open.
var ErrCrashed = errors.New("storage: simulated crash")

// SnapshotState is everything a snapshot persists: the journal prefix it
// covers, the canonical frozen read model of base + that prefix, and — in
// incremental mode — the epoch engine's memo. Requests must hold exactly
// Count records in arrival order; Frozen and Memo may be nil (a
// requests-only snapshot still makes recovery O(delta) for the log itself).
type SnapshotState struct {
	Count    int
	Requests []core.TimedRequest
	Frozen   *graph.Frozen
	Memo     *incr.MemoState
}

// Recovered is what Recover hands back besides the replayed records.
type Recovered struct {
	// SnapshotCount is the number of journal records the loaded snapshot
	// covered; 0 when no snapshot was loaded.
	SnapshotCount int
	// Frozen is the snapshot's persisted read model (base + the first
	// SnapshotCount requests), nil if the snapshot carried none.
	Frozen *graph.Frozen
	// Memo is the snapshot's persisted incremental-engine state, nil if
	// the snapshot carried none.
	Memo *incr.MemoState
	// Info describes the recovery itself.
	Info RecoveryInfo
}

// RecoveryInfo describes one boot-time recovery for /v1/stats and the
// storage.recover trace event.
type RecoveryInfo struct {
	// Records is the logical journal length recovered; SnapshotRecords of
	// them came from the snapshot, SegmentRecords were replayed from
	// segment files (Records - SnapshotRecords - SegmentRecords records
	// were skipped as already covered by the snapshot: a segment that
	// straddles the snapshot point replays only its tail).
	Records         int
	SnapshotRecords int
	SegmentRecords  int
	// SegmentsScanned counts segment files read.
	SegmentsScanned int
	// TornBytesTruncated is the size of the torn tail cut off the live
	// segment, 0 on a clean boot.
	TornBytesTruncated int64
	// OrphansRemoved counts files swept because no manifest referenced
	// them (the debris of a crash between commit points).
	OrphansRemoved int
	// Duration is the recovery wall-clock.
	Duration time.Duration
}

// Stats is a point-in-time description of the store for /v1/stats and the
// operator runbook.
type Stats struct {
	// Backend is "flat" or "segmented".
	Backend string
	// Records is the logical journal length (recovered + appended).
	Records int64
	// Segments is the number of live segment files, SealedSegments how
	// many of them are sealed (all but the write head, absent compaction).
	Segments       int
	SealedSegments int
	// LiveSegmentBytes is the byte size of the unsealed write-head segment.
	LiveSegmentBytes int64
	// SnapshotRecords is the journal prefix the latest snapshot covers;
	// 0 when there is no snapshot.
	SnapshotRecords int64
	// Snapshots and CompactedSegments count this process's snapshot writes
	// and the segments compaction deleted.
	Snapshots         int64
	CompactedSegments int64
}

// Fault points, in the order a record travels: every place a crash leaves
// observably different on-disk state. Options.Hooks is consulted at each.
const (
	// PointAppend fires before a record frame is written to the live
	// segment. A torn crash here writes a prefix of the frame — the
	// classic torn write recovery must truncate.
	PointAppend = "append"
	// PointSeal fires before the seal footer frame is written.
	PointSeal = "seal"
	// PointSegmentCreate fires before the next segment file is created
	// after a seal.
	PointSegmentCreate = "segment.create"
	// PointManifest fires before the manifest temp file is renamed over
	// MANIFEST — the commit point of every multi-file transition.
	PointManifest = "manifest"
	// PointSnapshotWrite fires before the snapshot temp file's contents
	// are written; a torn crash leaves a partial temp file behind.
	PointSnapshotWrite = "snapshot.write"
	// PointSnapshotRename fires before the snapshot temp file is renamed
	// to its final name.
	PointSnapshotRename = "snapshot.rename"
	// PointCompactDelete fires before each covered segment is deleted
	// after a snapshot's manifest has committed.
	PointCompactDelete = "compact.delete"
)

// Fault is a fault hook's verdict for one fault point.
type Fault struct {
	// Crash makes the store die at this point: the operation aborts with
	// ErrCrashed and every later operation fails the same way.
	Crash bool
	// Torn, meaningful with Crash at a write point (PointAppend,
	// PointSeal, PointSnapshotWrite), is how many bytes of the pending
	// write reach the file before the death — the torn-write simulator.
	// Clamped to [0, size).
	Torn int
}

// Hooks injects faults at the store's crash points. At is called with the
// point name and, for write points, the pending write's size; the zero
// Fault means "no fault, proceed". Implementations must be deterministic
// for a fixed seed (internal/chaos provides one).
type Hooks interface {
	At(point string, size int) Fault
}

// hookAt consults optional hooks.
func hookAt(h Hooks, point string, size int) Fault {
	if h == nil {
		return Fault{}
	}
	return h.At(point, size)
}
