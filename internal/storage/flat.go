package storage

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
)

// flatStore wraps the original single-file text journal (graphio's request
// log) behind the Store interface. It replays from byte zero on every boot
// and cannot persist snapshots — the baseline the segmented backend's
// recovery benchmark is measured against, and the format `rejecto
// -requests` consumes directly.
type flatStore struct {
	path      string
	file      *os.File
	writer    *graphio.JournalWriter
	recovered bool
	records   int64
}

// OpenFlat opens (or creates) a flat text journal at path.
func OpenFlat(path string) (Store, error) {
	return &flatStore{path: path}, nil
}

func (s *flatStore) Recover(apply func([]core.TimedRequest) error) (Recovered, error) {
	if s.recovered {
		return Recovered{}, fmt.Errorf("storage: Recover called twice")
	}
	start := time.Now()
	records := 0
	if f, err := os.Open(s.path); err == nil {
		// Re-batch the line-by-line scan so apply sees the same chunked
		// shape the segmented backend produces.
		buf := make([]core.TimedRequest, 0, recoverBatchSize)
		scanErr := graphio.ScanRequests(f, func(req core.TimedRequest) error {
			buf = append(buf, req)
			records++
			if len(buf) == cap(buf) && apply != nil {
				if err := apply(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
			return nil
		})
		if scanErr == nil && len(buf) > 0 && apply != nil {
			scanErr = apply(buf)
		}
		f.Close()
		if scanErr != nil {
			return Recovered{}, fmt.Errorf("%s: %w", s.path, scanErr)
		}
	} else if !os.IsNotExist(err) {
		return Recovered{}, err
	}

	fresh := records == 0
	if _, err := os.Stat(s.path); err == nil {
		fresh = false
	}
	file, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Recovered{}, err
	}
	s.file = file
	s.writer = graphio.NewJournalWriter(file)
	if fresh {
		if err := s.writer.WriteHeader(); err != nil {
			file.Close()
			return Recovered{}, err
		}
	}
	s.recovered = true
	s.records = int64(records)
	return Recovered{Info: RecoveryInfo{
		Records:  records,
		Duration: time.Since(start),
	}}, nil
}

func (s *flatStore) Append(req core.TimedRequest) error {
	if !s.recovered {
		return fmt.Errorf("storage: Append before Recover")
	}
	if err := s.writer.Append(req); err != nil {
		return err
	}
	s.records++
	return nil
}

func (s *flatStore) Flush() error {
	if s.writer == nil {
		return nil
	}
	return s.writer.Flush()
}

func (s *flatStore) Snapshot(SnapshotState) error { return ErrSnapshotsUnsupported }

func (s *flatStore) SupportsSnapshots() bool { return false }

func (s *flatStore) Stats() Stats {
	return Stats{Backend: "flat", Records: s.records}
}

func (s *flatStore) Close() error {
	if s.file == nil {
		return nil
	}
	err := s.Flush()
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	s.file = nil
	s.writer = nil
	return err
}
