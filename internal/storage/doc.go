// Package storage is the durable storage engine of the rejectod service:
// the home of the answered-request journal and of the persisted snapshots
// that make restart cost O(delta since last snapshot) instead of
// O(journal).
//
// Two backends implement the Store interface. OpenFlat wraps the original
// single-file text journal (the graphio request-log format) — simple,
// greppable, replayed from byte zero on every boot. Open is the real log:
// fixed-size segments of CRC32C-checksummed binary records with a sealed-
// segment footer, a manifest naming the live segment set and the latest
// snapshot, snapshot files folding the journal prefix (plus the frozen CSR
// read model and the incremental engine's memo) into one bulk-loadable
// file, and compaction that deletes segments fully covered by a snapshot.
//
// # Correctness model
//
// The logical journal — the arrival-ordered sequence of answered requests —
// is the single source of truth; everything else is a derived, checksummed
// cache of a prefix of it. Recovery therefore never guesses: a torn tail
// record on the live segment is truncated (the write never completed, so
// the record was never acknowledged durable), while a checksum failure
// anywhere else — a sealed segment, the snapshot, the manifest — fails the
// boot loudly rather than serving a silently wrong history. Rejections are
// the detection signal (SybilFence's lesson: negative feedback must be
// kept, not aged out), so compaction only ever re-homes history into a
// snapshot; no record is dropped.
//
// Every multi-file transition commits through the manifest: snapshot and
// segment files are written and synced first, then the manifest is replaced
// atomically (temp file + rename + directory sync), then obsolete files are
// deleted. A crash between any two steps leaves either the old manifest
// (pointing at the old, intact file set) or the new one (pointing at the
// new, already-synced file set); files no longer reachable from the
// manifest are orphans, swept on the next open. The Hooks interface exposes
// every one of these crash points to the seeded fault injector in
// internal/chaos, and the recovery property test replays crashes at each of
// them.
package storage
