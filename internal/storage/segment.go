package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/graphio"
)

// Segment file format. A segment is a header followed by fixed-size frames:
//
//	header  [16]byte  magic "REJSEG01" + firstSeq uint64 (little-endian)
//	frame   [18]byte  kind uint8 + payload [13]byte + crc32c uint32
//
// kind 1 frames carry one answered request (graphio's 13-byte record
// codec); the CRC32C (Castagnoli) covers kind + payload. A sealed segment
// ends with exactly one kind 2 frame whose payload is the segment's record
// count — the footer a reader uses to distinguish "this segment is
// complete" from "this segment ends where the last crash left it". Fixed
// frames mean a reader never needs to resynchronize: every frame boundary
// is computable from the file offset alone, and a torn tail is precisely a
// trailing partial or checksum-failing frame.

var segmentMagic = [8]byte{'R', 'E', 'J', 'S', 'E', 'G', '0', '1'}

const (
	segmentHeaderSize = 16
	frameSize         = 1 + graphio.RequestRecordSize + 4

	frameKindRequest = 1
	frameKindSeal    = 2
)

// castagnoli is the CRC32C table; Castagnoli is the polynomial with
// hardware support on both amd64 and arm64, the usual choice for storage
// checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// putFrame encodes one frame into b (frameSize bytes).
func putFrame(b []byte, kind byte, payload []byte) {
	_ = b[frameSize-1]
	b[0] = kind
	copy(b[1:1+graphio.RequestRecordSize], payload)
	crc := crc32.Checksum(b[:1+graphio.RequestRecordSize], castagnoli)
	binary.LittleEndian.PutUint32(b[1+graphio.RequestRecordSize:], crc)
}

// putRequestFrame encodes req as a kind 1 frame.
func putRequestFrame(b []byte, req core.TimedRequest) {
	var payload [graphio.RequestRecordSize]byte
	graphio.PutRequest(payload[:], req)
	putFrame(b, frameKindRequest, payload[:])
}

// putSealFrame encodes the seal footer for a segment of count records.
func putSealFrame(b []byte, count int64) {
	var payload [graphio.RequestRecordSize]byte
	binary.LittleEndian.PutUint64(payload[:8], uint64(count))
	putFrame(b, frameKindSeal, payload[:])
}

// checkFrame verifies b's checksum and returns its kind.
func checkFrame(b []byte) (kind byte, ok bool) {
	want := binary.LittleEndian.Uint32(b[1+graphio.RequestRecordSize:])
	if crc32.Checksum(b[:1+graphio.RequestRecordSize], castagnoli) != want {
		return 0, false
	}
	return b[0], true
}

// segScan is the outcome of scanning one segment file.
type segScan struct {
	firstSeq int64
	records  int   // request frames with a valid checksum, before any seal
	sealed   bool  // a valid seal frame terminated the scan
	goodLen  int64 // bytes of valid prefix (header + whole valid frames)
	tornLen  int64 // bytes past goodLen in the file (0 = clean)
}

// scanSegment reads a segment file, calling apply (if non-nil) for every
// request record whose logical sequence number is >= skipBelow. It stops at
// a seal frame, at EOF, or at the first invalid frame; the caller decides
// whether an invalid tail is a recoverable torn write (live segment) or
// corruption (sealed segment).
func scanSegment(path string, skipBelow int64, apply func(core.TimedRequest) error) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return segScan{}, err
	}

	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// A header too short to read is a torn segment-create; the whole
		// file is tail.
		return segScan{goodLen: 0, tornLen: st.Size()}, nil
	}
	if [8]byte(hdr[:8]) != segmentMagic {
		return segScan{}, fmt.Errorf("storage: %s: bad segment magic %q", path, hdr[:8])
	}
	scan := segScan{
		firstSeq: int64(binary.LittleEndian.Uint64(hdr[8:])),
		goodLen:  segmentHeaderSize,
	}

	buf := make([]byte, frameSize)
	seq := scan.firstSeq
	for {
		n, err := io.ReadFull(f, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			scan.tornLen = int64(n)
			break
		}
		if err != nil {
			return scan, fmt.Errorf("storage: %s: %w", path, err)
		}
		kind, ok := checkFrame(buf)
		if !ok {
			scan.tornLen = int64(frameSize)
			break
		}
		switch kind {
		case frameKindRequest:
			if apply != nil && seq >= skipBelow {
				req, err := graphio.GetRequest(buf[1:])
				if err != nil {
					return scan, fmt.Errorf("storage: %s record %d: %w", path, seq, err)
				}
				if err := apply(req); err != nil {
					return scan, err
				}
			}
			seq++
			scan.records++
			scan.goodLen += frameSize
		case frameKindSeal:
			count := int64(binary.LittleEndian.Uint64(buf[1:9]))
			if count != int64(scan.records) {
				return scan, fmt.Errorf("storage: %s: seal footer claims %d records, segment holds %d",
					path, count, scan.records)
			}
			scan.sealed = true
			scan.goodLen += frameSize
		default:
			// An unknown kind with a valid checksum is a format from the
			// future, not a torn write.
			return scan, fmt.Errorf("storage: %s: unknown frame kind %d", path, kind)
		}
		if scan.sealed {
			break
		}
	}
	if rest := st.Size() - scan.goodLen - scan.tornLen; rest > 0 {
		scan.tornLen += rest
	}
	return scan, nil
}
